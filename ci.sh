#!/usr/bin/env sh
# Tier-1 verify line. Keep in sync with ROADMAP.md and the Makefile.
set -eux

go build ./...
go vet ./...

# Formatting is enforced: an unformatted tree fails CI.
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt_out" >&2
    exit 1
fi

# Segment pruning is on by default, so the race run — including the chaos
# suite in internal/cluster — exercises retries, hedging, and partial results
# with broker- and server-side pruning live.
go test -race ./...

# Benchmark check (make bench-check): one iteration each, so benchmarks keep
# compiling and running on every PR without turning CI into a perf run, plus
# a guard that no benchmark named in BENCH_baseline.json has disappeared and
# that the headline A/B pairs (pruning, encode pool, metrics overhead,
# multi-tier caching) stay in the baseline.
go test -run NONE -bench . -benchtime 1x ./... > .bench-run.txt
go run ./cmd/benchcheck BENCH_baseline.json \
    BenchmarkPruneTimeRangeOn BenchmarkPruneTimeRangeOff \
    BenchmarkPruneBloomEqOn BenchmarkPruneBloomEqOff \
    BenchmarkEncodeResponsePooled BenchmarkEncodeResponseFresh \
    BenchmarkQueryMetricsOn BenchmarkQueryMetricsOff \
    BenchmarkTransportLoopbackQuery BenchmarkStreamVsBuffered \
    BenchmarkResultCacheColdVsWarm BenchmarkServerAggCacheZipf \
    BenchmarkExprCompiledVsInterp BenchmarkTimeBucketGroupBy \
    BenchmarkDictExprPredicate BenchmarkDictExprGroupBy \
    < .bench-run.txt
rm -f .bench-run.txt

# Fuzz smoke over the hostile-input surfaces: a few seconds each of the
# wire-frame decoder, the PQL parser (never panic + canonical-fixpoint on
# accepted input) and the expression evaluator (sandbox limits + kernel/
# interpreter agreement) on every PR, without a long fuzzing campaign.
go test ./internal/transport -run NONE -fuzz FuzzDecodeFrame -fuzztime 5s
go test ./internal/pql -run NONE -fuzz FuzzParsePQL -fuzztime 5s
go test ./internal/expr -run NONE -fuzz FuzzExprEval -fuzztime 5s

# Per-package coverage floors (make cover): the checked-in baseline pins a
# floor slightly below each package's measured coverage so instrumentation
# and tests cannot silently rot.
go test -count=1 -cover ./... > .cover-run.txt
go run ./cmd/covercheck COVERAGE_baseline.json < .cover-run.txt
rm -f .cover-run.txt
