package pinot

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func facadeSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema("events", []FieldSpec{
		{Name: "country", Type: TypeString, Kind: Dimension, SingleValue: true},
		{Name: "clicks", Type: TypeLong, Kind: Metric, SingleValue: true},
		{Name: "day", Type: TypeLong, Kind: Time, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFacadeOfflineLifecycle(t *testing.T) {
	c, err := NewCluster(ClusterOptions{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	schema := facadeSchema(t)
	if err := c.AddTable(&TableConfig{Name: "events", Type: Offline, Schema: schema, Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{"us", int64(10), int64(100)},
		{"de", int64(20), int64(100)},
		{"us", int64(30), int64(101)},
	}
	blob, err := BuildSegmentBlob("events", "events_0", schema, IndexConfig{}, rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", blob); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), "SELECT sum(clicks) FROM events WHERE country = 'us'")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != 40 {
		t.Fatalf("sum = %v", got)
	}
}

func TestFacadeRealtimeLifecycle(t *testing.T) {
	c, err := NewCluster(ClusterOptions{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.CreateStreamTopic("clickstream", 1); err != nil {
		t.Fatal(err)
	}
	schema := facadeSchema(t)
	err = c.AddTable(&TableConfig{
		Name: "events", Type: Realtime, Schema: schema, Replicas: 1,
		StreamTopic: "clickstream", FlushThresholdRows: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForConsuming("events_REALTIME", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		msg, _ := json.Marshal(map[string]any{"country": "us", "clicks": i, "day": 100})
		if err := c.Produce("clickstream", nil, msg); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.Query(context.Background(), "SELECT count(*) FROM events")
		if err == nil && res.Rows[0][0].(int64) == 25 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("realtime rows never visible: %v %v", res, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFacadeStarTreeSegment(t *testing.T) {
	schema := facadeSchema(t)
	rows := make([]Row, 0, 200)
	for i := 0; i < 200; i++ {
		rows = append(rows, Row{[]string{"us", "de"}[i%2], int64(i), int64(100 + i%3)})
	}
	blob, err := BuildSegmentBlob("events", "s0", schema, IndexConfig{}, rows, &StarTreeConfig{
		DimensionSplitOrder: []string{"country", "day"},
		Metrics:             []string{"clicks"},
		MaxLeafRecords:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.AddTable(&TableConfig{Name: "events", Type: Offline, Schema: schema, Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.UploadSegment("events_OFFLINE", blob); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), "SELECT sum(clicks) FROM events WHERE country = 'us'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StarTreeSegments != 1 {
		t.Fatalf("star tree unused: %+v", res.Stats)
	}
	var want float64
	for i := 0; i < 200; i += 2 {
		want += float64(i)
	}
	if got := res.Rows[0][0].(float64); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestFacadeBuildErrors(t *testing.T) {
	schema := facadeSchema(t)
	if _, err := BuildSegmentBlob("t", "s", schema, IndexConfig{SortColumn: "nope"}, nil, nil); err == nil {
		t.Fatal("bad index config accepted")
	}
	if _, err := BuildSegmentBlob("t", "s", schema, IndexConfig{}, []Row{{"only-one-field"}}, nil); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := BuildSegmentBlob("t", "s", schema, IndexConfig{}, nil, nil); err == nil {
		t.Fatal("empty segment accepted")
	}
	rows := []Row{{"us", int64(1), int64(1)}}
	if _, err := BuildSegmentBlob("t", "s", schema, IndexConfig{}, rows, &StarTreeConfig{}); err == nil {
		t.Fatal("bad star tree config accepted")
	}
}

func TestFacadeMinionPurge(t *testing.T) {
	c, err := NewCluster(ClusterOptions{Minions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	schema := facadeSchema(t)
	if err := c.AddTable(&TableConfig{Name: "events", Type: Offline, Schema: schema, Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := 0; i < 40; i++ {
		rows = append(rows, Row{fmt.Sprintf("c%d", i%4), int64(i), int64(100)})
	}
	blob, _ := BuildSegmentBlob("events", "events_0", schema, IndexConfig{}, rows, nil)
	if err := c.UploadSegment("events_OFFLINE", blob); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	err = c.ScheduleTask(&Task{
		ID: "p1", Type: "purge", Resource: "events_OFFLINE", Segment: "events_0",
		PurgeColumn: "country", PurgeValues: []string{"c2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := c.Query(context.Background(), "SELECT count(*) FROM events")
		if err == nil && res.Rows[0][0].(int64) == 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("purge never took effect")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
