// Multi-level segment pruning benchmarks (DESIGN.md "Segment pruning").
// The fixture spreads disjoint day ranges, category sets, and bucket ranges
// across many segments so a selective filter overlaps exactly one of them;
// the On/Off pairs measure the same query with zone-map pruning live versus
// Options.DisablePruning planning every segment.
package pinot

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pinot/internal/query"
	"pinot/internal/segment"
)

const (
	pruneBenchSegments = 64
	pruneBenchRows     = 2000
)

var (
	pruneBenchOnce   sync.Once
	pruneBenchSegs   []query.IndexedSegment
	pruneBenchSchema *segment.Schema
	pruneBenchErr    error
)

// pruneBenchFixture builds 64 immutable segments; segment i covers days
// [17000+10i, 17000+10i+9], categories cat(4i)..cat(4i+3), and buckets
// [100i, 100i+99], so time, bloom, and range predicates each isolate one.
func pruneBenchFixture(b *testing.B) ([]query.IndexedSegment, *segment.Schema) {
	b.Helper()
	pruneBenchOnce.Do(func() {
		schema, err := segment.NewSchema("prunetbl", []segment.FieldSpec{
			{Name: "category", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
			{Name: "bucket", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
			{Name: "hits", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
			{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true, TimeUnit: "DAYS"},
		})
		if err != nil {
			pruneBenchErr = err
			return
		}
		pruneBenchSchema = schema
		for i := 0; i < pruneBenchSegments; i++ {
			sb, err := segment.NewBuilder("prunetbl", fmt.Sprintf("prunetbl_%d", i), schema, segment.IndexConfig{})
			if err != nil {
				pruneBenchErr = err
				return
			}
			for r := 0; r < pruneBenchRows; r++ {
				row := segment.Row{
					fmt.Sprintf("cat%d", 4*i+r%4),
					int64(100*i + r%100),
					int64(r),
					int64(17000 + 10*i + r%10),
				}
				if err := sb.Add(row); err != nil {
					pruneBenchErr = err
					return
				}
			}
			seg, err := sb.Build()
			if err != nil {
				pruneBenchErr = err
				return
			}
			pruneBenchSegs = append(pruneBenchSegs, query.IndexedSegment{Seg: seg})
		}
	})
	if pruneBenchErr != nil {
		b.Fatal(pruneBenchErr)
	}
	return pruneBenchSegs, pruneBenchSchema
}

func benchPruneQuery(b *testing.B, q string, opts query.Options) {
	b.Helper()
	segs, schema := pruneBenchFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Run(ctx, q, segs, schema, opts); err != nil {
			b.Fatalf("%s: %v", q, err)
		}
	}
}

// Selective time range: overlaps only segment 0, and only part of it, so the
// surviving segment still executes the filter (no metadata short-circuit).
const pruneTimeRangeQ = "SELECT count(*), sum(hits) FROM prunetbl WHERE day BETWEEN 17003 AND 17007"

func BenchmarkPruneTimeRangeOn(b *testing.B) {
	benchPruneQuery(b, pruneTimeRangeQ, query.Options{})
}

func BenchmarkPruneTimeRangeOff(b *testing.B) {
	benchPruneQuery(b, pruneTimeRangeQ, query.Options{DisablePruning: true})
}

// Point lookup on a dictionary value: cat130 lives only in segment 32, but
// its string falls inside the lexical [min, max] of several other segments —
// only the dictionary bloom filter rules those out.
const pruneBloomEqQ = "SELECT count(*), max(hits) FROM prunetbl WHERE category = 'cat130'"

func BenchmarkPruneBloomEqOn(b *testing.B) {
	benchPruneQuery(b, pruneBloomEqQ, query.Options{})
}

func BenchmarkPruneBloomEqOff(b *testing.B) {
	benchPruneQuery(b, pruneBloomEqQ, query.Options{DisablePruning: true})
}
