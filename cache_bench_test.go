// Result-cache A/B benchmark (DESIGN.md "Multi-tier caching"). The fixture
// is an offline-only table, so a warm broker answers the repeated query
// entirely from its result cache — no scatter at all — while the cold path
// re-runs the full broker→server fan-out. The benchmark measures both sides
// explicitly (invalidating between cold runs) and reports the p50 speedup,
// failing if the warm path is not at least 10x faster; the b.N loop then
// times the warm path, which is the steady state a dashboard workload sees.
package pinot

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"pinot/internal/cluster"
	"pinot/internal/server"
)

var (
	cacheBenchOnce sync.Once
	cacheBenchC    *cluster.Cluster
	cacheBenchErr  error
)

func cacheBenchCluster(b *testing.B) *cluster.Cluster {
	b.Helper()
	cacheBenchOnce.Do(func() {
		// The server-side aggregate cache would answer the "cold" runs from
		// warm per-segment state and flatten the A/B contrast; this
		// benchmark isolates the broker result-cache tier.
		c, err := cluster.NewLocal(cluster.Options{
			Servers:        2,
			ServerTemplate: server.Config{DisableServerCache: true},
		})
		if err != nil {
			cacheBenchErr = err
			return
		}
		schema, err := NewSchema("cbench", []FieldSpec{
			{Name: "country", Type: TypeString, Kind: Dimension, SingleValue: true},
			{Name: "clicks", Type: TypeLong, Kind: Metric, SingleValue: true},
			{Name: "day", Type: TypeLong, Kind: Time, SingleValue: true, TimeUnit: "DAYS"},
		})
		if err != nil {
			cacheBenchErr = err
			return
		}
		if err := c.AddTable(&TableConfig{Name: "cbench", Type: Offline, Schema: schema, Replicas: 2}); err != nil {
			cacheBenchErr = err
			return
		}
		countries := []string{"us", "de", "fr", "jp"}
		// Heavy enough that the cold scatter dominates the per-query fixed
		// cost (parse, route, merge): 4 segments x 40k rows, each cold run
		// scanning the 10k matching 'us' rows per segment.
		for si := 0; si < 4; si++ {
			rows := make([]Row, 0, 40000)
			for r := 0; r < 40000; r++ {
				rows = append(rows, Row{countries[r%4], int64(r), int64(17000 + r%30)})
			}
			blob, err := BuildSegmentBlob("cbench", fmt.Sprintf("cbench_%d", si), schema, IndexConfig{}, rows, nil)
			if err != nil {
				cacheBenchErr = err
				return
			}
			if err := c.UploadSegment("cbench_OFFLINE", blob); err != nil {
				cacheBenchErr = err
				return
			}
		}
		if err := c.WaitForOnline("cbench_OFFLINE", 4, 10*time.Second); err != nil {
			cacheBenchErr = err
			return
		}
		cacheBenchC = c
	})
	if cacheBenchErr != nil {
		b.Fatal(cacheBenchErr)
	}
	return cacheBenchC
}

const cacheBenchQ = "SELECT count(*), sum(clicks), max(clicks) FROM cbench WHERE country = 'us' GROUP BY day"

func BenchmarkResultCacheColdVsWarm(b *testing.B) {
	c := cacheBenchCluster(b)
	cache := c.Broker().ResultCache()
	if cache == nil {
		b.Fatal("broker result cache is disabled in this fixture")
	}
	ctx := context.Background()
	exec := func() {
		if _, err := c.Execute(ctx, cacheBenchQ); err != nil {
			b.Fatal(err)
		}
	}
	// Warm the routing table, scheduler and allocator caches so the cold
	// samples measure scatter/merge work, not first-query setup.
	for i := 0; i < 20; i++ {
		exec()
	}
	// p50 over an odd sample count is robust to scheduler noise at the CI's
	// -benchtime 1x smoke runs, where this assertion still executes.
	const samples = 33
	p50 := func(pre func()) time.Duration {
		ds := make([]time.Duration, samples)
		for i := range ds {
			if pre != nil {
				pre()
			}
			start := time.Now()
			exec()
			ds[i] = time.Since(start)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[samples/2]
	}
	cold := p50(func() { cache.InvalidateAll() })
	warm := p50(nil)
	ratio := float64(cold) / float64(warm)
	if ratio < 10 {
		b.Fatalf("warm p50 %v is only %.1fx faster than cold p50 %v, want >= 10x", warm, ratio, cold)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec()
	}
	// After ResetTimer (which clears user metrics), attach the measured A/B
	// ratio to the ns/op line.
	b.ReportMetric(ratio, "cold/warm-p50")
}
