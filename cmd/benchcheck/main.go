// Command benchcheck guards the committed benchmark baseline: it reads
// BENCH_baseline.json and a `go test -bench` text run on stdin, and fails if
// any baseline benchmark name no longer appears in the run — a silently
// deleted or renamed benchmark is a hole in the performance story, not a
// cleanup. It compares names only, never timings, so it is safe for CI.
//
// Any arguments after the baseline path are required benchmark names: each
// must appear in BOTH the baseline and the run, so headline results (e.g.
// the segment-pruning A/B pairs) cannot be dropped from the baseline itself
// without CI noticing.
//
//	Usage: go test -run NONE -bench . -benchtime 1x ./... | \
//		benchcheck BENCH_baseline.json [RequiredBenchmarkName...]
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

type baseline struct {
	Benchmarks []struct {
		Name string `json:"name"`
	} `json:"benchmarks"`
}

// canonical strips the -N GOMAXPROCS suffix go test appends to benchmark
// names, so a baseline captured at one parallelism matches a run at another.
func canonical(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		allDigits := i+1 < len(name)
		for _, r := range name[i+1:] {
			if r < '0' || r > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			return name[:i]
		}
	}
	return name
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_baseline.json [RequiredBenchmarkName...] < bench-output.txt")
		os.Exit(2)
	}
	required := os.Args[2:]
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: parse %s: %v\n", os.Args[1], err)
		os.Exit(2)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %s lists no benchmarks\n", os.Args[1])
		os.Exit(2)
	}

	ran := map[string]bool{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		ran[canonical(f[0])] = true
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}

	var missing []string
	seen := map[string]bool{}
	for _, b := range base.Benchmarks {
		name := canonical(b.Name)
		if seen[name] {
			continue
		}
		seen[name] = true
		if !ran[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintf(os.Stderr, "benchcheck: %d baseline benchmark(s) missing from this run:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}

	var unmet []string
	for _, want := range required {
		name := canonical(want)
		switch {
		case !seen[name]:
			unmet = append(unmet, name+" (not in baseline)")
		case !ran[name]:
			unmet = append(unmet, name+" (not in run)")
		}
	}
	if len(unmet) > 0 {
		sort.Strings(unmet)
		fmt.Fprintf(os.Stderr, "benchcheck: %d required benchmark(s) unmet:\n", len(unmet))
		for _, m := range unmet {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: all %d baseline benchmarks present, %d required names satisfied (%d ran)\n", len(seen), len(required), len(ran))
}
