// Command pinot runs an all-in-one Pinot cluster in a single process —
// controllers, servers, brokers and minions over the in-memory substrates —
// and exposes the controller and broker HTTP APIs.
//
//	pinot -servers 3 -brokers 2 -controller-addr :9000 -broker-addr :8099
//
// Then:
//
//	curl -X POST localhost:9000/tables  -d @table-config.json
//	curl -X POST localhost:9000/segments/events_OFFLINE --data-binary @events_0.seg
//	curl -X POST localhost:8099/query   -d '{"pql": "SELECT count(*) FROM events"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pinot/internal/broker"
	"pinot/internal/cluster"
	"pinot/internal/httpapi"
	"pinot/internal/metrics"
)

func main() {
	var (
		name           = flag.String("cluster", "pinot", "cluster name")
		controllers    = flag.Int("controllers", 1, "controller instances")
		servers        = flag.Int("servers", 2, "server instances")
		brokers        = flag.Int("brokers", 1, "broker instances")
		minions        = flag.Int("minions", 1, "minion instances")
		controllerAddr = flag.String("controller-addr", ":9000", "controller HTTP listen address")
		brokerAddr     = flag.String("broker-addr", ":8099", "broker HTTP listen address")
		strategy       = flag.String("routing", "balanced", "broker routing strategy: balanced|largeCluster")
		partitionAware = flag.Bool("partition-aware", false, "enable partition-aware routing")
		streamTopics   = flag.String("topics", "", "comma-separated topic:partitions to pre-create, e.g. events:4")
	)
	flag.Parse()

	c, err := cluster.NewLocal(cluster.Options{
		Name:        *name,
		Controllers: *controllers,
		Servers:     *servers,
		Brokers:     *brokers,
		Minions:     *minions,
		BrokerTemplate: broker.Config{
			Strategy:       broker.Strategy(*strategy),
			PartitionAware: *partitionAware,
		},
		// The binary is one process = one cluster, so the process-wide
		// default registry (which the transport package also records into)
		// is the right home for every component's metrics.
		Metrics: metrics.Default(),
	})
	if err != nil {
		log.Fatalf("cluster start: %v", err)
	}
	defer c.Shutdown()

	if *streamTopics != "" {
		if err := createTopics(c, *streamTopics); err != nil {
			log.Fatalf("topics: %v", err)
		}
	}

	leader, err := c.WaitForLeader(10 * time.Second)
	if err != nil {
		log.Fatalf("no leader: %v", err)
	}
	ctrlSrv := &http.Server{Addr: *controllerAddr, Handler: httpapi.NewControllerHandler(leader)}
	brokerSrv := &http.Server{Addr: *brokerAddr, Handler: httpapi.NewBrokerHandler(c.Broker())}
	go func() {
		log.Printf("controller API on %s", *controllerAddr)
		if err := ctrlSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("controller http: %v", err)
		}
	}()
	go func() {
		log.Printf("broker API on %s", *brokerAddr)
		if err := brokerSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("broker http: %v", err)
		}
	}()
	log.Printf("cluster %q up: %d controllers, %d servers, %d brokers, %d minions",
		*name, *controllers, *servers, *brokers, *minions)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	_ = ctrlSrv.Close()
	_ = brokerSrv.Close()
}

func createTopics(c *cluster.Cluster, spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, count, ok := strings.Cut(item, ":")
		partitions, err := strconv.Atoi(count)
		if !ok || err != nil || partitions <= 0 || name == "" {
			return fmt.Errorf("bad topic spec %q (want name:partitions)", item)
		}
		if _, err := c.Streams.CreateTopic(name, partitions); err != nil {
			return err
		}
		log.Printf("created topic %s with %d partitions", name, partitions)
	}
	return nil
}
