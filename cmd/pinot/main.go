// Command pinot runs a Pinot cluster. The default role, "all", keeps the
// original behavior: a complete single-process cluster — controllers,
// servers, brokers and minions over the in-memory substrates — exposing the
// controller and broker HTTP APIs.
//
//	pinot -servers 3 -brokers 2 -controller-addr :9000 -broker-addr :8099
//
// The other roles split the same components across real OS processes that
// share cluster state through the controller's TCP metadata endpoint and a
// filesystem object store, and scatter queries over the framed TCP data
// plane (offline tables; stream ingestion stays in-process-only):
//
//	pinot -role controller -zk-listen :2181 -objstore-dir /tmp/pinot-store
//	pinot -role server -instance server1 -zk localhost:2181 -objstore-dir /tmp/pinot-store
//	pinot -role server -instance server2 -zk localhost:2181 -objstore-dir /tmp/pinot-store
//	pinot -role broker -zk localhost:2181 -broker-addr :8099
//
// Then:
//
//	curl -X POST localhost:9000/tables  -d @table-config.json
//	curl -X POST localhost:9000/segments/events_OFFLINE --data-binary @events_0.seg
//	curl -X POST localhost:8099/query   -d '{"pql": "SELECT count(*) FROM events"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"pinot/internal/broker"
	"pinot/internal/cluster"
	"pinot/internal/controller"
	"pinot/internal/helix"
	"pinot/internal/httpapi"
	"pinot/internal/metrics"
	"pinot/internal/objstore"
	"pinot/internal/server"
	"pinot/internal/stream"
	"pinot/internal/transport"
	"pinot/internal/zkmeta"
)

func main() {
	var (
		role           = flag.String("role", "all", "process role: all|controller|server|broker")
		name           = flag.String("cluster", "pinot", "cluster name")
		instance       = flag.String("instance", "", "instance name (server/broker roles; defaults per role)")
		controllers    = flag.Int("controllers", 1, "controller instances (role=all)")
		servers        = flag.Int("servers", 2, "server instances (role=all)")
		brokers        = flag.Int("brokers", 1, "broker instances (role=all)")
		minions        = flag.Int("minions", 1, "minion instances (role=all)")
		controllerAddr = flag.String("controller-addr", ":9000", "controller HTTP listen address")
		brokerAddr     = flag.String("broker-addr", ":8099", "broker HTTP listen address")
		strategy       = flag.String("routing", "balanced", "broker routing strategy: balanced|largeCluster")
		partitionAware = flag.Bool("partition-aware", false, "enable partition-aware routing")
		streamTopics   = flag.String("topics", "", "comma-separated topic:partitions to pre-create, e.g. events:4")
		zkListen       = flag.String("zk-listen", ":2181", "metadata TCP listen address (role=controller)")
		zkAddr         = flag.String("zk", "localhost:2181", "metadata TCP endpoint (roles server/broker)")
		objstoreDir    = flag.String("objstore-dir", "", "shared filesystem object store directory (multi-process roles)")
		transportAddr  = flag.String("transport-addr", "127.0.0.1:0", "framed-TCP data plane listen address (roles controller/server)")
		queryDelay     = flag.Duration("debug-query-delay", 0, "artificial per-query latency on this server (testing hook)")

		disableResultCache = flag.Bool("disable-result-cache", false, "A/B lever: turn off the broker result cache (roles all/broker)")
		resultCacheBytes   = flag.Int64("result-cache-bytes", 0, "broker result cache capacity in bytes (0 = 64 MiB default)")
		disableServerCache = flag.Bool("disable-server-cache", false, "A/B lever: turn off the server partial-aggregate cache (roles all/server)")
		serverCacheBytes   = flag.Int64("server-cache-bytes", 0, "server partial-aggregate cache capacity in bytes (0 = 64 MiB default)")
	)
	flag.Parse()
	caches := cacheFlags{
		disableResult: *disableResultCache,
		resultBytes:   *resultCacheBytes,
		disableServer: *disableServerCache,
		serverBytes:   *serverCacheBytes,
	}

	switch *role {
	case "all":
		runAll(*name, *controllers, *servers, *brokers, *minions, *controllerAddr, *brokerAddr, *strategy, *partitionAware, *streamTopics, caches)
	case "controller":
		runController(*name, *zkListen, *objstoreDir, *controllerAddr, *transportAddr)
	case "server":
		runServer(*name, *instance, *zkAddr, *objstoreDir, *transportAddr, *queryDelay, caches)
	case "broker":
		runBroker(*name, *instance, *zkAddr, *brokerAddr, *strategy, *partitionAware, caches)
	default:
		log.Fatalf("unknown role %q (want all|controller|server|broker)", *role)
	}
}

func awaitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
}

// cacheFlags carries the multi-tier cache levers from the command line to
// whichever roles this process hosts. Both caches are on by default;
// the disable flags are the A/B switches DESIGN.md describes.
type cacheFlags struct {
	disableResult bool
	resultBytes   int64
	disableServer bool
	serverBytes   int64
}

func runAll(name string, controllers, servers, brokers, minions int, controllerAddr, brokerAddr, strategy string, partitionAware bool, streamTopics string, caches cacheFlags) {
	c, err := cluster.NewLocal(cluster.Options{
		Name:        name,
		Controllers: controllers,
		Servers:     servers,
		Brokers:     brokers,
		Minions:     minions,
		BrokerTemplate: broker.Config{
			Strategy:           broker.Strategy(strategy),
			PartitionAware:     partitionAware,
			DisableResultCache: caches.disableResult,
			ResultCacheBytes:   caches.resultBytes,
		},
		ServerTemplate: server.Config{
			DisableServerCache: caches.disableServer,
			ServerCacheBytes:   caches.serverBytes,
		},
		// The binary is one process = one cluster, so the process-wide
		// default registry (which the transport package also records into)
		// is the right home for every component's metrics.
		Metrics: metrics.Default(),
	})
	if err != nil {
		log.Fatalf("cluster start: %v", err)
	}
	defer c.Shutdown()

	if streamTopics != "" {
		if err := createTopics(c, streamTopics); err != nil {
			log.Fatalf("topics: %v", err)
		}
	}

	leader, err := c.WaitForLeader(10 * time.Second)
	if err != nil {
		log.Fatalf("no leader: %v", err)
	}
	ctrlSrv := serveHTTP("controller", controllerAddr, httpapi.NewControllerHandler(leader))
	brokerSrv := serveHTTP("broker", brokerAddr, httpapi.NewBrokerHandler(c.Broker()))
	log.Printf("cluster %q up: %d controllers, %d servers, %d brokers, %d minions",
		name, controllers, servers, brokers, minions)
	awaitSignal()
	_ = ctrlSrv.Close()
	_ = brokerSrv.Close()
}

func serveHTTP(what, addr string, handler http.Handler) *http.Server {
	srv := &http.Server{Addr: addr, Handler: handler}
	go func() {
		log.Printf("%s API on %s", what, addr)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("%s http: %v", what, err)
		}
	}()
	return srv
}

func mustObjstore(dir string) objstore.Store {
	if dir == "" {
		log.Fatal("multi-process roles require -objstore-dir (a directory shared by controller and servers)")
	}
	fs, err := objstore.NewFS(dir)
	if err != nil {
		log.Fatalf("objstore: %v", err)
	}
	return fs
}

// runController hosts the cluster metadata (an in-process zkmeta store
// served over TCP for the other processes), the lead controller, its HTTP
// API and a data-plane listener answering segment-completion frames.
func runController(name, zkListen, objstoreDir, httpAddr, transportAddr string) {
	store := zkmeta.NewStore()
	zkSrv := zkmeta.NewTCPServer(store)
	zkLis, err := net.Listen("tcp", zkListen)
	if err != nil {
		log.Fatalf("zk listen: %v", err)
	}
	go zkSrv.Serve(zkLis)
	defer zkSrv.Close()
	log.Printf("metadata endpoint on %s", zkLis.Addr())

	ctrl := controller.New(controller.Config{
		Cluster:  name,
		Instance: "controller1",
		Metrics:  metrics.Default(),
	}, store, mustObjstore(objstoreDir), stream.NewCluster())
	if err := ctrl.Start(); err != nil {
		log.Fatalf("controller start: %v", err)
	}
	defer ctrl.Stop()

	dataSrv := transport.NewTCPQueryServer(nil)
	dataSrv.Controller = ctrl
	dataLis, err := net.Listen("tcp", transportAddr)
	if err != nil {
		log.Fatalf("transport listen: %v", err)
	}
	go dataSrv.Serve(dataLis)
	defer dataSrv.Close()
	log.Printf("completion data plane on %s", dataLis.Addr())

	httpSrv := serveHTTP("controller", httpAddr, httpapi.NewControllerHandler(ctrl))
	awaitSignal()
	_ = httpSrv.Close()
}

// runServer joins the cluster through the remote metadata endpoint, serves
// the framed query protocol on its advertised address, and loads segments
// from the shared filesystem object store.
func runServer(name, instance, zkAddr, objstoreDir, transportAddr string, queryDelay time.Duration, caches cacheFlags) {
	if instance == "" {
		instance = fmt.Sprintf("server-%d", os.Getpid())
	}
	lis, err := net.Listen("tcp", transportAddr)
	if err != nil {
		log.Fatalf("transport listen: %v", err)
	}
	remote := zkmeta.NewRemote(zkAddr)
	srv := server.New(server.Config{
		Cluster:            name,
		Instance:           instance,
		AdvertiseAddr:      lis.Addr().String(),
		Metrics:            metrics.Default(),
		DisableServerCache: caches.disableServer,
		ServerCacheBytes:   caches.serverBytes,
	}, remote, mustObjstore(objstoreDir), stream.NewCluster(), func() []transport.ControllerClient { return nil })
	if queryDelay > 0 {
		srv.InjectLatency(queryDelay)
	}
	if err := srv.Start(); err != nil {
		log.Fatalf("server start: %v", err)
	}
	defer srv.Stop()

	dataSrv := transport.NewTCPQueryServer(srv)
	go dataSrv.Serve(lis)
	defer dataSrv.Close()
	log.Printf("server %s: data plane on %s", instance, lis.Addr())
	awaitSignal()
}

// runBroker joins the cluster through the remote metadata endpoint and
// scatters queries over TCP, resolving server instances to data-plane
// addresses from their registered instance configs (briefly cached).
func runBroker(name, instance, zkAddr, httpAddr, strategy string, partitionAware bool, caches cacheFlags) {
	if instance == "" {
		instance = fmt.Sprintf("broker-%d", os.Getpid())
	}
	remote := zkmeta.NewRemote(zkAddr)
	pool := transport.NewPool()
	defer pool.Close()
	registry := transport.NewTCPRegistry(newAddrResolver(remote, name, 2*time.Second), pool)
	br := broker.New(broker.Config{
		Cluster:            name,
		Instance:           instance,
		Strategy:           broker.Strategy(strategy),
		PartitionAware:     partitionAware,
		Metrics:            metrics.Default(),
		DisableResultCache: caches.disableResult,
		ResultCacheBytes:   caches.resultBytes,
	}, remote, registry)
	if err := br.Start(); err != nil {
		log.Fatalf("broker start: %v", err)
	}
	defer br.Stop()
	httpSrv := serveHTTP("broker", httpAddr, httpapi.NewBrokerHandler(br))
	log.Printf("broker %s up", instance)
	awaitSignal()
	_ = httpSrv.Close()
}

// newAddrResolver resolves instance names to advertised data-plane
// addresses via the metadata store, caching hits briefly so each scattered
// query does not re-read instance configs.
func newAddrResolver(endpoint zkmeta.Endpoint, cluster string, ttl time.Duration) func(string) (string, bool) {
	type entry struct {
		addr    string
		ok      bool
		expires time.Time
	}
	var (
		mu    sync.Mutex
		sess  = endpoint.NewClient()
		admin = helix.NewAdmin(sess, cluster)
		cache = map[string]entry{}
	)
	return func(instance string) (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		if e, ok := cache[instance]; ok && time.Now().Before(e.expires) {
			return e.addr, e.ok
		}
		if sess.Expired() {
			// Lazy reconnect: the metadata connection died (or never came
			// up); try a fresh session on each miss until one sticks.
			sess = endpoint.NewClient()
			admin = helix.NewAdmin(sess, cluster)
			cache = map[string]entry{}
		}
		cfg, err := admin.InstanceConfigOf(instance)
		e := entry{addr: cfg.Addr, ok: err == nil && cfg.Addr != "", expires: time.Now().Add(ttl)}
		cache[instance] = e
		return e.addr, e.ok
	}
}

func createTopics(c *cluster.Cluster, spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, count, ok := strings.Cut(item, ":")
		partitions, err := strconv.Atoi(count)
		if !ok || err != nil || partitions <= 0 || name == "" {
			return fmt.Errorf("bad topic spec %q (want name:partitions)", item)
		}
		if _, err := c.Streams.CreateTopic(name, partitions); err != nil {
			return err
		}
		log.Printf("created topic %s with %d partitions", name, partitions)
	}
	return nil
}
