package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"pinot/internal/segment"
	"pinot/internal/table"
)

// buildPinot compiles the pinot binary once into a temp dir.
func buildPinot(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pinot")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for a child process.
func freeAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// startProc launches one pinot process, teeing its output to the test log
// directory so failures are debuggable.
func startProc(t *testing.T, bin, name, logDir string, args ...string) *exec.Cmd {
	t.Helper()
	logf, err := os.Create(filepath.Join(logDir, name+".log"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		logf.Close()
	})
	return cmd
}

func waitHealthy(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/health")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", url)
}

// e2eResponse mirrors the broker's JSON query response.
type e2eResponse struct {
	Rows             [][]any  `json:"rows"`
	Partial          bool     `json:"partial"`
	Exceptions       []string `json:"exceptions"`
	ServersQueried   int      `json:"serversQueried"`
	ServersResponded int      `json:"serversResponded"`
}

func postQuery(brokerURL, pqlText string) (*e2eResponse, error) {
	body, _ := json.Marshal(map[string]string{"pql": pqlText})
	resp, err := http.Post(brokerURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("query status %d", resp.StatusCode)
	}
	var out e2eResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func e2eBlob(t *testing.T, name string, start, n int) []byte {
	t.Helper()
	s, err := segment.NewSchema("events", []segment.FieldSpec{
		{Name: "country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "clicks", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := segment.NewBuilder("events", name, s, segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	countries := []string{"us", "de", "fr"}
	for i := start; i < start+n; i++ {
		if err := b.Add(segment.Row{countries[i%3], int64(i), int64(100 + i%5)}); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestMultiProcessKillNineMidScatter runs a controller, two servers and a
// broker as separate OS processes over the TCP metadata and data planes,
// loads an unreplicated offline table, then kill -9s one server while a
// query is mid-scatter. The broker must return an explicitly partial result
// — never an error, never silently wrong data — and the dead server's
// ephemeral session must be reaped by the metadata endpoint.
func TestMultiProcessKillNineMidScatter(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	bin := buildPinot(t)
	logDir := t.TempDir()
	objDir := t.TempDir()
	zkAddr := freeAddr(t)
	ctrlHTTP := freeAddr(t)
	brokerHTTP := freeAddr(t)

	startProc(t, bin, "controller", logDir,
		"-role", "controller", "-zk-listen", zkAddr, "-objstore-dir", objDir,
		"-controller-addr", ctrlHTTP, "-transport-addr", "127.0.0.1:0")
	ctrlURL := "http://" + ctrlHTTP
	waitHealthy(t, ctrlURL, 10*time.Second)

	// A deliberate per-query delay on the servers widens the window in
	// which the kill lands mid-scatter.
	const queryDelay = 400 * time.Millisecond
	serverArgs := func(instance string) []string {
		return []string{"-role", "server", "-instance", instance, "-zk", zkAddr,
			"-objstore-dir", objDir, "-transport-addr", "127.0.0.1:0",
			"-debug-query-delay", queryDelay.String()}
	}
	startProc(t, bin, "server1", logDir, serverArgs("server1")...)
	victim := startProc(t, bin, "server2", logDir, serverArgs("server2")...)

	startProc(t, bin, "broker", logDir,
		"-role", "broker", "-instance", "broker1", "-zk", zkAddr, "-broker-addr", brokerHTTP)
	brokerURL := "http://" + brokerHTTP
	waitHealthy(t, brokerURL, 10*time.Second)

	// Table with one replica per segment: losing a server must lose data,
	// so a masked (retried) recovery is impossible and partial is the only
	// correct answer.
	cfgJSON, err := json.Marshal(&table.Config{
		Name: "events", Type: table.Offline,
		Schema: func() *segment.Schema {
			s, _ := segment.NewSchema("events", []segment.FieldSpec{
				{Name: "country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
				{Name: "clicks", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
				{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true},
			})
			return s
		}(),
		Replicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ctrlURL+"/tables", "application/json", bytes.NewReader(cfgJSON))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("create table: status %d", resp.StatusCode)
	}
	for i := 0; i < 4; i++ {
		blob := e2eBlob(t, fmt.Sprintf("events_%d", i), i*100, 100)
		resp, err := http.Post(ctrlURL+"/segments/events_OFFLINE", "application/octet-stream", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			t.Fatalf("upload segment %d: status %d", i, resp.StatusCode)
		}
	}

	// The cluster is correct over TCP: a full scatter across both server
	// processes returns the exact count. The deadline is generous because CI
	// may run this alongside the full race suite.
	deadline := time.Now().Add(180 * time.Second)
	var full *e2eResponse
	for {
		full, err = postQuery(brokerURL, "SELECT count(*) FROM events")
		if err == nil && !full.Partial && len(full.Rows) == 1 && full.Rows[0][0].(float64) == 400 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached full count 400 (last: %+v, %v)", full, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if full.ServersQueried != 2 {
		t.Fatalf("scatter covered %d servers, want 2", full.ServersQueried)
	}

	// Fire a query, then kill -9 the victim while the servers are still
	// sitting in their injected delay: the scatter is in flight.
	type result struct {
		res *e2eResponse
		err error
	}
	done := make(chan result, 1)
	go func() {
		res, err := postQuery(brokerURL, "SELECT count(*), sum(clicks) FROM events")
		done <- result{res, err}
	}()
	time.Sleep(queryDelay / 4)
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9: %v", err)
	}

	var r result
	select {
	case r = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("query hung after kill -9 mid-scatter")
	}
	if r.err != nil {
		t.Fatalf("query failed outright after kill -9: %v", r.err)
	}
	if !r.res.Partial {
		t.Fatalf("want explicitly partial result after kill -9, got %+v", r.res)
	}
	if r.res.ServersResponded >= r.res.ServersQueried {
		t.Fatalf("queried/responded = %d/%d, want responded < queried",
			r.res.ServersQueried, r.res.ServersResponded)
	}
	if len(r.res.Exceptions) == 0 {
		t.Fatal("partial result carries no exceptions")
	}
	if got := r.res.Rows[0][0].(float64); got >= 400 {
		t.Fatalf("partial count = %v, want < 400 (victim held unreplicated segments)", got)
	}

	// The kill -9 also dropped the victim's metadata connection, so the
	// metadata endpoint reaps its ephemeral liveness node and the
	// controller reassigns the lost segments to the survivor from the
	// shared object store. The cluster must heal: exact results resume,
	// served entirely by the one live server.
	deadline = time.Now().Add(30 * time.Second)
	for {
		res, err := postQuery(brokerURL, "SELECT count(*) FROM events")
		if err == nil && !res.Partial && len(res.Rows) == 1 &&
			res.Rows[0][0].(float64) == 400 && res.ServersQueried == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never healed after kill -9 (last: %+v, %v)", res, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
