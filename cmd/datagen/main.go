// Command datagen builds the synthetic evaluation datasets as uploadable
// segment blobs plus the matching table-config JSON, for use with the pinot
// process and pinot-cli.
//
//	datagen -dataset wvmp -out ./data -segments 4 -rows 100000
//	pinot-cli add-table ./data/wvmp-table.json
//	pinot-cli upload wvmp_OFFLINE ./data/wvmp_0.seg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pinot/internal/segment"
	"pinot/internal/startree"
	"pinot/internal/table"
	"pinot/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "anomaly", "anomaly|wvmp|impressions")
		out      = flag.String("out", "./data", "output directory")
		segments = flag.Int("segments", 4, "number of segments")
		rows     = flag.Int("rows", 50000, "rows per segment")
		seed     = flag.Int64("seed", 1, "generation seed")
		queries  = flag.Int("queries", 100, "sample queries to emit")
		noIndex  = flag.Bool("no-index", false, "build without the dataset's natural indexes")
	)
	flag.Parse()

	size := workload.SizeConfig{Segments: *segments, RowsPerSegment: *rows, Seed: *seed}
	var d *workload.Dataset
	switch *dataset {
	case "anomaly":
		d = workload.Anomaly(size)
	case "wvmp":
		d = workload.WVMP(size)
	case "impressions":
		d = workload.Impressions(size, 8)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	idx := segment.IndexConfig{SortColumn: d.SortColumn, InvertedColumns: d.InvertedColumns}
	var st *startree.Config
	if !*noIndex {
		st = d.StarTree
	} else {
		idx = segment.IndexConfig{}
	}

	cfg := &table.Config{
		Name:            d.Name,
		Type:            table.Offline,
		Schema:          d.Schema,
		Replicas:        1,
		SortColumn:      idx.SortColumn,
		InvertedColumns: idx.InvertedColumns,
		StarTree:        st,
		PartitionColumn: d.PartitionColumn,
		NumPartitions:   d.NumPartitions,
	}
	cfgJSON, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	cfgPath := filepath.Join(*out, d.Name+"-table.json")
	if err := os.WriteFile(cfgPath, cfgJSON, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", cfgPath)

	for si := 0; si < d.NumSegments; si++ {
		b, err := segment.NewBuilder(d.Name, fmt.Sprintf("%s_%d", d.Name, si), d.Schema, idx)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range d.Rows(si) {
			if err := b.Add(row); err != nil {
				log.Fatal(err)
			}
		}
		seg, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		if st != nil {
			tree, err := startree.Build(seg, *st)
			if err != nil {
				log.Fatal(err)
			}
			data, err := tree.Marshal()
			if err != nil {
				log.Fatal(err)
			}
			seg.SetStarTreeData(data)
		}
		blob, err := seg.Marshal()
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%d.seg", d.Name, si))
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d rows, %.1f MiB)", path, seg.NumDocs(), float64(len(blob))/(1<<20))
	}

	qPath := filepath.Join(*out, d.Name+"-queries.txt")
	f, err := os.Create(qPath)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range d.Queries(*queries, *seed+1000) {
		fmt.Fprintln(f, q)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d queries)", qPath, *queries)
}
