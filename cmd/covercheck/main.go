// Command covercheck enforces per-package test-coverage floors: it reads
// COVERAGE_baseline.json and a `go test -cover ./...` text run on stdin, and
// fails if any listed package's coverage fell below its floor or stopped
// being reported at all. Floors are set a few points below measured coverage
// so normal churn passes but a deleted test file or an uninstrumented new
// subsystem does not.
//
// Packages absent from the baseline are ignored (new packages opt in by
// adding a floor), so the gate never blocks creating code — only eroding the
// tests of code it already covers.
//
//	Usage: go test -cover ./... | covercheck COVERAGE_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	// Floors maps import path -> minimum coverage percentage.
	Floors map[string]float64 `json:"floors"`
}

// parseCoverLine extracts (package, percent) from one `go test -cover` line:
//
//	ok  	pinot/internal/metrics	0.123s	coverage: 95.2% of statements
//
// Lines without a coverage clause ("[no test files]", FAIL, etc.) report
// ok=false.
func parseCoverLine(line string) (pkg string, pct float64, ok bool) {
	f := strings.Fields(line)
	if len(f) < 2 || f[0] != "ok" {
		return "", 0, false
	}
	pkg = f[1]
	for i, tok := range f {
		if tok != "coverage:" || i+1 >= len(f) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(f[i+1], "%"), 64)
		if err != nil {
			return "", 0, false
		}
		return pkg, v, true
	}
	return "", 0, false
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: covercheck COVERAGE_baseline.json < cover-output.txt")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: parse %s: %v\n", os.Args[1], err)
		os.Exit(2)
	}
	if len(base.Floors) == 0 {
		fmt.Fprintf(os.Stderr, "covercheck: %s lists no floors\n", os.Args[1])
		os.Exit(2)
	}

	got := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if pkg, pct, ok := parseCoverLine(sc.Text()); ok {
			got[pkg] = pct
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(2)
	}

	var failures []string
	pkgs := make([]string, 0, len(base.Floors))
	for pkg := range base.Floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		floor := base.Floors[pkg]
		pct, ok := got[pkg]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: no coverage reported (floor %.1f%%)", pkg, floor))
		case pct < floor:
			failures = append(failures, fmt.Sprintf("%s: coverage %.1f%% below floor %.1f%%", pkg, pct, floor))
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "covercheck: %d package(s) below their coverage floor:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("covercheck: all %d package floors met\n", len(pkgs))
}
