// Command benchfmt converts `go test -bench` text output on stdin into a
// stable JSON snapshot, so benchmark baselines can be committed and diffed
// (see `make bench-json`, which writes BENCH_baseline.json).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	var snap snapshot
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBench(line)
			if !ok {
				continue
			}
			b.Package = pkg
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
}

// parseBench reads one result line: the benchmark name, the iteration count,
// then (value, unit) pairs such as `563033 ns/op` or `1.5 scan-ratio`.
func parseBench(line string) (benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
