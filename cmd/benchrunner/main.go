// Command benchrunner regenerates the paper's evaluation (section 6): for
// every figure it builds the corresponding synthetic workload, runs the
// latency-vs-QPS sweep (or sequential distribution / ratio measurement) for
// each system configuration, and prints the series the figure plots.
//
//	benchrunner -experiment all -scale small
//	benchrunner -experiment fig11 -qps 50,100,200,400,800 -duration 2s
//
// Absolute numbers depend on the host; the reproduction target is the shape:
// which technique wins and by roughly what factor (see EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"pinot/internal/broker"
	"pinot/internal/cluster"
	"pinot/internal/druid"
	"pinot/internal/loadgen"
	"pinot/internal/query"
	"pinot/internal/segment"
	"pinot/internal/table"
	"pinot/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig11|fig12|fig13|fig14|fig15|fig16|table1|all")
		scale      = flag.String("scale", "small", "small|medium|large dataset scale")
		duration   = flag.Duration("duration", 2*time.Second, "duration per sweep point")
		qpsList    = flag.String("qps", "", "comma-separated QPS targets (default per experiment)")
		queries    = flag.Int("queries", 10000, "queries for sequential experiments (fig12, fig13)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent query workers")
		seed       = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	r := &runner{
		scale:    *scale,
		duration: *duration,
		queries:  *queries,
		workers:  *workers,
		seed:     *seed,
	}
	if *qpsList != "" {
		for _, s := range strings.Split(*qpsList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -qps value %q: %v\n", s, err)
				os.Exit(2)
			}
			r.qps = append(r.qps, v)
		}
	}

	experiments := map[string]func() error{
		"table1": r.table1,
		"fig11":  r.fig11,
		"fig12":  r.fig12,
		"fig13":  r.fig13,
		"fig14":  r.fig14,
		"fig15":  r.fig15,
		"fig16":  r.fig16,
	}
	order := []string{"table1", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}
	run := func(name string) {
		fn, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *experiment == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*experiment)
}

type runner struct {
	scale    string
	duration time.Duration
	queries  int
	workers  int
	seed     int64
	qps      []float64
}

func (r *runner) size(smallSegs, smallRows int) workload.SizeConfig {
	mult := 1
	switch r.scale {
	case "medium":
		mult = 4
	case "large":
		mult = 16
	}
	return workload.SizeConfig{Segments: smallSegs, RowsPerSegment: smallRows * mult, Seed: r.seed}
}

func (r *runner) qpsTargets(def []float64) []float64 {
	if len(r.qps) > 0 {
		return r.qps
	}
	return def
}

// system is one line of a figure: a name and a query executor.
type system struct {
	name   string
	target loadgen.Target
}

// engineSystem builds a single-process executor over indexed segments,
// round-robining the sampled query set.
func engineSystem(name string, d *workload.Dataset, v workload.Variant, queries []string) (system, int64, error) {
	segs, bytes, err := d.BuildIndexed(v)
	if err != nil {
		return system{}, 0, err
	}
	opts := v.PlanOptions()
	var idx atomic.Int64
	return system{
		name: name,
		target: func(ctx context.Context) error {
			q := queries[int(idx.Add(1))%len(queries)]
			_, err := query.Run(ctx, q, segs, d.Schema, opts)
			return err
		},
	}, bytes, nil
}

func header(title string) {
	fmt.Printf("\n===== %s =====\n", title)
}

// sweepTable prints a latency-vs-QPS table: one row per target rate, one
// column group per system.
func (r *runner) sweepTable(systems []system, targets []float64) {
	type row struct {
		qps    float64
		points map[string]loadgen.Point
	}
	// Warm each system (cache/JIT/routing-table effects) before
	// measuring.
	for _, s := range systems {
		loadgen.RunOpenLoop(context.Background(), s.target, targets[0], 300*time.Millisecond, r.workers)
	}
	var rows []row
	for _, qps := range targets {
		rw := row{qps: qps, points: map[string]loadgen.Point{}}
		for _, s := range systems {
			rw.points[s.name] = loadgen.RunOpenLoop(context.Background(), s.target, qps, r.duration, r.workers)
		}
		rows = append(rows, rw)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "qps")
	for _, s := range systems {
		fmt.Fprintf(w, "\t%s avg(ms)\t%s p99(ms)", s.name, s.name)
	}
	fmt.Fprintln(w)
	for _, rw := range rows {
		fmt.Fprintf(w, "%.0f", rw.qps)
		for _, s := range systems {
			p := rw.points[s.name]
			fmt.Fprintf(w, "\t%.3f\t%.3f", ms(p.Mean), ms(p.P99))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ---- Table 1 ----

func (r *runner) table1() error {
	header("Table 1: techniques for OLAP and their applicability (qualitative)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Technique\tFast ingest+index\tHigh query rate\tFlexibility\tLatency")
	for _, row := range [][5]string{
		{"RDBMS", "Not typically", "Yes", "High", "Low/moderate"},
		{"KV stores", "Yes", "Yes", "None", "Low"},
		{"Online OLAP", "No", "Not typically", "High", "Low/moderate"},
		{"Offline OLAP", "No", "No", "High", "High"},
		{"Druid", "Yes", "No", "Moderate", "Low/moderate"},
		{"Pinot", "Yes", "Yes", "Moderate", "Low"},
	} {
		fmt.Fprintln(w, strings.Join(row[:], "\t"))
	}
	w.Flush()
	return nil
}

// ---- Figure 11: indexing techniques on the anomaly dataset ----

func (r *runner) anomalySystems() ([]system, *workload.Dataset, error) {
	d := workload.Anomaly(r.size(4, 50000))
	queries := d.Queries(4096, r.seed+100)
	specs := []struct {
		name string
		v    workload.Variant
	}{
		{"druid", workload.Variant{Index: druid.IndexConfig(d.Schema), Druid: true}},
		{"pinot-noindex", workload.Variant{}},
		{"pinot-inverted", workload.Variant{Index: segment.IndexConfig{InvertedColumns: d.InvertedColumns}}},
		{"pinot-startree", workload.Variant{StarTree: d.StarTree}},
	}
	var out []system
	for _, sp := range specs {
		s, bytes, err := engineSystem(sp.name, d, sp.v, queries)
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("  built %-16s %8.1f MiB\n", sp.name, float64(bytes)/(1<<20))
		out = append(out, s)
	}
	return out, d, nil
}

func (r *runner) fig11() error {
	header("Figure 11: latency vs query rate, anomaly detection dataset")
	systems, _, err := r.anomalySystems()
	if err != nil {
		return err
	}
	r.sweepTable(systems, r.qpsTargets([]float64{100, 400, 1600, 3200, 6400}))
	return nil
}

// ---- Figure 12: sequential latency distribution ----

func (r *runner) fig12() error {
	header(fmt.Sprintf("Figure 12: latency distribution, %d sequential queries", r.queries))
	systems, _, err := r.anomalySystems()
	if err != nil {
		return err
	}
	type dist struct {
		name string
		h    *loadgen.Histogram
	}
	var dists []dist
	for _, s := range systems {
		h, errs := loadgen.RunSequential(context.Background(), s.target, r.queries)
		if errs > 0 {
			return fmt.Errorf("%s: %d query errors", s.name, errs)
		}
		dists = append(dists, dist{s.name, h})
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tmean(ms)\tp50(ms)\tp90(ms)\tp95(ms)\tp99(ms)")
	for _, ds := range dists {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n", ds.name,
			ms(ds.h.Mean()), ms(ds.h.Quantile(0.5)), ms(ds.h.Quantile(0.9)),
			ms(ds.h.Quantile(0.95)), ms(ds.h.Quantile(0.99)))
	}
	w.Flush()
	// Density series (the KDE input): per-system bucket counts.
	fmt.Println("\nlatency density (bucket_ms count), per system:")
	for _, ds := range dists {
		var parts []string
		for _, b := range ds.h.Buckets() {
			parts = append(parts, fmt.Sprintf("%.2f:%d", ms(b.Latency), b.Count))
		}
		const maxShow = 24
		if len(parts) > maxShow {
			step := len(parts) / maxShow
			var sampled []string
			for i := 0; i < len(parts); i += step + 1 {
				sampled = append(sampled, parts[i])
			}
			parts = sampled
		}
		fmt.Printf("  %-16s %s\n", ds.name, strings.Join(parts, " "))
	}
	return nil
}

// ---- Figure 13: star-tree scanned/raw ratio distribution ----

func (r *runner) fig13() error {
	header("Figure 13: ratio of star-tree pre-aggregated records scanned vs raw records")
	d := workload.Anomaly(r.size(4, 50000))
	segs, _, err := d.BuildIndexed(workload.Variant{StarTree: d.StarTree})
	if err != nil {
		return err
	}
	queries := d.Queries(r.queries, r.seed+200)
	var ratios []float64
	for _, q := range queries {
		res, err := query.Run(context.Background(), q, segs, d.Schema, query.Options{})
		if err != nil {
			return err
		}
		if res.Stats.StarTreeRawDocs > 0 {
			ratios = append(ratios, float64(res.Stats.StarTreeRecordsScanned)/float64(res.Stats.StarTreeRawDocs))
		}
	}
	if len(ratios) == 0 {
		return fmt.Errorf("no star-tree queries executed")
	}
	sort.Float64s(ratios)
	buckets := make([]int, 20)
	for _, x := range ratios {
		b := int(x * 20)
		if b >= 20 {
			b = 19
		}
		buckets[b]++
	}
	fmt.Println("ratio histogram (bucket upper bound → fraction of queries):")
	for b, n := range buckets {
		if n == 0 {
			continue
		}
		frac := float64(n) / float64(len(ratios))
		fmt.Printf("  %.2f\t%.4f\t%s\n", float64(b+1)/20, frac, strings.Repeat("#", int(frac*60)+1))
	}
	fmt.Printf("median ratio %.4f, p90 %.4f, mean raw docs %d\n",
		ratios[len(ratios)/2], ratios[int(float64(len(ratios))*0.9)], d.NumSegments*d.RowsPerSegment/d.NumSegments)
	return nil
}

// ---- Figure 14: Druid vs Pinot, share analytics ----

func (r *runner) fig14() error {
	header("Figure 14: Druid vs Pinot, share-analytics dataset")
	d := workload.ShareAnalytics(r.size(4, 100000))
	queries := d.Queries(4096, r.seed+300)
	pinot, pinotBytes, err := engineSystem("pinot", d, workload.Variant{
		Index: segment.IndexConfig{SortColumn: d.SortColumn},
	}, queries)
	if err != nil {
		return err
	}
	dr, druidBytes, err := engineSystem("druid", d, workload.Variant{
		Index: druid.IndexConfig(d.Schema), Druid: true,
	}, queries)
	if err != nil {
		return err
	}
	fmt.Printf("  data size: pinot %.1f MiB, druid %.1f MiB (paper: 300 GB vs 1.2 TB)\n",
		float64(pinotBytes)/(1<<20), float64(druidBytes)/(1<<20))
	r.sweepTable([]system{dr, pinot}, r.qpsTargets([]float64{400, 1600, 3200, 6400, 12800}))
	return nil
}

// ---- Figure 15: sorted vs inverted on WVMP ----

func (r *runner) fig15() error {
	header("Figure 15: physically sorted vs bitmap inverted index, WVMP dataset")
	d := workload.WVMP(r.size(4, 100000))
	queries := d.Queries(4096, r.seed+400)
	sorted, _, err := engineSystem("sorted", d, workload.Variant{
		Index: segment.IndexConfig{SortColumn: "vieweeId"},
	}, queries)
	if err != nil {
		return err
	}
	inverted, _, err := engineSystem("inverted", d, workload.Variant{
		Index: segment.IndexConfig{InvertedColumns: d.InvertedColumns},
	}, queries)
	if err != nil {
		return err
	}
	r.sweepTable([]system{inverted, sorted}, r.qpsTargets([]float64{400, 1600, 3200, 6400, 12800}))
	return nil
}

// ---- Figure 16: routing optimizations, impression discounting ----

func (r *runner) fig16() error {
	header("Figure 16: routing optimizations, impression-discounting dataset")
	const partitions = 4
	d := workload.Impressions(r.size(8, 25000), partitions)
	queries := d.Queries(4096, r.seed+500)

	configs := []struct {
		name           string
		strategy       broker.Strategy
		partitionAware bool
		druid          bool
	}{
		{"druid-baseline", broker.StrategyBalanced, false, true},
		{"unpartitioned", broker.StrategyBalanced, false, false},
		{"large-cluster", broker.StrategyLargeCluster, false, false},
		{"partition-aware", broker.StrategyBalanced, true, false},
	}
	var systems []system
	var clusters []*cluster.Cluster
	defer func() {
		for _, c := range clusters {
			c.Shutdown()
		}
	}()
	for _, cfg := range configs {
		c, err := buildFig16Cluster(d, partitions, cfg.strategy, cfg.partitionAware, cfg.druid, r.seed)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		clusters = append(clusters, c)
		var idx atomic.Int64
		systems = append(systems, system{
			name: cfg.name,
			target: func(ctx context.Context) error {
				q := queries[int(idx.Add(1))%len(queries)]
				_, err := c.Execute(ctx, q)
				return err
			},
		})
	}
	r.sweepTable(systems, r.qpsTargets([]float64{400, 1600, 3200, 6400}))
	return nil
}

func buildFig16Cluster(d *workload.Dataset, partitions int, strategy broker.Strategy, partitionAware, druidMode bool, seed int64) (*cluster.Cluster, error) {
	opts := cluster.Options{
		Servers: 4,
		BrokerTemplate: broker.Config{
			Strategy:       strategy,
			TargetServers:  2,
			PartitionAware: partitionAware,
			Seed:           seed,
		},
	}
	if druidMode {
		opts.ServerTemplate.PlanOptions = druid.Options()
	}
	c, err := cluster.NewLocal(opts)
	if err != nil {
		return nil, err
	}
	idx := segment.IndexConfig{SortColumn: d.SortColumn}
	if druidMode {
		idx = druid.IndexConfig(d.Schema)
	}
	cfg := &table.Config{
		Name:            d.Name,
		Type:            table.Offline,
		Schema:          d.Schema,
		Replicas:        2,
		SortColumn:      idx.SortColumn,
		InvertedColumns: idx.InvertedColumns,
		PartitionColumn: d.PartitionColumn,
		NumPartitions:   partitions,
	}
	if err := c.AddTable(cfg); err != nil {
		c.Shutdown()
		return nil, err
	}
	for si := 0; si < d.NumSegments; si++ {
		b, err := segment.NewBuilder(d.Name, fmt.Sprintf("%s_%d", d.Name, si), d.Schema, idx)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		for _, row := range d.Rows(si) {
			if err := b.Add(row); err != nil {
				c.Shutdown()
				return nil, err
			}
		}
		seg, err := b.Build()
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		blob, err := seg.Marshal()
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		if err := c.UploadSegment(d.Name+"_OFFLINE", blob); err != nil {
			c.Shutdown()
			return nil, err
		}
	}
	if err := c.WaitForOnline(d.Name+"_OFFLINE", d.NumSegments, 30*time.Second); err != nil {
		c.Shutdown()
		return nil, err
	}
	return c, nil
}
