// Command pinot-cli is a thin HTTP client for a running pinot process.
//
//	pinot-cli -broker http://localhost:8099 query "SELECT count(*) FROM events"
//	pinot-cli -controller http://localhost:9000 tables
//	pinot-cli -controller http://localhost:9000 add-table table.json
//	pinot-cli -controller http://localhost:9000 upload events_OFFLINE events_0.seg
//	pinot-cli -controller http://localhost:9000 segments events_OFFLINE
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"

	"flag"
)

func main() {
	var (
		brokerURL = flag.String("broker", "http://localhost:8099", "broker base URL")
		ctrlURL   = flag.String("controller", "http://localhost:9000", "controller base URL")
		tenant    = flag.String("tenant", "", "tenant to charge for queries")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var err error
	switch args[0] {
	case "query":
		if len(args) != 2 {
			usage()
		}
		err = runQuery(*brokerURL, args[1], *tenant)
	case "tables":
		err = getJSON(*ctrlURL + "/tables")
	case "add-table":
		if len(args) != 2 {
			usage()
		}
		err = postFile(*ctrlURL+"/tables", args[1], "application/json")
	case "upload":
		if len(args) != 3 {
			usage()
		}
		err = postFile(*ctrlURL+"/segments/"+args[1], args[2], "application/octet-stream")
	case "segments":
		if len(args) != 2 {
			usage()
		}
		err = getJSON(*ctrlURL + "/tables/" + args[1] + "/segments")
	case "tasks":
		err = getJSON(*ctrlURL + "/tasks")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pinot-cli query "<pql>"
  pinot-cli tables | segments <resource> | tasks
  pinot-cli add-table <config.json>
  pinot-cli upload <resource> <segment.seg>`)
	os.Exit(2)
}

func runQuery(base, pql, tenant string) error {
	body, _ := json.Marshal(map[string]string{"pql": pql, "tenant": tenant})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, data)
	}
	var out struct {
		Columns    []string `json:"columns"`
		Rows       [][]any  `json:"rows"`
		TimeMillis int64    `json:"timeMillis"`
		Partial    bool     `json:"partial"`
		Exceptions []string `json:"exceptions"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for i, c := range out.Columns {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
	for _, row := range out.Rows {
		for i, v := range row {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprintf(w, "%v", v)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Printf("(%d rows in %d ms", len(out.Rows), out.TimeMillis)
	if out.Partial {
		fmt.Printf(", PARTIAL: %v", out.Exceptions)
	}
	fmt.Println(")")
	return nil
}

func getJSON(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return prettyPrint(resp)
}

func postFile(url, path, contentType string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, contentType, bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return prettyPrint(resp)
}

func prettyPrint(resp *http.Response) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, data)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		fmt.Println(string(data))
		return nil
	}
	fmt.Println(buf.String())
	return nil
}
