// Metrics-overhead A/B benchmark (DESIGN.md "Observability"). The On/Off
// pair runs the identical query through the full broker→server path with the
// cluster's registry live versus SetDisabled(true), so the delta is exactly
// the cost of instrument updates on the query hot path. The acceptance bar
// is that On stays within a few percent of Off.
package pinot

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pinot/internal/cluster"
)

var (
	metricsBenchOnce sync.Once
	metricsBenchC    *cluster.Cluster
	metricsBenchErr  error
)

func metricsBenchCluster(b *testing.B) *cluster.Cluster {
	b.Helper()
	metricsBenchOnce.Do(func() {
		c, err := cluster.NewLocal(cluster.Options{Servers: 2})
		if err != nil {
			metricsBenchErr = err
			return
		}
		schema, err := NewSchema("mbench", []FieldSpec{
			{Name: "country", Type: TypeString, Kind: Dimension, SingleValue: true},
			{Name: "clicks", Type: TypeLong, Kind: Metric, SingleValue: true},
			{Name: "day", Type: TypeLong, Kind: Time, SingleValue: true, TimeUnit: "DAYS"},
		})
		if err != nil {
			metricsBenchErr = err
			return
		}
		if err := c.AddTable(&TableConfig{Name: "mbench", Type: Offline, Schema: schema, Replicas: 2}); err != nil {
			metricsBenchErr = err
			return
		}
		countries := []string{"us", "de", "fr", "jp"}
		for si := 0; si < 4; si++ {
			rows := make([]Row, 0, 2000)
			for r := 0; r < 2000; r++ {
				rows = append(rows, Row{countries[r%4], int64(r), int64(17000 + r%30)})
			}
			blob, err := BuildSegmentBlob("mbench", fmt.Sprintf("mbench_%d", si), schema, IndexConfig{}, rows, nil)
			if err != nil {
				metricsBenchErr = err
				return
			}
			if err := c.UploadSegment("mbench_OFFLINE", blob); err != nil {
				metricsBenchErr = err
				return
			}
		}
		if err := c.WaitForOnline("mbench_OFFLINE", 4, 10*time.Second); err != nil {
			metricsBenchErr = err
			return
		}
		metricsBenchC = c
	})
	if metricsBenchErr != nil {
		b.Fatal(metricsBenchErr)
	}
	return metricsBenchC
}

const metricsBenchQ = "SELECT count(*), sum(clicks) FROM mbench WHERE country = 'us' GROUP BY day"

func runMetricsBench(b *testing.B, disabled bool) {
	c := metricsBenchCluster(b)
	c.Metrics.SetDisabled(disabled)
	defer c.Metrics.SetDisabled(false)
	ctx := context.Background()
	// Warm the routing table, scheduler and allocator caches before timing,
	// so whichever variant runs first does not absorb the cold-start cost.
	for i := 0; i < 50; i++ {
		if _, err := c.Execute(ctx, metricsBenchQ); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Execute(ctx, metricsBenchQ); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryMetricsOn(b *testing.B)  { runMetricsBench(b, false) }
func BenchmarkQueryMetricsOff(b *testing.B) { runMetricsBench(b, true) }
