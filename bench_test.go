// Benchmarks regenerating the paper's evaluation (section 6), one set per
// table/figure. These run at reduced scale so `go test -bench=.` completes
// quickly; cmd/benchrunner runs the full latency-vs-QPS sweeps and prints
// the series each figure plots. The comparison shape — which technique wins
// and by roughly what factor — is the reproduction target.
package pinot

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pinot/internal/broker"
	"pinot/internal/cluster"
	"pinot/internal/druid"
	"pinot/internal/query"
	"pinot/internal/segment"
	"pinot/internal/server"
	"pinot/internal/workload"
)

// benchFixture caches built datasets across benchmarks.
type benchFixture struct {
	dataset *workload.Dataset
	segs    map[string][]query.IndexedSegment
	queries []string
}

var (
	fixtures   = map[string]*benchFixture{}
	fixtureMu  sync.Mutex
	benchSize  = workload.SizeConfig{Segments: 2, RowsPerSegment: 20000, Seed: 1}
	benchQuery = 512
)

func anomalyFixture(b *testing.B) *benchFixture {
	return fixture(b, "anomaly", func() (*workload.Dataset, []workload.Variant) {
		d := workload.Anomaly(benchSize)
		return d, []workload.Variant{
			{Name: "noindex"},
			{Name: "inverted", Index: segment.IndexConfig{InvertedColumns: d.InvertedColumns}},
			{Name: "startree", StarTree: d.StarTree},
			{Name: "druid", Index: druid.IndexConfig(d.Schema), Druid: true},
		}
	})
}

func wvmpFixture(b *testing.B) *benchFixture {
	return fixture(b, "wvmp", func() (*workload.Dataset, []workload.Variant) {
		d := workload.ShareAnalytics(benchSize)
		return d, []workload.Variant{
			{Name: "sorted", Index: segment.IndexConfig{SortColumn: "vieweeId"}},
			{Name: "inverted", Index: segment.IndexConfig{InvertedColumns: d.InvertedColumns}},
			{Name: "noindex"},
			{Name: "druid", Index: druid.IndexConfig(d.Schema), Druid: true},
		}
	})
}

func fixture(b *testing.B, name string, mk func() (*workload.Dataset, []workload.Variant)) *benchFixture {
	b.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := fixtures[name]; ok {
		return f
	}
	d, variants := mk()
	f := &benchFixture{dataset: d, segs: map[string][]query.IndexedSegment{}}
	for _, v := range variants {
		segs, _, err := d.BuildIndexed(v)
		if err != nil {
			b.Fatal(err)
		}
		f.segs[v.Name] = segs
	}
	f.queries = d.Queries(benchQuery, 99)
	fixtures[name] = f
	return f
}

func runQueries(b *testing.B, f *benchFixture, variant string, opts query.Options) {
	b.Helper()
	segs := f.segs[variant]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		if _, err := query.Run(ctx, q, segs, f.dataset.Schema, opts); err != nil {
			b.Fatalf("%s: %v", q, err)
		}
	}
}

// ---- Figure 11 / Figure 12: indexing techniques on the anomaly dataset ----
// (Figure 11 sweeps QPS — see cmd/benchrunner; Figure 12 is the sequential
// latency distribution, which these per-query benchmarks measure directly.)

func BenchmarkFig11Druid(b *testing.B) {
	runQueries(b, anomalyFixture(b), "druid", druid.Options())
}

func BenchmarkFig11PinotNoIndex(b *testing.B) {
	runQueries(b, anomalyFixture(b), "noindex", query.Options{})
}

func BenchmarkFig11PinotInverted(b *testing.B) {
	runQueries(b, anomalyFixture(b), "inverted", query.Options{})
}

func BenchmarkFig11PinotStarTree(b *testing.B) {
	runQueries(b, anomalyFixture(b), "startree", query.Options{})
}

// Figure 12 uses the same four systems sequentially; aliases keep the
// table/figure ↔ benchmark mapping explicit.

func BenchmarkFig12SequentialDruid(b *testing.B) {
	runQueries(b, anomalyFixture(b), "druid", druid.Options())
}

func BenchmarkFig12SequentialPinotStarTree(b *testing.B) {
	runQueries(b, anomalyFixture(b), "startree", query.Options{})
}

// ---- Figure 13: star-tree pre-aggregated records scanned vs raw docs ----

func BenchmarkFig13StarTreeRatio(b *testing.B) {
	f := anomalyFixture(b)
	segs := f.segs["startree"]
	ctx := context.Background()
	var scanned, raw int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		res, err := query.Run(ctx, q, segs, f.dataset.Schema, query.Options{})
		if err != nil {
			b.Fatal(err)
		}
		scanned += res.Stats.StarTreeRecordsScanned
		raw += res.Stats.StarTreeRawDocs
	}
	b.StopTimer()
	if raw > 0 {
		b.ReportMetric(float64(scanned)/float64(raw), "scan-ratio")
	}
}

// ---- Figure 14: Druid vs Pinot on the share-analytics dataset ----

func BenchmarkFig14Pinot(b *testing.B) {
	runQueries(b, wvmpFixture(b), "sorted", query.Options{})
}

func BenchmarkFig14Druid(b *testing.B) {
	runQueries(b, wvmpFixture(b), "druid", druid.Options())
}

// ---- Figure 15: sorted-column vs inverted-index on the WVMP dataset ----

func BenchmarkFig15Sorted(b *testing.B) {
	runQueries(b, wvmpFixture(b), "sorted", query.Options{})
}

func BenchmarkFig15Inverted(b *testing.B) {
	runQueries(b, wvmpFixture(b), "inverted", query.Options{})
}

func BenchmarkFig15NoIndex(b *testing.B) {
	runQueries(b, wvmpFixture(b), "noindex", query.Options{})
}

// ---- Figure 16: routing optimizations on the impression-discounting
// dataset (full broker/server path) ----

type fig16Cluster struct {
	c       *cluster.Cluster
	queries []string
}

var (
	fig16Mu       sync.Mutex
	fig16Clusters = map[string]*fig16Cluster{}
)

func fig16Fixture(b *testing.B, strategy broker.Strategy, partitionAware bool) *fig16Cluster {
	b.Helper()
	fig16Mu.Lock()
	defer fig16Mu.Unlock()
	key := fmt.Sprintf("%s/%v", strategy, partitionAware)
	if f, ok := fig16Clusters[key]; ok {
		return f
	}
	const partitions = 4
	d := workload.Impressions(workload.SizeConfig{Segments: 8, RowsPerSegment: 5000, Seed: 1}, partitions)
	c, err := cluster.NewLocal(cluster.Options{
		Servers: 4,
		BrokerTemplate: broker.Config{
			Strategy:       strategy,
			TargetServers:  2,
			PartitionAware: partitionAware,
			Seed:           1,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := &TableConfig{
		Name:            d.Name,
		Type:            Offline,
		Schema:          d.Schema,
		Replicas:        2,
		SortColumn:      d.SortColumn,
		PartitionColumn: d.PartitionColumn,
		NumPartitions:   partitions,
	}
	if err := c.AddTable(cfg); err != nil {
		b.Fatal(err)
	}
	for si := 0; si < d.NumSegments; si++ {
		blob, err := BuildSegmentBlob(d.Name, fmt.Sprintf("%s_%d", d.Name, si), d.Schema,
			IndexConfig{SortColumn: d.SortColumn}, d.Rows(si), nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.UploadSegment(d.Name+"_OFFLINE", blob); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.WaitForOnline(d.Name+"_OFFLINE", d.NumSegments, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	f := &fig16Cluster{c: c, queries: d.Queries(benchQuery, 7)}
	fig16Clusters[key] = f
	return f
}

func runFig16(b *testing.B, f *fig16Cluster) {
	b.Helper()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		if _, err := f.c.Execute(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16Balanced(b *testing.B) {
	runFig16(b, fig16Fixture(b, broker.StrategyBalanced, false))
}

func BenchmarkFig16LargeCluster(b *testing.B) {
	runFig16(b, fig16Fixture(b, broker.StrategyLargeCluster, false))
}

func BenchmarkFig16PartitionAware(b *testing.B) {
	runFig16(b, fig16Fixture(b, broker.StrategyBalanced, true))
}

// ---- Ablations for the design choices DESIGN.md calls out ----

// Sorted-range-first ordering vs naive bitmap intersection (paper 4.2).
func BenchmarkAblationSortedRangeFirst(b *testing.B) {
	runQueries(b, wvmpFixture(b), "sorted", query.Options{})
}

func BenchmarkAblationForcedBitmap(b *testing.B) {
	runQueries(b, wvmpFixture(b), "inverted", query.Options{ForceBitmap: true})
}

// Metadata-only plan fast path (paper 4.1/3.3.4).
func BenchmarkAblationMetadataPlanOn(b *testing.B) {
	f := anomalyFixture(b)
	benchCountStar(b, f, query.Options{})
}

func BenchmarkAblationMetadataPlanOff(b *testing.B) {
	f := anomalyFixture(b)
	benchCountStar(b, f, query.Options{DisableMetadataPlans: true})
}

func benchCountStar(b *testing.B, f *benchFixture, opts query.Options) {
	b.Helper()
	ctx := context.Background()
	segs := f.segs["noindex"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Run(ctx, "SELECT count(*) FROM anomaly", segs, f.dataset.Schema, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Vectorized block-at-a-time execution vs row-at-a-time scalar execution on
// the no-index variants, where per-document overheads dominate. The fixed
// queries isolate the two hot shapes (full-scan aggregation and group-by);
// the Mixed pairs run the regular seeded workload for an end-to-end view.

func benchFixedQuery(b *testing.B, f *benchFixture, variant, q string, opts query.Options) {
	b.Helper()
	segs := f.segs[variant]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Run(ctx, q, segs, f.dataset.Schema, opts); err != nil {
			b.Fatalf("%s: %v", q, err)
		}
	}
}

const (
	anomalyScanAggQ = "SELECT sum(value), max(value), count(*) FROM anomaly WHERE count > 5"
	anomalyGroupByQ = "SELECT sum(value), count(*) FROM anomaly WHERE day >= 16000 GROUP BY country TOP 10"
	wvmpScanAggQ    = "SELECT sum(views), count(*) FROM wvmp WHERE vieweeId <= 400"
	wvmpGroupByQ    = "SELECT sum(views) FROM wvmp WHERE day >= 16000 GROUP BY region, seniority TOP 20"
)

var scalarOpts = query.Options{DisableVectorization: true}

func BenchmarkVecAnomalyScanAgg(b *testing.B) {
	benchFixedQuery(b, anomalyFixture(b), "noindex", anomalyScanAggQ, query.Options{})
}

func BenchmarkScalarAnomalyScanAgg(b *testing.B) {
	benchFixedQuery(b, anomalyFixture(b), "noindex", anomalyScanAggQ, scalarOpts)
}

func BenchmarkVecAnomalyGroupBy(b *testing.B) {
	benchFixedQuery(b, anomalyFixture(b), "noindex", anomalyGroupByQ, query.Options{})
}

func BenchmarkScalarAnomalyGroupBy(b *testing.B) {
	benchFixedQuery(b, anomalyFixture(b), "noindex", anomalyGroupByQ, scalarOpts)
}

func BenchmarkVecWVMPScanAgg(b *testing.B) {
	benchFixedQuery(b, wvmpFixture(b), "noindex", wvmpScanAggQ, query.Options{})
}

func BenchmarkScalarWVMPScanAgg(b *testing.B) {
	benchFixedQuery(b, wvmpFixture(b), "noindex", wvmpScanAggQ, scalarOpts)
}

func BenchmarkVecWVMPGroupBy(b *testing.B) {
	benchFixedQuery(b, wvmpFixture(b), "noindex", wvmpGroupByQ, query.Options{})
}

func BenchmarkScalarWVMPGroupBy(b *testing.B) {
	benchFixedQuery(b, wvmpFixture(b), "noindex", wvmpGroupByQ, scalarOpts)
}

func BenchmarkVecAnomalyMixed(b *testing.B) {
	runQueries(b, anomalyFixture(b), "noindex", query.Options{})
}

func BenchmarkScalarAnomalyMixed(b *testing.B) {
	runQueries(b, anomalyFixture(b), "noindex", scalarOpts)
}

// Star-tree maxLeafRecords sensitivity (paper 4.3).
func BenchmarkAblationStarTreeLeaf100(b *testing.B)   { benchStarTreeLeaf(b, 100) }
func BenchmarkAblationStarTreeLeaf10000(b *testing.B) { benchStarTreeLeaf(b, 10000) }

var (
	leafMu   sync.Mutex
	leafSegs = map[int][]query.IndexedSegment{}
)

func benchStarTreeLeaf(b *testing.B, maxLeaf int) {
	b.Helper()
	d := workload.Anomaly(benchSize)
	leafMu.Lock()
	segs, ok := leafSegs[maxLeaf]
	if !ok {
		st := *d.StarTree
		st.MaxLeafRecords = maxLeaf
		var err error
		segs, _, err = d.BuildIndexed(workload.Variant{Name: "startree", StarTree: &st})
		if err != nil {
			leafMu.Unlock()
			b.Fatal(err)
		}
		leafSegs[maxLeaf] = segs
	}
	leafMu.Unlock()
	queries := d.Queries(benchQuery, 99)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Run(ctx, queries[i%len(queries)], segs, d.Schema, query.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Token-bucket multitenancy overhead (paper 4.5): the scheduler's cost on
// the query path when the tenant has budget.
func BenchmarkAblationTenancyOff(b *testing.B) { benchTenancy(b, 0) }
func BenchmarkAblationTenancyOn(b *testing.B)  { benchTenancy(b, 1000) }

var (
	tenancyMu       sync.Mutex
	tenancyClusters = map[float64]*fig16Cluster{}
)

func benchTenancy(b *testing.B, tokens float64) {
	b.Helper()
	tenancyMu.Lock()
	f, ok := tenancyClusters[tokens]
	if !ok {
		c, err := cluster.NewLocal(cluster.Options{
			Servers:        1,
			ServerTemplate: server.Config{TenantTokens: tokens, TenantRefill: tokens},
		})
		if err != nil {
			tenancyMu.Unlock()
			b.Fatal(err)
		}
		d := workload.Anomaly(workload.SizeConfig{Segments: 1, RowsPerSegment: 10000, Seed: 1})
		cfg := &TableConfig{Name: d.Name, Type: Offline, Schema: d.Schema, Replicas: 1}
		if err := c.AddTable(cfg); err != nil {
			tenancyMu.Unlock()
			b.Fatal(err)
		}
		blob, err := BuildSegmentBlob(d.Name, d.Name+"_0", d.Schema, IndexConfig{}, d.Rows(0), nil)
		if err != nil {
			tenancyMu.Unlock()
			b.Fatal(err)
		}
		if err := c.UploadSegment(d.Name+"_OFFLINE", blob); err != nil {
			tenancyMu.Unlock()
			b.Fatal(err)
		}
		if err := c.WaitForOnline(d.Name+"_OFFLINE", 1, 10*time.Second); err != nil {
			tenancyMu.Unlock()
			b.Fatal(err)
		}
		f = &fig16Cluster{c: c, queries: d.Queries(256, 3)}
		tenancyClusters[tokens] = f
	}
	tenancyMu.Unlock()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.c.Broker().Execute(ctx, f.queries[i%len(f.queries)], "bench-tenant"); err != nil {
			b.Fatal(err)
		}
	}
}
