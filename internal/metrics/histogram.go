package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram records positive observations in logarithmic buckets with ~4.5%
// relative width. The bucket scheme is the one the load generator has always
// used for latency distributions — 666 buckets growing by 1.045 per step,
// spanning [1, ~1.79e12) in the recording unit — promoted here so client and
// server share one implementation. When the unit is microseconds (the
// duration helpers below), the range runs from 1µs to ~17.9 minutes.
//
// All methods are lock-free and safe for concurrent use: the hot path
// (Record/Observe) is one bucket increment plus a handful of atomic adds, so
// it can sit on the query data plane. Two histograms recorded separately
// merge into exactly the histogram that would have recorded the union of
// their observations.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
	min     atomicMin
	max     atomicMax
}

const (
	numBuckets   = 666
	bucketGrowth = 1.045
)

var invLogGrowth = 1 / math.Log(bucketGrowth)

// bucketFor maps a value to its bucket; values below 1 land in bucket 0.
func bucketFor(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log(v) * invLogGrowth)
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// bucketValue is the midpoint value represented by a bucket.
func bucketValue(b int) float64 {
	return math.Pow(bucketGrowth, float64(b)+0.5)
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.min.Observe(v)
	h.max.Observe(v)
}

// RecordDuration adds one latency observation in microseconds, the unit the
// duration-valued accessors below assume.
func (h *Histogram) RecordDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Microsecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / float64(n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max.Load() }

// Quantile returns the value at quantile q in [0, 1]: the midpoint of the
// bucket holding the q-th observation, or the exact maximum at the top.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target >= n {
		return h.max.Load()
	}
	var cum int64
	for b := range h.buckets {
		cum += h.buckets[b].Load()
		if cum > target {
			return bucketValue(b)
		}
	}
	return h.max.Load()
}

// QuantileDuration is Quantile for microsecond-unit histograms, returned as
// a duration.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(time.Microsecond))
}

// MeanDuration is Mean for microsecond-unit histograms.
func (h *Histogram) MeanDuration() time.Duration {
	return time.Duration(h.Mean() * float64(time.Microsecond))
}

// Merge folds another histogram into h. Merging histograms recorded
// separately yields the histogram of the union of their observations.
func (h *Histogram) Merge(o *Histogram) {
	for b := range o.buckets {
		if n := o.buckets[b].Load(); n > 0 {
			h.buckets[b].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if o.count.Load() > 0 {
		h.min.Observe(o.min.Load())
		h.max.Observe(o.max.Load())
	}
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	Value float64
	Count int64
}

// Buckets returns (midpoint, count) pairs of non-empty buckets — the raw
// series for distribution plots.
func (h *Histogram) Buckets() []BucketCount {
	var out []BucketCount
	for b := range h.buckets {
		if n := h.buckets[b].Load(); n > 0 {
			out = append(out, BucketCount{Value: bucketValue(b), Count: n})
		}
	}
	return out
}

// atomicFloat is a float64 accumulated with CAS.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// atomicMin/atomicMax track extrema of non-negative observations. The bit
// pattern of a non-negative float64 compares like the float itself, so the
// extremum is a CAS loop over Float64bits(v)+1 — the +1 reserves 0 as "no
// observation yet", keeping the zero value usable.
type atomicMin struct{ bits atomic.Uint64 }

func (m *atomicMin) Observe(v float64) {
	b := math.Float64bits(v) + 1
	for {
		old := m.bits.Load()
		if old != 0 && old <= b {
			return
		}
		if m.bits.CompareAndSwap(old, b) {
			return
		}
	}
}

func (m *atomicMin) Load() float64 {
	b := m.bits.Load()
	if b == 0 {
		return 0
	}
	return math.Float64frombits(b - 1)
}

type atomicMax struct{ bits atomic.Uint64 }

func (m *atomicMax) Observe(v float64) {
	b := math.Float64bits(v) + 1
	for {
		old := m.bits.Load()
		if old >= b {
			return
		}
		if m.bits.CompareAndSwap(old, b) {
			return
		}
	}
}

func (m *atomicMax) Load() float64 {
	b := m.bits.Load()
	if b == 0 {
		return 0
	}
	return math.Float64frombits(b - 1)
}
