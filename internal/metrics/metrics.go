// Package metrics is the cluster-wide observability substrate: a
// dependency-free registry of counters, gauges and mergeable log-linear
// histograms, organized into labeled families (per-table, per-instance,
// per-phase). Every layer of the system — broker, server, consumer,
// controller, tenancy, minion, transport — registers its instruments here,
// and the httpapi layer exposes the whole registry as `GET /metrics`
// (Prometheus text format plus a JSON variant).
//
// Design constraints, in order:
//
//   - The hot path must be lock-free: recording to an instrument is a map
//     read under an RWMutex at most (family lookup) and atomic adds after.
//     Callers on the data plane cache instrument handles, reducing a record
//     to one atomic add. A disabled registry (SetDisabled) reduces it to one
//     atomic load, which is what the DisableMetrics A/B benchmark compares
//     against.
//   - Zero dependencies: every package imports this one, so it imports
//     nothing but the standard library (the same rule qctx follows).
//   - Tests are first-class consumers: the assertion helpers (Value, Total,
//     HistogramOf) exist so chaos and protocol tests can pin counter
//     movements, turning the metric surface into an executable spec.
//
// Naming scheme (enforced by convention, validated in tests):
// `pinot_<component>_<noun>[_<unit>][_total]`, snake_case, with `_total` for
// counters and explicit units (`_us`, `_bytes`, `_events`, `_millis`) on
// everything that has one. Labels are low-cardinality identifiers only
// (table, instance, tenant, action, reason) — never query text or IDs.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates instrument families.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry holds metric families. The zero value is not usable; create with
// NewRegistry or use the process-wide Default.
type Registry struct {
	disabled atomic.Bool

	mu       sync.RWMutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*Family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used by components that were
// not handed an explicit one (and by the all-in-one cmd/pinot binary, where
// one process is one cluster).
func Default() *Registry { return defaultRegistry }

// SetDisabled turns recording on or off for every instrument of the
// registry. Disabled instruments drop observations at the cost of a single
// atomic load; reads still work and return the values accumulated while
// enabled. This is the DisableMetrics switch the overhead A/B benchmark
// measures against.
func (r *Registry) SetDisabled(v bool) { r.disabled.Store(v) }

// Disabled reports whether recording is off.
func (r *Registry) Disabled() bool { return r.disabled.Load() }

// family returns (registering on first use) the named family. Registration
// is idempotent; re-registering with a different kind or label set panics,
// since that is a programming error no test suite should let through.
func (r *Registry) family(name, help string, kind Kind, labels []string) *Family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if ok {
		f.check(name, kind, labels)
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.check(name, kind, labels)
		return f
	}
	f = &Family{
		reg:      r,
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		children: map[string]*Instrument{},
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return r.family(name, help, KindCounter, labels)
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return r.family(name, help, KindGauge, labels)
}

// Histogram registers (or fetches) a histogram family.
func (r *Registry) Histogram(name, help string, labels ...string) *Family {
	return r.family(name, help, KindHistogram, labels)
}

// Families returns the registered families sorted by name.
func (r *Registry) Families() []*Family {
	r.mu.RLock()
	out := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Value returns the value of one counter/gauge child (0 when absent).
func (r *Registry) Value(name string, labelValues ...string) int64 {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	c, ok := f.lookup(labelValues)
	if !ok {
		return 0
	}
	return c.Value()
}

// Total sums a counter/gauge family across all label values (0 when the
// family is absent). For histogram families it sums observation counts.
func (r *Registry) Total(name string) int64 {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	var sum int64
	for _, c := range f.Children() {
		if f.kind == KindHistogram {
			sum += c.hist.Count()
		} else {
			sum += c.Value()
		}
	}
	return sum
}

// HistogramOf returns one histogram child, or nil when absent.
func (r *Registry) HistogramOf(name string, labelValues ...string) *Histogram {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.kind != KindHistogram {
		return nil
	}
	c, ok := f.lookup(labelValues)
	if !ok {
		return nil
	}
	return c.hist
}

// Family is one named metric with a fixed label set and one instrument per
// distinct label-value combination.
type Family struct {
	reg    *Registry
	name   string
	help   string
	kind   Kind
	labels []string

	mu       sync.RWMutex
	children map[string]*Instrument
}

func (f *Family) check(name string, kind Kind, labels []string) {
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	if len(f.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: %s re-registered with labels %v (was %v)", name, labels, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("metrics: %s re-registered with labels %v (was %v)", name, labels, f.labels))
		}
	}
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// Help returns the family help text.
func (f *Family) Help() string { return f.help }

// Kind returns the family kind.
func (f *Family) Kind() Kind { return f.kind }

// Labels returns the family's label names.
func (f *Family) Labels() []string { return f.labels }

const labelSep = "\x1f"

func childKey(values []string) string { return strings.Join(values, labelSep) }

func (f *Family) lookup(values []string) (*Instrument, bool) {
	f.mu.RLock()
	c, ok := f.children[childKey(values)]
	f.mu.RUnlock()
	return c, ok
}

// With returns the instrument for a label-value combination, creating it on
// first use. The value count must match the family's label names. Callers on
// hot paths should cache the returned handle.
func (f *Family) With(values ...string) *Instrument {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	if c, ok := f.lookup(values); ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := childKey(values)
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &Instrument{fam: f, labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		c.hist = &Histogram{}
	}
	f.children[key] = c
	return c
}

// Children returns the family's instruments sorted by label values.
func (f *Family) Children() []*Instrument {
	f.mu.RLock()
	out := make([]*Instrument, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return childKey(out[i].labelValues) < childKey(out[j].labelValues)
	})
	return out
}

// Instrument is one counter, gauge or histogram child of a family.
type Instrument struct {
	fam         *Family
	labelValues []string
	val         atomic.Int64
	hist        *Histogram
}

// LabelValues returns the child's label values in family label order.
func (c *Instrument) LabelValues() []string { return c.labelValues }

func (c *Instrument) off() bool { return c.fam.reg.disabled.Load() }

// Add increments a counter or gauge by n. Counters must not go backwards;
// that is the caller's contract, not checked on the hot path.
func (c *Instrument) Add(n int64) {
	if c.off() {
		return
	}
	c.val.Add(n)
}

// Inc adds 1.
func (c *Instrument) Inc() { c.Add(1) }

// Dec subtracts 1 (gauges only, by convention).
func (c *Instrument) Dec() { c.Add(-1) }

// Set stores a gauge value.
func (c *Instrument) Set(v int64) {
	if c.off() {
		return
	}
	c.val.Store(v)
}

// Value reads a counter or gauge.
func (c *Instrument) Value() int64 { return c.val.Load() }

// Observe records a histogram observation.
func (c *Instrument) Observe(v float64) {
	if c.off() {
		return
	}
	c.hist.Observe(v)
}

// ObserveDuration records a latency observation in microseconds, the unit
// of every `_us` histogram in the catalog.
func (c *Instrument) ObserveDuration(d time.Duration) {
	if c.off() {
		return
	}
	c.hist.RecordDuration(d)
}

// Hist exposes the underlying histogram (histogram kind only).
func (c *Instrument) Hist() *Histogram { return c.hist }
