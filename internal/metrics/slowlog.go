package metrics

import (
	"sort"
	"sync"
	"time"
)

// SlowQuery is one entry in the slow-query log: enough to reconstruct where
// a slow query spent its time without re-running it.
type SlowQuery struct {
	QueryID     string           `json:"queryId"`
	Table       string           `json:"table"`
	PQL         string           `json:"pql"`
	TimeMillis  int64            `json:"timeMillis"`
	LatencyUs   int64            `json:"latencyUs"`
	Partial     bool             `json:"partial"`
	PhaseTraces map[string]int64 `json:"phaseTracesUs,omitempty"`
}

// SlowLog keeps the N slowest queries seen so far, ordered slowest-first.
// Record is called once per query at the end of broker Execute — far off the
// per-segment hot path — so a plain mutex around a small sorted slice is the
// right tool; no lock-free cleverness needed.
type SlowLog struct {
	mu      sync.Mutex
	size    int
	entries []SlowQuery
}

// DefaultSlowLogSize is the ring size when a component doesn't configure one.
const DefaultSlowLogSize = 32

// NewSlowLog returns a log retaining the n slowest queries (n <= 0 uses
// DefaultSlowLogSize).
func NewSlowLog(n int) *SlowLog {
	if n <= 0 {
		n = DefaultSlowLogSize
	}
	return &SlowLog{size: n}
}

// Record offers a query to the log; it is kept only if it ranks among the N
// slowest.
func (l *SlowLog) Record(q SlowQuery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == l.size && q.LatencyUs <= l.entries[len(l.entries)-1].LatencyUs {
		return
	}
	// Insert keeping descending latency order; ties keep arrival order.
	i := sort.Search(len(l.entries), func(i int) bool {
		return l.entries[i].LatencyUs < q.LatencyUs
	})
	l.entries = append(l.entries, SlowQuery{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = q
	if len(l.entries) > l.size {
		l.entries = l.entries[:l.size]
	}
}

// Slowest returns the retained queries, slowest first.
func (l *SlowLog) Slowest() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len returns the number of retained queries.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// DurationToUs converts a duration to the integer microseconds used in log
// entries, rounding down.
func DurationToUs(d time.Duration) int64 { return int64(d / time.Microsecond) }
