package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	qs := r.Counter("pinot_broker_queries_total", "Queries per table.", "table")
	qs.With("events").Add(3)
	qs.With("events").Inc()
	qs.With("profiles").Inc()
	if got := r.Value("pinot_broker_queries_total", "events"); got != 4 {
		t.Fatalf("events counter = %d, want 4", got)
	}
	if got := r.Total("pinot_broker_queries_total"); got != 5 {
		t.Fatalf("family total = %d, want 5", got)
	}
	if got := r.Value("pinot_broker_queries_total", "absent"); got != 0 {
		t.Fatalf("absent child = %d, want 0", got)
	}
	if got := r.Value("no_such_family"); got != 0 {
		t.Fatalf("absent family = %d, want 0", got)
	}

	g := r.Gauge("pinot_tenancy_queue_depth", "Waiting queries.", "tenant")
	g.With("gold").Set(7)
	g.With("gold").Dec()
	if got := r.Value("pinot_tenancy_queue_depth", "gold"); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "l")
	b := r.Counter("x_total", "", "l")
	if a != b {
		t.Fatal("re-registration returned a different family")
	}
	mustPanic(t, func() { r.Gauge("x_total", "", "l") })
	mustPanic(t, func() { r.Counter("x_total", "", "other") })
	mustPanic(t, func() { a.With("v1", "v2") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestRegistryDisabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "").With()
	h := r.Histogram("h_us", "").With()
	c.Inc()
	h.Observe(5)
	r.SetDisabled(true)
	c.Inc()
	c.Add(10)
	c.Set(99)
	h.Observe(5)
	h.ObserveDuration(time.Second)
	r.SetDisabled(false)
	if got := c.Value(); got != 1 {
		t.Fatalf("disabled counter moved: %d", got)
	}
	if got := h.Hist().Count(); got != 1 {
		t.Fatalf("disabled histogram moved: %d", got)
	}
}

func TestRegistryConcurrentWith(t *testing.T) {
	r := NewRegistry()
	f := r.Counter("concurrent_total", "", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.With("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Value("concurrent_total", "shared"); got != 8000 {
		t.Fatalf("concurrent increments = %d, want 8000", got)
	}
}

func TestWriteTextAndParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pinot_broker_queries_total", "Queries per table.", "table").With("ev\"il\\t").Add(12)
	r.Gauge("pinot_up", "Liveness.").With().Set(1)
	hist := r.Histogram("pinot_broker_latency_us", "Latency.", "table").With("events")
	for i := 1; i <= 100; i++ {
		hist.Observe(float64(i))
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE pinot_broker_queries_total counter",
		"# TYPE pinot_up gauge",
		"# TYPE pinot_broker_latency_us summary",
		"pinot_broker_latency_us_count{table=\"events\"} 100",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}

	samples, err := ParseText(text)
	if err != nil {
		t.Fatalf("ParseText rejected our own exposition: %v\n%s", err, text)
	}
	byName := SumBy(samples, "pinot_broker_queries_total", "table")
	if byName[`ev"il\t`] != 12 {
		t.Fatalf("escaped label did not round-trip: %v", byName)
	}
	found := false
	for _, s := range samples {
		if s.Name == "pinot_broker_latency_us" && s.Labels["quantile"] == "0.5" {
			found = true
			if s.Value < 45 || s.Value > 55 {
				t.Fatalf("median of 1..100 exported as %v", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("no quantile=0.5 sample for histogram")
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value",
		"1leading_digit 3",
		`unterminated{a="b 3`,
		`bad_label{9x="y"} 3`,
		"name 3 extra",
		"name notanumber",
	} {
		if _, err := ParseText(bad); err == nil {
			t.Fatalf("ParseText accepted %q", bad)
		}
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help", "l").With("v").Add(2)
	r.Histogram("h_us", "").With().Observe(10)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot families = %d, want 2", len(snap))
	}
	if snap[0].Name != "c_total" || snap[0].Samples[0].Value != 2 {
		t.Fatalf("counter snapshot wrong: %+v", snap[0])
	}
	hs := snap[1]
	if hs.Kind != "histogram" || hs.Samples[0].Count != 1 || hs.Samples[0].Quantiles["0.5"] == 0 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(3)
	for _, lat := range []int64{50, 10, 90, 30, 70} {
		l.Record(SlowQuery{QueryID: "q", LatencyUs: lat})
	}
	got := l.Slowest()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	want := []int64{90, 70, 50}
	for i, e := range got {
		if e.LatencyUs != want[i] {
			t.Fatalf("entry %d latency = %d, want %d (descending order)", i, e.LatencyUs, want[i])
		}
	}
	// A query slower than the floor displaces the floor.
	l.Record(SlowQuery{LatencyUs: 60})
	got = l.Slowest()
	if got[2].LatencyUs != 60 {
		t.Fatalf("floor not displaced: %+v", got)
	}
	// A query not slower than the floor is dropped.
	l.Record(SlowQuery{LatencyUs: 5})
	if l.Len() != 3 || l.Slowest()[2].LatencyUs != 60 {
		t.Fatalf("fast query displaced the floor: %+v", l.Slowest())
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Record(SlowQuery{LatencyUs: int64(g*500 + i)})
			}
		}(g)
	}
	wg.Wait()
	got := l.Slowest()
	if len(got) != 8 {
		t.Fatalf("len = %d, want 8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].LatencyUs > got[i-1].LatencyUs {
			t.Fatalf("not descending at %d: %+v", i, got)
		}
	}
	if got[0].LatencyUs != 1999 {
		t.Fatalf("slowest = %d, want 1999", got[0].LatencyUs)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "").With()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "").With()
	r.SetDisabled(true)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkFamilyWithLookup(b *testing.B) {
	r := NewRegistry()
	f := r.Counter("bench_total", "", "table")
	f.With("events")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f.With("events").Inc()
		}
	})
}
