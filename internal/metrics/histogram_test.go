package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zeroed: count=%d mean=%v q50=%v", h.Count(), h.Mean(), h.Quantile(0.5))
	}
	for _, v := range []float64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 100 {
		t.Fatalf("sum = %v, want 100", h.Sum())
	}
	if h.Mean() != 25 {
		t.Fatalf("mean = %v, want 25", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("min/max = %v/%v, want 10/40", h.Min(), h.Max())
	}
	// Bucket resolution is ~4.5%, so quantiles land within that of truth.
	if q := h.Quantile(0.5); math.Abs(q-30)/30 > 0.05 {
		t.Fatalf("q50 = %v, want ~30", q)
	}
	// The top quantile returns the exact max, not a bucket midpoint.
	if q := h.Quantile(1.0); q != 40 {
		t.Fatalf("q100 = %v, want exact max 40", q)
	}
}

// Quantiles must be non-decreasing in q, bounded by [min-ish, max], for any
// distribution.
func TestHistogramQuantileMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := &Histogram{}
		n := 100 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			// Mix of uniform, exponential-ish and constant values.
			switch i % 3 {
			case 0:
				h.Observe(rng.Float64() * 1e6)
			case 1:
				h.Observe(math.Exp(rng.Float64() * 20))
			default:
				h.Observe(1234)
			}
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: quantile not monotone: q=%.2f gives %v after %v", trial, q, v, prev)
			}
			if v > h.Max() {
				t.Fatalf("trial %d: q=%.2f gives %v above max %v", trial, q, v, h.Max())
			}
			prev = v
		}
	}
}

// merge(h1, h2) must equal the histogram that recorded the union of their
// observations — bucket-for-bucket, plus count/sum/min/max.
func TestHistogramMergeEquivalentToUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h1, h2, union := &Histogram{}, &Histogram{}, &Histogram{}
	for i := 0; i < 4000; i++ {
		v := math.Exp(rng.Float64() * 25)
		if i%2 == 0 {
			h1.Observe(v)
		} else {
			h2.Observe(v)
		}
		union.Observe(v)
	}
	merged := &Histogram{}
	merged.Merge(h1)
	merged.Merge(h2)
	if merged.Count() != union.Count() {
		t.Fatalf("count: merged=%d union=%d", merged.Count(), union.Count())
	}
	if math.Abs(merged.Sum()-union.Sum()) > 1e-6*union.Sum() {
		t.Fatalf("sum: merged=%v union=%v", merged.Sum(), union.Sum())
	}
	if merged.Min() != union.Min() || merged.Max() != union.Max() {
		t.Fatalf("extrema: merged=[%v,%v] union=[%v,%v]",
			merged.Min(), merged.Max(), union.Min(), union.Max())
	}
	mb, ub := merged.Buckets(), union.Buckets()
	if len(mb) != len(ub) {
		t.Fatalf("bucket sets differ: %d vs %d non-empty", len(mb), len(ub))
	}
	for i := range mb {
		if mb[i] != ub[i] {
			t.Fatalf("bucket %d: merged=%+v union=%+v", i, mb[i], ub[i])
		}
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if m, u := merged.Quantile(q), union.Quantile(q); m != u {
			t.Fatalf("q=%.2f: merged=%v union=%v", q, m, u)
		}
	}
	// Merging an empty histogram must not disturb extrema.
	before := merged.Min()
	merged.Merge(&Histogram{})
	if merged.Min() != before {
		t.Fatalf("merging empty histogram changed min: %v -> %v", before, merged.Min())
	}
}

// Concurrent recording must lose nothing and keep exact count/sum/extrema.
// Run under -race this also proves the hot path is data-race free.
func TestHistogramConcurrentRecord(t *testing.T) {
	h := &Histogram{}
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG + i + 1))
			}
		}(g)
	}
	wg.Wait()
	total := int64(goroutines * perG)
	if h.Count() != total {
		t.Fatalf("count = %d, want %d", h.Count(), total)
	}
	wantSum := float64(total) * float64(total+1) / 2
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Min() != 1 || h.Max() != float64(total) {
		t.Fatalf("min/max = %v/%v, want 1/%d", h.Min(), h.Max(), total)
	}
}

func TestHistogramBucketFor(t *testing.T) {
	// Values below 1 clamp to bucket 0; huge values clamp to the last bucket.
	if b := bucketFor(0); b != 0 {
		t.Fatalf("bucketFor(0) = %d", b)
	}
	if b := bucketFor(0.5); b != 0 {
		t.Fatalf("bucketFor(0.5) = %d", b)
	}
	if b := bucketFor(math.MaxFloat64); b != numBuckets-1 {
		t.Fatalf("bucketFor(max) = %d, want %d", b, numBuckets-1)
	}
	// bucketValue(bucketFor(v)) stays within one growth factor of v.
	for _, v := range []float64{1, 2, 17, 999, 1e6, 1e9} {
		mid := bucketValue(bucketFor(v))
		if mid < v/bucketGrowth || mid > v*bucketGrowth {
			t.Fatalf("bucket midpoint %v too far from %v", mid, v)
		}
	}
}

func TestHistogramDurationHelpers(t *testing.T) {
	h := &Histogram{}
	h.RecordDuration(2 * time.Millisecond)
	h.RecordDuration(4 * time.Millisecond)
	if got := h.MeanDuration(); got < 2900*time.Microsecond || got > 3100*time.Microsecond {
		t.Fatalf("mean duration = %v, want ~3ms", got)
	}
	if got := h.QuantileDuration(1.0); got != 4*time.Millisecond {
		t.Fatalf("p100 = %v, want 4ms", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.RunParallel(func(pb *testing.PB) {
		v := 1.0
		for pb.Next() {
			h.Observe(v)
			v += 17
			if v > 1e9 {
				v = 1
			}
		}
	})
}
