package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Exposition quantiles for histogram families. Prometheus text format has no
// native sparse-log-linear histogram, so histograms export as summaries:
// pre-computed quantiles plus _sum and _count.
var summaryQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// WriteText writes the registry in Prometheus text exposition format
// (version 0.0.4). Counters and gauges emit one sample per child; histograms
// emit a summary (quantile series + _sum + _count).
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Families() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		typ := "counter"
		switch f.kind {
		case KindGauge:
			typ = "gauge"
		case KindHistogram:
			typ = "summary"
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, typ)
		for _, c := range f.Children() {
			switch f.kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labels, c.labelValues, "", ""), c.Value())
			case KindHistogram:
				h := c.hist
				for _, q := range summaryQuantiles {
					fmt.Fprintf(bw, "%s%s %s\n",
						f.name,
						labelString(f.labels, c.labelValues, "quantile", formatFloat(q)),
						formatFloat(h.Quantile(q)))
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(f.labels, c.labelValues, "", ""), formatFloat(h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(f.labels, c.labelValues, "", ""), h.Count())
			}
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders {k="v",...}, optionally with one extra pair appended
// (used for quantile labels). Empty label sets render as "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(names[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(extraValue)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// FamilySnapshot is the JSON form of one family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    string           `json:"kind"`
	Labels  []string         `json:"labels,omitempty"`
	Samples []SampleSnapshot `json:"samples"`
}

// SampleSnapshot is the JSON form of one instrument.
type SampleSnapshot struct {
	LabelValues []string `json:"labelValues,omitempty"`
	// Value is set for counters and gauges.
	Value int64 `json:"value,omitempty"`
	// Histogram fields.
	Count     int64              `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Min       float64            `json:"min,omitempty"`
	Max       float64            `json:"max,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Snapshot captures the registry for the JSON variant of /metrics.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.Families()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String(), Labels: f.labels}
		for _, c := range f.Children() {
			s := SampleSnapshot{LabelValues: c.labelValues}
			if f.kind == KindHistogram {
				h := c.hist
				s.Count = h.Count()
				s.Sum = h.Sum()
				s.Min = h.Min()
				s.Max = h.Max()
				s.Quantiles = map[string]float64{}
				for _, q := range summaryQuantiles {
					s.Quantiles[formatFloat(q)] = h.Quantile(q)
				}
			} else {
				s.Value = c.Value()
			}
			fs.Samples = append(fs.Samples, s)
		}
		out = append(out, fs)
	}
	return out
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses Prometheus text exposition format back into samples. It
// exists for the end-to-end scrape test: parse failure means the endpoint
// emits text a real scraper would reject. It validates metric/label name
// syntax and rejects malformed lines rather than skipping them.
func ParseText(data string) ([]Sample, error) {
	var out []Sample
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Metric name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:close], s.Labels); err != nil {
			return s, err
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; we emit none, so reject extra fields.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", body)
		}
		name := body[:eq]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("label %s value not quoted", name)
		}
		body = body[1:]
		var val strings.Builder
		i := 0
		for ; i < len(body); i++ {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
				continue
			}
			if body[i] == '"' {
				break
			}
			val.WriteByte(body[i])
		}
		if i >= len(body) {
			return fmt.Errorf("label %s value unterminated", name)
		}
		into[name] = val.String()
		body = body[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// SumBy aggregates parsed samples of one metric by a label, summing values.
// Samples missing the label aggregate under "". It is the workhorse of the
// scrape-invariant tests (e.g. sum of per-table counters == broker total).
func SumBy(samples []Sample, metric, label string) map[string]float64 {
	out := map[string]float64{}
	for _, s := range samples {
		if s.Name != metric {
			continue
		}
		out[s.Labels[label]] += s.Value
	}
	return out
}

// MetricNames returns the distinct sample names in sorted order.
func MetricNames(samples []Sample) []string {
	seen := map[string]bool{}
	for _, s := range samples {
		seen[s.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
