package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pinot/internal/cluster"
	"pinot/internal/segment"
	"pinot/internal/table"
)

func setup(t *testing.T) (*cluster.Cluster, *httptest.Server, *httptest.Server) {
	t.Helper()
	c, err := cluster.NewLocal(cluster.Options{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	leader, err := c.WaitForLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctrlSrv := httptest.NewServer(NewControllerHandler(leader))
	t.Cleanup(ctrlSrv.Close)
	brokerSrv := httptest.NewServer(NewBrokerHandler(c.Broker()))
	t.Cleanup(brokerSrv.Close)
	return c, ctrlSrv, brokerSrv
}

func eventsSchema(t *testing.T) *segment.Schema {
	t.Helper()
	s, err := segment.NewSchema("events", []segment.FieldSpec{
		{Name: "country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "clicks", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

func TestFullHTTPFlow(t *testing.T) {
	c, ctrlSrv, brokerSrv := setup(t)

	// Health endpoints.
	for _, u := range []string{ctrlSrv.URL + "/health", brokerSrv.URL + "/health"} {
		resp, err := http.Get(u)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("health %s: %v %v", u, resp.StatusCode, err)
		}
		resp.Body.Close()
	}

	// Create table over HTTP.
	cfg := table.Config{Name: "events", Type: table.Offline, Schema: eventsSchema(t), Replicas: 1}
	resp, body := postJSON(t, ctrlSrv.URL+"/tables", cfg)
	if resp.StatusCode != 200 {
		t.Fatalf("create table: %d %v", resp.StatusCode, body)
	}
	// Duplicate rejected.
	resp, _ = postJSON(t, ctrlSrv.URL+"/tables", cfg)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate table status = %d", resp.StatusCode)
	}
	// List tables.
	resp2, err := http.Get(ctrlSrv.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var tl map[string][]string
	_ = json.NewDecoder(resp2.Body).Decode(&tl)
	resp2.Body.Close()
	if len(tl["tables"]) != 1 || tl["tables"][0] != "events_OFFLINE" {
		t.Fatalf("tables = %v", tl)
	}

	// Upload a segment blob (HTTP POST, paper 3.3.5).
	b, _ := segment.NewBuilder("events", "events_0", eventsSchema(t), segment.IndexConfig{})
	for i := 0; i < 30; i++ {
		_ = b.Add(segment.Row{fmt.Sprintf("c%d", i%3), int64(i)})
	}
	seg, _ := b.Build()
	blob, _ := seg.Marshal()
	resp3, err := http.Post(ctrlSrv.URL+"/segments/events_OFFLINE", "application/octet-stream", bytes.NewReader(blob))
	if err != nil || resp3.StatusCode != 200 {
		t.Fatalf("upload: %v %d", err, resp3.StatusCode)
	}
	resp3.Body.Close()
	if err := c.WaitForOnline("events_OFFLINE", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Segment listing.
	resp4, _ := http.Get(ctrlSrv.URL + "/tables/events_OFFLINE/segments")
	var sl map[string][]table.SegmentMeta
	_ = json.NewDecoder(resp4.Body).Decode(&sl)
	resp4.Body.Close()
	if len(sl["segments"]) != 1 || sl["segments"][0].NumDocs != 30 {
		t.Fatalf("segments = %+v", sl)
	}

	// Query through the broker.
	resp, qb := postJSON(t, brokerSrv.URL+"/query", QueryRequest{PQL: "SELECT count(*), sum(clicks) FROM events"})
	if resp.StatusCode != 200 {
		t.Fatalf("query: %d %v", resp.StatusCode, qb)
	}
	rows := qb["rows"].([]any)
	first := rows[0].([]any)
	if first[0].(float64) != 30 || first[1].(float64) != 435 {
		t.Fatalf("query rows = %v", rows)
	}

	// Malformed requests.
	resp, _ = postJSON(t, brokerSrv.URL+"/query", QueryRequest{PQL: ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty pql status = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, brokerSrv.URL+"/query", QueryRequest{PQL: "SELECT nonsense"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pql status = %d", resp.StatusCode)
	}
	r5, err := http.Post(brokerSrv.URL+"/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil || r5.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status: %v %d", err, r5.StatusCode)
	}
	r5.Body.Close()

	// Bad upload blob.
	r6, _ := http.Post(ctrlSrv.URL+"/segments/events_OFFLINE", "application/octet-stream", bytes.NewReader([]byte("garbage")))
	if r6.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload status = %d", r6.StatusCode)
	}
	r6.Body.Close()

	// Schedule a task over HTTP.
	resp, body = postJSON(t, ctrlSrv.URL+"/tasks", map[string]any{
		"id": "t1", "type": "purge", "resource": "events_OFFLINE", "segment": "events_0",
		"purgeColumn": "country", "purgeValues": []string{"c0"},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("task: %d %v", resp.StatusCode, body)
	}
	r7, _ := http.Get(ctrlSrv.URL + "/tasks")
	var tb map[string]any
	_ = json.NewDecoder(r7.Body).Decode(&tb)
	r7.Body.Close()
	if len(tb["tasks"].([]any)) != 1 {
		t.Fatalf("tasks = %v", tb)
	}

	// Delete segment and table.
	req, _ := http.NewRequest(http.MethodDelete, ctrlSrv.URL+"/segments/events_OFFLINE/events_0", nil)
	r8, err := http.DefaultClient.Do(req)
	if err != nil || r8.StatusCode != 200 {
		t.Fatalf("delete segment: %v %d", err, r8.StatusCode)
	}
	r8.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, ctrlSrv.URL+"/tables/events?type=OFFLINE", nil)
	r9, err := http.DefaultClient.Do(req)
	if err != nil || r9.StatusCode != 200 {
		t.Fatalf("delete table: %v %d", err, r9.StatusCode)
	}
	r9.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, ctrlSrv.URL+"/tables/events", nil)
	r10, _ := http.DefaultClient.Do(req)
	if r10.StatusCode != http.StatusBadRequest {
		t.Fatalf("delete without type status = %d", r10.StatusCode)
	}
	r10.Body.Close()
}

func TestNonLeaderReturns503(t *testing.T) {
	c, err := cluster.NewLocal(cluster.Options{Controllers: 2, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	var follower *httptest.Server
	for _, ctrl := range c.Controllers {
		if !ctrl.IsLeader() {
			follower = httptest.NewServer(NewControllerHandler(ctrl))
			break
		}
	}
	if follower == nil {
		t.Fatal("no follower controller")
	}
	defer follower.Close()
	cfg := table.Config{Name: "events", Type: table.Offline, Schema: eventsSchema(t), Replicas: 1}
	resp, _ := postJSON(t, follower.URL+"/tables", cfg)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower status = %d, want 503", resp.StatusCode)
	}
}
