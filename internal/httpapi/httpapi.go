// Package httpapi exposes brokers and controllers over HTTP, the paper's
// user-facing surface (3.4: "all user-accessible operations for Pinot are
// done through HTTP, allowing users to leverage existing battle-tested load
// balancers"). Clients POST PQL to brokers; administrators manage tables,
// segments and tasks on the controller.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pinot/internal/broker"
	"pinot/internal/controller"
	"pinot/internal/metrics"
	"pinot/internal/pql"
	"pinot/internal/query"
	"pinot/internal/table"
)

// QueryRequest is the broker query payload.
type QueryRequest struct {
	PQL    string `json:"pql"`
	Tenant string `json:"tenant,omitempty"`
}

// ServerException mirrors broker.ServerException for JSON clients.
type ServerException struct {
	Server    string `json:"server"`
	Error     string `json:"error"`
	Recovered bool   `json:"recovered"`
}

// QueryResponse is the broker's JSON reply.
type QueryResponse struct {
	QueryID    string      `json:"queryId,omitempty"`
	Columns    []string    `json:"columns"`
	Rows       [][]any     `json:"rows"`
	Stats      query.Stats `json:"stats"`
	Partial    bool        `json:"partial,omitempty"`
	Exceptions []string    `json:"exceptions,omitempty"`
	TimeMillis int64       `json:"timeMillis"`
	// TraceMillis is the per-phase wall-clock ledger (parse, route, queue,
	// scatter, execute, merge, reduce) in milliseconds.
	TraceMillis      map[string]int64  `json:"traceMillis,omitempty"`
	ServersQueried   int               `json:"serversQueried"`
	ServersResponded int               `json:"serversResponded"`
	ServerExceptions []ServerException `json:"serverExceptions,omitempty"`
}

// errorBody is the uniform error payload. Parse is set when the failure was
// a PQL parse error, giving clients the position without string-scraping.
type errorBody struct {
	Error string          `json:"error"`
	Parse *parseErrorBody `json:"parse,omitempty"`
}

// parseErrorBody is the structured half of a PQL parse failure.
type parseErrorBody struct {
	Message string `json:"message"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Offset  int    `json:"offset"`
	Token   string `json:"token,omitempty"` // "" at end of input
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Error: err.Error()}
	var pe *pql.ParseError
	if errors.As(err, &pe) {
		body.Parse = &parseErrorBody{
			Message: pe.Msg, Line: pe.Line, Col: pe.Col, Offset: pe.Offset, Token: pe.Token,
		}
	}
	writeJSON(w, status, body)
}

// NewBrokerHandler serves POST /query on a broker.
func NewBrokerHandler(b *broker.Broker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
			return
		}
		if strings.TrimSpace(req.PQL) == "" {
			writeError(w, http.StatusBadRequest, errors.New("missing pql"))
			return
		}
		res, err := b.Execute(r.Context(), req.PQL, req.Tenant)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		out := QueryResponse{
			QueryID:          res.QueryID,
			Columns:          res.Columns,
			Rows:             res.Rows,
			Stats:            res.Stats,
			Partial:          res.Partial,
			Exceptions:       res.Exceptions,
			TimeMillis:       res.TimeMillis,
			ServersQueried:   res.ServersQueried,
			ServersResponded: res.ServersResponded,
		}
		if len(res.Trace) > 0 {
			out.TraceMillis = make(map[string]int64, len(res.Trace))
			for p, d := range res.Trace {
				out.TraceMillis[string(p)] = d.Milliseconds()
			}
		}
		for _, e := range res.ServerExceptions {
			out.ServerExceptions = append(out.ServerExceptions, ServerException(e))
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /health", health)
	mux.HandleFunc("GET /metrics", metricsHandler(b.Metrics()))
	mux.HandleFunc("GET /debug/queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"slowest":       b.SlowQueries().Slowest(),
			"parseFailures": b.ParseFailures(),
		})
	})
	return mux
}

// metricsHandler serves a registry in Prometheus text format, or as JSON
// when the client asks via ?format=json or an Accept: application/json
// header.
func metricsHandler(reg *metrics.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			writeJSON(w, http.StatusOK, map[string]any{"families": reg.Snapshot()})
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	}
}

// NewControllerHandler serves table/segment/task administration on a
// controller.
func NewControllerHandler(c *controller.Controller) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", health)
	mux.HandleFunc("GET /metrics", metricsHandler(c.Metrics()))

	mux.HandleFunc("GET /tables", func(w http.ResponseWriter, r *http.Request) {
		tables, err := c.Tables()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string][]string{"tables": tables})
	})

	mux.HandleFunc("POST /tables", func(w http.ResponseWriter, r *http.Request) {
		var cfg table.Config
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid table config: %w", err))
			return
		}
		if err := c.AddTable(&cfg); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "created", "resource": cfg.Resource()})
	})

	mux.HandleFunc("DELETE /tables/{name}", func(w http.ResponseWriter, r *http.Request) {
		typ := table.Type(strings.ToUpper(r.URL.Query().Get("type")))
		if typ != table.Offline && typ != table.Realtime {
			writeError(w, http.StatusBadRequest, errors.New("type query parameter must be OFFLINE or REALTIME"))
			return
		}
		if err := c.DeleteTable(r.PathValue("name"), typ); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	})

	mux.HandleFunc("GET /tables/{resource}/segments", func(w http.ResponseWriter, r *http.Request) {
		metas, err := c.SegmentMetas(r.PathValue("resource"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"segments": metas})
	})

	// Segment upload: the HTTP POST of paper 3.3.5. The body is the
	// segment blob.
	mux.HandleFunc("POST /segments/{resource}", func(w http.ResponseWriter, r *http.Request) {
		blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := c.UploadSegment(r.PathValue("resource"), blob); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "uploaded"})
	})

	mux.HandleFunc("DELETE /segments/{resource}/{segment}", func(w http.ResponseWriter, r *http.Request) {
		if err := c.DeleteSegment(r.PathValue("resource"), r.PathValue("segment")); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	})

	mux.HandleFunc("GET /tasks", func(w http.ResponseWriter, r *http.Request) {
		tasks, err := c.Tasks()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"tasks": tasks})
	})

	mux.HandleFunc("POST /tasks", func(w http.ResponseWriter, r *http.Request) {
		var t controller.Task
		if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid task: %w", err))
			return
		}
		if err := c.ScheduleTask(&t); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "scheduled"})
	})

	return mux
}

func health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func statusFor(err error) int {
	if errors.Is(err, controller.ErrNotLeader) {
		// Clients should retry against the lead controller.
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}
