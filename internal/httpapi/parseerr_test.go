package httpapi

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestParseErrorPayload checks the client-facing contract for malformed PQL:
// a 400 whose body carries the structured position (line, col, offset,
// token) alongside the rendered error, and visibility of the failure at
// /debug/queries.
func TestParseErrorPayload(t *testing.T) {
	_, _, brokerSrv := setup(t)

	bad := "SELECT count(*) FROM T\nGROUP BY timeBucket(day 7)"
	resp, body := postJSON(t, brokerSrv.URL+"/query", QueryRequest{PQL: bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	pe, ok := body["parse"].(map[string]any)
	if !ok {
		t.Fatalf("no structured parse error in %v", body)
	}
	if pe["line"] != float64(2) || pe["col"] != float64(25) || pe["offset"] != float64(47) || pe["token"] != "7" {
		t.Fatalf("parse error position = %v", pe)
	}
	if pe["message"] != `expected ), got "7"` {
		t.Fatalf("parse error message = %v", pe["message"])
	}

	// Non-parse failures (unknown table) carry no parse block.
	resp, body = postJSON(t, brokerSrv.URL+"/query", QueryRequest{PQL: "SELECT count(*) FROM nosuch"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown table status = %d", resp.StatusCode)
	}
	if _, ok := body["parse"]; ok {
		t.Fatalf("unknown-table error has parse block: %v", body)
	}

	// The rejected query is visible at /debug/queries with its position.
	dresp, err := http.Get(brokerSrv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var dbg struct {
		ParseFailures []struct {
			PQL    string `json:"pql"`
			Error  string `json:"error"`
			Line   int    `json:"line"`
			Col    int    `json:"col"`
			Offset int    `json:"offset"`
			Token  string `json:"token"`
		} `json:"parseFailures"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.ParseFailures) != 1 {
		t.Fatalf("parseFailures = %+v, want 1 entry", dbg.ParseFailures)
	}
	f := dbg.ParseFailures[0]
	if f.PQL != bad || f.Line != 2 || f.Col != 25 || f.Offset != 47 || f.Token != "7" {
		t.Fatalf("parse failure entry = %+v", f)
	}
}
