// Package qctx is the per-query context spine of the query path. A
// QueryContext is minted where a query enters a layer (broker, or server —
// each network hop mints its own, seeded from the wire budget) and carries:
//
//   - a query ID shared across layers for correlation,
//   - a monotonically decremented deadline budget: the broker charges
//     planning and routing against it and puts the remaining millis on the
//     wire, the server charges queue wait, the engine charges per-segment
//     execution — so every hop enforces what is actually left, not a fresh
//     full timeout (paper 3.3.3's bounded-latency contract made explicit),
//   - a phase ledger (parse, route, queue, scatter, execute, merge, reduce)
//     surfaced to clients as a structured trace,
//   - per-query resource accounting: docs/entries scanned and group-by
//     state bytes, with a configurable cap that degrades the query to a
//     partial result instead of an OOM.
//
// The zero-dependency design is deliberate: every layer of the query path
// imports this package, so it can import nothing but the standard library.
package qctx

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names one stage of the query lifecycle in the trace ledger.
type Phase string

// Lifecycle phases. Parse/route/scatter/merge/reduce partition the broker's
// wall clock; queue and execute are measured on servers and nest inside the
// broker's scatter phase (on the single-node path they are top-level).
const (
	PhaseParse   Phase = "parse"
	PhaseRoute   Phase = "route"
	PhaseQueue   Phase = "queue"
	PhaseScatter Phase = "scatter"
	PhaseExecute Phase = "execute"
	PhaseMerge   Phase = "merge"
	PhaseReduce  Phase = "reduce"
)

// Trace is the per-phase time ledger of one query. It travels inside
// QueryResponse (gob) and BrokerResponse.
type Trace map[Phase]time.Duration

// WallSum sums the phases that partition the owning layer's wall clock: on
// a distributed trace (scatter present) the queue and execute phases were
// measured on servers concurrently with scatter and are excluded; on a
// single-node trace they are top-level. The invariant WallSum ≤ wall-clock
// elapsed is what makes the ledger a budget rather than a set of counters.
func (t Trace) WallSum() time.Duration {
	_, distributed := t[PhaseScatter]
	var sum time.Duration
	for p, d := range t {
		if distributed && (p == PhaseQueue || p == PhaseExecute) {
			continue
		}
		sum += d
	}
	return sum
}

// Usage is a snapshot of a query's resource accounting.
type Usage struct {
	DocsScanned     int64
	EntriesScanned  int64
	GroupStateBytes int64
}

// QueryContext is the mutable per-query state threaded through one layer of
// the query path via context.Context. All methods are safe for concurrent
// use by the segment workers of one query.
type QueryContext struct {
	id     string
	start  time.Time
	budget time.Duration // 0 = unlimited

	mu    sync.Mutex
	trace Trace

	docsScanned    atomic.Int64
	entriesScanned atomic.Int64

	groupBytes    atomic.Int64
	groupLimit    atomic.Int64
	groupExceeded atomic.Bool
}

// New mints a query context with the given ID (empty generates one) and
// total deadline budget (0 = unlimited).
func New(id string, budget time.Duration) *QueryContext {
	if id == "" {
		id = NewID()
	}
	return &QueryContext{id: id, start: time.Now(), budget: budget, trace: Trace{}}
}

var (
	idMu  sync.Mutex
	idRnd = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// NewID returns a fresh query ID.
func NewID() string {
	idMu.Lock()
	defer idMu.Unlock()
	return fmt.Sprintf("q-%08x", idRnd.Uint32())
}

// ID returns the query's correlation ID.
func (qc *QueryContext) ID() string { return qc.id }

// Budget returns the total deadline budget (0 = unlimited).
func (qc *QueryContext) Budget() time.Duration { return qc.budget }

// StartTime returns when the context was minted.
func (qc *QueryContext) StartTime() time.Time { return qc.start }

// Elapsed returns time spent since the context was minted.
func (qc *QueryContext) Elapsed() time.Duration { return time.Since(qc.start) }

// Remaining returns the unspent deadline budget. The second result is false
// when the budget is unlimited. The remainder is clamped at zero: a budget
// never goes negative, it is simply exhausted.
func (qc *QueryContext) Remaining() (time.Duration, bool) {
	if qc.budget <= 0 {
		return 0, false
	}
	left := qc.budget - qc.Elapsed()
	if left < 0 {
		left = 0
	}
	return left, true
}

// Charge adds a duration to a phase of the trace ledger.
func (qc *QueryContext) Charge(p Phase, d time.Duration) {
	qc.mu.Lock()
	qc.trace[p] += d
	qc.mu.Unlock()
}

// Clock starts timing a phase; the returned stop function charges the
// elapsed time: defer qc.Clock(PhaseParse)().
func (qc *QueryContext) Clock(p Phase) func() {
	t0 := time.Now()
	return func() { qc.Charge(p, time.Since(t0)) }
}

// ObserveServer folds a server-side trace into the broker's ledger. Server
// phases run concurrently across the scatter fan-out, so each is folded as
// the maximum observed — the critical path, not the sum.
func (qc *QueryContext) ObserveServer(t Trace) {
	qc.mu.Lock()
	for p, d := range t {
		if d > qc.trace[p] {
			qc.trace[p] = d
		}
	}
	qc.mu.Unlock()
}

// TraceSnapshot returns a copy of the current ledger.
func (qc *QueryContext) TraceSnapshot() Trace {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	out := make(Trace, len(qc.trace))
	for p, d := range qc.trace {
		out[p] = d
	}
	return out
}

// AddScan records docs and entries scanned by one segment.
func (qc *QueryContext) AddScan(docs, entries int64) {
	qc.docsScanned.Add(docs)
	qc.entriesScanned.Add(entries)
}

// SetGroupStateLimit caps the query's aggregate group-by state. Only the
// first positive limit sticks, so an engine-level default cannot override a
// stricter per-request cap set earlier.
func (qc *QueryContext) SetGroupStateLimit(bytes int64) {
	if bytes > 0 {
		qc.groupLimit.CompareAndSwap(0, bytes)
	}
}

// GroupStateLimit returns the configured cap (0 = uncapped).
func (qc *QueryContext) GroupStateLimit() int64 { return qc.groupLimit.Load() }

// ChargeGroupState records bytes of newly created group-by state. Crossing
// the cap latches the exceeded flag; the state was already allocated, so
// the bytes still count. Segment executors poll GroupStateExceeded at block
// boundaries and degrade to a partial result.
func (qc *QueryContext) ChargeGroupState(bytes int64) {
	total := qc.groupBytes.Add(bytes)
	if limit := qc.groupLimit.Load(); limit > 0 && total > limit {
		qc.groupExceeded.Store(true)
	}
}

// GroupStateExceeded reports whether the group-by state cap has tripped.
func (qc *QueryContext) GroupStateExceeded() bool { return qc.groupExceeded.Load() }

// GroupStateBytes returns the group-by state charged so far.
func (qc *QueryContext) GroupStateBytes() int64 { return qc.groupBytes.Load() }

// UsageSnapshot returns the current resource accounting.
func (qc *QueryContext) UsageSnapshot() Usage {
	return Usage{
		DocsScanned:     qc.docsScanned.Load(),
		EntriesScanned:  qc.entriesScanned.Load(),
		GroupStateBytes: qc.groupBytes.Load(),
	}
}

type ctxKey struct{}

// With attaches a query context.
func With(ctx context.Context, qc *QueryContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, qc)
}

// From extracts the query context, or nil when the context carries none.
func From(ctx context.Context) *QueryContext {
	qc, _ := ctx.Value(ctxKey{}).(*QueryContext)
	return qc
}
