package qctx

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBudgetDecrements(t *testing.T) {
	qc := New("", 50*time.Millisecond)
	left, ok := qc.Remaining()
	if !ok {
		t.Fatal("budget should be limited")
	}
	if left <= 0 || left > 50*time.Millisecond {
		t.Fatalf("remaining = %v, want (0, 50ms]", left)
	}
	time.Sleep(60 * time.Millisecond)
	left, _ = qc.Remaining()
	if left != 0 {
		t.Fatalf("exhausted budget remaining = %v, want 0", left)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	qc := New("", 0)
	if _, ok := qc.Remaining(); ok {
		t.Fatal("zero budget should report unlimited")
	}
}

func TestTraceChargeAndSnapshot(t *testing.T) {
	qc := New("q-1", 0)
	qc.Charge(PhaseParse, time.Millisecond)
	qc.Charge(PhaseParse, time.Millisecond)
	qc.Charge(PhaseScatter, 3*time.Millisecond)
	tr := qc.TraceSnapshot()
	if tr[PhaseParse] != 2*time.Millisecond {
		t.Fatalf("parse = %v", tr[PhaseParse])
	}
	// The snapshot is a copy: later charges must not leak in.
	qc.Charge(PhaseMerge, time.Second)
	if _, ok := tr[PhaseMerge]; ok {
		t.Fatal("snapshot aliased the live ledger")
	}
}

func TestWallSumExcludesNestedPhasesWhenDistributed(t *testing.T) {
	distributed := Trace{
		PhaseParse:   1 * time.Millisecond,
		PhaseScatter: 10 * time.Millisecond,
		PhaseQueue:   4 * time.Millisecond,
		PhaseExecute: 9 * time.Millisecond,
		PhaseReduce:  2 * time.Millisecond,
	}
	if got := distributed.WallSum(); got != 13*time.Millisecond {
		t.Fatalf("distributed WallSum = %v, want 13ms", got)
	}
	single := Trace{
		PhaseParse:   1 * time.Millisecond,
		PhaseExecute: 9 * time.Millisecond,
		PhaseReduce:  2 * time.Millisecond,
	}
	if got := single.WallSum(); got != 12*time.Millisecond {
		t.Fatalf("single-node WallSum = %v, want 12ms", got)
	}
}

func TestObserveServerFoldsMax(t *testing.T) {
	qc := New("", 0)
	qc.ObserveServer(Trace{PhaseExecute: 5 * time.Millisecond, PhaseQueue: time.Millisecond})
	qc.ObserveServer(Trace{PhaseExecute: 3 * time.Millisecond, PhaseQueue: 2 * time.Millisecond})
	tr := qc.TraceSnapshot()
	if tr[PhaseExecute] != 5*time.Millisecond || tr[PhaseQueue] != 2*time.Millisecond {
		t.Fatalf("folded trace = %v", tr)
	}
}

func TestGroupStateCapLatches(t *testing.T) {
	qc := New("", 0)
	qc.SetGroupStateLimit(100)
	qc.SetGroupStateLimit(1) // second limit must not override the first
	if got := qc.GroupStateLimit(); got != 100 {
		t.Fatalf("limit = %d, want 100", got)
	}
	qc.ChargeGroupState(60)
	if qc.GroupStateExceeded() {
		t.Fatal("cap tripped below the limit")
	}
	qc.ChargeGroupState(60)
	if !qc.GroupStateExceeded() {
		t.Fatal("cap did not trip past the limit")
	}
	if got := qc.GroupStateBytes(); got != 120 {
		t.Fatalf("charged bytes = %d, want 120 (the tripping charge still counts)", got)
	}
}

func TestAccountingConcurrent(t *testing.T) {
	qc := New("", 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				qc.AddScan(1, 2)
				qc.ChargeGroupState(3)
				qc.Charge(PhaseExecute, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	u := qc.UsageSnapshot()
	if u.DocsScanned != 8000 || u.EntriesScanned != 16000 || u.GroupStateBytes != 24000 {
		t.Fatalf("usage = %+v", u)
	}
	if qc.TraceSnapshot()[PhaseExecute] != 8000*time.Nanosecond {
		t.Fatalf("trace = %v", qc.TraceSnapshot())
	}
}

func TestContextPlumbing(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context should carry no query context")
	}
	qc := New("q-abc", 0)
	ctx := With(context.Background(), qc)
	if From(ctx) != qc {
		t.Fatal("round trip lost the query context")
	}
	if qc.ID() != "q-abc" {
		t.Fatalf("id = %q", qc.ID())
	}
	if New("", 0).ID() == "" {
		t.Fatal("empty id should be generated")
	}
}
