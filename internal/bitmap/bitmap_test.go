package bitmap

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddContains(t *testing.T) {
	b := New()
	values := []uint32{0, 1, 63, 64, 65, 1000, 65535, 65536, 1 << 20, 1<<31 + 7}
	for _, v := range values {
		if !b.Add(v) {
			t.Fatalf("Add(%d) reported already present", v)
		}
	}
	for _, v := range values {
		if b.Add(v) {
			t.Fatalf("second Add(%d) reported absent", v)
		}
		if !b.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	for _, v := range []uint32{2, 66, 999, 65537} {
		if b.Contains(v) {
			t.Fatalf("Contains(%d) = true for absent value", v)
		}
	}
	if got := b.Cardinality(); got != len(values) {
		t.Fatalf("Cardinality = %d, want %d", got, len(values))
	}
}

func TestRemove(t *testing.T) {
	b := Of(1, 2, 3, 70000)
	if !b.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	if b.Remove(2) {
		t.Fatal("second Remove(2) = true")
	}
	if b.Contains(2) {
		t.Fatal("2 still present after Remove")
	}
	if !b.Remove(70000) {
		t.Fatal("Remove(70000) = false")
	}
	if got := b.Cardinality(); got != 2 {
		t.Fatalf("Cardinality = %d, want 2", got)
	}
	// Removing the only value in a container must drop the container.
	b2 := Of(500000)
	b2.Remove(500000)
	if !b2.IsEmpty() {
		t.Fatal("bitmap not empty after removing sole value")
	}
}

func TestArrayToBitsetConversion(t *testing.T) {
	b := New()
	for i := uint32(0); i <= arrayToBitmapThreshold; i++ {
		b.Add(i * 2) // spread within one container
	}
	if b.containers[0].words == nil {
		t.Fatal("container did not convert to bitset above threshold")
	}
	if got := b.Cardinality(); got != arrayToBitmapThreshold+1 {
		t.Fatalf("Cardinality = %d", got)
	}
	for i := uint32(0); i <= arrayToBitmapThreshold; i++ {
		if !b.Contains(i * 2) {
			t.Fatalf("lost value %d after conversion", i*2)
		}
		if b.Contains(i*2 + 1) {
			t.Fatalf("gained value %d after conversion", i*2+1)
		}
	}
	// Removing most values converts back to array.
	for i := uint32(10); i <= arrayToBitmapThreshold; i++ {
		b.Remove(i * 2)
	}
	if b.containers[0].array == nil {
		t.Fatal("container did not convert back to array")
	}
	if got := b.Cardinality(); got != 10 {
		t.Fatalf("Cardinality = %d, want 10", got)
	}
}

func TestAddRange(t *testing.T) {
	b := New()
	b.AddRange(100, 200000)
	if got := b.Cardinality(); got != 200000-100 {
		t.Fatalf("Cardinality = %d, want %d", got, 200000-100)
	}
	if b.Contains(99) || !b.Contains(100) || !b.Contains(199999) || b.Contains(200000) {
		t.Fatal("range boundaries wrong")
	}
	// Adding an overlapping range must not double-count.
	b.AddRange(150, 250)
	if got := b.Cardinality(); got != 200000-100 {
		t.Fatalf("Cardinality after overlap = %d", got)
	}
	// Empty range is a no-op.
	b2 := New()
	b2.AddRange(10, 10)
	if !b2.IsEmpty() {
		t.Fatal("empty range added values")
	}
}

func TestAddRangeAcrossContainerBoundary(t *testing.T) {
	b := New()
	b.AddRange(65530, 65542)
	want := []uint32{65530, 65531, 65532, 65533, 65534, 65535, 65536, 65537, 65538, 65539, 65540, 65541}
	got := b.ToArray()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	b := New()
	if _, ok := b.Minimum(); ok {
		t.Fatal("Minimum on empty reported ok")
	}
	if _, ok := b.Maximum(); ok {
		t.Fatal("Maximum on empty reported ok")
	}
	b = Of(42, 7, 1<<20, 65536)
	if v, _ := b.Minimum(); v != 7 {
		t.Fatalf("Minimum = %d", v)
	}
	if v, _ := b.Maximum(); v != 1<<20 {
		t.Fatalf("Maximum = %d", v)
	}
	// Dense container paths.
	d := FromRange(70000, 80000)
	if v, _ := d.Minimum(); v != 70000 {
		t.Fatalf("dense Minimum = %d", v)
	}
	if v, _ := d.Maximum(); v != 79999 {
		t.Fatalf("dense Maximum = %d", v)
	}
}

func refSet(vals []uint32) map[uint32]bool {
	m := make(map[uint32]bool, len(vals))
	for _, v := range vals {
		m[v] = true
	}
	return m
}

func randomValues(r *rand.Rand, n int, max uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.Uint32() % max
	}
	return out
}

func TestSetOperationsAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		av := randomValues(r, 3000, 1<<18)
		bv := randomValues(r, 3000, 1<<18)
		a, b := Of(av...), Of(bv...)
		sa, sb := refSet(av), refSet(bv)

		and := And(a, b)
		or := Or(a, b)
		andNot := AndNot(a, b)
		for v := uint32(0); v < 1<<18; v++ {
			inA, inB := sa[v], sb[v]
			if and.Contains(v) != (inA && inB) {
				t.Fatalf("And mismatch at %d", v)
			}
			if or.Contains(v) != (inA || inB) {
				t.Fatalf("Or mismatch at %d", v)
			}
			if andNot.Contains(v) != (inA && !inB) {
				t.Fatalf("AndNot mismatch at %d", v)
			}
		}
	}
}

func TestSetOperationsDenseContainers(t *testing.T) {
	a := FromRange(0, 60000)
	b := FromRange(30000, 90000)
	and := And(a, b)
	if got := and.Cardinality(); got != 30000 {
		t.Fatalf("And cardinality = %d", got)
	}
	or := Or(a, b)
	if got := or.Cardinality(); got != 90000 {
		t.Fatalf("Or cardinality = %d", got)
	}
	diff := AndNot(a, b)
	if got := diff.Cardinality(); got != 30000 {
		t.Fatalf("AndNot cardinality = %d", got)
	}
	if diff.Contains(30000) || !diff.Contains(29999) {
		t.Fatal("AndNot boundary wrong")
	}
}

func TestFlipRange(t *testing.T) {
	b := Of(2, 5, 7)
	f := FlipRange(b, 0, 10)
	want := []uint32{0, 1, 3, 4, 6, 8, 9}
	got := f.ToArray()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Values outside the domain are dropped.
	b2 := Of(100, 200)
	f2 := FlipRange(b2, 150, 160)
	if f2.Cardinality() != 10 || f2.Contains(100) {
		t.Fatalf("FlipRange domain handling wrong: %v", f2.ToArray())
	}
	// Complement of full range is empty.
	f3 := FlipRange(FromRange(0, 100), 0, 100)
	if !f3.IsEmpty() {
		t.Fatal("complement of full range not empty")
	}
}

func TestIteratorOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := randomValues(r, 20000, 1<<24)
	b := Of(vals...)
	sorted := append([]uint32(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// dedupe
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	got := b.ToArray()
	if len(got) != len(uniq) {
		t.Fatalf("iterator yielded %d values, want %d", len(got), len(uniq))
	}
	for i := range uniq {
		if got[i] != uniq[i] {
			t.Fatalf("value %d: got %d, want %d", i, got[i], uniq[i])
		}
	}
}

func TestIteratorAdvance(t *testing.T) {
	b := Of(1, 5, 100, 65536, 70000, 200000)
	it := b.Iterator()
	it.AdvanceIfNeeded(6)
	if v := it.Next(); v != 100 {
		t.Fatalf("after advance(6): %d", v)
	}
	it.AdvanceIfNeeded(70000)
	if v := it.Next(); v != 70000 {
		t.Fatalf("after advance(70000): %d", v)
	}
	it.AdvanceIfNeeded(999999)
	if it.HasNext() {
		t.Fatal("iterator should be exhausted")
	}
	// Advancing to a value below the current position is a no-op.
	it2 := b.Iterator()
	it2.Next()
	it2.AdvanceIfNeeded(0)
	if v := it2.Next(); v != 5 {
		t.Fatalf("backward advance moved iterator: %d", v)
	}
	// Advance within a dense container.
	d := FromRange(0, 50000)
	itd := d.Iterator()
	itd.AdvanceIfNeeded(43217)
	if v := itd.Next(); v != 43217 {
		t.Fatalf("dense advance: %d", v)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := Of(randomValues(r, 10000, 1<<22)...)
	b.AddRange(1<<22, 1<<22+70000) // force dense containers
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got := New()
	if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !b.Equals(got) {
		t.Fatal("round trip mismatch")
	}
}

func TestSerializationBadMagic(t *testing.T) {
	got := New()
	if _, err := got.ReadFrom(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestClone(t *testing.T) {
	b := Of(1, 2, 3)
	b.AddRange(100000, 170000)
	c := b.Clone()
	c.Add(4)
	c.Remove(1)
	if b.Contains(4) || !b.Contains(1) {
		t.Fatal("clone aliases original")
	}
	if !c.Contains(4) || c.Contains(1) {
		t.Fatal("clone mutation lost")
	}
}

// Property: for any two value sets, De Morgan-style identities hold within a
// domain covering all values.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(av, bv []uint16) bool {
		a32 := make([]uint32, len(av))
		for i, v := range av {
			a32[i] = uint32(v) * 3
		}
		b32 := make([]uint32, len(bv))
		for i, v := range bv {
			b32[i] = uint32(v) * 3
		}
		a, b := Of(a32...), Of(b32...)
		const domain = 3 * 65536
		// a ∩ b == a \ (a \ b)
		lhs := And(a, b)
		rhs := AndNot(a, AndNot(a, b))
		if !lhs.Equals(rhs) {
			return false
		}
		// ¬(a ∪ b) == ¬a ∩ ¬b  within domain
		l2 := FlipRange(Or(a, b), 0, domain)
		r2 := And(FlipRange(a, 0, domain), FlipRange(b, 0, domain))
		return l2.Equals(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cardinality of union = |a| + |b| - |a ∩ b|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, b := Of(av...), Of(bv...)
		return Or(a, b).Cardinality() == a.Cardinality()+b.Cardinality()-And(a, b).Cardinality()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBitmapAnd(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	x := Of(randomValues(r, 100000, 1<<22)...)
	y := Of(randomValues(r, 100000, 1<<22)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(x, y)
	}
}

func BenchmarkBitmapIterate(b *testing.B) {
	x := FromRange(0, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := x.Iterator()
		for it.HasNext() {
			it.Next()
		}
	}
}

func TestOrAllAndString(t *testing.T) {
	a, b, c := Of(1, 2), Of(2, 3), Of(70000)
	u := OrAll(a, nil, b, c)
	if u.Cardinality() != 4 || !u.Contains(70000) {
		t.Fatalf("OrAll = %v", u.ToArray())
	}
	if OrAll().Cardinality() != 0 {
		t.Fatal("empty OrAll")
	}
	if s := u.String(); s == "" {
		t.Fatal("empty String()")
	}
}
