// Package bitmap implements roaring bitmaps, the compressed bitmap format
// used by Pinot (and Druid) for inverted indexes. A bitmap is partitioned by
// the high 16 bits of each value into containers; dense containers are stored
// as 1024-word bitsets and sparse containers as sorted uint16 arrays, with
// automatic conversion at the conventional 4096-element threshold.
package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// arrayToBitmapThreshold is the container cardinality above which an array
// container is converted to a bitset container (and below which a bitset
// container is converted back). 4096 uint16s occupy exactly as much space as
// a full 8 KiB bitset, so this is the break-even point.
const arrayToBitmapThreshold = 4096

const bitmapWords = 1024 // 1024 * 64 = 65536 bits per container

// container holds one 2^16-value chunk of the bitmap. Exactly one of array
// or words is non-nil.
type container struct {
	key   uint16   // high 16 bits of the values in this container
	array []uint16 // sorted low 16 bits, when sparse
	words []uint64 // 1024-word bitset, when dense
	card  int      // cardinality when words != nil (arrays use len)
}

func (c *container) cardinality() int {
	if c.words != nil {
		return c.card
	}
	return len(c.array)
}

func (c *container) contains(low uint16) bool {
	if c.words != nil {
		return c.words[low>>6]&(1<<(low&63)) != 0
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
	return i < len(c.array) && c.array[i] == low
}

func (c *container) add(low uint16) bool {
	if c.words != nil {
		w, b := low>>6, uint64(1)<<(low&63)
		if c.words[w]&b != 0 {
			return false
		}
		c.words[w] |= b
		c.card++
		return true
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
	if i < len(c.array) && c.array[i] == low {
		return false
	}
	c.array = append(c.array, 0)
	copy(c.array[i+1:], c.array[i:])
	c.array[i] = low
	if len(c.array) > arrayToBitmapThreshold {
		c.toBitset()
	}
	return true
}

func (c *container) remove(low uint16) bool {
	if c.words != nil {
		w, b := low>>6, uint64(1)<<(low&63)
		if c.words[w]&b == 0 {
			return false
		}
		c.words[w] &^= b
		c.card--
		if c.card <= arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return true
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
	if i >= len(c.array) || c.array[i] != low {
		return false
	}
	c.array = append(c.array[:i], c.array[i+1:]...)
	return true
}

func (c *container) toBitset() {
	words := make([]uint64, bitmapWords)
	for _, v := range c.array {
		words[v>>6] |= 1 << (v & 63)
	}
	c.card = len(c.array)
	c.array = nil
	c.words = words
}

func (c *container) toArray() {
	arr := make([]uint16, 0, c.card)
	for w, word := range c.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			arr = append(arr, uint16(w<<6+b))
			word &= word - 1
		}
	}
	c.array = arr
	c.words = nil
	c.card = 0
}

func (c *container) clone() *container {
	out := &container{key: c.key, card: c.card}
	if c.words != nil {
		out.words = append([]uint64(nil), c.words...)
	} else {
		out.array = append([]uint16(nil), c.array...)
	}
	return out
}

// Bitmap is a compressed set of uint32 values. The zero value is an empty
// bitmap ready to use. Bitmap is not safe for concurrent mutation.
type Bitmap struct {
	containers []*container // sorted by key
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// Of returns a bitmap containing the given values.
func Of(values ...uint32) *Bitmap {
	b := New()
	for _, v := range values {
		b.Add(v)
	}
	return b
}

// FromRange returns a bitmap containing [start, end).
func FromRange(start, end uint32) *Bitmap {
	b := New()
	b.AddRange(start, end)
	return b
}

func (b *Bitmap) containerIndex(key uint16) (int, bool) {
	i := sort.Search(len(b.containers), func(i int) bool { return b.containers[i].key >= key })
	return i, i < len(b.containers) && b.containers[i].key == key
}

func (b *Bitmap) containerAt(key uint16) *container {
	if i, ok := b.containerIndex(key); ok {
		return b.containers[i]
	}
	return nil
}

func (b *Bitmap) insertContainer(i int, c *container) {
	b.containers = append(b.containers, nil)
	copy(b.containers[i+1:], b.containers[i:])
	b.containers[i] = c
}

// Add inserts v, reporting whether it was absent.
func (b *Bitmap) Add(v uint32) bool {
	key, low := uint16(v>>16), uint16(v)
	i, ok := b.containerIndex(key)
	if !ok {
		b.insertContainer(i, &container{key: key, array: []uint16{low}})
		return true
	}
	return b.containers[i].add(low)
}

// AddRange inserts every value in [start, end).
func (b *Bitmap) AddRange(start, end uint32) {
	for v := uint64(start); v < uint64(end); {
		key := uint16(v >> 16)
		chunkEnd := (v | 0xFFFF) + 1
		if chunkEnd > uint64(end) {
			chunkEnd = uint64(end)
		}
		i, ok := b.containerIndex(key)
		var c *container
		if !ok {
			c = &container{key: key}
			if chunkEnd-v > arrayToBitmapThreshold {
				c.words = make([]uint64, bitmapWords)
			}
			b.insertContainer(i, c)
		} else {
			c = b.containers[i]
			if c.words == nil && uint64(len(c.array))+(chunkEnd-v) > arrayToBitmapThreshold {
				c.toBitset()
			}
		}
		if c.words != nil {
			for x := v; x < chunkEnd; x++ {
				low := uint16(x)
				w, bit := low>>6, uint64(1)<<(low&63)
				if c.words[w]&bit == 0 {
					c.words[w] |= bit
					c.card++
				}
			}
		} else {
			for x := v; x < chunkEnd; x++ {
				c.add(uint16(x))
			}
		}
		v = chunkEnd
	}
}

// Remove deletes v, reporting whether it was present.
func (b *Bitmap) Remove(v uint32) bool {
	key, low := uint16(v>>16), uint16(v)
	i, ok := b.containerIndex(key)
	if !ok {
		return false
	}
	c := b.containers[i]
	removed := c.remove(low)
	if removed && c.cardinality() == 0 {
		b.containers = append(b.containers[:i], b.containers[i+1:]...)
	}
	return removed
}

// Contains reports whether v is in the bitmap.
func (b *Bitmap) Contains(v uint32) bool {
	c := b.containerAt(uint16(v >> 16))
	return c != nil && c.contains(uint16(v))
}

// Cardinality returns the number of values in the bitmap.
func (b *Bitmap) Cardinality() int {
	n := 0
	for _, c := range b.containers {
		n += c.cardinality()
	}
	return n
}

// IsEmpty reports whether the bitmap contains no values.
func (b *Bitmap) IsEmpty() bool { return len(b.containers) == 0 }

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{containers: make([]*container, len(b.containers))}
	for i, c := range b.containers {
		out.containers[i] = c.clone()
	}
	return out
}

// Minimum returns the smallest value, or false if the bitmap is empty.
func (b *Bitmap) Minimum() (uint32, bool) {
	if len(b.containers) == 0 {
		return 0, false
	}
	c := b.containers[0]
	if c.words == nil {
		return uint32(c.key)<<16 | uint32(c.array[0]), true
	}
	for w, word := range c.words {
		if word != 0 {
			return uint32(c.key)<<16 | uint32(w<<6+bits.TrailingZeros64(word)), true
		}
	}
	return 0, false
}

// Maximum returns the largest value, or false if the bitmap is empty.
func (b *Bitmap) Maximum() (uint32, bool) {
	if len(b.containers) == 0 {
		return 0, false
	}
	c := b.containers[len(b.containers)-1]
	if c.words == nil {
		return uint32(c.key)<<16 | uint32(c.array[len(c.array)-1]), true
	}
	for w := bitmapWords - 1; w >= 0; w-- {
		if word := c.words[w]; word != 0 {
			return uint32(c.key)<<16 | uint32(w<<6+63-bits.LeadingZeros64(word)), true
		}
	}
	return 0, false
}

// ToArray returns all values in ascending order.
func (b *Bitmap) ToArray() []uint32 {
	out := make([]uint32, 0, b.Cardinality())
	it := b.Iterator()
	for it.HasNext() {
		out = append(out, it.Next())
	}
	return out
}

// Equals reports whether two bitmaps contain the same values.
func (b *Bitmap) Equals(o *Bitmap) bool {
	if b.Cardinality() != o.Cardinality() {
		return false
	}
	bi, oi := b.Iterator(), o.Iterator()
	for bi.HasNext() {
		if bi.Next() != oi.Next() {
			return false
		}
	}
	return true
}

// String renders a short human-readable summary.
func (b *Bitmap) String() string {
	return fmt.Sprintf("Bitmap{card=%d, containers=%d}", b.Cardinality(), len(b.containers))
}

// And returns the intersection of a and b as a new bitmap.
func And(a, b *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(a.containers) && j < len(b.containers) {
		ca, cb := a.containers[i], b.containers[j]
		switch {
		case ca.key < cb.key:
			i++
		case ca.key > cb.key:
			j++
		default:
			if c := andContainers(ca, cb); c != nil {
				out.containers = append(out.containers, c)
			}
			i++
			j++
		}
	}
	return out
}

// Or returns the union of a and b as a new bitmap.
func Or(a, b *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(a.containers) || j < len(b.containers) {
		switch {
		case j >= len(b.containers) || (i < len(a.containers) && a.containers[i].key < b.containers[j].key):
			out.containers = append(out.containers, a.containers[i].clone())
			i++
		case i >= len(a.containers) || b.containers[j].key < a.containers[i].key:
			out.containers = append(out.containers, b.containers[j].clone())
			j++
		default:
			out.containers = append(out.containers, orContainers(a.containers[i], b.containers[j]))
			i++
			j++
		}
	}
	return out
}

// AndNot returns a \ b (values in a that are not in b) as a new bitmap.
func AndNot(a, b *Bitmap) *Bitmap {
	out := New()
	j := 0
	for _, ca := range a.containers {
		for j < len(b.containers) && b.containers[j].key < ca.key {
			j++
		}
		if j < len(b.containers) && b.containers[j].key == ca.key {
			if c := andNotContainers(ca, b.containers[j]); c != nil {
				out.containers = append(out.containers, c)
			}
		} else {
			out.containers = append(out.containers, ca.clone())
		}
	}
	return out
}

// OrAll returns the union of all given bitmaps.
func OrAll(ms ...*Bitmap) *Bitmap {
	out := New()
	for _, m := range ms {
		if m != nil {
			out = Or(out, m)
		}
	}
	return out
}

// AndAll returns the intersection of all given bitmaps. With no arguments it
// returns an empty bitmap.
func AndAll(ms ...*Bitmap) *Bitmap {
	if len(ms) == 0 {
		return New()
	}
	if len(ms) == 1 {
		return ms[0].Clone()
	}
	out := And(ms[0], ms[1])
	for _, m := range ms[2:] {
		out = And(out, m)
	}
	return out
}

// FlipRange returns the complement of b within [start, end): values in the
// range are toggled, values outside are dropped. This implements NOT within
// a document-id domain.
func FlipRange(b *Bitmap, start, end uint32) *Bitmap {
	out := New()
	it := b.Iterator()
	next := start
	for it.HasNext() {
		v := it.Next()
		if v < start {
			continue
		}
		if v >= end {
			break
		}
		if v > next {
			out.AddRange(next, v)
		}
		next = v + 1
	}
	if next < end {
		out.AddRange(next, end)
	}
	return out
}

func (c *container) asBitsetWords() []uint64 {
	if c.words != nil {
		return c.words
	}
	words := make([]uint64, bitmapWords)
	for _, v := range c.array {
		words[v>>6] |= 1 << (v & 63)
	}
	return words
}

func containerFromWords(key uint16, words []uint64) *container {
	card := 0
	for _, w := range words {
		card += bits.OnesCount64(w)
	}
	if card == 0 {
		return nil
	}
	c := &container{key: key, words: words, card: card}
	if card <= arrayToBitmapThreshold {
		c.toArray()
	}
	return c
}

func andContainers(a, b *container) *container {
	if a.array != nil && b.array != nil {
		out := make([]uint16, 0, min(len(a.array), len(b.array)))
		i, j := 0, 0
		for i < len(a.array) && j < len(b.array) {
			switch {
			case a.array[i] < b.array[j]:
				i++
			case a.array[i] > b.array[j]:
				j++
			default:
				out = append(out, a.array[i])
				i++
				j++
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	}
	if a.array != nil || b.array != nil {
		arr, bs := a, b
		if b.array != nil {
			arr, bs = b, a
		}
		out := make([]uint16, 0, len(arr.array))
		for _, v := range arr.array {
			if bs.words[v>>6]&(1<<(v&63)) != 0 {
				out = append(out, v)
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	}
	words := make([]uint64, bitmapWords)
	for i := range words {
		words[i] = a.words[i] & b.words[i]
	}
	return containerFromWords(a.key, words)
}

func orContainers(a, b *container) *container {
	if a.array != nil && b.array != nil && len(a.array)+len(b.array) <= arrayToBitmapThreshold {
		out := make([]uint16, 0, len(a.array)+len(b.array))
		i, j := 0, 0
		for i < len(a.array) && j < len(b.array) {
			switch {
			case a.array[i] < b.array[j]:
				out = append(out, a.array[i])
				i++
			case a.array[i] > b.array[j]:
				out = append(out, b.array[j])
				j++
			default:
				out = append(out, a.array[i])
				i++
				j++
			}
		}
		out = append(out, a.array[i:]...)
		out = append(out, b.array[j:]...)
		return &container{key: a.key, array: out}
	}
	wa, wb := a.asBitsetWords(), b.asBitsetWords()
	words := make([]uint64, bitmapWords)
	for i := range words {
		words[i] = wa[i] | wb[i]
	}
	return containerFromWords(a.key, words)
}

func andNotContainers(a, b *container) *container {
	if a.array != nil {
		out := make([]uint16, 0, len(a.array))
		for _, v := range a.array {
			if !b.contains(v) {
				out = append(out, v)
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &container{key: a.key, array: out}
	}
	wb := b.asBitsetWords()
	words := make([]uint64, bitmapWords)
	for i := range words {
		words[i] = a.words[i] &^ wb[i]
	}
	return containerFromWords(a.key, words)
}

// Iterator walks the values of a bitmap in ascending order.
type Iterator struct {
	b       *Bitmap
	ci      int    // container index
	ai      int    // array index within array container
	wi      int    // word index within bitset container
	word    uint64 // remaining bits of current word
	current *container
}

// Iterator returns a new ascending iterator over b. The bitmap must not be
// mutated while iterating.
func (b *Bitmap) Iterator() *Iterator {
	it := &Iterator{b: b, ci: -1}
	it.advanceContainer()
	return it
}

func (it *Iterator) advanceContainer() {
	it.ci++
	it.ai, it.wi, it.word = 0, 0, 0
	if it.ci >= len(it.b.containers) {
		it.current = nil
		return
	}
	it.current = it.b.containers[it.ci]
	if it.current.words != nil {
		it.word = it.current.words[0]
		it.skipEmptyWords()
	}
}

func (it *Iterator) skipEmptyWords() {
	for it.word == 0 {
		it.wi++
		if it.wi >= bitmapWords {
			it.advanceContainer()
			return
		}
		it.word = it.current.words[it.wi]
	}
}

// HasNext reports whether another value remains.
func (it *Iterator) HasNext() bool {
	return it.current != nil && (it.current.words != nil || it.ai < len(it.current.array))
}

// Next returns the next value. It must only be called after HasNext reports
// true.
func (it *Iterator) Next() uint32 {
	c := it.current
	if c.words == nil {
		v := uint32(c.key)<<16 | uint32(c.array[it.ai])
		it.ai++
		if it.ai >= len(c.array) {
			it.advanceContainer()
		}
		return v
	}
	b := bits.TrailingZeros64(it.word)
	v := uint32(c.key)<<16 | uint32(it.wi<<6+b)
	it.word &= it.word - 1
	it.skipEmptyWords()
	return v
}

// NextMany fills dst with the next values in ascending order and returns the
// number written. It drains containers in bulk — array containers by direct
// copy, bitset containers word-at-a-time — so per-value call overhead is
// amortized across the block. Zero means the iterator is exhausted.
func (it *Iterator) NextMany(dst []uint32) int {
	n := 0
	for n < len(dst) && it.current != nil {
		c := it.current
		hi := uint32(c.key) << 16
		if c.words == nil {
			take := len(c.array) - it.ai
			if take > len(dst)-n {
				take = len(dst) - n
			}
			for _, low := range c.array[it.ai : it.ai+take] {
				dst[n] = hi | uint32(low)
				n++
			}
			it.ai += take
			if it.ai >= len(c.array) {
				it.advanceContainer()
			}
			continue
		}
		base := hi | uint32(it.wi<<6)
		word := it.word
		for word != 0 && n < len(dst) {
			dst[n] = base | uint32(bits.TrailingZeros64(word))
			n++
			word &= word - 1
		}
		it.word = word
		if word == 0 {
			it.skipEmptyWords()
		}
	}
	return n
}

// AdvanceIfNeeded skips forward so the next value returned is >= target.
func (it *Iterator) AdvanceIfNeeded(target uint32) {
	for it.HasNext() {
		c := it.current
		hi := uint32(c.key) << 16
		if hi+0xFFFF < target {
			it.advanceContainer()
			continue
		}
		if c.words == nil {
			low := uint16(0)
			if target > hi {
				low = uint16(target - hi)
			}
			i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
			if i >= len(c.array) {
				it.advanceContainer()
				continue
			}
			it.ai = max(it.ai, i)
			return
		}
		low := uint32(0)
		if target > hi {
			low = target - hi
		}
		w := int(low >> 6)
		if w > it.wi || (w == it.wi && it.word != 0) {
			if w > it.wi {
				it.wi = w
				it.word = c.words[w]
			}
			it.word &= ^uint64(0) << (low & 63)
			it.skipEmptyWords()
		}
		return
	}
}

const serialMagic = uint32(0x52_42_4D_31) // "RBM1"

// WriteTo serializes the bitmap. The format is a simple portable layout:
// magic, container count, then per container: key, type, cardinality, payload.
func (b *Bitmap) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(serialMagic); err != nil {
		return n, err
	}
	if err := write(uint32(len(b.containers))); err != nil {
		return n, err
	}
	for _, c := range b.containers {
		if err := write(c.key); err != nil {
			return n, err
		}
		if c.words != nil {
			if err := write(uint8(1)); err != nil {
				return n, err
			}
			if err := write(uint32(c.card)); err != nil {
				return n, err
			}
			if err := write(c.words); err != nil {
				return n, err
			}
		} else {
			if err := write(uint8(0)); err != nil {
				return n, err
			}
			if err := write(uint32(len(c.array))); err != nil {
				return n, err
			}
			if err := write(c.array); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// ReadFrom deserializes a bitmap previously written with WriteTo, replacing
// the receiver's contents.
func (b *Bitmap) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	read := func(v any) error {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	var magic uint32
	if err := read(&magic); err != nil {
		return n, err
	}
	if magic != serialMagic {
		return n, errors.New("bitmap: bad magic")
	}
	var count uint32
	if err := read(&count); err != nil {
		return n, err
	}
	if count > 1<<16 {
		return n, errors.New("bitmap: corrupt container count")
	}
	b.containers = make([]*container, 0, count)
	for i := uint32(0); i < count; i++ {
		c := &container{}
		var typ uint8
		var card uint32
		if err := read(&c.key); err != nil {
			return n, err
		}
		if err := read(&typ); err != nil {
			return n, err
		}
		if err := read(&card); err != nil {
			return n, err
		}
		if typ == 1 {
			if card > 1<<16 {
				return n, errors.New("bitmap: corrupt container cardinality")
			}
			c.words = make([]uint64, bitmapWords)
			c.card = int(card)
			if err := read(c.words); err != nil {
				return n, err
			}
		} else {
			if card > arrayToBitmapThreshold+1 {
				return n, errors.New("bitmap: corrupt array container size")
			}
			c.array = make([]uint16, card)
			if err := read(c.array); err != nil {
				return n, err
			}
		}
		b.containers = append(b.containers, c)
	}
	return n, nil
}
