package query

import (
	"fmt"
	"math/bits"
	"strconv"

	"pinot/internal/expr"
	"pinot/internal/pql"
	"pinot/internal/segment"
)

// This file is the vectorized (block-at-a-time) execution path. Matching doc
// ids arrive in blocks of up to blockSize, dictionary ids and metric values
// decode in batches through the ColumnReader block methods, and aggregation
// states update through typed kernels instead of per-doc interface dispatch.
// Every kernel folds values in the exact per-element float64 order of the
// scalar path, so finalized results and Stats are identical in both modes —
// the differential test in vexec_diff_test.go enforces this.

// ---- numeric input reader ----

type nrMode int

const (
	nrDouble     nrMode = iota // raw metric column: Double(doc)
	nrDict                     // dictionary column, dense id→float64 table
	nrDictScalar               // dictionary column, per-id decode (selective filters)
)

// numericReader reads the numeric input of an aggregation for a block of
// docs, mirroring aggInput.numeric value-for-value.
type numericReader struct {
	col    segment.ColumnReader
	mode   nrMode
	decode []float64
	ids    []uint32
}

func newNumericReader(col segment.ColumnReader, estimate int) *numericReader {
	r := &numericReader{col: col}
	if !col.HasDictionary() {
		r.mode = nrDouble
		return r
	}
	card := col.Cardinality()
	// The dense decode table costs O(card) to build; worth it only when
	// the filter is expected to touch a comparable number of rows.
	if estimate < card/4 {
		r.mode = nrDictScalar
		return r
	}
	r.mode = nrDict
	r.decode = make([]float64, card)
	for id := 0; id < card; id++ {
		r.decode[id] = dictNumeric(col.Value(id))
	}
	return r
}

func dictNumeric(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

func (r *numericReader) read(docs []int, dst []float64) {
	if r.mode == nrDouble {
		r.col.Doubles(docs, dst)
		return
	}
	if cap(r.ids) < len(docs) {
		r.ids = make([]uint32, blockSize)
	}
	ids := r.ids[:len(docs)]
	r.col.DictIDs(docs, ids)
	if r.mode == nrDict {
		for i, id := range ids {
			dst[i] = r.decode[id]
		}
		return
	}
	for i, id := range ids {
		dst[i] = dictNumeric(r.col.Value(int(id)))
	}
}

// ---- DISTINCTCOUNT key cache ----

// dictKeyCache lazily renders dict ids to their DISTINCTCOUNT string keys. A
// have-flag array marks rendered ids ("" is a valid dictionary value, so the
// empty string cannot serve as the absent sentinel).
type dictKeyCache struct {
	col  segment.ColumnReader
	keys []string
	have []bool
}

func newDictKeyCache(col segment.ColumnReader) *dictKeyCache {
	card := col.Cardinality()
	return &dictKeyCache{col: col, keys: make([]string, card), have: make([]bool, card)}
}

func (c *dictKeyCache) key(id uint32) string {
	if !c.have[id] {
		c.keys[id] = fmt.Sprint(c.col.Value(int(id)))
		c.have[id] = true
	}
	return c.keys[id]
}

// ---- aggregation kernel ----

// aggKernel accumulates one aggregation input over doc blocks, the typed
// replacement of per-doc aggInput.accumulate.
type aggKernel struct {
	in      aggInput
	nr      *numericReader
	keys    *dictKeyCache // DISTINCTCOUNT over a dictionary column
	vals    []float64
	ids     []uint32
	longs   []int64
	doubles []float64
	anys    []any // DISTINCTCOUNT over an expression
}

func newAggKernel(in aggInput, estimate int) *aggKernel {
	k := &aggKernel{in: in}
	switch in.expr.Func {
	case pql.Count:
	case pql.DistinctCount:
		if in.ev == nil && in.col.HasDictionary() {
			k.keys = newDictKeyCache(in.col)
		}
	default:
		if in.ev == nil {
			k.nr = newNumericReader(in.col, estimate)
		}
	}
	return k
}

// prepare decodes the block's input values into typed scratch.
func (k *aggKernel) prepare(docs []int) {
	switch k.in.expr.Func {
	case pql.Count:
	case pql.DistinctCount:
		if k.in.ev != nil {
			if cap(k.anys) < len(docs) {
				k.anys = make([]any, blockSize)
			}
			k.anys = k.anys[:len(docs)]
			k.in.ev.fillValues(docs, k.anys)
			return
		}
		col := k.in.col
		switch {
		case col.HasDictionary():
			if cap(k.ids) < len(docs) {
				k.ids = make([]uint32, blockSize)
			}
			k.ids = k.ids[:len(docs)]
			col.DictIDs(docs, k.ids)
		case col.Spec().Type.Integral():
			if cap(k.longs) < len(docs) {
				k.longs = make([]int64, blockSize)
			}
			k.longs = k.longs[:len(docs)]
			col.Longs(docs, k.longs)
		default:
			if cap(k.doubles) < len(docs) {
				k.doubles = make([]float64, blockSize)
			}
			k.doubles = k.doubles[:len(docs)]
			col.Doubles(docs, k.doubles)
		}
	default:
		if cap(k.vals) < len(docs) {
			k.vals = make([]float64, blockSize)
		}
		k.vals = k.vals[:len(docs)]
		if k.in.ev != nil {
			k.in.ev.fillDoubles(docs, k.vals)
		} else {
			k.nr.read(docs, k.vals)
		}
	}
}

// keyAt renders the DISTINCTCOUNT key of the i-th doc of the prepared block,
// producing the same strings as aggInput.distinctKey.
func (k *aggKernel) keyAt(i int) string {
	switch {
	case k.in.ev != nil:
		return fmt.Sprint(k.anys[i])
	case k.keys != nil:
		return k.keys.key(k.ids[i])
	case k.in.col.Spec().Type.Integral():
		return strconv.FormatInt(k.longs[i], 10)
	default:
		return strconv.FormatFloat(k.doubles[i], 'g', -1, 64)
	}
}

// accumulateBlock folds a whole prepared block into one state.
func (k *aggKernel) accumulateBlock(s *AggState, n int) {
	switch k.in.expr.Func {
	case pql.Count:
		s.AddCount(int64(n))
	case pql.DistinctCount:
		for i := 0; i < n; i++ {
			s.Distinct[k.keyAt(i)] = struct{}{}
		}
		s.Count += int64(n)
	default:
		accumNumericBlock(s, k.vals[:n])
	}
}

// accumulateGroups folds each doc of the prepared block into its group's
// aggIdx-th state.
func (k *aggKernel) accumulateGroups(entries []*GroupEntry, aggIdx, n int) {
	switch k.in.expr.Func {
	case pql.Count:
		for i := 0; i < n; i++ {
			entries[i].Aggs[aggIdx].AddCount(1)
		}
	case pql.DistinctCount:
		for i := 0; i < n; i++ {
			entries[i].Aggs[aggIdx].AddDistinct(k.keyAt(i))
		}
	default:
		for i := 0; i < n; i++ {
			entries[i].Aggs[aggIdx].AddNumeric(k.vals[i])
		}
	}
}

// accumNumericBlock applies AddNumeric to a whole block in the same
// per-element float64 order as the scalar path, so Sum/Min/Max/Values come
// out bit-identical.
func accumNumericBlock(s *AggState, vs []float64) {
	if len(vs) == 0 {
		return
	}
	sum, mn, mx := s.Sum, s.Min, s.Max
	for _, v := range vs {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	s.Sum, s.Min, s.Max = sum, mn, mx
	s.Count += int64(len(vs))
	if s.isPercentile() {
		s.Values = append(s.Values, vs...)
	}
	s.Seen = true
}

// runAggBlocks is the vectorized no-group-by aggregation loop. The
// cancellation checkpoint runs once per block, matching the scalar path's
// every-blockSize-docs cadence.
func runAggBlocks(env *execEnv, set docIDSet, inputs []aggInput, aggs []*AggState) (int64, error) {
	est := set.estimate()
	kernels := make([]*aggKernel, len(inputs))
	for i, in := range inputs {
		kernels[i] = newAggKernel(in, est)
	}
	it := blocksOf(set)
	buf := make([]int, blockSize)
	var docs int64
	for {
		if err := env.checkpoint(); err != nil {
			return docs, err
		}
		n := it.nextBlock(buf)
		if n == 0 {
			break
		}
		docs += int64(n)
		for i, k := range kernels {
			k.prepare(buf[:n])
			k.accumulateBlock(aggs[i], n)
		}
	}
	return docs, nil
}

// ---- group-by fast paths ----

// grouper resolves each doc of a block to its GroupEntry.
type grouper interface {
	groups(docs []int, out []*GroupEntry)
	// result returns the accumulated groups keyed by GroupKey, the wire
	// format shared with the scalar path.
	result() map[string]*GroupEntry
}

func newGroupEntry(values []any, exprs []pql.Expression) *GroupEntry {
	aggs := make([]*AggState, len(exprs))
	for i, e := range exprs {
		aggs[i] = NewAggState(e.Func)
	}
	return &GroupEntry{Values: values, Aggs: aggs}
}

// bitsNeeded returns how many bits a dict id in [0, card) needs.
func bitsNeeded(card int) int {
	if card <= 1 {
		return 0
	}
	return bits.Len(uint(card - 1))
}

const denseGroupMaxCard = 1 << 16

// newItemGrouper picks the grouper for a set of GROUP BY items: the
// dictionary-id groupers when every item is a plain column, the expression
// grouper otherwise.
func newItemGrouper(items []groupItem, exprs []pql.Expression, charger *groupCharger) grouper {
	// A single memoized expression groups through a dictID→group translation
	// table: the expression value (and its rendered key) is computed once
	// per distinct dict id, not per row.
	if len(items) == 1 && items[0].ev != nil && items[0].ev.memo != nil {
		if ev := items[0].ev; ev.readers[0].Cardinality() <= denseGroupMaxCard {
			trans := make([]int32, ev.readers[0].Cardinality())
			for i := range trans {
				trans[i] = -1
			}
			return &dictTransGrouper{col: ev.readers[0], memo: ev.memo, exprs: exprs,
				charger: charger, trans: trans, byKey: map[string]int32{}}
		}
	}
	cols := make([]segment.ColumnReader, len(items))
	for i, it := range items {
		if it.ev != nil {
			return newExprGrouper(items, exprs, charger)
		}
		cols[i] = it.col
	}
	return newGrouper(cols, exprs, charger)
}

func newGrouper(cols []segment.ColumnReader, exprs []pql.Expression, charger *groupCharger) grouper {
	if len(cols) == 1 && cols[0].Cardinality() <= denseGroupMaxCard {
		return &denseGrouper{col: cols[0], exprs: exprs, charger: charger,
			entries: make([]*GroupEntry, cols[0].Cardinality())}
	}
	shifts := make([]uint, len(cols))
	total := 0
	for i, c := range cols {
		shifts[i] = uint(total)
		total += bitsNeeded(c.Cardinality())
	}
	if total <= 64 {
		return &packedGrouper{cols: cols, shifts: shifts, exprs: exprs, charger: charger,
			m: map[uint64]*GroupEntry{}, ids: make([][]uint32, len(cols))}
	}
	return &stringGrouper{cols: cols, exprs: exprs, charger: charger, m: map[string]*GroupEntry{},
		ids: make([][]uint32, len(cols)), values: make([]any, len(cols))}
}

// denseGrouper indexes groups by dict id directly: single group column with
// a dictionary small enough for a flat array. No hashing, no key strings.
type denseGrouper struct {
	col     segment.ColumnReader
	exprs   []pql.Expression
	charger *groupCharger
	entries []*GroupEntry
	ids     []uint32
}

func (g *denseGrouper) groups(docs []int, out []*GroupEntry) {
	if cap(g.ids) < len(docs) {
		g.ids = make([]uint32, blockSize)
	}
	ids := g.ids[:len(docs)]
	g.col.DictIDs(docs, ids)
	for i, id := range ids {
		e := g.entries[id]
		if e == nil {
			e = newGroupEntry([]any{g.col.Value(int(id))}, g.exprs)
			g.entries[id] = e
			g.charger.charge(GroupKey(e.Values), len(e.Values))
		}
		out[i] = e
	}
}

func (g *denseGrouper) result() map[string]*GroupEntry {
	m := make(map[string]*GroupEntry)
	for _, e := range g.entries {
		if e != nil {
			m[GroupKey(e.Values)] = e
		}
	}
	return m
}

// packedGrouper packs per-column dict ids into one uint64 map key when the
// combined widths fit, replacing per-doc fmt.Sprint string keys.
type packedGrouper struct {
	cols    []segment.ColumnReader
	shifts  []uint
	exprs   []pql.Expression
	charger *groupCharger
	m       map[uint64]*GroupEntry
	ids     [][]uint32
}

func (g *packedGrouper) groups(docs []int, out []*GroupEntry) {
	for c := range g.cols {
		if cap(g.ids[c]) < len(docs) {
			g.ids[c] = make([]uint32, blockSize)
		}
		g.ids[c] = g.ids[c][:len(docs)]
		g.cols[c].DictIDs(docs, g.ids[c])
	}
	for i := range docs {
		var key uint64
		for c := range g.cols {
			key |= uint64(g.ids[c][i]) << g.shifts[c]
		}
		e := g.m[key]
		if e == nil {
			values := make([]any, len(g.cols))
			for c := range g.cols {
				values[c] = g.cols[c].Value(int(g.ids[c][i]))
			}
			e = newGroupEntry(values, g.exprs)
			g.m[key] = e
			g.charger.charge(GroupKey(values), len(values))
		}
		out[i] = e
	}
}

func (g *packedGrouper) result() map[string]*GroupEntry {
	m := make(map[string]*GroupEntry, len(g.m))
	for _, e := range g.m {
		key := GroupKey(e.Values)
		if prev, ok := m[key]; ok {
			// Distinct dict tuples can render to one GroupKey only when
			// a string value contains the key separator; merge to match
			// the scalar map.
			for i := range prev.Aggs {
				prev.Aggs[i].Merge(e.Aggs[i])
			}
			continue
		}
		m[key] = e
	}
	return m
}

// stringGrouper is the fallback: the scalar path's string keys, but group
// column dict ids still decode in batches.
type stringGrouper struct {
	cols    []segment.ColumnReader
	exprs   []pql.Expression
	charger *groupCharger
	m       map[string]*GroupEntry
	ids     [][]uint32
	values  []any
}

func (g *stringGrouper) groups(docs []int, out []*GroupEntry) {
	for c := range g.cols {
		if cap(g.ids[c]) < len(docs) {
			g.ids[c] = make([]uint32, blockSize)
		}
		g.ids[c] = g.ids[c][:len(docs)]
		g.cols[c].DictIDs(docs, g.ids[c])
	}
	for i := range docs {
		for c := range g.cols {
			g.values[c] = g.cols[c].Value(int(g.ids[c][i]))
		}
		key := GroupKey(g.values)
		e := g.m[key]
		if e == nil {
			e = newGroupEntry(append([]any(nil), g.values...), g.exprs)
			g.m[key] = e
			g.charger.charge(key, len(g.values))
		}
		out[i] = e
	}
}

func (g *stringGrouper) result() map[string]*GroupEntry { return g.m }

// dictTransGrouper groups by one memoized expression through a dictID →
// group-index translation table. Distinct dict ids whose expression values
// render to one GroupKey (lower('Cat1') and lower('cat1')) share an entry
// via the byKey map, so entry creation — and the group-state charge — is
// per distinct key, exactly like the scalar path.
type dictTransGrouper struct {
	col     segment.ColumnReader
	memo    *expr.DictMemo
	exprs   []pql.Expression
	charger *groupCharger
	trans   []int32 // dict id → index into entries, -1 unseen
	entries []*GroupEntry
	byKey   map[string]int32
	ids     []uint32
}

func (g *dictTransGrouper) groups(docs []int, out []*GroupEntry) {
	if cap(g.ids) < len(docs) {
		g.ids = make([]uint32, blockSize)
	}
	ids := g.ids[:len(docs)]
	g.col.DictIDs(docs, ids)
	for i, id := range ids {
		t := g.trans[id]
		if t < 0 {
			v := g.memo.Value(int(id))
			key := GroupKey([]any{v})
			if idx, ok := g.byKey[key]; ok {
				t = idx
			} else {
				g.entries = append(g.entries, newGroupEntry([]any{v}, g.exprs))
				t = int32(len(g.entries) - 1)
				g.byKey[key] = t
				g.charger.charge(key, 1)
			}
			g.trans[id] = t
		}
		out[i] = g.entries[t]
	}
}

func (g *dictTransGrouper) result() map[string]*GroupEntry {
	m := make(map[string]*GroupEntry, len(g.byKey))
	for key, idx := range g.byKey {
		m[key] = g.entries[idx]
	}
	return m
}

// exprGrouper groups by derived expressions (mixed with plain columns).
// When the only item is a single compiled integral expression — the
// timeBucket(ts, w) shape — group keys stay int64 end to end: batch kernel
// eval into a long buffer and an int64-keyed map, no boxing and no string
// keys on the hot path. Everything else falls back to boxed values with the
// scalar path's GroupKey strings.
type exprGrouper struct {
	items   []groupItem
	exprs   []pql.Expression
	charger *groupCharger
	m       map[string]*GroupEntry
	values  []any
	ids     [][]uint32
	anys    [][]any
	// int64 fast path
	fast  bool
	longm map[int64]*GroupEntry
	longs []int64
}

func newExprGrouper(items []groupItem, exprs []pql.Expression, charger *groupCharger) *exprGrouper {
	g := &exprGrouper{items: items, exprs: exprs, charger: charger,
		m:      map[string]*GroupEntry{},
		values: make([]any, len(items)),
		ids:    make([][]uint32, len(items)),
		anys:   make([][]any, len(items)),
	}
	if len(items) == 1 && items[0].ev != nil && items[0].ev.kernel != nil && items[0].ev.kernel.Kind == expr.Long {
		g.fast = true
		g.longm = map[int64]*GroupEntry{}
	}
	return g
}

func (g *exprGrouper) groups(docs []int, out []*GroupEntry) {
	if g.fast {
		if cap(g.longs) < len(docs) {
			g.longs = make([]int64, blockSize)
		}
		ls := g.longs[:len(docs)]
		ev := g.items[0].ev
		ev.kernel.EvalLongs(ev.ksrc, docs, ls)
		for i, v := range ls {
			e := g.longm[v]
			if e == nil {
				e = newGroupEntry([]any{v}, g.exprs)
				g.longm[v] = e
				g.charger.charge(GroupKey(e.Values), 1)
			}
			out[i] = e
		}
		return
	}
	for c, item := range g.items {
		if item.ev != nil {
			if cap(g.anys[c]) < len(docs) {
				g.anys[c] = make([]any, blockSize)
			}
			g.anys[c] = g.anys[c][:len(docs)]
			item.ev.fillValues(docs, g.anys[c])
			continue
		}
		if cap(g.ids[c]) < len(docs) {
			g.ids[c] = make([]uint32, blockSize)
		}
		g.ids[c] = g.ids[c][:len(docs)]
		item.col.DictIDs(docs, g.ids[c])
	}
	for i := range docs {
		for c, item := range g.items {
			if item.ev != nil {
				g.values[c] = g.anys[c][i]
			} else {
				g.values[c] = item.col.Value(int(g.ids[c][i]))
			}
		}
		key := GroupKey(g.values)
		e := g.m[key]
		if e == nil {
			e = newGroupEntry(append([]any(nil), g.values...), g.exprs)
			g.m[key] = e
			g.charger.charge(key, len(g.values))
		}
		out[i] = e
	}
}

func (g *exprGrouper) result() map[string]*GroupEntry {
	if !g.fast {
		return g.m
	}
	m := make(map[string]*GroupEntry, len(g.longm))
	for _, e := range g.longm {
		m[GroupKey(e.Values)] = e
	}
	return m
}

// runGroupByBlocks is the vectorized group-by loop. Cancellation and the
// group-state cap are polled once per block, the same cadence as the scalar
// path; a tripped cap returns the groups built so far with
// ErrGroupStateLimit so the query degrades to a partial result.
func runGroupByBlocks(env *execEnv, set docIDSet, inputs []aggInput, items []groupItem, exprs []pql.Expression, charger *groupCharger) (map[string]*GroupEntry, int64, error) {
	est := set.estimate()
	kernels := make([]*aggKernel, len(inputs))
	for i, in := range inputs {
		kernels[i] = newAggKernel(in, est)
	}
	g := newItemGrouper(items, exprs, charger)
	it := blocksOf(set)
	buf := make([]int, blockSize)
	entries := make([]*GroupEntry, blockSize)
	var docs int64
	for {
		if err := env.checkpoint(); err != nil {
			return nil, docs, err
		}
		if env.groupLimitTripped() {
			return g.result(), docs, ErrGroupStateLimit
		}
		n := it.nextBlock(buf)
		if n == 0 {
			break
		}
		docs += int64(n)
		g.groups(buf[:n], entries[:n])
		for i, k := range kernels {
			k.prepare(buf[:n])
			k.accumulateGroups(entries, i, n)
		}
	}
	return g.result(), docs, nil
}

// ---- selection ----

// runSelectionBlocks is the vectorized selection loop. Rows of each block
// share one []any arena, allocated fresh per block (retained rows alias it,
// so it is never reused) and filled column-major so each column decodes in
// one batch. Without ORDER BY the block demand is capped at the rows still
// needed; with the exact-fill nextBlock contract this walks precisely the
// docs the scalar early-exit walks, keeping Stats identical.
func runSelectionBlocks(env *execEnv, out *Intermediate, q *pql.Query, set docIDSet, readers []segment.ColumnReader, keep int, needAll bool) (int64, error) {
	it := blocksOf(set)
	width := len(readers)
	buf := make([]int, blockSize)
	var ids []uint32
	var longs []int64
	var doubles []float64
	var mvBuf []int
	var docs int64
	for {
		if err := env.checkpoint(); err != nil {
			return docs, err
		}
		want := blockSize
		if !needAll {
			want = keep - len(out.Rows)
			if want < 1 {
				want = 1
			}
			if want > blockSize {
				want = blockSize
			}
		}
		n := it.nextBlock(buf[:want])
		if n == 0 {
			break
		}
		docs += int64(n)
		block := buf[:n]
		arena := make([]any, n*width)
		for c, col := range readers {
			f := col.Spec()
			switch {
			case f.Kind == segment.Metric && f.Type.Integral():
				if cap(longs) < n {
					longs = make([]int64, blockSize)
				}
				vs := longs[:n]
				col.Longs(block, vs)
				for i, v := range vs {
					arena[i*width+c] = v
				}
			case f.Kind == segment.Metric:
				if cap(doubles) < n {
					doubles = make([]float64, blockSize)
				}
				vs := doubles[:n]
				col.Doubles(block, vs)
				for i, v := range vs {
					arena[i*width+c] = v
				}
			case f.SingleValue:
				if cap(ids) < n {
					ids = make([]uint32, blockSize)
				}
				vs := ids[:n]
				col.DictIDs(block, vs)
				for i, id := range vs {
					arena[i*width+c] = col.Value(int(id))
				}
			default:
				for i, doc := range block {
					mvBuf = col.DictIDsMV(doc, mvBuf[:0])
					vals := make([]any, len(mvBuf))
					for j, id := range mvBuf {
						vals[j] = col.Value(id)
					}
					arena[i*width+c] = vals
				}
			}
		}
		for i := 0; i < n; i++ {
			out.Rows = append(out.Rows, arena[i*width:(i+1)*width:(i+1)*width])
		}
		if !needAll && len(out.Rows) >= keep {
			break
		}
		if needAll && len(out.Rows) > 4*keep {
			tmp := &Intermediate{Kind: KindSelection, SelectCols: out.SelectCols, Rows: out.Rows}
			pruneQ := *q
			pruneQ.Offset, pruneQ.Limit = 0, keep
			out.Rows = tmp.Finalize(&pruneQ).Rows
		}
	}
	return docs, nil
}
