// White-box tests for dictionary-space expression execution: the case-folded
// dictionary probe (brute-forced against strings.ToLower/ToUpper over a
// Unicode-edge dictionary), the plan-level guarantee that lower/upper
// equality rewrites to a probe without building a memo, expression-predicate
// pruning (a no-match predicate scans zero docs), and the cross-query memo
// cache.
package query

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pinot/internal/metrics"
	"pinot/internal/pql"
	"pinot/internal/qcache"
	"pinot/internal/segment"
)

// dictProbeSchema is a single string dimension plus a long metric, the
// minimal shape for probing dictionaries with hostile casing.
func dictProbeSchema(t testing.TB) *segment.Schema {
	t.Helper()
	s, err := segment.NewSchema("dtbl", []segment.FieldSpec{
		{Name: "name", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "hits", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildDictProbeSegment(t testing.TB, segName string, values []string) *segment.Segment {
	t.Helper()
	b, err := segment.NewBuilder("dtbl", segName, dictProbeSchema(t), segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if err := b.Add(segment.Row{v, int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// unicodeEdgeValues exercises every special case the preimage enumeration
// claims to handle: the Kelvin sign K (U+212A) lowercases to plain k, the
// long s ſ (U+017F) uppercases to plain S, dotted İ (U+0130) lowercases to
// plain i while dotless ı (U+0131) uppercases to plain I — all outside or at
// the edge of SimpleFold's orbits — plus Greek sigma's three-member orbit
// and ordinary mixed-case ASCII.
var unicodeEdgeValues = []string{
	"k", "K", "K", "kelvin", "Kelvin", "KELVIN", "Kelvin",
	"i", "I", "İ", "ı",
	"s", "S", "ſ", "stop", "STOP", "ſtop",
	"σ", "Σ", "ς", // σ Σ ς
	"ß", "ẞ", // ß ẞ
	"cat", "Cat", "caT", "CAT", "cAt",
	"", "MiXeD", "mixed",
}

// TestCaseFoldProbeBruteForce checks the probe's id set against the
// definitionally correct answer — fold every dictionary entry and compare to
// the target — for lower and upper, = and <>, across fixed-point,
// non-fixed-point and absent targets.
func TestCaseFoldProbeBruteForce(t *testing.T) {
	seg := buildDictProbeSegment(t, "dprobe", unicodeEdgeValues)
	cs := columnSource{seg: seg}
	col, err := cs.column("name")
	if err != nil {
		t.Fatal(err)
	}
	if !col.DictSorted() {
		t.Fatal("immutable dictionary should be sorted")
	}
	targets := []string{
		"k", "K", "kelvin", "KELVIN", "i", "I", "ı", "İ",
		"s", "S", "stop", "STOP", "ſ", "ſtop",
		"σ", "Σ", "ς", "ß", "ẞ",
		"cat", "CAT", "Cat", "mixed", "MiXeD", "", "absent", "ABSENT",
	}
	for _, fn := range []string{"lower", "upper"} {
		fold := strings.ToLower
		if fn == "upper" {
			fold = strings.ToUpper
		}
		for _, op := range []pql.CompareOp{pql.OpEq, pql.OpNeq} {
			for _, target := range targets {
				p := pql.ExprCompare{
					LHS: pql.Call{Name: fn, Args: []pql.Expr{pql.ColumnRef{Name: "name"}}},
					Op:  op,
					RHS: pql.Literal{Value: target},
				}
				set, ok := caseFoldProbe(col, p)
				if !ok {
					t.Fatalf("%s(name) %s %q: probe declined on a sorted string dictionary", fn, op, target)
				}
				for id := 0; id < col.Cardinality(); id++ {
					entry := col.Value(id).(string)
					want := fold(entry) == target
					if op == pql.OpNeq {
						want = !want
					}
					if got := set.contains(id); got != want {
						t.Errorf("%s(%q) %s %q: dict id %d: probe=%v brute-force=%v",
							fn, entry, op, target, id, got, want)
					}
				}
			}
		}
	}
}

// TestCaseFoldProbeLiteralFlipped checks the literal-on-the-left orientation
// resolves identically.
func TestCaseFoldProbeLiteralFlipped(t *testing.T) {
	seg := buildDictProbeSegment(t, "dflip", unicodeEdgeValues)
	cs := columnSource{seg: seg}
	col, err := cs.column("name")
	if err != nil {
		t.Fatal(err)
	}
	call := pql.Call{Name: "lower", Args: []pql.Expr{pql.ColumnRef{Name: "name"}}}
	a, aok := caseFoldProbe(col, pql.ExprCompare{LHS: call, Op: pql.OpEq, RHS: pql.Literal{Value: "cat"}})
	b, bok := caseFoldProbe(col, pql.ExprCompare{LHS: pql.Literal{Value: "cat"}, Op: pql.OpEq, RHS: call})
	if !aok || !bok {
		t.Fatalf("probe declined: col-first=%v literal-first=%v", aok, bok)
	}
	for id := 0; id < col.Cardinality(); id++ {
		if a.contains(id) != b.contains(id) {
			t.Fatalf("orientation changes probe result at dict id %d", id)
		}
	}
}

// TestFoldPreimages pins the exact preimage sets for the edge runes the
// enumeration special-cases.
func TestFoldPreimages(t *testing.T) {
	cases := []struct {
		target string
		lower  bool
		want   []string
	}{
		// ToLower maps k, K and the Kelvin sign U+212A all to k.
		{"k", true, []string{"k", "K", "K"}},
		// ToUpper("k")="K"; the Kelvin sign uppercases to itself, so it is
		// NOT a preimage of K.
		{"K", false, []string{"k", "K"}},
		// ToLower preimages of i: i, I, and dotted capital İ.
		{"i", true, []string{"i", "I", "İ"}},
		// ToUpper preimages of I: i, I, and dotless ı.
		{"I", false, []string{"i", "I", "ı"}},
		// Long s lowercases to itself — a preimage of itself, not of s.
		{"s", true, []string{"s", "S"}},
		// ToUpper maps both s and ſ to S.
		{"S", false, []string{"s", "S", "ſ"}},
		// Final sigma ς lowercases to itself only (Σ lowercases to σ).
		{"ς", true, []string{"ς"}},
		{"σ", true, []string{"σ", "Σ"}},
	}
	for _, c := range cases {
		got, ok := foldPreimages(c.target, c.lower)
		if !ok {
			t.Fatalf("foldPreimages(%q, lower=%v) overflowed", c.target, c.lower)
		}
		gotSet := map[string]bool{}
		for _, v := range got {
			gotSet[v] = true
		}
		if len(got) != len(c.want) {
			t.Errorf("foldPreimages(%q, lower=%v) = %q, want %q", c.target, c.lower, got, c.want)
			continue
		}
		for _, w := range c.want {
			if !gotSet[w] {
				t.Errorf("foldPreimages(%q, lower=%v) = %q, missing %q", c.target, c.lower, got, w)
			}
		}
	}
}

// TestFoldPreimagesVariantCap: a target of repeated orbit runes explodes
// combinatorially; the enumeration must give up rather than enumerate.
func TestFoldPreimagesVariantCap(t *testing.T) {
	if _, ok := foldPreimages(strings.Repeat("k", 9), true); ok {
		t.Fatal("9 three-way runes is 19683 variants; expected the cap to fire")
	}
}

// TestProbeRewriteFiresAtPlanTime is the plan-level assertion that
// lower(col) = 'x' is served by the dictionary probe: dictExprIDSet resolves
// the exact matching ids AND the memo cache stays empty — the probe never
// evaluates the expression over the dictionary at all.
func TestProbeRewriteFiresAtPlanTime(t *testing.T) {
	seg := buildDictProbeSegment(t, "dplan", unicodeEdgeValues)
	cache := qcache.New(qcache.Config{Tier: "dictexpr", Metrics: metrics.NewRegistry()})
	opt := Options{DictMemoCache: cache}
	cs := columnSource{seg: seg}
	p := pql.ExprCompare{
		LHS: pql.Call{Name: "lower", Args: []pql.Expr{pql.ColumnRef{Name: "name"}}},
		Op:  pql.OpEq,
		RHS: pql.Literal{Value: "cat"},
	}
	col, set, ok := dictExprIDSet(cs, p, opt, "dtbl")
	if !ok {
		t.Fatal("dictExprIDSet declined a probe-shaped predicate")
	}
	var got []string
	set.each(func(id int) { got = append(got, col.Value(id).(string)) })
	want := map[string]bool{"cat": true, "Cat": true, "caT": true, "CAT": true, "cAt": true}
	if len(got) != len(want) {
		t.Fatalf("probe matched %q, want the five casings of cat", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("probe matched %q, not a casing of cat", v)
		}
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("probe path built %d memo(s); the rewrite must not evaluate the dictionary", n)
	}

	// The same predicate through the full query path: still no memo, and the
	// segment counts as dictionary-space served.
	res, err := Run(context.Background(), "SELECT count(*) FROM dtbl WHERE lower(name) = 'cat'",
		[]IndexedSegment{{Seg: seg}}, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(5) {
		t.Fatalf("count = %v, want 5", res.Rows[0][0])
	}
	if res.Stats.DictExprSegments != 1 {
		t.Fatalf("DictExprSegments = %d, want 1", res.Stats.DictExprSegments)
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("query built %d memo(s); equality probes must stay memo-free", n)
	}
}

// TestDictExprPruneNoMatch is the issue's acceptance shape: an expression
// predicate matching no dictionary entry prunes every immutable segment —
// zero docs and zero entries scanned, the segments landing in
// SegmentsPrunedByValue.
func TestDictExprPruneNoMatch(t *testing.T) {
	rows := testRows(4000, 11)
	segs := []IndexedSegment{
		{Seg: buildRows(t, rows[:2000], segment.IndexConfig{}, "dprune_a")},
		{Seg: buildRows(t, rows[2000:], segment.IndexConfig{}, "dprune_b")},
	}
	for _, q := range []string{
		"SELECT count(*) FROM events WHERE upper(country) = 'NOPE'",
		// Non-fixed-point target: upper() can never output lowercase.
		"SELECT count(*) FROM events WHERE upper(country) = 'us'",
		// Memo path (arithmetic, not a probe): country cardinality is 7, no
		// concat of it equals this.
		"SELECT sum(clicks) FROM events WHERE concat(country, '!') = 'absent'",
	} {
		res := runPQL(t, segs, q, Options{})
		if len(res.Rows) != 1 {
			t.Fatalf("%q: rows = %+v", q, res.Rows)
		}
		st := res.Stats
		if st.SegmentsPrunedByValue != len(segs) {
			t.Errorf("%q: SegmentsPrunedByValue = %d, want %d", q, st.SegmentsPrunedByValue, len(segs))
		}
		if st.NumDocsScanned != 0 || st.NumEntriesScanned != 0 {
			t.Errorf("%q: scanned %d docs / %d entries, want 0/0", q, st.NumDocsScanned, st.NumEntriesScanned)
		}
		if st.DictExprSegments != len(segs) {
			t.Errorf("%q: DictExprSegments = %d, want %d", q, st.DictExprSegments, len(segs))
		}
		// The disabled path must agree on the answer while actually scanning.
		base := runPQL(t, segs, q, Options{DisableDictExpr: true})
		if fmt.Sprint(base.Rows) != fmt.Sprint(res.Rows) {
			t.Errorf("%q: rows diverge under DisableDictExpr: %+v vs %+v", q, res.Rows, base.Rows)
		}
		if base.Stats.DictExprSegments != 0 {
			t.Errorf("%q: DictExprSegments = %d with dictionary space disabled", q, base.Stats.DictExprSegments)
		}
	}
}

// TestDictExprMatchAllElision: a predicate every dictionary entry satisfies
// is elided at plan time, so count(*) degenerates to segment metadata.
func TestDictExprMatchAllElision(t *testing.T) {
	rows := testRows(3000, 13)
	segs := []IndexedSegment{{Seg: buildRows(t, rows, segment.IndexConfig{}, "dall")}}
	res := runPQL(t, segs, "SELECT count(*) FROM events WHERE lower(country) <> 'nomatch'", Options{})
	if res.Rows[0][0] != int64(len(rows)) {
		t.Fatalf("count = %v, want %d", res.Rows[0][0], len(rows))
	}
	if res.Stats.NumDocsScanned != 0 {
		t.Fatalf("scanned %d docs; an elided filter should serve count(*) from metadata", res.Stats.NumDocsScanned)
	}
	if res.Stats.MetadataOnlySegments != 1 {
		t.Fatalf("MetadataOnlySegments = %d, want 1", res.Stats.MetadataOnlySegments)
	}
}

// TestDictExprMemoCacheHitsAndInvalidation: the memo for a group-by
// expression is built once, shared across queries through the cache (hits on
// the metrics registry), sized, and dropped by scope invalidation.
func TestDictExprMemoCacheHitsAndInvalidation(t *testing.T) {
	rows := testRows(2000, 17)
	seg := buildRows(t, rows, segment.IndexConfig{}, "dmemo")
	segs := []IndexedSegment{{Seg: seg}}
	reg := metrics.NewRegistry()
	cache := qcache.New(qcache.Config{Tier: "dictexpr", Metrics: reg})
	opt := Options{DictMemoCache: cache}

	r1 := runPQL(t, segs, "SELECT count(*) FROM events GROUP BY concat(country, '-x') TOP 10", opt)
	if r1.Stats.DictExprSegments != 1 {
		t.Fatalf("DictExprSegments = %d, want 1", r1.Stats.DictExprSegments)
	}
	if cache.Len() != 1 || cache.Bytes() <= 0 {
		t.Fatalf("after first query: %d entries / %d bytes, want one sized memo", cache.Len(), cache.Bytes())
	}
	if hits := reg.Value("pinot_cache_hits_total", "dictexpr", "events"); hits != 0 {
		t.Fatalf("cold run recorded %d hits", hits)
	}

	// Different query, same canonical expression: the memo is shared.
	r2 := runPQL(t, segs, "SELECT sum(clicks) FROM events GROUP BY concat(country, '-x') TOP 10", opt)
	if r2.Stats.DictExprSegments != 1 {
		t.Fatalf("second query DictExprSegments = %d, want 1", r2.Stats.DictExprSegments)
	}
	if hits := reg.Value("pinot_cache_hits_total", "dictexpr", "events"); hits != 1 {
		t.Fatalf("hits = %d after memo reuse, want 1", hits)
	}
	if cache.Len() != 1 {
		t.Fatalf("memo reuse grew the cache to %d entries", cache.Len())
	}

	// Unloading the segment invalidates its memos by scope.
	if n := cache.InvalidateScope(seg.Name()); n != 1 {
		t.Fatalf("InvalidateScope removed %d entries, want 1", n)
	}
	if cache.Len() != 0 {
		t.Fatalf("cache holds %d entries after invalidation", cache.Len())
	}
}

// TestDictExprMutableSegmentNotCached: a consuming segment's dictionary
// grows under it, so its memos must never enter the cross-query cache.
func TestDictExprMutableSegmentNotCached(t *testing.T) {
	ms, err := segment.NewMutableSegment("events", "dmut", rowsSchema(t), segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRows(500, 19) {
		if err := ms.Add(segment.Row{r.country, r.browser, r.member, r.clicks, r.rev, r.day}); err != nil {
			t.Fatal(err)
		}
	}
	cache := qcache.New(qcache.Config{Tier: "dictexpr", Metrics: metrics.NewRegistry()})
	segs := []IndexedSegment{{Seg: ms}}
	res := runPQL(t, segs, "SELECT count(*) FROM events GROUP BY concat(country, '-x') TOP 10", Options{DictMemoCache: cache})
	if res.Stats.DictExprSegments != 1 {
		t.Fatalf("DictExprSegments = %d; mutable segments still qualify for uncached memos", res.Stats.DictExprSegments)
	}
	if cache.Len() != 0 {
		t.Fatalf("mutable segment memo leaked into the cache (%d entries)", cache.Len())
	}
}
