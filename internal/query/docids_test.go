package query

import (
	"testing"

	"pinot/internal/bitmap"
	"pinot/internal/segment"
)

func collect(it DocIterator) []int {
	var out []int
	for d := it.Next(); d >= 0; d = it.Next() {
		out = append(out, d)
	}
	return out
}

func assertDocs(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("docs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("docs = %v, want %v", got, want)
		}
	}
}

func TestRangeIterator(t *testing.T) {
	s := &rangeDocIDSet{ranges: []segment.DocRange{{Start: 2, End: 5}, {Start: 8, End: 10}}}
	if s.estimate() != 5 {
		t.Fatalf("estimate = %d", s.estimate())
	}
	assertDocs(t, collect(s.iterator()), []int{2, 3, 4, 8, 9})
	it := s.iterator()
	if d := it.Advance(4); d != 4 {
		t.Fatalf("Advance(4) = %d", d)
	}
	if d := it.Advance(6); d != 8 {
		t.Fatalf("Advance(6) = %d", d)
	}
	if d := it.Advance(100); d != -1 {
		t.Fatalf("Advance(100) = %d", d)
	}
}

func TestScanIteratorAdvance(t *testing.T) {
	s := &scanDocIDSet{numDocs: 30, match: func(d int) bool { return d%3 == 0 }}
	it := s.iterator()
	if d := it.Advance(7); d != 9 {
		t.Fatalf("Advance(7) = %d", d)
	}
	if d := it.Next(); d != 12 {
		t.Fatalf("Next = %d", d)
	}
	if d := it.Advance(29); d != -1 {
		t.Fatalf("Advance(29) = %d", d)
	}
}

func TestOrIteratorAdvance(t *testing.T) {
	a := &rangeDocIDSet{ranges: []segment.DocRange{{Start: 0, End: 3}}}
	b := &scanDocIDSet{numDocs: 20, match: func(d int) bool { return d == 10 || d == 15 }}
	c := &bitmapDocIDSet{bm: bitmap.Of(2, 7, 15)}
	or := &orDocIDSet{children: []docIDSet{a, b, c}}
	assertDocs(t, collect(or.iterator()), []int{0, 1, 2, 7, 10, 15})
	it := or.iterator()
	if d := it.Advance(8); d != 10 {
		t.Fatalf("Advance(8) = %d", d)
	}
	if d := it.Advance(15); d != 15 {
		t.Fatalf("Advance(15) = %d", d)
	}
	if d := it.Next(); d != -1 {
		t.Fatalf("Next after exhaustion = %d", d)
	}
}

func TestAndIteratorAdvance(t *testing.T) {
	a := &rangeDocIDSet{ranges: []segment.DocRange{{Start: 0, End: 100}}}
	b := &scanDocIDSet{numDocs: 100, match: func(d int) bool { return d%5 == 0 }}
	and := &andDocIDSet{children: []docIDSet{a, b}}
	it := and.iterator()
	if d := it.Advance(11); d != 15 {
		t.Fatalf("Advance(11) = %d", d)
	}
	// Advancing backwards is a forward no-op.
	if d := it.Advance(3); d != 20 {
		t.Fatalf("Advance(3) = %d", d)
	}
	// Exhaust.
	if d := it.Advance(96); d != -1 {
		t.Fatalf("Advance(96) = %d", d)
	}
	if d := it.Next(); d != -1 {
		t.Fatalf("Next after exhaustion = %d", d)
	}
}

func TestNotAndEmptySets(t *testing.T) {
	child := &bitmapDocIDSet{bm: bitmap.Of(1, 3)}
	not := &notDocIDSet{child: child, numDocs: 5}
	assertDocs(t, collect(not.iterator()), []int{0, 2, 4})
	if not.estimate() != 3 {
		t.Fatalf("estimate = %d", not.estimate())
	}
	e := emptyDocIDSet{}
	if e.estimate() != 0 || collect(e.iterator()) != nil {
		t.Fatal("empty set misbehaves")
	}
	if d := (emptyIterator{}).Advance(3); d != -1 {
		t.Fatal("empty advance")
	}
	all := &allDocIDSet{numDocs: 3}
	assertDocs(t, collect(all.iterator()), []int{0, 1, 2})
}

func TestIDSetComplementAndMembership(t *testing.T) {
	s := idSetFromRanges(10, idRange{2, 4}, idRange{7, 9})
	if s.size() != 4 || s.isEmpty() || s.isAll() {
		t.Fatalf("shape: size=%d", s.size())
	}
	comp := s.complement()
	var got []int
	comp.each(func(id int) { got = append(got, id) })
	assertDocs(t, got, []int{0, 1, 4, 5, 6, 9})
	for id := 0; id < 10; id++ {
		if s.contains(id) == comp.contains(id) {
			t.Fatalf("complement overlaps at %d", id)
		}
	}
	// List form.
	l := idSetFromList(6, []int{5, 1, 3, 3})
	if l.size() != 3 || !l.contains(3) || l.contains(0) || l.contains(99) {
		t.Fatalf("list set wrong: %+v", l)
	}
	lc := l.complement()
	got = nil
	lc.each(func(id int) { got = append(got, id) })
	assertDocs(t, got, []int{0, 2, 4})
	full := idSetFromRanges(4, idRange{0, 4})
	if !full.isAll() || !full.complement().isEmpty() {
		t.Fatal("full-set algebra wrong")
	}
}
