// Partial-aggregate cache benchmark (DESIGN.md "Multi-tier caching"). A
// Zipf-skewed stream over a 64-query corpus — the shape of a site-facing
// dashboard workload, where a few queries dominate — runs through one engine
// with the server cache live. The reported hit rate shows the cache
// absorbing the head of the distribution; ns/op is the blended per-query
// cost with that hit rate.
package query

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pinot/internal/metrics"
	"pinot/internal/pql"
	"pinot/internal/qcache"
	"pinot/internal/segment"
)

func BenchmarkServerAggCacheZipf(b *testing.B) {
	var segs []IndexedSegment
	for i := 0; i < 8; i++ {
		rows := testRows(2000, int64(100+i))
		segs = append(segs, IndexedSegment{Seg: buildRows(b, rows, segment.IndexConfig{}, fmt.Sprintf("zseg%d", i))})
	}
	var corpus []*pql.Query
	for k := 0; k < 64; k++ {
		q, err := pql.Parse(fmt.Sprintf(
			"SELECT count(*), sum(clicks) FROM events WHERE memberId < %d GROUP BY country", k+5))
		if err != nil {
			b.Fatal(err)
		}
		corpus = append(corpus, q)
	}
	reg := metrics.NewRegistry()
	e := &Engine{AggCache: qcache.New(qcache.Config{Tier: "aggregate", Metrics: reg})}
	zipf := rand.NewZipf(rand.New(rand.NewSource(42)), 1.2, 1, uint64(len(corpus)-1))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := corpus[zipf.Uint64()]
		if _, _, err := e.Execute(ctx, q, segs, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hits, misses := reg.Total("pinot_cache_hits_total"), reg.Total("pinot_cache_misses_total")
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
	}
}
