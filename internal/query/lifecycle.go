package query

import (
	"context"
	"errors"
	"fmt"

	"pinot/internal/qctx"
)

// ErrGroupStateLimit marks a segment execution stopped by the per-query
// group-by state cap. The segment's partial result is still valid and is
// merged; the engine reports the degradation as an exception instead of
// letting group state grow without bound.
var ErrGroupStateLimit = errors.New("query: group-by state limit exceeded")

// cancelledError marks a segment execution stopped mid-scan by a
// cooperative cancellation checkpoint. The engine names these segments in
// its timeout exception — they were dispatched but not processed.
type cancelledError struct {
	segment string
	cause   error
}

func (e *cancelledError) Error() string {
	return fmt.Sprintf("query: segment %s cancelled mid-scan: %v", e.segment, e.cause)
}

func (e *cancelledError) Unwrap() error { return e.cause }

// execEnv is the per-segment execution environment: the context checked at
// cancellation checkpoints and the query-wide resource accounting. Segment
// operators call checkpoint at block boundaries (~blockSize matched docs),
// so an in-flight segment stops within one block of ctx.Done().
type execEnv struct {
	ctx context.Context
	qc  *qctx.QueryContext
	seg string
	// table is the query's table name, carried for dictionary-memo cache
	// accounting (the cache reports per-table metric families).
	table string
	// evalErr latches the first expression-evaluation error of this segment
	// execution (resource limit, bad runtime argument). Evaluators record it
	// and return a zero value; checkpoint surfaces it at the next block
	// boundary — the same point in both execution modes, since both evaluate
	// the same documents in the same order.
	evalErr error
	// dictExprUsed records that dictionary-space expression planning served
	// something during this segment execution; surfaced as
	// Stats.DictExprSegments.
	dictExprUsed bool
}

func newExecEnv(ctx context.Context, seg string) *execEnv {
	qc := qctx.From(ctx)
	if qc == nil {
		qc = qctx.New("", 0)
	}
	return &execEnv{ctx: ctx, qc: qc, seg: seg}
}

// fail latches the first expression-evaluation error.
func (e *execEnv) fail(err error) {
	if e.evalErr == nil {
		e.evalErr = err
	}
}

// checkpoint returns a latched evaluation error or a cancellation error when
// the query's context has ended. Both execution modes call it on the same
// block cadence, so the scan stops after identical work in vectorized and
// scalar execution. The evaluation error is checked first: it is
// deterministic, while context expiry is wall-clock timing.
func (e *execEnv) checkpoint() error {
	if e.evalErr != nil {
		return fmt.Errorf("query: segment %s: %w", e.seg, e.evalErr)
	}
	if err := e.ctx.Err(); err != nil {
		return &cancelledError{segment: e.seg, cause: err}
	}
	return nil
}

// groupLimitTripped reports whether the query-wide group-by state cap has
// latched; polled at the same block boundaries as checkpoint.
func (e *execEnv) groupLimitTripped() bool { return e.qc.GroupStateExceeded() }

// Per-entry size estimate constants for group-by state: the GroupEntry
// struct with its values slice, plus one AggState per aggregation. The
// estimate is deterministic — a function of key length and arity only — so
// vectorized and scalar execution charge identical byte counts.
const (
	groupEntryBaseBytes = 64
	groupValueBytes     = 48
	groupAggStateBytes  = 112
)

func groupEntryBytes(keyLen, nValues, nAggs int) int64 {
	return int64(groupEntryBaseBytes + keyLen + groupValueBytes*nValues + groupAggStateBytes*nAggs)
}

// groupCharger accounts the group-by state a segment executor allocates:
// locally for the segment's Stats and against the query-wide cap in the
// QueryContext. One charger serves one segment executor (single goroutine);
// the QueryContext aggregates across segments.
type groupCharger struct {
	qc    *qctx.QueryContext
	nAggs int
	bytes int64
}

func (g *groupCharger) charge(key string, nValues int) {
	n := groupEntryBytes(len(key), nValues, g.nAggs)
	g.bytes += n
	g.qc.ChargeGroupState(n)
}
