package query

import (
	"context"
	"math/rand"
	"testing"

	"pinot/internal/bitmap"
	"pinot/internal/segment"
)

// drainDocs walks a docIDSet through the block interface, the way the
// vectorized executors consume it.
func drainDocs(s docIDSet, buf []int) int {
	it := blocksOf(s)
	total := 0
	for {
		n := it.nextBlock(buf)
		if n == 0 {
			return total
		}
		total += n
	}
}

func benchBitmaps(numDocs int, density float64, k int) []*bitmap.Bitmap {
	r := rand.New(rand.NewSource(31))
	bms := make([]*bitmap.Bitmap, k)
	for i := range bms {
		bms[i] = bitmap.New()
		for d := 0; d < numDocs; d++ {
			if r.Float64() < density {
				bms[i].Add(uint32(d))
			}
		}
	}
	return bms
}

// BenchmarkBitmapAndCollapse vs BenchmarkBitmapAndLeapfrog: intersecting
// comparably-sized bitmaps with container-level AndAll vs the scalar
// advance-to-max leapfrog over per-bitmap iterators.
func BenchmarkBitmapAndCollapse(b *testing.B) {
	bms := benchBitmaps(1<<20, 0.3, 3)
	buf := make([]int, blockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := []docIDSet{
			&bitmapDocIDSet{bm: bms[0]}, &bitmapDocIDSet{bm: bms[1]}, &bitmapDocIDSet{bm: bms[2]},
		}
		collapsed := collapseBitmapChildren(sets, true)
		if len(collapsed) != 1 {
			b.Fatalf("expected collapse, got %d children", len(collapsed))
		}
		drainDocs(collapsed[0], buf)
	}
}

func BenchmarkBitmapAndLeapfrog(b *testing.B) {
	bms := benchBitmaps(1<<20, 0.3, 3)
	buf := make([]int, blockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &andDocIDSet{children: []docIDSet{
			&bitmapDocIDSet{bm: bms[0]}, &bitmapDocIDSet{bm: bms[1]}, &bitmapDocIDSet{bm: bms[2]},
		}}
		drainDocs(s, buf)
	}
}

func BenchmarkBitmapOrCollapse(b *testing.B) {
	bms := benchBitmaps(1<<20, 0.05, 4)
	buf := make([]int, blockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := []docIDSet{
			&bitmapDocIDSet{bm: bms[0]}, &bitmapDocIDSet{bm: bms[1]},
			&bitmapDocIDSet{bm: bms[2]}, &bitmapDocIDSet{bm: bms[3]},
		}
		collapsed := collapseBitmapChildren(sets, false)
		drainDocs(collapsed[0], buf)
	}
}

func BenchmarkBitmapOrMerge(b *testing.B) {
	bms := benchBitmaps(1<<20, 0.05, 4)
	buf := make([]int, blockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &orDocIDSet{children: []docIDSet{
			&bitmapDocIDSet{bm: bms[0]}, &bitmapDocIDSet{bm: bms[1]},
			&bitmapDocIDSet{bm: bms[2]}, &bitmapDocIDSet{bm: bms[3]},
		}}
		drainDocs(s, buf)
	}
}

func benchSegments(b *testing.B) []IndexedSegment {
	seg := buildRows(b, testRows(200000, 5), segment.IndexConfig{}, "bench_vec")
	return []IndexedSegment{{Seg: seg}}
}

func benchRun(b *testing.B, q string, opt Options) {
	segs := benchSegments(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ctx, q, segs, nil, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Scan aggregation over a raw double metric: the typed block kernels vs the
// boxed row-at-a-time loop.
func BenchmarkScanAggVec(b *testing.B) {
	benchRun(b, "SELECT sum(revenue), max(revenue) FROM events WHERE clicks > 10", Options{})
}

func BenchmarkScanAggScalar(b *testing.B) {
	benchRun(b, "SELECT sum(revenue), max(revenue) FROM events WHERE clicks > 10", Options{DisableVectorization: true})
}

// Single low-cardinality group-by: dense array-indexed grouper vs the scalar
// string-keyed map.
func BenchmarkGroupByDenseVec(b *testing.B) {
	benchRun(b, "SELECT sum(clicks) FROM events GROUP BY country TOP 10", Options{})
}

func BenchmarkGroupByMapScalar(b *testing.B) {
	benchRun(b, "SELECT sum(clicks) FROM events GROUP BY country TOP 10", Options{DisableVectorization: true})
}

// Multi-column group-by: packed uint64 composite keys vs Sprint string keys.
func BenchmarkGroupByPackedVec(b *testing.B) {
	benchRun(b, "SELECT sum(clicks) FROM events GROUP BY country, browser, memberId TOP 20", Options{})
}

func BenchmarkGroupByPackedScalar(b *testing.B) {
	benchRun(b, "SELECT sum(clicks) FROM events GROUP BY country, browser, memberId TOP 20", Options{DisableVectorization: true})
}

// sanity check so a bad density/cardinality choice can't silently turn the
// collapse benchmarks into measuring the uncollapsed path.
func TestCollapseBenchShapesCollapse(t *testing.T) {
	bms := benchBitmaps(1<<16, 0.3, 3)
	sets := []docIDSet{
		&bitmapDocIDSet{bm: bms[0]}, &bitmapDocIDSet{bm: bms[1]}, &bitmapDocIDSet{bm: bms[2]},
	}
	if got := collapseBitmapChildren(sets, true); len(got) != 1 {
		t.Fatalf("AND collapse produced %d children, want 1", len(got))
	}
}
