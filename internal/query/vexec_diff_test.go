// Differential test for the vectorized execution path: every query must
// produce byte-identical finalized results AND identical Stats whether it
// runs block-at-a-time (the default) or row-at-a-time
// (Options.DisableVectorization). The query pool is seeded-random and spans
// aggregations, group-bys, selections (with ORDER BY / LIMIT / OFFSET),
// multi-value columns, raw-metric predicates, NOT/IN/BETWEEN, realtime
// (mutable) segments and schema-evolution default columns, across no-index,
// inverted and sorted variants so each physical operator family is exercised.
package query_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"pinot/internal/query"
	"pinot/internal/segment"
	"pinot/internal/workload"
)

func runBothModes(t *testing.T, label, q string, segs []query.IndexedSegment, schema *segment.Schema, base query.Options) {
	t.Helper()
	ctx := context.Background()
	vecOpt := base
	vecOpt.DisableVectorization = false
	scalOpt := base
	scalOpt.DisableVectorization = true

	vec, vecErr := query.Run(ctx, q, segs, schema, vecOpt)
	scal, scalErr := query.Run(ctx, q, segs, schema, scalOpt)
	if (vecErr == nil) != (scalErr == nil) {
		t.Fatalf("%s: %q: error mismatch: vec=%v scalar=%v", label, q, vecErr, scalErr)
	}
	if vecErr != nil {
		if vecErr.Error() != scalErr.Error() {
			t.Fatalf("%s: %q: error text mismatch: vec=%v scalar=%v", label, q, vecErr, scalErr)
		}
		return
	}
	if vec.Stats != scal.Stats {
		t.Fatalf("%s: %q: stats diverge:\nvec:    %+v\nscalar: %+v", label, q, vec.Stats, scal.Stats)
	}
	// The query ID and phase timings are volatile per run; everything else
	// must be byte-identical.
	vec.QueryID, vec.Trace = "", nil
	scal.QueryID, scal.Trace = "", nil
	vj, err := json.Marshal(vec)
	if err != nil {
		t.Fatalf("%s: %q: marshal vec: %v", label, q, err)
	}
	sj, err := json.Marshal(scal)
	if err != nil {
		t.Fatalf("%s: %q: marshal scalar: %v", label, q, err)
	}
	if string(vj) != string(sj) {
		t.Fatalf("%s: %q: results diverge:\nvec:    %s\nscalar: %s", label, q, vj, sj)
	}
}

func TestVectorizedDifferentialAnomaly(t *testing.T) {
	size := workload.SizeConfig{Segments: 2, RowsPerSegment: 4000, Seed: 11}
	d := workload.Anomaly(size)
	variants := []workload.Variant{
		{Name: "noindex"},
		{Name: "inverted", Index: segment.IndexConfig{InvertedColumns: d.InvertedColumns}},
	}
	queries := d.Queries(70, 1234)
	for _, v := range variants {
		segs, _, err := d.BuildIndexed(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			runBothModes(t, "anomaly/"+v.Name, q, segs, d.Schema, v.PlanOptions())
		}
	}
}

func TestVectorizedDifferentialWVMP(t *testing.T) {
	size := workload.SizeConfig{Segments: 2, RowsPerSegment: 4000, Seed: 7}
	d := workload.ShareAnalytics(size)
	variants := []workload.Variant{
		{Name: "noindex"},
		{Name: "sorted", Index: segment.IndexConfig{SortColumn: "vieweeId"}},
		{Name: "inverted", Index: segment.IndexConfig{InvertedColumns: d.InvertedColumns}},
	}
	queries := d.Queries(70, 4321)
	for _, v := range variants {
		segs, _, err := d.BuildIndexed(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			runBothModes(t, "wvmp/"+v.Name, q, segs, d.Schema, v.PlanOptions())
		}
	}
}

// diffSchema builds the mixed fixture: a multi-value string dimension, low-
// and mid-cardinality single-value dimensions, raw long and double metrics
// and a time column.
func diffSchema(t *testing.T) *segment.Schema {
	t.Helper()
	schema, err := segment.NewSchema("difftbl", []segment.FieldSpec{
		{Name: "category", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "bucket", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "tags", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: false},
		{Name: "hits", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "score", Type: segment.TypeDouble, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true, TimeUnit: "DAYS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func diffRow(r *rand.Rand) segment.Row {
	nTags := 1 + r.Intn(3)
	tags := make([]string, nTags)
	for i := range tags {
		tags[i] = fmt.Sprintf("tag%d", r.Intn(12))
	}
	return segment.Row{
		fmt.Sprintf("cat%d", r.Intn(6)),
		int64(r.Intn(40)),
		tags,
		int64(r.Intn(1000)),
		float64(r.Intn(10000)) / 8,
		int64(17000 + r.Intn(14)),
	}
}

// diffQueries samples queries over the mixed fixture: aggregations over raw
// metrics, group-bys hitting the dense, packed and string groupers,
// selections with ORDER BY / OFFSET and multi-value + NOT + raw-metric
// predicates.
func diffQueries(r *rand.Rand, n int) []string {
	where := func() string {
		switch r.Intn(8) {
		case 0:
			return fmt.Sprintf(" WHERE category = 'cat%d'", r.Intn(7))
		case 1:
			return fmt.Sprintf(" WHERE tags = 'tag%d'", r.Intn(13))
		case 2:
			return fmt.Sprintf(" WHERE bucket BETWEEN %d AND %d", r.Intn(20), 20+r.Intn(20))
		case 3:
			return fmt.Sprintf(" WHERE score > %d.5", r.Intn(1200))
		case 4:
			return fmt.Sprintf(" WHERE hits <= %d", r.Intn(1000))
		case 5:
			return fmt.Sprintf(" WHERE NOT tags IN ('tag%d', 'tag%d')", r.Intn(12), r.Intn(12))
		case 6:
			return fmt.Sprintf(" WHERE category != 'cat%d' AND day >= %d", r.Intn(6), 17000+r.Intn(14))
		default:
			return ""
		}
	}
	out := make([]string, n)
	for i := range out {
		switch r.Intn(7) {
		case 0:
			out[i] = "SELECT sum(score), count(*) FROM difftbl" + where()
		case 1:
			out[i] = "SELECT min(score), max(hits), avg(score) FROM difftbl" + where()
		case 2:
			out[i] = "SELECT percentile95(score), distinctcount(bucket) FROM difftbl" + where()
		case 3:
			out[i] = fmt.Sprintf("SELECT sum(hits) FROM difftbl%s GROUP BY category TOP %d", where(), 1+r.Intn(10))
		case 4:
			out[i] = fmt.Sprintf("SELECT count(*), sum(score) FROM difftbl%s GROUP BY category, bucket TOP %d", where(), 1+r.Intn(12))
		case 5:
			out[i] = fmt.Sprintf("SELECT category, score, tags FROM difftbl%s LIMIT %d", where(), r.Intn(30))
		default:
			out[i] = fmt.Sprintf("SELECT category, hits FROM difftbl%s ORDER BY score DESC, category LIMIT %d, %d", where(), r.Intn(5), 1+r.Intn(20))
		}
	}
	return out
}

func TestVectorizedDifferentialMixed(t *testing.T) {
	schema := diffSchema(t)
	r := rand.New(rand.NewSource(99))

	build := func(name string, cfg segment.IndexConfig, rows int) query.IndexedSegment {
		b, err := segment.NewBuilder("difftbl", name, schema, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := b.Add(diffRow(r)); err != nil {
				t.Fatal(err)
			}
		}
		seg, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return query.IndexedSegment{Seg: seg}
	}

	// One plain immutable segment, one with inverted indexes, and one
	// realtime (mutable) segment so the unsorted-dictionary and
	// mutableColumn batch paths run too.
	segs := []query.IndexedSegment{
		build("diff_plain", segment.IndexConfig{}, 3000),
		build("diff_inv", segment.IndexConfig{InvertedColumns: []string{"category", "tags", "bucket"}}, 3000),
	}
	ms, err := segment.NewMutableSegment("difftbl", "diff_rt", schema, segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if err := ms.Add(diffRow(r)); err != nil {
			t.Fatal(err)
		}
	}
	segs = append(segs, query.IndexedSegment{Seg: ms})

	// A table schema with one extra column the segments predate, so the
	// virtual default-column batch fills are exercised via SELECT *.
	extended, err := schema.WithColumn(segment.FieldSpec{
		Name: "region", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	queries := diffQueries(r, 60)
	for _, q := range queries {
		runBothModes(t, "mixed", q, segs, schema, query.Options{})
	}
	extraQueries := []string{
		"SELECT * FROM difftbl LIMIT 25",
		"SELECT sum(hits) FROM difftbl WHERE region = 'null' GROUP BY region, category TOP 10",
		"SELECT count(*) FROM difftbl WHERE region != 'x'",
		"SELECT * FROM difftbl WHERE score >= 0 ORDER BY hits LIMIT 3, 9",
		"SELECT sum(score) FROM difftbl WHERE category = 'cat0' OR category = 'cat1' OR bucket = 3",
		"SELECT count(*) FROM difftbl WHERE category = 'cat2' AND bucket BETWEEN 0 AND 30 AND tags = 'tag1'",
		"SELECT category, bucket FROM difftbl WHERE bucket = 12 LIMIT 0",
	}
	for _, q := range extraQueries {
		runBothModes(t, "mixed/extended", q, segs, extended, query.Options{})
	}

	// ForceBitmap (Druid-style evaluation) over the inverted segment —
	// bitmap AND/OR collapse must not change results or stats.
	druidish := query.Options{ForceBitmap: true, DisableSorted: true, DisableStarTree: true, DisableMetadataPlans: true}
	for _, q := range queries[:30] {
		runBothModes(t, "mixed/forcebitmap", q, segs, schema, druidish)
	}
}
