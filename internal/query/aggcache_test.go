package query

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"pinot/internal/metrics"
	"pinot/internal/pql"
	"pinot/internal/qcache"
	"pinot/internal/segment"
)

// aggCacheFixture builds a mixed segment set — three immutable segments and
// one mutable (consuming-style) segment — mirroring a realtime table's
// server-side shape.
func aggCacheFixture(t testing.TB) []IndexedSegment {
	t.Helper()
	var segs []IndexedSegment
	for i := 0; i < 3; i++ {
		rows := testRows(400, int64(100+i))
		cfg := segment.IndexConfig{}
		if i == 1 {
			cfg.InvertedColumns = []string{"country"}
			cfg.SortColumn = "memberId"
		}
		segs = append(segs, IndexedSegment{Seg: buildRows(t, rows, cfg, fmt.Sprintf("seg%d", i))})
	}
	ms, err := segment.NewMutableSegment("events", "rt0", rowsSchema(t), segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRows(300, 999) {
		if err := ms.Add(segment.Row{r.country, r.browser, r.member, r.clicks, r.rev, r.day}); err != nil {
			t.Fatal(err)
		}
	}
	return append(segs, IndexedSegment{Seg: ms})
}

func aggCacheCorpus() []string {
	return []string{
		"SELECT count(*) FROM events",
		"SELECT sum(clicks), avg(revenue) FROM events WHERE country = 'us'",
		"SELECT min(clicks), max(clicks) FROM events WHERE day BETWEEN 15005 AND 15020",
		"SELECT distinctcount(browser) FROM events WHERE clicks > 40",
		"SELECT percentile95(clicks) FROM events WHERE country IN ('de', 'fr')",
		"SELECT count(*) FROM events GROUP BY country",
		"SELECT sum(clicks) FROM events WHERE memberId < 25 GROUP BY browser TOP 3",
		"SELECT max(revenue) FROM events GROUP BY day TOP 5",
	}
}

// TestAggCacheWarmMatchesCold is the engine-level differential: every
// corpus query must produce a byte-identical Result — stats included — on a
// cold cache, a warm cache, and with the cache disabled.
func TestAggCacheWarmMatchesCold(t *testing.T) {
	segs := aggCacheFixture(t)
	cache := qcache.New(qcache.Config{Tier: "aggregate", Metrics: metrics.NewRegistry()})
	cached := &Engine{AggCache: cache}
	plain := &Engine{}
	for _, pqlText := range aggCacheCorpus() {
		q, err := pql.Parse(pqlText)
		if err != nil {
			t.Fatal(err)
		}
		run := func(e *Engine) *Result {
			merged, excs, err := e.Execute(context.Background(), q, segs, nil)
			if err != nil {
				t.Fatalf("%q: %v", pqlText, err)
			}
			if len(excs) > 0 {
				t.Fatalf("%q: exceptions %v", pqlText, excs)
			}
			return merged.Finalize(q)
		}
		off := run(plain)
		cold := run(cached)
		warm := run(cached)
		if !reflect.DeepEqual(off, cold) {
			t.Errorf("%q: cold cached run diverges from cache-off:\n  off:  %+v\n  cold: %+v", pqlText, off, cold)
		}
		if !reflect.DeepEqual(off, warm) {
			t.Errorf("%q: warm cached run diverges from cache-off:\n  off:  %+v\n  warm: %+v", pqlText, off, warm)
		}
	}
	if cache.Len() == 0 {
		t.Fatal("cache stayed empty across an aggregation corpus")
	}
}

// TestAggCacheSkipsMutableSegments pins the consuming-segment rule: only the
// three immutable segments may populate the cache, never the mutable one.
func TestAggCacheSkipsMutableSegments(t *testing.T) {
	segs := aggCacheFixture(t)
	reg := metrics.NewRegistry()
	cache := qcache.New(qcache.Config{Tier: "aggregate", Metrics: reg})
	e := &Engine{AggCache: cache}
	q, err := pql.Parse("SELECT count(*), sum(clicks) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Execute(context.Background(), q, segs, nil); err != nil {
		t.Fatal(err)
	}
	if got := cache.Len(); got != 3 {
		t.Fatalf("cache holds %d entries, want 3 (immutable segments only)", got)
	}
	if n := cache.InvalidateScope("rt0"); n != 0 {
		t.Fatalf("mutable segment had %d cached entries", n)
	}
	// Warm pass: exactly the three immutable segments hit.
	if _, _, err := e.Execute(context.Background(), q, segs, nil); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Value("pinot_cache_hits_total", "aggregate", "events"); hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
}

// TestAggCacheInvalidationForcesRecompute verifies a scope invalidation
// (what a helix transition triggers) turns the next query back into a miss
// that still returns correct data.
func TestAggCacheInvalidationForcesRecompute(t *testing.T) {
	segs := aggCacheFixture(t)
	reg := metrics.NewRegistry()
	cache := qcache.New(qcache.Config{Tier: "aggregate", Metrics: reg})
	e := &Engine{AggCache: cache}
	q, err := pql.Parse("SELECT sum(clicks) FROM events GROUP BY country")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		merged, _, err := e.Execute(context.Background(), q, segs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return merged.Finalize(q)
	}
	first := run()
	if n := cache.InvalidateScope("seg1"); n != 1 {
		t.Fatalf("invalidated %d entries for seg1, want 1", n)
	}
	missesBefore := reg.Value("pinot_cache_misses_total", "aggregate", "events")
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("post-invalidation result diverges:\n  %+v\n  %+v", first, second)
	}
	if d := reg.Value("pinot_cache_misses_total", "aggregate", "events") - missesBefore; d != 1 {
		t.Fatalf("post-invalidation misses = %d, want exactly 1 (only seg1 recomputes)", d)
	}
}

// TestAggCacheTopVariantsShareEntries: TOP is applied at finalize, so all
// TOP variants of one group-by must share per-segment entries.
func TestAggCacheTopVariantsShareEntries(t *testing.T) {
	segs := aggCacheFixture(t)
	cache := qcache.New(qcache.Config{Tier: "aggregate", Metrics: metrics.NewRegistry()})
	e := &Engine{AggCache: cache}
	for _, text := range []string{
		"SELECT count(*) FROM events GROUP BY country TOP 2",
		"SELECT count(*) FROM events GROUP BY country TOP 7",
	} {
		q, err := pql.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.Execute(context.Background(), q, segs, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.Len(); got != 3 {
		t.Fatalf("cache holds %d entries, want 3 shared across TOP variants", got)
	}
}

// TestAggCacheCommutedFiltersShareEntries: the canonicalized filter
// signature makes commuted AND chains collide at the segment tier too.
func TestAggCacheCommutedFiltersShareEntries(t *testing.T) {
	segs := aggCacheFixture(t)
	cache := qcache.New(qcache.Config{Tier: "aggregate", Metrics: metrics.NewRegistry()})
	e := &Engine{AggCache: cache}
	for _, text := range []string{
		"SELECT count(*) FROM events WHERE country = 'us' AND clicks > 10",
		"SELECT count(*) FROM events WHERE clicks > 10 AND country = 'us'",
	} {
		q, err := pql.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.Execute(context.Background(), q, segs, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.Len(); got != 3 {
		t.Fatalf("cache holds %d entries, want 3 shared across commuted filters", got)
	}
}

// TestAggCacheSelectionNotCached: selections stay out of the cache.
func TestAggCacheSelectionNotCached(t *testing.T) {
	segs := aggCacheFixture(t)
	cache := qcache.New(qcache.Config{Tier: "aggregate", Metrics: metrics.NewRegistry()})
	e := &Engine{AggCache: cache}
	q, err := pql.Parse("SELECT country, clicks FROM events WHERE clicks > 50 ORDER BY clicks LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Execute(context.Background(), q, segs, nil); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("selection query populated the cache with %d entries", cache.Len())
	}
}

// TestAggCacheIsolation: mutating a served result must not corrupt the
// cached entry (clone-on-get), and mutating the source after Put must not
// corrupt the cache (clone-on-put).
func TestAggCacheIsolation(t *testing.T) {
	segs := aggCacheFixture(t)
	cache := qcache.New(qcache.Config{Tier: "aggregate", Metrics: metrics.NewRegistry()})
	e := &Engine{AggCache: cache}
	q, err := pql.Parse("SELECT sum(clicks), distinctcount(browser) FROM events WHERE country = 'us'")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Intermediate {
		merged, _, err := e.Execute(context.Background(), q, segs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return merged
	}
	baseline := run().Finalize(q)
	warm := run()
	// Mutate the served copy aggressively: merge it into itself and finalize.
	_ = warm.Merge(warm.Clone())
	warm.Finalize(q)
	again := run().Finalize(q)
	if !reflect.DeepEqual(baseline, again) {
		t.Fatalf("cache corrupted by consumer mutation:\n  %+v\n  %+v", baseline, again)
	}
}

// TestIntermediateCloneIsDeep pins Clone's isolation at the data-structure
// level for every result shape.
func TestIntermediateCloneIsDeep(t *testing.T) {
	orig := &Intermediate{
		Kind:     KindGroupBy,
		AggExprs: []pql.Expression{{IsAgg: true, Func: pql.DistinctCount, Column: "browser"}},
		GroupCols: []string{
			"country",
		},
		Groups: map[string]*GroupEntry{
			"us": {Values: []any{"us"}, Aggs: []*AggState{{Func: pql.DistinctCount, Distinct: map[string]struct{}{"chrome": {}}, Values: []float64{1}}}},
		},
		Stats: Stats{NumDocsScanned: 10},
	}
	cp := orig.Clone()
	cp.Groups["us"].Aggs[0].Distinct["edge"] = struct{}{}
	cp.Groups["us"].Values[0] = "xx"
	cp.Groups["de"] = &GroupEntry{}
	cp.Stats.NumDocsScanned = 99
	if len(orig.Groups) != 1 || len(orig.Groups["us"].Aggs[0].Distinct) != 1 ||
		orig.Groups["us"].Values[0] != "us" || orig.Stats.NumDocsScanned != 10 {
		t.Fatalf("Clone shares state with original: %+v", orig)
	}

	sel := &Intermediate{Kind: KindSelection, SelectCols: []string{"a"}, Rows: [][]any{{int64(1)}}}
	sc := sel.Clone()
	sc.Rows[0][0] = int64(2)
	sc.Rows = append(sc.Rows, []any{int64(3)})
	if sel.Rows[0][0] != int64(1) || len(sel.Rows) != 1 {
		t.Fatalf("selection Clone shares rows: %+v", sel.Rows)
	}
}
