package query

import (
	"fmt"
	"math/rand"
	"testing"

	"pinot/internal/pql"
	"pinot/internal/segment"
)

// randomPredicate generates a random predicate tree over the test schema.
func randomPredicate(r *rand.Rand, depth int) string {
	if depth <= 0 || r.Float64() < 0.5 {
		// Leaf.
		switch r.Intn(6) {
		case 0:
			return fmt.Sprintf("country = '%s'", []string{"us", "de", "fr", "zz"}[r.Intn(4)])
		case 1:
			return fmt.Sprintf("memberId %s %d", []string{"<", "<=", ">", ">=", "=", "<>"}[r.Intn(6)], r.Intn(60)-5)
		case 2:
			lo := r.Intn(40)
			return fmt.Sprintf("memberId BETWEEN %d AND %d", lo, lo+r.Intn(20))
		case 3:
			return fmt.Sprintf("browser IN ('%s', '%s')", []string{"chrome", "edge"}[r.Intn(2)], []string{"safari", "firefox"}[r.Intn(2)])
		case 4:
			return fmt.Sprintf("clicks > %d", r.Intn(100))
		default:
			lo := 15000 + r.Intn(25)
			return fmt.Sprintf("day >= %d", lo)
		}
	}
	a, b := randomPredicate(r, depth-1), randomPredicate(r, depth-1)
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s AND %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s OR %s)", a, b)
	default:
		return fmt.Sprintf("NOT (%s)", a)
	}
}

func countWhere(t *testing.T, segs []IndexedSegment, where string) int64 {
	t.Helper()
	res := runPQL(t, segs, "SELECT count(*) FROM events WHERE "+where, Options{})
	return res.Rows[0][0].(int64)
}

// Property: count(A) = count(A AND B) + count(A AND NOT B), for random
// predicate trees across all index configurations, and both against the
// brute-force reference.
func TestPropertyFilterPartition(t *testing.T) {
	rows := testRows(2500, 50)
	r := rand.New(rand.NewSource(51))
	for cfgName, cfg := range allConfigs() {
		seg := buildRows(t, rows, cfg, "s0")
		segs := []IndexedSegment{{Seg: seg}}
		for trial := 0; trial < 25; trial++ {
			a := randomPredicate(r, 2)
			b := randomPredicate(r, 2)
			cA := countWhere(t, segs, a)
			cAB := countWhere(t, segs, fmt.Sprintf("(%s) AND (%s)", a, b))
			cANotB := countWhere(t, segs, fmt.Sprintf("(%s) AND NOT (%s)", a, b))
			if cA != cAB+cANotB {
				t.Fatalf("[%s] partition law violated for A=%s B=%s: %d != %d + %d",
					cfgName, a, b, cA, cAB, cANotB)
			}
			// Cross-check against the brute-force row evaluator.
			q, err := pql.Parse("SELECT count(*) FROM events WHERE " + a)
			if err != nil {
				t.Fatalf("generated unparsable predicate %q: %v", a, err)
			}
			var want int64
			for _, row := range rows {
				if refFilter(row, q.Filter) {
					want++
				}
			}
			if cA != want {
				t.Fatalf("[%s] count(%s) = %d, reference %d", cfgName, a, cA, want)
			}
		}
	}
}

// Property: De Morgan at the document level — NOT (A OR B) == NOT A AND
// NOT B.
func TestPropertyDeMorgan(t *testing.T) {
	rows := testRows(1500, 52)
	seg := buildRows(t, rows, segment.IndexConfig{InvertedColumns: []string{"country", "browser"}}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		a := randomPredicate(r, 1)
		b := randomPredicate(r, 1)
		lhs := countWhere(t, segs, fmt.Sprintf("NOT ((%s) OR (%s))", a, b))
		rhs := countWhere(t, segs, fmt.Sprintf("NOT (%s) AND NOT (%s)", a, b))
		if lhs != rhs {
			t.Fatalf("De Morgan violated for A=%s B=%s: %d != %d", a, b, lhs, rhs)
		}
	}
}

// Property: splitting the rows across segments never changes aggregation
// answers.
func TestPropertySegmentSplitInvariance(t *testing.T) {
	rows := testRows(2000, 54)
	whole := []IndexedSegment{{Seg: buildRows(t, rows, segment.IndexConfig{}, "w")}}
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 5; trial++ {
		// Random split into 1-6 segments.
		k := 1 + r.Intn(6)
		var parts []IndexedSegment
		start := 0
		for i := 0; i < k; i++ {
			end := start + (len(rows)-start)/(k-i)
			if i == k-1 {
				end = len(rows)
			}
			if end == start {
				continue
			}
			parts = append(parts, IndexedSegment{Seg: buildRows(t, rows[start:end], segment.IndexConfig{}, fmt.Sprintf("p%d", i))})
			start = end
		}
		for _, q := range []string{
			"SELECT count(*), sum(clicks), min(revenue), max(revenue), avg(clicks), distinctcount(memberId) FROM events WHERE country <> 'us'",
			"SELECT sum(clicks) FROM events GROUP BY browser TOP 100",
			"SELECT percentile50(clicks) FROM events WHERE browser = 'chrome'",
		} {
			w := runPQL(t, whole, q, Options{})
			p := runPQL(t, parts, q, Options{})
			if !resultRowsEqual(w, p) {
				t.Fatalf("trial %d, %s:\n whole %v\n parts %v", trial, q, w.Rows, p.Rows)
			}
		}
	}
}
