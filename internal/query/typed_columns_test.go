package query

import (
	"testing"

	"pinot/internal/segment"
)

// TestFloatAndBoolDimensions exercises float64 and boolean dictionary
// columns end to end: equality, ranges and group-bys over the two remaining
// dictionary types.
func TestFloatAndBoolDimensions(t *testing.T) {
	sch, err := segment.NewSchema("sensors", []segment.FieldSpec{
		{Name: "threshold", Type: segment.TypeDouble, Kind: segment.Dimension, SingleValue: true},
		{Name: "active", Type: segment.TypeBoolean, Kind: segment.Dimension, SingleValue: true},
		{Name: "reading", Type: segment.TypeDouble, Kind: segment.Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		th     float64
		active bool
		val    float64
	}
	var rows []row
	for i := 0; i < 400; i++ {
		rows = append(rows, row{
			th:     float64(i%8) / 2,
			active: i%3 == 0,
			val:    float64(i),
		})
	}
	for cfgName, cfg := range map[string]segment.IndexConfig{
		"scan":     {},
		"inverted": {InvertedColumns: []string{"threshold", "active"}},
		"sorted":   {SortColumn: "threshold"},
	} {
		b, err := segment.NewBuilder("sensors", "s0", sch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := b.Add(segment.Row{r.th, r.active, r.val}); err != nil {
				t.Fatal(err)
			}
		}
		seg, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		segs := []IndexedSegment{{Seg: seg}}

		// Float equality and range.
		res := runPQL(t, segs, "SELECT count(*) FROM sensors WHERE threshold = 1.5", Options{})
		var want int64
		for _, r := range rows {
			if r.th == 1.5 {
				want++
			}
		}
		if got := res.Rows[0][0].(int64); got != want {
			t.Errorf("[%s] threshold=1.5 count %d, want %d", cfgName, got, want)
		}
		res = runPQL(t, segs, "SELECT sum(reading) FROM sensors WHERE threshold >= 2.5", Options{})
		var wantSum float64
		for _, r := range rows {
			if r.th >= 2.5 {
				wantSum += r.val
			}
		}
		if got := res.Rows[0][0].(float64); got != wantSum {
			t.Errorf("[%s] range sum %v, want %v", cfgName, got, wantSum)
		}
		// Boolean predicates and group-by.
		res = runPQL(t, segs, "SELECT count(*) FROM sensors WHERE active = true", Options{})
		want = 0
		for _, r := range rows {
			if r.active {
				want++
			}
		}
		if got := res.Rows[0][0].(int64); got != want {
			t.Errorf("[%s] active=true count %d, want %d", cfgName, got, want)
		}
		res = runPQL(t, segs, "SELECT count(*) FROM sensors WHERE active <> false GROUP BY active TOP 5", Options{})
		if len(res.Rows) != 1 || res.Rows[0][0] != true || res.Rows[0][1].(int64) != want {
			t.Errorf("[%s] bool group rows = %v", cfgName, res.Rows)
		}
		// Group by a float dimension.
		gres := runPQL(t, segs, "SELECT count(*) FROM sensors GROUP BY threshold TOP 100", Options{})
		if len(gres.Rows) != 8 {
			t.Errorf("[%s] float groups = %d", cfgName, len(gres.Rows))
		}
		var total int64
		for _, r := range gres.Rows {
			total += r[1].(int64)
		}
		if total != 400 {
			t.Errorf("[%s] float group total = %d", cfgName, total)
		}
		// Round trip through serialization preserves typed dictionaries.
		blob, err := seg.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := segment.Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		res2 := runPQL(t, []IndexedSegment{{Seg: loaded}}, "SELECT count(*) FROM sensors WHERE threshold = 1.5", Options{})
		var want15 int64
		for _, r := range rows {
			if r.th == 1.5 {
				want15++
			}
		}
		if got := res2.Rows[0][0].(int64); got != want15 {
			t.Errorf("[%s] round-trip count = %d, want %d", cfgName, got, want15)
		}
	}
}
