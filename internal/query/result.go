package query

import (
	"fmt"
	"sort"
	"strings"

	"pinot/internal/pql"
	"pinot/internal/qctx"
	"pinot/internal/segment"
)

// Stats are the execution statistics attached to query responses, mirroring
// the counters Pinot reports per query.
type Stats struct {
	NumDocsScanned         int64
	NumEntriesScanned      int64
	NumSegmentsQueried     int
	NumSegmentsMatched     int
	TotalDocs              int64
	StarTreeSegments       int
	StarTreeRecordsScanned int64
	StarTreeRawDocs        int64
	MetadataOnlySegments   int
	// Segment pruning accounting. Every candidate segment lands in exactly
	// one bucket, so at the engine SegmentsPrunedByServer +
	// SegmentsPrunedByValue + SegmentsMatched equals the candidate count,
	// and at the broker SegmentsPrunedByBroker joins the identity. Pruned
	// segments still count in NumSegmentsQueried and TotalDocs — pruning
	// changes how a segment was answered, not whether it was considered.
	SegmentsPrunedByBroker int // dropped by broker routing (time range / partition metadata)
	SegmentsPrunedByServer int // dropped by the server time-range tier
	SegmentsPrunedByValue  int // dropped by zone-map / bloom-filter evaluation
	SegmentsMatched        int // survived pruning and were dispatched for execution
	// GroupStateBytes is the estimated group-by state allocated for the
	// query (deterministic per-entry estimate, identical in vectorized
	// and scalar modes); the per-query cap in Options.GroupStateLimitBytes
	// is enforced against the qctx aggregate of this counter.
	GroupStateBytes int64
	// ResultCacheHit marks a response at least partially served from the
	// broker's query-result cache. It is the ONLY field allowed to differ
	// between a cached response and a cold one; every scan/prune counter
	// above is replayed verbatim from the cached entry.
	ResultCacheHit bool
	// DictExprSegments counts segments where dictionary-space expression
	// planning served a predicate, group key, aggregate argument, or a
	// pruning decision. It is the only Stats field allowed to differ under
	// Options.DisableDictExpr (scan/entry counters may also shift where the
	// plan legitimately changes rung, e.g. a pruned-to-empty segment).
	DictExprSegments int
}

// Merge folds another stats block into s.
func (s *Stats) Merge(o Stats) {
	s.NumDocsScanned += o.NumDocsScanned
	s.NumEntriesScanned += o.NumEntriesScanned
	s.NumSegmentsQueried += o.NumSegmentsQueried
	s.NumSegmentsMatched += o.NumSegmentsMatched
	s.TotalDocs += o.TotalDocs
	s.StarTreeSegments += o.StarTreeSegments
	s.StarTreeRecordsScanned += o.StarTreeRecordsScanned
	s.StarTreeRawDocs += o.StarTreeRawDocs
	s.MetadataOnlySegments += o.MetadataOnlySegments
	s.SegmentsPrunedByBroker += o.SegmentsPrunedByBroker
	s.SegmentsPrunedByServer += o.SegmentsPrunedByServer
	s.SegmentsPrunedByValue += o.SegmentsPrunedByValue
	s.SegmentsMatched += o.SegmentsMatched
	s.GroupStateBytes += o.GroupStateBytes
	s.ResultCacheHit = s.ResultCacheHit || o.ResultCacheHit
	s.DictExprSegments += o.DictExprSegments
}

// ResultKind distinguishes the three response shapes.
type ResultKind uint8

// Response shapes.
const (
	KindAggregation ResultKind = iota
	KindGroupBy
	KindSelection
)

// GroupEntry is one group of a group-by result: the group's column values
// and one aggregation state per select expression.
type GroupEntry struct {
	Values []any
	Aggs   []*AggState
}

// Intermediate is the mergeable partial result exchanged between segment
// executors, servers, and brokers.
type Intermediate struct {
	Kind       ResultKind
	AggExprs   []pql.Expression
	Aggs       []*AggState
	GroupCols  []string
	Groups     map[string]*GroupEntry
	SelectCols []string
	// HiddenCols counts trailing SelectCols fetched only for ORDER BY;
	// they are dropped from the final result after sorting.
	HiddenCols int
	Rows       [][]any
	Stats      Stats
}

// NewAggIntermediate returns an empty aggregation result for the given
// expressions.
func NewAggIntermediate(exprs []pql.Expression) *Intermediate {
	aggs := make([]*AggState, len(exprs))
	for i, e := range exprs {
		aggs[i] = NewAggState(e.Func)
	}
	return &Intermediate{Kind: KindAggregation, AggExprs: exprs, Aggs: aggs}
}

// Merge folds another partial result of the same shape into r.
func (r *Intermediate) Merge(o *Intermediate) error {
	if o == nil {
		return nil
	}
	if r.Kind != o.Kind {
		return fmt.Errorf("query: cannot merge %v result into %v result", o.Kind, r.Kind)
	}
	r.Stats.Merge(o.Stats)
	switch r.Kind {
	case KindAggregation:
		if len(r.Aggs) != len(o.Aggs) {
			return fmt.Errorf("query: aggregation arity mismatch: %d vs %d", len(r.Aggs), len(o.Aggs))
		}
		for i := range r.Aggs {
			r.Aggs[i].Merge(o.Aggs[i])
		}
	case KindGroupBy:
		if r.Groups == nil {
			r.Groups = make(map[string]*GroupEntry, len(o.Groups))
		}
		for k, g := range o.Groups {
			if mine, ok := r.Groups[k]; ok {
				for i := range mine.Aggs {
					mine.Aggs[i].Merge(g.Aggs[i])
				}
			} else {
				r.Groups[k] = g
			}
		}
	case KindSelection:
		r.Rows = append(r.Rows, o.Rows...)
	}
	return nil
}

// Conforms checks that an intermediate has the shape the query demands; the
// broker uses it to reject corrupted or mismatched server responses before
// merging them (a bad payload must degrade to a per-server failure, never
// poison the merged result).
func (r *Intermediate) Conforms(q *pql.Query) error {
	if r == nil {
		return fmt.Errorf("query: nil result")
	}
	var want ResultKind
	switch {
	case q.IsAggregation() && q.HasGroupBy():
		want = KindGroupBy
	case q.IsAggregation():
		want = KindAggregation
	default:
		want = KindSelection
	}
	if r.Kind != want {
		return fmt.Errorf("query: result kind %d does not match query kind %d", r.Kind, want)
	}
	nAggs := 0
	for _, e := range q.Select {
		if e.IsAgg {
			nAggs++
		}
	}
	switch r.Kind {
	case KindAggregation:
		if len(r.Aggs) != nAggs {
			return fmt.Errorf("query: aggregation arity %d, want %d", len(r.Aggs), nAggs)
		}
		for i, s := range r.Aggs {
			if s == nil {
				return fmt.Errorf("query: nil aggregation state at %d", i)
			}
		}
	case KindGroupBy:
		if len(r.AggExprs) != nAggs {
			return fmt.Errorf("query: group-by aggregation arity %d, want %d", len(r.AggExprs), nAggs)
		}
		for k, g := range r.Groups {
			if g == nil || len(g.Aggs) != nAggs {
				return fmt.Errorf("query: malformed group %q", k)
			}
		}
	case KindSelection:
		for i, row := range r.Rows {
			if len(row) != len(r.SelectCols) {
				return fmt.Errorf("query: row %d has %d values for %d columns", i, len(row), len(r.SelectCols))
			}
		}
	}
	return nil
}

// Result is a finalized query response.
type Result struct {
	Columns    []string
	Rows       [][]any
	Stats      Stats
	Partial    bool
	Exceptions []string
	// TimeMillis is filled by brokers with end-to-end latency.
	TimeMillis int64
	// QueryID correlates this response with server-side logs and traces.
	QueryID string
	// Trace is the per-phase time ledger accumulated in the QueryContext
	// across the layers the query crossed.
	Trace qctx.Trace
}

// Finalize converts a merged intermediate into the client-visible result.
func (r *Intermediate) Finalize(q *pql.Query) *Result {
	out := &Result{Stats: r.Stats}
	switch r.Kind {
	case KindAggregation:
		for _, e := range r.AggExprs {
			out.Columns = append(out.Columns, e.String())
		}
		row := make([]any, len(r.Aggs))
		for i, s := range r.Aggs {
			row[i] = s.Result()
		}
		out.Rows = [][]any{row}
	case KindGroupBy:
		out.Columns = append(out.Columns, r.GroupCols...)
		for _, e := range r.AggExprs {
			out.Columns = append(out.Columns, e.String())
		}
		type scored struct {
			entry *GroupEntry
			score float64
		}
		groups := make([]scored, 0, len(r.Groups))
		for _, g := range r.Groups {
			groups = append(groups, scored{g, orderScore(g.Aggs[0])})
		}
		// Pinot's group-by returns the TOP n groups ordered by the
		// first aggregation, descending.
		sort.Slice(groups, func(i, j int) bool {
			if groups[i].score != groups[j].score {
				return groups[i].score > groups[j].score
			}
			return groupKeyLess(groups[i].entry.Values, groups[j].entry.Values)
		})
		top := q.Top
		if top <= 0 {
			top = pql.DefaultTop
		}
		if len(groups) > top {
			groups = groups[:top]
		}
		for _, g := range groups {
			row := append([]any(nil), g.entry.Values...)
			for _, s := range g.entry.Aggs {
				row = append(row, s.Result())
			}
			out.Rows = append(out.Rows, row)
		}
	case KindSelection:
		out.Columns = r.SelectCols
		rows := r.Rows
		visible := len(r.SelectCols) - r.HiddenCols
		if len(q.OrderBy) > 0 {
			idx := make([]int, 0, len(q.OrderBy))
			desc := make([]bool, 0, len(q.OrderBy))
			for _, o := range q.OrderBy {
				for i, c := range r.SelectCols {
					if c == o.Column {
						idx = append(idx, i)
						desc = append(desc, o.Descending)
						break
					}
				}
			}
			sort.SliceStable(rows, func(a, b int) bool {
				for k, i := range idx {
					c := segment.CompareValues(rows[a][i], rows[b][i])
					if c == 0 {
						continue
					}
					if desc[k] {
						return c > 0
					}
					return c < 0
				}
				return false
			})
		}
		if q.Offset < len(rows) {
			rows = rows[q.Offset:]
		} else {
			rows = nil
		}
		if q.Limit >= 0 && len(rows) > q.Limit {
			rows = rows[:q.Limit]
		}
		if r.HiddenCols > 0 {
			out.Columns = r.SelectCols[:visible]
			trimmed := make([][]any, len(rows))
			for i, row := range rows {
				trimmed[i] = row[:visible]
			}
			rows = trimmed
		}
		out.Rows = rows
	}
	return out
}

func orderScore(s *AggState) float64 {
	switch v := s.Result().(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	}
	return 0
}

func groupKeyLess(a, b []any) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		c := segment.CompareValues(a[i], b[i])
		if c != 0 {
			return c < 0
		}
	}
	return false
}

// GroupKey builds the value-based group key shared across segments and
// servers.
func GroupKey(values []any) string {
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, "\x00")
}
