package query

import (
	"math"

	"pinot/internal/pql"
	"pinot/internal/segment"
)

// Segment pruning: before a segment is dispatched to the execution engine,
// its filter is evaluated against the segment's persisted zone maps (typed
// per-column min/max plus dictionary bloom filters) and time range. Three
// outcomes are possible, mirroring Pinot's server-side pruners:
//
//   - matchNone: the filter provably matches no document — the segment is
//     skipped entirely (SegmentsPrunedByServer for the time-range tier,
//     SegmentsPrunedByValue for the zone-map/bloom tier).
//   - matchAll: the filter provably matches every document — the segment
//     executes with the filter elided, which lets COUNT/MIN/MAX fall into
//     the metadata-only plan and spares every other shape the predicate
//     evaluation.
//   - matchSome: nothing can be proven — the segment executes normally.
//
// Decisions must be exactly consistent with execution semantics: multi-value
// columns have contains-any semantics with negations complemented at the
// document level (mirroring buildLeafFilter), unknown columns and uncoercible
// literals degrade to matchSome so query errors still surface, and segments
// without persisted metadata (consuming/mutable segments, schema-evolution
// default columns) are never pruned.

// matchOutcome is the three-valued result of evaluating a filter against
// segment metadata.
type matchOutcome uint8

const (
	matchSome matchOutcome = iota
	matchNone
	matchAll
)

// invert complements an outcome at the document level (NOT semantics).
func (m matchOutcome) invert() matchOutcome {
	switch m {
	case matchNone:
		return matchAll
	case matchAll:
		return matchNone
	}
	return matchSome
}

// zoneReader is the metadata surface pruning runs against. Immutable
// segments implement it; mutable (consuming) segments do not and are never
// pruned — their min/max grow as rows arrive, so a decision could be stale
// by execution time.
type zoneReader interface {
	ColumnMeta(name string) *segment.ColumnMetadata
}

// pruneEval evaluates a filter tree against a segment's zone maps.
func pruneEval(zr zoneReader, pred pql.Predicate) matchOutcome {
	return pruneEvalExpr(zr, pred, nil)
}

// pruneEvalExpr is pruneEval with an optional evaluator for expression
// leaves. exprLeaf (when non-nil) resolves an expression comparison to a
// document-exact outcome — dictionary-space evaluation can prove a leaf
// matches no dictionary entry (matchNone) or every one (matchAll); nil or
// any undecidable shape degrades to matchSome, the pre-dictionary behavior.
func pruneEvalExpr(zr zoneReader, pred pql.Predicate, exprLeaf func(pql.ExprCompare) matchOutcome) matchOutcome {
	if pred == nil {
		return matchAll
	}
	switch p := pred.(type) {
	case pql.And:
		out := matchAll
		for _, c := range p.Children {
			switch pruneEvalExpr(zr, c, exprLeaf) {
			case matchNone:
				return matchNone
			case matchSome:
				out = matchSome
			}
		}
		return out
	case pql.Or:
		out := matchNone
		for _, c := range p.Children {
			switch pruneEvalExpr(zr, c, exprLeaf) {
			case matchAll:
				return matchAll
			case matchSome:
				out = matchSome
			}
		}
		return out
	case pql.Not:
		return pruneEvalExpr(zr, p.Child, exprLeaf).invert()
	case pql.Comparison, pql.In, pql.Between:
		return pruneLeaf(zr, pred)
	case pql.ExprCompare:
		if exprLeaf != nil {
			return exprLeaf(p)
		}
	}
	return matchSome
}

// pruneLeaf evaluates one leaf predicate against a column's zone map.
func pruneLeaf(zr zoneReader, pred pql.Predicate) matchOutcome {
	cols := pql.PredicateColumns(pred)
	if len(cols) != 1 {
		return matchSome
	}
	cm := zr.ColumnMeta(cols[0])
	if cm == nil || cm.Zone == nil {
		return matchSome
	}
	if !cm.SingleValue {
		// Multi-value semantics are contains-any, and the executor
		// rewrites negated MV leaves to document-level complements of
		// their positive form (buildLeafFilter). Prune the same shape:
		// for the positive form, matchNone means no element of any doc
		// matches, and matchAll means every element matches (each doc has
		// at least one element) — both transfer to the doc level.
		if pos, negated := positiveForm(pred); negated {
			return pruneLeaf(zr, pos).invert()
		}
	}
	z := cm.Zone
	coerce := func(raw any) (any, bool) {
		v, err := segment.Canonicalize(z.Type, raw)
		return v, err == nil
	}
	min, max := z.Min(), z.Max()
	constant := segment.CompareValues(min, max) == 0

	switch p := pred.(type) {
	case pql.Comparison:
		v, ok := coerce(p.Value)
		if !ok {
			return matchSome // execution surfaces the coercion error
		}
		cmpMin := segment.CompareValues(v, min)
		cmpMax := segment.CompareValues(v, max)
		switch p.Op {
		case pql.OpEq:
			if cmpMin < 0 || cmpMax > 0 || !z.Bloom.MayContain(v) {
				return matchNone
			}
			if constant {
				return matchAll // every value equals min == max == v
			}
		case pql.OpNeq:
			if cmpMin < 0 || cmpMax > 0 || !z.Bloom.MayContain(v) {
				return matchAll // v provably absent
			}
			if constant {
				return matchNone
			}
		case pql.OpLt:
			if cmpMax > 0 {
				return matchAll
			}
			if cmpMin <= 0 {
				return matchNone
			}
		case pql.OpLte:
			if cmpMax >= 0 {
				return matchAll
			}
			if cmpMin < 0 {
				return matchNone
			}
		case pql.OpGt:
			if cmpMin < 0 {
				return matchAll
			}
			if cmpMax >= 0 {
				return matchNone
			}
		case pql.OpGte:
			if cmpMin <= 0 {
				return matchAll
			}
			if cmpMax > 0 {
				return matchNone
			}
		}
		return matchSome
	case pql.Between:
		lo, okL := coerce(p.Lo)
		hi, okH := coerce(p.Hi)
		if !okL || !okH {
			return matchSome
		}
		if segment.CompareValues(lo, hi) > 0 {
			return matchNone // empty range matches nothing
		}
		if segment.CompareValues(hi, min) < 0 || segment.CompareValues(lo, max) > 0 {
			return matchNone
		}
		if segment.CompareValues(lo, min) <= 0 && segment.CompareValues(hi, max) >= 0 {
			return matchAll
		}
		return matchSome
	case pql.In:
		present := false // any listed value possibly in the column
		hitMin := false  // some listed value equals min (== max when constant)
		for _, raw := range p.Values {
			v, ok := coerce(raw)
			if !ok {
				return matchSome
			}
			if segment.CompareValues(v, min) >= 0 && segment.CompareValues(v, max) <= 0 && z.Bloom.MayContain(v) {
				present = true
				if segment.CompareValues(v, min) == 0 {
					hitMin = true
				}
			}
		}
		if p.Negated {
			// Document matches iff its value is not listed.
			switch {
			case !present:
				return matchAll // no listed value occurs in the column
			case constant && hitMin:
				return matchNone // the only value is listed
			}
			return matchSome
		}
		switch {
		case !present:
			return matchNone
		case constant && hitMin:
			return matchAll
		}
		return matchSome
	}
	return matchSome
}

// TimeBounds extracts the inclusive [lo, hi] interval that a filter's
// top-level conjuncts impose on a column. Any matching document must carry a
// column value inside the interval, so a segment whose [min, max] range does
// not overlap it can be dropped — the broker's time-boundary pruning and the
// server's time-range tier both use it. ok is false when no top-level
// conjunct constrains the column (predicates under OR/NOT are ignored: they
// do not constrain conjunctively).
func TimeBounds(p pql.Predicate, column string) (lo, hi int64, ok bool) {
	lo, hi = math.MinInt64, math.MaxInt64
	found := false
	var walk func(p pql.Predicate)
	walk = func(p pql.Predicate) {
		switch n := p.(type) {
		case pql.And:
			for _, c := range n.Children {
				walk(c)
			}
		case pql.Comparison:
			if n.Column != column {
				return
			}
			v, err := segment.Canonicalize(segment.TypeLong, n.Value)
			if err != nil {
				return
			}
			x := v.(int64)
			switch n.Op {
			case pql.OpEq:
				found = true
				if x > lo {
					lo = x
				}
				if x < hi {
					hi = x
				}
			case pql.OpLt:
				if x == math.MinInt64 {
					return
				}
				found = true
				if x-1 < hi {
					hi = x - 1
				}
			case pql.OpLte:
				found = true
				if x < hi {
					hi = x
				}
			case pql.OpGt:
				if x == math.MaxInt64 {
					return
				}
				found = true
				if x+1 > lo {
					lo = x + 1
				}
			case pql.OpGte:
				found = true
				if x > lo {
					lo = x
				}
			}
		case pql.Between:
			if n.Column != column {
				return
			}
			l, errL := segment.Canonicalize(segment.TypeLong, n.Lo)
			h, errH := segment.Canonicalize(segment.TypeLong, n.Hi)
			if errL != nil || errH != nil {
				return
			}
			found = true
			if x := l.(int64); x > lo {
				lo = x
			}
			if x := h.(int64); x < hi {
				hi = x
			}
		}
	}
	if p != nil {
		walk(p)
	}
	return lo, hi, found
}

// prunePlan is the outcome of evaluating the pruning tiers over an engine's
// candidate segments.
type prunePlan struct {
	// keep are the segments to execute, paired with the query each should
	// run (the original, or a filter-elided copy when the filter provably
	// matches every document of that segment).
	keep    []IndexedSegment
	queries []*pql.Query
	// stats accounts for every candidate: pruned segments contribute
	// NumSegmentsQueried/TotalDocs here (they were candidates even though
	// no executor ever saw them), kept segments contribute SegmentsMatched.
	stats Stats
}

// planPruning runs the server-side pruning tiers over the candidate
// segments. Tier one drops segments whose persisted time range cannot
// overlap the filter's conjunctive time bounds (SegmentsPrunedByServer);
// tier two evaluates the full filter tree against per-column zone maps and
// bloom filters (SegmentsPrunedByValue). Filters proven to match all
// documents are elided so the metadata-only aggregation plan can fire.
func planPruning(q *pql.Query, segs []IndexedSegment, tableSchema *segment.Schema, opt Options) prunePlan {
	plan := prunePlan{keep: make([]IndexedSegment, 0, len(segs)), queries: make([]*pql.Query, 0, len(segs))}
	var noFilter *pql.Query
	timeLo, timeHi := int64(math.MinInt64), int64(math.MaxInt64)
	timeBounded := false
	hasExprLeaf := false
	if q.Filter != nil {
		timeCol := ""
		if tableSchema != nil {
			timeCol = tableSchema.TimeColumn()
		}
		if timeCol != "" {
			timeLo, timeHi, timeBounded = TimeBounds(q.Filter, timeCol)
		}
		hasExprLeaf = !opt.DisableDictExpr && pql.PredicateHasExprCompare(q.Filter)
	}
	for _, is := range segs {
		zr, ok := is.Seg.(zoneReader)
		if !ok {
			// Mutable/consuming segment: candidate, never pruned.
			plan.stats.SegmentsMatched++
			plan.keep = append(plan.keep, is)
			plan.queries = append(plan.queries, q)
			continue
		}
		if timeBounded {
			if tr, ok := is.Seg.(interface{ TimeRange() (int64, int64, bool) }); ok {
				if minT, maxT, has := tr.TimeRange(); has && (maxT < timeLo || minT > timeHi) {
					plan.stats.SegmentsPrunedByServer++
					plan.stats.NumSegmentsQueried++
					plan.stats.TotalDocs += int64(is.Seg.NumDocs())
					continue
				}
			}
		}
		// Dictionary-space expression leaves: evaluated once per dictionary
		// entry, an expression predicate can prove a segment empty (pruned
		// like a zone-map miss) or full (filter elided). Decisions are
		// document-exact, so they compose under the same three-valued
		// AND/OR/NOT algebra as zone-map leaves. A memo built here lands in
		// the cross-query cache, warming the execution that follows.
		var exprLeaf func(pql.ExprCompare) matchOutcome
		exprDecisive := false
		if hasExprLeaf {
			cs := columnSource{seg: is.Seg, schema: tableSchema}
			exprLeaf = func(p pql.ExprCompare) matchOutcome {
				_, set, ok := dictExprIDSet(cs, p, opt, q.Table)
				if !ok {
					return matchSome
				}
				switch {
				case set.isEmpty():
					exprDecisive = true
					return matchNone
				case set.isAll():
					exprDecisive = true
					return matchAll
				}
				return matchSome
			}
		}
		switch pruneEvalExpr(zr, q.Filter, exprLeaf) {
		case matchNone:
			if exprDecisive {
				plan.stats.DictExprSegments++
			}
			plan.stats.SegmentsPrunedByValue++
			plan.stats.NumSegmentsQueried++
			plan.stats.TotalDocs += int64(is.Seg.NumDocs())
		case matchAll:
			if q.Filter != nil && noFilter == nil {
				elided := *q
				elided.Filter = nil
				noFilter = &elided
			}
			plan.stats.SegmentsMatched++
			plan.keep = append(plan.keep, is)
			if noFilter != nil {
				plan.queries = append(plan.queries, noFilter)
			} else {
				plan.queries = append(plan.queries, q)
			}
		default:
			plan.stats.SegmentsMatched++
			plan.keep = append(plan.keep, is)
			plan.queries = append(plan.queries, q)
		}
	}
	return plan
}
