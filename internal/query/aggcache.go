package query

import (
	"context"
	"strings"

	"pinot/internal/pql"
	"pinot/internal/segment"
)

// Server-side partial-aggregate cache: per-segment merged aggregation state
// keyed on (segment ID, filter signature, aggregation signature), checked
// before plan execution and filled after. Only immutable segments are
// cacheable — a consuming (mutable) segment changes under every query — and
// only aggregation shapes are stored: selection intermediates are row sets
// whose merge order is not deterministic across runs, and caching them
// would trade byte-identical responses for little (selection rows dwarf
// aggregate states anyway, the wrong side of the small-result bias).

// aggCacheable reports whether a per-segment execution may go through the
// partial-aggregate cache.
func aggCacheable(q *pql.Query, opt Options, is IndexedSegment) bool {
	if !q.IsAggregation() {
		return false
	}
	// Under a group-state cap a segment may legally stop early with
	// ErrGroupStateLimit depending on cluster-wide accounting in qctx;
	// replaying a cached complete result would dodge the cap. Stay off.
	if opt.GroupStateLimitBytes > 0 && q.HasGroupBy() {
		return false
	}
	_, mutable := is.Seg.(*segment.MutableSegment)
	return !mutable
}

// aggCacheKey renders the (filter signature, aggregation signature) part of
// the cache key; the segment ID is the cache scope. The filter is
// canonicalized so commuted predicates collide, and TOP/LIMIT/ORDER are
// deliberately excluded: per-segment group-by intermediates carry every
// group (TOP applies at finalize), so all TOP variants of one aggregation
// share an entry.
func aggCacheKey(q *pql.Query) string {
	var sb strings.Builder
	for _, e := range q.Select {
		if e.IsAgg {
			sb.WriteString(e.String())
			sb.WriteByte(',')
		}
	}
	sb.WriteByte('\x00')
	sb.WriteString(strings.Join(q.GroupBy, ","))
	sb.WriteByte('\x00')
	if q.Filter != nil {
		sb.WriteString(pql.CanonicalPredicate(q.Filter).String())
	}
	return sb.String()
}

// executeSegmentCached wraps ExecuteSegment with the partial-aggregate
// cache. Cached intermediates replay the original execution verbatim —
// stats included — so a warm segment is indistinguishable from a cold one
// in the response. Only clean completions are stored: errored or
// group-limited executions must re-run.
func (e *Engine) executeSegmentCached(ctx context.Context, is IndexedSegment, q *pql.Query, tableSchema *segment.Schema) (*Intermediate, error) {
	cache := e.AggCache
	if cache == nil || !aggCacheable(q, e.Options, is) {
		return ExecuteSegment(ctx, is, q, tableSchema, e.Options)
	}
	scope, key := is.Seg.Name(), aggCacheKey(q)
	if v, ok := cache.Get(scope, q.Table, key); ok {
		return v.(*Intermediate).Clone(), nil
	}
	res, err := ExecuteSegment(ctx, is, q, tableSchema, e.Options)
	if err != nil {
		return res, err
	}
	cache.Put(scope, q.Table, key, res.Clone(), res.SizeBytes())
	return res, nil
}
