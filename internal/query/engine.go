package query

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"pinot/internal/pql"
	"pinot/internal/qcache"
	"pinot/internal/qctx"
	"pinot/internal/segment"
)

// Engine executes queries across the segments of one node, scheduling
// per-segment plans on a bounded worker pool (paper 3.3.4: "query plans are
// then submitted for execution to the query execution scheduler. Query plans
// are processed in parallel").
type Engine struct {
	// Parallelism bounds concurrently executing segment plans; zero
	// means GOMAXPROCS.
	Parallelism int
	// Options tune physical planning for every query this engine runs.
	Options Options
	// OnOutcome, when set, receives each query's segment disposition after
	// execution: plans run to completion, plans cancelled mid-scan, and
	// segments never dispatched before the deadline. The server wires this
	// to its metrics, keeping this package free of the metrics dependency.
	OnOutcome func(executed, cancelled, skipped int)
	// AggCache, when set, is the server-side partial-aggregate cache:
	// per-segment merged aggregation state for immutable segments, checked
	// before plan execution and filled after (see aggcache.go). Nil
	// disables the tier.
	AggCache *qcache.Cache
}

// Execute runs a parsed query over the given segments and returns the merged
// (but not finalized) partial result. A context cancellation or deadline
// produces a best-effort partial result with an exception note, matching the
// paper's partial-result semantics (3.3.3 step 7): undispatched segments are
// skipped, and in-flight segments stop cooperatively at the next block
// boundary — both count (and the cancelled ones are named) in the timeout
// exception.
func (e *Engine) Execute(ctx context.Context, q *pql.Query, segs []IndexedSegment, tableSchema *segment.Schema) (*Intermediate, []string, error) {
	var merged *Intermediate
	trailerStats, exceptions, err := e.ExecuteStream(ctx, q, segs, tableSchema, func(_ int, res *Intermediate) error {
		if merged == nil {
			merged = res
			return nil
		}
		return merged.Merge(res)
	})
	if err != nil {
		return nil, exceptions, err
	}
	if merged == nil {
		merged = emptyResult(q)
	}
	merged.Stats.Merge(trailerStats)
	return merged, exceptions, nil
}

// ExecuteStream is the streaming core of Execute: each per-segment
// intermediate is handed to emit as soon as it is ready, tagged with a
// contiguous sequence number starting at zero. Emission is eager but ordered
// — results stream out in segment-index order via a reorder buffer — so a
// consumer that merges frames as they arrive produces byte-for-byte the same
// result as the buffered path (selection merges append rows, so order is
// semantics). The returned Stats are trailer stats (pruning work not
// attributable to any emitted segment); the consumer folds them into its
// merged result. If nothing was produced and the query did not fail, a
// single empty intermediate of the right shape is emitted so consumers
// always see at least one frame. An emit error cancels outstanding segment
// work and is returned as the execution error.
func (e *Engine) ExecuteStream(ctx context.Context, q *pql.Query, segs []IndexedSegment, tableSchema *segment.Schema, emit func(seq int, res *Intermediate) error) (Stats, []string, error) {
	var trailer Stats
	if len(segs) == 0 {
		return trailer, nil, emit(0, emptyResult(q))
	}
	// Server-side pruning: drop segments whose metadata proves the filter
	// matches nothing, and elide filters proven to match everything. Each
	// kept segment carries the query it should run (queries[i]).
	queries := make([]*pql.Query, len(segs))
	if e.Options.DisablePruning {
		for i := range queries {
			queries[i] = q
		}
	} else {
		plan := planPruning(q, segs, tableSchema, e.Options)
		segs, queries, trailer = plan.keep, plan.queries, plan.stats
		if len(segs) == 0 {
			return trailer, nil, emit(0, emptyResult(q))
		}
	}
	qc := qctx.From(ctx)
	if qc == nil {
		qc = qctx.New("", 0)
		ctx = qctx.With(ctx, qc)
	}
	qc.SetGroupStateLimit(e.Options.GroupStateLimitBytes)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	par := e.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(segs) {
		par = len(segs)
	}

	type outcome struct {
		index int
		res   *Intermediate
		err   error
	}
	outcomes := make(chan outcome, len(segs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, err := e.executeSegmentCached(ctx, segs[i], queries[i], tableSchema)
				outcomes <- outcome{i, res, err}
			}
		}()
	}
	go func() {
	dispatch:
		for i := range segs {
			select {
			case work <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(work)
		wg.Wait()
		close(outcomes)
	}()

	// Reorder buffer: outcomes arrive in completion order, but frames go out
	// in segment-index order the moment their predecessors have resolved.
	results := make([]outcome, len(segs))
	arrived := make([]bool, len(segs))
	next := 0

	var errExcs []string
	var cancelled []string
	groupLimited := false
	var firstErr, emitErr error
	succeeded, dispatched, emitted := 0, 0, 0
	for o := range outcomes {
		dispatched++
		results[o.index], arrived[o.index] = o, true
		if emitErr != nil {
			continue // draining after a dead consumer; workers are cancelled
		}
		for next < len(segs) && arrived[next] {
			o := results[next]
			next++
			var ce *cancelledError
			if errors.As(o.err, &ce) {
				// Dispatched but stopped mid-scan at a block boundary: no
				// usable partial from this segment, and it must be counted
				// as not processed (the pre-cancellation engine reported
				// these as processed).
				cancelled = append(cancelled, segs[o.index].Seg.Name())
				continue
			}
			if errors.Is(o.err, ErrGroupStateLimit) {
				// The segment stopped at the group-state cap but its groups
				// so far are valid: emit them and degrade.
				groupLimited = true
			} else if o.err != nil {
				if firstErr == nil {
					firstErr = o.err
				}
				errExcs = append(errExcs, o.err.Error())
				continue
			}
			succeeded++
			qc.AddScan(o.res.Stats.NumDocsScanned, o.res.Stats.NumEntriesScanned)
			if err := emit(emitted, o.res); err != nil {
				emitErr = err
				cancel()
				break
			}
			emitted++
		}
	}
	skipped := len(segs) - dispatched
	if e.OnOutcome != nil {
		e.OnOutcome(succeeded, len(cancelled), skipped)
	}
	if emitErr != nil {
		return trailer, errExcs, emitErr
	}
	var exceptions []string
	if n := skipped + len(cancelled); n > 0 {
		msg := fmt.Sprintf("timeout: %d of %d segments not processed", n, len(segs))
		if len(cancelled) > 0 {
			msg += fmt.Sprintf(" (%d undispatched, %d cancelled mid-scan: %s)",
				skipped, len(cancelled), strings.Join(cancelled, ", "))
		}
		exceptions = append(exceptions, msg)
	}
	if groupLimited {
		exceptions = append(exceptions, fmt.Sprintf(
			"resource limit: group-by state exceeded %d bytes, result truncated", qc.GroupStateLimit()))
	}
	exceptions = append(exceptions, errExcs...)
	if succeeded == 0 && firstErr != nil {
		// Every attempted segment failed outright (bad column, bad
		// aggregation, ...): that is a query error, not degradation.
		return trailer, exceptions, firstErr
	}
	if emitted == 0 {
		// Everything was skipped by the deadline: an empty result
		// marked partial, per the paper's graceful-degradation
		// semantics.
		if err := emit(0, emptyResult(q)); err != nil {
			return trailer, exceptions, err
		}
	}
	return trailer, exceptions, nil
}

// EmptyIntermediate produces a zero-row intermediate of the right shape for
// a query; brokers use it when every server failed, so clients still get a
// well-formed (partial) response.
func EmptyIntermediate(q *pql.Query) *Intermediate { return emptyResult(q) }

// emptyResult produces a zero-row intermediate of the right shape.
func emptyResult(q *pql.Query) *Intermediate {
	if q.IsAggregation() {
		var exprs []pql.Expression
		for _, e := range q.Select {
			if e.IsAgg {
				exprs = append(exprs, e)
			}
		}
		if q.HasGroupBy() {
			return &Intermediate{Kind: KindGroupBy, AggExprs: exprs, GroupCols: q.GroupBy, Groups: map[string]*GroupEntry{}}
		}
		return NewAggIntermediate(exprs)
	}
	var cols []string
	for _, e := range q.Select {
		cols = append(cols, e.Column)
	}
	return &Intermediate{Kind: KindSelection, SelectCols: cols}
}

// Run parses and executes PQL text against segments, finalizing the result.
// It is the single-node entry point used by the examples, tests and the
// Druid baseline; the distributed path goes through broker and server
// packages. Run mints a QueryContext when the caller did not provide one
// (budgeted from the context deadline, if any), so every result — including
// the Druid baseline's — carries a query ID, a phase trace and resource
// accounting.
func Run(ctx context.Context, pqlText string, segs []IndexedSegment, tableSchema *segment.Schema, opt Options) (*Result, error) {
	qc := qctx.From(ctx)
	if qc == nil {
		var budget time.Duration
		if dl, ok := ctx.Deadline(); ok {
			budget = time.Until(dl)
		}
		qc = qctx.New("", budget)
		ctx = qctx.With(ctx, qc)
	}
	stop := qc.Clock(qctx.PhaseParse)
	q, err := pql.Parse(pqlText)
	stop()
	if err != nil {
		return nil, err
	}
	eng := &Engine{Options: opt}
	stop = qc.Clock(qctx.PhaseExecute)
	merged, exceptions, err := eng.Execute(ctx, q, segs, tableSchema)
	stop()
	if err != nil {
		return nil, err
	}
	stop = qc.Clock(qctx.PhaseReduce)
	res := merged.Finalize(q)
	stop()
	res.Exceptions = exceptions
	res.Partial = len(exceptions) > 0
	res.QueryID = qc.ID()
	res.Trace = qc.TraceSnapshot()
	return res, nil
}
