package query

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"pinot/internal/pql"
	"pinot/internal/segment"
)

// Engine executes queries across the segments of one node, scheduling
// per-segment plans on a bounded worker pool (paper 3.3.4: "query plans are
// then submitted for execution to the query execution scheduler. Query plans
// are processed in parallel").
type Engine struct {
	// Parallelism bounds concurrently executing segment plans; zero
	// means GOMAXPROCS.
	Parallelism int
	// Options tune physical planning for every query this engine runs.
	Options Options
}

// Execute runs a parsed query over the given segments and returns the merged
// (but not finalized) partial result. A context cancellation or deadline
// produces a best-effort partial result with an exception note, matching the
// paper's partial-result semantics (3.3.3 step 7).
func (e *Engine) Execute(ctx context.Context, q *pql.Query, segs []IndexedSegment, tableSchema *segment.Schema) (*Intermediate, []string, error) {
	if len(segs) == 0 {
		return emptyResult(q), nil, nil
	}
	par := e.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(segs) {
		par = len(segs)
	}

	type outcome struct {
		res *Intermediate
		err error
	}
	results := make([]outcome, len(segs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, err := ExecuteSegment(segs[i], q, tableSchema, e.Options)
				results[i] = outcome{res, err}
			}
		}()
	}
	var skipped int
dispatch:
	for i := range segs {
		select {
		case work <- i:
		case <-ctx.Done():
			skipped = len(segs) - i
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	var exceptions []string
	if skipped > 0 {
		exceptions = append(exceptions, fmt.Sprintf("timeout: %d of %d segments not processed", skipped, len(segs)))
	}
	var merged *Intermediate
	var firstErr error
	succeeded := 0
	for _, o := range results {
		if o.res == nil && o.err == nil {
			continue // skipped by timeout
		}
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			exceptions = append(exceptions, o.err.Error())
			continue
		}
		succeeded++
		if merged == nil {
			merged = o.res
			continue
		}
		if err := merged.Merge(o.res); err != nil {
			return nil, exceptions, err
		}
	}
	if succeeded == 0 && firstErr != nil {
		// Every attempted segment failed outright (bad column, bad
		// aggregation, ...): that is a query error, not degradation.
		return nil, exceptions, firstErr
	}
	if merged == nil {
		// Everything was skipped by the deadline: an empty result
		// marked partial, per the paper's graceful-degradation
		// semantics.
		merged = emptyResult(q)
	}
	return merged, exceptions, nil
}

// EmptyIntermediate produces a zero-row intermediate of the right shape for
// a query; brokers use it when every server failed, so clients still get a
// well-formed (partial) response.
func EmptyIntermediate(q *pql.Query) *Intermediate { return emptyResult(q) }

// emptyResult produces a zero-row intermediate of the right shape.
func emptyResult(q *pql.Query) *Intermediate {
	if q.IsAggregation() {
		var exprs []pql.Expression
		for _, e := range q.Select {
			if e.IsAgg {
				exprs = append(exprs, e)
			}
		}
		if q.HasGroupBy() {
			return &Intermediate{Kind: KindGroupBy, AggExprs: exprs, GroupCols: q.GroupBy, Groups: map[string]*GroupEntry{}}
		}
		return NewAggIntermediate(exprs)
	}
	var cols []string
	for _, e := range q.Select {
		cols = append(cols, e.Column)
	}
	return &Intermediate{Kind: KindSelection, SelectCols: cols}
}

// Run parses and executes PQL text against segments, finalizing the result.
// It is the single-node convenience entry point used by the examples and
// tests; the distributed path goes through broker and server packages.
func Run(ctx context.Context, pqlText string, segs []IndexedSegment, tableSchema *segment.Schema, opt Options) (*Result, error) {
	q, err := pql.Parse(pqlText)
	if err != nil {
		return nil, err
	}
	eng := &Engine{Options: opt}
	merged, exceptions, err := eng.Execute(ctx, q, segs, tableSchema)
	if err != nil {
		return nil, err
	}
	res := merged.Finalize(q)
	res.Exceptions = exceptions
	res.Partial = len(exceptions) > 0
	return res, nil
}
