package query

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pinot/internal/pql"
	"pinot/internal/segment"
)

// pruneCorpus builds segments with disjoint per-segment ranges so every
// prune outcome is reachable: segment i holds days [17000+10i, 17000+10i+9],
// categories cat(3i)..cat(3i+2), buckets [100i, 100i+99] and tag(i)/tag(i+1)
// multi-value tags.
func pruneCorpusSchema(t testing.TB) *segment.Schema {
	t.Helper()
	s, err := segment.NewSchema("ptbl", []segment.FieldSpec{
		{Name: "category", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "bucket", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "tags", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: false},
		{Name: "hits", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true, TimeUnit: "DAYS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pruneCorpus(t testing.TB, nSegs, rowsPer int) []IndexedSegment {
	t.Helper()
	schema := pruneCorpusSchema(t)
	r := rand.New(rand.NewSource(42))
	segs := make([]IndexedSegment, 0, nSegs)
	for si := 0; si < nSegs; si++ {
		b, err := segment.NewBuilder("ptbl", fmt.Sprintf("ptbl_%d", si), schema, segment.IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rowsPer; i++ {
			row := segment.Row{
				fmt.Sprintf("cat%d", 3*si+r.Intn(3)),
				int64(100*si + r.Intn(100)),
				[]string{fmt.Sprintf("tag%d", si), fmt.Sprintf("tag%d", si+1)},
				int64(r.Intn(1000)),
				int64(17000 + 10*si + r.Intn(10)),
			}
			if err := b.Add(row); err != nil {
				t.Fatal(err)
			}
		}
		seg, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, IndexedSegment{Seg: seg})
	}
	return segs
}

// pruneFilters samples WHERE clauses spanning every leaf shape and
// combinator the evaluator handles.
func pruneFilters(r *rand.Rand, n int) []string {
	leaf := func() string {
		switch r.Intn(10) {
		case 0:
			return fmt.Sprintf("category = 'cat%d'", r.Intn(15))
		case 1:
			return fmt.Sprintf("category != 'cat%d'", r.Intn(15))
		case 2:
			return fmt.Sprintf("bucket BETWEEN %d AND %d", r.Intn(500)-50, r.Intn(500))
		case 3:
			return fmt.Sprintf("bucket %s %d", []string{"<", "<=", ">", ">="}[r.Intn(4)], r.Intn(450)-25)
		case 4:
			return fmt.Sprintf("tags = 'tag%d'", r.Intn(6))
		case 5:
			return fmt.Sprintf("tags != 'tag%d'", r.Intn(6))
		case 6:
			return fmt.Sprintf("bucket IN (%d, %d, %d)", r.Intn(450), r.Intn(450), r.Intn(450))
		case 7:
			return fmt.Sprintf("NOT category IN ('cat%d', 'cat%d')", r.Intn(15), r.Intn(15))
		case 8:
			return fmt.Sprintf("day BETWEEN %d AND %d", 17000+r.Intn(45), 17000+r.Intn(45))
		default:
			return fmt.Sprintf("hits <= %d", r.Intn(1100))
		}
	}
	out := make([]string, n)
	for i := range out {
		switch r.Intn(4) {
		case 0:
			out[i] = leaf()
		case 1:
			out[i] = leaf() + " AND " + leaf()
		case 2:
			out[i] = leaf() + " OR " + leaf()
		default:
			out[i] = "NOT " + leaf()
		}
	}
	return out
}

func parseFilter(t testing.TB, where string) pql.Predicate {
	t.Helper()
	q, err := pql.Parse("SELECT count(*) FROM ptbl WHERE " + where)
	if err != nil {
		t.Fatalf("parse %q: %v", where, err)
	}
	return q.Filter
}

// TestPruneOutcomesSound is the property test: whenever the evaluator claims
// matchNone for a segment, executing the filter on that segment (pruning
// off) must match zero documents; matchAll must match every document.
// matchSome claims nothing and is not checked.
func TestPruneOutcomesSound(t *testing.T) {
	segs := pruneCorpus(t, 4, 400)
	r := rand.New(rand.NewSource(7))
	filters := pruneFilters(r, 120)
	off := Options{DisablePruning: true}
	sawNone, sawAll := 0, 0
	for _, where := range filters {
		pred := parseFilter(t, where)
		for _, is := range segs {
			zr, ok := is.Seg.(zoneReader)
			if !ok {
				t.Fatal("immutable segment must expose column metadata")
			}
			outcome := pruneEval(zr, pred)
			if outcome == matchSome {
				continue
			}
			res := runPQL(t, []IndexedSegment{is},
				"SELECT count(*) FROM ptbl WHERE "+where, off)
			got := res.Rows[0][0].(int64)
			switch outcome {
			case matchNone:
				sawNone++
				if got != 0 {
					t.Fatalf("%s on %s: pruned matchNone but %d docs match", where, is.Seg.Name(), got)
				}
			case matchAll:
				sawAll++
				if got != int64(is.Seg.NumDocs()) {
					t.Fatalf("%s on %s: matchAll but %d of %d docs match", where, is.Seg.Name(), got, is.Seg.NumDocs())
				}
			}
		}
	}
	// The corpus is built so both provable outcomes actually occur; a
	// regression that degrades everything to matchSome must not pass.
	if sawNone == 0 || sawAll == 0 {
		t.Fatalf("prune outcomes never proved: none=%d all=%d", sawNone, sawAll)
	}
}

// TestPruneAccountingIdentity: every candidate segment lands in exactly one
// of {PrunedByServer, PrunedByValue, Matched}, and pruned segments still
// count as queried with their docs in TotalDocs.
func TestPruneAccountingIdentity(t *testing.T) {
	segs := pruneCorpus(t, 6, 300)
	schema := pruneCorpusSchema(t)
	r := rand.New(rand.NewSource(9))
	var totalDocs int64
	for _, is := range segs {
		totalDocs += int64(is.Seg.NumDocs())
	}
	for _, where := range pruneFilters(r, 60) {
		res, err := Run(context.Background(), "SELECT count(*) FROM ptbl WHERE "+where, segs, schema, Options{})
		if err != nil {
			t.Fatalf("%s: %v", where, err)
		}
		s := res.Stats
		if s.SegmentsPrunedByServer+s.SegmentsPrunedByValue+s.SegmentsMatched != len(segs) {
			t.Fatalf("%s: accounting broken: %+v over %d segments", where, s, len(segs))
		}
		if s.NumSegmentsQueried != len(segs) {
			t.Fatalf("%s: pruned segments dropped from NumSegmentsQueried: %+v", where, s)
		}
		if s.TotalDocs != totalDocs {
			t.Fatalf("%s: pruned segments dropped from TotalDocs: %+v", where, s)
		}
		if s.SegmentsPrunedByBroker != 0 {
			t.Fatalf("%s: broker counter must stay zero at the engine: %+v", where, s)
		}
	}
}

// TestPruneTimeRangeTier: a conjunctive time filter that misses a segment's
// day range prunes it in the server tier, before zone-map evaluation.
func TestPruneTimeRangeTier(t *testing.T) {
	segs := pruneCorpus(t, 4, 200)
	schema := pruneCorpusSchema(t)
	res, err := Run(context.Background(),
		"SELECT count(*) FROM ptbl WHERE day BETWEEN 17000 AND 17009 AND hits >= 0",
		segs, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SegmentsPrunedByServer != 3 {
		t.Fatalf("time tier pruned %d segments, want 3: %+v", res.Stats.SegmentsPrunedByServer, res.Stats)
	}
	if res.Stats.SegmentsMatched != 1 {
		t.Fatalf("matched %d segments, want 1: %+v", res.Stats.SegmentsMatched, res.Stats)
	}
	// Without a table schema the engine cannot identify the time column;
	// the same query then prunes via zone maps instead — same outcome,
	// different tier.
	res2, err := Run(context.Background(),
		"SELECT count(*) FROM ptbl WHERE day BETWEEN 17000 AND 17009 AND hits >= 0",
		segs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.SegmentsPrunedByValue != 3 || res2.Stats.SegmentsPrunedByServer != 0 {
		t.Fatalf("value tier fallback: %+v", res2.Stats)
	}
}

// TestPruneMatchAllShortCircuit: a filter that provably matches every
// document of a segment is elided, so COUNT/MIN/MAX aggregations fall into
// the metadata-only plan instead of scanning.
func TestPruneMatchAllShortCircuit(t *testing.T) {
	segs := pruneCorpus(t, 3, 250)
	schema := pruneCorpusSchema(t)
	// Every segment's buckets lie inside [0, 10000): provably matches all.
	q := "SELECT count(*), min(hits), max(hits) FROM ptbl WHERE bucket BETWEEN 0 AND 10000"
	on, err := Run(context.Background(), q, segs, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.MetadataOnlySegments != len(segs) {
		t.Fatalf("metadata short-circuit did not fire: %+v", on.Stats)
	}
	if on.Stats.NumEntriesScanned != 0 || on.Stats.NumDocsScanned != 0 {
		t.Fatalf("metadata answer still scanned: %+v", on.Stats)
	}
	off, err := Run(context.Background(), q, segs, schema, Options{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.MetadataOnlySegments != 0 {
		t.Fatalf("pruning off must not elide filters: %+v", off.Stats)
	}
	for i := range on.Rows[0] {
		if on.Rows[0][i] != off.Rows[0][i] {
			t.Fatalf("metadata answer diverges at %d: %v vs %v", i, on.Rows[0], off.Rows[0])
		}
	}
}

// TestPruneDisabledZeroCounters: with pruning off, no pruning counter moves
// and no segment is skipped.
func TestPruneDisabledZeroCounters(t *testing.T) {
	segs := pruneCorpus(t, 4, 100)
	schema := pruneCorpusSchema(t)
	res, err := Run(context.Background(),
		"SELECT count(*) FROM ptbl WHERE day BETWEEN 17000 AND 17004",
		segs, schema, Options{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.SegmentsPrunedByBroker != 0 || s.SegmentsPrunedByServer != 0 || s.SegmentsPrunedByValue != 0 || s.SegmentsMatched != 0 {
		t.Fatalf("pruning counters moved while disabled: %+v", s)
	}
	if s.NumSegmentsQueried != len(segs) {
		t.Fatalf("segments skipped while pruning disabled: %+v", s)
	}
}

// TestPruneMutableSegmentsNeverPruned: consuming segments carry no immutable
// metadata and must always execute.
func TestPruneMutableSegmentsNeverPruned(t *testing.T) {
	schema := pruneCorpusSchema(t)
	ms, err := segment.NewMutableSegment("ptbl", "ptbl_rt", schema, segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		err := ms.Add(segment.Row{"cat0", int64(i), []string{"tag0"}, int64(i), int64(17000 + i%5)})
		if err != nil {
			t.Fatal(err)
		}
	}
	segs := []IndexedSegment{{Seg: ms}}
	// The filter misses every row, but a mutable segment cannot prove it.
	res, err := Run(context.Background(),
		"SELECT count(*) FROM ptbl WHERE bucket > 1000000", segs, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SegmentsMatched != 1 || res.Stats.SegmentsPrunedByValue != 0 {
		t.Fatalf("mutable segment was pruned: %+v", res.Stats)
	}
}

// TestPruneCoercionFailureSurfacesError: an uncoercible literal must degrade
// to matchSome so both modes surface the same execution error.
func TestPruneCoercionFailureSurfacesError(t *testing.T) {
	segs := pruneCorpus(t, 2, 50)
	schema := pruneCorpusSchema(t)
	q := "SELECT count(*) FROM ptbl WHERE category = 3"
	_, errOn := Run(context.Background(), q, segs, schema, Options{})
	_, errOff := Run(context.Background(), q, segs, schema, Options{DisablePruning: true})
	if errOn == nil || errOff == nil {
		t.Fatalf("coercion error lost: on=%v off=%v", errOn, errOff)
	}
	if errOn.Error() != errOff.Error() {
		t.Fatalf("error text diverges: on=%v off=%v", errOn, errOff)
	}
}

// TestMetadataAnswerRoundTrip: a reloaded (Marshal→Unmarshal) segment must
// give the same metadata-only COUNT/MIN/MAX answers as the fresh build — the
// typed zone maps, not the stringified MinValue/MaxValue, are what survives.
func TestMetadataAnswerRoundTrip(t *testing.T) {
	segs := pruneCorpus(t, 2, 300)
	schema := pruneCorpusSchema(t)
	reloaded := make([]IndexedSegment, len(segs))
	for i, is := range segs {
		blob, err := is.Seg.(*segment.Segment).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := segment.Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		reloaded[i] = IndexedSegment{Seg: back}
	}
	for _, q := range []string{
		"SELECT count(*), min(hits), max(hits) FROM ptbl",
		"SELECT min(hits), max(hits) FROM ptbl WHERE bucket >= 0",
	} {
		fresh, err := Run(context.Background(), q, segs, schema, Options{})
		if err != nil {
			t.Fatal(err)
		}
		again, err := Run(context.Background(), q, reloaded, schema, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Stats.MetadataOnlySegments != len(segs) || again.Stats.MetadataOnlySegments != len(segs) {
			t.Fatalf("%s: metadata plan did not fire: fresh %+v reloaded %+v", q, fresh.Stats, again.Stats)
		}
		for i := range fresh.Rows[0] {
			if fresh.Rows[0][i] != again.Rows[0][i] {
				t.Fatalf("%s: reloaded answer diverges: %v vs %v", q, fresh.Rows[0], again.Rows[0])
			}
		}
	}
}

func TestTimeBounds(t *testing.T) {
	cases := []struct {
		where  string
		lo, hi int64
		ok     bool
	}{
		{"day BETWEEN 5 AND 9", 5, 9, true},
		{"day >= 5 AND day < 10", 5, 9, true},
		{"day = 7", 7, 7, true},
		{"day > 3 AND bucket = 1", 4, int64(1<<63 - 1), true},
		{"bucket = 1", 0, 0, false},
		{"day = 5 OR day = 9", 0, 0, false}, // OR does not constrain conjunctively
		{"NOT day = 5", 0, 0, false},
	}
	for _, c := range cases {
		pred := parseFilter(t, c.where)
		lo, hi, ok := TimeBounds(pred, "day")
		if ok != c.ok {
			t.Fatalf("%s: ok=%v want %v", c.where, ok, c.ok)
		}
		if ok && (lo != c.lo || hi != c.hi) {
			t.Fatalf("%s: [%d, %d], want [%d, %d]", c.where, lo, hi, c.lo, c.hi)
		}
	}
}
