package query

import (
	"math/rand"
	"testing"

	"pinot/internal/pql"
	"pinot/internal/segment"
)

type mvRow struct {
	user  int64
	tags  []string
	score int64
}

func mvSchema(t testing.TB) *segment.Schema {
	t.Helper()
	s, err := segment.NewSchema("posts", []segment.FieldSpec{
		{Name: "user", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "tags", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: false},
		{Name: "score", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mvRows(n int, seed int64) []mvRow {
	r := rand.New(rand.NewSource(seed))
	all := []string{"go", "db", "olap", "web", "ml", "infra"}
	rows := make([]mvRow, n)
	for i := range rows {
		k := 1 + r.Intn(3)
		perm := r.Perm(len(all))[:k]
		tags := make([]string, k)
		for j, p := range perm {
			tags[j] = all[p]
		}
		rows[i] = mvRow{user: int64(r.Intn(20)), tags: tags, score: int64(r.Intn(100))}
	}
	return rows
}

func buildMV(t testing.TB, rows []mvRow, cfg segment.IndexConfig) []IndexedSegment {
	t.Helper()
	b, err := segment.NewBuilder("posts", "posts_0", mvSchema(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.Add(segment.Row{r.user, r.tags, r.score}); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return []IndexedSegment{{Seg: seg}}
}

func hasTag(r mvRow, tag string) bool {
	for _, t := range r.tags {
		if t == tag {
			return true
		}
	}
	return false
}

func TestMultiValuePredicates(t *testing.T) {
	rows := mvRows(1500, 4)
	configs := map[string]segment.IndexConfig{
		"scan":     {},
		"inverted": {InvertedColumns: []string{"tags"}},
	}
	for name, cfg := range configs {
		segs := buildMV(t, rows, cfg)
		// Contains-any equality.
		res := runPQL(t, segs, "SELECT count(*) FROM posts WHERE tags = 'go'", Options{})
		var want int64
		for _, r := range rows {
			if hasTag(r, "go") {
				want++
			}
		}
		if got := res.Rows[0][0].(int64); got != want {
			t.Errorf("[%s] tags='go' count = %d, want %d", name, got, want)
		}
		// IN over multi-value.
		res = runPQL(t, segs, "SELECT count(*) FROM posts WHERE tags IN ('go', 'ml')", Options{})
		want = 0
		for _, r := range rows {
			if hasTag(r, "go") || hasTag(r, "ml") {
				want++
			}
		}
		if got := res.Rows[0][0].(int64); got != want {
			t.Errorf("[%s] tags IN count = %d, want %d", name, got, want)
		}
		// Negation over multi-value is contains-none.
		res = runPQL(t, segs, "SELECT count(*) FROM posts WHERE tags NOT IN ('go', 'ml')", Options{})
		want = 0
		for _, r := range rows {
			if !hasTag(r, "go") && !hasTag(r, "ml") {
				want++
			}
		}
		if got := res.Rows[0][0].(int64); got != want {
			t.Errorf("[%s] tags NOT IN count = %d, want %d", name, got, want)
		}
		res = runPQL(t, segs, "SELECT count(*) FROM posts WHERE tags <> 'go'", Options{})
		want = 0
		for _, r := range rows {
			if !hasTag(r, "go") {
				want++
			}
		}
		if got := res.Rows[0][0].(int64); got != want {
			t.Errorf("[%s] tags<>'go' count = %d, want %d", name, got, want)
		}
		// Combined with a single-value predicate.
		res = runPQL(t, segs, "SELECT sum(score) FROM posts WHERE tags = 'db' AND user < 10", Options{})
		var wantSum float64
		for _, r := range rows {
			if hasTag(r, "db") && r.user < 10 {
				wantSum += float64(r.score)
			}
		}
		if got := res.Rows[0][0].(float64); got != wantSum {
			t.Errorf("[%s] combined sum = %v, want %v", name, got, wantSum)
		}
	}
}

func TestMultiValueSelection(t *testing.T) {
	rows := mvRows(50, 5)
	segs := buildMV(t, rows, segment.IndexConfig{})
	res := runPQL(t, segs, "SELECT user, tags FROM posts WHERE tags = 'olap' LIMIT 1000", Options{})
	want := 0
	for _, r := range rows {
		if hasTag(r, "olap") {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		tags, ok := row[1].([]any)
		if !ok || len(tags) == 0 {
			t.Fatalf("tags cell = %#v", row[1])
		}
	}
}

func TestMultiValueRestrictions(t *testing.T) {
	rows := mvRows(20, 6)
	segs := buildMV(t, rows, segment.IndexConfig{})
	if _, err := Run(t.Context(), "SELECT sum(score) FROM posts GROUP BY tags", segs, nil, Options{}); err == nil {
		t.Fatal("GROUP BY on multi-value column accepted")
	}
	if _, err := Run(t.Context(), "SELECT distinctcount(tags) FROM posts", segs, nil, Options{}); err == nil {
		t.Fatal("DISTINCTCOUNT on multi-value column accepted")
	}
}

func TestDistinctCountOnRawMetric(t *testing.T) {
	rows := mvRows(300, 7)
	segs := buildMV(t, rows, segment.IndexConfig{})
	res := runPQL(t, segs, "SELECT distinctcount(score) FROM posts", Options{})
	distinct := map[int64]bool{}
	for _, r := range rows {
		distinct[r.score] = true
	}
	if got := res.Rows[0][0].(int64); got != int64(len(distinct)) {
		t.Fatalf("distinctcount(score) = %d, want %d", got, len(distinct))
	}
}

func TestNotOnMultiValueViaPQLNot(t *testing.T) {
	rows := mvRows(400, 8)
	segs := buildMV(t, rows, segment.IndexConfig{InvertedColumns: []string{"tags"}})
	q, err := pql.Parse("SELECT count(*) FROM posts WHERE NOT tags = 'go'")
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{}
	merged, _, err := eng.Execute(t.Context(), q, segs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, r := range rows {
		if !hasTag(r, "go") {
			want++
		}
	}
	if got := merged.Finalize(q).Rows[0][0].(int64); got != want {
		t.Fatalf("NOT tags='go' = %d, want %d", got, want)
	}
}

func TestOrderByColumnOutsideSelectList(t *testing.T) {
	rows := mvRows(100, 9)
	segs := buildMV(t, rows, segment.IndexConfig{})
	res := runPQL(t, segs, "SELECT user FROM posts ORDER BY score DESC LIMIT 5", Options{})
	if len(res.Columns) != 1 || res.Columns[0] != "user" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 5 || len(res.Rows[0]) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// The returned users must correspond to the 5 highest scores.
	scores := make([]int64, len(rows))
	for i, r := range rows {
		scores[i] = r.score
	}
	// Count how many rows have score >= the 5th-highest.
	sorted := append([]int64(nil), scores...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	cutoff := sorted[4]
	want := map[int64]int{}
	for _, r := range rows {
		if r.score >= cutoff {
			want[r.user]++
		}
	}
	for _, row := range res.Rows {
		u := row[0].(int64)
		if want[u] == 0 {
			t.Fatalf("user %d not among top scorers", u)
		}
		want[u]--
	}
}
