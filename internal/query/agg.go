package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"pinot/internal/pql"
	"pinot/internal/segment"
)

// AggState is the mergeable intermediate state of one aggregation function.
// States accumulate per segment, merge at the server across its segments,
// and merge again at the broker across servers (paper 3.3.3 step 7). All
// fields are exported so states travel over the wire between servers and
// brokers.
type AggState struct {
	Func  pql.AggFunc
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	Seen  bool // whether Min/Max hold a value
	// Distinct holds the distinct value keys for DISTINCTCOUNT. Values
	// are rendered to strings so states of any column type merge.
	Distinct map[string]struct{}
	// Values holds raw observations for PERCENTILE<q> functions, which
	// cannot be answered from pre-aggregated or summary data.
	Values []float64
}

// NewAggState returns an empty state for a function.
func NewAggState(fn pql.AggFunc) *AggState {
	s := &AggState{Func: fn, Min: math.Inf(1), Max: math.Inf(-1)}
	if fn == pql.DistinctCount {
		s.Distinct = make(map[string]struct{})
	}
	return s
}

// isPercentile reports whether the state collects raw values.
func (s *AggState) isPercentile() bool {
	_, ok := pql.PercentileQuantile(s.Func)
	return ok
}

// AddNumeric accumulates one numeric observation.
func (s *AggState) AddNumeric(v float64) {
	s.Count++
	s.Sum += v
	if s.isPercentile() {
		s.Values = append(s.Values, v)
	}
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
	s.Seen = true
}

// AddCount accumulates n rows for COUNT-style states.
func (s *AggState) AddCount(n int64) { s.Count += n }

// AddSum accumulates a pre-aggregated sum of n rows (star-tree path).
func (s *AggState) AddSum(sum float64, n int64) {
	s.Count += n
	s.Sum += sum
	s.Seen = true
}

// AddDistinct accumulates one distinct-count observation.
func (s *AggState) AddDistinct(key string) {
	s.Distinct[key] = struct{}{}
	s.Count++
}

// Merge folds another state of the same function into s.
func (s *AggState) Merge(o *AggState) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Seen {
		if o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
		s.Seen = true
	}
	for k := range o.Distinct {
		if s.Distinct == nil {
			s.Distinct = make(map[string]struct{}, len(o.Distinct))
		}
		s.Distinct[k] = struct{}{}
	}
	s.Values = append(s.Values, o.Values...)
}

// Result finalizes the state: COUNT and DISTINCTCOUNT yield int64, the rest
// float64. AVG of zero rows yields 0.
func (s *AggState) Result() any {
	switch s.Func {
	case pql.Count:
		return s.Count
	case pql.DistinctCount:
		return int64(len(s.Distinct))
	case pql.Sum:
		return s.Sum
	case pql.Avg:
		if s.Count == 0 {
			return float64(0)
		}
		return s.Sum / float64(s.Count)
	case pql.Min:
		if !s.Seen {
			return float64(0)
		}
		return s.Min
	case pql.Max:
		if !s.Seen {
			return float64(0)
		}
		return s.Max
	}
	if q, ok := pql.PercentileQuantile(s.Func); ok {
		return percentileOf(s.Values, q)
	}
	return nil
}

// percentileOf computes the exact q-th percentile (nearest-rank) of the
// observations.
func percentileOf(values []float64, q int) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(float64(q)/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// aggInput reads the per-document input of an aggregation from a column or
// a derived expression: numeric value for SUM/MIN/MAX/AVG, distinct key for
// DISTINCTCOUNT.
type aggInput struct {
	expr pql.Expression
	col  segment.ColumnReader // nil for COUNT(*) and expression inputs
	ev   *exprEval            // set when the argument is a derived expression
}

// newAggInputs resolves the aggregation expressions of a query against a
// segment, binding derived arguments to expression evaluators.
func newAggInputs(env *execEnv, cs columnSource, exprs []pql.Expression, opt Options) ([]aggInput, error) {
	var out []aggInput
	for _, e := range exprs {
		if !e.IsAgg {
			continue
		}
		in := aggInput{expr: e}
		switch {
		case e.Arg != nil:
			ev, err := newExprEval(env, cs, e.Arg, opt)
			if err != nil {
				return nil, err
			}
			if e.Func != pql.Count && e.Func != pql.DistinctCount && !ev.kind.Numeric() {
				return nil, fmt.Errorf("query: %s(%s): expression is not numeric", e.Func, e.Column)
			}
			in.ev = ev
		case e.Column != "*":
			col, err := cs.column(e.Column)
			if err != nil {
				return nil, err
			}
			if e.Func != pql.Count && e.Func != pql.DistinctCount {
				if !col.Spec().Type.Numeric() {
					return nil, fmt.Errorf("query: %s(%s): column is not numeric", e.Func, e.Column)
				}
			}
			if !col.Spec().SingleValue {
				return nil, fmt.Errorf("query: %s(%s): multi-value columns are not aggregable", e.Func, e.Column)
			}
			in.col = col
		case e.Func != pql.Count:
			return nil, fmt.Errorf("query: %s(*) is not supported", e.Func)
		}
		out = append(out, in)
	}
	return out, nil
}

// accumulate adds one document to a state.
func (in aggInput) accumulate(s *AggState, doc int) {
	switch in.expr.Func {
	case pql.Count:
		s.AddCount(1)
	case pql.DistinctCount:
		s.AddDistinct(in.distinctKey(doc))
	default:
		s.AddNumeric(in.numeric(doc))
	}
}

func (in aggInput) numeric(doc int) float64 {
	if in.ev != nil {
		return in.ev.double(doc)
	}
	c := in.col
	if c.HasDictionary() {
		v := c.Value(c.DictID(doc))
		switch x := v.(type) {
		case int64:
			return float64(x)
		case float64:
			return x
		}
		return 0
	}
	return c.Double(doc)
}

func (in aggInput) distinctKey(doc int) string {
	if in.ev != nil {
		return fmt.Sprint(in.ev.value(doc))
	}
	c := in.col
	if c.HasDictionary() {
		return fmt.Sprint(c.Value(c.DictID(doc)))
	}
	if c.Spec().Type.Integral() {
		return fmt.Sprint(c.Long(doc))
	}
	return fmt.Sprint(c.Double(doc))
}

// metadataAnswerable reports whether every aggregation can be answered from
// segment metadata alone (paper 3.3.4: "special query plans are also
// generated for queries that can be answered using segment metadata").
func metadataAnswerable(inputs []aggInput) bool {
	for _, in := range inputs {
		switch in.expr.Func {
		case pql.Count:
			if in.expr.Column != "*" {
				return false
			}
		case pql.Min, pql.Max:
			if in.col == nil || !in.col.Spec().Type.Numeric() {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// answerFromMetadata fills states from segment metadata.
func answerFromMetadata(inputs []aggInput, numDocs int) []*AggState {
	out := make([]*AggState, len(inputs))
	for i, in := range inputs {
		s := NewAggState(in.expr.Func)
		switch in.expr.Func {
		case pql.Count:
			s.AddCount(int64(numDocs))
		case pql.Min:
			// An empty segment (e.g. a freshly opened consuming segment)
			// contributes no observation, not a zero.
			if numDocs > 0 {
				s.AddNumeric(toFloat(in.col.MinValue()))
				s.Count = int64(numDocs)
			}
		case pql.Max:
			if numDocs > 0 {
				s.AddNumeric(toFloat(in.col.MaxValue()))
				s.Count = int64(numDocs)
			}
		}
		out[i] = s
	}
	return out
}

func toFloat(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	case int:
		return float64(x)
	case int32:
		return float64(x)
	case float32:
		return float64(x)
	case string:
		// Persisted column metadata stringifies min/max (fmt.Sprint); a
		// metadata-backed reader must not silently answer MIN/MAX as 0.
		if f, err := strconv.ParseFloat(x, 64); err == nil {
			return f
		}
	}
	return 0
}
