// Benchmarks for dictionary-space expression execution, the issue's
// acceptance fixture: 200k rows over a 1000-cardinality string dimension.
// The A/B pairs time the same query with dictionary space on (memo cache
// warm, as a server would run it) and off (DisableDictExpr) — string
// expressions never compile to kernels, so the disabled mode IS the per-row
// interpreter the paper's derived-column workloads would otherwise pay for.
package query

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pinot/internal/metrics"
	"pinot/internal/qcache"
	"pinot/internal/segment"
)

// dictBenchSegments builds the 200k-row / 1k-cardinality fixture.
func dictBenchSegments(b *testing.B) []IndexedSegment {
	b.Helper()
	schema, err := segment.NewSchema("dbench", []segment.FieldSpec{
		{Name: "name", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "hits", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	bld, err := segment.NewBuilder("dbench", "dbench_seg", schema, segment.IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 200000; i++ {
		row := segment.Row{
			fmt.Sprintf("Name%03d", r.Intn(1000)),
			int64(r.Intn(500)),
			int64(18000 + r.Intn(30)),
		}
		if err := bld.Add(row); err != nil {
			b.Fatal(err)
		}
	}
	seg, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return []IndexedSegment{{Seg: seg}}
}

// dictExprAB times one query under dictionary space (warm memo cache) vs the
// row-path interpreter, cross-checks the rows agree, and reports the ratio —
// the headline number for this subsystem (EXPERIMENTS.md; the issue's bar is
// ≥ 5x on the predicate shape).
func dictExprAB(b *testing.B, q string) {
	segs := dictBenchSegments(b)
	ctx := context.Background()
	cache := qcache.New(qcache.Config{Tier: "dictexpr", Metrics: metrics.NewRegistry()})
	dictOpt := Options{DictMemoCache: cache}
	interpOpt := Options{DisableDictExpr: true}
	// Warm the memo cache once: servers keep memos across queries, so the
	// steady state is what the A side should measure.
	if _, err := Run(ctx, q, segs, nil, dictOpt); err != nil {
		b.Fatal(err)
	}
	var dictNS, interpNS time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rd, err := Run(ctx, q, segs, nil, dictOpt)
		if err != nil {
			b.Fatal(err)
		}
		dictNS += time.Since(start)

		start = time.Now()
		ri, err := Run(ctx, q, segs, nil, interpOpt)
		if err != nil {
			b.Fatal(err)
		}
		interpNS += time.Since(start)

		if len(rd.Rows) != len(ri.Rows) || fmt.Sprint(rd.Rows) != fmt.Sprint(ri.Rows) {
			b.Fatalf("dictionary-space and interpreter runs disagree:\n%+v\nvs\n%+v", rd.Rows, ri.Rows)
		}
	}
	b.ReportMetric(float64(dictNS.Nanoseconds())/float64(b.N), "dict-ns/op")
	b.ReportMetric(float64(interpNS.Nanoseconds())/float64(b.N), "interp-ns/op")
	b.ReportMetric(float64(interpNS)/float64(dictNS), "interp/dict")
}

// BenchmarkDictExprPredicate: an expression predicate selecting one of 1000
// dictionary entries. Dictionary space probes the dictionary and serves a
// vectorized dict-id scan; the row path interprets upper() per row.
func BenchmarkDictExprPredicate(b *testing.B) {
	dictExprAB(b, "SELECT count(*), sum(hits) FROM dbench WHERE upper(name) = 'NAME123'")
}

// BenchmarkDictExprGroupBy: an expression group key over the same column.
// Dictionary space translates dict ids through the memo; the row path
// interprets lower() per row and hashes the rendered string.
func BenchmarkDictExprGroupBy(b *testing.B) {
	dictExprAB(b, "SELECT sum(hits), count(*) FROM dbench GROUP BY lower(name) TOP 10")
}

// BenchmarkIDSetFromList scales the list-form idSet constructor with
// cardinality — the regression guard for the O(n²) insertion sort this
// constructor used to hide (dictionary-space predicates hand it lists that
// scale with cardinality, not just the handful an IN list produces).
func BenchmarkIDSetFromList(b *testing.B) {
	for _, card := range []int{1 << 10, 1 << 14, 1 << 17} {
		// Worst case for the old insertion sort: ids arrive descending.
		ids := make([]int, card/2)
		for i := range ids {
			ids[i] = card - 2 - 2*i
		}
		b.Run(fmt.Sprintf("card%d", card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := idSetFromList(card, ids)
				if s.size() != len(ids) {
					b.Fatal("bad set")
				}
			}
		})
	}
}
