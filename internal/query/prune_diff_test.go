// Differential test for segment pruning: every query must produce
// byte-identical rows whether pruning runs (the default) or not
// (Options.DisablePruning), Stats must agree on everything except the
// pruning counters and the scan savings pruning legitimately buys, and the
// counters themselves must satisfy the accounting identity.
package query

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"pinot/internal/segment"
)

func runBothPruneModes(t *testing.T, q string, segs []IndexedSegment, schema *segment.Schema, candidates int) {
	t.Helper()
	ctx := context.Background()
	on, errOn := Run(ctx, q, segs, schema, Options{})
	off, errOff := Run(ctx, q, segs, schema, Options{DisablePruning: true})
	if (errOn == nil) != (errOff == nil) {
		t.Fatalf("%q: error mismatch: on=%v off=%v", q, errOn, errOff)
	}
	if errOn != nil {
		if errOn.Error() != errOff.Error() {
			t.Fatalf("%q: error text mismatch: on=%v off=%v", q, errOn, errOff)
		}
		return
	}

	// Rows and columns must be byte-identical.
	type payload struct {
		Columns []string
		Rows    [][]any
	}
	oj, err := json.Marshal(payload{on.Columns, on.Rows})
	if err != nil {
		t.Fatalf("%q: marshal: %v", q, err)
	}
	fj, err := json.Marshal(payload{off.Columns, off.Rows})
	if err != nil {
		t.Fatalf("%q: marshal: %v", q, err)
	}
	if string(oj) != string(fj) {
		t.Fatalf("%q: results diverge:\npruned:   %s\nunpruned: %s", q, oj, fj)
	}

	// Candidate accounting must agree: pruning changes how segments are
	// answered, never how many were considered or how many matched.
	so, sf := on.Stats, off.Stats
	if so.NumSegmentsQueried != sf.NumSegmentsQueried ||
		so.NumSegmentsMatched != sf.NumSegmentsMatched ||
		so.TotalDocs != sf.TotalDocs {
		t.Fatalf("%q: candidate accounting diverges:\npruned:   %+v\nunpruned: %+v", q, so, sf)
	}
	// Pruning may only reduce scan work, never add any.
	if so.NumDocsScanned > sf.NumDocsScanned || so.NumEntriesScanned > sf.NumEntriesScanned {
		t.Fatalf("%q: pruning increased scan work:\npruned:   %+v\nunpruned: %+v", q, so, sf)
	}
	// Unpruned mode must not move any pruning counter.
	if sf.SegmentsPrunedByBroker != 0 || sf.SegmentsPrunedByServer != 0 ||
		sf.SegmentsPrunedByValue != 0 || sf.SegmentsMatched != 0 {
		t.Fatalf("%q: pruning counters moved while disabled: %+v", q, sf)
	}
	// Pruned mode must account for every candidate exactly once.
	if so.SegmentsPrunedByServer+so.SegmentsPrunedByValue+so.SegmentsMatched != candidates {
		t.Fatalf("%q: accounting identity broken over %d candidates: %+v", q, candidates, so)
	}
}

// prunedDiffQueries samples 200+ query texts over the prune corpus: all
// aggregation shapes, group-bys, selections with ORDER BY/LIMIT, and WHERE
// clauses engineered so all three prune outcomes occur across segments.
func prunedDiffQueries(r *rand.Rand, n int) []string {
	where := func() string {
		switch r.Intn(9) {
		case 0:
			return fmt.Sprintf(" WHERE category = 'cat%d'", r.Intn(16))
		case 1:
			return fmt.Sprintf(" WHERE day BETWEEN %d AND %d", 17000+r.Intn(45), 17000+r.Intn(45))
		case 2:
			return fmt.Sprintf(" WHERE bucket BETWEEN %d AND %d", r.Intn(500)-50, r.Intn(550))
		case 3:
			return fmt.Sprintf(" WHERE tags = 'tag%d'", r.Intn(7))
		case 4:
			return fmt.Sprintf(" WHERE NOT tags IN ('tag%d', 'tag%d')", r.Intn(6), r.Intn(6))
		case 5:
			return fmt.Sprintf(" WHERE category != 'cat%d' AND day >= %d", r.Intn(16), 17000+r.Intn(40))
		case 6:
			return fmt.Sprintf(" WHERE bucket IN (%d, %d) OR category = 'cat%d'", r.Intn(450), r.Intn(450), r.Intn(16))
		case 7:
			return fmt.Sprintf(" WHERE hits < %d AND bucket >= %d", r.Intn(1100), r.Intn(450))
		default:
			return ""
		}
	}
	out := make([]string, n)
	for i := range out {
		switch r.Intn(6) {
		case 0:
			out[i] = "SELECT count(*), sum(hits) FROM ptbl" + where()
		case 1:
			out[i] = "SELECT min(hits), max(hits), avg(hits) FROM ptbl" + where()
		case 2:
			out[i] = "SELECT distinctcount(bucket) FROM ptbl" + where()
		case 3:
			out[i] = fmt.Sprintf("SELECT sum(hits) FROM ptbl%s GROUP BY category TOP %d", where(), 1+r.Intn(10))
		case 4:
			out[i] = fmt.Sprintf("SELECT category, bucket, hits FROM ptbl%s ORDER BY hits DESC, bucket LIMIT %d", where(), 1+r.Intn(25))
		default:
			out[i] = fmt.Sprintf("SELECT count(*) FROM ptbl%s GROUP BY category, bucket TOP %d", where(), 1+r.Intn(12))
		}
	}
	return out
}

func TestPruningDifferential(t *testing.T) {
	segs := pruneCorpus(t, 5, 500)
	schema := pruneCorpusSchema(t)
	// A realtime (mutable) segment rides along: never prunable, always a
	// candidate that must land in SegmentsMatched.
	ms, err := segment.NewMutableSegment("ptbl", "ptbl_rt", schema, segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(123))
	for i := 0; i < 400; i++ {
		row := segment.Row{
			fmt.Sprintf("cat%d", r.Intn(15)),
			int64(r.Intn(500)),
			[]string{fmt.Sprintf("tag%d", r.Intn(6))},
			int64(r.Intn(1000)),
			int64(17000 + r.Intn(50)),
		}
		if err := ms.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	segs = append(segs, IndexedSegment{Seg: ms})

	queries := prunedDiffQueries(r, 220)
	for _, q := range queries {
		runBothPruneModes(t, q, segs, schema, len(segs))
	}
}
