package query

import (
	"fmt"

	"pinot/internal/bitmap"
	"pinot/internal/pql"
	"pinot/internal/qcache"
	"pinot/internal/segment"
)

// Options tune physical planning. The zero value is standard Pinot
// behaviour; the Druid baseline flips ForceBitmap/DisableSorted/
// DisableStarTree to model Druid's execution (paper section 6).
type Options struct {
	// ForceBitmap always evaluates dictionary predicates through the
	// inverted index when one exists, even when a sorted-range or scan
	// plan would be cheaper.
	ForceBitmap bool
	// DisableSorted ignores physical sort order during planning.
	DisableSorted bool
	// DisableStarTree ignores star-tree indexes during planning.
	DisableStarTree bool
	// DisableMetadataPlans disables metadata-only answers (COUNT(*) etc).
	DisableMetadataPlans bool
	// ScanSelectivityCutoff is the fraction of segment documents above
	// which an inverted-index plan falls back to an iterator scan (paper
	// 4.2: scanning beats bitmap operations on large bitmaps). Zero
	// means the default of 0.4.
	ScanSelectivityCutoff float64
	// DisableVectorization forces row-at-a-time execution: no block
	// iterators, no batch unpack, no typed aggregation kernels, no bitmap
	// AND/OR collapse. Results and Stats are identical in both modes; the
	// flag exists for differential testing and A/B benchmarks.
	DisableVectorization bool
	// DisablePruning turns off zone-map / bloom / time-range segment
	// pruning and the provably-matches-all filter elision that feeds the
	// metadata-only plans. Rows are identical either way; the flag exists
	// for differential testing and to keep the Druid baseline pruning-free.
	DisablePruning bool
	// DisableExprCompile forces every scalar expression onto the sandboxed
	// per-row interpreter instead of the compiled block kernels. Results and
	// Stats are identical in both modes; the flag exists for differential
	// testing and A/B benchmarks.
	DisableExprCompile bool
	// GroupStateLimitBytes caps the estimated group-by state of one query
	// across all its segments on this node. Past the cap the query
	// degrades to a partial result with an exception instead of growing
	// unbounded state (OOM protection). Zero means uncapped.
	GroupStateLimitBytes int64
	// DisableDictExpr forces expression predicates, expression group keys
	// and expression aggregate arguments onto the row-at-a-time paths
	// (compiled kernel or interpreter) instead of dictionary-space
	// evaluation. Results are identical in both modes; Stats may differ
	// only in DictExprSegments and in counters that legitimately follow the
	// plan (a dict-space predicate that proves a segment empty scans zero
	// docs). The flag exists for differential testing and A/B benchmarks.
	DisableDictExpr bool
	// DictMemoCache, when set, caches dictionary-space expression memos
	// across queries keyed on (segment, canonical expression). Only
	// immutable segments are cached; the server invalidates a segment's
	// scope on install and unload. Nil means memos are rebuilt per query.
	DictMemoCache *qcache.Cache
}

func (o Options) scanCutoff() float64 {
	if o.ScanSelectivityCutoff > 0 {
		return o.ScanSelectivityCutoff
	}
	return 0.4
}

// columnsOf resolves a column, surfacing schema-evolution default columns
// for fields the segment predates.
type columnSource struct {
	seg    segment.Reader
	schema *segment.Schema // table-level schema, may be newer than segment's
}

func (cs columnSource) column(name string) (segment.ColumnReader, error) {
	if c := cs.seg.Column(name); c != nil {
		return c, nil
	}
	if cs.schema != nil {
		if f, ok := cs.schema.Field(name); ok {
			return segment.NewDefaultColumn(f, cs.seg.NumDocs()), nil
		}
	}
	return nil, fmt.Errorf("query: unknown column %q", name)
}

// buildFilter compiles a predicate tree into a physical doc-id set for one
// segment, choosing operators per paper section 4.2: sorted-column ranges
// first, inverted-index bitmaps next, iterator scans as fallback.
func buildFilter(env *execEnv, cs columnSource, pred pql.Predicate, opt Options, stats *Stats) (docIDSet, error) {
	n := cs.seg.NumDocs()
	if pred == nil {
		return &allDocIDSet{numDocs: n}, nil
	}
	switch p := pred.(type) {
	case pql.And:
		children := make([]docIDSet, 0, len(p.Children))
		for _, c := range p.Children {
			child, err := buildFilter(env, cs, c, opt, stats)
			if err != nil {
				return nil, err
			}
			if _, empty := child.(emptyDocIDSet); empty {
				return emptyDocIDSet{}, nil
			}
			if _, all := child.(*allDocIDSet); all {
				continue
			}
			children = append(children, child)
		}
		if !opt.DisableVectorization {
			children = collapseBitmapChildren(children, true)
		}
		switch len(children) {
		case 0:
			return &allDocIDSet{numDocs: n}, nil
		case 1:
			return children[0], nil
		}
		return &andDocIDSet{children: children}, nil
	case pql.Or:
		children := make([]docIDSet, 0, len(p.Children))
		for _, c := range p.Children {
			child, err := buildFilter(env, cs, c, opt, stats)
			if err != nil {
				return nil, err
			}
			if _, all := child.(*allDocIDSet); all {
				return child, nil
			}
			if _, empty := child.(emptyDocIDSet); empty {
				continue
			}
			children = append(children, child)
		}
		if !opt.DisableVectorization {
			children = collapseBitmapChildren(children, false)
		}
		switch len(children) {
		case 0:
			return emptyDocIDSet{}, nil
		case 1:
			return children[0], nil
		}
		return &orDocIDSet{children: children}, nil
	case pql.Not:
		child, err := buildFilter(env, cs, p.Child, opt, stats)
		if err != nil {
			return nil, err
		}
		return &notDocIDSet{child: child, numDocs: n}, nil
	case pql.ExprCompare:
		// Dictionary space first: a deterministic single-dict-column
		// comparison compiles to the same idSet machinery as a plain
		// predicate, pruning and short-circuiting without touching rows.
		if col, set, ok := dictExprIDSet(cs, p, opt, env.table); ok {
			env.dictExprUsed = true
			return serveIDSet(col, set, n, opt, stats), nil
		}
		return buildExprFilter(env, cs, p, opt, stats)
	default:
		return buildLeafFilter(cs, pred, opt, stats)
	}
}

// collapseBitmapChildren merges pure-bitmap AND/OR children into one bitmap
// via container-level And/Or, which beats the leapfrog when the inputs are of
// comparable size (one 64-bit word op covers 64 candidate docs). ORs always
// win; ANDs only when the smallest bitmap still spans at least a block and
// the sizes are within 64x, otherwise leapfrogging from the small side skips
// most of the large bitmap. Stats are unaffected: bitmap iteration counts no
// entries (posting reads were charged at build time) and the candidate
// sequence probing any remaining scan children depends only on the combined
// member set, which collapse preserves.
func collapseBitmapChildren(children []docIDSet, isAnd bool) []docIDSet {
	var bms []*bitmap.Bitmap
	rest := make([]docIDSet, 0, len(children))
	for _, c := range children {
		if b, ok := c.(*bitmapDocIDSet); ok {
			bms = append(bms, b.bm)
		} else {
			rest = append(rest, c)
		}
	}
	if len(bms) < 2 {
		return children
	}
	if isAnd {
		minC, maxC := bms[0].Cardinality(), bms[0].Cardinality()
		for _, bm := range bms[1:] {
			c := bm.Cardinality()
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		if minC < blockSize || maxC > minC*64 {
			return children
		}
		return append(rest, &bitmapDocIDSet{bm: bitmap.AndAll(bms...)})
	}
	return append(rest, &bitmapDocIDSet{bm: bitmap.OrAll(bms...)})
}

func buildLeafFilter(cs columnSource, pred pql.Predicate, opt Options, stats *Stats) (docIDSet, error) {
	name := pql.PredicateColumns(pred)
	if len(name) != 1 {
		return nil, fmt.Errorf("query: leaf predicate must reference one column, got %v", name)
	}
	col, err := cs.column(name[0])
	if err != nil {
		return nil, err
	}
	n := cs.seg.NumDocs()

	// Raw (no-dictionary) columns can only be scanned.
	if !col.HasDictionary() {
		match, err := valueMatcher(col.Spec().Type, pred)
		if err != nil {
			return nil, err
		}
		integral := col.Spec().Type.Integral()
		sds := &scanDocIDSet{numDocs: n, match: func(doc int) bool {
			if stats != nil {
				stats.NumEntriesScanned++
			}
			if integral {
				return match(col.Long(doc))
			}
			return match(col.Double(doc))
		}}
		if !opt.DisableVectorization {
			var matchLong func(int64) bool
			var matchDouble func(float64) bool
			if integral {
				if matchLong, err = longMatcher(col.Spec().Type, pred); err != nil {
					return nil, err
				}
			} else {
				if matchDouble, err = doubleMatcher(col.Spec().Type, pred); err != nil {
					return nil, err
				}
			}
			sds.newBlockIter = func() blockIterator {
				return &rawScanBlockIterator{col: col, stats: stats, numDocs: n, matchLong: matchLong, matchDouble: matchDouble}
			}
		}
		return sds, nil
	}

	// Multi-value columns have contains-any semantics: negated predicates
	// must complement at the document level, not the dictionary level.
	if !col.Spec().SingleValue {
		if pos, negated := positiveForm(pred); negated {
			child, err := buildLeafFilter(cs, pos, opt, stats)
			if err != nil {
				return nil, err
			}
			return &notDocIDSet{child: child, numDocs: n}, nil
		}
	}

	set, err := compileLeaf(col, pred)
	if err != nil {
		return nil, err
	}
	return serveIDSet(col, set, n, opt, stats), nil
}

// serveIDSet picks the physical operator for a compiled dict-id set —
// the operator ladder of paper section 4.2, shared by plain-column leaf
// predicates and dictionary-space expression predicates.
func serveIDSet(col segment.ColumnReader, set *idSet, n int, opt Options, stats *Stats) docIDSet {
	switch {
	case set.isEmpty():
		return emptyDocIDSet{}
	case set.isAll():
		// Predicate matches every value of the segment — the special
		// case called out in paper 3.3.4.
		return &allDocIDSet{numDocs: n}
	}

	// Sorted physical order: contiguous doc ranges, cheapest operator.
	if !opt.DisableSorted && !opt.ForceBitmap && col.IsSorted() {
		var ranges []segment.DocRange
		set.each(func(id int) {
			s, e := col.DocIDRange(id)
			if s < 0 {
				return
			}
			if len(ranges) > 0 && ranges[len(ranges)-1].End == s {
				ranges[len(ranges)-1].End = e
			} else {
				ranges = append(ranges, segment.DocRange{Start: s, End: e})
			}
		})
		return &rangeDocIDSet{ranges: ranges}
	}

	// Inverted index, unless the expected posting mass is so large that
	// an iterator scan is cheaper (paper 4.2).
	if col.HasInverted() {
		expected := float64(set.size()) / float64(max(col.Cardinality(), 1))
		if opt.ForceBitmap || expected <= opt.scanCutoff() {
			bm := unionBitmaps(col, set)
			if stats != nil {
				stats.NumEntriesScanned += int64(bm.Cardinality())
			}
			return &bitmapDocIDSet{bm: bm}
		}
	}

	// Iterator scan over the forward index. Every evaluated document
	// counts as a scanned entry.
	if col.Spec().SingleValue {
		sds := &scanDocIDSet{numDocs: n, match: func(doc int) bool {
			if stats != nil {
				stats.NumEntriesScanned++
			}
			return set.contains(col.DictID(doc))
		}}
		if !opt.DisableVectorization {
			lookup := set.lookupTable()
			sds.newBlockIter = func() blockIterator {
				return newDictScanBlockIterator(col, lookup, n, stats)
			}
		}
		return sds
	}
	var buf []int
	return &scanDocIDSet{numDocs: n, match: func(doc int) bool {
		buf = col.DictIDsMV(doc, buf[:0])
		if stats != nil {
			stats.NumEntriesScanned += int64(len(buf))
		}
		for _, id := range buf {
			if set.contains(id) {
				return true
			}
		}
		return false
	}}
}

// positiveForm rewrites a negated leaf predicate into its positive
// counterpart, reporting whether a rewrite happened.
func positiveForm(pred pql.Predicate) (pql.Predicate, bool) {
	switch p := pred.(type) {
	case pql.Comparison:
		if p.Op == pql.OpNeq {
			return pql.Comparison{Column: p.Column, Op: pql.OpEq, Value: p.Value}, true
		}
	case pql.In:
		if p.Negated {
			return pql.In{Column: p.Column, Values: p.Values}, true
		}
	}
	return pred, false
}
