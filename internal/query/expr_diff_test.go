// Differential test for the expression pipeline: every expression-bearing
// query must produce byte-identical finalized results AND identical Stats
// whether expressions run through compiled block kernels (the default) or
// the sandboxed per-row interpreter (Options.DisableExprCompile), in both
// the vectorized and scalar engines. The pool is seeded-random and spans
// expression aggregation inputs, expression filters (including the batch
// comparison path, which needs both sides compiled) and expression
// group-bys (including the single-long fast path).
package query_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"pinot/internal/query"
	"pinot/internal/segment"
)

// runExprModes runs one query in all four mode combinations and requires
// identical output: compiled/vectorized (default), compiled/scalar,
// interpreted/vectorized and interpreted/scalar.
func runExprModes(t *testing.T, label, q string, segs []query.IndexedSegment, schema *segment.Schema) {
	t.Helper()
	ctx := context.Background()
	type mode struct {
		name string
		opt  query.Options
	}
	modes := []mode{
		{"compiled/vec", query.Options{}},
		{"compiled/scalar", query.Options{DisableVectorization: true}},
		{"interp/vec", query.Options{DisableExprCompile: true}},
		{"interp/scalar", query.Options{DisableExprCompile: true, DisableVectorization: true}},
	}
	type outcome struct {
		stats query.Stats
		body  string
		err   error
	}
	var base outcome
	for i, m := range modes {
		res, err := query.Run(ctx, q, segs, schema, m.opt)
		o := outcome{err: err}
		if err == nil {
			o.stats = res.Stats
			res.QueryID, res.Trace = "", nil
			b, merr := json.Marshal(res)
			if merr != nil {
				t.Fatalf("%s: %q: marshal: %v", label, q, merr)
			}
			o.body = string(b)
		}
		if i == 0 {
			base = o
			continue
		}
		if (o.err == nil) != (base.err == nil) {
			t.Fatalf("%s: %q: error mismatch: %s=%v vs %s=%v", label, q, modes[0].name, base.err, m.name, o.err)
		}
		if o.err != nil {
			if o.err.Error() != base.err.Error() {
				t.Fatalf("%s: %q: error text mismatch:\n%s: %v\n%s: %v", label, q, modes[0].name, base.err, m.name, o.err)
			}
			continue
		}
		if o.stats != base.stats {
			t.Fatalf("%s: %q: stats diverge:\n%s: %+v\n%s: %+v", label, q, modes[0].name, base.stats, m.name, o.stats)
		}
		if o.body != base.body {
			t.Fatalf("%s: %q: results diverge:\n%s: %s\n%s: %s", label, q, modes[0].name, base.body, m.name, o.body)
		}
	}
}

// exprDiffQueries samples expression-bearing queries over the mixed fixture
// schema (category/bucket/tags/hits/score/day).
func exprDiffQueries(r *rand.Rand, n int) []string {
	numExpr := func() string {
		switch r.Intn(8) {
		case 0:
			return fmt.Sprintf("hits + %d", r.Intn(50))
		case 1:
			return fmt.Sprintf("(hits - %d) * %d", r.Intn(500), 1+r.Intn(4))
		case 2:
			return fmt.Sprintf("score * %d.5", r.Intn(3))
		case 3:
			return fmt.Sprintf("abs(score - %d)", r.Intn(1000))
		case 4:
			return fmt.Sprintf("abs(hits - %d)", r.Intn(1000))
		case 5:
			return fmt.Sprintf("hits / %d", 1+r.Intn(9))
		case 6:
			return fmt.Sprintf("timeBucket(day, %d)", 1+r.Intn(10))
		default:
			return fmt.Sprintf("bucket * %d + hits", 1+r.Intn(5))
		}
	}
	where := func() string {
		switch r.Intn(9) {
		case 0:
			return fmt.Sprintf(" WHERE hits + bucket > %d", r.Intn(1000))
		case 1:
			return fmt.Sprintf(" WHERE abs(score - %d) < %d", r.Intn(1200), 100+r.Intn(400))
		case 2:
			return fmt.Sprintf(" WHERE timeBucket(day, 7) = %d", 16996+7*r.Intn(3))
		case 3:
			return fmt.Sprintf(" WHERE upper(category) = 'CAT%d'", r.Intn(7))
		case 4:
			return fmt.Sprintf(" WHERE concat(category, '-', bucket) = 'cat%d-%d'", r.Intn(6), r.Intn(40))
		case 5:
			return fmt.Sprintf(" WHERE hits * 2 <= score + %d", r.Intn(500))
		case 6:
			// Mixes an expression leaf with classic index-friendly leaves
			// under AND/OR, so pruning and bitmap collapse interact with
			// the expression filter.
			return fmt.Sprintf(" WHERE category = 'cat%d' AND hits - %d >= 0", r.Intn(6), r.Intn(800))
		case 7:
			return fmt.Sprintf(" WHERE NOT (hits + %d < score)", r.Intn(300))
		default:
			return ""
		}
	}
	groupBy := func() string {
		switch r.Intn(4) {
		case 0:
			return fmt.Sprintf(" GROUP BY timeBucket(day, %d)", 1+r.Intn(10))
		case 1:
			return " GROUP BY concat(category, bucket)"
		case 2:
			return fmt.Sprintf(" GROUP BY category, timeBucket(day, %d)", 2+r.Intn(6))
		default:
			return " GROUP BY lower(category)"
		}
	}
	out := make([]string, n)
	for i := range out {
		switch r.Intn(6) {
		case 0:
			out[i] = fmt.Sprintf("SELECT sum(%s), count(*) FROM difftbl%s", numExpr(), where())
		case 1:
			out[i] = fmt.Sprintf("SELECT min(%s), max(%s) FROM difftbl%s", numExpr(), numExpr(), where())
		case 2:
			out[i] = fmt.Sprintf("SELECT avg(%s) FROM difftbl%s", numExpr(), where())
		case 3:
			out[i] = fmt.Sprintf("SELECT distinctcount(timeBucket(day, %d)) FROM difftbl%s", 1+r.Intn(6), where())
		case 4:
			out[i] = fmt.Sprintf("SELECT sum(%s) FROM difftbl%s%s TOP %d", numExpr(), where(), groupBy(), 1+r.Intn(12))
		default:
			out[i] = fmt.Sprintf("SELECT count(*), sum(hits) FROM difftbl%s%s TOP %d", where(), groupBy(), 1+r.Intn(10))
		}
	}
	return out
}

func TestExprCompiledVsInterpreterDifferential(t *testing.T) {
	schema := diffSchema(t)
	r := rand.New(rand.NewSource(271))

	build := func(name string, cfg segment.IndexConfig, rows int) query.IndexedSegment {
		b, err := segment.NewBuilder("difftbl", name, schema, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := b.Add(diffRow(r)); err != nil {
				t.Fatal(err)
			}
		}
		seg, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return query.IndexedSegment{Seg: seg}
	}
	segs := []query.IndexedSegment{
		build("ediff_plain", segment.IndexConfig{}, 2500),
		build("ediff_inv", segment.IndexConfig{InvertedColumns: []string{"category", "bucket"}}, 2500),
	}
	// A realtime (mutable) segment: unsorted dictionaries and the
	// mutableColumn batch readers feed the kernels too.
	ms, err := segment.NewMutableSegment("difftbl", "ediff_rt", schema, segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		if err := ms.Add(diffRow(r)); err != nil {
			t.Fatal(err)
		}
	}
	segs = append(segs, query.IndexedSegment{Seg: ms})

	queries := exprDiffQueries(r, 220)
	for _, q := range queries {
		runExprModes(t, "exprdiff", q, segs, schema)
	}

	// Hand-picked edge shapes: interpreter-only builtins in filters and
	// group-bys, constant-width division, derived columns under NOT, and
	// expressions whose kernels decline (string ops) mixed with ones that
	// compile — both sides of the batch-comparison gate.
	edge := []string{
		"SELECT count(*) FROM difftbl WHERE lower(category) = 'cat3'",
		"SELECT sum(hits) FROM difftbl WHERE concat(category, '-', bucket) = 'cat1-3' GROUP BY category TOP 5",
		"SELECT sum(hits + 0) FROM difftbl",
		"SELECT sum(hits) FROM difftbl WHERE hits - hits = 0",
		"SELECT count(*) FROM difftbl WHERE NOT abs(hits - 500) > 400",
		// Division by a zero constant yields +Inf per IEEE; compare it in the
		// filter (an Inf aggregate itself would not be JSON-marshalable).
		"SELECT count(*) FROM difftbl WHERE score / 0 > hits",
		"SELECT sum(hits) FROM difftbl GROUP BY timeBucket(day, 1) TOP 20",
		"SELECT count(*) FROM difftbl WHERE timeBucket(day, 7) <> timeBucket(day, 14)",
		"SELECT max(abs(score) * 2 - abs(hits)) FROM difftbl WHERE score / 2 > hits / 3",
	}
	for _, q := range edge {
		runExprModes(t, "exprdiff/edge", q, segs, schema)
	}
}
