package query

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"pinot/internal/expr"
	"pinot/internal/pql"
	"pinot/internal/segment"
)

// Dictionary-space expression execution (paper 3.3: dictionary encoding
// makes per-value work scale with cardinality, not row count). A
// deterministic expression over a single dict-encoded column takes at most
// Cardinality distinct inputs, so:
//
//   - an expression predicate evaluates once per dictionary entry into the
//     same idSet machinery plain predicates compile to — it is then served
//     by sorted ranges, inverted bitmaps or vectorized dict scans, prunes
//     segments it provably cannot match, and short-circuits under AND/OR;
//   - an expression group key or aggregate argument reads a per-segment
//     memo (dictID → value) instead of re-interpreting per row.
//
// Memos are cached across queries in Options.DictMemoCache, keyed on
// (segment, canonical expression text), immutable segments only, with the
// same install/unload invalidation as the server aggregate cache.
//
// Eligibility is deliberately conservative: any static type error, any
// per-entry evaluation error, any shape the analysis does not understand
// falls back to the row paths, which reproduce the exact error (or lack of
// one) the query always had. Dictionary space must never change results,
// errors, or anything in Stats beyond DictExprSegments.

// dictExprIDSet compiles an expression comparison into a dict-id set when
// the predicate is dictionary-space eligible: exactly one referenced
// column, single-valued and dict-encoded, both sides deterministic and
// statically well-typed. Returns the resolved column, the matching id set,
// and ok=false for any shape that must stay on the row path.
func dictExprIDSet(cs columnSource, p pql.ExprCompare, opt Options, table string) (segment.ColumnReader, *idSet, bool) {
	if opt.DisableDictExpr {
		return nil, nil, false
	}
	cols := pql.PredicateColumns(p)
	if len(cols) != 1 {
		return nil, nil, false
	}
	col, err := cs.column(cols[0])
	if err != nil || !col.HasDictionary() || !col.Spec().SingleValue {
		return nil, nil, false
	}
	if !pql.ExprDeterministic(p.LHS) || !pql.ExprDeterministic(p.RHS) {
		return nil, nil, false
	}
	kindOf := func(name string) (expr.Kind, bool) {
		if name != cols[0] {
			return 0, false
		}
		return expr.KindOf(col.Spec().Type), true
	}
	lk, err := expr.Infer(p.LHS, kindOf)
	if err != nil {
		return nil, nil, false
	}
	rk, err := expr.Infer(p.RHS, kindOf)
	if err != nil {
		return nil, nil, false
	}
	// A static type error must surface exactly as the row path raises it —
	// decline instead of erroring here.
	if expr.CompareKinds(p.Op, lk, rk) != nil {
		return nil, nil, false
	}

	// Case-folded dictionary probe: lower/upper(col) =/<> 'lit' resolves by
	// enumerating the literal's case preimages and probing the dictionary —
	// no memo, no per-entry evaluation at all.
	if set, ok := caseFoldProbe(col, p); ok {
		return col, set, true
	}

	lv, ok := dictSideValues(cs, col, cols[0], p.LHS, lk, opt, table)
	if !ok {
		return nil, nil, false
	}
	rv, ok := dictSideValues(cs, col, cols[0], p.RHS, rk, opt, table)
	if !ok {
		return nil, nil, false
	}
	card := col.Cardinality()
	var ids []int
	for id := 0; id < card; id++ {
		match, err := expr.CompareValues(p.Op, lv(id), rv(id))
		if err != nil {
			return nil, nil, false
		}
		if match {
			ids = append(ids, id)
		}
	}
	return col, idSetFromList(card, ids), true
}

// dictSideValues resolves one side of an eligible comparison to a
// value-per-dict-id function: a constant side evaluates once, a
// column-bearing side goes through the per-segment memo.
func dictSideValues(cs columnSource, col segment.ColumnReader, colName string, e pql.Expr, kind expr.Kind, opt Options, table string) (func(id int) any, bool) {
	if len(pql.ExprColumns(e)) == 0 {
		v, err := expr.Eval(expr.NewCtx(expr.Limits{}), e, func(string) any { return nil })
		if err != nil {
			// A constant that errors (limit blowout) errors on every row of
			// the row path too; decline so it does.
			return nil, false
		}
		return func(int) any { return v }, true
	}
	m, ok := dictMemoFor(cs, col, colName, e, kind, opt, table)
	if !ok {
		return nil, false
	}
	return m.Value, true
}

// dictMemoFor builds (or fetches from the cross-query cache) the
// dictionary-space memo of one expression over one segment column. Only
// immutable segments are cached: a consuming segment's dictionary grows
// under it. ok=false means some dictionary entry failed to evaluate and the
// expression must stay on the row path.
func dictMemoFor(cs columnSource, col segment.ColumnReader, colName string, e pql.Expr, kind expr.Kind, opt Options, table string) (*expr.DictMemo, bool) {
	cache := opt.DictMemoCache
	if cache != nil {
		if _, mutable := cs.seg.(*segment.MutableSegment); mutable {
			cache = nil
		}
	}
	key := pql.CanonicalExpr(e).String()
	if cache != nil {
		if v, ok := cache.Get(cs.seg.Name(), table, key); ok {
			m := v.(*expr.DictMemo)
			// A schema-evolution default column shares the segment scope
			// with the real column it may later be replaced by; length is
			// part of the contract.
			if m.Len() == col.Cardinality() {
				return m, true
			}
		}
	}
	m, err := expr.EvalOverDict(expr.NewCtx(expr.Limits{}), e, colName, col.Value, col.Cardinality(), kind)
	if err != nil {
		return nil, false
	}
	if cache != nil {
		cache.Put(cs.seg.Name(), table, key, m, m.SizeBytes())
	}
	return m, true
}

// maxFoldVariants caps the case-preimage cartesian product a probe will
// enumerate — 512 covers a nine-letter ASCII word (2⁹ casings) with room for
// a few three-way orbit runes; past it the memo path handles the predicate.
// Each variant costs one binary-search IndexOf, so the cap also bounds probe
// work well under one dictionary pass.
const maxFoldVariants = 512

// caseFoldProbe serves lower/upper(col) =/<> 'literal' over a sorted
// dictionary by probing the literal's case preimages with binary-search
// IndexOf — O(variants · log card) instead of O(card) evaluations. The
// preimage set is exact for Go's rune-wise simple case mapping (including
// the Kelvin sign, long s, and the dotted/dotless i pairs outside
// SimpleFold's orbits), so membership matches strings.ToLower/ToUpper
// entry by entry.
func caseFoldProbe(col segment.ColumnReader, p pql.ExprCompare) (*idSet, bool) {
	if p.Op != pql.OpEq && p.Op != pql.OpNeq {
		return nil, false
	}
	fn, target, ok := probeShape(p)
	if !ok || !col.DictSorted() {
		return nil, false
	}
	lower := fn == "lower"
	card := col.Cardinality()
	// Guard: the row path applies the interpreter's string limit to every
	// scanned row's folded value. Entries short enough that their fold
	// provably fits (≤ 4 output bytes per input byte) can never error; a
	// longer entry might, so the memo path — which reproduces row-path
	// errors by falling back — must handle it.
	maxIn := expr.DefaultLimits().MaxStringLen / utf8.UTFMax
	for id := 0; id < card; id++ {
		s, ok := col.Value(id).(string)
		if !ok || len(s) > maxIn {
			return nil, false
		}
	}
	fold := strings.ToUpper
	if lower {
		fold = strings.ToLower
	}
	var ids []int
	// Only a fixed point of the fold can be an output of it; anything else
	// matches no entry (e.g. lower(col) = 'ABC').
	if fold(target) == target {
		variants, ok := foldPreimages(target, lower)
		if !ok {
			return nil, false
		}
		for _, v := range variants {
			if id, found := col.IndexOf(v); found {
				ids = append(ids, id)
			}
		}
	}
	set := idSetFromList(card, ids)
	if p.Op == pql.OpNeq {
		set = set.complement()
	}
	return set, true
}

// probeShape matches lower|upper(col) cmp 'literal' in either orientation,
// returning the canonical builtin name and the literal.
func probeShape(p pql.ExprCompare) (fn, target string, ok bool) {
	call, cok := p.LHS.(pql.Call)
	lit, lok := p.RHS.(pql.Literal)
	if !cok || !lok {
		call, cok = p.RHS.(pql.Call)
		lit, lok = p.LHS.(pql.Literal)
		if !cok || !lok {
			return "", "", false
		}
	}
	s, sok := lit.Value.(string)
	if !sok || len(call.Args) != 1 {
		return "", "", false
	}
	if _, isCol := call.Args[0].(pql.ColumnRef); !isCol {
		return "", "", false
	}
	fn = strings.ToLower(call.Name)
	if fn != "lower" && fn != "upper" {
		return "", "", false
	}
	return fn, s, true
}

// foldPreimages enumerates every string that strings.ToLower (lower=true)
// or strings.ToUpper maps to target. Both fold rune-wise through the
// unicode simple mapping, so the preimage is the cartesian product of
// per-rune preimages, each found on the rune's SimpleFold orbit — plus the
// dotted capital İ (U+0130, lowercases to plain i) and dotless ı (U+0131,
// uppercases to plain I), which sit outside the i/I orbit.
func foldPreimages(target string, lower bool) ([]string, bool) {
	to := unicode.ToUpper
	if lower {
		to = unicode.ToLower
	}
	runes := []rune(target)
	cands := make([][]rune, len(runes))
	total := 1
	for i, r := range runes {
		var c []rune
		if to(r) == r {
			c = append(c, r)
		}
		for r2 := unicode.SimpleFold(r); r2 != r; r2 = unicode.SimpleFold(r2) {
			if to(r2) == r {
				c = append(c, r2)
			}
		}
		if lower && r == 'i' {
			c = append(c, 'İ')
		}
		if !lower && r == 'I' {
			c = append(c, 'ı')
		}
		total *= len(c)
		if total > maxFoldVariants {
			return nil, false
		}
		cands[i] = c
	}
	out := []string{""}
	for _, c := range cands {
		next := make([]string, 0, len(out)*len(c))
		for _, prefix := range out {
			for _, r := range c {
				next = append(next, prefix+string(r))
			}
		}
		out = next
	}
	return out, true
}
