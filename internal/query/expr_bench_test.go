package query

import (
	"context"
	"testing"
	"time"
)

// BenchmarkExprCompiledVsInterp runs one expression-heavy aggregation with
// compiled block kernels and again with the interpreter forced
// (DisableExprCompile), cross-checking the results agree and reporting both
// timings. The compiled-vs-interp ratio is the headline number for the
// expression pipeline (EXPERIMENTS.md); ns/op covers both runs.
func BenchmarkExprCompiledVsInterp(b *testing.B) {
	segs := benchSegments(b)
	const q = "SELECT sum((clicks - 3) * 2), max(abs(revenue - 50.0)) FROM events WHERE clicks + memberId > 40"
	ctx := context.Background()
	var compiledNS, interpNS time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rc, err := Run(ctx, q, segs, nil, Options{})
		if err != nil {
			b.Fatal(err)
		}
		compiledNS += time.Since(start)

		start = time.Now()
		ri, err := Run(ctx, q, segs, nil, Options{DisableExprCompile: true})
		if err != nil {
			b.Fatal(err)
		}
		interpNS += time.Since(start)

		if len(rc.Rows) != 1 || len(rc.Rows[0]) != 2 || rc.Rows[0][0] != ri.Rows[0][0] || rc.Rows[0][1] != ri.Rows[0][1] {
			b.Fatalf("compiled and interpreted runs disagree: %+v vs %+v", rc.Rows, ri.Rows)
		}
	}
	b.ReportMetric(float64(compiledNS.Nanoseconds())/float64(b.N), "compiled-ns/op")
	b.ReportMetric(float64(interpNS.Nanoseconds())/float64(b.N), "interp-ns/op")
	b.ReportMetric(float64(interpNS)/float64(compiledNS), "interp/compiled")
}

// BenchmarkTimeBucketGroupBy: the paper's bread-and-butter dashboard shape —
// a time-series rollup whose group key is a derived expression. The constant
// bucket width compiles to a kernel feeding the single-long group path.
func BenchmarkTimeBucketGroupBy(b *testing.B) {
	benchRun(b, "SELECT sum(clicks), count(*) FROM events GROUP BY timeBucket(day, 7) TOP 10", Options{})
}
