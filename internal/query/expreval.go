package query

import (
	"fmt"

	"pinot/internal/expr"
	"pinot/internal/pql"
	"pinot/internal/segment"
)

// This file binds pql expressions to one segment's columns for execution.
// Each expression gets an exprEval: the interpreter path (per-row, sandboxed
// by expr.Limits) always works; when the expression lowers to a typed block
// kernel and the options allow it, batch fills run through the kernel
// instead. Both produce bit-identical values, so plan-time selection is
// purely a performance decision — the differential suite flips
// DisableExprCompile to prove it.

// exprEval is one expression bound to one segment execution. It is
// single-goroutine, like the rest of a segment executor.
type exprEval struct {
	env     *execEnv
	src     pql.Expr
	kind    expr.Kind
	names   []string
	readers []segment.ColumnReader // aligned with names
	kernel  *expr.Kernel           // nil → interpreter only
	ksrc    *kernelBlockSource     // aligned with kernel.Cols
	// memo, when set, serves every evaluation by dictID lookup: the
	// expression was evaluated once per dictionary entry of its single
	// column (dictexpr.go). Memo existence implies no row can error — every
	// entry already evaluated cleanly.
	memo    *expr.DictMemo
	idsBuf  []uint32
	ictx    *expr.Ctx
	get     expr.Getter
	curDoc  int
	longBuf []int64
	dblBuf  []float64
}

// newExprEval type-checks an expression against the segment (via the
// table-level schema for evolution defaults), binds its column readers, and
// compiles it to a block kernel unless disabled or not lowerable.
func newExprEval(env *execEnv, cs columnSource, e pql.Expr, opt Options) (*exprEval, error) {
	ev := &exprEval{env: env, src: e, curDoc: -1}
	byName := map[string]int{}
	for _, name := range pql.ExprColumns(e) {
		col, err := cs.column(name)
		if err != nil {
			return nil, err
		}
		if !col.Spec().SingleValue {
			return nil, fmt.Errorf("query: expressions over multi-value column %q are not supported", name)
		}
		byName[name] = len(ev.names)
		ev.names = append(ev.names, name)
		ev.readers = append(ev.readers, col)
	}
	kindOf := func(name string) (expr.Kind, bool) {
		i, ok := byName[name]
		if !ok {
			return 0, false
		}
		return expr.KindOf(ev.readers[i].Spec().Type), true
	}
	kind, err := expr.Infer(e, kindOf)
	if err != nil {
		return nil, fmt.Errorf("query: %v", err)
	}
	ev.kind = kind
	ev.ictx = expr.NewCtx(expr.Limits{})
	ev.ictx.Check = env.checkpoint
	ev.get = func(name string) any {
		i, ok := byName[name]
		if !ok {
			return nil
		}
		return readScalarValue(ev.readers[i], ev.curDoc)
	}
	if !opt.DisableExprCompile {
		if k, ok := expr.Compile(e, kindOf); ok {
			ev.kernel = k
			readers := make([]segment.ColumnReader, len(k.Cols))
			for i, name := range k.Cols {
				readers[i] = ev.readers[byName[name]]
			}
			ev.ksrc = &kernelBlockSource{readers: readers}
		}
	}
	// Dictionary-space memo: a deterministic single-dict-column expression
	// evaluates once per dictionary entry and serves every row by lookup.
	// The binding is independent of DisableExprCompile/DisableVectorization —
	// values are bit-identical on all paths, so those flags keep flipping
	// only execution shape, never plan.
	if !opt.DisableDictExpr && len(ev.names) == 1 && ev.readers[0].HasDictionary() && pql.ExprDeterministic(e) {
		if m, ok := dictMemoFor(cs, ev.readers[0], ev.names[0], e, kind, opt, env.table); ok {
			ev.memo = m
			env.dictExprUsed = true
		}
	}
	return ev, nil
}

// readScalarValue reads one document's value in canonical scalar form:
// int64, float64, string or bool.
func readScalarValue(col segment.ColumnReader, doc int) any {
	if col.HasDictionary() {
		return col.Value(col.DictID(doc))
	}
	if col.Spec().Type.Integral() {
		return col.Long(doc)
	}
	return col.Double(doc)
}

// value interprets the expression for one row. Evaluation errors latch on
// the execution environment — surfaced at the next block checkpoint, the
// same place in both execution modes — and yield nil here.
func (ev *exprEval) value(doc int) any {
	if ev.memo != nil {
		return ev.memo.Value(ev.readers[0].DictID(doc))
	}
	ev.curDoc = doc
	v, err := expr.Eval(ev.ictx, ev.src, ev.get)
	if err != nil {
		ev.env.fail(err)
		return nil
	}
	return v
}

// double reads the expression as a float64 aggregation input, promoting a
// long result exactly as the scalar column path promotes.
func (ev *exprEval) double(doc int) float64 {
	switch v := ev.value(doc).(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	}
	return 0
}

// fillDoubles computes a block of float64 inputs: the kernel when compiled,
// the interpreter per row otherwise.
func (ev *exprEval) fillDoubles(docs []int, dst []float64) {
	if ev.memo != nil {
		switch ev.memo.Kind {
		case expr.Long:
			for i, id := range ev.dictIDs(docs) {
				dst[i] = float64(ev.memo.Longs[id])
			}
			return
		case expr.Double:
			for i, id := range ev.dictIDs(docs) {
				dst[i] = ev.memo.Doubles[id]
			}
			return
		}
		// Non-numeric memo: the scalar path yields 0 here too.
		for i := range docs {
			dst[i] = 0
		}
		return
	}
	if ev.kernel != nil {
		ev.kernel.EvalDoubles(ev.ksrc, docs, dst)
		return
	}
	for i, doc := range docs {
		dst[i] = ev.double(doc)
	}
}

// dictIDs batch-unpacks the single bound column's dict ids for a block.
func (ev *exprEval) dictIDs(docs []int) []uint32 {
	if cap(ev.idsBuf) < len(docs) {
		ev.idsBuf = make([]uint32, blockSize)
	}
	ids := ev.idsBuf[:len(docs)]
	ev.readers[0].DictIDs(docs, ids)
	return ids
}

// fillValues computes a block of boxed values for group keys and distinct
// counts. Kernel results box from the typed buffers; the interpreter path
// boxes row by row. Errors leave nil values, matching the scalar path.
func (ev *exprEval) fillValues(docs []int, dst []any) {
	if ev.memo != nil {
		for i, id := range ev.dictIDs(docs) {
			dst[i] = ev.memo.Value(int(id))
		}
		return
	}
	if ev.kernel == nil {
		for i, doc := range docs {
			dst[i] = ev.value(doc)
		}
		return
	}
	n := len(docs)
	if ev.kernel.Kind == expr.Long {
		if cap(ev.longBuf) < n {
			ev.longBuf = make([]int64, blockSize)
		}
		ls := ev.longBuf[:n]
		ev.kernel.EvalLongs(ev.ksrc, docs, ls)
		for i, v := range ls {
			dst[i] = v
		}
		return
	}
	if cap(ev.dblBuf) < n {
		ev.dblBuf = make([]float64, blockSize)
	}
	ds := ev.dblBuf[:n]
	ev.kernel.EvalDoubles(ev.ksrc, docs, ds)
	for i, v := range ds {
		dst[i] = v
	}
}

// groupItem is one GROUP BY item: a dictionary column for plain items, a
// bound expression evaluator for derived ones.
type groupItem struct {
	col segment.ColumnReader
	ev  *exprEval
}

// read returns the item's group value for one document.
func (g groupItem) read(doc int) any {
	if g.ev != nil {
		return g.ev.value(doc)
	}
	return g.col.Value(g.col.DictID(doc))
}

// kernelBlockSource feeds typed column blocks to a compiled kernel: raw
// metric columns decode through the batch Longs/Doubles readers, dictionary
// columns through batch id unpack plus a lazily built dense decode table.
type kernelBlockSource struct {
	readers []segment.ColumnReader
	ids     []uint32
	decL    [][]int64
	decD    [][]float64
}

func (s *kernelBlockSource) dictIDs(slot int, docs []int) []uint32 {
	if cap(s.ids) < len(docs) {
		s.ids = make([]uint32, blockSize)
	}
	ids := s.ids[:len(docs)]
	s.readers[slot].DictIDs(docs, ids)
	return ids
}

func (s *kernelBlockSource) LongCol(slot int, docs []int, dst []int64) {
	col := s.readers[slot]
	if !col.HasDictionary() {
		col.Longs(docs, dst)
		return
	}
	if s.decL == nil {
		s.decL = make([][]int64, len(s.readers))
	}
	dec := s.decL[slot]
	if dec == nil {
		card := col.Cardinality()
		dec = make([]int64, card)
		for id := 0; id < card; id++ {
			if v, ok := col.Value(id).(int64); ok {
				dec[id] = v
			}
		}
		s.decL[slot] = dec
	}
	for i, id := range s.dictIDs(slot, docs) {
		dst[i] = dec[id]
	}
}

func (s *kernelBlockSource) DoubleCol(slot int, docs []int, dst []float64) {
	col := s.readers[slot]
	if !col.HasDictionary() {
		col.Doubles(docs, dst)
		return
	}
	if s.decD == nil {
		s.decD = make([][]float64, len(s.readers))
	}
	dec := s.decD[slot]
	if dec == nil {
		card := col.Cardinality()
		dec = make([]float64, card)
		for id := 0; id < card; id++ {
			if v, ok := col.Value(id).(float64); ok {
				dec[id] = v
			}
		}
		s.decD[slot] = dec
	}
	for i, id := range s.dictIDs(slot, docs) {
		dst[i] = dec[id]
	}
}

// buildExprFilter compiles an expression comparison into a scan operator.
// Expression predicates never prune, never use indexes, and never claim
// soundness they don't have: every candidate document is evaluated, charging
// one scanned entry per referenced column — in both execution modes.
func buildExprFilter(env *execEnv, cs columnSource, p pql.ExprCompare, opt Options, stats *Stats) (docIDSet, error) {
	lev, err := newExprEval(env, cs, p.LHS, opt)
	if err != nil {
		return nil, err
	}
	rev, err := newExprEval(env, cs, p.RHS, opt)
	if err != nil {
		return nil, err
	}
	if err := expr.CompareKinds(p.Op, lev.kind, rev.kind); err != nil {
		return nil, fmt.Errorf("query: %v", err)
	}
	nCols := int64(len(pql.PredicateColumns(p)))
	n := cs.seg.NumDocs()
	sds := &scanDocIDSet{numDocs: n, match: func(doc int) bool {
		if stats != nil {
			stats.NumEntriesScanned += nCols
		}
		lv := lev.value(doc)
		rv := rev.value(doc)
		if lv == nil || rv == nil {
			return false
		}
		ok, err := expr.CompareValues(p.Op, lv, rv)
		if err != nil {
			env.fail(err)
			return false
		}
		return ok
	}}
	// The batch path needs both sides compiled; a side that requires the
	// interpreter keeps the whole predicate on the generic row-at-a-time
	// wrapper so evaluation order (and therefore the first error and the
	// stats) match the scalar mode exactly.
	if !opt.DisableVectorization && lev.kernel != nil && rev.kernel != nil {
		sds.newBlockIter = func() blockIterator {
			return &exprCompareBlockIterator{
				lhs: lev, rhs: rev, op: p.Op,
				bothLong: lev.kernel.Kind == expr.Long && rev.kernel.Kind == expr.Long,
				stats:    stats, nCols: nCols, numDocs: n,
			}
		}
	}
	return sds, nil
}

// exprCompareBlockIterator is the block form of an expression comparison:
// both sides evaluate through their kernels over sequential doc chunks and
// compare in typed batches. Chunks may evaluate ahead of the caller's
// demand, but entries are charged only when walked — the dictScan contract.
type exprCompareBlockIterator struct {
	lhs, rhs *exprEval
	op       pql.CompareOp
	bothLong bool
	stats    *Stats
	nCols    int64
	numDocs  int
	next     int
	start    int
	pos      int
	chunk    int
	docs     []int
	ll, rl   []int64
	ld, rd   []float64
	matches  []bool
}

func (it *exprCompareBlockIterator) nextBlock(buf []int) int {
	n := 0
	for n < len(buf) {
		if it.pos == it.chunk {
			if it.next >= it.numDocs {
				break
			}
			size := min(blockSize, it.numDocs-it.next)
			if cap(it.docs) < size {
				it.docs = make([]int, size)
				it.matches = make([]bool, size)
			}
			it.docs = it.docs[:size]
			it.matches = it.matches[:size]
			for i := range it.docs {
				it.docs[i] = it.next + i
			}
			if it.bothLong {
				it.ll = growLongs(it.ll, size)
				it.rl = growLongs(it.rl, size)
				it.lhs.kernel.EvalLongs(it.lhs.ksrc, it.docs, it.ll)
				it.rhs.kernel.EvalLongs(it.rhs.ksrc, it.docs, it.rl)
				cmpBlock(it.op, it.ll, it.rl, it.matches)
			} else {
				it.ld = growDoubles(it.ld, size)
				it.rd = growDoubles(it.rd, size)
				it.lhs.kernel.EvalDoubles(it.lhs.ksrc, it.docs, it.ld)
				it.rhs.kernel.EvalDoubles(it.rhs.ksrc, it.docs, it.rd)
				cmpBlock(it.op, it.ld, it.rd, it.matches)
			}
			it.start = it.next
			it.next += size
			it.chunk = size
			it.pos = 0
		}
		walked := it.pos
		for it.pos < it.chunk && n < len(buf) {
			if it.matches[it.pos] {
				buf[n] = it.start + it.pos
				n++
			}
			it.pos++
		}
		if it.stats != nil {
			it.stats.NumEntriesScanned += int64(it.pos-walked) * it.nCols
		}
	}
	return n
}

func growLongs(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

func growDoubles(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func cmpBlock[T int64 | float64](op pql.CompareOp, a, b []T, out []bool) {
	switch op {
	case pql.OpEq:
		for i := range a {
			out[i] = a[i] == b[i]
		}
	case pql.OpNeq:
		for i := range a {
			out[i] = a[i] != b[i]
		}
	case pql.OpLt:
		for i := range a {
			out[i] = a[i] < b[i]
		}
	case pql.OpLte:
		for i := range a {
			out[i] = a[i] <= b[i]
		}
	case pql.OpGt:
		for i := range a {
			out[i] = a[i] > b[i]
		}
	case pql.OpGte:
		for i := range a {
			out[i] = a[i] >= b[i]
		}
	}
}
