package query

import (
	"fmt"
	"sort"

	"pinot/internal/bitmap"
	"pinot/internal/pql"
	"pinot/internal/segment"
)

// idRange is a half-open range [Lo, Hi) of dictionary ids.
type idRange struct {
	Lo, Hi int
}

// idSet is the compiled form of a single-column predicate against a
// segment's dictionary: the set of matching dict ids, as ranges when the
// dictionary is sorted or as an explicit list otherwise.
type idSet struct {
	card   int
	ranges []idRange // nil when list form is used
	list   []int     // sorted ascending
	lookup []bool    // membership table for list form, len card
}

func idSetFromRanges(card int, ranges ...idRange) *idSet {
	var keep []idRange
	for _, r := range ranges {
		if r.Hi > r.Lo {
			keep = append(keep, r)
		}
	}
	return &idSet{card: card, ranges: keep}
}

func idSetFromList(card int, ids []int) *idSet {
	lookup := make([]bool, card)
	var list []int
	for _, id := range ids {
		if id >= 0 && id < card && !lookup[id] {
			lookup[id] = true
			list = append(list, id)
		}
	}
	// Keep list sorted. sort.Ints, not an insertion sort: dictionary-space
	// predicates feed lists whose length scales with cardinality, where
	// O(n²) bites.
	sort.Ints(list)
	return &idSet{card: card, list: list, lookup: lookup}
}

// complement returns the ids not in s.
func (s *idSet) complement() *idSet {
	if s.ranges != nil {
		var out []idRange
		prev := 0
		for _, r := range s.ranges {
			if r.Lo > prev {
				out = append(out, idRange{prev, r.Lo})
			}
			prev = r.Hi
		}
		if prev < s.card {
			out = append(out, idRange{prev, s.card})
		}
		return &idSet{card: s.card, ranges: out}
	}
	var ids []int
	for id := 0; id < s.card; id++ {
		if !s.lookup[id] {
			ids = append(ids, id)
		}
	}
	return idSetFromList(s.card, ids)
}

// contains reports membership of a dict id.
func (s *idSet) contains(id int) bool {
	if s.ranges != nil {
		for _, r := range s.ranges {
			if id < r.Lo {
				return false
			}
			if id < r.Hi {
				return true
			}
		}
		return false
	}
	return id >= 0 && id < len(s.lookup) && s.lookup[id]
}

// isEmpty reports whether no ids match.
func (s *idSet) isEmpty() bool { return len(s.ranges) == 0 && len(s.list) == 0 }

// isAll reports whether every id matches.
func (s *idSet) isAll() bool {
	if s.ranges != nil {
		return len(s.ranges) == 1 && s.ranges[0].Lo == 0 && s.ranges[0].Hi == s.card
	}
	return len(s.list) == s.card
}

// size returns the number of matching ids.
func (s *idSet) size() int {
	if s.ranges != nil {
		n := 0
		for _, r := range s.ranges {
			n += r.Hi - r.Lo
		}
		return n
	}
	return len(s.list)
}

// lookupTable returns a dense membership table of size card, the vectorized
// scan's branch-free dict-id test.
func (s *idSet) lookupTable() []bool {
	if s.ranges == nil && s.lookup != nil {
		return s.lookup
	}
	t := make([]bool, s.card)
	s.each(func(id int) { t[id] = true })
	return t
}

// each calls fn for every matching id in ascending order.
func (s *idSet) each(fn func(id int)) {
	if s.ranges != nil {
		for _, r := range s.ranges {
			for id := r.Lo; id < r.Hi; id++ {
				fn(id)
			}
		}
		return
	}
	for _, id := range s.list {
		fn(id)
	}
}

// compileLeaf compiles a leaf predicate against a dictionary column into the
// matching dict-id set. The column's dictionary may be unsorted (realtime
// segments), in which case the dictionary is scanned.
func compileLeaf(col segment.ColumnReader, pred pql.Predicate) (*idSet, error) {
	card := col.Cardinality()
	typ := col.Spec().Type
	coerce := func(v any) (any, error) {
		cv, err := segment.Canonicalize(typ, v)
		if err != nil {
			return nil, fmt.Errorf("query: predicate on %q: %w", col.Spec().Name, err)
		}
		return cv, nil
	}
	// Unsorted dictionaries can only be scanned; build a value-level
	// matcher and test every dictionary entry.
	if !col.DictSorted() {
		match, err := valueMatcher(typ, pred)
		if err != nil {
			return nil, err
		}
		var ids []int
		for id := 0; id < card; id++ {
			if match(col.Value(id)) {
				ids = append(ids, id)
			}
		}
		return idSetFromList(card, ids), nil
	}
	switch p := pred.(type) {
	case pql.Comparison:
		v, err := coerce(p.Value)
		if err != nil {
			return nil, err
		}
		switch p.Op {
		case pql.OpEq:
			if id, ok := col.IndexOf(v); ok {
				return idSetFromRanges(card, idRange{id, id + 1}), nil
			}
			return idSetFromRanges(card), nil
		case pql.OpNeq:
			if id, ok := col.IndexOf(v); ok {
				return idSetFromRanges(card, idRange{0, id}, idRange{id + 1, card}), nil
			}
			return idSetFromRanges(card, idRange{0, card}), nil
		case pql.OpLt:
			lo, hi := col.Range(nil, v, true, false)
			return idSetFromRanges(card, idRange{lo, hi}), nil
		case pql.OpLte:
			lo, hi := col.Range(nil, v, true, true)
			return idSetFromRanges(card, idRange{lo, hi}), nil
		case pql.OpGt:
			lo, hi := col.Range(v, nil, false, true)
			return idSetFromRanges(card, idRange{lo, hi}), nil
		case pql.OpGte:
			lo, hi := col.Range(v, nil, true, true)
			return idSetFromRanges(card, idRange{lo, hi}), nil
		}
		return nil, fmt.Errorf("query: unsupported operator %q", p.Op)
	case pql.Between:
		lo, err := coerce(p.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := coerce(p.Hi)
		if err != nil {
			return nil, err
		}
		l, h := col.Range(lo, hi, true, true)
		return idSetFromRanges(card, idRange{l, h}), nil
	case pql.In:
		var ids []int
		for _, raw := range p.Values {
			v, err := coerce(raw)
			if err != nil {
				return nil, err
			}
			if id, ok := col.IndexOf(v); ok {
				ids = append(ids, id)
			}
		}
		set := idSetFromList(card, ids)
		if p.Negated {
			return set.complement(), nil
		}
		return set, nil
	}
	return nil, fmt.Errorf("query: unsupported predicate %T", pred)
}

// valueMatcher builds a canonical-value-level predicate function, used for
// unsorted dictionaries and raw (no-dictionary) columns.
func valueMatcher(typ segment.DataType, pred pql.Predicate) (func(any) bool, error) {
	coerce := func(v any) (any, error) { return segment.Canonicalize(typ, v) }
	switch p := pred.(type) {
	case pql.Comparison:
		v, err := coerce(p.Value)
		if err != nil {
			return nil, err
		}
		op := p.Op
		return func(x any) bool {
			c := segment.CompareValues(x, v)
			switch op {
			case pql.OpEq:
				return c == 0
			case pql.OpNeq:
				return c != 0
			case pql.OpLt:
				return c < 0
			case pql.OpLte:
				return c <= 0
			case pql.OpGt:
				return c > 0
			case pql.OpGte:
				return c >= 0
			}
			return false
		}, nil
	case pql.Between:
		lo, err := coerce(p.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := coerce(p.Hi)
		if err != nil {
			return nil, err
		}
		return func(x any) bool {
			return segment.CompareValues(x, lo) >= 0 && segment.CompareValues(x, hi) <= 0
		}, nil
	case pql.In:
		set := make(map[any]bool, len(p.Values))
		for _, raw := range p.Values {
			v, err := coerce(raw)
			if err != nil {
				return nil, err
			}
			set[v] = true
		}
		neg := p.Negated
		return func(x any) bool { return set[x] != neg }, nil
	}
	return nil, fmt.Errorf("query: unsupported predicate %T", pred)
}

// longMatcher is the typed counterpart of valueMatcher for integral raw
// columns: it evaluates the predicate on int64 without boxing. It accepts
// and rejects exactly the same values as valueMatcher over canonical int64s.
func longMatcher(typ segment.DataType, pred pql.Predicate) (func(int64) bool, error) {
	coerce := func(v any) (int64, error) {
		cv, err := segment.Canonicalize(typ, v)
		if err != nil {
			return 0, err
		}
		return cv.(int64), nil
	}
	switch p := pred.(type) {
	case pql.Comparison:
		v, err := coerce(p.Value)
		if err != nil {
			return nil, err
		}
		switch p.Op {
		case pql.OpEq:
			return func(x int64) bool { return x == v }, nil
		case pql.OpNeq:
			return func(x int64) bool { return x != v }, nil
		case pql.OpLt:
			return func(x int64) bool { return x < v }, nil
		case pql.OpLte:
			return func(x int64) bool { return x <= v }, nil
		case pql.OpGt:
			return func(x int64) bool { return x > v }, nil
		case pql.OpGte:
			return func(x int64) bool { return x >= v }, nil
		}
		return nil, fmt.Errorf("query: unsupported operator %q", p.Op)
	case pql.Between:
		lo, err := coerce(p.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := coerce(p.Hi)
		if err != nil {
			return nil, err
		}
		return func(x int64) bool { return x >= lo && x <= hi }, nil
	case pql.In:
		set := make(map[int64]bool, len(p.Values))
		for _, raw := range p.Values {
			v, err := coerce(raw)
			if err != nil {
				return nil, err
			}
			set[v] = true
		}
		neg := p.Negated
		return func(x int64) bool { return set[x] != neg }, nil
	}
	return nil, fmt.Errorf("query: unsupported predicate %T", pred)
}

// doubleMatcher is the typed counterpart of valueMatcher for float raw
// columns.
func doubleMatcher(typ segment.DataType, pred pql.Predicate) (func(float64) bool, error) {
	coerce := func(v any) (float64, error) {
		cv, err := segment.Canonicalize(typ, v)
		if err != nil {
			return 0, err
		}
		return cv.(float64), nil
	}
	// Comparisons use the same three-way compare as segment.CompareValues
	// (NaN compares "equal" to everything there) so results are identical
	// to the scalar matcher on any input.
	cmp := func(x, v float64) int {
		switch {
		case x < v:
			return -1
		case x > v:
			return 1
		}
		return 0
	}
	switch p := pred.(type) {
	case pql.Comparison:
		v, err := coerce(p.Value)
		if err != nil {
			return nil, err
		}
		switch p.Op {
		case pql.OpEq:
			return func(x float64) bool { return cmp(x, v) == 0 }, nil
		case pql.OpNeq:
			return func(x float64) bool { return cmp(x, v) != 0 }, nil
		case pql.OpLt:
			return func(x float64) bool { return cmp(x, v) < 0 }, nil
		case pql.OpLte:
			return func(x float64) bool { return cmp(x, v) <= 0 }, nil
		case pql.OpGt:
			return func(x float64) bool { return cmp(x, v) > 0 }, nil
		case pql.OpGte:
			return func(x float64) bool { return cmp(x, v) >= 0 }, nil
		}
		return nil, fmt.Errorf("query: unsupported operator %q", p.Op)
	case pql.Between:
		lo, err := coerce(p.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := coerce(p.Hi)
		if err != nil {
			return nil, err
		}
		return func(x float64) bool { return cmp(x, lo) >= 0 && cmp(x, hi) <= 0 }, nil
	case pql.In:
		set := make(map[float64]bool, len(p.Values))
		for _, raw := range p.Values {
			v, err := coerce(raw)
			if err != nil {
				return nil, err
			}
			set[v] = true
		}
		neg := p.Negated
		return func(x float64) bool { return set[x] != neg }, nil
	}
	return nil, fmt.Errorf("query: unsupported predicate %T", pred)
}

// unionBitmaps ORs the posting lists of every matching dict id.
func unionBitmaps(col segment.ColumnReader, set *idSet) *bitmap.Bitmap {
	out := bitmap.New()
	set.each(func(id int) {
		out = bitmap.Or(out, col.Inverted(id))
	})
	return out
}
