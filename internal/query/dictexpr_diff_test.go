// Differential test for dictionary-space expression execution: every
// dict-eligible (and near-eligible) query must produce byte-identical rows
// whether expressions are planned into dictionary space (the default, with a
// cross-query memo cache), forced onto the compiled-kernel row path
// (DisableDictExpr), or forced all the way to the per-row interpreter
// (DisableDictExpr + DisableExprCompile). Stats may differ only where the
// contract allows: DictExprSegments, and scan counters where the plan
// legitimately changes rung (a pruned-to-empty segment scans nothing) — the
// structural counters (segments queried, total docs, the pruning identity)
// must agree, and dictionary space may never scan MORE than the row path.
package query_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"pinot/internal/metrics"
	"pinot/internal/qcache"
	"pinot/internal/query"
	"pinot/internal/segment"
)

// runDictModes runs one query in the three modes and enforces the
// dictionary-space contract. It returns the dict-mode DictExprSegments count
// so the caller can assert the suite actually exercised the new path.
func runDictModes(t *testing.T, label, q string, segs []query.IndexedSegment, schema *segment.Schema, cache *qcache.Cache) int {
	t.Helper()
	ctx := context.Background()
	type mode struct {
		name string
		opt  query.Options
	}
	modes := []mode{
		{"dict", query.Options{DictMemoCache: cache}},
		{"rowpath", query.Options{DisableDictExpr: true}},
		{"interp", query.Options{DisableDictExpr: true, DisableExprCompile: true}},
	}
	type outcome struct {
		stats query.Stats
		body  string
		err   error
	}
	outcomes := make([]outcome, len(modes))
	for i, m := range modes {
		res, err := query.Run(ctx, q, segs, schema, m.opt)
		o := outcome{err: err}
		if err == nil {
			o.stats = res.Stats
			res.QueryID, res.Trace = "", nil
			res.Stats = query.Stats{}
			b, merr := json.Marshal(res)
			if merr != nil {
				t.Fatalf("%s: %q: marshal: %v", label, q, merr)
			}
			o.body = string(b)
		}
		outcomes[i] = o
	}
	base := outcomes[0]
	for i := 1; i < len(modes); i++ {
		o := outcomes[i]
		if (o.err == nil) != (base.err == nil) {
			t.Fatalf("%s: %q: error mismatch: %s=%v vs %s=%v", label, q, modes[0].name, base.err, modes[i].name, o.err)
		}
		if o.err != nil {
			if o.err.Error() != base.err.Error() {
				t.Fatalf("%s: %q: error text mismatch:\n%s: %v\n%s: %v", label, q, modes[0].name, base.err, modes[i].name, o.err)
			}
			continue
		}
		if o.body != base.body {
			t.Fatalf("%s: %q: results diverge:\n%s: %s\n%s: %s", label, q, modes[0].name, base.body, modes[i].name, o.body)
		}
	}
	if base.err != nil {
		return 0
	}
	// The two row-path modes must agree on Stats exactly (the established
	// compiled-vs-interpreter contract).
	if outcomes[1].stats != outcomes[2].stats {
		t.Fatalf("%s: %q: row-path stats diverge:\nrowpath: %+v\ninterp: %+v", label, q, outcomes[1].stats, outcomes[2].stats)
	}
	ds, rs := outcomes[0].stats, outcomes[1].stats
	if rs.DictExprSegments != 0 {
		t.Fatalf("%s: %q: DictExprSegments = %d with dictionary space disabled", label, q, rs.DictExprSegments)
	}
	if ds.NumSegmentsQueried != rs.NumSegmentsQueried || ds.TotalDocs != rs.TotalDocs {
		t.Fatalf("%s: %q: structural stats diverge:\ndict: %+v\nrowpath: %+v", label, q, ds, rs)
	}
	dsum := ds.SegmentsPrunedByServer + ds.SegmentsPrunedByValue + ds.SegmentsMatched
	rsum := rs.SegmentsPrunedByServer + rs.SegmentsPrunedByValue + rs.SegmentsMatched
	if dsum != rsum {
		t.Fatalf("%s: %q: pruning identity diverges: dict sums %d, rowpath %d\ndict: %+v\nrowpath: %+v", label, q, dsum, rsum, ds, rs)
	}
	if ds.NumDocsScanned > rs.NumDocsScanned {
		t.Fatalf("%s: %q: dictionary space scanned MORE docs (%d) than the row path (%d)", label, q, ds.NumDocsScanned, rs.NumDocsScanned)
	}
	return ds.DictExprSegments
}

// dictDiffQueries samples queries biased toward dictionary-space-eligible
// shapes over the mixed fixture schema: single-column deterministic
// expressions on the dict-encoded category (string, card 6), bucket (long,
// card 40) and day (long, card 14) columns — probes, memos, group keys and
// aggregate arguments — mixed with ineligible shapes (multi-column, raw
// metrics) so both planners keep seeing each other's traffic.
func dictDiffQueries(r *rand.Rand, n int) []string {
	where := func() string {
		switch r.Intn(12) {
		case 0:
			return fmt.Sprintf(" WHERE upper(category) = 'CAT%d'", r.Intn(7))
		case 1:
			return fmt.Sprintf(" WHERE lower(category) <> 'cat%d'", r.Intn(7))
		case 2:
			// Non-fixed-point target: matches nothing, prunes.
			return fmt.Sprintf(" WHERE upper(category) = 'cat%d'", r.Intn(6))
		case 3:
			return fmt.Sprintf(" WHERE concat(category, '-tail') = 'cat%d-tail'", r.Intn(6))
		case 4:
			return fmt.Sprintf(" WHERE timeBucket(day, %d) = %d", 1+r.Intn(10), 16996+r.Intn(30))
		case 5:
			return fmt.Sprintf(" WHERE bucket * 3 - %d > %d", r.Intn(40), r.Intn(80))
		case 6:
			return fmt.Sprintf(" WHERE abs(bucket - %d) <= %d", r.Intn(40), r.Intn(15))
		case 7:
			return fmt.Sprintf(" WHERE lower(category) = 'cat%d' AND bucket < %d", r.Intn(6), r.Intn(45))
		case 8:
			return fmt.Sprintf(" WHERE upper(category) = 'CAT%d' OR timeBucket(day, 7) = %d", r.Intn(6), 16996+7*r.Intn(3))
		case 9:
			return fmt.Sprintf(" WHERE NOT (concat(category, '%d') = 'cat1%d')", r.Intn(4), r.Intn(4))
		case 10:
			// Multi-column expression: NOT dict-eligible, exercises the
			// fall-through next to eligible leaves.
			return fmt.Sprintf(" WHERE hits + bucket > %d", r.Intn(1000))
		default:
			return ""
		}
	}
	groupBy := func() string {
		switch r.Intn(5) {
		case 0:
			return " GROUP BY lower(category)"
		case 1:
			return fmt.Sprintf(" GROUP BY timeBucket(day, %d)", 1+r.Intn(10))
		case 2:
			return " GROUP BY concat(category, '_sfx')"
		case 3:
			return fmt.Sprintf(" GROUP BY abs(bucket - %d)", r.Intn(40))
		default:
			return fmt.Sprintf(" GROUP BY category, timeBucket(day, %d)", 2+r.Intn(6))
		}
	}
	out := make([]string, n)
	for i := range out {
		switch r.Intn(6) {
		case 0:
			out[i] = fmt.Sprintf("SELECT count(*), sum(hits) FROM difftbl%s", where())
		case 1:
			out[i] = fmt.Sprintf("SELECT min(bucket * %d), max(abs(bucket - %d)) FROM difftbl%s", 1+r.Intn(5), r.Intn(40), where())
		case 2:
			out[i] = fmt.Sprintf("SELECT distinctcount(concat(category, '%d')) FROM difftbl%s", r.Intn(9), where())
		case 3:
			out[i] = fmt.Sprintf("SELECT avg(timeBucket(day, %d)) FROM difftbl%s", 1+r.Intn(8), where())
		case 4:
			out[i] = fmt.Sprintf("SELECT sum(hits) FROM difftbl%s%s TOP %d", where(), groupBy(), 1+r.Intn(12))
		default:
			out[i] = fmt.Sprintf("SELECT count(*) FROM difftbl%s%s TOP %d", where(), groupBy(), 1+r.Intn(10))
		}
	}
	return out
}

func TestDictExprDifferential(t *testing.T) {
	schema := diffSchema(t)
	r := rand.New(rand.NewSource(977))

	build := func(name string, cfg segment.IndexConfig, rows int) query.IndexedSegment {
		b, err := segment.NewBuilder("difftbl", name, schema, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := b.Add(diffRow(r)); err != nil {
				t.Fatal(err)
			}
		}
		seg, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return query.IndexedSegment{Seg: seg}
	}
	segs := []query.IndexedSegment{
		build("ddiff_plain", segment.IndexConfig{}, 2500),
		build("ddiff_inv", segment.IndexConfig{InvertedColumns: []string{"category", "bucket"}}, 2500),
	}
	// A consuming segment: unsorted map dictionaries, never memo-cached,
	// never pruned — dictionary space must still agree with the row path.
	ms, err := segment.NewMutableSegment("difftbl", "ddiff_rt", schema, segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		if err := ms.Add(diffRow(r)); err != nil {
			t.Fatal(err)
		}
	}
	segs = append(segs, query.IndexedSegment{Seg: ms})

	// One cache across the whole suite: later queries hit memos earlier
	// queries built, so the differential also covers the cached path.
	cache := qcache.New(qcache.Config{Tier: "dictexpr", Metrics: metrics.NewRegistry()})

	dictSegments := 0
	for _, q := range dictDiffQueries(r, 230) {
		dictSegments += runDictModes(t, "dictdiff", q, segs, schema, cache)
	}

	// Hand-picked edges: type errors (parity includes the error text),
	// Unicode probe targets, constant sides, both ExprCompare orientations,
	// and predicates that collapse to all-match under NOT.
	edge := []string{
		"SELECT count(*) FROM difftbl WHERE lower(category) = 3",
		"SELECT count(*) FROM difftbl WHERE upper(bucket) = 'X'",
		"SELECT count(*) FROM difftbl WHERE abs(category) > 0",
		"SELECT count(*) FROM difftbl WHERE 'CAT1' = upper(category)",
		"SELECT sum(hits) FROM difftbl WHERE lower(category) <> 'no-such-cat'",
		"SELECT count(*) FROM difftbl WHERE NOT (upper(category) = 'CAT9')",
		"SELECT count(*) FROM difftbl WHERE concat(category, '') = category",
		"SELECT count(*) FROM difftbl WHERE timeBucket(day, 1) = day",
		"SELECT sum(hits) FROM difftbl WHERE bucket * 0 = 0",
		"SELECT count(*) FROM difftbl WHERE upper(category) = 'STRASSE'",
		"SELECT sum(hits) FROM difftbl GROUP BY lower(category) TOP 3",
		"SELECT distinctcount(lower(category)) FROM difftbl WHERE upper(category) <> 'CAT0'",
	}
	for _, q := range edge {
		dictSegments += runDictModes(t, "dictdiff/edge", q, segs, schema, cache)
	}

	// The suite must have actually taken the new path, not silently fallen
	// back everywhere: with 3 segments per query and most shapes eligible,
	// hundreds of dictionary-space segments is the floor.
	if dictSegments < 150 {
		t.Fatalf("dictionary space served only %d segment executions across the suite; generator or planner regressed", dictSegments)
	}
}
