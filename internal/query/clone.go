package query

// Deep copies and size estimates for cached intermediates. Both cache tiers
// store *Intermediate values, and Merge/Finalize mutate their receivers, so
// entries must be isolated from callers on both Put and Get: the cache holds
// its own copy and hands out fresh copies. SizeBytes feeds the bounded-bytes
// admission policy; it is a deterministic estimate, not an exact heap
// measurement, which is all eviction accounting needs.

// Clone returns a deep copy of the state: mutating the copy (Merge) never
// touches the original.
func (s *AggState) Clone() *AggState {
	if s == nil {
		return nil
	}
	out := *s
	if s.Distinct != nil {
		out.Distinct = make(map[string]struct{}, len(s.Distinct))
		for k := range s.Distinct {
			out.Distinct[k] = struct{}{}
		}
	}
	out.Values = append([]float64(nil), s.Values...)
	return &out
}

// Clone returns a deep copy of the group entry. Group values are scalars
// (int64/float64/string/bool), so copying the slice isolates the entry.
func (g *GroupEntry) Clone() *GroupEntry {
	if g == nil {
		return nil
	}
	out := &GroupEntry{Values: append([]any(nil), g.Values...)}
	out.Aggs = make([]*AggState, len(g.Aggs))
	for i, a := range g.Aggs {
		out.Aggs[i] = a.Clone()
	}
	return out
}

// Clone returns a deep copy of the intermediate, safe to merge and finalize
// without affecting the original.
func (r *Intermediate) Clone() *Intermediate {
	if r == nil {
		return nil
	}
	out := *r
	out.AggExprs = append(out.AggExprs[:0:0], r.AggExprs...)
	out.GroupCols = append(out.GroupCols[:0:0], r.GroupCols...)
	out.SelectCols = append(out.SelectCols[:0:0], r.SelectCols...)
	if r.Aggs != nil {
		out.Aggs = make([]*AggState, len(r.Aggs))
		for i, a := range r.Aggs {
			out.Aggs[i] = a.Clone()
		}
	}
	if r.Groups != nil {
		out.Groups = make(map[string]*GroupEntry, len(r.Groups))
		for k, g := range r.Groups {
			out.Groups[k] = g.Clone()
		}
	}
	if r.Rows != nil {
		out.Rows = make([][]any, len(r.Rows))
		for i, row := range r.Rows {
			out.Rows[i] = append([]any(nil), row...)
		}
	}
	return &out
}

// estimated per-value and per-entry overheads for SizeBytes. Scalars are
// dominated by the interface header plus boxed value; map and slice entries
// carry pointer/bookkeeping overhead.
const (
	sizePerValue = 24
	sizePerEntry = 48
)

func (s *AggState) sizeBytes() int64 {
	if s == nil {
		return 0
	}
	n := int64(sizePerEntry)
	for k := range s.Distinct {
		n += int64(len(k)) + sizePerValue
	}
	n += int64(len(s.Values)) * 8
	return n
}

// SizeBytes estimates the memory footprint of the intermediate for cache
// admission and eviction accounting.
func (r *Intermediate) SizeBytes() int64 {
	if r == nil {
		return 0
	}
	n := int64(sizePerEntry)
	for _, e := range r.AggExprs {
		n += int64(len(e.Column)+len(e.Func)) + sizePerValue
	}
	for _, a := range r.Aggs {
		n += a.sizeBytes()
	}
	for _, c := range r.GroupCols {
		n += int64(len(c)) + sizePerValue
	}
	for k, g := range r.Groups {
		n += int64(len(k)) + sizePerEntry
		n += int64(len(g.Values)) * sizePerValue
		for _, a := range g.Aggs {
			n += a.sizeBytes()
		}
	}
	for _, c := range r.SelectCols {
		n += int64(len(c)) + sizePerValue
	}
	for _, row := range r.Rows {
		n += sizePerEntry
		for _, v := range row {
			n += sizePerValue
			if s, ok := v.(string); ok {
				n += int64(len(s))
			}
		}
	}
	return n
}
