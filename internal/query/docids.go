// Package query implements Pinot's per-segment query planning and execution
// (paper sections 3.3.4 and 4.1–4.3): physical filter operators specialized
// per data representation (sorted-column ranges, inverted-index bitmaps,
// forward-index scans), aggregation and group-by execution, star-tree plans,
// metadata-only plans, and the merge of partial results performed at server
// and broker level.
package query

import (
	"sort"

	"pinot/internal/bitmap"
	"pinot/internal/segment"
)

// DocIterator walks matching document ids in ascending order.
type DocIterator interface {
	// Next returns the next matching doc id, or -1 when exhausted.
	Next() int
	// Advance returns the first matching doc id >= target, or -1.
	Advance(target int) int
}

// docIDSet is a physical filter operator: it produces a DocIterator and an
// estimated cardinality used for operator ordering (paper 3.3.4: "physical
// operator selection is done based on an estimated execution cost").
type docIDSet interface {
	iterator() DocIterator
	// estimate returns an upper bound on matching docs; scans that cannot
	// estimate return the segment size.
	estimate() int
}

// blockSize is the batch granularity of the vectorized execution path: doc
// ids, dict ids and metric values move through the engine in blocks of this
// many documents.
const blockSize = 1024

// blockIterator is the block-at-a-time counterpart of DocIterator: nextBlock
// fills buf with the next matching doc ids in ascending order and returns how
// many it wrote; 0 means exhausted. Implementations must evaluate only as
// many candidate documents as needed to fill buf — never ahead of it — so
// stats counted per evaluated entry are identical to the row-at-a-time path
// even when the caller stops early (selection LIMIT).
type blockIterator interface {
	nextBlock(buf []int) int
}

// blocksOf returns the best block iterator for a doc-id set: a native
// batch-decoding path when the operator has one, else a generic wrapper over
// its scalar iterator.
func blocksOf(s docIDSet) blockIterator {
	if sc, ok := s.(*scanDocIDSet); ok && sc.newBlockIter != nil {
		return sc.newBlockIter()
	}
	it := s.iterator()
	if b, ok := it.(blockIterator); ok {
		return b
	}
	return &genericBlockIterator{it: it}
}

// genericBlockIterator adapts any DocIterator to the block interface. AND/OR
// iterators use it: their leapfrog stays row-at-a-time (preserving the
// range-passing stats contract) while downstream value reads still batch.
type genericBlockIterator struct{ it DocIterator }

func (g *genericBlockIterator) nextBlock(buf []int) int {
	n := 0
	for n < len(buf) {
		doc := g.it.Next()
		if doc < 0 {
			break
		}
		buf[n] = doc
		n++
	}
	return n
}

// ---- range (sorted column) ----

type rangeDocIDSet struct {
	ranges []segment.DocRange // sorted, non-overlapping
}

func (s *rangeDocIDSet) estimate() int {
	n := 0
	for _, r := range s.ranges {
		n += r.End - r.Start
	}
	return n
}

func (s *rangeDocIDSet) iterator() DocIterator {
	return &rangeIterator{ranges: s.ranges, cur: -1}
}

type rangeIterator struct {
	ranges []segment.DocRange
	ri     int
	cur    int // last returned doc
}

func (it *rangeIterator) Next() int {
	doc := it.cur + 1
	for it.ri < len(it.ranges) {
		r := it.ranges[it.ri]
		if doc < r.Start {
			doc = r.Start
		}
		if doc < r.End {
			it.cur = doc
			return doc
		}
		it.ri++
	}
	return -1
}

func (it *rangeIterator) Advance(target int) int {
	if target <= it.cur {
		return it.Next()
	}
	it.cur = target - 1
	for it.ri < len(it.ranges) && it.ranges[it.ri].End <= target {
		it.ri++
	}
	return it.Next()
}

// nextBlock expands ranges arithmetically: no per-doc virtual calls.
func (it *rangeIterator) nextBlock(buf []int) int {
	n := 0
	for n < len(buf) && it.ri < len(it.ranges) {
		r := it.ranges[it.ri]
		doc := it.cur + 1
		if doc < r.Start {
			doc = r.Start
		}
		take := r.End - doc
		if take <= 0 {
			it.ri++
			continue
		}
		if room := len(buf) - n; take > room {
			take = room
		}
		for i := 0; i < take; i++ {
			buf[n+i] = doc + i
		}
		n += take
		it.cur = doc + take - 1
		if it.cur+1 >= r.End {
			it.ri++
		}
	}
	return n
}

// ---- bitmap (inverted index) ----

type bitmapDocIDSet struct {
	bm *bitmap.Bitmap
}

func (s *bitmapDocIDSet) estimate() int { return s.bm.Cardinality() }

func (s *bitmapDocIDSet) iterator() DocIterator {
	return &bitmapIterator{it: s.bm.Iterator()}
}

type bitmapIterator struct {
	it      *bitmap.Iterator
	scratch []uint32
}

func (b *bitmapIterator) Next() int {
	if !b.it.HasNext() {
		return -1
	}
	return int(b.it.Next())
}

func (b *bitmapIterator) Advance(target int) int {
	if target < 0 {
		target = 0
	}
	b.it.AdvanceIfNeeded(uint32(target))
	return b.Next()
}

// nextBlock drains whole containers through bitmap.Iterator.NextMany.
func (b *bitmapIterator) nextBlock(buf []int) int {
	if cap(b.scratch) < len(buf) {
		b.scratch = make([]uint32, len(buf))
	}
	got := b.it.NextMany(b.scratch[:len(buf)])
	for i := 0; i < got; i++ {
		buf[i] = int(b.scratch[i])
	}
	return got
}

// ---- scan (forward index) ----

// scanDocIDSet evaluates a per-document membership function over a doc
// range. It is the iterator-style fallback of paper section 4.2; And
// intersections drive it from narrower operators so it only evaluates part
// of the column.
type scanDocIDSet struct {
	numDocs int
	match   func(doc int) bool
	// newBlockIter, when set, builds a batch-decoding block iterator for
	// the vectorized path (dict-id chunks tested against a lookup table,
	// or typed raw-metric chunks). It must count the same per-entry stats
	// as match does.
	newBlockIter func() blockIterator
}

func (s *scanDocIDSet) estimate() int { return s.numDocs }

func (s *scanDocIDSet) iterator() DocIterator {
	return &scanIterator{n: s.numDocs, match: s.match, cur: -1}
}

type scanIterator struct {
	n     int
	match func(doc int) bool
	cur   int
}

func (it *scanIterator) Next() int {
	for doc := it.cur + 1; doc < it.n; doc++ {
		if it.match(doc) {
			it.cur = doc
			return doc
		}
	}
	it.cur = it.n
	return -1
}

func (it *scanIterator) Advance(target int) int {
	if target > it.cur+1 {
		it.cur = target - 1
	}
	return it.Next()
}

func (it *scanIterator) nextBlock(buf []int) int {
	n := 0
	for doc := it.cur + 1; doc < it.n; doc++ {
		if it.match(doc) {
			buf[n] = doc
			n++
			if n == len(buf) {
				it.cur = doc
				return n
			}
		}
	}
	it.cur = it.n
	return n
}

// ---- full range ----

type allDocIDSet struct{ numDocs int }

func (s *allDocIDSet) estimate() int { return s.numDocs }
func (s *allDocIDSet) iterator() DocIterator {
	return &rangeIterator{ranges: []segment.DocRange{{Start: 0, End: s.numDocs}}, cur: -1}
}

// ---- empty ----

type emptyDocIDSet struct{}

func (emptyDocIDSet) estimate() int         { return 0 }
func (emptyDocIDSet) iterator() DocIterator { return emptyIterator{} }

type emptyIterator struct{}

func (emptyIterator) Next() int               { return -1 }
func (emptyIterator) Advance(target int) int  { return -1 }
func (emptyIterator) nextBlock(buf []int) int { return 0 }

// ---- AND ----

// andDocIDSet intersects children. Iteration is driven by the child with the
// smallest estimate (sorted ranges from the physically sorted column first),
// so scan children only evaluate documents within the candidate set — the
// range-passing optimization of paper section 4.2.
type andDocIDSet struct {
	children []docIDSet
}

func (s *andDocIDSet) estimate() int {
	min := int(^uint(0) >> 1)
	for _, c := range s.children {
		if e := c.estimate(); e < min {
			min = e
		}
	}
	return min
}

func (s *andDocIDSet) iterator() DocIterator {
	children := append([]docIDSet(nil), s.children...)
	sort.SliceStable(children, func(i, j int) bool { return children[i].estimate() < children[j].estimate() })
	its := make([]DocIterator, len(children))
	heads := make([]int, len(children))
	for i, c := range children {
		its[i] = c.iterator()
		heads[i] = -1
	}
	return &andIterator{children: its, heads: heads, cur: -1}
}

// andIterator leapfrogs its children. heads caches each child's last
// returned doc so a child is only advanced with targets strictly beyond it —
// the underlying iterators are forward-only.
type andIterator struct {
	children  []DocIterator
	heads     []int
	cur       int
	exhausted bool
}

func (it *andIterator) Next() int { return it.Advance(it.cur + 1) }

func (it *andIterator) Advance(target int) int {
	if it.exhausted {
		return -1
	}
	if target <= it.cur {
		target = it.cur + 1
	}
	for {
		if it.heads[0] < target {
			it.heads[0] = it.children[0].Advance(target)
		}
		candidate := it.heads[0]
		if candidate < 0 {
			it.exhausted = true
			return -1
		}
		agreed := true
		for i := 1; i < len(it.children); i++ {
			if it.heads[i] < candidate {
				it.heads[i] = it.children[i].Advance(candidate)
			}
			if it.heads[i] < 0 {
				it.exhausted = true
				return -1
			}
			if it.heads[i] > candidate {
				target = it.heads[i]
				agreed = false
				break
			}
		}
		if agreed {
			it.cur = candidate
			return candidate
		}
	}
}

// ---- OR ----

type orDocIDSet struct {
	children []docIDSet
}

func (s *orDocIDSet) estimate() int {
	n := 0
	for _, c := range s.children {
		n += c.estimate()
	}
	return n
}

func (s *orDocIDSet) iterator() DocIterator {
	its := make([]DocIterator, len(s.children))
	heads := make([]int, len(s.children))
	for i, c := range s.children {
		its[i] = c.iterator()
		heads[i] = its[i].Next()
	}
	return &orIterator{children: its, heads: heads, cur: -1}
}

type orIterator struct {
	children []DocIterator
	heads    []int // current head per child, -1 when exhausted
	cur      int
}

func (it *orIterator) Next() int { return it.Advance(it.cur + 1) }

func (it *orIterator) Advance(target int) int {
	if target <= it.cur {
		target = it.cur + 1
	}
	min := -1
	for i, h := range it.heads {
		if h >= 0 && h < target {
			h = it.children[i].Advance(target)
			it.heads[i] = h
		}
		if h >= 0 && (min < 0 || h < min) {
			min = h
		}
	}
	if min < 0 {
		return -1
	}
	it.cur = min
	return min
}

// ---- NOT ----

// notDocIDSet complements a child within [0, numDocs) by materializing it.
type notDocIDSet struct {
	child   docIDSet
	numDocs int
}

func (s *notDocIDSet) estimate() int { return s.numDocs - min(s.child.estimate(), s.numDocs) }

func (s *notDocIDSet) iterator() DocIterator {
	bm := materialize(s.child, s.numDocs)
	return (&bitmapDocIDSet{bm: bitmap.FlipRange(bm, 0, uint32(s.numDocs))}).iterator()
}

// materialize converts any doc-id set into a bitmap.
func materialize(s docIDSet, numDocs int) *bitmap.Bitmap {
	if b, ok := s.(*bitmapDocIDSet); ok {
		return b.bm
	}
	bm := bitmap.New()
	it := s.iterator()
	for doc := it.Next(); doc >= 0; doc = it.Next() {
		bm.Add(uint32(doc))
	}
	return bm
}

// ---- batch scan block iterators (vectorized path) ----

// dictScanBlockIterator is the block form of a single-value dictionary scan:
// dict ids decode in blockSize chunks through the packed bulk-unpack kernel
// and are tested against a dense membership table. Chunks may decode ahead of
// the caller's demand, but entries are counted only when walked, so stats
// match the scalar scan exactly even under selection early-exit.
type dictScanBlockIterator struct {
	col     segment.ColumnReader
	lookup  []bool
	stats   *Stats
	numDocs int
	next    int // first doc of the next chunk to decode
	start   int // first doc of the decoded chunk
	pos     int // walk position within the decoded chunk
	ids     []uint32
	docs    []int
}

func newDictScanBlockIterator(col segment.ColumnReader, lookup []bool, numDocs int, stats *Stats) *dictScanBlockIterator {
	return &dictScanBlockIterator{col: col, lookup: lookup, stats: stats, numDocs: numDocs}
}

func (it *dictScanBlockIterator) nextBlock(buf []int) int {
	n := 0
	for n < len(buf) {
		if it.pos == len(it.ids) {
			if it.next >= it.numDocs {
				break
			}
			size := min(blockSize, it.numDocs-it.next)
			if cap(it.ids) < size {
				it.ids = make([]uint32, size)
				it.docs = make([]int, size)
			}
			it.ids = it.ids[:size]
			it.docs = it.docs[:size]
			for i := range it.docs {
				it.docs[i] = it.next + i
			}
			it.col.DictIDs(it.docs, it.ids)
			it.start = it.next
			it.next += size
			it.pos = 0
		}
		walked := it.pos
		for it.pos < len(it.ids) && n < len(buf) {
			if it.lookup[it.ids[it.pos]] {
				buf[n] = it.start + it.pos
				n++
			}
			it.pos++
		}
		if it.stats != nil {
			it.stats.NumEntriesScanned += int64(it.pos - walked)
		}
	}
	return n
}

// rawScanBlockIterator is the block form of a raw (no-dictionary) metric
// scan: values decode in typed chunks and are tested without boxing.
type rawScanBlockIterator struct {
	col         segment.ColumnReader
	matchLong   func(int64) bool   // set for integral columns
	matchDouble func(float64) bool // set otherwise
	stats       *Stats
	numDocs     int
	next        int
	start       int
	pos         int
	chunk       int // decoded chunk length
	docs        []int
	longs       []int64
	doubles     []float64
}

func (it *rawScanBlockIterator) nextBlock(buf []int) int {
	n := 0
	for n < len(buf) {
		if it.pos == it.chunk {
			if it.next >= it.numDocs {
				break
			}
			size := min(blockSize, it.numDocs-it.next)
			if cap(it.docs) < size {
				it.docs = make([]int, size)
				if it.matchLong != nil {
					it.longs = make([]int64, size)
				} else {
					it.doubles = make([]float64, size)
				}
			}
			it.docs = it.docs[:size]
			for i := range it.docs {
				it.docs[i] = it.next + i
			}
			if it.matchLong != nil {
				it.longs = it.longs[:size]
				it.col.Longs(it.docs, it.longs)
			} else {
				it.doubles = it.doubles[:size]
				it.col.Doubles(it.docs, it.doubles)
			}
			it.start = it.next
			it.next += size
			it.chunk = size
			it.pos = 0
		}
		walked := it.pos
		if it.matchLong != nil {
			for it.pos < it.chunk && n < len(buf) {
				if it.matchLong(it.longs[it.pos]) {
					buf[n] = it.start + it.pos
					n++
				}
				it.pos++
			}
		} else {
			for it.pos < it.chunk && n < len(buf) {
				if it.matchDouble(it.doubles[it.pos]) {
					buf[n] = it.start + it.pos
					n++
				}
				it.pos++
			}
		}
		if it.stats != nil {
			it.stats.NumEntriesScanned += int64(it.pos - walked)
		}
	}
	return n
}
