package query

import (
	"context"
	"errors"
	"fmt"

	"pinot/internal/pql"
	"pinot/internal/segment"
	"pinot/internal/startree"
)

// IndexedSegment pairs a segment with its optional star-tree index, the unit
// of per-segment planning.
type IndexedSegment struct {
	Seg  segment.Reader
	Tree *startree.Tree
}

// ExecuteSegment runs a query against one segment, generating the logical
// and physical plan for this segment's specific indexes (paper 3.3.4: "query
// plans are generated on a per-segment basis"). The context is checked at
// block boundaries, so a cancelled query stops within ~blockSize matched
// docs of ctx.Done().
func ExecuteSegment(ctx context.Context, is IndexedSegment, q *pql.Query, tableSchema *segment.Schema, opt Options) (*Intermediate, error) {
	env := newExecEnv(ctx, is.Seg.Name())
	env.table = q.Table
	if err := env.checkpoint(); err != nil {
		return nil, err
	}
	cs := columnSource{seg: is.Seg, schema: tableSchema}
	run := func() (*Intermediate, error) {
		if q.IsAggregation() {
			inputs, err := newAggInputs(env, cs, q.Select, opt)
			if err != nil {
				return nil, err
			}
			exprs := make([]pql.Expression, len(inputs))
			for i, in := range inputs {
				exprs[i] = in.expr
			}
			if q.HasGroupBy() {
				return executeGroupBy(env, cs, is, q, inputs, exprs, opt)
			}
			return executeAggregation(env, cs, is, q, inputs, exprs, opt)
		}
		return executeSelection(env, cs, is, q, opt)
	}
	res, err := run()
	// The group-state cap returns a mergeable partial alongside its error,
	// so the counter lands on that path too.
	if res != nil && env.dictExprUsed {
		res.Stats.DictExprSegments = 1
	}
	return res, err
}

func baseStats(seg segment.Reader) Stats {
	return Stats{NumSegmentsQueried: 1, TotalDocs: int64(seg.NumDocs())}
}

func executeAggregation(env *execEnv, cs columnSource, is IndexedSegment, q *pql.Query, inputs []aggInput, exprs []pql.Expression, opt Options) (*Intermediate, error) {
	out := NewAggIntermediate(exprs)
	out.Stats = baseStats(is.Seg)

	// Metadata-only plan: no filter and all aggregations answerable from
	// column statistics.
	if q.Filter == nil && !opt.DisableMetadataPlans && metadataAnswerable(inputs) {
		out.Aggs = answerFromMetadata(inputs, is.Seg.NumDocs())
		out.Stats.NumSegmentsMatched = 1
		out.Stats.MetadataOnlySegments = 1
		return out, nil
	}

	// Star-tree plan.
	if plan, ok := planStarTree(cs, is, q, inputs, opt); ok {
		matched := false
		scanned := plan.run(func(rec int) {
			matched = true
			for i, in := range inputs {
				switch in.expr.Func {
				case pql.Count:
					out.Aggs[i].AddCount(plan.tree.Count(rec))
				default: // SUM or AVG on a tree metric
					mi := plan.metricIdx[i]
					out.Aggs[i].AddSum(plan.tree.Sum(rec, mi), plan.tree.Count(rec))
				}
			}
		})
		if matched {
			out.Stats.NumSegmentsMatched = 1
		}
		out.Stats.StarTreeSegments = 1
		out.Stats.StarTreeRecordsScanned = int64(scanned)
		out.Stats.StarTreeRawDocs = int64(plan.tree.NumRawDocs())
		return out, nil
	}

	set, err := buildFilter(env, cs, q.Filter, opt, &out.Stats)
	if err != nil {
		return nil, err
	}
	var docs int64
	if opt.DisableVectorization {
		it := set.iterator()
		for doc := it.Next(); doc >= 0; doc = it.Next() {
			if docs%blockSize == 0 {
				if err := env.checkpoint(); err != nil {
					return nil, err
				}
			}
			docs++
			for i, in := range inputs {
				in.accumulate(out.Aggs[i], doc)
			}
		}
	} else {
		var err error
		docs, err = runAggBlocks(env, set, inputs, out.Aggs)
		if err != nil {
			return nil, err
		}
	}
	// A final checkpoint surfaces an expression error latched in the last
	// partial block; the vectorized loop already re-checks before observing
	// exhaustion, so both modes fail identically.
	if err := env.checkpoint(); err != nil {
		return nil, err
	}
	out.Stats.NumDocsScanned = docs
	out.Stats.NumEntriesScanned += docs * int64(len(inputs))
	if docs > 0 {
		out.Stats.NumSegmentsMatched = 1
	}
	return out, nil
}

func executeGroupBy(env *execEnv, cs columnSource, is IndexedSegment, q *pql.Query, inputs []aggInput, exprs []pql.Expression, opt Options) (*Intermediate, error) {
	out := &Intermediate{Kind: KindGroupBy, AggExprs: exprs, GroupCols: q.GroupBy, Groups: map[string]*GroupEntry{}}
	out.Stats = baseStats(is.Seg)

	items := make([]groupItem, len(q.GroupBy))
	for i, name := range q.GroupBy {
		if e := q.GroupByExprs; i < len(e) && e[i] != nil {
			ev, err := newExprEval(env, cs, e[i], opt)
			if err != nil {
				return nil, err
			}
			items[i] = groupItem{ev: ev}
			continue
		}
		col, err := cs.column(name)
		if err != nil {
			return nil, err
		}
		if !col.Spec().SingleValue {
			return nil, fmt.Errorf("query: GROUP BY on multi-value column %q is not supported", name)
		}
		if !col.HasDictionary() {
			return nil, fmt.Errorf("query: GROUP BY on raw column %q is not supported", name)
		}
		items[i] = groupItem{col: col}
	}

	charger := &groupCharger{qc: env.qc, nAggs: len(exprs)}
	entryFor := func(values []any) *GroupEntry {
		key := GroupKey(values)
		g, ok := out.Groups[key]
		if !ok {
			aggs := make([]*AggState, len(exprs))
			for i, e := range exprs {
				aggs[i] = NewAggState(e.Func)
			}
			g = &GroupEntry{Values: append([]any(nil), values...), Aggs: aggs}
			out.Groups[key] = g
			charger.charge(key, len(values))
		}
		return g
	}

	// Star-tree plan. planStarTree declines expression group-bys (their
	// rendered text never matches a split dimension), so items[i].col is
	// always set when this plan runs.
	if plan, ok := planStarTree(cs, is, q, inputs, opt); ok {
		values := make([]any, len(q.GroupBy))
		scanned := plan.run(func(rec int) {
			for i, d := range plan.groupDims {
				values[i] = items[i].col.Value(int(plan.tree.DimValue(rec, d)))
			}
			g := entryFor(values)
			for i, in := range inputs {
				switch in.expr.Func {
				case pql.Count:
					g.Aggs[i].AddCount(plan.tree.Count(rec))
				default:
					g.Aggs[i].AddSum(plan.tree.Sum(rec, plan.metricIdx[i]), plan.tree.Count(rec))
				}
			}
		})
		if len(out.Groups) > 0 {
			out.Stats.NumSegmentsMatched = 1
		}
		out.Stats.StarTreeSegments = 1
		out.Stats.StarTreeRecordsScanned = int64(scanned)
		out.Stats.StarTreeRawDocs = int64(plan.tree.NumRawDocs())
		out.Stats.GroupStateBytes = charger.bytes
		return out, nil
	}

	set, err := buildFilter(env, cs, q.Filter, opt, &out.Stats)
	if err != nil {
		return nil, err
	}
	// On a tripped group-state cap the segment's partial groups are still
	// merged — the query degrades instead of growing unbounded state.
	var limitErr error
	var docs int64
	if opt.DisableVectorization {
		it := set.iterator()
		values := make([]any, len(items))
		for doc := it.Next(); doc >= 0; doc = it.Next() {
			if docs%blockSize == 0 {
				if err := env.checkpoint(); err != nil {
					return nil, err
				}
				if env.groupLimitTripped() {
					limitErr = ErrGroupStateLimit
					break
				}
			}
			docs++
			for i, item := range items {
				values[i] = item.read(doc)
			}
			g := entryFor(values)
			for i, in := range inputs {
				in.accumulate(g.Aggs[i], doc)
			}
		}
	} else {
		var err error
		out.Groups, docs, err = runGroupByBlocks(env, set, inputs, items, exprs, charger)
		switch {
		case errors.Is(err, ErrGroupStateLimit):
			limitErr = err
		case err != nil:
			return nil, err
		}
	}
	if err := env.checkpoint(); err != nil {
		return nil, err
	}
	out.Stats.NumDocsScanned = docs
	out.Stats.NumEntriesScanned += docs * int64(len(inputs)+len(items))
	if docs > 0 {
		out.Stats.NumSegmentsMatched = 1
	}
	out.Stats.GroupStateBytes = charger.bytes
	return out, limitErr
}

func executeSelection(env *execEnv, cs columnSource, is IndexedSegment, q *pql.Query, opt Options) (*Intermediate, error) {
	// Expand '*' to the schema's column order.
	var cols []string
	if len(q.Select) == 1 && q.Select[0].Column == "*" {
		schema := is.Seg.Schema()
		if cs.schema != nil {
			schema = cs.schema
		}
		for _, f := range schema.Fields {
			cols = append(cols, f.Name)
		}
	} else {
		for _, e := range q.Select {
			cols = append(cols, e.Column)
		}
	}
	// ORDER BY columns outside the select list are fetched as hidden
	// trailing columns and dropped after the final sort.
	hidden := 0
	for _, o := range q.OrderBy {
		found := false
		for _, c := range cols {
			if c == o.Column {
				found = true
				break
			}
		}
		if !found {
			cols = append(cols, o.Column)
			hidden++
		}
	}
	out := &Intermediate{Kind: KindSelection, SelectCols: cols, HiddenCols: hidden}
	out.Stats = baseStats(is.Seg)

	readers := make([]segment.ColumnReader, len(cols))
	for i, name := range cols {
		col, err := cs.column(name)
		if err != nil {
			return nil, err
		}
		readers[i] = col
	}
	set, err := buildFilter(env, cs, q.Filter, opt, &out.Stats)
	if err != nil {
		return nil, err
	}
	// Keep enough rows for the broker to apply offset+limit after the
	// merge. Without ORDER BY the first rows win; with ORDER BY rows are
	// re-sorted at finalize, so each segment contributes its best
	// offset+limit rows (a superset of what could be needed).
	keep := q.Offset + q.Limit
	needAll := len(q.OrderBy) > 0
	var docs int64
	if !opt.DisableVectorization {
		var err error
		docs, err = runSelectionBlocks(env, out, q, set, readers, keep, needAll)
		if err != nil {
			return nil, err
		}
	} else {
		it := set.iterator()
		var buf []int
		readValue := func(col segment.ColumnReader, doc int) any {
			f := col.Spec()
			switch {
			case f.Kind == segment.Metric && f.Type.Integral():
				return col.Long(doc)
			case f.Kind == segment.Metric:
				return col.Double(doc)
			case f.SingleValue:
				return col.Value(col.DictID(doc))
			default:
				buf = col.DictIDsMV(doc, buf[:0])
				vals := make([]any, len(buf))
				for j, id := range buf {
					vals[j] = col.Value(id)
				}
				return vals
			}
		}
		for doc := it.Next(); doc >= 0; doc = it.Next() {
			if docs%blockSize == 0 {
				if err := env.checkpoint(); err != nil {
					return nil, err
				}
			}
			docs++
			row := make([]any, len(readers))
			for i, col := range readers {
				row[i] = readValue(col, doc)
			}
			out.Rows = append(out.Rows, row)
			if !needAll && len(out.Rows) >= keep {
				break
			}
			if needAll && len(out.Rows) > 4*keep {
				// Prune: sort and keep the best rows so memory stays
				// bounded on large matches.
				tmp := &Intermediate{Kind: KindSelection, SelectCols: cols, Rows: out.Rows}
				pruneQ := *q
				pruneQ.Offset, pruneQ.Limit = 0, keep
				out.Rows = tmp.Finalize(&pruneQ).Rows
			}
		}
	}
	// Early-exit breaks (LIMIT satisfied) skip this on purpose in both
	// modes: rows already kept are valid even when a later candidate's
	// expression filter latched an error.
	if len(out.Rows) < keep || needAll {
		if err := env.checkpoint(); err != nil {
			return nil, err
		}
	}
	out.Stats.NumDocsScanned = docs
	out.Stats.NumEntriesScanned = docs * int64(len(readers))
	if docs > 0 {
		out.Stats.NumSegmentsMatched = 1
	}
	return out, nil
}

// starTreePlan is a resolved star-tree execution: per-dimension matchers and
// the metric index for each aggregation.
type starTreePlan struct {
	tree      *startree.Tree
	matchers  map[int]startree.IDMatcher
	groupDims []int
	metricIdx []int // per aggregation input; -1 for COUNT
}

func (p *starTreePlan) run(visit func(rec int)) int {
	return p.tree.Scan(p.matchers, p.groupDims, visit)
}

// planStarTree decides whether the segment's star-tree can answer the query
// (paper 4.3: "if a user specifies a query that can be optimized by using
// the star-tree structure, we transparently use it") and builds the plan.
func planStarTree(cs columnSource, is IndexedSegment, q *pql.Query, inputs []aggInput, opt Options) (*starTreePlan, bool) {
	tree := is.Tree
	if tree == nil || opt.DisableStarTree {
		return nil, false
	}
	// Every aggregation must be COUNT, or SUM/AVG over a tree metric.
	metricIdx := make([]int, len(inputs))
	for i, in := range inputs {
		switch in.expr.Func {
		case pql.Count:
			metricIdx[i] = -1
		case pql.Sum, pql.Avg:
			mi := tree.MetricIndex(in.expr.Column)
			if mi < 0 {
				return nil, false
			}
			metricIdx[i] = mi
		default:
			return nil, false
		}
	}
	// Every group-by column must be a split dimension.
	groupDims := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		d := tree.DimIndex(g)
		if d < 0 {
			return nil, false
		}
		groupDims[i] = d
	}
	// The filter must decompose into per-split-dimension predicates.
	matchers := map[int]startree.IDMatcher{}
	if q.Filter != nil {
		perCol, ok := decomposeFilter(q.Filter)
		if !ok {
			return nil, false
		}
		for col, preds := range perCol {
			d := tree.DimIndex(col)
			if d < 0 {
				return nil, false
			}
			reader, err := cs.column(col)
			if err != nil || !reader.HasDictionary() {
				return nil, false
			}
			// AND together this column's predicates.
			var sets []*idSet
			for _, pred := range preds {
				set, err := compileLeaf(reader, pred)
				if err != nil {
					return nil, false
				}
				sets = append(sets, set)
			}
			matchers[d] = func(id int32) bool {
				for _, s := range sets {
					if !s.contains(int(id)) {
						return false
					}
				}
				return true
			}
		}
	}
	return &starTreePlan{tree: tree, matchers: matchers, groupDims: groupDims, metricIdx: metricIdx}, true
}

// decomposeFilter flattens a filter into per-column predicate conjunctions.
// It succeeds for trees of ANDs whose OR subtrees reference a single column
// (e.g. the Figure 10 query) and contain no NOT.
func decomposeFilter(p pql.Predicate) (map[string][]pql.Predicate, bool) {
	out := map[string][]pql.Predicate{}
	var walk func(p pql.Predicate) bool
	walk = func(p pql.Predicate) bool {
		switch n := p.(type) {
		case pql.And:
			for _, c := range n.Children {
				if !walk(c) {
					return false
				}
			}
			return true
		case pql.Or:
			cols := pql.PredicateColumns(n)
			if len(cols) != 1 {
				return false
			}
			// A single-column OR becomes an IN-like predicate: the
			// union of child matches. Rewrite as one pseudo-leaf.
			if !orIsLeafOnly(n) {
				return false
			}
			out[cols[0]] = append(out[cols[0]], orAsIn(n, cols[0]))
			return true
		case pql.Not:
			return false
		case pql.Comparison:
			out[n.Column] = append(out[n.Column], n)
			return true
		case pql.In:
			out[n.Column] = append(out[n.Column], n)
			return true
		case pql.Between:
			out[n.Column] = append(out[n.Column], n)
			return true
		}
		return false
	}
	if !walk(p) {
		return nil, false
	}
	return out, true
}

func orIsLeafOnly(o pql.Or) bool {
	for _, c := range o.Children {
		switch n := c.(type) {
		case pql.Comparison:
			if n.Op != pql.OpEq {
				return false
			}
		case pql.In:
			if n.Negated {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func orAsIn(o pql.Or, col string) pql.Predicate {
	var values []any
	for _, c := range o.Children {
		switch n := c.(type) {
		case pql.Comparison:
			values = append(values, n.Value)
		case pql.In:
			values = append(values, n.Values...)
		}
	}
	return pql.In{Column: col, Values: values}
}
