// Query-lifecycle tests: cooperative cancellation must stop an in-flight
// segment within one block of ctx.Done() in both execution modes, a tripped
// group-by state cap must degrade to a partial result instead of growing
// unbounded, and every Run result must carry the query ID, phase trace and
// resource accounting.
package query_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pinot/internal/qctx"
	"pinot/internal/query"
	"pinot/internal/segment"
)

// tripwire cancels a context once a wrapped column has served fireAt values,
// modelling a deadline that fires mid-scan.
type tripwire struct {
	fireAt int64
	reads  atomic.Int64
	cancel context.CancelFunc
}

func (tw *tripwire) note(n int) {
	if tw.reads.Add(int64(n)) >= tw.fireAt {
		tw.cancel()
	}
}

type tripColumn struct {
	segment.ColumnReader
	tw *tripwire
}

func (c *tripColumn) Long(doc int) int64 {
	c.tw.note(1)
	return c.ColumnReader.Long(doc)
}

func (c *tripColumn) Longs(docs []int, dst []int64) {
	c.tw.note(len(docs))
	c.ColumnReader.Longs(docs, dst)
}

func (c *tripColumn) Double(doc int) float64 {
	c.tw.note(1)
	return c.ColumnReader.Double(doc)
}

func (c *tripColumn) Doubles(docs []int, dst []float64) {
	c.tw.note(len(docs))
	c.ColumnReader.Doubles(docs, dst)
}

type tripSegment struct {
	segment.Reader
	col string
	tw  *tripwire
}

func (s *tripSegment) Column(name string) segment.ColumnReader {
	c := s.Reader.Column(name)
	if c == nil || name != s.col {
		return c
	}
	return &tripColumn{ColumnReader: c, tw: s.tw}
}

func lifecycleSchema(t *testing.T) *segment.Schema {
	t.Helper()
	schema, err := segment.NewSchema("lifetbl", []segment.FieldSpec{
		{Name: "bucket", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "hits", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true, TimeUnit: "DAYS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func lifecycleSegment(t *testing.T, schema *segment.Schema, name string, rows int, bucket func(i int) int64) segment.Reader {
	t.Helper()
	b, err := segment.NewBuilder("lifetbl", name, schema, segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := b.Add(segment.Row{bucket(i), int64(i % 97), int64(17000 + i%7)}); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// TestMidScanCancellationBothModes proves the cooperative-cancellation bound:
// when the context is cancelled after fireAt column reads, execution stops
// within one ~blockSize-doc block in both modes, the query still returns a
// partial (not failed) response, and the cancelled segment is named in the
// timeout exception.
func TestMidScanCancellationBothModes(t *testing.T) {
	const (
		rows      = 8000
		fireAt    = 1500
		blockSize = 1024 // must match the engine's block granularity
	)
	schema := lifecycleSchema(t)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"vec", false}, {"scalar", true}} {
		t.Run(mode.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			tw := &tripwire{fireAt: fireAt, cancel: cancel}
			tripped := &tripSegment{
				Reader: lifecycleSegment(t, schema, "trip0", rows, func(i int) int64 { return int64(i % 5) }),
				col:    "hits",
				tw:     tw,
			}
			segs := []query.IndexedSegment{{Seg: tripped}}
			opt := query.Options{DisableMetadataPlans: true, DisableVectorization: mode.disable}

			res, err := query.Run(ctx, "SELECT sum(hits) FROM lifetbl", segs, schema, opt)
			if err != nil {
				t.Fatalf("cancellation must degrade, not fail: %v", err)
			}
			if !res.Partial || len(res.Exceptions) == 0 {
				t.Fatalf("want partial result with exceptions, got partial=%v exceptions=%v", res.Partial, res.Exceptions)
			}
			exc := strings.Join(res.Exceptions, "\n")
			if !strings.Contains(exc, "cancelled mid-scan") || !strings.Contains(exc, "trip0") {
				t.Fatalf("exception must name the cancelled segment, got %q", exc)
			}
			if got := tw.reads.Load(); got > fireAt+blockSize {
				t.Fatalf("read %d values after cancel at %d; want stop within one %d-doc block", got, fireAt, blockSize)
			}
			if got := tw.reads.Load(); got < fireAt {
				t.Fatalf("tripwire never fired: %d reads", got)
			}
		})
	}
}

// TestGroupStateCapDegradesBothModes proves the per-query memory cap: a
// group-by whose state outgrows Options.GroupStateLimitBytes stops at the
// next block boundary, keeps the groups built so far, and reports a resource
// exception — and both execution modes truncate at the same point.
func TestGroupStateCapDegradesBothModes(t *testing.T) {
	const (
		rows      = 4000
		limit     = 2500
		blockSize = 1024
	)
	schema := lifecycleSchema(t)
	// Every row is its own group, so state grows with every scanned doc and
	// the cap trips inside the first block.
	seg := lifecycleSegment(t, schema, "cap0", rows, func(i int) int64 { return int64(i) })
	segs := []query.IndexedSegment{{Seg: seg}}
	q := "SELECT sum(hits) FROM lifetbl GROUP BY bucket TOP 5000"

	type outcome struct {
		rows  string
		stats query.Stats
	}
	var got [2]outcome
	for mi, mode := range []bool{false, true} {
		opt := query.Options{
			DisableMetadataPlans: true,
			DisableVectorization: mode,
			GroupStateLimitBytes: limit,
		}
		res, err := query.Run(context.Background(), q, segs, schema, opt)
		if err != nil {
			t.Fatalf("mode %d: cap must degrade, not fail: %v", mi, err)
		}
		if !res.Partial {
			t.Fatalf("mode %d: want partial result", mi)
		}
		exc := strings.Join(res.Exceptions, "\n")
		want := fmt.Sprintf("group-by state exceeded %d bytes", limit)
		if !strings.Contains(exc, want) {
			t.Fatalf("mode %d: exception %q missing %q", mi, exc, want)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("mode %d: partial result must keep the groups built so far", mi)
		}
		// The cap is checked at block boundaries: exactly one block scanned.
		if res.Stats.NumDocsScanned != blockSize {
			t.Fatalf("mode %d: scanned %d docs, want one block (%d)", mi, res.Stats.NumDocsScanned, blockSize)
		}
		if res.Stats.GroupStateBytes <= limit {
			t.Fatalf("mode %d: GroupStateBytes = %d, want > limit %d (cap trips after the charge)", mi, res.Stats.GroupStateBytes, limit)
		}
		rj, err := json.Marshal(res.Rows)
		if err != nil {
			t.Fatal(err)
		}
		got[mi] = outcome{rows: string(rj), stats: res.Stats}
	}
	if got[0].rows != got[1].rows {
		t.Fatalf("modes truncate differently:\nvec:    %s\nscalar: %s", got[0].rows, got[1].rows)
	}
	if got[0].stats != got[1].stats {
		t.Fatalf("stats diverge:\nvec:    %+v\nscalar: %+v", got[0].stats, got[1].stats)
	}
}

// TestRunStampsLifecycleFields: every Run result — the single-node / Druid
// entry point included — carries a query ID, a phase trace whose ledger sums
// to no more than the measured wall clock, and scan accounting.
func TestRunStampsLifecycleFields(t *testing.T) {
	schema := lifecycleSchema(t)
	seg := lifecycleSegment(t, schema, "trace0", 3000, func(i int) int64 { return int64(i % 11) })
	segs := []query.IndexedSegment{{Seg: seg}}

	start := time.Now()
	res, err := query.Run(context.Background(), "SELECT sum(hits) FROM lifetbl WHERE bucket >= 3", segs, schema, query.Options{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryID == "" {
		t.Fatal("missing query ID")
	}
	for _, p := range []qctx.Phase{qctx.PhaseParse, qctx.PhaseExecute, qctx.PhaseReduce} {
		if _, ok := res.Trace[p]; !ok {
			t.Fatalf("trace missing phase %q: %v", p, res.Trace)
		}
	}
	if sum := res.Trace.WallSum(); sum > elapsed {
		t.Fatalf("trace ledger %v exceeds wall clock %v", sum, elapsed)
	}
	if res.Stats.NumDocsScanned == 0 || res.Stats.NumEntriesScanned == 0 {
		t.Fatalf("scan accounting missing: %+v", res.Stats)
	}
}
