package query

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pinot/internal/pql"
	"pinot/internal/segment"
	"pinot/internal/startree"
)

// ---- test fixtures ----

type testRow struct {
	country string
	browser string
	member  int64
	clicks  int64
	rev     float64
	day     int64
}

func testRows(n int, seed int64) []testRow {
	r := rand.New(rand.NewSource(seed))
	countries := []string{"us", "de", "fr", "in", "br", "jp", "uk"}
	browsers := []string{"chrome", "firefox", "safari", "edge"}
	rows := make([]testRow, n)
	for i := range rows {
		rows[i] = testRow{
			country: countries[r.Intn(len(countries))],
			browser: browsers[r.Intn(len(browsers))],
			member:  int64(r.Intn(50)),
			clicks:  int64(r.Intn(100)),
			rev:     float64(r.Intn(1000)) / 10,
			day:     int64(15000 + r.Intn(30)),
		}
	}
	return rows
}

func rowsSchema(t testing.TB) *segment.Schema {
	t.Helper()
	s, err := segment.NewSchema("events", []segment.FieldSpec{
		{Name: "country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "browser", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "memberId", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "clicks", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "revenue", Type: segment.TypeDouble, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildRows(t testing.TB, rows []testRow, cfg segment.IndexConfig, name string) *segment.Segment {
	t.Helper()
	b, err := segment.NewBuilder("events", name, rowsSchema(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.Add(segment.Row{r.country, r.browser, r.member, r.clicks, r.rev, r.day}); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func runPQL(t testing.TB, segs []IndexedSegment, q string, opt Options) *Result {
	t.Helper()
	res, err := Run(context.Background(), q, segs, nil, opt)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	return res
}

// refFilter evaluates a predicate against a testRow, the brute-force
// reference.
func refFilter(r testRow, pred pql.Predicate) bool {
	get := func(col string) any {
		switch col {
		case "country":
			return r.country
		case "browser":
			return r.browser
		case "memberId":
			return r.member
		case "clicks":
			return r.clicks
		case "revenue":
			return r.rev
		case "day":
			return r.day
		}
		panic("unknown column " + col)
	}
	coerce := func(col string, v any) any {
		switch get(col).(type) {
		case int64:
			if f, ok := v.(float64); ok {
				return int64(f)
			}
			return v
		case float64:
			if i, ok := v.(int64); ok {
				return float64(i)
			}
			return v
		}
		return v
	}
	switch p := pred.(type) {
	case pql.Comparison:
		c := segment.CompareValues(get(p.Column), coerce(p.Column, p.Value))
		switch p.Op {
		case pql.OpEq:
			return c == 0
		case pql.OpNeq:
			return c != 0
		case pql.OpLt:
			return c < 0
		case pql.OpLte:
			return c <= 0
		case pql.OpGt:
			return c > 0
		case pql.OpGte:
			return c >= 0
		}
	case pql.In:
		for _, v := range p.Values {
			if segment.CompareValues(get(p.Column), coerce(p.Column, v)) == 0 {
				return !p.Negated
			}
		}
		return p.Negated
	case pql.Between:
		return segment.CompareValues(get(p.Column), coerce(p.Column, p.Lo)) >= 0 &&
			segment.CompareValues(get(p.Column), coerce(p.Column, p.Hi)) <= 0
	case pql.And:
		for _, c := range p.Children {
			if !refFilter(r, c) {
				return false
			}
		}
		return true
	case pql.Or:
		for _, c := range p.Children {
			if refFilter(r, c) {
				return true
			}
		}
		return false
	case pql.Not:
		return !refFilter(r, p.Child)
	}
	panic("unknown predicate")
}

// ---- basic correctness across index configurations ----

func allConfigs() map[string]segment.IndexConfig {
	return map[string]segment.IndexConfig{
		"noindex":  {},
		"inverted": {InvertedColumns: []string{"country", "browser", "memberId", "day"}},
		"sorted":   {SortColumn: "memberId"},
		"sorted+inverted": {
			SortColumn:      "memberId",
			InvertedColumns: []string{"country", "browser"},
		},
	}
}

func TestFilterCorrectnessAcrossIndexConfigs(t *testing.T) {
	rows := testRows(3000, 1)
	filters := []string{
		"country = 'us'",
		"country <> 'us'",
		"memberId = 7",
		"memberId >= 25",
		"memberId BETWEEN 10 AND 20",
		"day < 15010",
		"clicks > 50",
		"revenue <= 42.5",
		"country IN ('us', 'de', 'xx')",
		"country NOT IN ('us', 'de')",
		"browser = 'chrome' AND country = 'us'",
		"browser = 'firefox' OR browser = 'safari'",
		"NOT country = 'us'",
		"(country = 'us' OR country = 'de') AND memberId < 10 AND clicks >= 20",
		"NOT (country = 'us' AND browser = 'chrome')",
		"memberId = 999",
		"memberId >= 0",
		"day >= 15000 AND day <= 15029",
	}
	for cfgName, cfg := range allConfigs() {
		seg := buildRows(t, rows, cfg, "s0")
		segs := []IndexedSegment{{Seg: seg}}
		for _, f := range filters {
			qText := "SELECT count(*) FROM events WHERE " + f
			res := runPQL(t, segs, qText, Options{})
			q, _ := pql.Parse(qText)
			want := int64(0)
			for _, r := range rows {
				if refFilter(r, q.Filter) {
					want++
				}
			}
			got := res.Rows[0][0].(int64)
			if got != want {
				t.Errorf("[%s] %s: count = %d, want %d", cfgName, f, got, want)
			}
		}
	}
}

func TestFilterCorrectnessForceBitmap(t *testing.T) {
	// Druid-style forced bitmap evaluation must agree with the default.
	rows := testRows(2000, 2)
	seg := buildRows(t, rows, segment.IndexConfig{
		InvertedColumns: []string{"country", "browser", "memberId", "day"},
	}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	filters := []string{
		"country = 'us'",
		"memberId >= 25",
		"country NOT IN ('us')",
		"browser = 'chrome' AND country = 'us' AND day > 15015",
	}
	for _, f := range filters {
		qText := "SELECT count(*) FROM events WHERE " + f
		def := runPQL(t, segs, qText, Options{}).Rows[0][0].(int64)
		forced := runPQL(t, segs, qText, Options{ForceBitmap: true}).Rows[0][0].(int64)
		if def != forced {
			t.Errorf("%s: default %d != forced-bitmap %d", f, def, forced)
		}
	}
}

func TestAggregationFunctions(t *testing.T) {
	rows := testRows(1000, 3)
	seg := buildRows(t, rows, segment.IndexConfig{}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	res := runPQL(t, segs,
		"SELECT count(*), sum(clicks), min(clicks), max(clicks), avg(revenue), distinctcount(country) FROM events WHERE country = 'us'", Options{})
	var wantCount, wantSum int64
	wantMin, wantMax := int64(1<<62), int64(-1)
	var wantRev float64
	for _, r := range rows {
		if r.country != "us" {
			continue
		}
		wantCount++
		wantSum += r.clicks
		if r.clicks < wantMin {
			wantMin = r.clicks
		}
		if r.clicks > wantMax {
			wantMax = r.clicks
		}
		wantRev += r.rev
	}
	row := res.Rows[0]
	if row[0].(int64) != wantCount {
		t.Errorf("count = %v, want %d", row[0], wantCount)
	}
	if row[1].(float64) != float64(wantSum) {
		t.Errorf("sum = %v, want %d", row[1], wantSum)
	}
	if row[2].(float64) != float64(wantMin) || row[3].(float64) != float64(wantMax) {
		t.Errorf("min/max = %v/%v, want %d/%d", row[2], row[3], wantMin, wantMax)
	}
	wantAvg := wantRev / float64(wantCount)
	if got := row[4].(float64); got < wantAvg-1e-9 || got > wantAvg+1e-9 {
		t.Errorf("avg = %v, want %v", got, wantAvg)
	}
	if row[5].(int64) != 1 {
		t.Errorf("distinctcount(country) with country='us' filter = %v, want 1", row[5])
	}
}

func TestDistinctCount(t *testing.T) {
	rows := testRows(500, 4)
	seg := buildRows(t, rows, segment.IndexConfig{}, "s0")
	res := runPQL(t, []IndexedSegment{{Seg: seg}}, "SELECT distinctcount(memberId) FROM events", Options{})
	want := map[int64]bool{}
	for _, r := range rows {
		want[r.member] = true
	}
	if got := res.Rows[0][0].(int64); got != int64(len(want)) {
		t.Errorf("distinctcount = %d, want %d", got, len(want))
	}
}

func TestGroupBy(t *testing.T) {
	rows := testRows(2000, 5)
	for cfgName, cfg := range allConfigs() {
		seg := buildRows(t, rows, cfg, "s0")
		res := runPQL(t, []IndexedSegment{{Seg: seg}},
			"SELECT sum(clicks) FROM events WHERE browser = 'chrome' GROUP BY country TOP 100", Options{})
		want := map[string]float64{}
		for _, r := range rows {
			if r.browser == "chrome" {
				want[r.country] += float64(r.clicks)
			}
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("[%s] groups = %d, want %d", cfgName, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			c := row[0].(string)
			if row[1].(float64) != want[c] {
				t.Errorf("[%s] group %s = %v, want %v", cfgName, c, row[1], want[c])
			}
		}
		// Rows must be ordered by the first aggregation, descending.
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i][1].(float64) > res.Rows[i-1][1].(float64) {
				t.Fatalf("[%s] group rows not sorted desc", cfgName)
			}
		}
	}
}

func TestGroupByTopN(t *testing.T) {
	rows := testRows(2000, 6)
	seg := buildRows(t, rows, segment.IndexConfig{}, "s0")
	res := runPQL(t, []IndexedSegment{{Seg: seg}}, "SELECT count(*) FROM events GROUP BY country TOP 3", Options{})
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	counts := map[string]int64{}
	for _, r := range rows {
		counts[r.country]++
	}
	var all []int64
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	for i, row := range res.Rows {
		if row[1].(int64) != all[i] {
			t.Errorf("top %d = %v, want %v", i, row[1], all[i])
		}
	}
}

func TestGroupByMultipleColumns(t *testing.T) {
	rows := testRows(1500, 7)
	seg := buildRows(t, rows, segment.IndexConfig{}, "s0")
	res := runPQL(t, []IndexedSegment{{Seg: seg}},
		"SELECT count(*), sum(clicks) FROM events GROUP BY country, browser TOP 1000", Options{})
	type key struct{ c, b string }
	wantN := map[key]int64{}
	wantS := map[key]float64{}
	for _, r := range rows {
		k := key{r.country, r.browser}
		wantN[k]++
		wantS[k] += float64(r.clicks)
	}
	if len(res.Rows) != len(wantN) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(wantN))
	}
	for _, row := range res.Rows {
		k := key{row[0].(string), row[1].(string)}
		if row[2].(int64) != wantN[k] || row[3].(float64) != wantS[k] {
			t.Errorf("group %v = %v/%v, want %v/%v", k, row[2], row[3], wantN[k], wantS[k])
		}
	}
}

func TestSelectionQueries(t *testing.T) {
	rows := testRows(500, 8)
	seg := buildRows(t, rows, segment.IndexConfig{SortColumn: "memberId"}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	res := runPQL(t, segs, "SELECT country, clicks FROM events WHERE memberId = 7 LIMIT 1000", Options{})
	want := 0
	for _, r := range rows {
		if r.member == 7 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	if !reflect.DeepEqual(res.Columns, []string{"country", "clicks"}) {
		t.Fatalf("columns = %v", res.Columns)
	}
	// ORDER BY + LIMIT.
	res = runPQL(t, segs, "SELECT memberId, clicks FROM events ORDER BY clicks DESC LIMIT 5", Options{})
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var clicks []int64
	for _, r := range rows {
		clicks = append(clicks, r.clicks)
	}
	sort.Slice(clicks, func(i, j int) bool { return clicks[i] > clicks[j] })
	for i, row := range res.Rows {
		if row[1].(int64) != clicks[i] {
			t.Errorf("row %d clicks = %v, want %v", i, row[1], clicks[i])
		}
	}
	// OFFSET.
	res2 := runPQL(t, segs, "SELECT memberId, clicks FROM events ORDER BY clicks DESC LIMIT 2, 3", Options{})
	if len(res2.Rows) != 3 {
		t.Fatalf("offset rows = %d", len(res2.Rows))
	}
	if res2.Rows[0][1].(int64) != clicks[2] {
		t.Errorf("offset row 0 = %v, want %v", res2.Rows[0][1], clicks[2])
	}
	// SELECT * expands schema columns.
	res3 := runPQL(t, segs, "SELECT * FROM events LIMIT 1", Options{})
	if len(res3.Columns) != 6 || res3.Columns[0] != "country" {
		t.Fatalf("star columns = %v", res3.Columns)
	}
}

func TestMetadataOnlyPlan(t *testing.T) {
	rows := testRows(1000, 9)
	seg := buildRows(t, rows, segment.IndexConfig{}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	res := runPQL(t, segs, "SELECT count(*), min(clicks), max(clicks) FROM events", Options{})
	if res.Stats.MetadataOnlySegments != 1 {
		t.Fatalf("metadata-only plan not used: %+v", res.Stats)
	}
	if res.Stats.NumDocsScanned != 0 {
		t.Fatalf("metadata plan scanned %d docs", res.Stats.NumDocsScanned)
	}
	if res.Rows[0][0].(int64) != 1000 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// Disabled: must scan instead, same answers.
	res2 := runPQL(t, segs, "SELECT count(*), min(clicks), max(clicks) FROM events", Options{DisableMetadataPlans: true})
	if res2.Stats.MetadataOnlySegments != 0 || res2.Stats.NumDocsScanned != 1000 {
		t.Fatalf("metadata plan not disabled: %+v", res2.Stats)
	}
	for i := range res.Rows[0] {
		if res.Rows[0][i] != res2.Rows[0][i] {
			t.Fatalf("metadata answer %v != scan answer %v", res.Rows[0], res2.Rows[0])
		}
	}
	// AVG is not metadata-answerable.
	res3 := runPQL(t, segs, "SELECT avg(clicks) FROM events", Options{})
	if res3.Stats.MetadataOnlySegments != 0 {
		t.Fatal("avg answered from metadata")
	}
}

func TestSortedColumnPlanScansFewerDocs(t *testing.T) {
	rows := testRows(5000, 10)
	sorted := buildRows(t, rows, segment.IndexConfig{SortColumn: "memberId"}, "s0")
	unsorted := buildRows(t, rows, segment.IndexConfig{}, "s1")
	q := "SELECT sum(clicks) FROM events WHERE memberId = 11"
	rs := runPQL(t, []IndexedSegment{{Seg: sorted}}, q, Options{})
	ru := runPQL(t, []IndexedSegment{{Seg: unsorted}}, q, Options{})
	if rs.Rows[0][0] != ru.Rows[0][0] {
		t.Fatalf("answers differ: %v vs %v", rs.Rows[0][0], ru.Rows[0][0])
	}
	// The sorted plan touches only the matching contiguous range; the
	// unsorted plan evaluates the predicate on every document.
	if rs.Stats.NumEntriesScanned >= ru.Stats.NumEntriesScanned {
		t.Fatalf("sorted plan scanned %d entries, unsorted %d", rs.Stats.NumEntriesScanned, ru.Stats.NumEntriesScanned)
	}
}

func TestStarTreePlanUsedTransparently(t *testing.T) {
	rows := testRows(5000, 11)
	seg := buildRows(t, rows, segment.IndexConfig{}, "s0")
	tree, err := startree.Build(seg, startree.Config{
		DimensionSplitOrder: []string{"browser", "country", "day"},
		Metrics:             []string{"clicks", "revenue"},
		MaxLeafRecords:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	segs := []IndexedSegment{{Seg: seg, Tree: tree}}
	raw := []IndexedSegment{{Seg: seg}}
	queries := []string{
		"SELECT sum(clicks) FROM events WHERE browser = 'firefox'",
		"SELECT sum(clicks), count(*) FROM events WHERE browser = 'firefox' OR browser = 'safari' GROUP BY country TOP 100",
		"SELECT avg(revenue) FROM events WHERE country IN ('us','de') AND browser = 'chrome'",
		"SELECT count(*) FROM events WHERE day BETWEEN 15005 AND 15010 GROUP BY browser TOP 100",
	}
	for _, qt := range queries {
		st := runPQL(t, segs, qt, Options{})
		plain := runPQL(t, raw, qt, Options{})
		if st.Stats.StarTreeSegments != 1 {
			t.Errorf("%s: star tree not used", qt)
		}
		if !resultRowsEqual(st, plain) {
			t.Errorf("%s:\n  star-tree: %v\n  raw:       %v", qt, st.Rows, plain.Rows)
		}
		if st.Stats.StarTreeRecordsScanned >= int64(seg.NumDocs()) {
			t.Errorf("%s: star tree scanned %d records (raw %d)", qt, st.Stats.StarTreeRecordsScanned, seg.NumDocs())
		}
	}
	// Queries the tree cannot answer fall back to raw execution.
	fallbacks := []string{
		"SELECT min(clicks) FROM events WHERE browser = 'firefox'",             // MIN not preaggregated
		"SELECT sum(clicks) FROM events WHERE memberId = 3",                    // memberId not in split order
		"SELECT sum(clicks) FROM events GROUP BY memberId",                     // group-by not in split order
		"SELECT sum(clicks) FROM events WHERE NOT browser = 'firefox'",         // NOT not decomposable
		"SELECT sum(clicks) FROM events WHERE browser = 'x' OR country = 'us'", // cross-column OR
	}
	for _, qt := range fallbacks {
		st := runPQL(t, segs, qt, Options{})
		plain := runPQL(t, raw, qt, Options{})
		if st.Stats.StarTreeSegments != 0 {
			t.Errorf("%s: star tree unexpectedly used", qt)
		}
		if !resultRowsEqual(st, plain) {
			t.Errorf("%s: fallback answers differ", qt)
		}
	}
	// DisableStarTree forces raw execution.
	st := runPQL(t, segs, queries[0], Options{DisableStarTree: true})
	if st.Stats.StarTreeSegments != 0 {
		t.Fatal("star tree used despite DisableStarTree")
	}
}

func resultRowsEqual(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	key := func(row []any) string {
		parts := make([]any, len(row))
		for i, v := range row {
			// Tolerate summation-order float differences.
			if f, ok := v.(float64); ok {
				parts[i] = fmt.Sprintf("%.6g", f)
			} else {
				parts[i] = v
			}
		}
		return fmt.Sprint(parts...)
	}
	am := map[string]int{}
	for _, r := range a.Rows {
		am[key(r)]++
	}
	for _, r := range b.Rows {
		am[key(r)]--
	}
	for _, n := range am {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestMultiSegmentMerge(t *testing.T) {
	rows := testRows(3000, 12)
	var segs []IndexedSegment
	for i := 0; i < 3; i++ {
		seg := buildRows(t, rows[i*1000:(i+1)*1000], segment.IndexConfig{}, fmt.Sprintf("s%d", i))
		segs = append(segs, IndexedSegment{Seg: seg})
	}
	res := runPQL(t, segs, "SELECT count(*), sum(clicks), distinctcount(memberId) FROM events WHERE country = 'us'", Options{})
	var wantCount, wantSum int64
	members := map[int64]bool{}
	for _, r := range rows {
		if r.country == "us" {
			wantCount++
			wantSum += r.clicks
			members[r.member] = true
		}
	}
	if res.Rows[0][0].(int64) != wantCount {
		t.Errorf("count = %v, want %d", res.Rows[0][0], wantCount)
	}
	if res.Rows[0][1].(float64) != float64(wantSum) {
		t.Errorf("sum = %v, want %d", res.Rows[0][1], wantSum)
	}
	if res.Rows[0][2].(int64) != int64(len(members)) {
		t.Errorf("distinctcount = %v, want %d", res.Rows[0][2], len(members))
	}
	if res.Stats.NumSegmentsQueried != 3 {
		t.Errorf("segments queried = %d", res.Stats.NumSegmentsQueried)
	}
	// Group-by merge across segments.
	gres := runPQL(t, segs, "SELECT sum(clicks) FROM events GROUP BY country TOP 100", Options{})
	want := map[string]float64{}
	for _, r := range rows {
		want[r.country] += float64(r.clicks)
	}
	for _, row := range gres.Rows {
		if row[1].(float64) != want[row[0].(string)] {
			t.Errorf("merged group %v = %v, want %v", row[0], row[1], want[row[0].(string)])
		}
	}
}

func TestMutableSegmentQueries(t *testing.T) {
	ms, err := segment.NewMutableSegment("events", "rt0", rowsSchema(t), segment.IndexConfig{InvertedColumns: []string{"country"}})
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(800, 13)
	for _, r := range rows {
		if err := ms.Add(segment.Row{r.country, r.browser, r.member, r.clicks, r.rev, r.day}); err != nil {
			t.Fatal(err)
		}
	}
	segs := []IndexedSegment{{Seg: ms}}
	// Range predicate over the unsorted realtime dictionary.
	res := runPQL(t, segs, "SELECT count(*) FROM events WHERE memberId >= 25 AND country = 'us'", Options{})
	var want int64
	for _, r := range rows {
		if r.member >= 25 && r.country == "us" {
			want++
		}
	}
	if res.Rows[0][0].(int64) != want {
		t.Fatalf("realtime count = %v, want %d", res.Rows[0][0], want)
	}
	// Group by on realtime segment.
	gres := runPQL(t, segs, "SELECT sum(clicks) FROM events GROUP BY browser TOP 100", Options{})
	wantG := map[string]float64{}
	for _, r := range rows {
		wantG[r.browser] += float64(r.clicks)
	}
	for _, row := range gres.Rows {
		if row[1].(float64) != wantG[row[0].(string)] {
			t.Fatalf("realtime group %v = %v, want %v", row[0], row[1], wantG[row[0].(string)])
		}
	}
}

func TestSchemaEvolutionDefaultColumn(t *testing.T) {
	rows := testRows(100, 14)
	seg := buildRows(t, rows, segment.IndexConfig{}, "s0")
	// Table schema gained a column the segment predates.
	newSchema, err := rowsSchema(t).WithColumn(segment.FieldSpec{
		Name: "region", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := pql.Parse("SELECT count(*) FROM events WHERE region = 'null' GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{}
	merged, exc, err := eng.Execute(context.Background(), q, []IndexedSegment{{Seg: seg}}, newSchema)
	if err != nil || len(exc) > 0 {
		t.Fatalf("err=%v exc=%v", err, exc)
	}
	res := merged.Finalize(q)
	if len(res.Rows) != 1 || res.Rows[0][0] != "null" || res.Rows[0][1].(int64) != 100 {
		t.Fatalf("default column rows = %v", res.Rows)
	}
	// Filter excluding the default value matches nothing.
	q2, _ := pql.Parse("SELECT count(*) FROM events WHERE region = 'west'")
	merged2, _, err := eng.Execute(context.Background(), q2, []IndexedSegment{{Seg: seg}}, newSchema)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged2.Finalize(q2).Rows[0][0].(int64); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}

func TestErrorPaths(t *testing.T) {
	rows := testRows(50, 15)
	seg := buildRows(t, rows, segment.IndexConfig{}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	for _, qt := range []string{
		"SELECT count(*) FROM events WHERE nosuch = 1",
		"SELECT sum(country) FROM events",
		"SELECT sum(clicks) FROM events GROUP BY nosuch",
	} {
		if _, err := Run(context.Background(), qt, segs, nil, Options{}); err == nil {
			t.Errorf("%s: expected error", qt)
		}
	}
}

func TestContextCancellationYieldsPartial(t *testing.T) {
	rows := testRows(200, 16)
	var segs []IndexedSegment
	for i := 0; i < 64; i++ {
		segs = append(segs, IndexedSegment{Seg: buildRows(t, rows, segment.IndexConfig{}, fmt.Sprintf("s%d", i))})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: most segments skipped
	q, _ := pql.Parse("SELECT count(*) FROM events")
	eng := &Engine{Parallelism: 1}
	merged, exceptions, err := eng.Execute(ctx, q, segs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(exceptions) == 0 {
		t.Fatal("expected timeout exception")
	}
	res := merged.Finalize(q)
	if got := res.Rows[0][0].(int64); got >= int64(len(segs)*200) {
		t.Fatalf("expected partial count, got %d", got)
	}
}

func TestEmptySegmentList(t *testing.T) {
	res := runPQL(t, nil, "SELECT count(*) FROM events", Options{})
	if res.Rows[0][0].(int64) != 0 {
		t.Fatalf("empty count = %v", res.Rows[0][0])
	}
	res = runPQL(t, nil, "SELECT sum(clicks) FROM events GROUP BY country", Options{})
	if len(res.Rows) != 0 {
		t.Fatalf("empty group rows = %v", res.Rows)
	}
	res = runPQL(t, nil, "SELECT country FROM events", Options{})
	if len(res.Rows) != 0 {
		t.Fatalf("empty selection rows = %v", res.Rows)
	}
}

func TestMergeShapeMismatch(t *testing.T) {
	a := NewAggIntermediate([]pql.Expression{{IsAgg: true, Func: pql.Count, Column: "*"}})
	b := &Intermediate{Kind: KindSelection}
	if err := a.Merge(b); err == nil {
		t.Fatal("shape mismatch merge accepted")
	}
	c := NewAggIntermediate([]pql.Expression{{IsAgg: true, Func: pql.Count, Column: "*"}, {IsAgg: true, Func: pql.Sum, Column: "x"}})
	if err := a.Merge(c); err == nil {
		t.Fatal("arity mismatch merge accepted")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("nil merge should be a no-op")
	}
}

func BenchmarkCountStarNoFilter(b *testing.B) {
	rows := testRows(100000, 20)
	seg := buildRows(b, rows, segment.IndexConfig{}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPQL(b, segs, "SELECT count(*) FROM events", Options{})
	}
}

func BenchmarkFilteredAggSorted(b *testing.B) {
	rows := testRows(100000, 21)
	seg := buildRows(b, rows, segment.IndexConfig{SortColumn: "memberId"}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPQL(b, segs, "SELECT sum(clicks) FROM events WHERE memberId = 25", Options{})
	}
}

func BenchmarkFilteredAggInverted(b *testing.B) {
	rows := testRows(100000, 21)
	seg := buildRows(b, rows, segment.IndexConfig{InvertedColumns: []string{"memberId"}}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPQL(b, segs, "SELECT sum(clicks) FROM events WHERE memberId = 25", Options{})
	}
}

func BenchmarkFilteredAggScan(b *testing.B) {
	rows := testRows(100000, 21)
	seg := buildRows(b, rows, segment.IndexConfig{}, "s0")
	segs := []IndexedSegment{{Seg: seg}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPQL(b, segs, "SELECT sum(clicks) FROM events WHERE memberId = 25", Options{})
	}
}

func BenchmarkGroupByStarTree(b *testing.B) {
	rows := testRows(100000, 22)
	seg := buildRows(b, rows, segment.IndexConfig{}, "s0")
	tree, err := startree.Build(seg, startree.Config{
		DimensionSplitOrder: []string{"browser", "country", "day"},
		Metrics:             []string{"clicks"},
		MaxLeafRecords:      1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	segs := []IndexedSegment{{Seg: seg, Tree: tree}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPQL(b, segs, "SELECT sum(clicks) FROM events WHERE browser = 'chrome' GROUP BY country", Options{})
	}
}

func TestPercentileAggregation(t *testing.T) {
	rows := testRows(1000, 30)
	var segs []IndexedSegment
	for i := 0; i < 2; i++ {
		segs = append(segs, IndexedSegment{Seg: buildRows(t, rows[i*500:(i+1)*500], segment.IndexConfig{}, fmt.Sprintf("s%d", i))})
	}
	res := runPQL(t, segs, "SELECT percentile50(clicks), percentile95(clicks) FROM events WHERE country = 'us'", Options{})
	var clicks []float64
	for _, r := range rows {
		if r.country == "us" {
			clicks = append(clicks, float64(r.clicks))
		}
	}
	sort.Float64s(clicks)
	nearestRank := func(q int) float64 {
		rank := (q*len(clicks) + 99) / 100
		if rank < 1 {
			rank = 1
		}
		return clicks[rank-1]
	}
	if got := res.Rows[0][0].(float64); got != nearestRank(50) {
		t.Fatalf("p50 = %v, want %v", got, nearestRank(50))
	}
	if got := res.Rows[0][1].(float64); got != nearestRank(95) {
		t.Fatalf("p95 = %v, want %v", got, nearestRank(95))
	}
	// Group-by with percentiles merges raw values across segments.
	gres := runPQL(t, segs, "SELECT percentile90(revenue) FROM events GROUP BY browser TOP 100", Options{})
	byBrowser := map[string][]float64{}
	for _, r := range rows {
		byBrowser[r.browser] = append(byBrowser[r.browser], r.rev)
	}
	for _, row := range gres.Rows {
		vals := byBrowser[row[0].(string)]
		sort.Float64s(vals)
		rank := (90*len(vals) + 99) / 100
		want := vals[rank-1]
		if got := row[1].(float64); got != want {
			t.Fatalf("p90(%v) = %v, want %v", row[0], got, want)
		}
	}
	// Percentiles never use star trees or metadata plans.
	if res.Stats.MetadataOnlySegments != 0 {
		t.Fatal("percentile answered from metadata")
	}
	// Invalid quantiles are rejected by the parser.
	for _, bad := range []string{"percentile0", "percentile100", "percentile12x", "percentile"} {
		if _, err := pql.Parse("SELECT " + bad + "(clicks) FROM events"); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}
