package table

import (
	"testing"

	"pinot/internal/segment"
)

func derivedBase(t *testing.T) *Config {
	t.Helper()
	return &Config{Name: "ev", Type: Offline, Schema: schema(t), Replicas: 1}
}

func TestDerivedColumnValidation(t *testing.T) {
	good := derivedBase(t)
	good.DerivedColumns = []DerivedColumn{
		{Name: "week", Expr: "timeBucket(ts, 7)", Type: segment.TypeLong},
		{Name: "dUpper", Expr: "upper(d)", Type: segment.TypeString},
		{Name: "mHalf", Expr: "m / 2", Type: segment.TypeDouble},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := []struct {
		name string
		d    DerivedColumn
	}{
		{"empty name", DerivedColumn{Name: "", Expr: "m + 1", Type: segment.TypeLong}},
		{"collides with schema column", DerivedColumn{Name: "m", Expr: "m + 1", Type: segment.TypeLong}},
		{"parse error", DerivedColumn{Name: "x", Expr: "m +", Type: segment.TypeLong}},
		{"unknown column", DerivedColumn{Name: "x", Expr: "nosuch * 2", Type: segment.TypeLong}},
		{"division declared long", DerivedColumn{Name: "x", Expr: "m / 2", Type: segment.TypeLong}},
		{"type error", DerivedColumn{Name: "x", Expr: "upper(m)", Type: segment.TypeString}},
	}
	for _, tc := range bad {
		c := derivedBase(t)
		c.DerivedColumns = []DerivedColumn{tc.d}
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid derived column accepted", tc.name)
		}
	}

	dup := derivedBase(t)
	dup.DerivedColumns = []DerivedColumn{
		{Name: "x", Expr: "m + 1", Type: segment.TypeLong},
		{Name: "x", Expr: "m + 2", Type: segment.TypeLong},
	}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate derived name accepted")
	}
}

func TestDerivedColumnRejectsMultiValueInput(t *testing.T) {
	s, err := segment.NewSchema("mv", []segment.FieldSpec{
		{Name: "tags", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: false},
		{Name: "m", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &Config{Name: "mv", Type: Offline, Schema: s, Replicas: 1,
		DerivedColumns: []DerivedColumn{{Name: "x", Expr: "upper(tags)", Type: segment.TypeString}}}
	if err := c.Validate(); err == nil {
		t.Fatal("derived column over a multi-value input accepted")
	}
}

func TestEffectiveSchema(t *testing.T) {
	c := derivedBase(t)
	// No derived columns: the base schema comes back untouched.
	eff, err := c.EffectiveSchema()
	if err != nil {
		t.Fatal(err)
	}
	if eff != c.Schema {
		t.Fatal("effective schema should be the base schema when no derived columns exist")
	}

	c.DerivedColumns = []DerivedColumn{{Name: "week", Expr: "timeBucket(ts, 7)", Type: segment.TypeLong}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	eff, err = c.EffectiveSchema()
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Fields) != len(c.Schema.Fields)+1 {
		t.Fatalf("effective schema has %d fields, want %d", len(eff.Fields), len(c.Schema.Fields)+1)
	}
	f, ok := eff.Field("week")
	if !ok || f.Type != segment.TypeLong || f.Kind != segment.Dimension || !f.SingleValue {
		t.Fatalf("derived field = %+v, %v", f, ok)
	}
	if _, ok := c.Schema.Field("week"); ok {
		t.Fatal("EffectiveSchema mutated the base schema")
	}

	e, err := c.DerivedColumns[0].Parsed()
	if err != nil || e.String() != "timeBucket(ts, 7)" {
		t.Fatalf("Parsed = %v, %v", e, err)
	}
}

func TestIndexConfigAndObjectKey(t *testing.T) {
	c := derivedBase(t)
	c.SortColumn = "d"
	c.InvertedColumns = []string{"d"}
	idx := c.IndexConfig()
	if idx.SortColumn != "d" || len(idx.InvertedColumns) != 1 {
		t.Fatalf("index config = %+v", idx)
	}
	if got := SegmentObjectKey("ev_OFFLINE", "s0", 42); got != "segments/ev_OFFLINE/s0/42" {
		t.Fatalf("object key = %s", got)
	}
}
