// Package table defines the shared table-level configuration and segment
// metadata types used by controllers, servers and brokers: table configs,
// OFFLINE/REALTIME resource naming, and the segment metadata records kept in
// the metadata store's property store.
package table

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"pinot/internal/expr"
	"pinot/internal/pql"
	"pinot/internal/segment"
	"pinot/internal/startree"
)

// Type distinguishes offline (batch-pushed) from realtime (stream-consumed)
// tables. A hybrid table is simply both types sharing a name (paper 3.3.3).
type Type string

// Table types.
const (
	Offline  Type = "OFFLINE"
	Realtime Type = "REALTIME"
)

// ResourceName returns the Helix resource for a table+type, e.g.
// "events_OFFLINE".
func ResourceName(name string, t Type) string { return name + "_" + string(t) }

// ParseResource splits a resource name back into table name and type.
func ParseResource(resource string) (string, Type, error) {
	switch {
	case strings.HasSuffix(resource, "_OFFLINE"):
		return strings.TrimSuffix(resource, "_OFFLINE"), Offline, nil
	case strings.HasSuffix(resource, "_REALTIME"):
		return strings.TrimSuffix(resource, "_REALTIME"), Realtime, nil
	}
	return "", "", fmt.Errorf("table: %q is not a table resource", resource)
}

// Config is a table's configuration, stored in the property store and
// synchronized across the cluster (paper 5.2 keeps these in source control).
type Config struct {
	Name   string          `json:"name"`
	Type   Type            `json:"type"`
	Schema *segment.Schema `json:"schema"`
	// Replicas is the number of copies of each segment.
	Replicas int `json:"replicas"`
	// RetentionUnits garbage-collects segments whose max time is older
	// than (latest time - RetentionUnits). Zero disables retention.
	RetentionUnits int64 `json:"retentionUnits,omitempty"`
	// QuotaBytes caps the table's total (unreplicated) segment bytes.
	// Zero means unlimited.
	QuotaBytes int64 `json:"quotaBytes,omitempty"`
	// SortColumn / InvertedColumns / StarTree configure indexing for
	// segments built by the system (realtime flushes, minion rewrites).
	SortColumn      string           `json:"sortColumn,omitempty"`
	InvertedColumns []string         `json:"invertedColumns,omitempty"`
	StarTree        *startree.Config `json:"starTree,omitempty"`
	// StreamTopic names the stream to consume (realtime tables).
	StreamTopic string `json:"streamTopic,omitempty"`
	// FlushThresholdRows ends a consuming segment after this many rows.
	FlushThresholdRows int `json:"flushThresholdRows,omitempty"`
	// FlushThresholdMillis ends a consuming segment after this much
	// wall-clock time (paper 3.3.6: "Pinot supports flushing segments
	// after a configurable number of records and after a configurable
	// amount of time"). Replicas flushing on local clocks diverge in
	// offsets, which the segment completion protocol reconciles via
	// CATCHUP. Zero disables the time criterion.
	FlushThresholdMillis int64 `json:"flushThresholdMillis,omitempty"`
	// PartitionColumn enables partition-aware routing: data is
	// partitioned by this column with the stream partition function.
	PartitionColumn string `json:"partitionColumn,omitempty"`
	NumPartitions   int    `json:"numPartitions,omitempty"`
	// ServerTenant tags which server instances may host this table.
	// Empty means any server.
	ServerTenant string `json:"serverTenant,omitempty"`
	// BrokerTenant tags which brokers serve this table (informational).
	BrokerTenant string `json:"brokerTenant,omitempty"`
	// DerivedColumns are ingestion-time transforms: each expression is
	// evaluated per row as it is consumed and materialized as a real
	// column in the segment, so queries read it like any stored column
	// (no per-query evaluation cost). Segments built before a derived
	// column was added serve its default value via schema evolution.
	DerivedColumns []DerivedColumn `json:"derivedColumns,omitempty"`
}

// DerivedColumn is one ingestion-time transform: a PQL scalar expression
// over the base schema's single-value columns, stored under Name with the
// declared type.
type DerivedColumn struct {
	Name string           `json:"name"`
	Expr string           `json:"expr"`
	Type segment.DataType `json:"type"`
}

// FieldSpec is the schema field a derived column materializes as: a
// single-value dimension (dictionary-encoded, groupable, filterable).
func (d DerivedColumn) FieldSpec() segment.FieldSpec {
	return segment.FieldSpec{Name: d.Name, Type: d.Type, Kind: segment.Dimension, SingleValue: true}
}

// Parsed returns the canonicalized expression AST.
func (d DerivedColumn) Parsed() (pql.Expr, error) { return pql.ParseExpr(d.Expr) }

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("table: empty table name")
	}
	if strings.ContainsAny(c.Name, "_/ ") {
		// Underscores are reserved for the resource/segment naming
		// convention.
		return fmt.Errorf("table: name %q must not contain '_', '/' or spaces", c.Name)
	}
	if c.Type != Offline && c.Type != Realtime {
		return fmt.Errorf("table: %s: invalid type %q", c.Name, c.Type)
	}
	if c.Schema == nil {
		return fmt.Errorf("table: %s: missing schema", c.Name)
	}
	if c.Replicas <= 0 {
		return fmt.Errorf("table: %s: replicas must be positive", c.Name)
	}
	if c.Type == Realtime {
		if c.StreamTopic == "" {
			return fmt.Errorf("table: %s: realtime table needs a stream topic", c.Name)
		}
		if c.FlushThresholdRows <= 0 && c.FlushThresholdMillis <= 0 {
			return fmt.Errorf("table: %s: realtime table needs a row or time flush threshold", c.Name)
		}
		if c.FlushThresholdRows < 0 || c.FlushThresholdMillis < 0 {
			return fmt.Errorf("table: %s: negative flush threshold", c.Name)
		}
	}
	if c.RetentionUnits < 0 || c.QuotaBytes < 0 {
		return fmt.Errorf("table: %s: negative retention or quota", c.Name)
	}
	if c.PartitionColumn != "" {
		if _, ok := c.Schema.Field(c.PartitionColumn); !ok {
			return fmt.Errorf("table: %s: partition column %q not in schema", c.Name, c.PartitionColumn)
		}
		if c.NumPartitions <= 0 {
			return fmt.Errorf("table: %s: partition column set without numPartitions", c.Name)
		}
	}
	if c.RetentionUnits > 0 && c.Schema.TimeColumn() == "" {
		return fmt.Errorf("table: %s: retention requires a time column", c.Name)
	}
	if err := c.validateDerived(); err != nil {
		return err
	}
	return nil
}

// validateDerived checks every derived column: the expression parses, it
// references only single-value base-schema columns (derived columns may not
// chain), and its inferred type matches the declared storage type.
func (c *Config) validateDerived() error {
	seen := make(map[string]bool, len(c.DerivedColumns))
	for _, d := range c.DerivedColumns {
		if d.Name == "" {
			return fmt.Errorf("table: %s: derived column with empty name", c.Name)
		}
		if _, ok := c.Schema.Field(d.Name); ok {
			return fmt.Errorf("table: %s: derived column %q collides with a schema column", c.Name, d.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("table: %s: duplicate derived column %q", c.Name, d.Name)
		}
		seen[d.Name] = true
		e, err := d.Parsed()
		if err != nil {
			return fmt.Errorf("table: %s: derived column %q: %w", c.Name, d.Name, err)
		}
		for _, col := range pql.ExprColumns(e) {
			f, ok := c.Schema.Field(col)
			if !ok {
				return fmt.Errorf("table: %s: derived column %q references unknown column %q", c.Name, d.Name, col)
			}
			if !f.SingleValue {
				return fmt.Errorf("table: %s: derived column %q references multi-value column %q", c.Name, d.Name, col)
			}
		}
		k, err := expr.Infer(e, func(name string) (expr.Kind, bool) {
			f, ok := c.Schema.Field(name)
			if !ok {
				return 0, false
			}
			return expr.KindOf(f.Type), true
		})
		if err != nil {
			return fmt.Errorf("table: %s: derived column %q: %w", c.Name, d.Name, err)
		}
		if want := expr.KindOf(d.Type); k != want {
			return fmt.Errorf("table: %s: derived column %q: expression is %s but declared type %s is %s",
				c.Name, d.Name, k, d.Type, want)
		}
	}
	return nil
}

// EffectiveSchema is the base schema plus the derived columns' fields — the
// schema consuming segments are built against and queries plan against.
func (c *Config) EffectiveSchema() (*segment.Schema, error) {
	if len(c.DerivedColumns) == 0 {
		return c.Schema, nil
	}
	fields := append([]segment.FieldSpec(nil), c.Schema.Fields...)
	for _, d := range c.DerivedColumns {
		fields = append(fields, d.FieldSpec())
	}
	return segment.NewSchema(c.Schema.Name, fields)
}

// Resource returns the table's Helix resource name.
func (c *Config) Resource() string { return ResourceName(c.Name, c.Type) }

// IndexConfig converts the table's index settings to the segment builder
// form.
func (c *Config) IndexConfig() segment.IndexConfig {
	return segment.IndexConfig{SortColumn: c.SortColumn, InvertedColumns: c.InvertedColumns}
}

// SegmentStatus tracks a segment's lifecycle in the metadata store.
type SegmentStatus string

// Segment statuses.
const (
	// StatusInProgress marks a realtime segment still consuming.
	StatusInProgress SegmentStatus = "IN_PROGRESS"
	// StatusDone marks a completed, durable segment.
	StatusDone SegmentStatus = "DONE"
)

// SegmentMeta is the per-segment record in the property store (what Pinot
// calls SegmentZKMetadata).
type SegmentMeta struct {
	Name      string        `json:"name"`
	Resource  string        `json:"resource"`
	Status    SegmentStatus `json:"status"`
	NumDocs   int           `json:"numDocs"`
	SizeBytes int64         `json:"sizeBytes"`
	MinTime   int64         `json:"minTime"`
	MaxTime   int64         `json:"maxTime"`
	// ObjectKey locates the segment blob in the object store ("" while
	// consuming).
	ObjectKey string `json:"objectKey,omitempty"`
	// CRC distinguishes segment versions for replace/refresh.
	CRC uint32 `json:"crc,omitempty"`
	// Partition is the data partition this segment holds (-1 if
	// unpartitioned).
	Partition int `json:"partition"`
	// StartOffset/EndOffset delimit a realtime segment's stream range.
	// EndOffset is -1 while consuming.
	StartOffset int64 `json:"startOffset,omitempty"`
	EndOffset   int64 `json:"endOffset,omitempty"`
}

// Marshal encodes the metadata as JSON.
func (m *SegmentMeta) Marshal() []byte {
	data, _ := json.Marshal(m)
	return data
}

// UnmarshalSegmentMeta decodes segment metadata.
func UnmarshalSegmentMeta(data []byte) (*SegmentMeta, error) {
	var m SegmentMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ConsumingSegmentName builds the realtime segment naming convention
// <table>__<partition>__<sequence>.
func ConsumingSegmentName(tableName string, partition, sequence int) string {
	return fmt.Sprintf("%s__%d__%d", tableName, partition, sequence)
}

// ParseConsumingSegmentName extracts partition and sequence from a realtime
// segment name.
func ParseConsumingSegmentName(name string) (tableName string, partition, sequence int, err error) {
	parts := strings.Split(name, "__")
	if len(parts) != 3 {
		return "", 0, 0, fmt.Errorf("table: %q is not a realtime segment name", name)
	}
	p, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, 0, fmt.Errorf("table: bad partition in %q", name)
	}
	s, err := strconv.Atoi(parts[2])
	if err != nil {
		return "", 0, 0, fmt.Errorf("table: bad sequence in %q", name)
	}
	return parts[0], p, s, nil
}

// SegmentObjectKey is the object-store key for a segment blob.
func SegmentObjectKey(resource, segmentName string, crc uint32) string {
	return fmt.Sprintf("segments/%s/%s/%d", resource, segmentName, crc)
}
