package table

import (
	"testing"

	"pinot/internal/segment"
)

func schema(t *testing.T) *segment.Schema {
	t.Helper()
	s, err := segment.NewSchema("ev", []segment.FieldSpec{
		{Name: "d", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "m", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "ts", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestResourceNaming(t *testing.T) {
	if got := ResourceName("events", Offline); got != "events_OFFLINE" {
		t.Fatalf("resource = %s", got)
	}
	name, typ, err := ParseResource("events_REALTIME")
	if err != nil || name != "events" || typ != Realtime {
		t.Fatalf("parse = %s %s %v", name, typ, err)
	}
	if _, _, err := ParseResource("garbage"); err == nil {
		t.Fatal("bad resource accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	base := func() *Config {
		return &Config{Name: "ev", Type: Offline, Schema: schema(t), Replicas: 1}
	}
	if err := base().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.Name = "with_underscore" },
		func(c *Config) { c.Type = "BOGUS" },
		func(c *Config) { c.Schema = nil },
		func(c *Config) { c.Replicas = 0 },
		func(c *Config) { c.Type = Realtime },                      // no topic
		func(c *Config) { c.Type = Realtime; c.StreamTopic = "t" }, // no flush
		func(c *Config) { c.RetentionUnits = -1 },
		func(c *Config) { c.PartitionColumn = "nope"; c.NumPartitions = 4 },
		func(c *Config) { c.PartitionColumn = "d" }, // no partition count
	}
	for i, mutate := range cases {
		c := base()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	rt := base()
	rt.Type = Realtime
	rt.StreamTopic = "t"
	rt.FlushThresholdRows = 100
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	if rt.Resource() != "ev_REALTIME" {
		t.Fatal("resource")
	}
}

func TestRetentionNeedsTimeColumn(t *testing.T) {
	s, err := segment.NewSchema("nt", []segment.FieldSpec{
		{Name: "d", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "m", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &Config{Name: "nt", Type: Offline, Schema: s, Replicas: 1, RetentionUnits: 5}
	if err := c.Validate(); err == nil {
		t.Fatal("retention without time column accepted")
	}
}

func TestConsumingSegmentNames(t *testing.T) {
	name := ConsumingSegmentName("events", 3, 7)
	if name != "events__3__7" {
		t.Fatalf("name = %s", name)
	}
	tbl, p, s, err := ParseConsumingSegmentName(name)
	if err != nil || tbl != "events" || p != 3 || s != 7 {
		t.Fatalf("parse = %s %d %d %v", tbl, p, s, err)
	}
	for _, bad := range []string{"plain", "a__b__c", "a__1", "a__x__2"} {
		if _, _, _, err := ParseConsumingSegmentName(bad); err == nil {
			t.Errorf("ParseConsumingSegmentName(%q) accepted", bad)
		}
	}
}

func TestSegmentMetaRoundTrip(t *testing.T) {
	m := &SegmentMeta{Name: "s0", Resource: "ev_OFFLINE", Status: StatusDone, NumDocs: 10, MinTime: 1, MaxTime: 9, Partition: -1, CRC: 42}
	got, err := UnmarshalSegmentMeta(m.Marshal())
	if err != nil || *got != *m {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := UnmarshalSegmentMeta([]byte("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
}
