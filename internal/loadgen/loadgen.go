// Package loadgen drives query load for the paper's latency-versus-QPS
// figures: an open-loop generator issues queries at a fixed arrival rate
// (latency includes queueing delay, so an overloaded system shows the
// characteristic hockey stick), and a sequential runner produces the
// latency-distribution data of Figure 12.
package loadgen

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pinot/internal/metrics"
)

// Target executes one query. Implementations pick the next query from the
// workload's sampled query set.
type Target func(ctx context.Context) error

// Histogram records latencies in logarithmic buckets from 1µs to ~17.9
// minutes, with ~4.6% relative bucket width. It is a duration-typed view
// over the shared metrics.Histogram (which this package's bucket scheme was
// promoted into), so load-generator output and server-side /metrics
// histograms are directly comparable and mergeable.
type Histogram struct {
	h metrics.Histogram
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) { h.h.RecordDuration(d) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.h.Count() }

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration { return h.h.MeanDuration() }

// Quantile returns the latency at quantile q in [0, 1].
func (h *Histogram) Quantile(q float64) time.Duration { return h.h.QuantileDuration(q) }

// Buckets returns (midpoint, count) pairs of non-empty buckets — the raw
// series for latency-distribution plots.
func (h *Histogram) Buckets() []BucketCount {
	raw := h.h.Buckets()
	out := make([]BucketCount, len(raw))
	for i, b := range raw {
		out[i] = BucketCount{
			Latency: time.Duration(b.Value * float64(time.Microsecond)),
			Count:   b.Count,
		}
	}
	return out
}

// BucketCount is one histogram bucket.
type BucketCount struct {
	Latency time.Duration
	Count   int64
}

// Point is one measurement of a QPS sweep.
type Point struct {
	TargetQPS   float64
	AchievedQPS float64
	Mean        time.Duration
	P50         time.Duration
	P95         time.Duration
	P99         time.Duration
	Errors      int64
	Queries     int64
}

func (p Point) String() string {
	return fmt.Sprintf("qps=%.0f achieved=%.0f mean=%s p50=%s p95=%s p99=%s errors=%d",
		p.TargetQPS, p.AchievedQPS, p.Mean.Round(time.Microsecond), p.P50.Round(time.Microsecond),
		p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond), p.Errors)
}

// RunOpenLoop issues queries at the target arrival rate for the duration
// using `workers` concurrent executors. Latency is measured from intended
// arrival time to completion, so queue buildup under saturation is visible.
func RunOpenLoop(ctx context.Context, target Target, qps float64, duration time.Duration, workers int) Point {
	if workers <= 0 {
		workers = 8
	}
	interval := time.Duration(float64(time.Second) / qps)
	deadline := time.Now().Add(duration)
	hist := &Histogram{}
	var errors atomic.Int64

	type job struct{ intended time.Time }
	// The queue holds the backlog; sized for the whole run so arrivals
	// are never dropped (true open loop).
	queue := make(chan job, int(qps*duration.Seconds())+workers+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				err := target(ctx)
				hist.Record(time.Since(j.intended))
				if err != nil {
					errors.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	next := start
	for time.Now().Before(deadline) && ctx.Err() == nil {
		now := time.Now()
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		queue <- job{intended: next}
		next = next.Add(interval)
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	return Point{
		TargetQPS:   qps,
		AchievedQPS: float64(hist.Count()) / elapsed,
		Mean:        hist.Mean(),
		P50:         hist.Quantile(0.50),
		P95:         hist.Quantile(0.95),
		P99:         hist.Quantile(0.99),
		Errors:      errors.Load(),
		Queries:     hist.Count(),
	}
}

// Sweep runs RunOpenLoop at each QPS target and returns the series — one
// latency-vs-rate curve of Figures 11, 14, 15 and 16.
func Sweep(ctx context.Context, target Target, qpsTargets []float64, duration time.Duration, workers int) []Point {
	out := make([]Point, 0, len(qpsTargets))
	for _, qps := range qpsTargets {
		out = append(out, RunOpenLoop(ctx, target, qps, duration, workers))
		if ctx.Err() != nil {
			break
		}
	}
	return out
}

// RunSequential executes n queries back to back (Figure 12's methodology:
// "10000 queries are executed sequentially") and returns the latency
// histogram.
func RunSequential(ctx context.Context, target Target, n int) (*Histogram, int64) {
	hist := &Histogram{}
	var errors int64
	for i := 0; i < n && ctx.Err() == nil; i++ {
		start := time.Now()
		if err := target(ctx); err != nil {
			errors++
		}
		hist.Record(time.Since(start))
	}
	return hist, errors
}

// Quantiles summarizes a histogram at the standard report points.
func Quantiles(h *Histogram) map[string]time.Duration {
	return map[string]time.Duration{
		"p50": h.Quantile(0.50),
		"p90": h.Quantile(0.90),
		"p95": h.Quantile(0.95),
		"p99": h.Quantile(0.99),
	}
}

// SortPoints orders a series by target QPS (in place) and returns it.
func SortPoints(points []Point) []Point {
	sort.Slice(points, func(i, j int) bool { return points[i].TargetQPS < points[j].TargetQPS })
	return points
}
