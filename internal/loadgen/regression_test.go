package loadgen

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// referenceHistogram is the pre-promotion implementation, kept verbatim so
// the regression test below proves the move to internal/metrics changed no
// reported number: same buckets, same quantile semantics, same extremes.
type referenceHistogram struct {
	buckets [666]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const refGrowth = 1.045

func refBucketFor(d time.Duration) int {
	us := float64(d) / float64(time.Microsecond)
	if us < 1 {
		return 0
	}
	b := int(math.Log(us) / math.Log(refGrowth))
	if b >= 666 {
		b = 665
	}
	return b
}

func refBucketValue(b int) time.Duration {
	return time.Duration(math.Pow(refGrowth, float64(b)+0.5) * float64(time.Microsecond))
}

func (h *referenceHistogram) record(d time.Duration) {
	h.buckets[refBucketFor(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

func (h *referenceHistogram) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		return h.max
	}
	var cum int64
	for b, n := range h.buckets {
		cum += n
		if cum > target {
			return refBucketValue(b)
		}
	}
	return h.max
}

func TestQuantilesUnchangedAfterPromotion(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	h := &Histogram{}
	ref := &referenceHistogram{}
	for i := 0; i < 10000; i++ {
		var d time.Duration
		switch i % 4 {
		case 0: // sub-microsecond noise
			d = time.Duration(rng.Intn(1000)) * time.Nanosecond
		case 1: // typical query latencies
			d = time.Duration(rng.Intn(200000)) * time.Microsecond
		case 2: // long tail
			d = time.Duration(rng.Intn(120)) * time.Second
		default: // beyond the top bucket
			d = time.Duration(1+rng.Intn(48)) * time.Hour
		}
		h.Record(d)
		ref.record(d)
	}
	if h.Count() != ref.count {
		t.Fatalf("count: new=%d ref=%d", h.Count(), ref.count)
	}
	for q := 0.0; q < 1.0; q += 0.001 {
		if got, want := h.Quantile(q), ref.quantile(q); got != want {
			t.Fatalf("q=%.3f: new=%v ref=%v", q, got, want)
		}
	}
	if got, want := h.Quantile(1.0), ref.quantile(1.0); got != want {
		t.Fatalf("q=1: new=%v ref=%v (exact max)", got, want)
	}
	// Bucket series drives the Figure 12 plots; it must be bit-identical.
	bs := h.Buckets()
	var refBs []BucketCount
	for b, n := range ref.buckets {
		if n > 0 {
			refBs = append(refBs, BucketCount{Latency: refBucketValue(b), Count: n})
		}
	}
	if len(bs) != len(refBs) {
		t.Fatalf("bucket series length: new=%d ref=%d", len(bs), len(refBs))
	}
	for i := range bs {
		if bs[i] != refBs[i] {
			t.Fatalf("bucket %d: new=%+v ref=%+v", i, bs[i], refBs[i])
		}
	}
}
