package loadgen

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 45*time.Millisecond || mean > 56*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond || p99 > 110*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if q1 := h.Quantile(1.0); q1 != 100*time.Millisecond {
		t.Fatalf("p100 = %v", q1)
	}
	if len(h.Buckets()) == 0 {
		t.Fatal("no buckets")
	}
	var total int64
	for _, b := range h.Buckets() {
		total += b.Count
	}
	if total != 100 {
		t.Fatalf("bucket total = %d", total)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := &Histogram{}
	h.Record(0)              // below resolution
	h.Record(24 * time.Hour) // beyond top bucket
	if h.Count() != 2 {
		t.Fatal("count")
	}
	if h.Quantile(0.99) < time.Minute {
		t.Fatalf("top bucket quantile = %v", h.Quantile(0.99))
	}
}

func TestRunSequential(t *testing.T) {
	calls := 0
	h, errs := RunSequential(context.Background(), func(ctx context.Context) error {
		calls++
		if calls%5 == 0 {
			return errors.New("boom")
		}
		return nil
	}, 50)
	if calls != 50 || h.Count() != 50 || errs != 10 {
		t.Fatalf("calls=%d count=%d errs=%d", calls, h.Count(), errs)
	}
	q := Quantiles(h)
	if len(q) != 4 {
		t.Fatalf("quantiles = %v", q)
	}
}

func TestRunSequentialHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h, _ := RunSequential(ctx, func(ctx context.Context) error { return nil }, 1000)
	if h.Count() != 0 {
		t.Fatalf("ran %d queries after cancel", h.Count())
	}
}

func TestRunOpenLoopRate(t *testing.T) {
	p := RunOpenLoop(context.Background(), func(ctx context.Context) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	}, 200, 300*time.Millisecond, 4)
	if p.Queries < 30 || p.Queries > 100 {
		t.Fatalf("queries = %d at 200 qps for 300ms", p.Queries)
	}
	if p.AchievedQPS < 100 || p.AchievedQPS > 400 {
		t.Fatalf("achieved = %v", p.AchievedQPS)
	}
	if p.Errors != 0 {
		t.Fatalf("errors = %d", p.Errors)
	}
}

func TestOpenLoopSaturationShowsQueueing(t *testing.T) {
	// A target that takes 5ms with 1 worker saturates at 200 qps; at
	// 1000 qps the measured (arrival-to-completion) latency must blow
	// past the 5ms service time.
	slow := func(ctx context.Context) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	}
	under := RunOpenLoop(context.Background(), slow, 50, 400*time.Millisecond, 1)
	over := RunOpenLoop(context.Background(), slow, 1000, 400*time.Millisecond, 1)
	if under.Mean > 4*over.Mean && over.Mean > 0 {
		t.Fatalf("no queueing visible: under=%v over=%v", under.Mean, over.Mean)
	}
	if over.Mean < 3*under.Mean {
		t.Fatalf("saturation not visible: under=%v over=%v", under.Mean, over.Mean)
	}
}

func TestSweepAndSort(t *testing.T) {
	pts := Sweep(context.Background(), func(ctx context.Context) error { return nil },
		[]float64{100, 50}, 50*time.Millisecond, 2)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	sorted := SortPoints(pts)
	if sorted[0].TargetQPS != 50 {
		t.Fatalf("not sorted: %v", sorted)
	}
	if sorted[0].String() == "" {
		t.Fatal("empty point string")
	}
}
