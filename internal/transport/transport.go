// Package transport defines the broker↔server and server↔controller wire
// contracts. The in-process cluster passes these structs directly; the HTTP
// layer carries them as gob payloads, so all value types are registered
// here.
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pinot/internal/metrics"
	"pinot/internal/pql"
	"pinot/internal/qctx"
	"pinot/internal/query"
)

// wireMetrics instruments the encode/decode hot path. EncodeResponse and
// DecodeResponse are package functions, so the handles live behind a
// process-global atomic pointer swappable via UseRegistry (tests that need
// isolation swap in their own registry and restore Default afterwards).
type wireMetrics struct {
	encodes      *metrics.Instrument
	encodeBytes  *metrics.Instrument
	encodeTimeUs *metrics.Instrument // histogram
	decodes      *metrics.Instrument
	decodeFails  *metrics.Instrument

	// TCP data plane (frame.go, tcp.go, pool.go).
	framesSent *metrics.Instrument
	framesRecv *metrics.Instrument
	bytesSent  *metrics.Instrument
	bytesRecv  *metrics.Instrument
	dials      *metrics.Instrument
	reconnects *metrics.Instrument
	poolHits   *metrics.Instrument
	poolMisses *metrics.Instrument
	poolIdle   *metrics.Instrument // gauge
	idleClosed *metrics.Instrument
	connErrors *metrics.Instrument
}

func newWireMetrics(reg *metrics.Registry) *wireMetrics {
	return &wireMetrics{
		encodes: reg.Counter("pinot_transport_encodes_total",
			"Query responses gob-encoded for the wire.").With(),
		encodeBytes: reg.Counter("pinot_transport_encode_bytes_total",
			"Bytes of encoded query responses.").With(),
		encodeTimeUs: reg.Histogram("pinot_transport_encode_time_us",
			"Response encode time in microseconds.").With(),
		decodes: reg.Counter("pinot_transport_decodes_total",
			"Query responses decoded from the wire.").With(),
		decodeFails: reg.Counter("pinot_transport_decode_failures_total",
			"Wire payloads rejected by the decoder.").With(),
		framesSent: reg.Counter("pinot_transport_frames_sent_total",
			"TCP frames written to the wire.").With(),
		framesRecv: reg.Counter("pinot_transport_frames_recv_total",
			"TCP frames read off the wire.").With(),
		bytesSent: reg.Counter("pinot_transport_bytes_sent_total",
			"Bytes of TCP frames written (headers included).").With(),
		bytesRecv: reg.Counter("pinot_transport_bytes_recv_total",
			"Bytes of TCP frames read (headers included).").With(),
		dials: reg.Counter("pinot_transport_dials_total",
			"TCP connections dialed by the pool.").With(),
		reconnects: reg.Counter("pinot_transport_reconnects_total",
			"Dials to a destination that had been dialed before (recovery).").With(),
		poolHits: reg.Counter("pinot_transport_pool_hits_total",
			"Connection checkouts served from the idle pool.").With(),
		poolMisses: reg.Counter("pinot_transport_pool_misses_total",
			"Connection checkouts that required a dial.").With(),
		poolIdle: reg.Gauge("pinot_transport_pool_idle_conns",
			"Idle pooled connections across destinations.").With(),
		idleClosed: reg.Counter("pinot_transport_pool_idle_closed_total",
			"Idle connections closed by the reaper or pool limits.").With(),
		connErrors: reg.Counter("pinot_transport_conn_errors_total",
			"Connections discarded after an I/O or protocol error.").With(),
	}
}

var wireMet atomic.Pointer[wireMetrics]

func init() { wireMet.Store(newWireMetrics(metrics.Default())) }

// UseRegistry points the transport's package-level instruments at a registry
// (metrics.Default() at init). Not synchronized with in-flight calls beyond
// the atomic swap; intended for process setup and sequential tests.
func UseRegistry(reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.Default()
	}
	wireMet.Store(newWireMetrics(reg))
}

// QueryRequest asks a server to execute a query on a subset of a resource's
// segments (paper 3.3.3 step 3).
type QueryRequest struct {
	Resource string
	PQL      string
	// Segments restricts execution to these segment names; nil means all
	// segments the server hosts for the resource.
	Segments []string
	// Tenant is the token-bucket account charged for execution.
	Tenant string
	// TimeoutMillis bounds server-side execution (0 = server default).
	TimeoutMillis int64
	// QueryID correlates this request with the broker-side query.
	QueryID string
	// BudgetMillis is the broker's remaining deadline budget at send time
	// (planning and routing already charged). The server enforces the
	// minimum of this, TimeoutMillis and its own default (0 = unset).
	BudgetMillis int64
}

// QueryResponse carries a server's partial result.
type QueryResponse struct {
	Result     *query.Intermediate
	Exceptions []string
	// Trace carries the server-side phase timings (queue wait, engine
	// execute) back to the broker for the client-visible trace.
	Trace qctx.Trace
}

// ServerClient executes queries on one server instance.
type ServerClient interface {
	Execute(ctx context.Context, req *QueryRequest) (*QueryResponse, error)
}

// Registry resolves instance names to clients; brokers use it to scatter
// queries.
type Registry interface {
	ServerClient(instance string) (ServerClient, bool)
}

// RegistryFunc adapts a function to Registry.
type RegistryFunc func(instance string) (ServerClient, bool)

// ServerClient implements Registry.
func (f RegistryFunc) ServerClient(instance string) (ServerClient, bool) { return f(instance) }

// SegmentConsumedAction is the controller's instruction to a polling replica
// in the segment completion protocol (paper 3.3.6).
type SegmentConsumedAction string

// Completion-protocol actions.
const (
	ActionHold      SegmentConsumedAction = "HOLD"
	ActionCatchup   SegmentConsumedAction = "CATCHUP"
	ActionKeep      SegmentConsumedAction = "KEEP"
	ActionCommit    SegmentConsumedAction = "COMMIT"
	ActionDiscard   SegmentConsumedAction = "DISCARD"
	ActionNotLeader SegmentConsumedAction = "NOTLEADER"
)

// SegmentConsumedRequest is a replica's poll after reaching its end
// criteria.
type SegmentConsumedRequest struct {
	Segment  string
	Resource string
	Instance string
	Offset   int64
}

// SegmentConsumedResponse is the controller's instruction.
type SegmentConsumedResponse struct {
	Action SegmentConsumedAction
	// TargetOffset accompanies CATCHUP.
	TargetOffset int64
}

// SegmentCommitRequest uploads the committer's sealed segment.
type SegmentCommitRequest struct {
	Segment  string
	Resource string
	Instance string
	Offset   int64
	Blob     []byte
}

// SegmentCommitResponse reports commit success.
type SegmentCommitResponse struct {
	Success bool
	Reason  string
}

// ControllerClient is the server's view of the lead controller.
type ControllerClient interface {
	SegmentConsumed(ctx context.Context, req *SegmentConsumedRequest) (*SegmentConsumedResponse, error)
	CommitSegment(ctx context.Context, req *SegmentCommitRequest) (*SegmentCommitResponse, error)
}

func init() {
	// Concrete types that travel inside `any` fields of query results.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register([]any{})
	// Expression AST nodes that travel inside Intermediate.AggExprs (the
	// Expression.Arg interface field).
	gob.Register(pql.ColumnRef{})
	gob.Register(pql.Literal{})
	gob.Register(pql.Arith{})
	gob.Register(pql.Call{})
}

// encodeBufPool recycles the scratch buffers of EncodeResponse. Every query
// response crosses this function once per server, so a fresh bytes.Buffer
// per call means one large allocation (plus growth copies) on the hot data
// plane. Buffers that grew past maxPooledBuf are dropped instead of pooled
// so one huge selection response cannot pin its backing array forever.
var encodeBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

const maxPooledBuf = 1 << 20

// EncodeResponse gob-encodes a query response for the HTTP data plane. The
// returned slice is freshly allocated and owned by the caller; the scratch
// buffer goes back to the pool.
func EncodeResponse(r *QueryResponse) ([]byte, error) {
	met := wireMet.Load()
	start := time.Now()
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(r); err != nil {
		encodeBufPool.Put(buf)
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		encodeBufPool.Put(buf)
	}
	met.encodes.Inc()
	met.encodeBytes.Add(int64(len(out)))
	met.encodeTimeUs.ObserveDuration(time.Since(start))
	return out, nil
}

// DecodeResponse reverses EncodeResponse. Payloads arrive off the network,
// so any byte sequence must yield a response or an error — never a panic.
// gob's decoder is documented to recover its own panics into errors, but
// hostile inputs have historically escaped that net (e.g. huge slice
// allocations), so the guard stays belt-and-braces.
func DecodeResponse(data []byte) (resp *QueryResponse, err error) {
	met := wireMet.Load()
	defer func() {
		if p := recover(); p != nil {
			resp = nil
			err = fmt.Errorf("transport: decode panic: %v", p)
		}
		if err != nil {
			met.decodeFails.Inc()
		}
	}()
	var r QueryResponse
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
		return nil, fmt.Errorf("transport: decode response: %w", err)
	}
	met.decodes.Inc()
	return &r, nil
}
