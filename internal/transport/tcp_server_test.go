package transport

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"pinot/internal/query"
)

// echoHandler streams a fixed number of count(*) frames per query.
type echoHandler struct {
	frames int
	err    error
}

func (h *echoHandler) ExecuteStream(ctx context.Context, req *QueryRequest, emit func(seq int, res *query.Intermediate) error) (*FinalFrame, error) {
	if h.err != nil {
		return nil, h.err
	}
	for seq := 0; seq < h.frames; seq++ {
		if err := emit(seq, countFrame(seq, 10).Result); err != nil {
			return nil, err
		}
	}
	return &FinalFrame{Frames: h.frames, Stats: query.Stats{NumSegmentsQueried: h.frames}}, nil
}

// fakeController records and acknowledges completion-protocol calls.
type fakeController struct {
	consumed int
	commits  int
}

func (f *fakeController) SegmentConsumed(ctx context.Context, req *SegmentConsumedRequest) (*SegmentConsumedResponse, error) {
	f.consumed++
	if req.Segment == "bad" {
		return nil, errors.New("no such segment")
	}
	return &SegmentConsumedResponse{Action: ActionCommit, TargetOffset: req.Offset}, nil
}

func (f *fakeController) CommitSegment(ctx context.Context, req *SegmentCommitRequest) (*SegmentCommitResponse, error) {
	f.commits++
	return &SegmentCommitResponse{Success: true}, nil
}

// startServer runs a TCPQueryServer on a loopback listener.
func startServer(t *testing.T, srv *TCPQueryServer) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return lis.Addr().String()
}

// TestTCPServerQueryRoundTrip drives the full server path package-locally:
// query frame in, streamed segment frames and trailer out, merged by the
// client, with the connection pooled and reused across requests.
func TestTCPServerQueryRoundTrip(t *testing.T) {
	addr := startServer(t, NewTCPQueryServer(&echoHandler{frames: 3}))
	pool := NewPool()
	defer pool.Close()
	client := NewTCPClient(addr, pool)
	for i := 0; i < 3; i++ {
		resp, err := client.Execute(context.Background(), &QueryRequest{Resource: "r", PQL: "SELECT count(*) FROM t"})
		if err != nil {
			t.Fatalf("execute %d: %v", i, err)
		}
		if got := resp.Result.Aggs[0].Count; got != 30 {
			t.Fatalf("merged count = %d, want 30", got)
		}
		if resp.Result.Stats.NumSegmentsQueried != 3 {
			t.Fatalf("trailer stats lost: %+v", resp.Result.Stats)
		}
	}
}

// TestTCPServerQueryError: a handler failure must surface as an explicit
// error frame, not a dropped connection.
func TestTCPServerQueryError(t *testing.T) {
	addr := startServer(t, NewTCPQueryServer(&echoHandler{err: errors.New("engine exploded")}))
	pool := NewPool()
	defer pool.Close()
	_, err := NewTCPClient(addr, pool).Execute(context.Background(), &QueryRequest{Resource: "r", PQL: "q"})
	if err == nil || !strings.Contains(err.Error(), "engine exploded") {
		t.Fatalf("want handler error over the wire, got %v", err)
	}
}

// TestTCPServerNoHandler: a pure controller endpoint rejects queries
// explicitly.
func TestTCPServerNoHandler(t *testing.T) {
	addr := startServer(t, NewTCPQueryServer(nil))
	pool := NewPool()
	defer pool.Close()
	_, err := NewTCPClient(addr, pool).Execute(context.Background(), &QueryRequest{Resource: "r", PQL: "q"})
	if err == nil || !strings.Contains(err.Error(), "no query handler") {
		t.Fatalf("want no-handler error, got %v", err)
	}
}

// TestTCPControllerRoundTrip exercises the completion protocol frames over
// the same listener that serves queries.
func TestTCPControllerRoundTrip(t *testing.T) {
	ctrl := &fakeController{}
	srv := NewTCPQueryServer(&echoHandler{frames: 1})
	srv.Controller = ctrl
	addr := startServer(t, srv)
	pool := NewPool()
	defer pool.Close()
	client := NewTCPControllerClient(addr, pool)

	resp, err := client.SegmentConsumed(context.Background(), &SegmentConsumedRequest{
		Segment: "s1", Resource: "r", Instance: "server1", Offset: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Action != ActionCommit || resp.TargetOffset != 42 {
		t.Fatalf("bad consumed response: %+v", resp)
	}
	if _, err := client.SegmentConsumed(context.Background(), &SegmentConsumedRequest{Segment: "bad"}); err == nil {
		t.Fatal("controller error did not surface")
	}
	commit, err := client.CommitSegment(context.Background(), &SegmentCommitRequest{
		Segment: "s1", Resource: "r", Instance: "server1", Blob: []byte("blob"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !commit.Success {
		t.Fatalf("commit rejected: %+v", commit)
	}
	if ctrl.consumed != 2 || ctrl.commits != 1 {
		t.Fatalf("controller saw %d consumed / %d commits", ctrl.consumed, ctrl.commits)
	}
}

// TestTCPServerNoController: completion frames against an endpoint without a
// controller must error explicitly.
func TestTCPServerNoController(t *testing.T) {
	addr := startServer(t, NewTCPQueryServer(&echoHandler{frames: 1}))
	pool := NewPool()
	defer pool.Close()
	_, err := NewTCPControllerClient(addr, pool).SegmentConsumed(context.Background(), &SegmentConsumedRequest{Segment: "s"})
	if err == nil || !strings.Contains(err.Error(), "no controller") {
		t.Fatalf("want no-controller error, got %v", err)
	}
}

// TestTCPRegistryResolution: the registry resolves known instances and routes
// around unknown ones.
func TestTCPRegistryResolution(t *testing.T) {
	addr := startServer(t, NewTCPQueryServer(&echoHandler{frames: 2}))
	pool := NewPool()
	defer pool.Close()
	reg := NewTCPRegistry(func(instance string) (string, bool) {
		if instance == "server1" {
			return addr, true
		}
		return "", false
	}, pool)
	if _, ok := reg.ServerClient("ghost"); ok {
		t.Fatal("unknown instance resolved")
	}
	client, ok := reg.ServerClient("server1")
	if !ok {
		t.Fatal("known instance did not resolve")
	}
	resp, err := client.Execute(context.Background(), &QueryRequest{Resource: "r", PQL: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Result.Aggs[0].Count; got != 20 {
		t.Fatalf("count = %d, want 20", got)
	}
}

// TestPoolReapsIdleConnections: a connection idling past the timeout is
// closed by the reaper, and the next Get dials fresh.
func TestPoolReapsIdleConnections(t *testing.T) {
	addr := startServer(t, NewTCPQueryServer(&echoHandler{frames: 1}))
	pool := NewPool()
	pool.IdleTimeout = 10 * time.Millisecond
	defer pool.Close()

	conn, err := pool.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(addr, conn)
	deadline := time.Now().Add(5 * time.Second)
	for {
		pool.mu.Lock()
		n := len(pool.idle[addr])
		pool.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The reaped connection is really closed.
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("reaped connection still readable")
	}
}

// TestPoolMaxIdlePerHost: returns beyond the cap close instead of pooling.
func TestPoolMaxIdlePerHost(t *testing.T) {
	addr := startServer(t, NewTCPQueryServer(&echoHandler{frames: 1}))
	pool := NewPool()
	pool.MaxIdlePerHost = 1
	defer pool.Close()

	a, err := pool.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(addr, a)
	pool.Put(addr, b) // over the cap: must close
	pool.mu.Lock()
	n := len(pool.idle[addr])
	pool.mu.Unlock()
	if n != 1 {
		t.Fatalf("pool holds %d idle conns, cap is 1", n)
	}
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("over-cap connection was not closed")
	}
}
