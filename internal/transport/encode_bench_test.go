package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"pinot/internal/pql"
	"pinot/internal/query"
)

// benchResponse builds a group-by response of realistic size: 200 groups of
// two aggregation states each, the shape a server sends per scatter leg.
func benchResponse() *QueryResponse {
	groups := map[string]*query.GroupEntry{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("cat%d\x00%d", i%10, i)
		count := query.NewAggState(pql.Count)
		count.AddCount(int64(i * 7))
		sum := query.NewAggState(pql.Sum)
		sum.AddNumeric(float64(i) * 1.5)
		groups[key] = &query.GroupEntry{
			Values: []any{fmt.Sprintf("cat%d", i%10), int64(i)},
			Aggs:   []*query.AggState{count, sum},
		}
	}
	return &QueryResponse{
		Result: &query.Intermediate{
			Kind:      query.KindGroupBy,
			GroupCols: []string{"category", "bucket"},
			Groups:    groups,
			Stats:     query.Stats{NumDocsScanned: 123456, NumSegmentsQueried: 16, SegmentsMatched: 16},
		},
	}
}

// encodeResponseFresh is the pre-pool implementation, kept as the benchmark
// baseline.
func encodeResponseFresh(r *QueryResponse) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func BenchmarkEncodeResponsePooled(b *testing.B) {
	r := benchResponse()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeResponse(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeResponseFresh(b *testing.B) {
	r := benchResponse()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeResponseFresh(r); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeResponsePoolRoundTrip guards the pool against aliasing: two
// consecutive encodes must not share backing memory, and the payload must
// decode back to the original.
func TestEncodeResponsePoolRoundTrip(t *testing.T) {
	r := benchResponse()
	first, err := EncodeResponse(r)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), first...)
	if _, err := EncodeResponse(benchResponse()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, snapshot) {
		t.Fatal("pooled buffer aliased a previously returned payload")
	}
	back, err := DecodeResponse(first)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Result.Groups) != len(r.Result.Groups) {
		t.Fatalf("round trip lost groups: %d vs %d", len(back.Result.Groups), len(r.Result.Groups))
	}
	if back.Result.Stats != r.Result.Stats {
		t.Fatalf("round trip changed stats: %+v vs %+v", back.Result.Stats, r.Result.Stats)
	}
}
