package transport

import (
	"testing"

	"pinot/internal/pql"
	"pinot/internal/query"
)

// sampleEncoded returns a realistic encoded response to mutate.
func sampleEncoded(t testing.TB) []byte {
	t.Helper()
	inter := query.NewAggIntermediate([]pql.Expression{
		{IsAgg: true, Func: pql.Count, Column: "*"},
		{IsAgg: true, Func: pql.Sum, Column: "clicks"},
	})
	inter.Aggs[0].AddCount(42)
	inter.Aggs[1].AddNumeric(3.5)
	data, err := EncodeResponse(&QueryResponse{Result: inter, Exceptions: []string{"warn"}})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// decodeSafely requires that DecodeResponse never panics and never returns
// a nil response alongside a nil error.
func decodeSafely(t testing.TB, data []byte) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("DecodeResponse panicked on %d bytes: %v", len(data), p)
		}
	}()
	resp, err := DecodeResponse(data)
	if err == nil && resp == nil {
		t.Fatalf("nil response with nil error on %d bytes", len(data))
	}
}

// TestDecodeResponseNeverPanics drives DecodeResponse with every
// truncation and every single-bit flip of a valid payload, plus assorted
// degenerate inputs. Corrupted bytes must produce an error (or, for bit
// flips that keep the stream well-formed, a decoded response) — never a
// panic.
func TestDecodeResponseNeverPanics(t *testing.T) {
	valid := sampleEncoded(t)

	for n := 0; n < len(valid); n++ {
		decodeSafely(t, valid[:n])
		if n < len(valid)-1 {
			// Every strict truncation must fail: the stream is incomplete.
			if _, err := DecodeResponse(valid[:n]); err == nil && n > 0 {
				t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(valid))
			}
		}
	}

	for i := 0; i < len(valid); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := make([]byte, len(valid))
			copy(mut, valid)
			mut[i] ^= 1 << bit
			decodeSafely(t, mut)
		}
	}

	degenerate := [][]byte{
		nil,
		{},
		{0x00},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		// Gob length prefix claiming a huge message with no body.
		{0xfe, 0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	for _, d := range degenerate {
		decodeSafely(t, d)
		if _, err := DecodeResponse(d); err == nil {
			t.Fatalf("degenerate input %v decoded without error", d)
		}
	}
}

// FuzzDecodeResponse lets the fuzzer search for panicking inputs, seeded
// with a valid payload and its common corruptions.
func FuzzDecodeResponse(f *testing.F) {
	valid := sampleEncoded(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("junk"))
	flipped := make([]byte, len(valid))
	copy(flipped, valid)
	flipped[0] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err == nil && resp == nil {
			t.Fatalf("nil response with nil error on %d bytes", len(data))
		}
	})
}
