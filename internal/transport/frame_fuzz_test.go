package transport

import (
	"testing"

	"pinot/internal/pql"
	"pinot/internal/query"
)

// sampleFrames returns one valid encoded frame of every type the data plane
// sends, as complete wire bytes (header + payload).
func sampleFrames(t testing.TB) map[string][]byte {
	t.Helper()
	mustEncode := func(v any) []byte {
		p, err := gobEncode(v)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	inter := query.NewAggIntermediate([]pql.Expression{
		{IsAgg: true, Func: pql.Count, Column: "*"},
		{IsAgg: true, Func: pql.Sum, Column: "clicks"},
	})
	inter.Aggs[0].AddCount(42)
	inter.Aggs[1].AddNumeric(3.5)
	return map[string][]byte{
		"query": AppendFrame(nil, FrameQuery, mustEncode(&QueryRequest{
			Resource: "events_OFFLINE", PQL: "SELECT count(*) FROM events",
			Segments: []string{"events_0"}, QueryID: "q1", BudgetMillis: 100,
		})),
		"segment": AppendFrame(nil, FrameSegment, mustEncode(&SegmentFrame{Seq: 0, Result: inter})),
		"final": AppendFrame(nil, FrameFinal, mustEncode(&FinalFrame{
			Frames: 1, Exceptions: []string{"warn"},
			Stats: query.Stats{NumDocsScanned: 7, NumSegmentsQueried: 1},
		})),
		"error": AppendFrame(nil, FrameError, mustEncode(&ErrorFrame{Message: "boom"})),
	}
}

// decodeFrameSafely requires that DecodeFrame and the typed payload decoders
// never panic and never return (nil, nil) on any input.
func decodeFrameSafely(t testing.TB, data []byte) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("frame decode panicked on %d bytes: %v", len(data), p)
		}
	}()
	frame, err := DecodeFrame(data)
	if err != nil {
		return
	}
	if frame == nil {
		t.Fatalf("nil frame with nil error on %d bytes", len(data))
	}
	// A structurally valid frame must still decode (or reject) its payload
	// without panicking, and the typed decoders must uphold their
	// invariants on anything they accept.
	switch frame.Type {
	case FrameQuery:
		if req, err := DecodeQueryFrame(frame.Payload); err == nil && req == nil {
			t.Fatal("nil query request with nil error")
		}
	case FrameSegment:
		if sf, err := DecodeSegmentFrame(frame.Payload); err == nil && (sf == nil || sf.Result == nil) {
			t.Fatal("accepted segment frame without a result")
		}
	case FrameFinal:
		if ff, err := DecodeFinalFrame(frame.Payload); err == nil && (ff == nil || ff.Frames < 0) {
			t.Fatal("accepted final frame with negative frame count")
		}
	case FrameError:
		if ef, err := DecodeErrorFrame(frame.Payload); err == nil && ef == nil {
			t.Fatal("nil error frame with nil error")
		}
	}
}

// TestDecodeFrameNeverPanics drives the frame decoder through every
// truncation and every single-bit flip of each valid frame type, plus
// degenerate inputs. Corruption must yield an error or a valid decode —
// never a panic, never (nil, nil).
func TestDecodeFrameNeverPanics(t *testing.T) {
	for name, valid := range sampleFrames(t) {
		t.Run(name, func(t *testing.T) {
			for n := 0; n < len(valid); n++ {
				decodeFrameSafely(t, valid[:n])
				// Every strict truncation must fail: either the header is
				// short or the payload is shorter than the header claims.
				if _, err := DecodeFrame(valid[:n]); err == nil {
					t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(valid))
				}
			}
			for i := 0; i < len(valid); i++ {
				for bit := 0; bit < 8; bit++ {
					mut := make([]byte, len(valid))
					copy(mut, valid)
					mut[i] ^= 1 << bit
					decodeFrameSafely(t, mut)
				}
			}
			// Trailing garbage desynchronizes stream framing: rejected.
			if _, err := DecodeFrame(append(append([]byte{}, valid...), 0x00)); err == nil {
				t.Fatal("trailing byte accepted")
			}
		})
	}

	degenerate := [][]byte{
		nil,
		{},
		{frameMagic},
		{frameMagic, frameVersion, FrameQuery, 0, 0xff, 0xff, 0xff, 0xff}, // oversized length
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	for _, d := range degenerate {
		decodeFrameSafely(t, d)
		if _, err := DecodeFrame(d); err == nil {
			t.Fatalf("degenerate input %v decoded without error", d)
		}
	}
}

// FuzzDecodeFrame lets the fuzzer search for inputs that panic the framing
// layer or the typed payload decoders, seeded with every valid frame type
// and its common corruptions. Run in CI as a short smoke
// (-fuzz FuzzDecodeFrame -fuzztime 5s) and longer by hand.
func FuzzDecodeFrame(f *testing.F) {
	for _, valid := range sampleFrames(f) {
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
		flipped := make([]byte, len(valid))
		copy(flipped, valid)
		flipped[len(flipped)/2] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("junk"))
	f.Add([]byte{frameMagic, frameVersion, FrameSegment, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		decodeFrameSafely(t, data)
	})
}
