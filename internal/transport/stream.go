package transport

import (
	"context"
	"fmt"

	"pinot/internal/query"
)

// StreamHandler executes one query, emitting per-segment intermediates in
// sequence order as they become ready and returning the response trailer.
// The server package implements it; both the in-memory ServerClient and the
// TCP data plane drive it, so the two transports share one execution path.
type StreamHandler interface {
	ExecuteStream(ctx context.Context, req *QueryRequest, emit func(seq int, res *query.Intermediate) error) (*FinalFrame, error)
}

// maxReorderBuffer bounds how many out-of-sequence segment frames a merger
// will hold. The server emits frames in order, so anything beyond a trivial
// buffer indicates a corrupt or hostile stream.
const maxReorderBuffer = 1024

// StreamMerger incrementally folds the segment frames of one streamed
// response into a single intermediate, tolerating out-of-order delivery
// (frames are buffered until their predecessors arrive) and rejecting
// duplicate or insane sequence numbers. It is not safe for concurrent use;
// one response stream has one reader.
type StreamMerger struct {
	merged   *query.Intermediate
	buffered map[int]*query.Intermediate
	next     int
	applied  int
}

// NewStreamMerger returns an empty merger.
func NewStreamMerger() *StreamMerger {
	return &StreamMerger{buffered: map[int]*query.Intermediate{}}
}

// Add folds one segment frame in. Frames may arrive in any order; each
// sequence number is accepted exactly once.
func (m *StreamMerger) Add(sf *SegmentFrame) error {
	if sf.Result == nil {
		return fmt.Errorf("transport: segment frame %d has no result", sf.Seq)
	}
	if sf.Seq < 0 {
		return fmt.Errorf("transport: negative segment frame seq %d", sf.Seq)
	}
	if sf.Seq < m.next {
		return fmt.Errorf("transport: duplicate segment frame seq %d", sf.Seq)
	}
	if _, dup := m.buffered[sf.Seq]; dup {
		return fmt.Errorf("transport: duplicate segment frame seq %d", sf.Seq)
	}
	if sf.Seq != m.next {
		if len(m.buffered) >= maxReorderBuffer {
			return fmt.Errorf("transport: segment frame seq %d with %d frames already buffered", sf.Seq, len(m.buffered))
		}
		m.buffered[sf.Seq] = sf.Result
		return nil
	}
	res := sf.Result
	for {
		if err := m.apply(res); err != nil {
			return err
		}
		m.next++
		m.applied++
		var ok bool
		res, ok = m.buffered[m.next]
		if !ok {
			return nil
		}
		delete(m.buffered, m.next)
	}
}

func (m *StreamMerger) apply(res *query.Intermediate) error {
	if m.merged == nil {
		m.merged = res
		return nil
	}
	return m.merged.Merge(res)
}

// Applied reports how many frames have been folded in so far.
func (m *StreamMerger) Applied() int { return m.applied }

// Finish validates the trailer against what arrived — the trailer's frame
// count makes truncation and loss detectable — merges the trailer stats and
// returns the response.
func (m *StreamMerger) Finish(ff *FinalFrame) (*query.Intermediate, error) {
	if len(m.buffered) > 0 {
		return nil, fmt.Errorf("transport: stream ended with %d frames missing below buffered ones (got %d of %d)",
			len(m.buffered), m.applied, ff.Frames)
	}
	if m.applied != ff.Frames {
		return nil, fmt.Errorf("transport: stream truncated: %d segment frames arrived, trailer says %d", m.applied, ff.Frames)
	}
	if m.merged == nil {
		return nil, fmt.Errorf("transport: stream carried no result")
	}
	m.merged.Stats.Merge(ff.Stats)
	return m.merged, nil
}
