package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"pinot/internal/qctx"
	"pinot/internal/query"
)

// The TCP data plane speaks length-prefixed frames. Every frame starts with
// an 8-byte header:
//
//	offset 0: magic 0x50 ('P')
//	offset 1: protocol version (frameVersion)
//	offset 2: frame type (Frame* constants)
//	offset 3: reserved, must be zero
//	offset 4: uint32 big-endian payload length
//
// followed by a gob payload whose Go type depends on the frame type. A query
// is one FrameQuery; the response is zero or more FrameSegment frames (one
// per emitted per-segment intermediate, sequence-numbered contiguously from
// zero) terminated by exactly one FrameFinal trailer, or a FrameError if the
// query failed outright. Controller completion ops use the request/response
// frame pairs below on the same framing.

// FrameHeaderSize is the fixed byte length of a frame header.
const FrameHeaderSize = 8

const (
	frameMagic   = 0x50 // 'P'
	frameVersion = 1
)

// MaxFramePayload caps a single frame's payload; decoders reject anything
// larger before allocating, so a hostile or corrupt length prefix cannot
// balloon memory.
const MaxFramePayload = 64 << 20

// Frame types.
const (
	FrameQuery        uint8 = 1 // QueryRequest
	FrameSegment      uint8 = 2 // SegmentFrame
	FrameFinal        uint8 = 3 // FinalFrame
	FrameError        uint8 = 4 // ErrorFrame
	FrameConsumed     uint8 = 5 // SegmentConsumedRequest
	FrameConsumedResp uint8 = 6 // SegmentConsumedResponse
	FrameCommit       uint8 = 7 // SegmentCommitRequest
	FrameCommitResp   uint8 = 8 // SegmentCommitResponse
)

// SegmentFrame carries one per-segment intermediate of a streamed response.
// Seq numbers are contiguous from zero within a response; the merger uses
// them to reject duplicates and reorder defensively.
type SegmentFrame struct {
	Seq    int
	Result *query.Intermediate
}

// FinalFrame is the trailer of a streamed response: how many segment frames
// preceded it (so truncation is detectable), server-side exceptions and
// trace, and trailer stats not attributable to any one emitted segment
// (pruning work).
type FinalFrame struct {
	Frames     int
	Exceptions []string
	Trace      qctx.Trace
	Stats      query.Stats
}

// ErrorFrame aborts a streamed response with a server-side query error.
type ErrorFrame struct {
	Message string
}

// Frame is one decoded wire frame: a header plus its raw payload.
type Frame struct {
	Type    uint8
	Payload []byte
}

// AppendFrame serializes a frame header + payload into buf.
func AppendFrame(buf []byte, typ uint8, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	hdr[0] = frameMagic
	hdr[1] = frameVersion
	hdr[2] = typ
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// WriteFrame writes one frame and counts it in the transport metrics.
func WriteFrame(w io.Writer, typ uint8, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("transport: frame payload %d exceeds max %d", len(payload), MaxFramePayload)
	}
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Write(AppendFrame(nil, typ, payload))
	_, err := w.Write(buf.Bytes())
	n := buf.Len()
	if buf.Cap() <= maxPooledBuf {
		encodeBufPool.Put(buf)
	}
	if err != nil {
		return err
	}
	met := wireMet.Load()
	met.framesSent.Inc()
	met.bytesSent.Add(int64(n))
	return nil
}

// parseHeader validates a frame header and returns (type, payload length).
func parseHeader(hdr []byte) (uint8, int, error) {
	if len(hdr) < FrameHeaderSize {
		return 0, 0, fmt.Errorf("transport: short frame header (%d bytes)", len(hdr))
	}
	if hdr[0] != frameMagic {
		return 0, 0, fmt.Errorf("transport: bad frame magic 0x%02x", hdr[0])
	}
	if hdr[1] != frameVersion {
		return 0, 0, fmt.Errorf("transport: unsupported frame version %d", hdr[1])
	}
	typ := hdr[2]
	if typ < FrameQuery || typ > FrameCommitResp {
		return 0, 0, fmt.Errorf("transport: unknown frame type %d", typ)
	}
	if hdr[3] != 0 {
		return 0, 0, fmt.Errorf("transport: nonzero reserved byte 0x%02x", hdr[3])
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxFramePayload {
		return 0, 0, fmt.Errorf("transport: frame payload %d exceeds max %d", n, MaxFramePayload)
	}
	return typ, int(n), nil
}

// ReadFrame reads one frame off the wire, counting bytes and frames. It
// validates the header before allocating the payload.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	typ, n, err := parseHeader(hdr[:])
	if err != nil {
		wireMet.Load().decodeFails.Inc()
		return nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: truncated frame payload: %w", err)
	}
	met := wireMet.Load()
	met.framesRecv.Inc()
	met.bytesRecv.Add(int64(FrameHeaderSize + n))
	return &Frame{Type: typ, Payload: payload}, nil
}

// DecodeFrame parses a single complete frame from a byte slice. This is the
// fuzz surface: any input must produce either a frame or an error — never a
// panic, never (nil, nil) — and the input must contain exactly one frame
// (trailing garbage is an error, since on a stream it would desynchronize
// framing).
func DecodeFrame(data []byte) (*Frame, error) {
	typ, n, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if len(data)-FrameHeaderSize < n {
		return nil, fmt.Errorf("transport: truncated frame: have %d payload bytes, header says %d",
			len(data)-FrameHeaderSize, n)
	}
	if len(data)-FrameHeaderSize > n {
		return nil, fmt.Errorf("transport: %d trailing bytes after frame", len(data)-FrameHeaderSize-n)
	}
	return &Frame{Type: typ, Payload: data[FrameHeaderSize : FrameHeaderSize+n]}, nil
}

// gobDecode decodes a frame payload into out with a panic guard: payloads
// arrive off the network, and gob's decoder has historically let hostile
// inputs escape its own recover net.
func gobDecode(payload []byte, out any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("transport: payload decode panic: %v", p)
		}
		if err != nil {
			wireMet.Load().decodeFails.Inc()
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("transport: decode payload: %w", err)
	}
	return nil
}

// gobEncode encodes a frame payload through the shared buffer pool.
func gobEncode(v any) ([]byte, error) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		encodeBufPool.Put(buf)
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		encodeBufPool.Put(buf)
	}
	return out, nil
}

// DecodeQueryFrame decodes a FrameQuery payload.
func DecodeQueryFrame(payload []byte) (*QueryRequest, error) {
	var req QueryRequest
	if err := gobDecode(payload, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeSegmentFrame decodes a FrameSegment payload.
func DecodeSegmentFrame(payload []byte) (*SegmentFrame, error) {
	var sf SegmentFrame
	if err := gobDecode(payload, &sf); err != nil {
		return nil, err
	}
	if sf.Result == nil {
		return nil, fmt.Errorf("transport: segment frame %d has no result", sf.Seq)
	}
	return &sf, nil
}

// DecodeFinalFrame decodes a FrameFinal payload.
func DecodeFinalFrame(payload []byte) (*FinalFrame, error) {
	var ff FinalFrame
	if err := gobDecode(payload, &ff); err != nil {
		return nil, err
	}
	if ff.Frames < 0 {
		return nil, fmt.Errorf("transport: final frame claims %d segment frames", ff.Frames)
	}
	return &ff, nil
}

// DecodeErrorFrame decodes a FrameError payload.
func DecodeErrorFrame(payload []byte) (*ErrorFrame, error) {
	var ef ErrorFrame
	if err := gobDecode(payload, &ef); err != nil {
		return nil, err
	}
	return &ef, nil
}
