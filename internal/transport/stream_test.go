package transport

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"pinot/internal/pql"
	"pinot/internal/query"
)

// countFrame builds a segment frame carrying a single count(*) partial.
func countFrame(seq int, n int64) *SegmentFrame {
	inter := query.NewAggIntermediate([]pql.Expression{{IsAgg: true, Func: pql.Count, Column: "*"}})
	inter.Aggs[0].AddCount(n)
	return &SegmentFrame{Seq: seq, Result: inter}
}

func mergedCount(t *testing.T, res *query.Intermediate) int64 {
	t.Helper()
	if res == nil || len(res.Aggs) != 1 {
		t.Fatalf("bad merged result: %+v", res)
	}
	return res.Aggs[0].Count
}

func TestStreamMergerInOrder(t *testing.T) {
	m := NewStreamMerger()
	for i := 0; i < 3; i++ {
		if err := m.Add(countFrame(i, 10)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if m.Applied() != 3 {
		t.Fatalf("applied = %d, want 3", m.Applied())
	}
	res, err := m.Finish(&FinalFrame{Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := mergedCount(t, res); got != 30 {
		t.Fatalf("count = %d, want 30", got)
	}
}

// TestStreamMergerReorder: frames arriving in any order must merge exactly
// once each, in sequence, with the same final result.
func TestStreamMergerReorder(t *testing.T) {
	m := NewStreamMerger()
	for _, seq := range []int{2, 0, 3, 1} {
		if err := m.Add(countFrame(seq, int64(seq+1))); err != nil {
			t.Fatalf("add %d: %v", seq, err)
		}
	}
	if m.Applied() != 4 {
		t.Fatalf("applied = %d, want 4", m.Applied())
	}
	res, err := m.Finish(&FinalFrame{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := mergedCount(t, res); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
}

func TestStreamMergerRejectsDuplicates(t *testing.T) {
	m := NewStreamMerger()
	if err := m.Add(countFrame(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Duplicate of an applied frame.
	if err := m.Add(countFrame(0, 1)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate error, got %v", err)
	}
	// Duplicate of a buffered (not yet applied) frame.
	if err := m.Add(countFrame(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(countFrame(2, 1)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate error for buffered seq, got %v", err)
	}
}

func TestStreamMergerRejectsBadFrames(t *testing.T) {
	m := NewStreamMerger()
	if err := m.Add(&SegmentFrame{Seq: 0, Result: nil}); err == nil {
		t.Fatal("nil result accepted")
	}
	if err := m.Add(countFrame(-1, 1)); err == nil {
		t.Fatal("negative seq accepted")
	}
	// A hostile stream cannot make the merger buffer unboundedly.
	overflowed := false
	for seq := 1; seq <= maxReorderBuffer+1; seq++ {
		if err := m.Add(countFrame(seq, 1)); err != nil {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("reorder buffer never overflowed")
	}
}

// TestStreamMergerDetectsTruncation: the trailer's frame count must catch a
// stream that lost frames (fewer arrived than the server sent).
func TestStreamMergerDetectsTruncation(t *testing.T) {
	m := NewStreamMerger()
	if err := m.Add(countFrame(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Finish(&FinalFrame{Frames: 3}); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation error, got %v", err)
	}
}

func TestStreamMergerDetectsMissingBelowBuffered(t *testing.T) {
	m := NewStreamMerger()
	if err := m.Add(countFrame(1, 1)); err != nil { // seq 0 never arrives
		t.Fatal(err)
	}
	if _, err := m.Finish(&FinalFrame{Frames: 2}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("want missing-frames error, got %v", err)
	}
}

func TestStreamMergerEmptyStreamIsError(t *testing.T) {
	m := NewStreamMerger()
	if _, err := m.Finish(&FinalFrame{Frames: 0}); err == nil {
		t.Fatal("empty stream produced a result; servers always emit at least one frame")
	}
}

// TestStreamMergerTrailerStats: pruning stats ride the trailer, not any
// segment frame, and must land on the merged result.
func TestStreamMergerTrailerStats(t *testing.T) {
	m := NewStreamMerger()
	sf := countFrame(0, 5)
	sf.Result.Stats.NumDocsScanned = 100
	if err := m.Add(sf); err != nil {
		t.Fatal(err)
	}
	res, err := m.Finish(&FinalFrame{Frames: 1, Stats: query.Stats{SegmentsPrunedByServer: 7, NumDocsScanned: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SegmentsPrunedByServer != 7 {
		t.Fatalf("trailer prune stats lost: %+v", res.Stats)
	}
	if res.Stats.NumDocsScanned != 101 {
		t.Fatalf("trailer stats must merge additively: %+v", res.Stats)
	}
}

// --- TCP client stream behavior against scripted servers ---

// scriptedServer accepts one connection, reads one query frame, then writes
// the scripted raw bytes and optionally leaves the connection open.
func scriptedServer(t *testing.T, script []byte, keepOpen bool) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := ReadFrame(conn); err != nil {
			return
		}
		if len(script) > 0 {
			if _, err := conn.Write(script); err != nil {
				return
			}
		}
		if keepOpen {
			// Hold the conn half-open until the client gives up.
			conn.Read(make([]byte, 1))
		}
	}()
	return lis.Addr().String()
}

func tcpExecute(t *testing.T, ctx context.Context, addr string) (*QueryResponse, error) {
	t.Helper()
	pool := NewPool()
	t.Cleanup(pool.Close)
	return NewTCPClient(addr, pool).Execute(ctx, &QueryRequest{Resource: "r", PQL: "SELECT count(*) FROM t"})
}

func encodeFrame(t *testing.T, typ uint8, v any) []byte {
	t.Helper()
	p, err := gobEncode(v)
	if err != nil {
		t.Fatal(err)
	}
	return AppendFrame(nil, typ, p)
}

// waitGoroutines waits for the goroutine count to settle back near base;
// streamed responses must not leak watchdogs or handler goroutines.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: base %d, now %d\n%s", base, runtime.NumGoroutine(), buf[:n])
}

// TestTCPClientTruncatedFinalTrailer: a trailer claiming more frames than
// arrived must fail the call, never return a partial merge as complete.
func TestTCPClientTruncatedFinalTrailer(t *testing.T) {
	base := runtime.NumGoroutine()
	script := append(
		encodeFrame(t, FrameSegment, countFrame(0, 5)),
		encodeFrame(t, FrameFinal, &FinalFrame{Frames: 3})...,
	)
	addr := scriptedServer(t, script, false)
	_, err := tcpExecute(t, context.Background(), addr)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation error, got %v", err)
	}
	waitGoroutines(t, base)
}

// TestTCPClientDuplicateSeqFromServer: a stream repeating a sequence number
// is corrupt and must be rejected (not double-merged).
func TestTCPClientDuplicateSeqFromServer(t *testing.T) {
	script := append(
		encodeFrame(t, FrameSegment, countFrame(0, 5)),
		encodeFrame(t, FrameSegment, countFrame(0, 5))...,
	)
	addr := scriptedServer(t, script, false)
	_, err := tcpExecute(t, context.Background(), addr)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-seq error, got %v", err)
	}
}

// TestTCPClientMidFrameEOF: a connection dying inside a frame body must
// surface as an error promptly — not hang, not yield a partial decode.
func TestTCPClientMidFrameEOF(t *testing.T) {
	whole := encodeFrame(t, FrameSegment, countFrame(0, 5))
	addr := scriptedServer(t, whole[:len(whole)/2], false)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	_, err := tcpExecute(t, ctx, addr)
	if err == nil {
		t.Fatal("mid-frame EOF produced a response")
	}
	if time.Since(start) > 4*time.Second {
		t.Fatalf("client hung %v on a torn frame", time.Since(start))
	}
}

// TestTCPClientBudgetExpiryMidStream: when the query budget expires while
// the server is mid-stream (half-open after one frame), the client must
// return the context error within the budget, discard the connection, and
// leak nothing.
func TestTCPClientBudgetExpiryMidStream(t *testing.T) {
	base := runtime.NumGoroutine()
	addr := scriptedServer(t, encodeFrame(t, FrameSegment, countFrame(0, 5)), true)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tcpExecute(t, ctx, addr)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("budget expiry took %v to unblock the stream read", elapsed)
	}
	cancel()
	waitGoroutines(t, base)
}

// TestTCPClientCancelMidStream: explicit cancellation (not deadline) must
// unblock a stream read just as promptly.
func TestTCPClientCancelMidStream(t *testing.T) {
	addr := scriptedServer(t, encodeFrame(t, FrameSegment, countFrame(0, 5)), true)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := tcpExecute(t, ctx, addr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v to unblock the stream read", elapsed)
	}
}
