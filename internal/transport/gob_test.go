package transport

import (
	"testing"

	"pinot/internal/pql"
	"pinot/internal/query"
)

func TestDistinctCountGob(t *testing.T) {
	inter := query.NewAggIntermediate([]pql.Expression{{IsAgg: true, Func: pql.DistinctCount, Column: "m"}})
	inter.Aggs[0].AddDistinct("a")
	inter.Aggs[0].AddDistinct("b")
	data, err := EncodeResponse(&QueryResponse{Result: inter})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if n := got.Result.Aggs[0].Result().(int64); n != 2 {
		t.Fatalf("distinct = %d", n)
	}
}
