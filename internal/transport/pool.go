package transport

import (
	"context"
	"net"
	"sync"
	"time"
)

// Pool checks out TCP connections per destination address, keeping a small
// idle set per host and reaping connections that sit unused. The query
// protocol is one-outstanding-request-per-connection, so a checkout is
// exclusive: Get removes the connection from the pool and Put returns it.
type Pool struct {
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
	// IdleTimeout is how long a connection may sit idle before the reaper
	// closes it (default 30s).
	IdleTimeout time.Duration
	// MaxIdlePerHost caps pooled connections per destination (default 4).
	MaxIdlePerHost int

	mu     sync.Mutex
	idle   map[string][]pooledConn
	dialed map[string]bool // destinations dialed at least once, for reconnect accounting
	closed bool
	reaper *time.Ticker
	stop   chan struct{}
}

type pooledConn struct {
	conn  net.Conn
	since time.Time
}

// NewPool returns a pool with default tuning and starts its reaper.
func NewPool() *Pool {
	p := &Pool{
		DialTimeout:    5 * time.Second,
		IdleTimeout:    30 * time.Second,
		MaxIdlePerHost: 4,
		idle:           map[string][]pooledConn{},
		dialed:         map[string]bool{},
		stop:           make(chan struct{}),
	}
	p.reaper = time.NewTicker(time.Second)
	go p.reapLoop()
	return p
}

func (p *Pool) reapLoop() {
	for {
		select {
		case <-p.stop:
			return
		case <-p.reaper.C:
			p.reapIdle(time.Now())
		}
	}
}

func (p *Pool) reapIdle(now time.Time) {
	met := wireMet.Load()
	p.mu.Lock()
	var doomed []net.Conn
	for addr, conns := range p.idle {
		keep := conns[:0]
		for _, pc := range conns {
			if now.Sub(pc.since) > p.IdleTimeout {
				doomed = append(doomed, pc.conn)
			} else {
				keep = append(keep, pc)
			}
		}
		if len(keep) == 0 {
			delete(p.idle, addr)
		} else {
			p.idle[addr] = keep
		}
	}
	p.mu.Unlock()
	for _, c := range doomed {
		c.Close()
		met.idleClosed.Inc()
		met.poolIdle.Dec()
	}
}

// Get checks out a connection to addr, reusing an idle one when available
// (newest first, so stale connections age out) or dialing.
func (p *Pool) Get(ctx context.Context, addr string) (net.Conn, error) {
	met := wireMet.Load()
	p.mu.Lock()
	if conns := p.idle[addr]; len(conns) > 0 {
		pc := conns[len(conns)-1]
		p.idle[addr] = conns[:len(conns)-1]
		p.mu.Unlock()
		met.poolHits.Inc()
		met.poolIdle.Dec()
		return pc.conn, nil
	}
	redial := p.dialed[addr]
	p.dialed[addr] = true
	p.mu.Unlock()

	met.poolMisses.Inc()
	timeout := p.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	dctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		met.connErrors.Inc()
		return nil, err
	}
	met.dials.Inc()
	if redial {
		met.reconnects.Inc()
	}
	return conn, nil
}

// Put returns a healthy connection for reuse. Over-limit or post-Close
// returns close the connection instead.
func (p *Pool) Put(addr string, conn net.Conn) {
	met := wireMet.Load()
	p.mu.Lock()
	if p.closed || len(p.idle[addr]) >= p.maxIdle() {
		p.mu.Unlock()
		conn.Close()
		met.idleClosed.Inc()
		return
	}
	p.idle[addr] = append(p.idle[addr], pooledConn{conn: conn, since: time.Now()})
	p.mu.Unlock()
	met.poolIdle.Inc()
}

// Discard closes a connection that hit an I/O or protocol error.
func (p *Pool) Discard(conn net.Conn) {
	conn.Close()
	wireMet.Load().connErrors.Inc()
}

func (p *Pool) maxIdle() int {
	if p.MaxIdlePerHost <= 0 {
		return 4
	}
	return p.MaxIdlePerHost
}

// Close stops the reaper and closes every idle connection.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var doomed []net.Conn
	for _, conns := range p.idle {
		for _, pc := range conns {
			doomed = append(doomed, pc.conn)
		}
	}
	p.idle = map[string][]pooledConn{}
	p.mu.Unlock()
	p.reaper.Stop()
	close(p.stop)
	met := wireMet.Load()
	for _, c := range doomed {
		c.Close()
		met.poolIdle.Dec()
	}
}
