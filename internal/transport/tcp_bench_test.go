package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"pinot/internal/query"
)

// benchSegmentFrames builds n per-segment group-by intermediates of the
// realistic shape used across the transport benchmarks (200 groups, two
// aggregation states each).
func benchSegmentFrames(n int) []*query.Intermediate {
	out := make([]*query.Intermediate, n)
	for i := range out {
		out[i] = benchResponse().Result
	}
	return out
}

// benchStreamHandler replays fixed per-segment intermediates and a trailer,
// standing in for a server's execution engine so the benchmark isolates the
// wire path: framing, gob, pooling, streaming merge.
type benchStreamHandler struct {
	frames []*query.Intermediate
}

func (h *benchStreamHandler) ExecuteStream(ctx context.Context, req *QueryRequest, emit func(seq int, res *query.Intermediate) error) (*FinalFrame, error) {
	for seq, r := range h.frames {
		if err := emit(seq, r); err != nil {
			return nil, err
		}
	}
	return &FinalFrame{Frames: len(h.frames), Stats: query.Stats{NumSegmentsQueried: len(h.frames)}}, nil
}

// BenchmarkTransportLoopbackQuery measures one full framed query round trip
// over a real loopback socket: request encode, four streamed segment frames,
// trailer, incremental merge — on a pooled connection, the steady state of
// the broker→server data plane.
func BenchmarkTransportLoopbackQuery(b *testing.B) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewTCPQueryServer(&benchStreamHandler{frames: benchSegmentFrames(4)})
	go srv.Serve(lis)
	defer srv.Close()

	pool := NewPool()
	defer pool.Close()
	client := NewTCPClient(lis.Addr().String(), pool)
	req := &QueryRequest{Resource: "events_OFFLINE", PQL: "SELECT count(*) FROM events GROUP BY category"}
	ctx := context.Background()

	// Prime the pooled connection so dial cost is not part of steady state.
	if _, err := client.Execute(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Execute(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Result.Groups) != 200 {
			b.Fatalf("merged %d groups, want 200", len(resp.Result.Groups))
		}
	}
}

// BenchmarkStreamVsBuffered compares the client-side cost of the two response
// shapes for the same query result: the streamed path decodes and merges N
// per-segment frames incrementally, the buffered path decodes one whole-
// response payload the server pre-merged. Both are measured every iteration;
// the combined time is ns/op and each side is reported as its own metric
// (stream-ns/op, buffered-ns/op).
func BenchmarkStreamVsBuffered(b *testing.B) {
	const nFrames = 8
	frames := benchSegmentFrames(nFrames)

	// The streamed wire bytes: per-segment frame payloads plus the trailer,
	// exactly what a server writes.
	segPayloads := make([][]byte, nFrames)
	for seq, r := range frames {
		p, err := gobEncode(&SegmentFrame{Seq: seq, Result: r})
		if err != nil {
			b.Fatal(err)
		}
		segPayloads[seq] = p
	}
	trailer := &FinalFrame{Frames: nFrames, Stats: query.Stats{NumSegmentsQueried: nFrames}}

	// The buffered wire bytes: the server merges all segments first and
	// encodes the single result once.
	bufMerger := NewStreamMerger()
	for seq, p := range segPayloads {
		sf, err := DecodeSegmentFrame(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := bufMerger.Add(sf); err != nil {
			b.Fatalf("add %d: %v", seq, err)
		}
	}
	merged, err := bufMerger.Finish(trailer)
	if err != nil {
		b.Fatal(err)
	}
	buffered, err := EncodeResponse(&QueryResponse{Result: merged})
	if err != nil {
		b.Fatal(err)
	}

	var streamNS, bufferedNS time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		m := NewStreamMerger()
		for _, p := range segPayloads {
			sf, err := DecodeSegmentFrame(p)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Add(sf); err != nil {
				b.Fatal(err)
			}
		}
		res, err := m.Finish(trailer)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) != 200 {
			b.Fatalf("streamed merge produced %d groups, want 200", len(res.Groups))
		}
		streamNS += time.Since(start)

		start = time.Now()
		resp, err := DecodeResponse(buffered)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Result.Groups) != 200 {
			b.Fatalf("buffered decode produced %d groups, want 200", len(resp.Result.Groups))
		}
		bufferedNS += time.Since(start)
	}
	b.ReportMetric(float64(streamNS.Nanoseconds())/float64(b.N), "stream-ns/op")
	b.ReportMetric(float64(bufferedNS.Nanoseconds())/float64(b.N), "buffered-ns/op")
}
