package transport

import (
	"context"
	"testing"

	"pinot/internal/pql"
	"pinot/internal/query"
)

func TestResponseGobRoundTrip(t *testing.T) {
	inter := query.NewAggIntermediate([]pql.Expression{
		{IsAgg: true, Func: pql.Count, Column: "*"},
		{IsAgg: true, Func: pql.Sum, Column: "clicks"},
	})
	inter.Aggs[0].AddCount(42)
	inter.Aggs[1].AddNumeric(3.5)
	inter.Stats.NumDocsScanned = 7
	resp := &QueryResponse{Result: inter, Exceptions: []string{"warn"}}
	data, err := EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Aggs[0].Count != 42 || got.Result.Aggs[1].Sum != 3.5 {
		t.Fatalf("aggs = %+v", got.Result.Aggs)
	}
	if got.Result.Stats.NumDocsScanned != 7 || got.Exceptions[0] != "warn" {
		t.Fatalf("stats/exceptions lost: %+v", got)
	}
	if _, err := DecodeResponse([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGroupByGobRoundTrip(t *testing.T) {
	inter := &query.Intermediate{
		Kind:      query.KindGroupBy,
		AggExprs:  []pql.Expression{{IsAgg: true, Func: pql.Sum, Column: "x"}},
		GroupCols: []string{"country"},
		Groups:    map[string]*query.GroupEntry{},
	}
	s := query.NewAggState(pql.Sum)
	s.AddNumeric(5)
	inter.Groups["us"] = &query.GroupEntry{Values: []any{"us"}, Aggs: []*query.AggState{s}}
	sm := query.NewAggState(pql.Sum)
	sm.AddNumeric(7)
	inter.Groups["7"] = &query.GroupEntry{Values: []any{int64(7)}, Aggs: []*query.AggState{sm}}

	data, err := EncodeResponse(&QueryResponse{Result: inter})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	// Typed group values survive the wire (int64 stays int64).
	if v, ok := got.Result.Groups["7"].Values[0].(int64); !ok || v != 7 {
		t.Fatalf("typed value lost: %#v", got.Result.Groups["7"].Values[0])
	}
	if got.Result.Groups["us"].Aggs[0].Sum != 5 {
		t.Fatalf("group agg lost")
	}
}

func TestSelectionGobRoundTrip(t *testing.T) {
	inter := &query.Intermediate{
		Kind:       query.KindSelection,
		SelectCols: []string{"a", "b"},
		Rows:       [][]any{{int64(1), "x"}, {int64(2), []any{"m", "n"}}},
	}
	data, err := EncodeResponse(&QueryResponse{Result: inter})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Rows[1][1].([]any)[0] != "m" {
		t.Fatalf("multi-value cell lost: %#v", got.Result.Rows)
	}
}

func TestRegistryFunc(t *testing.T) {
	var r Registry = RegistryFunc(func(instance string) (ServerClient, bool) {
		if instance == "known" {
			return fakeClient{}, true
		}
		return nil, false
	})
	if _, ok := r.ServerClient("known"); !ok {
		t.Fatal("known instance missing")
	}
	if _, ok := r.ServerClient("other"); ok {
		t.Fatal("unknown instance resolved")
	}
}

type fakeClient struct{}

func (fakeClient) Execute(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	return &QueryResponse{}, nil
}
