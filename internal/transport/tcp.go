package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pinot/internal/query"
)

// TCPQueryServer serves the framed query protocol for one server instance:
// FrameQuery in, a stream of FrameSegment frames and one FrameFinal (or a
// FrameError) out. When Controller is set it also answers the segment
// completion frames, which lets one listener serve a controller's data
// plane. Connections handle one request at a time; concurrency comes from
// the client pool holding several connections.
type TCPQueryServer struct {
	Handler    StreamHandler
	Controller ControllerClient

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPQueryServer serves queries via handler (nil is allowed for a pure
// controller endpoint).
func NewTCPQueryServer(handler StreamHandler) *TCPQueryServer {
	return &TCPQueryServer{Handler: handler, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections until Close. It blocks; run it in a goroutine.
func (s *TCPQueryServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("transport: server closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, drops live connections and waits for handlers.
func (s *TCPQueryServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.wg.Wait()
}

func (s *TCPQueryServer) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		frame, err := ReadFrame(conn)
		if err != nil {
			return // EOF, reset, or framing violation: drop the connection
		}
		switch frame.Type {
		case FrameQuery:
			if err := s.serveQuery(conn, frame.Payload); err != nil {
				return
			}
		case FrameConsumed:
			if err := s.serveConsumed(conn, frame.Payload); err != nil {
				return
			}
		case FrameCommit:
			if err := s.serveCommit(conn, frame.Payload); err != nil {
				return
			}
		default:
			// A response frame type on the request stream: protocol
			// violation, drop the connection.
			return
		}
	}
}

// writeErrorFrame best-effort reports a query error; a write failure just
// drops the connection (returned to caller).
func writeErrorFrame(conn net.Conn, msg string) error {
	payload, err := gobEncode(&ErrorFrame{Message: msg})
	if err != nil {
		return err
	}
	return WriteFrame(conn, FrameError, payload)
}

func (s *TCPQueryServer) serveQuery(conn net.Conn, payload []byte) error {
	req, err := DecodeQueryFrame(payload)
	if err != nil {
		return err // undecodable request: framing no longer trustworthy
	}
	if s.Handler == nil {
		return writeErrorFrame(conn, "transport: no query handler on this endpoint")
	}
	// The handler runs under a context cancelled if a frame write fails, so
	// a dead broker stops server-side work instead of leaving it running
	// against a closed socket.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var writeErr error
	trailer, err := s.Handler.ExecuteStream(ctx, req, func(seq int, res *query.Intermediate) error {
		p, err := gobEncode(&SegmentFrame{Seq: seq, Result: res})
		if err != nil {
			return err
		}
		if err := WriteFrame(conn, FrameSegment, p); err != nil {
			writeErr = err
			cancel()
			return err
		}
		return nil
	})
	if writeErr != nil {
		return writeErr
	}
	if err != nil {
		return writeErrorFrame(conn, err.Error())
	}
	p, err := gobEncode(trailer)
	if err != nil {
		return writeErrorFrame(conn, err.Error())
	}
	return WriteFrame(conn, FrameFinal, p)
}

func (s *TCPQueryServer) serveConsumed(conn net.Conn, payload []byte) error {
	var req SegmentConsumedRequest
	if err := gobDecode(payload, &req); err != nil {
		return err
	}
	if s.Controller == nil {
		return writeErrorFrame(conn, "transport: no controller on this endpoint")
	}
	resp, err := s.Controller.SegmentConsumed(context.Background(), &req)
	if err != nil {
		return writeErrorFrame(conn, err.Error())
	}
	p, err := gobEncode(resp)
	if err != nil {
		return err
	}
	return WriteFrame(conn, FrameConsumedResp, p)
}

func (s *TCPQueryServer) serveCommit(conn net.Conn, payload []byte) error {
	var req SegmentCommitRequest
	if err := gobDecode(payload, &req); err != nil {
		return err
	}
	if s.Controller == nil {
		return writeErrorFrame(conn, "transport: no controller on this endpoint")
	}
	resp, err := s.Controller.CommitSegment(context.Background(), &req)
	if err != nil {
		return writeErrorFrame(conn, err.Error())
	}
	p, err := gobEncode(resp)
	if err != nil {
		return err
	}
	return WriteFrame(conn, FrameCommitResp, p)
}

// TCPClient is a ServerClient that speaks the framed protocol to one
// destination address through a shared connection pool.
type TCPClient struct {
	Addr string
	Pool *Pool
}

// NewTCPClient returns a client for one destination.
func NewTCPClient(addr string, pool *Pool) *TCPClient { return &TCPClient{Addr: addr, Pool: pool} }

// Execute sends the query and merges the streamed response incrementally.
// Context cancellation or deadline expiry mid-stream surfaces as an error
// (the connection is discarded, not pooled).
func (c *TCPClient) Execute(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	conn, err := c.Pool.Get(ctx, c.Addr)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, conn, req)
	if err != nil {
		c.Pool.Discard(conn)
		return nil, err
	}
	c.Pool.Put(c.Addr, conn)
	return resp, nil
}

// errQueryFailed marks server-reported query errors (FrameError), as opposed
// to transport failures; both surface as errors to the broker, which treats
// them identically (retry elsewhere, count an exception).
var errQueryFailed = errors.New("transport: server query error")

// contextCaused maps an I/O error back to the context error when the context
// is what killed the I/O. The connection deadline is set to the context
// deadline, so the socket timer can fire a moment before the context's own
// timer does; a timeout at or past the deadline is budget expiry, not a
// transport fault.
func contextCaused(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
			return context.DeadlineExceeded
		}
	}
	return nil
}

func (c *TCPClient) roundTrip(ctx context.Context, conn net.Conn, req *QueryRequest) (*QueryResponse, error) {
	// A context watchdog converts cancellation into a connection deadline,
	// unblocking any in-flight read/write immediately.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0))
		case <-watchDone:
		}
	}()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}

	payload, err := gobEncode(req)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, FrameQuery, payload); err != nil {
		if ctxErr := contextCaused(ctx, err); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("transport: send query: %w", err)
	}
	merger := NewStreamMerger()
	for {
		frame, err := ReadFrame(conn)
		if err != nil {
			if ctxErr := contextCaused(ctx, err); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("transport: read response: %w", err)
		}
		switch frame.Type {
		case FrameSegment:
			sf, err := DecodeSegmentFrame(frame.Payload)
			if err != nil {
				return nil, err
			}
			if err := merger.Add(sf); err != nil {
				return nil, err
			}
		case FrameFinal:
			ff, err := DecodeFinalFrame(frame.Payload)
			if err != nil {
				return nil, err
			}
			result, err := merger.Finish(ff)
			if err != nil {
				return nil, err
			}
			// The connection is clean (frames balanced): reusable.
			conn.SetDeadline(time.Time{})
			return &QueryResponse{Result: result, Exceptions: ff.Exceptions, Trace: ff.Trace}, nil
		case FrameError:
			ef, err := DecodeErrorFrame(frame.Payload)
			if err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: %s", errQueryFailed, ef.Message)
		default:
			return nil, fmt.Errorf("transport: unexpected frame type %d in query response", frame.Type)
		}
	}
}

// NewTCPRegistry resolves instance names to TCP clients via resolve
// (instance → dial address), sharing one pool across destinations. Unknown
// instances report not-found, and the broker routes around them.
func NewTCPRegistry(resolve func(instance string) (string, bool), pool *Pool) Registry {
	return RegistryFunc(func(instance string) (ServerClient, bool) {
		addr, ok := resolve(instance)
		if !ok {
			return nil, false
		}
		return NewTCPClient(addr, pool), true
	})
}

// TCPControllerClient speaks the completion-protocol frames to a
// controller's data-plane listener.
type TCPControllerClient struct {
	Addr string
	Pool *Pool
}

// NewTCPControllerClient returns a completion-protocol client.
func NewTCPControllerClient(addr string, pool *Pool) *TCPControllerClient {
	return &TCPControllerClient{Addr: addr, Pool: pool}
}

func (c *TCPControllerClient) completionCall(ctx context.Context, reqType, respType uint8, req, resp any) error {
	conn, err := c.Pool.Get(ctx, c.Addr)
	if err != nil {
		return err
	}
	if err := c.doCall(ctx, conn, reqType, respType, req, resp); err != nil {
		c.Pool.Discard(conn)
		return err
	}
	c.Pool.Put(c.Addr, conn)
	return nil
}

func (c *TCPControllerClient) doCall(ctx context.Context, conn net.Conn, reqType, respType uint8, req, resp any) error {
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}
	payload, err := gobEncode(req)
	if err != nil {
		return err
	}
	if err := WriteFrame(conn, reqType, payload); err != nil {
		return err
	}
	frame, err := ReadFrame(conn)
	if err != nil {
		return err
	}
	switch frame.Type {
	case respType:
		if err := gobDecode(frame.Payload, resp); err != nil {
			return err
		}
		conn.SetDeadline(time.Time{})
		return nil
	case FrameError:
		ef, err := DecodeErrorFrame(frame.Payload)
		if err != nil {
			return err
		}
		return fmt.Errorf("%w: %s", errQueryFailed, ef.Message)
	default:
		return fmt.Errorf("transport: unexpected frame type %d in completion response", frame.Type)
	}
}

// SegmentConsumed implements ControllerClient.
func (c *TCPControllerClient) SegmentConsumed(ctx context.Context, req *SegmentConsumedRequest) (*SegmentConsumedResponse, error) {
	var resp SegmentConsumedResponse
	if err := c.completionCall(ctx, FrameConsumed, FrameConsumedResp, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CommitSegment implements ControllerClient.
func (c *TCPControllerClient) CommitSegment(ctx context.Context, req *SegmentCommitRequest) (*SegmentCommitResponse, error) {
	var resp SegmentCommitResponse
	if err := c.completionCall(ctx, FrameCommit, FrameCommitResp, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

var (
	_ ServerClient     = (*TCPClient)(nil)
	_ ControllerClient = (*TCPControllerClient)(nil)
)
