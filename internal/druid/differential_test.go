package druid

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pinot/internal/query"
	"pinot/internal/segment"
	"pinot/internal/startree"
)

// diffCorpus builds a multi-segment dataset shared by both engines. The
// Pinot side additionally carries star-trees so the two engines genuinely
// take different plans (sorted/scan/star-tree vs forced bitmaps) over the
// same rows.
func diffCorpus(t *testing.T) (sch *segment.Schema, pinotSegs, druidSegs []query.IndexedSegment) {
	t.Helper()
	sch, err := segment.NewSchema("ev", []segment.FieldSpec{
		{Name: "country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "device", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "memberId", Type: segment.TypeLong, Kind: segment.Dimension, SingleValue: true},
		{Name: "clicks", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	countries := []string{"us", "de", "fr", "jp", "br"}
	devices := []string{"mobile", "desktop", "tablet"}
	idx := IndexConfig(sch)
	idx.SortColumn = "country" // Pinot's sorted fast path; Druid disables it
	rnd := rand.New(rand.NewSource(99))
	for s := 0; s < 4; s++ {
		b, err := segment.NewBuilder("ev", fmt.Sprintf("ev_%d", s), sch, idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			err := b.Add(segment.Row{
				countries[rnd.Intn(len(countries))],
				devices[rnd.Intn(len(devices))],
				int64(rnd.Intn(40)),
				int64(rnd.Intn(1000)),
				int64(100 + rnd.Intn(10)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		seg, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		tree, err := startree.Build(seg, startree.Config{
			DimensionSplitOrder: []string{"country", "device"},
			Metrics:             []string{"clicks"},
		})
		if err != nil {
			t.Fatal(err)
		}
		pinotSegs = append(pinotSegs, query.IndexedSegment{Seg: seg, Tree: tree})
		druidSegs = append(druidSegs, query.IndexedSegment{Seg: seg})
	}
	return sch, pinotSegs, druidSegs
}

// queryGen emits random valid PQL from a seeded generator.
type queryGen struct {
	rnd *rand.Rand
}

func (g *queryGen) pick(ss []string) string { return ss[g.rnd.Intn(len(ss))] }

func (g *queryGen) predicate() string {
	switch g.rnd.Intn(8) {
	case 0:
		return fmt.Sprintf("country = '%s'", g.pick([]string{"us", "de", "fr", "jp", "br", "nowhere"}))
	case 1:
		return fmt.Sprintf("country IN ('%s', '%s')", g.pick([]string{"us", "de"}), g.pick([]string{"fr", "jp", "br"}))
	case 2:
		return fmt.Sprintf("device = '%s'", g.pick([]string{"mobile", "desktop", "tablet"}))
	case 3:
		return fmt.Sprintf("NOT device = '%s'", g.pick([]string{"mobile", "desktop"}))
	case 4:
		lo := g.rnd.Intn(30)
		return fmt.Sprintf("memberId BETWEEN %d AND %d", lo, lo+g.rnd.Intn(10))
	case 5:
		return fmt.Sprintf("memberId %s %d", g.pick([]string{"=", ">", "<", ">=", "<="}), g.rnd.Intn(40))
	case 6:
		return fmt.Sprintf("day %s %d", g.pick([]string{">", ">=", "<", "<="}), 100+g.rnd.Intn(10))
	default:
		return fmt.Sprintf("(country = '%s' OR device = '%s')",
			g.pick([]string{"us", "de", "fr"}), g.pick([]string{"mobile", "tablet"}))
	}
}

func (g *queryGen) where() string {
	n := g.rnd.Intn(3)
	if n == 0 {
		return ""
	}
	preds := make([]string, n)
	for i := range preds {
		preds[i] = g.predicate()
	}
	return " WHERE " + strings.Join(preds, " AND ")
}

func (g *queryGen) aggList() string {
	all := []string{
		"count(*)", "sum(clicks)", "min(clicks)", "max(clicks)",
		"avg(clicks)", "distinctcount(memberId)", "percentile90(clicks)",
	}
	n := 1 + g.rnd.Intn(3)
	g.rnd.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return strings.Join(all[:n], ", ")
}

// next returns a query and whether its row order is fully specified (exact
// compare) or not (compare as a sorted multiset).
func (g *queryGen) next() (pql string, ordered bool) {
	switch g.rnd.Intn(10) {
	case 0, 1: // selection
		cols := "country, device, memberId, clicks"
		if g.rnd.Intn(2) == 0 {
			return fmt.Sprintf("SELECT %s FROM ev%s ORDER BY clicks DESC, memberId LIMIT %d",
				cols, g.where(), 5+g.rnd.Intn(20)), false
		}
		return fmt.Sprintf("SELECT %s FROM ev%s LIMIT %d", cols, g.where(), 5+g.rnd.Intn(20)), false
	case 2, 3, 4: // group-by
		groups := []string{"country", "device", "day", "country, device"}
		return fmt.Sprintf("SELECT %s FROM ev%s GROUP BY %s TOP %d",
			g.aggList(), g.where(), g.pick(groups), 5+g.rnd.Intn(15)), true
	default: // plain aggregation
		return fmt.Sprintf("SELECT %s FROM ev%s", g.aggList(), g.where()), true
	}
}

func canonicalRows(rows [][]any, ordered bool) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	if !ordered {
		sort.Strings(out)
	}
	return strings.Join(out, "\n")
}

// TestDifferentialPinotVsDruid runs 200 seeded random PQL queries through
// the Pinot engine (sorted/scan/star-tree plans) and the Druid baseline
// (forced bitmap plans) over the same segments and requires identical
// results. Any divergence is an execution bug in one of the engines.
func TestDifferentialPinotVsDruid(t *testing.T) {
	sch, pinotSegs, druidSegs := diffCorpus(t)
	druidEng := NewEngine(sch, druidSegs)
	gen := &queryGen{rnd: rand.New(rand.NewSource(7))}

	for i := 0; i < 200; i++ {
		q, ordered := gen.next()
		pres, err := query.Run(context.Background(), q, pinotSegs, sch, query.Options{})
		if err != nil {
			t.Fatalf("query %d pinot %q: %v", i, q, err)
		}
		dres, err := druidEng.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d druid %q: %v", i, q, err)
		}
		if fmt.Sprint(pres.Columns) != fmt.Sprint(dres.Columns) {
			t.Fatalf("query %d %q: columns %v vs %v", i, q, pres.Columns, dres.Columns)
		}
		if got, want := canonicalRows(dres.Rows, ordered), canonicalRows(pres.Rows, ordered); got != want {
			t.Fatalf("query %d %q:\ndruid:\n%s\npinot:\n%s", i, q, got, want)
		}
		if dres.Stats.MetadataOnlySegments != 0 || dres.Stats.StarTreeSegments != 0 {
			t.Fatalf("query %d %q: druid used pinot-only plans: %+v", i, q, dres.Stats)
		}
	}
}
