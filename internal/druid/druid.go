// Package druid implements the Druid-style baseline the paper compares
// against (sections 2 and 6). It shares Pinot's storage substrate but
// follows Druid's execution model, capturing the three differences the
// paper attributes the performance gaps to:
//
//  1. Every dimension column carries a bitmap inverted index ("in Druid,
//     all dimension columns have an associated inverted index; as not all
//     dimensions are used in filtering predicates, this leads to a larger
//     on-disk size for Druid over Pinot").
//  2. Filters always evaluate through those bitmaps — no sorted-column
//     contiguous-range fast path and no iterator-scan fallback.
//  3. No star-tree index and no metadata-only plans.
//
// Data is not rolled up at ingestion so both engines answer over identical
// rows and results can be cross-checked exactly.
package druid

import (
	"context"

	"pinot/internal/query"
	"pinot/internal/segment"
)

// Options returns the query-engine options that model Druid's execution.
func Options() query.Options {
	return query.Options{
		ForceBitmap:          true,
		DisableSorted:        true,
		DisableStarTree:      true,
		DisableMetadataPlans: true,
		// Zone-map pruning is Pinot-side machinery; the baseline always
		// plans every segment.
		DisablePruning: true,
	}
}

// IndexConfig returns Druid's physical layout for a schema: inverted
// indexes on every dimension (including the time column), no sort column.
func IndexConfig(schema *segment.Schema) segment.IndexConfig {
	return segment.IndexConfig{InvertedColumns: schema.DimensionNames()}
}

// Engine executes queries Druid-style over a fixed segment set. It is the
// single-process "historical" used in the benchmark harness.
type Engine struct {
	segments []query.IndexedSegment
	engine   *query.Engine
	schema   *segment.Schema
}

// NewEngine builds a Druid engine over segments (which should have been
// built with IndexConfig for a faithful footprint).
func NewEngine(schema *segment.Schema, segments []query.IndexedSegment) *Engine {
	stripped := make([]query.IndexedSegment, len(segments))
	for i, is := range segments {
		stripped[i] = query.IndexedSegment{Seg: is.Seg} // no star trees in Druid
	}
	return &Engine{
		segments: stripped,
		engine:   &query.Engine{Options: Options()},
		schema:   schema,
	}
}

// Execute parses and runs PQL with Druid's execution model.
func (e *Engine) Execute(ctx context.Context, pql string) (*query.Result, error) {
	return query.Run(ctx, pql, e.segments, e.schema, Options())
}
