package druid

import (
	"context"
	"fmt"
	"testing"

	"pinot/internal/qctx"
	"pinot/internal/query"
	"pinot/internal/segment"
)

func buildSegments(t *testing.T) (*segment.Schema, []query.IndexedSegment) {
	t.Helper()
	sch, err := segment.NewSchema("ev", []segment.FieldSpec{
		{Name: "country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "device", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "clicks", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
		{Name: "day", Type: segment.TypeLong, Kind: segment.Time, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := IndexConfig(sch)
	// Druid indexes every non-metric column, time included.
	if len(idx.InvertedColumns) != 3 || idx.SortColumn != "" {
		t.Fatalf("druid index config = %+v", idx)
	}
	b, err := segment.NewBuilder("ev", "ev_0", sch, idx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		err := b.Add(segment.Row{
			[]string{"us", "de", "fr"}[i%3],
			[]string{"mobile", "desktop"}[i%2],
			int64(i), int64(100 + i%4),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch, []query.IndexedSegment{{Seg: seg}}
}

func TestDruidEngineAnswersMatchPinot(t *testing.T) {
	sch, segs := buildSegments(t)
	eng := NewEngine(sch, segs)
	queries := []string{
		"SELECT count(*) FROM ev",
		"SELECT sum(clicks) FROM ev WHERE country = 'us'",
		"SELECT count(*) FROM ev WHERE country = 'us' AND device = 'mobile' GROUP BY day TOP 10",
		"SELECT count(*) FROM ev WHERE day >= 102",
	}
	for _, q := range queries {
		dres, err := eng.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		pres, err := query.Run(context.Background(), q, segs, sch, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(dres.Rows) != fmt.Sprint(pres.Rows) {
			t.Fatalf("%s: druid %v vs pinot %v", q, dres.Rows, pres.Rows)
		}
		// Druid never takes the metadata shortcut or the star tree.
		if dres.Stats.MetadataOnlySegments != 0 || dres.Stats.StarTreeSegments != 0 {
			t.Fatalf("%s: druid used pinot-only plans: %+v", q, dres.Stats)
		}
	}
}

// TestDruidResponseCarriesLifecycleFields: the baseline engine goes through
// the same query lifecycle as Pinot, so its responses carry a query ID, a
// phase trace and scan accounting too — apples-to-apples observability.
func TestDruidResponseCarriesLifecycleFields(t *testing.T) {
	sch, segs := buildSegments(t)
	eng := NewEngine(sch, segs)
	res, err := eng.Execute(context.Background(), "SELECT sum(clicks) FROM ev WHERE country = 'us'")
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryID == "" {
		t.Fatal("missing query ID")
	}
	for _, p := range []qctx.Phase{qctx.PhaseParse, qctx.PhaseExecute, qctx.PhaseReduce} {
		if _, ok := res.Trace[p]; !ok {
			t.Fatalf("trace missing phase %q: %v", p, res.Trace)
		}
	}
	if res.Stats.NumDocsScanned == 0 {
		t.Fatalf("scan accounting missing: %+v", res.Stats)
	}
}

func TestDruidOptionsForceBitmapPath(t *testing.T) {
	opts := Options()
	if !opts.ForceBitmap || !opts.DisableSorted || !opts.DisableStarTree || !opts.DisableMetadataPlans {
		t.Fatalf("options = %+v", opts)
	}
}
