package startree

import (
	"math/rand"
	"testing"

	"pinot/internal/segment"
)

// buildSegment creates a test segment mirroring the paper's Figure 9/10
// example: Browser, Country, Locale dimensions and an Impressions metric.
func buildSegment(t testing.TB, rows [][4]any) *segment.Segment {
	t.Helper()
	sch, err := segment.NewSchema("imps", []segment.FieldSpec{
		{Name: "Browser", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "Country", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "Locale", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "Impressions", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := segment.NewBuilder("imps", "imps_0", sch, segment.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.Add(segment.Row{r[0], r[1], r[2], r[3]}); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func sampleRows() [][4]any {
	return [][4]any{
		{"firefox", "us", "en", int64(10)},
		{"firefox", "us", "en", int64(5)},
		{"firefox", "de", "de", int64(7)},
		{"safari", "us", "en", int64(3)},
		{"safari", "fr", "fr", int64(2)},
		{"chrome", "us", "en", int64(20)},
		{"chrome", "de", "de", int64(11)},
		{"chrome", "fr", "en", int64(1)},
	}
}

func buildTree(t testing.TB, seg *segment.Segment, maxLeaf int) *Tree {
	t.Helper()
	tree, err := Build(seg, Config{
		DimensionSplitOrder: []string{"Browser", "Country", "Locale"},
		Metrics:             []string{"Impressions"},
		MaxLeafRecords:      maxLeaf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// matcherFor builds an IDMatcher accepting the given values of a column.
func matcherFor(seg *segment.Segment, col string, values ...string) IDMatcher {
	ids := map[int32]bool{}
	c := seg.Column(col)
	for _, v := range values {
		if id, ok := c.IndexOf(v); ok {
			ids[int32(id)] = true
		}
	}
	return func(id int32) bool { return ids[id] }
}

// scanSum runs a Scan and totals the Impressions sums of matched records.
func scanSum(tree *Tree, matchers map[int]IDMatcher, groupDims []int) (float64, int) {
	var total float64
	scanned := tree.Scan(matchers, groupDims, func(rec int) {
		total += tree.Sum(rec, 0)
	})
	return total, scanned
}

func TestFigure9Query(t *testing.T) {
	// select sum(Impressions) from Table where Browser = 'firefox'
	seg := buildSegment(t, sampleRows())
	tree := buildTree(t, seg, 1)
	matchers := map[int]IDMatcher{0: matcherFor(seg, "Browser", "firefox")}
	got, scanned := scanSum(tree, matchers, nil)
	if got != 22 {
		t.Fatalf("sum = %v, want 22", got)
	}
	// With maxLeaf=1 the firefox subtree resolves country and locale via
	// star paths: far fewer records than the 3 raw firefox rows.
	if scanned > 3 {
		t.Fatalf("scanned %d pre-aggregated records, want <= 3", scanned)
	}
}

func TestFigure10Query(t *testing.T) {
	// select sum(Impressions) where Browser = 'firefox' or Browser =
	// 'safari' group by Country.
	seg := buildSegment(t, sampleRows())
	tree := buildTree(t, seg, 1)
	matchers := map[int]IDMatcher{0: matcherFor(seg, "Browser", "firefox", "safari")}
	groups := map[int32]float64{}
	countryDim := tree.DimIndex("Country")
	tree.Scan(matchers, []int{countryDim}, func(rec int) {
		groups[tree.DimValue(rec, countryDim)] += tree.Sum(rec, 0)
	})
	country := seg.Column("Country")
	want := map[string]float64{"us": 18, "de": 7, "fr": 2}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v", groups)
	}
	for id, sum := range groups {
		name := country.Value(int(id)).(string)
		if want[name] != sum {
			t.Fatalf("group %s = %v, want %v", name, sum, want[name])
		}
	}
}

func TestNoFilterTotal(t *testing.T) {
	seg := buildSegment(t, sampleRows())
	tree := buildTree(t, seg, 1)
	got, scanned := scanSum(tree, nil, nil)
	if got != 59 {
		t.Fatalf("total sum = %v, want 59", got)
	}
	// All star path: a single record should answer the query.
	if scanned != 1 {
		t.Fatalf("scanned = %d, want 1", scanned)
	}
}

func TestGroupByWithoutFilter(t *testing.T) {
	seg := buildSegment(t, sampleRows())
	tree := buildTree(t, seg, 1)
	browserDim := tree.DimIndex("Browser")
	groups := map[string]float64{}
	counts := map[string]int64{}
	tree.Scan(nil, []int{browserDim}, func(rec int) {
		name := seg.Column("Browser").Value(int(tree.DimValue(rec, browserDim))).(string)
		groups[name] += tree.Sum(rec, 0)
		counts[name] += tree.Count(rec)
	})
	if groups["firefox"] != 22 || groups["safari"] != 5 || groups["chrome"] != 32 {
		t.Fatalf("groups = %v", groups)
	}
	if counts["firefox"] != 3 || counts["safari"] != 2 || counts["chrome"] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestLargeLeafFallsBackToRecordScan(t *testing.T) {
	// With a huge maxLeaf the root itself is a leaf; predicates are
	// applied per record and results must still be exact.
	seg := buildSegment(t, sampleRows())
	tree := buildTree(t, seg, 1000000)
	matchers := map[int]IDMatcher{1: matcherFor(seg, "Country", "us")}
	got, scanned := scanSum(tree, matchers, nil)
	if got != 38 {
		t.Fatalf("sum = %v, want 38", got)
	}
	if scanned != tree.NumRecords() {
		t.Fatalf("scanned %d, want all %d", scanned, tree.NumRecords())
	}
}

func TestPredicateOnLaterDimension(t *testing.T) {
	// Filter on Country (dim 1) only: traversal must not take the star
	// path for Country.
	seg := buildSegment(t, sampleRows())
	tree := buildTree(t, seg, 1)
	matchers := map[int]IDMatcher{1: matcherFor(seg, "Country", "de")}
	got, _ := scanSum(tree, matchers, nil)
	if got != 18 {
		t.Fatalf("sum = %v, want 18", got)
	}
}

func TestBuildValidation(t *testing.T) {
	seg := buildSegment(t, sampleRows())
	if _, err := Build(seg, Config{}); err == nil {
		t.Fatal("empty split order accepted")
	}
	if _, err := Build(seg, Config{DimensionSplitOrder: []string{"nope"}}); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if _, err := Build(seg, Config{DimensionSplitOrder: []string{"Impressions"}}); err == nil {
		t.Fatal("metric as split dimension accepted")
	}
	if _, err := Build(seg, Config{DimensionSplitOrder: []string{"Browser"}, Metrics: []string{"nope"}}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := Build(seg, Config{DimensionSplitOrder: []string{"Browser"}, Metrics: []string{"Country"}}); err == nil {
		t.Fatal("dimension as metric accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	seg := buildSegment(t, sampleRows())
	tree := buildTree(t, seg, 1)
	blob, err := tree.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != tree.NumRecords() || got.NumRawDocs() != tree.NumRawDocs() {
		t.Fatalf("record counts differ: %d/%d vs %d/%d", got.NumRecords(), got.NumRawDocs(), tree.NumRecords(), tree.NumRawDocs())
	}
	// Same query answers.
	m := map[int]IDMatcher{0: matcherFor(seg, "Browser", "chrome")}
	want, _ := scanSum(tree, m, nil)
	have, _ := scanSum(got, m, nil)
	if want != have {
		t.Fatalf("round-trip query mismatch: %v vs %v", have, want)
	}
	if _, err := Unmarshal([]byte("bogus")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestRandomizedAgainstRawScan cross-checks star-tree answers against a
// brute-force scan over many random datasets and queries.
func TestRandomizedAgainstRawScan(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	browsers := []string{"chrome", "firefox", "safari", "edge"}
	countries := []string{"us", "de", "fr", "in", "br", "jp"}
	locales := []string{"en", "de", "fr", "pt"}
	for trial := 0; trial < 10; trial++ {
		n := 200 + r.Intn(400)
		rows := make([][4]any, n)
		for i := range rows {
			rows[i] = [4]any{
				browsers[r.Intn(len(browsers))],
				countries[r.Intn(len(countries))],
				locales[r.Intn(len(locales))],
				int64(r.Intn(100)),
			}
		}
		seg := buildSegment(t, rows)
		for _, maxLeaf := range []int{1, 10, 100000} {
			tree := buildTree(t, seg, maxLeaf)
			// Query: filter by random browser, group by country.
			browser := browsers[r.Intn(len(browsers))]
			matchers := map[int]IDMatcher{0: matcherFor(seg, "Browser", browser)}
			countryDim := tree.DimIndex("Country")
			groups := map[string]float64{}
			gcounts := map[string]int64{}
			tree.Scan(matchers, []int{countryDim}, func(rec int) {
				name := seg.Column("Country").Value(int(tree.DimValue(rec, countryDim))).(string)
				groups[name] += tree.Sum(rec, 0)
				gcounts[name] += tree.Count(rec)
			})
			// Brute force.
			wantSum := map[string]float64{}
			wantCount := map[string]int64{}
			for _, row := range rows {
				if row[0] == browser {
					c := row[1].(string)
					wantSum[c] += float64(row[3].(int64))
					wantCount[c]++
				}
			}
			if len(groups) != len(wantSum) {
				t.Fatalf("trial %d maxLeaf %d: group count %d, want %d", trial, maxLeaf, len(groups), len(wantSum))
			}
			for c, s := range wantSum {
				if groups[c] != s {
					t.Fatalf("trial %d maxLeaf %d: group %s sum %v, want %v", trial, maxLeaf, c, groups[c], s)
				}
				if gcounts[c] != wantCount[c] {
					t.Fatalf("trial %d maxLeaf %d: group %s count %v, want %v", trial, maxLeaf, c, gcounts[c], wantCount[c])
				}
			}
		}
	}
}

// TestScanRatio verifies the Figure 13 property: with a reasonable tree,
// filtered aggregations touch far fewer pre-aggregated records than raw
// docs.
func TestScanRatio(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var rows [][4]any
	for i := 0; i < 5000; i++ {
		rows = append(rows, [4]any{
			[]string{"chrome", "firefox", "safari"}[r.Intn(3)],
			[]string{"us", "de", "fr", "in", "br"}[r.Intn(5)],
			[]string{"en", "de", "fr"}[r.Intn(3)],
			int64(r.Intn(10)),
		})
	}
	seg := buildSegment(t, rows)
	tree := buildTree(t, seg, 100)
	matchers := map[int]IDMatcher{0: matcherFor(seg, "Browser", "firefox")}
	_, scanned := scanSum(tree, matchers, nil)
	ratio := float64(scanned) / float64(tree.NumRawDocs())
	if ratio > 0.05 {
		t.Fatalf("scan ratio %.3f too high (scanned %d of %d raw)", ratio, scanned, tree.NumRawDocs())
	}
}

func BenchmarkStarTreeScan(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var rows [][4]any
	for i := 0; i < 20000; i++ {
		rows = append(rows, [4]any{
			[]string{"chrome", "firefox", "safari"}[r.Intn(3)],
			[]string{"us", "de", "fr", "in", "br"}[r.Intn(5)],
			[]string{"en", "de", "fr"}[r.Intn(3)],
			int64(r.Intn(10)),
		})
	}
	seg := buildSegment(b, rows)
	tree := buildTree(b, seg, 100)
	matchers := map[int]IDMatcher{0: matcherFor(seg, "Browser", "firefox")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanSum(tree, matchers, nil)
	}
}
