package startree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const treeMagic = uint32(0x53_54_52_31) // "STR1"

// Marshal serializes the tree for storage alongside a segment.
func (t *Tree) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) {
		_ = binary.Write(&buf, binary.LittleEndian, v)
	}
	writeString := func(s string) {
		w(uint16(len(s)))
		buf.WriteString(s)
	}
	w(treeMagic)
	w(uint32(t.maxLeaf))
	w(uint64(t.numRawDocs))
	w(uint16(len(t.splitOrder)))
	for _, d := range t.splitOrder {
		writeString(d)
	}
	w(uint16(len(t.metrics)))
	for _, m := range t.metrics {
		writeString(m)
	}
	w(uint32(len(t.counts)))
	for _, col := range t.dims {
		w(col)
	}
	for _, col := range t.sums {
		w(col)
	}
	w(t.counts)
	// Nodes, preorder.
	var writeNode func(n *node)
	writeNode = func(n *node) {
		w(n.dictID)
		w(n.childDim)
		w(n.start)
		w(n.end)
		w(uint32(len(n.children)))
		hasStar := uint8(0)
		if n.star != nil {
			hasStar = 1
		}
		w(hasStar)
		for _, child := range n.children {
			writeNode(child)
		}
		if n.star != nil {
			writeNode(n.star)
		}
	}
	writeNode(t.root)
	return buf.Bytes(), nil
}

// Unmarshal reconstructs a tree serialized with Marshal.
func Unmarshal(data []byte) (*Tree, error) {
	r := bytes.NewReader(data)
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	readString := func() (string, error) {
		var n uint16
		if err := read(&n); err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	var magic uint32
	if err := read(&magic); err != nil {
		return nil, err
	}
	if magic != treeMagic {
		return nil, errors.New("startree: bad magic")
	}
	t := &Tree{}
	var maxLeaf uint32
	var rawDocs uint64
	if err := read(&maxLeaf); err != nil {
		return nil, err
	}
	if err := read(&rawDocs); err != nil {
		return nil, err
	}
	t.maxLeaf = int(maxLeaf)
	t.numRawDocs = int(rawDocs)
	var nd, nm uint16
	if err := read(&nd); err != nil {
		return nil, err
	}
	for i := 0; i < int(nd); i++ {
		s, err := readString()
		if err != nil {
			return nil, err
		}
		t.splitOrder = append(t.splitOrder, s)
	}
	if err := read(&nm); err != nil {
		return nil, err
	}
	for i := 0; i < int(nm); i++ {
		s, err := readString()
		if err != nil {
			return nil, err
		}
		t.metrics = append(t.metrics, s)
	}
	var nrec uint32
	if err := read(&nrec); err != nil {
		return nil, err
	}
	t.dims = make([][]int32, nd)
	for d := range t.dims {
		t.dims[d] = make([]int32, nrec)
		if err := read(t.dims[d]); err != nil {
			return nil, err
		}
	}
	t.sums = make([][]float64, nm)
	for m := range t.sums {
		t.sums[m] = make([]float64, nrec)
		if err := read(t.sums[m]); err != nil {
			return nil, err
		}
	}
	t.counts = make([]int64, nrec)
	if err := read(t.counts); err != nil {
		return nil, err
	}
	var readNode func() (*node, error)
	readNode = func() (*node, error) {
		n := &node{}
		if err := read(&n.dictID); err != nil {
			return nil, err
		}
		if err := read(&n.childDim); err != nil {
			return nil, err
		}
		if err := read(&n.start); err != nil {
			return nil, err
		}
		if err := read(&n.end); err != nil {
			return nil, err
		}
		var nChildren uint32
		var hasStar uint8
		if err := read(&nChildren); err != nil {
			return nil, err
		}
		if err := read(&hasStar); err != nil {
			return nil, err
		}
		if nChildren > nrec+1 {
			return nil, fmt.Errorf("startree: corrupt node with %d children", nChildren)
		}
		if nChildren > 0 {
			n.children = make(map[int32]*node, nChildren)
			for i := uint32(0); i < nChildren; i++ {
				child, err := readNode()
				if err != nil {
					return nil, err
				}
				n.children[child.dictID] = child
			}
		}
		if hasStar == 1 {
			star, err := readNode()
			if err != nil {
				return nil, err
			}
			n.star = star
		}
		return n, nil
	}
	root, err := readNode()
	if err != nil {
		return nil, err
	}
	t.root = root
	if r.Len() != 0 {
		return nil, fmt.Errorf("startree: %d trailing bytes", r.Len())
	}
	return t, nil
}
