// Package startree implements the star-tree index of paper section 4.3
// (after Xin et al.'s star-cubing): a pruned hierarchy of pre-aggregated
// records. Each tree level splits on one dimension of the configured split
// order; every split also materializes a star node that aggregates across
// that dimension. Queries whose filter and group-by columns are contained in
// the split order navigate the tree and touch far fewer records than a scan
// of the raw data.
package startree

import (
	"fmt"
	"sort"

	"pinot/internal/segment"
)

// StarID is the dictionary id used for the collapsed ("star") dimension
// value in pre-aggregated records.
const StarID int32 = -1

// DefaultMaxLeafRecords bounds leaf size before a further split happens.
const DefaultMaxLeafRecords = 10000

// Config selects the shape of a star-tree.
type Config struct {
	// DimensionSplitOrder lists the dimensions the tree splits on, most
	// selective / most queried first. All must be single-value
	// dictionary-encoded columns.
	DimensionSplitOrder []string
	// Metrics are the metric columns pre-aggregated as SUM (COUNT is
	// always maintained). AVG derives from SUM/COUNT at query time.
	Metrics []string
	// MaxLeafRecords stops splitting when a node covers at most this
	// many records. Zero means DefaultMaxLeafRecords.
	MaxLeafRecords int
}

// node is one tree node covering the pre-aggregated record range
// [Start, End). childDim == -1 marks a leaf.
type node struct {
	dictID   int32 // value of the parent's split dimension; StarID for star nodes
	childDim int32 // split-order index the children divide on; -1 for leaves
	start    int32
	end      int32
	children map[int32]*node
	star     *node
}

// Tree is a built star-tree: the pre-aggregated record table plus the node
// hierarchy over it.
type Tree struct {
	splitOrder []string
	metrics    []string
	maxLeaf    int
	root       *node
	// Record storage, column-major.
	dims   [][]int32   // [dim][record]
	sums   [][]float64 // [metric][record]
	counts []int64
	// numRawDocs is the segment document count the tree was built from,
	// the denominator of the Figure 13 ratio.
	numRawDocs int
}

// SplitOrder returns the dimension split order.
func (t *Tree) SplitOrder() []string { return t.splitOrder }

// Metrics returns the pre-aggregated metric columns.
func (t *Tree) Metrics() []string { return t.metrics }

// NumRecords returns the number of pre-aggregated records (including star
// records).
func (t *Tree) NumRecords() int { return len(t.counts) }

// NumRawDocs returns the raw document count the tree was built over.
func (t *Tree) NumRawDocs() int { return t.numRawDocs }

// DimValue returns the dict id of a split dimension in a record (StarID for
// collapsed dimensions).
func (t *Tree) DimValue(rec, dim int) int32 { return t.dims[dim][rec] }

// Sum returns the pre-aggregated SUM of a metric in a record.
func (t *Tree) Sum(rec, metric int) float64 { return t.sums[metric][rec] }

// Count returns the pre-aggregated COUNT of a record.
func (t *Tree) Count(rec int) int64 { return t.counts[rec] }

// DimIndex returns a column's index in the split order, or -1.
func (t *Tree) DimIndex(name string) int {
	for i, d := range t.splitOrder {
		if d == name {
			return i
		}
	}
	return -1
}

// MetricIndex returns a metric column's index in the tree, or -1.
func (t *Tree) MetricIndex(name string) int {
	for i, m := range t.metrics {
		if m == name {
			return i
		}
	}
	return -1
}

// builder holds mutable build state.
type builder struct {
	tree *Tree
	nd   int // number of split dims
	nm   int // number of metrics
}

// Build constructs a star-tree over a segment.
func Build(seg segment.Reader, cfg Config) (*Tree, error) {
	if len(cfg.DimensionSplitOrder) == 0 {
		return nil, fmt.Errorf("startree: empty dimension split order")
	}
	maxLeaf := cfg.MaxLeafRecords
	if maxLeaf <= 0 {
		maxLeaf = DefaultMaxLeafRecords
	}
	nd, nm := len(cfg.DimensionSplitOrder), len(cfg.Metrics)
	dimCols := make([]segment.ColumnReader, nd)
	for i, name := range cfg.DimensionSplitOrder {
		c := seg.Column(name)
		if c == nil {
			return nil, fmt.Errorf("startree: segment has no column %q", name)
		}
		if !c.HasDictionary() || !c.Spec().SingleValue {
			return nil, fmt.Errorf("startree: column %q must be a single-value dictionary column", name)
		}
		dimCols[i] = c
	}
	metricCols := make([]segment.ColumnReader, nm)
	for i, name := range cfg.Metrics {
		c := seg.Column(name)
		if c == nil {
			return nil, fmt.Errorf("startree: segment has no metric %q", name)
		}
		if c.Spec().Kind != segment.Metric {
			return nil, fmt.Errorf("startree: column %q is not a metric", name)
		}
		metricCols[i] = c
	}

	n := seg.NumDocs()
	t := &Tree{
		splitOrder: append([]string(nil), cfg.DimensionSplitOrder...),
		metrics:    append([]string(nil), cfg.Metrics...),
		maxLeaf:    maxLeaf,
		numRawDocs: n,
		dims:       make([][]int32, nd),
		sums:       make([][]float64, nm),
	}
	b := &builder{tree: t, nd: nd, nm: nm}

	// Base records: raw docs aggregated by split-dimension tuple.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	docDims := make([][]int32, nd)
	for d := 0; d < nd; d++ {
		col := dimCols[d]
		ids := make([]int32, n)
		for doc := 0; doc < n; doc++ {
			ids[doc] = int32(col.DictID(doc))
		}
		docDims[d] = ids
	}
	sort.Slice(order, func(a, c int) bool {
		i, j := order[a], order[c]
		for d := 0; d < nd; d++ {
			if docDims[d][i] != docDims[d][j] {
				return docDims[d][i] < docDims[d][j]
			}
		}
		return false
	})
	for d := 0; d < nd; d++ {
		t.dims[d] = make([]int32, 0, n/2)
	}
	for m := 0; m < nm; m++ {
		t.sums[m] = make([]float64, 0, n/2)
	}
	sameKey := func(i, j int) bool {
		for d := 0; d < nd; d++ {
			if docDims[d][i] != docDims[d][j] {
				return false
			}
		}
		return true
	}
	for i := 0; i < n; {
		j := i
		for j < n && sameKey(order[i], order[j]) {
			j++
		}
		for d := 0; d < nd; d++ {
			t.dims[d] = append(t.dims[d], docDims[d][order[i]])
		}
		for m := 0; m < nm; m++ {
			var sum float64
			for k := i; k < j; k++ {
				sum += metricCols[m].Double(order[k])
			}
			t.sums[m] = append(t.sums[m], sum)
		}
		t.counts = append(t.counts, int64(j-i))
		i = j
	}

	t.root = b.split(0, int32(len(t.counts)), 0)
	return t, nil
}

// sortRange re-sorts the record range [start, end) lexicographically by
// dimensions [level..nd).
func (b *builder) sortRange(start, end int32, level int) {
	t := b.tree
	idx := make([]int32, end-start)
	for i := range idx {
		idx[i] = start + int32(i)
	}
	sort.SliceStable(idx, func(a, c int) bool {
		i, j := idx[a], idx[c]
		for d := level; d < b.nd; d++ {
			if t.dims[d][i] != t.dims[d][j] {
				return t.dims[d][i] < t.dims[d][j]
			}
		}
		return false
	})
	// Apply the permutation to all record columns.
	for d := 0; d < b.nd; d++ {
		tmp := make([]int32, len(idx))
		for i, src := range idx {
			tmp[i] = t.dims[d][src]
		}
		copy(t.dims[d][start:end], tmp)
	}
	for m := 0; m < b.nm; m++ {
		tmp := make([]float64, len(idx))
		for i, src := range idx {
			tmp[i] = t.sums[m][src]
		}
		copy(t.sums[m][start:end], tmp)
	}
	tmp := make([]int64, len(idx))
	for i, src := range idx {
		tmp[i] = t.counts[src]
	}
	copy(t.counts[start:end], tmp)
}

// split builds the subtree covering record range [start, end), dividing on
// dimension `level` of the split order.
func (b *builder) split(start, end int32, level int) *node {
	t := b.tree
	nd := &node{childDim: -1, start: start, end: end}
	if level >= b.nd || end-start <= int32(t.maxLeaf) {
		return nd
	}
	b.sortRange(start, end, level)
	nd.childDim = int32(level)
	nd.children = make(map[int32]*node)
	for i := start; i < end; {
		j := i
		id := t.dims[level][i]
		for j < end && t.dims[level][j] == id {
			j++
		}
		child := b.split(i, j, level+1)
		child.dictID = id
		nd.children[id] = child
		i = j
	}
	// Star child: aggregate [start, end) collapsing this dimension.
	starStart := int32(len(t.counts))
	b.appendStarRecords(start, end, level)
	starEnd := int32(len(t.counts))
	if starEnd > starStart {
		star := b.split(starStart, starEnd, level+1)
		star.dictID = StarID
		nd.star = star
	}
	return nd
}

// appendStarRecords appends the aggregation of [start, end) with dimension
// `level` collapsed to StarID, grouped by the remaining dimensions.
func (b *builder) appendStarRecords(start, end int32, level int) {
	t := b.tree
	idx := make([]int32, end-start)
	for i := range idx {
		idx[i] = start + int32(i)
	}
	sort.SliceStable(idx, func(a, c int) bool {
		i, j := idx[a], idx[c]
		for d := level + 1; d < b.nd; d++ {
			if t.dims[d][i] != t.dims[d][j] {
				return t.dims[d][i] < t.dims[d][j]
			}
		}
		return false
	})
	same := func(i, j int32) bool {
		for d := level + 1; d < b.nd; d++ {
			if t.dims[d][i] != t.dims[d][j] {
				return false
			}
		}
		return true
	}
	for a := 0; a < len(idx); {
		c := a
		for c < len(idx) && same(idx[a], idx[c]) {
			c++
		}
		for d := 0; d < b.nd; d++ {
			if d == level {
				// The collapsed dimension.
				t.dims[d] = append(t.dims[d], StarID)
			} else {
				// Dimensions above the split level share one value
				// across the whole range (the path value, or StarID
				// from an earlier star path); dimensions below keep
				// the group key.
				t.dims[d] = append(t.dims[d], t.dims[d][idx[a]])
			}
		}
		for m := 0; m < b.nm; m++ {
			var sum float64
			for k := a; k < c; k++ {
				sum += t.sums[m][idx[k]]
			}
			t.sums[m] = append(t.sums[m], sum)
		}
		var count int64
		for k := a; k < c; k++ {
			count += t.counts[idx[k]]
		}
		t.counts = append(t.counts, count)
		a = c
	}
}

// IDMatcher reports whether a dict id satisfies a dimension's predicate.
type IDMatcher func(id int32) bool

// Scan traverses the tree and invokes visit for every pre-aggregated record
// matching the query shape. matchers maps split-order dimension index →
// predicate (absent means unconstrained); groupDims lists split-order
// indexes of GROUP BY columns (their actual values must be preserved, so
// star paths are not taken for them). It returns the number of
// pre-aggregated records scanned — the numerator of the Figure 13 ratio.
func (t *Tree) Scan(matchers map[int]IDMatcher, groupDims []int, visit func(rec int)) int {
	grouped := make(map[int]bool, len(groupDims))
	for _, d := range groupDims {
		grouped[d] = true
	}
	scanned := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.childDim < 0 {
			// Leaf: apply any unresolved predicates per record and
			// reject star values for grouped dimensions.
			for rec := n.start; rec < n.end; rec++ {
				scanned++
				ok := true
				for d, m := range matchers {
					v := t.dims[d][int(rec)]
					if v == StarID || !m(v) {
						ok = false
						break
					}
				}
				if ok {
					for d := range grouped {
						if t.dims[d][int(rec)] == StarID {
							ok = false
							break
						}
					}
				}
				if ok {
					visit(int(rec))
				}
			}
			return
		}
		d := int(n.childDim)
		if m, hasPred := matchers[d]; hasPred {
			for id, child := range n.children {
				if m(id) {
					walk(child)
				}
			}
			return
		}
		if grouped[d] {
			for _, child := range n.children {
				walk(child)
			}
			return
		}
		if n.star != nil {
			walk(n.star)
			return
		}
		for _, child := range n.children {
			walk(child)
		}
	}
	walk(t.root)
	return scanned
}
