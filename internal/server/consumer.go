package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"pinot/internal/controller"
	"pinot/internal/expr"
	"pinot/internal/pql"
	"pinot/internal/segment"
	"pinot/internal/startree"
	"pinot/internal/stream"
	"pinot/internal/transport"
)

// consumer ingests one stream partition into a mutable segment and, when the
// end criteria is reached, runs the replica side of the segment completion
// protocol (paper 3.3.6).
type consumer struct {
	tdm     *tableDataManager
	segName string
	seg     *segment.MutableSegment
	cons    *stream.Consumer
	topic   *stream.Topic
	// behindSince marks when the consumer last fell behind the partition
	// head; zero while caught up. Feeds the lag-millis gauge.
	behindSince time.Time
	// End criteria (paper 3.3.6): a row count, a wall-clock duration, or
	// both — whichever is reached first. Time-based flushes make replicas
	// diverge (local clocks), which the completion protocol reconciles.
	endRows  int
	endTime  time.Duration
	stop     chan struct{}
	done     chan struct{}
	finished atomic.Bool
	// Ingestion-time transforms (tentpole: derived values materialize as
	// real columns in the consuming segment). base is the schema of the
	// raw stream events; derived evaluates against it with the sandboxed
	// interpreter, one row at a time, in consumption order — so every
	// replica computes identical values from identical bytes.
	base    *segment.Schema
	derived []derivedEval
	ectx    *expr.Ctx
}

// derivedEval is one parsed derived-column expression.
type derivedEval struct {
	name string
	e    pql.Expr
}

// startConsuming handles the OFFLINE→CONSUMING transition: every replica
// creates a consumer at the segment's start offset, so all replicas consume
// the exact same data.
func (t *tableDataManager) startConsuming(segName string) error {
	meta, err := controller.ReadSegmentMeta(t.server.sess, t.server.cfg.Cluster, t.resource, segName)
	if err != nil {
		return fmt.Errorf("server %s: consuming segment %s metadata: %w", t.server.cfg.Instance, segName, err)
	}
	cfg := t.cfg.Load()
	topic, err := t.server.streams.Topic(cfg.StreamTopic)
	if err != nil {
		return err
	}
	sc, err := stream.NewConsumer(topic, meta.Partition, meta.StartOffset)
	if err != nil {
		return err
	}
	eff, err := cfg.EffectiveSchema()
	if err != nil {
		return fmt.Errorf("server %s: consuming segment %s: %w", t.server.cfg.Instance, segName, err)
	}
	ms, err := segment.NewMutableSegment(t.resource, segName, eff, cfg.IndexConfig())
	if err != nil {
		return err
	}
	derived := make([]derivedEval, 0, len(cfg.DerivedColumns))
	for _, d := range cfg.DerivedColumns {
		e, err := d.Parsed()
		if err != nil {
			return fmt.Errorf("server %s: consuming segment %s: derived column %q: %w",
				t.server.cfg.Instance, segName, d.Name, err)
		}
		derived = append(derived, derivedEval{name: d.Name, e: e})
	}
	c := &consumer{
		tdm:     t,
		segName: segName,
		seg:     ms,
		cons:    sc,
		topic:   topic,
		endRows: cfg.FlushThresholdRows,
		endTime: time.Duration(cfg.FlushThresholdMillis) * time.Millisecond,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		base:    cfg.Schema,
		derived: derived,
	}
	if len(derived) > 0 {
		c.ectx = expr.NewCtx(expr.Limits{})
		c.ectx.Check = func() error {
			if c.stopped() {
				return errors.New("server: consumer stopped")
			}
			return nil
		}
	}
	t.mu.Lock()
	t.consuming[segName] = c
	t.mu.Unlock()
	go c.run()
	return nil
}

// completeConsuming handles CONSUMING→ONLINE: promote the locally sealed
// copy if this replica committed (or was told KEEP), otherwise download the
// authoritative copy from the object store (DISCARD path).
func (t *tableDataManager) completeConsuming(segName string) error {
	t.mu.Lock()
	c := t.consuming[segName]
	t.mu.Unlock()
	if c != nil {
		// Give the completion loop a moment to finish its commit
		// conversation, then stop it.
		deadline := time.Now().Add(3 * time.Second)
		for !c.finished.Load() && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		c.halt()
	}
	t.mu.Lock()
	sealed := t.sealed[segName]
	delete(t.sealed, segName)
	delete(t.consuming, segName)
	t.mu.Unlock()
	if sealed != nil {
		return t.install(sealed)
	}
	return t.loadFromStore(segName)
}

func (c *consumer) halt() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

func (c *consumer) stopped() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

func (c *consumer) run() {
	defer close(c.done)
	rows := 0
	start := time.Now()
	met := c.tdm.server.met
	for !c.stopped() {
		c.updateLag()
		if c.endRows > 0 && rows >= c.endRows {
			met.consumerFlushes.With(met.instance, c.tdm.resource, "rows").Inc()
			c.complete()
			return
		}
		if c.endTime > 0 && time.Since(start) >= c.endTime && rows > 0 {
			// Time criterion: replicas hit this at different local
			// offsets; the completion protocol's CATCHUP/DISCARD
			// paths reconcile them (paper 3.3.6).
			met.consumerFlushes.With(met.instance, c.tdm.resource, "time").Inc()
			c.complete()
			return
		}
		// Never poll past the row criterion: the consumer offset must
		// equal the number of consumed messages so row-bounded
		// replicas agree exactly on segment boundaries.
		max := c.tdm.server.cfg.ConsumeBatch
		if c.endRows > 0 && c.endRows-rows < max {
			max = c.endRows - rows
		}
		msgs, err := c.cons.Poll(max)
		if err != nil || len(msgs) == 0 {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		for _, m := range msgs {
			// A malformed event is skipped but still counts toward
			// the end criteria (all replicas consume identical bytes,
			// so they stay deterministic); ingestion must not wedge
			// on bad input.
			_ = c.indexMessage(m.Value)
			rows++
		}
		met.consumerRows.With(met.instance, c.tdm.resource).Add(int64(len(msgs)))
	}
}

func (c *consumer) indexMessage(value []byte) error {
	dec := json.NewDecoder(bytes.NewReader(value))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return err
	}
	for _, d := range c.derived {
		v, err := expr.Eval(c.ectx, d.e, c.rowGetter(m))
		if err != nil {
			// A row whose transform fails is skipped like any malformed
			// event: deterministic across replicas (identical bytes,
			// identical limits), and ingestion never wedges.
			return err
		}
		m[d.name] = v
	}
	return c.seg.AddMap(m)
}

// rowGetter adapts one decoded stream event to the interpreter's column
// accessor, canonicalizing values against the base schema (the raw event
// fields; derived columns cannot reference each other). Missing fields read
// as the schema default, exactly what AddMap would store for them.
func (c *consumer) rowGetter(m map[string]any) expr.Getter {
	return func(name string) any {
		f, ok := c.base.Field(name)
		if !ok {
			return nil
		}
		v, ok := m[name]
		if !ok {
			return segment.DefaultValue(f)
		}
		cv, err := segment.CanonicalizeField(f, v)
		if err != nil {
			return nil
		}
		return cv
	}
}

// consumeTo catches the replica up to the target offset (CATCHUP).
func (c *consumer) consumeTo(target int64) {
	met := c.tdm.server.met
	for c.cons.Offset() < target && !c.stopped() {
		max := int(target - c.cons.Offset())
		if max > c.tdm.server.cfg.ConsumeBatch {
			max = c.tdm.server.cfg.ConsumeBatch
		}
		msgs, err := c.cons.Poll(max)
		if err != nil || len(msgs) == 0 {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		for _, m := range msgs {
			_ = c.indexMessage(m.Value)
		}
		met.consumerRows.With(met.instance, c.tdm.resource).Add(int64(len(msgs)))
	}
}

// complete runs the replica side of the completion protocol: poll the lead
// controller with the current offset and follow its instructions.
func (c *consumer) complete() {
	defer c.finished.Store(true)
	s := c.tdm.server
	for !c.stopped() {
		client, ok := s.leaderController()
		if !ok {
			time.Sleep(s.cfg.CompletionPollInterval)
			continue
		}
		resp, err := client.SegmentConsumed(context.Background(), &transport.SegmentConsumedRequest{
			Segment:  c.segName,
			Resource: c.tdm.resource,
			Instance: s.cfg.Instance,
			Offset:   c.cons.Offset(),
		})
		if err != nil {
			time.Sleep(s.cfg.CompletionPollInterval)
			continue
		}
		s.recordCompletionAction(resp.Action)
		switch resp.Action {
		case transport.ActionHold:
			time.Sleep(s.cfg.CompletionPollInterval)
		case transport.ActionNotLeader:
			time.Sleep(s.cfg.CompletionPollInterval)
		case transport.ActionCatchup:
			c.consumeTo(resp.TargetOffset)
		case transport.ActionKeep:
			c.keepLocal()
			return
		case transport.ActionDiscard:
			// Another replica committed a different version; the
			// authoritative copy arrives via CONSUMING→ONLINE.
			return
		case transport.ActionCommit:
			blob, seg, err := c.sealBlob()
			if err != nil {
				time.Sleep(s.cfg.CompletionPollInterval)
				continue
			}
			cr, err := client.CommitSegment(context.Background(), &transport.SegmentCommitRequest{
				Segment:  c.segName,
				Resource: c.tdm.resource,
				Instance: s.cfg.Instance,
				Offset:   c.cons.Offset(),
				Blob:     blob,
			})
			if err != nil || !cr.Success {
				// Paper 3.3.6 COMMIT: "if the commit fails, resume
				// polling".
				time.Sleep(s.cfg.CompletionPollInterval)
				continue
			}
			c.storeSealed(seg)
			return
		}
	}
}

// keepLocal seals the consuming segment and keeps it as the local ONLINE
// copy (offsets matched the committed copy exactly).
func (c *consumer) keepLocal() {
	_, seg, err := c.sealBlob()
	if err != nil {
		return
	}
	c.storeSealed(seg)
}

func (c *consumer) storeSealed(seg *segment.Segment) {
	c.tdm.mu.Lock()
	c.tdm.sealed[c.segName] = seg
	c.tdm.mu.Unlock()
}

// sealBlob converts the mutable segment to its immutable form, attaches the
// configured star-tree, and marshals it for commit.
func (c *consumer) sealBlob() ([]byte, *segment.Segment, error) {
	seg, err := c.seg.Seal()
	if err != nil {
		return nil, nil, err
	}
	if stCfg := c.tdm.cfg.Load().StarTree; stCfg != nil {
		tree, err := startree.Build(seg, *stCfg)
		if err != nil {
			return nil, nil, err
		}
		data, err := tree.Marshal()
		if err != nil {
			return nil, nil, err
		}
		seg.SetStarTreeData(data)
	}
	blob, err := seg.Marshal()
	if err != nil {
		return nil, nil, err
	}
	return blob, seg, nil
}

// leaderController returns a client for the current lead controller.
func (s *Server) leaderController() (transport.ControllerClient, bool) {
	for _, c := range s.controllers() {
		if lc, ok := c.(interface{ IsLeader() bool }); ok {
			if lc.IsLeader() {
				return c, true
			}
			continue
		}
		return c, true // remote client: let NOTLEADER responses rotate
	}
	return nil, false
}
