// Package server implements the Pinot server (paper 3.2): the component
// hosting segments and processing queries on them. Servers execute Helix
// state transitions — downloading segments from the object store for
// OFFLINE→ONLINE, consuming from the stream for OFFLINE→CONSUMING — and run
// per-segment query plans under a multitenant token-bucket scheduler.
package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pinot/internal/controller"
	"pinot/internal/helix"
	"pinot/internal/metrics"
	"pinot/internal/objstore"
	"pinot/internal/pql"
	"pinot/internal/qcache"
	"pinot/internal/qctx"
	"pinot/internal/query"
	"pinot/internal/segment"
	"pinot/internal/startree"
	"pinot/internal/stream"
	"pinot/internal/table"
	"pinot/internal/tenancy"
	"pinot/internal/transport"
	"pinot/internal/zkmeta"
)

// Config tunes a server instance.
type Config struct {
	Cluster  string
	Instance string
	// Tags beyond the implicit "server" tag (tenant tags).
	Tags []string
	// AdvertiseAddr is the data-plane TCP address (host:port) this server
	// answers the framed query protocol on; registered in the instance
	// config so brokers can dial it. Empty for in-process clusters.
	AdvertiseAddr string
	// Parallelism bounds concurrent per-segment plans per query.
	Parallelism int
	// DefaultTimeout bounds query execution when the request has none.
	DefaultTimeout time.Duration
	// PlanOptions tune physical planning (the Druid baseline overrides
	// these).
	PlanOptions query.Options
	// ConsumeBatch is the stream poll batch size.
	ConsumeBatch int
	// CompletionPollInterval paces completion-protocol polling.
	CompletionPollInterval time.Duration
	// TenantTokens/TenantRefill configure per-tenant token buckets in
	// seconds of execution time; zero disables tenancy throttling.
	TenantTokens float64
	TenantRefill float64
	// AutoIndexThreshold enables query-log driven index creation (paper
	// 5.2): once a non-indexed column appears in this many query
	// filters, inverted indexes are built on the hosted segments. Zero
	// disables the feature.
	AutoIndexThreshold int
	// DisableServerCache turns off the server-side partial-aggregate cache
	// (per-segment merged aggregation state for immutable segments). The
	// cache is on by default; this is the A/B lever.
	DisableServerCache bool
	// ServerCacheBytes bounds the partial-aggregate cache (0 = the qcache
	// default).
	ServerCacheBytes int64
	// ServerCachePolicy selects the cache eviction policy ("lru"/"lfu",
	// default lru).
	ServerCachePolicy string
	// DisableDictExprCache turns off the dictionary-space expression memo
	// cache (per-segment expression-over-dictionary results, reused across
	// queries). Dictionary-space planning itself stays on — memos are just
	// rebuilt per query; Config.PlanOptions.DisableDictExpr disables the
	// whole path.
	DisableDictExprCache bool
	// DictExprCacheBytes bounds the dict-expr memo cache (0 = the qcache
	// default).
	DictExprCacheBytes int64
	// Metrics receives the server's instrumentation; nil means the
	// process-wide metrics.Default().
	Metrics *metrics.Registry
}

func (c *Config) withDefaults() {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.ConsumeBatch <= 0 {
		c.ConsumeBatch = 1000
	}
	if c.CompletionPollInterval <= 0 {
		c.CompletionPollInterval = 10 * time.Millisecond
	}
}

// Server is one Pinot server instance.
type Server struct {
	cfg         Config
	store       zkmeta.Endpoint
	sess        zkmeta.Client
	objects     objstore.Store
	streams     *stream.Cluster
	controllers func() []transport.ControllerClient
	participant *helix.Participant
	engine      *query.Engine
	sched       *tenancy.Scheduler
	auto        *autoIndexer
	aggCache    *qcache.Cache
	dictCache   *qcache.Cache
	met         *serverMetrics

	mu     sync.RWMutex
	tables map[string]*tableDataManager

	// simulatedLatency is a failure-injection hook: when set, every
	// query on this server is delayed by this much, modelling the
	// stragglers that motivate large-cluster routing (paper 4.4).
	simulatedLatency atomic.Int64

	// completionActions counts the completion-protocol instructions this
	// server has received, for observability and tests.
	completionMu      sync.Mutex
	completionActions map[transport.SegmentConsumedAction]int64
}

// CompletionActionCounts returns how many times each completion-protocol
// instruction (HOLD, CATCHUP, COMMIT, ...) this server has received.
func (s *Server) CompletionActionCounts() map[transport.SegmentConsumedAction]int64 {
	s.completionMu.Lock()
	defer s.completionMu.Unlock()
	out := make(map[transport.SegmentConsumedAction]int64, len(s.completionActions))
	for k, v := range s.completionActions {
		out[k] = v
	}
	return out
}

func (s *Server) recordCompletionAction(a transport.SegmentConsumedAction) {
	s.completionMu.Lock()
	if s.completionActions == nil {
		s.completionActions = map[transport.SegmentConsumedAction]int64{}
	}
	s.completionActions[a]++
	s.completionMu.Unlock()
	s.met.completion.With(s.cfg.Instance, string(a)).Inc()
}

// InjectLatency sets a per-query artificial delay (0 clears it). Testing
// and benchmarking hook for straggler simulation.
func (s *Server) InjectLatency(d time.Duration) { s.simulatedLatency.Store(int64(d)) }

// New creates a server. controllers resolves the current controller clients
// for the segment completion protocol (tried in order until one is leader).
func New(cfg Config, store zkmeta.Endpoint, objects objstore.Store, streams *stream.Cluster, controllers func() []transport.ControllerClient) *Server {
	cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		store:       store,
		objects:     objects,
		streams:     streams,
		controllers: controllers,
		tables:      map[string]*tableDataManager{},
		engine:      &query.Engine{Parallelism: cfg.Parallelism, Options: cfg.PlanOptions},
		met:         newServerMetrics(cfg.Metrics, cfg.Instance),
	}
	s.engine.OnOutcome = func(executed, cancelled, skipped int) {
		s.met.segExecuted.Add(int64(executed))
		s.met.segCancelled.Add(int64(cancelled))
		s.met.segSkipped.Add(int64(skipped))
	}
	if !cfg.DisableServerCache {
		s.aggCache = qcache.New(qcache.Config{
			Tier:     "aggregate",
			MaxBytes: cfg.ServerCacheBytes,
			Policy:   qcache.Policy(cfg.ServerCachePolicy),
			Metrics:  cfg.Metrics,
		})
		s.engine.AggCache = s.aggCache
	}
	if !cfg.DisableDictExprCache {
		s.dictCache = qcache.New(qcache.Config{
			Tier:     "dictexpr",
			MaxBytes: cfg.DictExprCacheBytes,
			Policy:   qcache.Policy(cfg.ServerCachePolicy),
			Metrics:  cfg.Metrics,
		})
		s.engine.Options.DictMemoCache = s.dictCache
	}
	if cfg.TenantTokens > 0 {
		s.sched = tenancy.NewScheduler(cfg.TenantTokens, cfg.TenantRefill, nil)
		s.sched.SetMetrics(s.met.reg)
	}
	if cfg.AutoIndexThreshold > 0 {
		s.auto = newAutoIndexer(cfg.AutoIndexThreshold)
	}
	return s
}

// Instance returns the server's instance name.
func (s *Server) Instance() string { return s.cfg.Instance }

// Start registers the instance and joins the cluster as a Helix
// participant.
func (s *Server) Start() error {
	s.sess = s.store.NewClient()
	admin := helix.NewAdmin(s.sess, s.cfg.Cluster)
	if err := admin.CreateCluster(); err != nil {
		return err
	}
	tags := append([]string{"server"}, s.cfg.Tags...)
	if err := admin.RegisterInstance(helix.InstanceConfig{Instance: s.cfg.Instance, Tags: tags, Addr: s.cfg.AdvertiseAddr}); err != nil {
		return err
	}
	s.participant = helix.NewParticipant(s.store, s.cfg.Cluster, s.cfg.Instance, s.handleTransition)
	return s.participant.Start()
}

// Stop leaves the cluster and halts consumers.
func (s *Server) Stop() {
	if s.participant != nil {
		s.participant.Stop()
	}
	s.mu.Lock()
	tables := make([]*tableDataManager, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.Unlock()
	for _, t := range tables {
		t.stopAll()
	}
	if s.sess != nil {
		s.sess.Close()
	}
}

// Kill simulates a crash (ungraceful session expiry).
func (s *Server) Kill() {
	if s.participant != nil {
		s.participant.Kill()
	}
	s.mu.Lock()
	tables := make([]*tableDataManager, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.Unlock()
	for _, t := range tables {
		t.stopAll()
	}
	if s.sess != nil {
		s.sess.Expire()
	}
}

func (s *Server) tableManager(resource string) (*tableDataManager, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[resource]; ok {
		return t, nil
	}
	cfg, err := controller.ReadTableConfig(s.sess, s.cfg.Cluster, resource)
	if err != nil {
		return nil, fmt.Errorf("server %s: no config for %s: %w", s.cfg.Instance, resource, err)
	}
	t := &tableDataManager{
		server:    s,
		resource:  resource,
		segments:  map[string]query.IndexedSegment{},
		consuming: map[string]*consumer{},
		sealed:    map[string]*segment.Segment{},
	}
	t.cfg.Store(cfg)
	// Track on-the-fly config changes (schema evolution, index changes;
	// paper 5.2) via a watch on the stored table config.
	events, cancel := s.sess.Watch(helix.PropertyStorePath(s.cfg.Cluster, "CONFIGS", "TABLE", resource))
	t.cfgCancel = cancel
	go func() {
		for range events {
			if fresh, err := controller.ReadTableConfig(s.sess, s.cfg.Cluster, resource); err == nil {
				t.cfg.Store(fresh)
			}
		}
	}()
	s.tables[resource] = t
	return t, nil
}

// handleTransition executes Helix state transitions (paper Figures 3 and 4).
func (s *Server) handleTransition(resource, partition, from, to string) error {
	s.met.transitions.With(s.cfg.Instance, to).Inc()
	t, err := s.tableManager(resource)
	if err != nil {
		return err
	}
	switch {
	case from == helix.StateOffline && to == helix.StateOnline:
		return t.loadFromStore(partition)
	case from == helix.StateOffline && to == helix.StateConsuming:
		return t.startConsuming(partition)
	case from == helix.StateConsuming && to == helix.StateOnline:
		return t.completeConsuming(partition)
	case to == helix.StateOffline:
		t.unload(partition)
		return nil
	case to == helix.StateDropped:
		t.drop(partition)
		return nil
	}
	return fmt.Errorf("server %s: unsupported transition %s→%s", s.cfg.Instance, from, to)
}

// Execute runs a query on this server's share of a resource's segments
// (paper 3.3.3 steps 4–6). It is the buffered shape of ExecuteStream: the
// per-segment intermediates are folded into one response locally, exactly
// as a remote stream consumer would fold them.
func (s *Server) Execute(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error) {
	m := transport.NewStreamMerger()
	trailer, err := s.ExecuteStream(ctx, req, func(seq int, res *query.Intermediate) error {
		return m.Add(&transport.SegmentFrame{Seq: seq, Result: res})
	})
	if err != nil {
		return nil, err
	}
	merged, err := m.Finish(trailer)
	if err != nil {
		return nil, err
	}
	return &transport.QueryResponse{Result: merged, Exceptions: trailer.Exceptions, Trace: trailer.Trace}, nil
}

// ExecuteStream is the streaming query path shared by the in-memory and TCP
// transports (it implements transport.StreamHandler): per-segment
// intermediates go to emit in sequence order the moment they are ready, and
// the returned trailer carries the frame count, exceptions, trailer stats
// and the server-side trace.
func (s *Server) ExecuteStream(ctx context.Context, req *transport.QueryRequest, emit func(seq int, res *query.Intermediate) error) (trailer *transport.FinalFrame, err error) {
	s.met.queries.Inc()
	defer func() {
		if err != nil {
			s.met.failures.Inc()
		}
	}()
	q, err := pql.Parse(req.PQL)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	t, ok := s.tables[req.Resource]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("server %s: resource %s not hosted", s.cfg.Instance, req.Resource)
	}
	if hot := s.auto.observe(req.Resource, q); len(hot) > 0 {
		t.applyAutoIndexes(hot)
	}
	segs := t.segmentsFor(req.Segments)
	// Deadline budget: the server enforces the minimum of its own default,
	// the request's explicit timeout, and the broker's remaining budget
	// from the wire — never more than any of them. An inbound context
	// deadline (in-process transport) is folded in by WithTimeout, which
	// keeps the earlier of the two.
	timeout := s.cfg.DefaultTimeout
	if d := time.Duration(req.TimeoutMillis) * time.Millisecond; req.TimeoutMillis > 0 && d < timeout {
		timeout = d
	}
	if d := time.Duration(req.BudgetMillis) * time.Millisecond; req.BudgetMillis > 0 && d < timeout {
		timeout = d
	}
	// The server mints its own QueryContext (a real deployment crosses a
	// network hop here), seeded with the query's wire identity and the
	// budget this hop will enforce.
	qc := qctx.New(req.QueryID, timeout)
	ctx = qctx.With(ctx, qc)
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	if d := time.Duration(s.simulatedLatency.Load()); d > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(d):
		}
	}
	trailer = &transport.FinalFrame{}
	run := func() error {
		stop := qc.Clock(qctx.PhaseExecute)
		emitted := 0
		stats, exceptions, err := s.engine.ExecuteStream(ctx, q, segs, t.effectiveSchema(), func(seq int, res *query.Intermediate) error {
			emitted++
			return emit(seq, res)
		})
		stop()
		if err != nil {
			return err
		}
		trailer.Frames = emitted
		trailer.Exceptions = exceptions
		trailer.Stats = stats
		return nil
	}
	if s.sched != nil {
		tenant := req.Tenant
		if tenant == "" {
			tenant = "default"
		}
		var wait time.Duration
		wait, err = s.sched.Execute(ctx, tenant, run)
		qc.Charge(qctx.PhaseQueue, wait)
		s.met.queueWait.ObserveDuration(wait)
	} else {
		err = run()
	}
	if err != nil {
		return nil, err
	}
	usage := qc.UsageSnapshot()
	s.met.docs.Add(usage.DocsScanned)
	s.met.entries.Add(usage.EntriesScanned)
	s.met.groupState.Observe(float64(usage.GroupStateBytes))
	trailer.Trace = qc.TraceSnapshot()
	return trailer, nil
}

// invalidateSegmentCaches drops the per-segment cache entries — partial
// aggregates and dictionary-expression memos — scoped to a segment: the
// precise-invalidation hook run on every helix state transition that
// changes what the segment name resolves to.
func (s *Server) invalidateSegmentCaches(segName string) {
	if s.aggCache != nil {
		s.aggCache.InvalidateScope(segName)
	}
	if s.dictCache != nil {
		s.dictCache.InvalidateScope(segName)
	}
}

// AggCache exposes the server's partial-aggregate cache (nil when disabled);
// tests and benchmarks reach it for direct assertions.
func (s *Server) AggCache() *qcache.Cache { return s.aggCache }

// DictExprCache exposes the server's dictionary-expression memo cache (nil
// when disabled); tests and benchmarks reach it for direct assertions.
func (s *Server) DictExprCache() *qcache.Cache { return s.dictCache }

// HostedSegments returns the names of segments currently queryable for a
// resource (loaded immutable + consuming).
func (s *Server) HostedSegments(resource string) []string {
	s.mu.RLock()
	t, ok := s.tables[resource]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	return t.hostedNames()
}

// tableDataManager holds one resource's segments on a server.
type tableDataManager struct {
	server    *Server
	resource  string
	cfg       atomic.Pointer[table.Config]
	cfgCancel func()

	mu        sync.RWMutex
	segments  map[string]query.IndexedSegment
	consuming map[string]*consumer
	sealed    map[string]*segment.Segment // committed locally, pre-ONLINE
}

// effectiveSchema is the table-level schema queries plan against: the base
// schema plus derived-column fields, so segments that predate a derived
// column serve its default value via schema evolution.
func (t *tableDataManager) effectiveSchema() *segment.Schema {
	cfg := t.cfg.Load()
	eff, err := cfg.EffectiveSchema()
	if err != nil {
		// The config validated at creation; an error here means a bad
		// live edit — serve the base schema rather than fail queries.
		return cfg.Schema
	}
	return eff
}

func (t *tableDataManager) hostedNames() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for name := range t.segments {
		out = append(out, name)
	}
	for name := range t.consuming {
		out = append(out, name)
	}
	return out
}

// segmentsFor resolves requested segment names (nil = all hosted) to
// executable segments, including in-progress consuming segments.
func (t *tableDataManager) segmentsFor(names []string) []query.IndexedSegment {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if names == nil {
		out := make([]query.IndexedSegment, 0, len(t.segments)+len(t.consuming))
		for _, is := range t.segments {
			out = append(out, is)
		}
		for _, c := range t.consuming {
			out = append(out, query.IndexedSegment{Seg: c.seg})
		}
		return out
	}
	out := make([]query.IndexedSegment, 0, len(names))
	for _, n := range names {
		if is, ok := t.segments[n]; ok {
			out = append(out, is)
			continue
		}
		if c, ok := t.consuming[n]; ok {
			out = append(out, query.IndexedSegment{Seg: c.seg})
		}
	}
	return out
}

// loadFromStore fetches a segment blob and makes it queryable (paper Figure
// 4: fetch from the object store, unpack, load).
func (t *tableDataManager) loadFromStore(segName string) error {
	meta, err := controller.ReadSegmentMeta(t.server.sess, t.server.cfg.Cluster, t.resource, segName)
	if err != nil {
		return fmt.Errorf("server %s: segment %s metadata: %w", t.server.cfg.Instance, segName, err)
	}
	blob, err := t.server.objects.Get(meta.ObjectKey)
	if err != nil {
		return fmt.Errorf("server %s: segment %s blob: %w", t.server.cfg.Instance, segName, err)
	}
	seg, err := segment.Unmarshal(blob)
	if err != nil {
		return fmt.Errorf("server %s: segment %s corrupt: %w", t.server.cfg.Instance, segName, err)
	}
	return t.install(seg)
}

func (t *tableDataManager) install(seg *segment.Segment) error {
	is := query.IndexedSegment{Seg: seg}
	if data := seg.StarTreeData(); data != nil {
		tree, err := startree.Unmarshal(data)
		if err != nil {
			return fmt.Errorf("server %s: segment %s star tree corrupt: %w", t.server.cfg.Instance, seg.Name(), err)
		}
		is.Tree = tree
	}
	t.mu.Lock()
	t.segments[seg.Name()] = is
	t.mu.Unlock()
	// A (re)installed segment may carry different contents under the same
	// name (segment replace/reload): stale partial aggregates and
	// expression memos must go.
	t.server.invalidateSegmentCaches(seg.Name())
	return nil
}

func (t *tableDataManager) unload(segName string) {
	t.mu.Lock()
	c := t.consuming[segName]
	delete(t.segments, segName)
	delete(t.consuming, segName)
	delete(t.sealed, segName)
	t.mu.Unlock()
	if c != nil {
		c.halt()
	}
	t.server.invalidateSegmentCaches(segName)
}

func (t *tableDataManager) drop(segName string) {
	t.unload(segName)
}

func (t *tableDataManager) stopAll() {
	if t.cfgCancel != nil {
		t.cfgCancel()
	}
	t.mu.Lock()
	consumers := make([]*consumer, 0, len(t.consuming))
	for _, c := range t.consuming {
		consumers = append(consumers, c)
	}
	t.mu.Unlock()
	for _, c := range consumers {
		c.halt()
	}
}
