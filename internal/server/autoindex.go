package server

import (
	"sync"

	"pinot/internal/pql"
	"pinot/internal/query"
	"pinot/internal/segment"
)

// autoIndexer implements the self-service optimization of paper section
// 5.2: "we also parse the query logs and execution statistics on an ongoing
// basis in order to automatically add inverted indexes on columns where
// they would prove beneficial". It counts filter-column usage per resource
// and, past a threshold, builds inverted indexes on the hosted segments of
// the hot columns.
type autoIndexer struct {
	mu        sync.Mutex
	threshold int
	counts    map[string]map[string]int // resource -> column -> filter uses
	applied   map[string]map[string]bool
}

func newAutoIndexer(threshold int) *autoIndexer {
	return &autoIndexer{
		threshold: threshold,
		counts:    map[string]map[string]int{},
		applied:   map[string]map[string]bool{},
	}
}

// observe records one query's filter columns and returns the columns that
// just crossed the threshold.
func (a *autoIndexer) observe(resource string, q *pql.Query) []string {
	if a == nil || q.Filter == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.counts[resource] == nil {
		a.counts[resource] = map[string]int{}
		a.applied[resource] = map[string]bool{}
	}
	var hot []string
	for _, col := range pql.PredicateColumns(q.Filter) {
		a.counts[resource][col]++
		if a.counts[resource][col] == a.threshold && !a.applied[resource][col] {
			a.applied[resource][col] = true
			hot = append(hot, col)
		}
	}
	return hot
}

// applyAutoIndexes builds inverted indexes for hot columns on every loaded
// immutable segment of the resource. Failures (raw metric columns, columns
// a segment predates) are skipped; reindexing is best-effort background
// work.
func (t *tableDataManager) applyAutoIndexes(columns []string) {
	t.mu.RLock()
	segs := make([]query.IndexedSegment, 0, len(t.segments))
	for _, is := range t.segments {
		segs = append(segs, is)
	}
	t.mu.RUnlock()
	for _, is := range segs {
		seg, ok := is.Seg.(*segment.Segment)
		if !ok {
			continue
		}
		for _, col := range columns {
			_ = seg.AddInvertedIndex(col)
		}
		// Reindexing changes the physical plan (and its scan counters), so
		// cached partial aggregates for the segment no longer replay what a
		// fresh execution would produce. Dictionary memos would survive (the
		// dictionary is untouched), but reindexing is rare enough that the
		// shared invalidation hook keeps things simple.
		t.server.invalidateSegmentCaches(seg.Name())
	}
}
