package server

import (
	"strconv"
	"time"

	"pinot/internal/metrics"
)

// serverMetrics caches the server's instrument handles. Everything carries
// an instance label so one registry (one in-process cluster) can tell its
// servers apart; per-instance children are resolved once here and the data
// plane pays only atomic adds.
type serverMetrics struct {
	reg      *metrics.Registry
	instance string

	queries      *metrics.Instrument
	failures     *metrics.Instrument
	queueWait    *metrics.Instrument // histogram, µs
	segExecuted  *metrics.Instrument
	segCancelled *metrics.Instrument
	segSkipped   *metrics.Instrument
	docs         *metrics.Instrument
	entries      *metrics.Instrument
	groupState   *metrics.Instrument // histogram, bytes per query

	transitions *metrics.Family // labels: instance, to
	completion  *metrics.Family // labels: instance, action

	consumerRows    *metrics.Family // labels: instance, resource
	consumerFlushes *metrics.Family // labels: instance, resource, reason
	lagEvents       *metrics.Family // labels: instance, resource, partition
	lagMillis       *metrics.Family // labels: instance, resource, partition
}

func newServerMetrics(reg *metrics.Registry, instance string) *serverMetrics {
	if reg == nil {
		reg = metrics.Default()
	}
	m := &serverMetrics{reg: reg, instance: instance}
	m.queries = reg.Counter("pinot_server_queries_total",
		"Queries executed by this server.", "instance").With(instance)
	m.failures = reg.Counter("pinot_server_query_failures_total",
		"Queries that returned an error from this server.", "instance").With(instance)
	m.queueWait = reg.Histogram("pinot_server_queue_wait_us",
		"Tenancy-scheduler queue wait in microseconds.", "instance").With(instance)
	m.segExecuted = reg.Counter("pinot_server_segments_executed_total",
		"Segment plans run to completion.", "instance").With(instance)
	m.segCancelled = reg.Counter("pinot_server_segments_cancelled_total",
		"Segment plans cancelled mid-scan by deadline or cancellation.", "instance").With(instance)
	m.segSkipped = reg.Counter("pinot_server_segments_skipped_total",
		"Segments never dispatched before the deadline.", "instance").With(instance)
	m.docs = reg.Counter("pinot_server_docs_scanned_total",
		"Documents scanned by query execution.", "instance").With(instance)
	m.entries = reg.Counter("pinot_server_entries_scanned_total",
		"Column entries scanned by query execution.", "instance").With(instance)
	m.groupState = reg.Histogram("pinot_server_group_state_bytes",
		"Group-by state bytes held per query.", "instance").With(instance)
	m.transitions = reg.Counter("pinot_server_transitions_total",
		"Helix state transitions executed, by target state.", "instance", "to")
	m.completion = reg.Counter("pinot_server_completion_actions_total",
		"Completion-protocol instructions received, by action.", "instance", "action")
	m.consumerRows = reg.Counter("pinot_consumer_rows_consumed_total",
		"Stream rows consumed into mutable segments.", "instance", "resource")
	m.consumerFlushes = reg.Counter("pinot_consumer_flushes_total",
		"Consuming-segment flushes, by end criterion (rows or time).", "instance", "resource", "reason")
	m.lagEvents = reg.Gauge("pinot_consumer_lag_events",
		"Events between the partition head and the consumer offset.", "instance", "resource", "partition")
	m.lagMillis = reg.Gauge("pinot_consumer_lag_millis",
		"How long the consumer has been continuously behind the head.", "instance", "resource", "partition")
	return m
}

// updateLag publishes one consumer's ingestion-lag gauges: the event gap to
// the partition head, and — since the in-memory stream carries no event
// timestamps — how long the consumer has been continuously behind, which is
// zero whenever it is caught up.
func (c *consumer) updateLag() {
	m := c.tdm.server.met
	latest, err := c.topic.LatestOffset(c.cons.Partition())
	if err != nil {
		return
	}
	lag := latest - c.cons.Offset()
	if lag < 0 {
		lag = 0
	}
	if lag == 0 {
		c.behindSince = time.Time{}
	} else if c.behindSince.IsZero() {
		c.behindSince = time.Now()
	}
	var behind int64
	if !c.behindSince.IsZero() {
		behind = time.Since(c.behindSince).Milliseconds()
	}
	part := strconv.Itoa(c.cons.Partition())
	m.lagEvents.With(m.instance, c.tdm.resource, part).Set(lag)
	m.lagMillis.With(m.instance, c.tdm.resource, part).Set(behind)
}
