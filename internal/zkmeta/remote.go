package zkmeta

import (
	"encoding/gob"
	"net"
	"sync"
	"time"
)

// Remote is an Endpoint backed by a TCP metadata server (see TCPServer).
// Each NewClient dials its own connection, so each client is an independent
// session whose ephemerals die with the connection.
type Remote struct {
	addr string
	// DialTimeout bounds each session dial (default 5s).
	DialTimeout time.Duration
}

// NewRemote points at a zkmeta TCP endpoint.
func NewRemote(addr string) *Remote { return &Remote{addr: addr, DialTimeout: 5 * time.Second} }

// NewClient dials a fresh session. Dial failure yields an already-expired
// session whose operations fail with ErrSessionClosed, matching the behavior
// of a session that dropped immediately; components already handle that via
// OnExpire/retry.
func (r *Remote) NewClient() Client {
	conn, err := net.DialTimeout("tcp", r.addr, r.DialTimeout)
	if err != nil {
		rs := &RemoteSession{pending: map[uint64]chan *wireResp{}, watches: map[uint64]*remoteWatch{}}
		rs.closed = true
		return rs
	}
	return newRemoteSession(conn)
}

var _ Endpoint = (*Remote)(nil)

type remoteWatch struct {
	ch     chan Event
	closed bool
}

// RemoteSession is a Client over one TCP connection. All operations are
// synchronous request/response; watch events are pushed by the server and
// fanned out to per-watch channels by a background reader.
type RemoteSession struct {
	conn net.Conn

	writeMu sync.Mutex
	enc     *gob.Encoder

	mu        sync.Mutex
	closed    bool
	nextID    uint64
	pending   map[uint64]chan *wireResp
	watches   map[uint64]*remoteWatch
	expireCbs []func()
}

func newRemoteSession(conn net.Conn) *RemoteSession {
	rs := &RemoteSession{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: map[uint64]chan *wireResp{},
		watches: map[uint64]*remoteWatch{},
	}
	go rs.readLoop()
	return rs
}

func (rs *RemoteSession) readLoop() {
	dec := gob.NewDecoder(rs.conn)
	for {
		var msg wireServerMsg
		if err := dec.Decode(&msg); err != nil {
			rs.teardown()
			return
		}
		switch {
		case msg.Resp != nil:
			rs.mu.Lock()
			ch := rs.pending[msg.Resp.ID]
			delete(rs.pending, msg.Resp.ID)
			rs.mu.Unlock()
			if ch != nil {
				ch <- msg.Resp
			}
		case msg.Event != nil:
			rs.mu.Lock()
			w := rs.watches[msg.Event.WatchID]
			if w != nil && !w.closed {
				select {
				case w.ch <- Event{Type: msg.Event.Type, Path: msg.Event.Path}:
				default: // mirror local sessions: drop on overflow
				}
			}
			rs.mu.Unlock()
		}
	}
}

// teardown marks the session expired, fails pending calls, closes watch
// channels and fires expiry callbacks — the remote analogue of Session.Close
// observed from the client side.
func (rs *RemoteSession) teardown() {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return
	}
	rs.closed = true
	for id, ch := range rs.pending {
		delete(rs.pending, id)
		close(ch)
	}
	for id, w := range rs.watches {
		delete(rs.watches, id)
		if !w.closed {
			w.closed = true
			close(w.ch)
		}
	}
	cbs := rs.expireCbs
	rs.expireCbs = nil
	rs.mu.Unlock()
	rs.conn.Close()
	for _, fn := range cbs {
		fn()
	}
}

// call sends one request and waits for its response.
func (rs *RemoteSession) call(req wireReq) (*wireResp, error) {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil, ErrSessionClosed
	}
	rs.nextID++
	req.ID = rs.nextID
	ch := make(chan *wireResp, 1)
	rs.pending[req.ID] = ch
	rs.mu.Unlock()

	rs.writeMu.Lock()
	err := rs.enc.Encode(req)
	rs.writeMu.Unlock()
	if err != nil {
		rs.mu.Lock()
		delete(rs.pending, req.ID)
		rs.mu.Unlock()
		rs.teardown()
		return nil, ErrSessionClosed
	}
	resp, ok := <-ch
	if !ok {
		return nil, ErrSessionClosed
	}
	return resp, nil
}

func (rs *RemoteSession) simpleCall(req wireReq) error {
	resp, err := rs.call(req)
	if err != nil {
		return err
	}
	return codeToErr(resp.Code, resp.Err)
}

// Create adds a persistent node; the parent must exist.
func (rs *RemoteSession) Create(path string, data []byte) error {
	return rs.simpleCall(wireReq{Op: opCreate, Path: path, Data: data})
}

// CreateEphemeral adds a node that dies with this session's connection.
func (rs *RemoteSession) CreateEphemeral(path string, data []byte) error {
	return rs.simpleCall(wireReq{Op: opCreateEphemeral, Path: path, Data: data})
}

// CreateAll creates the node and any missing ancestors (persistent).
func (rs *RemoteSession) CreateAll(path string, data []byte) error {
	return rs.simpleCall(wireReq{Op: opCreateAll, Path: path, Data: data})
}

// Get returns a node's data and version.
func (rs *RemoteSession) Get(path string) ([]byte, int, error) {
	resp, err := rs.call(wireReq{Op: opGet, Path: path})
	if err != nil {
		return nil, 0, err
	}
	if err := codeToErr(resp.Code, resp.Err); err != nil {
		return nil, 0, err
	}
	return resp.Data, resp.Version, nil
}

// Set replaces a node's data with an optional version check (-1 = any).
func (rs *RemoteSession) Set(path string, data []byte, expectedVersion int) (int, error) {
	resp, err := rs.call(wireReq{Op: opSet, Path: path, Data: data, Version: expectedVersion})
	if err != nil {
		return 0, err
	}
	if err := codeToErr(resp.Code, resp.Err); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Delete removes a leaf node with an optional version check (-1 = any).
func (rs *RemoteSession) Delete(path string, expectedVersion int) error {
	return rs.simpleCall(wireReq{Op: opDelete, Path: path, Version: expectedVersion})
}

// Exists reports whether a node exists.
func (rs *RemoteSession) Exists(path string) bool {
	resp, err := rs.call(wireReq{Op: opExists, Path: path})
	if err != nil {
		return false
	}
	return resp.Bool
}

// Children returns the sorted child names of a node.
func (rs *RemoteSession) Children(path string) ([]string, error) {
	resp, err := rs.call(wireReq{Op: opChildren, Path: path})
	if err != nil {
		return nil, err
	}
	if err := codeToErr(resp.Code, resp.Err); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Watch subscribes to created/changed/deleted events for a path.
func (rs *RemoteSession) Watch(path string) (<-chan Event, func()) {
	return rs.watch(path, opWatch)
}

// WatchChildren subscribes to child membership changes of a path.
func (rs *RemoteSession) WatchChildren(path string) (<-chan Event, func()) {
	return rs.watch(path, opWatchChildren)
}

func (rs *RemoteSession) watch(path string, op uint8) (<-chan Event, func()) {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	rs.nextID++
	id := rs.nextID
	w := &remoteWatch{ch: make(chan Event, 4096)}
	rs.watches[id] = w
	rs.mu.Unlock()

	if _, err := rs.call(wireReq{Op: op, Path: path, WatchID: id}); err != nil {
		// Session died while registering; teardown already closed w.ch if it
		// was registered, otherwise close it here.
		rs.mu.Lock()
		if ww := rs.watches[id]; ww != nil && !ww.closed {
			ww.closed = true
			close(ww.ch)
			delete(rs.watches, id)
		}
		rs.mu.Unlock()
		return w.ch, func() {}
	}
	cancel := func() {
		rs.mu.Lock()
		ww := rs.watches[id]
		delete(rs.watches, id)
		alive := !rs.closed
		if ww != nil && !ww.closed {
			ww.closed = true
			close(ww.ch)
		}
		rs.mu.Unlock()
		if alive && ww != nil {
			_, _ = rs.call(wireReq{Op: opUnwatch, WatchID: id})
		}
	}
	return w.ch, cancel
}

// OnExpire registers fn to run when the session closes or the connection
// drops. Registering on an already-expired session is a no-op, matching the
// local Session semantics — reconnect loops would otherwise recurse forever
// against a dead endpoint; components detect that case via Expired() and
// failing operations instead.
func (rs *RemoteSession) OnExpire(fn func()) {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return
	}
	rs.expireCbs = append(rs.expireCbs, fn)
	rs.mu.Unlock()
}

// Expired reports whether the session has been closed or lost its connection.
func (rs *RemoteSession) Expired() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.closed
}

// Close ends the session; the server deletes its ephemerals when the
// connection drops.
func (rs *RemoteSession) Close() { rs.teardown() }

// Expire simulates ungraceful expiry (drops the connection).
func (rs *RemoteSession) Expire() { rs.teardown() }

var _ Client = (*RemoteSession)(nil)
