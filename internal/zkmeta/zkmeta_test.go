package zkmeta

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCreateGetSetDelete(t *testing.T) {
	s := NewStore()
	sess := s.NewSession()
	if err := sess.Create("/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := sess.Create("/a", nil); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := sess.Create("/b/c", nil); !errors.Is(err, ErrNoParent) {
		t.Fatalf("orphan create: %v", err)
	}
	data, v, err := sess.Get("/a")
	if err != nil || string(data) != "x" || v != 0 {
		t.Fatalf("get: %q v%d %v", data, v, err)
	}
	if _, _, err := sess.Get("/missing"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("get missing: %v", err)
	}
	nv, err := sess.Set("/a", []byte("y"), 0)
	if err != nil || nv != 1 {
		t.Fatalf("set: v%d %v", nv, err)
	}
	if _, err := sess.Set("/a", []byte("z"), 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale set: %v", err)
	}
	if _, err := sess.Set("/a", []byte("z"), -1); err != nil {
		t.Fatalf("any-version set: %v", err)
	}
	if err := sess.Delete("/a", 1); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale delete: %v", err)
	}
	if err := sess.Delete("/a", 2); err != nil {
		t.Fatal(err)
	}
	if sess.Exists("/a") {
		t.Fatal("node exists after delete")
	}
}

func TestCreateAllAndChildren(t *testing.T) {
	s := NewStore()
	sess := s.NewSession()
	if err := sess.CreateAll("/x/y/z", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	data, _, err := sess.Get("/x/y/z")
	if err != nil || string(data) != "deep" {
		t.Fatalf("deep get: %q %v", data, err)
	}
	if err := sess.CreateAll("/x/y/z", nil); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("CreateAll duplicate leaf: %v", err)
	}
	_ = sess.Create("/x/y/w", nil)
	kids, err := sess.Children("/x/y")
	if err != nil || len(kids) != 2 || kids[0] != "w" || kids[1] != "z" {
		t.Fatalf("children: %v %v", kids, err)
	}
	// Deleting a non-empty node fails.
	if err := sess.Delete("/x/y", -1); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("non-empty delete: %v", err)
	}
}

func TestBadPaths(t *testing.T) {
	s := NewStore()
	sess := s.NewSession()
	for _, p := range []string{"relative", "//double", "/trail//ing"} {
		if err := sess.Create(p, nil); err == nil {
			t.Errorf("Create(%q) accepted", p)
		}
	}
}

func collectEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case e := <-ch:
		return e
	case <-time.After(time.Second):
		t.Fatal("no event within 1s")
		return Event{}
	}
}

func TestWatches(t *testing.T) {
	s := NewStore()
	sess := s.NewSession()
	ch, cancel := sess.Watch("/w")
	defer cancel()
	_ = sess.Create("/w", []byte("1"))
	if e := collectEvent(t, ch); e.Type != EventCreated || e.Path != "/w" {
		t.Fatalf("event = %+v", e)
	}
	_, _ = sess.Set("/w", []byte("2"), -1)
	if e := collectEvent(t, ch); e.Type != EventDataChanged {
		t.Fatalf("event = %+v", e)
	}
	_ = sess.Delete("/w", -1)
	if e := collectEvent(t, ch); e.Type != EventDeleted {
		t.Fatalf("event = %+v", e)
	}
	// Persistent: recreate fires again.
	_ = sess.Create("/w", nil)
	if e := collectEvent(t, ch); e.Type != EventCreated {
		t.Fatalf("event = %+v", e)
	}
}

func TestChildWatches(t *testing.T) {
	s := NewStore()
	sess := s.NewSession()
	_ = sess.Create("/parent", nil)
	ch, cancel := sess.WatchChildren("/parent")
	defer cancel()
	_ = sess.Create("/parent/a", nil)
	if e := collectEvent(t, ch); e.Type != EventChildrenChanged || e.Path != "/parent" {
		t.Fatalf("event = %+v", e)
	}
	_ = sess.Delete("/parent/a", -1)
	if e := collectEvent(t, ch); e.Type != EventChildrenChanged {
		t.Fatalf("event = %+v", e)
	}
	// Data changes do not fire child watches.
	_, _ = sess.Set("/parent", []byte("d"), -1)
	select {
	case e := <-ch:
		t.Fatalf("unexpected event %+v", e)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestWatchCancel(t *testing.T) {
	s := NewStore()
	sess := s.NewSession()
	ch, cancel := sess.Watch("/c")
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	_ = sess.Create("/c", nil) // must not panic
}

func TestEphemeralLifecycle(t *testing.T) {
	s := NewStore()
	owner := s.NewSession()
	observer := s.NewSession()
	if err := owner.CreateEphemeral("/live", []byte("me")); err != nil {
		t.Fatal(err)
	}
	ch, cancel := observer.Watch("/live")
	defer cancel()
	owner.Close()
	if e := collectEvent(t, ch); e.Type != EventDeleted {
		t.Fatalf("event = %+v", e)
	}
	if observer.Exists("/live") {
		t.Fatal("ephemeral survived session close")
	}
	// Operations on a closed session fail.
	if err := owner.Create("/after", nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("closed-session create: %v", err)
	}
	// Expire is an alias; double close is safe.
	owner.Expire()
}

func TestEphemeralDeletedExplicitly(t *testing.T) {
	s := NewStore()
	sess := s.NewSession()
	_ = sess.CreateEphemeral("/tmp", nil)
	if err := sess.Delete("/tmp", -1); err != nil {
		t.Fatal(err)
	}
	// Closing afterwards must not error on the already-deleted node.
	sess.Close()
}

func TestLeaderElectionPattern(t *testing.T) {
	// The leader-election pattern Helix builds on: ephemeral create
	// contention, watch for deletion, re-contend.
	s := NewStore()
	a, b := s.NewSession(), s.NewSession()
	if err := a.CreateEphemeral("/leader", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateEphemeral("/leader", []byte("b")); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("second leader create: %v", err)
	}
	ch, cancel := b.Watch("/leader")
	defer cancel()
	a.Close() // leader dies
	if e := collectEvent(t, ch); e.Type != EventDeleted {
		t.Fatalf("event = %+v", e)
	}
	if err := b.CreateEphemeral("/leader", []byte("b")); err != nil {
		t.Fatalf("takeover: %v", err)
	}
	data, _, _ := b.Get("/leader")
	if string(data) != "b" {
		t.Fatalf("leader = %q", data)
	}
}

func TestConcurrentSessions(t *testing.T) {
	s := NewStore()
	root := s.NewSession()
	_ = root.Create("/counters", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for j := 0; j < 100; j++ {
				path := fmt.Sprintf("/counters/n%d_%d", i, j)
				if err := sess.Create(path, nil); err != nil {
					t.Errorf("create %s: %v", path, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	kids, err := root.Children("/counters")
	if err != nil || len(kids) != 800 {
		t.Fatalf("children = %d, %v", len(kids), err)
	}
}

func TestOptimisticConcurrencyLoop(t *testing.T) {
	// CAS retry loop, the idiom controllers use for shared state.
	s := NewStore()
	sess := s.NewSession()
	_ = sess.Create("/count", []byte("0"))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := s.NewSession()
			defer w.Close()
			for j := 0; j < 50; j++ {
				for {
					data, v, err := w.Get("/count")
					if err != nil {
						t.Error(err)
						return
					}
					n := 0
					fmt.Sscanf(string(data), "%d", &n)
					if _, err := w.Set("/count", []byte(fmt.Sprint(n+1)), v); err == nil {
						break
					} else if !errors.Is(err, ErrBadVersion) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	data, _, _ := sess.Get("/count")
	if string(data) != "200" {
		t.Fatalf("count = %s, want 200", data)
	}
}
