package zkmeta

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"
)

// The metadata substrate's TCP protocol: one connection is one session, so
// ephemeral-node lifetime is tied to connection lifetime exactly the way a
// Zookeeper session is tied to its client — a kill -9'd process drops its
// connection and its live-instance ephemerals vanish. Requests and responses
// are gob streams; server→client messages interleave request responses
// (correlated by ID) with pushed watch events (correlated by watch ID).

// Wire operation codes.
const (
	opCreate uint8 = iota + 1
	opCreateEphemeral
	opCreateAll
	opGet
	opSet
	opDelete
	opExists
	opChildren
	opWatch
	opWatchChildren
	opUnwatch
)

// Wire error codes map the package's sentinel errors across the connection
// so `err == zkmeta.ErrNodeExists`-style checks keep working remotely.
const (
	wireOK uint8 = iota
	wireErrNoNode
	wireErrNodeExists
	wireErrBadVersion
	wireErrNotEmpty
	wireErrNoParent
	wireErrSessionClosed
	wireErrOther
)

func errToCode(err error) (uint8, string) {
	switch {
	case err == nil:
		return wireOK, ""
	case errors.Is(err, ErrNoNode):
		return wireErrNoNode, ""
	case errors.Is(err, ErrNodeExists):
		return wireErrNodeExists, ""
	case errors.Is(err, ErrBadVersion):
		return wireErrBadVersion, ""
	case errors.Is(err, ErrNotEmpty):
		return wireErrNotEmpty, ""
	case errors.Is(err, ErrNoParent):
		return wireErrNoParent, ""
	case errors.Is(err, ErrSessionClosed):
		return wireErrSessionClosed, ""
	default:
		return wireErrOther, err.Error()
	}
}

func codeToErr(code uint8, msg string) error {
	switch code {
	case wireOK:
		return nil
	case wireErrNoNode:
		return ErrNoNode
	case wireErrNodeExists:
		return ErrNodeExists
	case wireErrBadVersion:
		return ErrBadVersion
	case wireErrNotEmpty:
		return ErrNotEmpty
	case wireErrNoParent:
		return ErrNoParent
	case wireErrSessionClosed:
		return ErrSessionClosed
	default:
		return errors.New("zkmeta: remote: " + msg)
	}
}

// wireReq is one client request.
type wireReq struct {
	ID      uint64
	Op      uint8
	Path    string
	Data    []byte
	Version int
	WatchID uint64
}

// wireResp answers one request.
type wireResp struct {
	ID      uint64
	Code    uint8
	Err     string
	Data    []byte
	Version int
	Bool    bool
	Names   []string
	WatchID uint64
}

// wireEvent is a pushed watch notification.
type wireEvent struct {
	WatchID uint64
	Type    EventType
	Path    string
}

// wireServerMsg multiplexes responses and events on the server→client gob
// stream; exactly one field is set.
type wireServerMsg struct {
	Resp  *wireResp
	Event *wireEvent
}

// TCPServer exposes a Store over TCP. Each accepted connection owns one
// session; closing the connection closes the session.
type TCPServer struct {
	store *Store

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPServer wraps a store for serving.
func NewTCPServer(store *Store) *TCPServer {
	return &TCPServer{store: store, conns: map[net.Conn]struct{}{}}
}

// Serve accepts sessions on the listener until Close. It blocks; run it in a
// goroutine.
func (s *TCPServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("zkmeta: server closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, drops every live session and waits for connection
// handlers to exit.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.wg.Wait()
}

// connWriter serializes the server→client gob stream.
type connWriter struct {
	mu  sync.Mutex
	enc *gob.Encoder
	err error
}

func (w *connWriter) send(msg wireServerMsg) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.err = w.enc.Encode(msg)
	return w.err
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer conn.Close()
	sess := s.store.NewSession()
	defer sess.Close()
	w := &connWriter{enc: gob.NewEncoder(conn)}
	dec := gob.NewDecoder(conn)

	type watchState struct {
		cancel func()
		done   chan struct{}
	}
	watches := map[uint64]*watchState{}
	var watchMu sync.Mutex
	defer func() {
		watchMu.Lock()
		ws := make([]*watchState, 0, len(watches))
		for _, st := range watches {
			ws = append(ws, st)
		}
		watches = map[uint64]*watchState{}
		watchMu.Unlock()
		for _, st := range ws {
			st.cancel()
			<-st.done
		}
	}()

	for {
		var req wireReq
		if err := dec.Decode(&req); err != nil {
			// EOF / reset / garbage: the session dies with the connection.
			_ = err
			if err == io.EOF {
				return
			}
			return
		}
		resp := wireResp{ID: req.ID}
		switch req.Op {
		case opCreate:
			resp.Code, resp.Err = errToCode(sess.Create(req.Path, req.Data))
		case opCreateEphemeral:
			resp.Code, resp.Err = errToCode(sess.CreateEphemeral(req.Path, req.Data))
		case opCreateAll:
			resp.Code, resp.Err = errToCode(sess.CreateAll(req.Path, req.Data))
		case opGet:
			data, version, err := sess.Get(req.Path)
			resp.Data, resp.Version = data, version
			resp.Code, resp.Err = errToCode(err)
		case opSet:
			version, err := sess.Set(req.Path, req.Data, req.Version)
			resp.Version = version
			resp.Code, resp.Err = errToCode(err)
		case opDelete:
			resp.Code, resp.Err = errToCode(sess.Delete(req.Path, req.Version))
		case opExists:
			resp.Bool = sess.Exists(req.Path)
		case opChildren:
			names, err := sess.Children(req.Path)
			resp.Names = names
			resp.Code, resp.Err = errToCode(err)
		case opWatch, opWatchChildren:
			var events <-chan Event
			var cancel func()
			if req.Op == opWatch {
				events, cancel = sess.Watch(req.Path)
			} else {
				events, cancel = sess.WatchChildren(req.Path)
			}
			id := req.WatchID
			st := &watchState{cancel: cancel, done: make(chan struct{})}
			watchMu.Lock()
			watches[id] = st
			watchMu.Unlock()
			go func() {
				defer close(st.done)
				for ev := range events {
					if w.send(wireServerMsg{Event: &wireEvent{WatchID: id, Type: ev.Type, Path: ev.Path}}) != nil {
						// Writer broken: the read loop will notice the dead
						// connection and tear the session down; drain so
						// cancel() can close the channel.
						for range events {
						}
						return
					}
				}
			}()
			resp.WatchID = id
		case opUnwatch:
			watchMu.Lock()
			st := watches[req.WatchID]
			delete(watches, req.WatchID)
			watchMu.Unlock()
			if st != nil {
				st.cancel()
				<-st.done
			}
		default:
			resp.Code, resp.Err = wireErrOther, "unknown op"
		}
		if w.send(wireServerMsg{Resp: &resp}) != nil {
			return
		}
	}
}
