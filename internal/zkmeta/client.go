package zkmeta

// Client is the session-scoped metadata API. *Session implements it against
// the in-process store; *RemoteSession implements it over the framed TCP
// protocol of Serve/Dial. Every component of the cluster (helix, controller,
// broker, server) talks to the metadata substrate exclusively through this
// interface, so a process can run against a local store or a shared remote
// endpoint without knowing which.
type Client interface {
	// Create adds a persistent node; the parent must exist.
	Create(path string, data []byte) error
	// CreateEphemeral adds a node that disappears when the session ends —
	// for remote sessions, when the TCP connection drops (the kill -9 case).
	CreateEphemeral(path string, data []byte) error
	// CreateAll creates the node and any missing ancestors (persistent).
	CreateAll(path string, data []byte) error
	// Get returns a node's data and version.
	Get(path string) ([]byte, int, error)
	// Set replaces a node's data with an optional version check (-1 = any).
	Set(path string, data []byte, expectedVersion int) (int, error)
	// Delete removes a leaf node with an optional version check (-1 = any).
	Delete(path string, expectedVersion int) error
	// Exists reports whether a node exists.
	Exists(path string) bool
	// Children returns the sorted child names of a node.
	Children(path string) ([]string, error)
	// Watch subscribes to created/changed/deleted events for a path.
	Watch(path string) (<-chan Event, func())
	// WatchChildren subscribes to child membership changes of a path.
	WatchChildren(path string) (<-chan Event, func())
	// OnExpire registers fn to run when the session closes or expires.
	OnExpire(fn func())
	// Expired reports whether the session has been closed or expired.
	Expired() bool
	// Close ends the session, deleting its ephemeral nodes.
	Close()
	// Expire simulates ungraceful session expiry.
	Expire()
}

// Endpoint mints metadata sessions: the *Store of an in-process cluster, or
// a *Remote pointing at a shared TCP endpoint.
type Endpoint interface {
	NewClient() Client
}

// NewClient implements Endpoint over the in-process store.
func (s *Store) NewClient() Client { return s.NewSession() }

// Compile-time checks that both session kinds satisfy Client.
var (
	_ Client   = (*Session)(nil)
	_ Endpoint = (*Store)(nil)
)
