package zkmeta

import (
	"errors"
	"net"
	"testing"
	"time"
)

// startRemote serves a fresh store on loopback and returns a Remote endpoint
// for it.
func startRemote(t *testing.T) (*Store, *Remote) {
	t.Helper()
	store := NewStore()
	srv := NewTCPServer(store)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return store, NewRemote(lis.Addr().String())
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRemoteSessionBasicOps(t *testing.T) {
	_, remote := startRemote(t)
	c := remote.NewClient()
	defer c.Close()

	if err := c.Create("/a", []byte("one")); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.Create("/a", nil); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("dup create: want ErrNodeExists, got %v", err)
	}
	if err := c.Create("/missing/child", nil); !errors.Is(err, ErrNoParent) {
		t.Fatalf("orphan create: want ErrNoParent, got %v", err)
	}
	data, version, err := c.Get("/a")
	if err != nil || string(data) != "one" || version != 0 {
		t.Fatalf("get: %q v%d err=%v", data, version, err)
	}
	if _, err := c.Set("/a", []byte("two"), 7); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale set: want ErrBadVersion, got %v", err)
	}
	v, err := c.Set("/a", []byte("two"), 0)
	if err != nil || v != 1 {
		t.Fatalf("set: v%d err=%v", v, err)
	}
	if err := c.CreateAll("/x/y/z", []byte("deep")); err != nil {
		t.Fatalf("createAll: %v", err)
	}
	names, err := c.Children("/x")
	if err != nil || len(names) != 1 || names[0] != "y" {
		t.Fatalf("children: %v err=%v", names, err)
	}
	if !c.Exists("/x/y/z") || c.Exists("/nope") {
		t.Fatal("exists mismatch")
	}
	if err := c.Delete("/x", -1); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty: want ErrNotEmpty, got %v", err)
	}
	if err := c.Delete("/x/y/z", -1); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, _, err := c.Get("/x/y/z"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("get deleted: want ErrNoNode, got %v", err)
	}
}

func TestRemoteSessionWatches(t *testing.T) {
	store, remote := startRemote(t)
	c := remote.NewClient()
	defer c.Close()

	events, cancel := c.Watch("/w")
	defer cancel()
	kids, cancelKids := c.WatchChildren("/")
	defer cancelKids()

	// Mutate through a direct store session: the remote watcher must see it.
	other := store.NewSession()
	defer other.Close()
	if err := other.Create("/w", []byte("v")); err != nil {
		t.Fatalf("create: %v", err)
	}
	select {
	case ev := <-events:
		if ev.Type != EventCreated || ev.Path != "/w" {
			t.Fatalf("want created /w, got %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no create event")
	}
	select {
	case ev := <-kids:
		if ev.Type != EventChildrenChanged {
			t.Fatalf("want childrenChanged, got %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no children event")
	}

	// After cancel, further mutations must not arrive (channel closes).
	cancel()
	if _, err := other.Set("/w", []byte("v2"), -1); err != nil {
		t.Fatalf("set: %v", err)
	}
	for ev := range events {
		if ev.Type == EventDataChanged {
			t.Fatal("event after cancel")
		}
	}
}

func TestRemoteEphemeralDiesWithConnection(t *testing.T) {
	store, remote := startRemote(t)
	c := remote.NewClient()
	if err := c.CreateEphemeral("/live", []byte("me")); err != nil {
		t.Fatalf("create ephemeral: %v", err)
	}

	observer := store.NewSession()
	defer observer.Close()
	if !observer.Exists("/live") {
		t.Fatal("ephemeral not visible")
	}

	// Drop the connection without a graceful close: the server-side session
	// must expire and delete the ephemeral (the kill -9 model).
	c.(*RemoteSession).conn.Close()
	waitFor(t, "ephemeral removal", func() bool { return !observer.Exists("/live") })

	if !c.Expired() {
		// The read loop notices the dead conn asynchronously.
		waitFor(t, "client expiry", c.Expired)
	}
	if err := c.Create("/after", nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("op after drop: want ErrSessionClosed, got %v", err)
	}
}

func TestRemoteOnExpireFires(t *testing.T) {
	_, remote := startRemote(t)
	c := remote.NewClient()
	fired := make(chan struct{})
	c.OnExpire(func() { close(fired) })
	c.Close()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("OnExpire did not fire")
	}
	// Registration after expiry is a no-op (matching local sessions): a
	// reconnect callback must not fire recursively against a dead endpoint.
	c.OnExpire(func() { t.Error("late OnExpire fired") })
	time.Sleep(20 * time.Millisecond)
}

func TestRemoteDialFailureYieldsExpiredSession(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := lis.Addr().String()
	lis.Close()

	r := NewRemote(addr)
	r.DialTimeout = 500 * time.Millisecond
	c := r.NewClient()
	if !c.Expired() {
		t.Fatal("want expired session on dial failure")
	}
	if err := c.Create("/a", nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("want ErrSessionClosed, got %v", err)
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	_, remote := startRemote(t)
	const n = 8
	done := make(chan error, n)
	root := remote.NewClient()
	defer root.Close()
	if err := root.Create("/c", nil); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < n; i++ {
		go func(i int) {
			c := remote.NewClient()
			defer c.Close()
			path := "/c/n" + string(rune('a'+i))
			for j := 0; j < 50; j++ {
				if err := c.CreateAll(path+"/x", []byte{byte(j)}); err != nil {
					done <- err
					return
				}
				if err := c.Delete(path+"/x", -1); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
}
