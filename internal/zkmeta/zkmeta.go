// Package zkmeta is the Zookeeper substrate: an in-memory hierarchical
// metadata store with versioned compare-and-set writes, one-shot-free
// (persistent) watches, ephemeral nodes and session expiry. Pinot stores all
// cluster state, segment assignment and metadata here (paper section 3.2),
// and Helix-style cluster management is built on its watch + ephemeral
// primitives.
package zkmeta

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by store operations.
var (
	ErrNoNode        = errors.New("zkmeta: node does not exist")
	ErrNodeExists    = errors.New("zkmeta: node already exists")
	ErrBadVersion    = errors.New("zkmeta: version mismatch")
	ErrNotEmpty      = errors.New("zkmeta: node has children")
	ErrNoParent      = errors.New("zkmeta: parent node does not exist")
	ErrSessionClosed = errors.New("zkmeta: session closed")
)

// EventType describes a watch notification.
type EventType uint8

// Watch event types.
const (
	EventCreated EventType = iota
	EventDataChanged
	EventDeleted
	EventChildrenChanged
)

func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDataChanged:
		return "dataChanged"
	case EventDeleted:
		return "deleted"
	case EventChildrenChanged:
		return "childrenChanged"
	}
	return "unknown"
}

// Event is a watch notification.
type Event struct {
	Type EventType
	Path string
}

type node struct {
	data      []byte
	version   int
	children  map[string]*node
	ephemeral *Session // owner session for ephemeral nodes, nil otherwise
}

type watcher struct {
	ch       chan Event
	children bool // fires on child membership changes of Path
	path     string
	closed   bool
}

// Store is the metadata tree shared by all sessions.
type Store struct {
	mu       sync.Mutex
	root     *node
	watchers map[string][]*watcher // path -> watchers
	sessions map[*Session]struct{}
}

// NewStore returns an empty store with a root node "/".
func NewStore() *Store {
	return &Store{
		root:     &node{children: map[string]*node{}},
		watchers: map[string][]*watcher{},
		sessions: map[*Session]struct{}{},
	}
}

// NewSession opens a session. Ephemeral nodes created through it are removed
// when the session closes or expires.
func (s *Store) NewSession() *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := &Session{store: s, ephemerals: map[string]struct{}{}}
	s.sessions[sess] = struct{}{}
	return sess
}

func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("zkmeta: path %q must be absolute", path)
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("zkmeta: path %q has empty component", path)
		}
	}
	return parts, nil
}

func parentPath(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// locked helpers

func (s *Store) lookup(path string) (*node, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	n := s.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil, ErrNoNode
		}
		n = child
	}
	return n, nil
}

func (s *Store) notify(path string, t EventType) {
	for _, w := range s.watchers[path] {
		if !w.closed && !w.children {
			select {
			case w.ch <- Event{Type: t, Path: path}:
			default: // drop on overflow; watchers must re-read state anyway
			}
		}
	}
}

func (s *Store) notifyChildren(parent string) {
	for _, w := range s.watchers[parent] {
		if !w.closed && w.children {
			select {
			case w.ch <- Event{Type: EventChildrenChanged, Path: parent}:
			default:
			}
		}
	}
}

func (s *Store) createLocked(sess *Session, path string, data []byte, ephemeral bool) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return ErrNodeExists
	}
	n := s.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := n.children[p]
		if !ok {
			return ErrNoParent
		}
		n = child
	}
	name := parts[len(parts)-1]
	if _, exists := n.children[name]; exists {
		return ErrNodeExists
	}
	nn := &node{data: append([]byte(nil), data...), children: map[string]*node{}}
	if ephemeral {
		nn.ephemeral = sess
		sess.ephemerals[path] = struct{}{}
	}
	n.children[name] = nn
	s.notify(path, EventCreated)
	s.notifyChildren(parentPath(path))
	return nil
}

func (s *Store) deleteLocked(path string, expectedVersion int) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return errors.New("zkmeta: cannot delete root")
	}
	parent := s.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := parent.children[p]
		if !ok {
			return ErrNoNode
		}
		parent = child
	}
	name := parts[len(parts)-1]
	n, ok := parent.children[name]
	if !ok {
		return ErrNoNode
	}
	if expectedVersion >= 0 && n.version != expectedVersion {
		return ErrBadVersion
	}
	if len(n.children) > 0 {
		return ErrNotEmpty
	}
	if n.ephemeral != nil {
		delete(n.ephemeral.ephemerals, path)
	}
	delete(parent.children, name)
	s.notify(path, EventDeleted)
	s.notifyChildren(parentPath(path))
	return nil
}

// Session is one client's connection to the store.
type Session struct {
	store      *Store
	ephemerals map[string]struct{}
	closed     bool
	expireCbs  []func()
}

func (sess *Session) check() error {
	if sess.closed {
		return ErrSessionClosed
	}
	return nil
}

// Create adds a node. The parent must exist.
func (sess *Session) Create(path string, data []byte) error {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	if err := sess.check(); err != nil {
		return err
	}
	return sess.store.createLocked(sess, path, data, false)
}

// CreateEphemeral adds a node that disappears when the session ends.
func (sess *Session) CreateEphemeral(path string, data []byte) error {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	if err := sess.check(); err != nil {
		return err
	}
	return sess.store.createLocked(sess, path, data, true)
}

// CreateAll creates the node and any missing ancestors (persistent).
func (sess *Session) CreateAll(path string, data []byte) error {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	if err := sess.check(); err != nil {
		return err
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for i, p := range parts {
		cur += "/" + p
		var d []byte
		if i == len(parts)-1 {
			d = data
		}
		if err := sess.store.createLocked(sess, cur, d, false); err != nil && !errors.Is(err, ErrNodeExists) {
			return err
		} else if i == len(parts)-1 && errors.Is(err, ErrNodeExists) {
			return err
		}
	}
	return nil
}

// Get returns a node's data and version.
func (sess *Session) Get(path string) ([]byte, int, error) {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	if err := sess.check(); err != nil {
		return nil, 0, err
	}
	n, err := sess.store.lookup(path)
	if err != nil {
		return nil, 0, err
	}
	return append([]byte(nil), n.data...), n.version, nil
}

// Set replaces a node's data. expectedVersion -1 skips the version check;
// otherwise the write fails with ErrBadVersion unless it matches.
func (sess *Session) Set(path string, data []byte, expectedVersion int) (int, error) {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	if err := sess.check(); err != nil {
		return 0, err
	}
	n, err := sess.store.lookup(path)
	if err != nil {
		return 0, err
	}
	if expectedVersion >= 0 && n.version != expectedVersion {
		return 0, ErrBadVersion
	}
	n.data = append([]byte(nil), data...)
	n.version++
	sess.store.notify(path, EventDataChanged)
	return n.version, nil
}

// Delete removes a leaf node, with optional version check (-1 = any).
func (sess *Session) Delete(path string, expectedVersion int) error {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	if err := sess.check(); err != nil {
		return err
	}
	return sess.store.deleteLocked(path, expectedVersion)
}

// Exists reports whether a node exists.
func (sess *Session) Exists(path string) bool {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	if sess.closed {
		return false
	}
	_, err := sess.store.lookup(path)
	return err == nil
}

// Children returns the sorted child names of a node.
func (sess *Session) Children(path string) ([]string, error) {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	if err := sess.check(); err != nil {
		return nil, err
	}
	n, err := sess.store.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Watch subscribes to created/changed/deleted events for a path. The watch
// persists until Unwatch or session close. Events may be dropped under
// extreme load; consumers must treat events as hints and re-read state.
func (sess *Session) Watch(path string) (<-chan Event, func()) {
	return sess.watch(path, false)
}

// WatchChildren subscribes to child membership changes of a path.
func (sess *Session) WatchChildren(path string) (<-chan Event, func()) {
	return sess.watch(path, true)
}

func (sess *Session) watch(path string, children bool) (<-chan Event, func()) {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	w := &watcher{ch: make(chan Event, 4096), children: children, path: path}
	sess.store.watchers[path] = append(sess.store.watchers[path], w)
	cancel := func() {
		sess.store.mu.Lock()
		defer sess.store.mu.Unlock()
		if w.closed {
			return
		}
		w.closed = true
		ws := sess.store.watchers[path]
		for i, x := range ws {
			if x == w {
				sess.store.watchers[path] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		close(w.ch)
	}
	return w.ch, cancel
}

// OnExpire registers fn to run when the session closes or expires. Callbacks
// fire after the session's ephemeral nodes have been removed (so watches on
// them have already seen the deletions) and outside the store lock, so they
// may open a new session. This is the chaos hook components use to model
// Zookeeper reconnection: step down, open a fresh session, re-contend.
func (sess *Session) OnExpire(fn func()) {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	sess.expireCbs = append(sess.expireCbs, fn)
}

// Expired reports whether the session has been closed or expired.
func (sess *Session) Expired() bool {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	return sess.closed
}

// Close ends the session: ephemeral nodes it owns are deleted (firing
// watches) and further operations fail. Expire is an alias used by failure
// tests.
func (sess *Session) Close() {
	sess.store.mu.Lock()
	if sess.closed {
		sess.store.mu.Unlock()
		return
	}
	sess.closed = true
	paths := make([]string, 0, len(sess.ephemerals))
	for p := range sess.ephemerals {
		paths = append(paths, p)
	}
	// Deepest first so parents empty out.
	sort.Slice(paths, func(i, j int) bool { return len(paths[i]) > len(paths[j]) })
	for _, p := range paths {
		_ = sess.store.deleteLocked(p, -1)
	}
	delete(sess.store.sessions, sess)
	cbs := sess.expireCbs
	sess.expireCbs = nil
	sess.store.mu.Unlock()
	for _, fn := range cbs {
		fn()
	}
}

// Expire simulates session expiry (identical to Close).
func (sess *Session) Expire() { sess.Close() }
