package segment

import (
	"fmt"

	"pinot/internal/bitmap"
)

// DocRange is a half-open [Start, End) range of document ids.
type DocRange struct {
	Start int
	End   int
}

// ColumnReader is the uniform read interface the query engine and star-tree
// builder use for both immutable and mutable (realtime) columns.
type ColumnReader interface {
	// Spec returns the column's field spec.
	Spec() FieldSpec
	// NumDocs returns the number of documents in the column.
	NumDocs() int
	// HasDictionary reports whether the column is dictionary-encoded
	// (dimensions and time columns are; raw metrics are not).
	HasDictionary() bool
	// Cardinality returns the dictionary size, or 0 without a dictionary.
	Cardinality() int
	// DictSorted reports whether ascending dict ids are ascending values.
	DictSorted() bool
	// Value maps a dict id to its value.
	Value(id int) any
	// IndexOf maps a canonical value to its dict id.
	IndexOf(v any) (int, bool)
	// Range returns the dict-id interval [lo, hi) for a value range.
	// Only valid when DictSorted reports true.
	Range(lower, upper any, loIncl, hiIncl bool) (int, int)
	// DictID returns the dict id at a document (single-value columns).
	DictID(doc int) int
	// DictIDsMV appends the dict ids at a document to buf (multi-value).
	DictIDsMV(doc int, buf []int) []int
	// HasInverted reports whether an inverted index is available.
	HasInverted() bool
	// Inverted returns the posting bitmap for a dict id.
	Inverted(id int) *bitmap.Bitmap
	// IsSorted reports whether the column is physically sorted, enabling
	// the contiguous-range fast path of paper section 4.2.
	IsSorted() bool
	// DocIDRange returns the contiguous doc range holding a dict id.
	// Only valid when IsSorted reports true.
	DocIDRange(id int) (int, int)
	// Long returns the raw metric value at a document as int64.
	Long(doc int) int64
	// Double returns the raw metric value at a document as float64.
	Double(doc int) float64
	// DictIDs fills dst with the dict ids at the given ascending doc
	// positions, the block-at-a-time counterpart of DictID. len(dst) must
	// equal len(docs).
	DictIDs(docs []int, dst []uint32)
	// Longs fills dst with the raw metric values at the given ascending doc
	// positions. len(dst) must equal len(docs).
	Longs(docs []int, dst []int64)
	// Doubles fills dst with the raw metric values at the given ascending
	// doc positions. len(dst) must equal len(docs).
	Doubles(docs []int, dst []float64)
	// MinValue and MaxValue return column statistics.
	MinValue() any
	MaxValue() any
}

// Reader is the uniform read interface over immutable and mutable segments.
type Reader interface {
	Name() string
	Schema() *Schema
	NumDocs() int
	// Column returns the named column, or nil if the segment has none.
	Column(name string) ColumnReader
}

// Column is an immutable column: dictionary + forward index for dimensions,
// raw storage for metrics, plus optional inverted and sorted indexes.
type Column struct {
	spec         FieldSpec
	numDocs      int
	dict         Dictionary
	fwd          *SVForwardIndex
	mv           *MVForwardIndex
	metric       MetricColumn
	inverted     []*bitmap.Bitmap
	sortedRanges []DocRange
}

// Spec returns the column's field spec.
func (c *Column) Spec() FieldSpec { return c.spec }

// NumDocs returns the document count.
func (c *Column) NumDocs() int { return c.numDocs }

// HasDictionary reports whether the column is dictionary-encoded.
func (c *Column) HasDictionary() bool { return c.dict != nil }

// Cardinality returns the dictionary size, or 0 for raw columns.
func (c *Column) Cardinality() int {
	if c.dict == nil {
		return 0
	}
	return c.dict.Len()
}

// DictSorted reports whether the dictionary is value-sorted (always true for
// immutable columns).
func (c *Column) DictSorted() bool { return c.dict != nil && c.dict.Sorted() }

// Value maps a dict id to its value.
func (c *Column) Value(id int) any { return c.dict.Value(id) }

// IndexOf maps a canonical value to its dict id.
func (c *Column) IndexOf(v any) (int, bool) { return c.dict.IndexOf(v) }

// Range returns the dict-id interval [lo, hi) matching a value range.
func (c *Column) Range(lower, upper any, loIncl, hiIncl bool) (int, int) {
	return c.dict.Range(lower, upper, loIncl, hiIncl)
}

// DictID returns the dict id at a document.
func (c *Column) DictID(doc int) int { return c.fwd.Get(doc) }

// DictIDsMV appends the dict ids at a document to buf.
func (c *Column) DictIDsMV(doc int, buf []int) []int { return c.mv.Get(doc, buf) }

// HasInverted reports whether the column has an inverted index.
func (c *Column) HasInverted() bool { return c.inverted != nil }

// Inverted returns the posting list for a dict id.
func (c *Column) Inverted(id int) *bitmap.Bitmap { return c.inverted[id] }

// IsSorted reports whether the column is physically sorted.
func (c *Column) IsSorted() bool { return c.sortedRanges != nil }

// DocIDRange returns the contiguous document range for a dict id of a
// physically sorted column.
func (c *Column) DocIDRange(id int) (int, int) {
	r := c.sortedRanges[id]
	return r.Start, r.End
}

// Long returns the raw metric value as int64.
func (c *Column) Long(doc int) int64 { return c.metric.Long(doc) }

// Double returns the raw metric value as float64.
func (c *Column) Double(doc int) float64 { return c.metric.Double(doc) }

// DictIDs fills dst with the dict ids at the given ascending doc positions.
// Contiguous runs hit the packed bulk-unpack kernel.
func (c *Column) DictIDs(docs []int, dst []uint32) {
	if docsContiguous(docs) {
		c.fwd.GetBlock(docs[0], dst[:len(docs)])
		return
	}
	for i, d := range docs {
		dst[i] = uint32(c.fwd.Get(d))
	}
}

// Longs fills dst with the raw metric values at the given doc positions.
func (c *Column) Longs(docs []int, dst []int64) { c.metric.Longs(docs, dst) }

// Doubles fills dst with the raw metric values at the given doc positions.
func (c *Column) Doubles(docs []int, dst []float64) { c.metric.Doubles(docs, dst) }

// MinValue returns the smallest value in the column.
func (c *Column) MinValue() any {
	if c.dict != nil {
		return c.dict.Min()
	}
	if c.metric.Type() == TypeLong {
		return c.metric.MinLong()
	}
	return c.metric.MinDouble()
}

// MaxValue returns the largest value in the column.
func (c *Column) MaxValue() any {
	if c.dict != nil {
		return c.dict.Max()
	}
	if c.metric.Type() == TypeLong {
		return c.metric.MaxLong()
	}
	return c.metric.MaxDouble()
}

// BitsPerValue returns the forward-index packed width (0 for raw columns).
func (c *Column) BitsPerValue() int {
	switch {
	case c.fwd != nil:
		return c.fwd.BitsPerValue()
	case c.mv != nil:
		return int(c.mv.packed.width)
	}
	return 0
}

// buildInverted constructs the inverted index from the forward index.
func (c *Column) buildInverted() {
	postings := make([]*bitmap.Bitmap, c.dict.Len())
	for i := range postings {
		postings[i] = bitmap.New()
	}
	if c.spec.SingleValue {
		for doc := 0; doc < c.numDocs; doc++ {
			postings[c.fwd.Get(doc)].Add(uint32(doc))
		}
	} else {
		var buf []int
		for doc := 0; doc < c.numDocs; doc++ {
			buf = c.mv.Get(doc, buf[:0])
			for _, id := range buf {
				postings[id].Add(uint32(doc))
			}
		}
	}
	c.inverted = postings
}

// detectSortedRanges returns per-dict-id doc ranges if the single-value
// column is physically sorted (non-decreasing dict ids in doc order), else
// nil.
func (c *Column) detectSortedRanges() []DocRange {
	if c.fwd == nil || c.dict == nil {
		return nil
	}
	ranges := make([]DocRange, c.dict.Len())
	for i := range ranges {
		ranges[i] = DocRange{-1, -1}
	}
	prev := -1
	for doc := 0; doc < c.numDocs; doc++ {
		id := c.fwd.Get(doc)
		if id < prev {
			return nil
		}
		if id != prev {
			ranges[id].Start = doc
		}
		ranges[id].End = doc + 1
		prev = id
	}
	return ranges
}

// ColumnMetadata summarizes a column for the segment metadata file.
type ColumnMetadata struct {
	Name          string    `json:"name"`
	Type          DataType  `json:"type"`
	Kind          FieldKind `json:"kind"`
	SingleValue   bool      `json:"singleValue"`
	Cardinality   int       `json:"cardinality"`
	Sorted        bool      `json:"sorted"`
	HasDictionary bool      `json:"hasDictionary"`
	HasInverted   bool      `json:"hasInverted"`
	BitsPerValue  int       `json:"bitsPerValue"`
	// MinValue and MaxValue are display-oriented renderings; pruning and
	// metadata-only answers use the typed Zone instead, which survives the
	// JSON round-trip without losing the value type.
	MinValue string `json:"minValue"`
	MaxValue string `json:"maxValue"`
	// Zone holds the typed min/max plus the optional dictionary bloom
	// filter used for segment pruning without touching column data.
	Zone *ZoneMap `json:"zone,omitempty"`
}

// Metadata describes a segment: identity, schema, document count, time range
// and per-column statistics.
type Metadata struct {
	Name       string           `json:"name"`
	Table      string           `json:"table"`
	Schema     *Schema          `json:"schema"`
	NumDocs    int              `json:"numDocs"`
	SortColumn string           `json:"sortColumn,omitempty"`
	TimeColumn string           `json:"timeColumn,omitempty"`
	MinTime    int64            `json:"minTime"`
	MaxTime    int64            `json:"maxTime"`
	Realtime   bool             `json:"realtime"`
	Columns    []ColumnMetadata `json:"columns"`
}

// Segment is an immutable collection of records in columnar form.
type Segment struct {
	meta         Metadata
	columns      map[string]*Column
	starTreeData []byte
}

// Name returns the segment name.
func (s *Segment) Name() string { return s.meta.Name }

// Schema returns the segment's schema.
func (s *Segment) Schema() *Schema { return s.meta.Schema }

// NumDocs returns the number of records.
func (s *Segment) NumDocs() int { return s.meta.NumDocs }

// Metadata returns a copy of the segment metadata.
func (s *Segment) Metadata() Metadata { return s.meta }

// Column returns the named column, or nil.
func (s *Segment) Column(name string) ColumnReader {
	if c, ok := s.columns[name]; ok {
		return c
	}
	return nil
}

// column returns the concrete column for internal use.
func (s *Segment) column(name string) *Column { return s.columns[name] }

// ColumnMeta returns the persisted metadata of a column, or nil if the
// segment has none. The pruning tiers read zone maps through it so a pruning
// decision never touches forward indexes or dictionaries.
func (s *Segment) ColumnMeta(name string) *ColumnMetadata {
	for i := range s.meta.Columns {
		if s.meta.Columns[i].Name == name {
			return &s.meta.Columns[i]
		}
	}
	return nil
}

// AddInvertedIndex builds an inverted index for a column on demand, the
// reindex-on-the-fly capability described in paper sections 3.2 and 5.2.
// It is idempotent.
func (s *Segment) AddInvertedIndex(name string) error {
	c, ok := s.columns[name]
	if !ok {
		return fmt.Errorf("segment %s: no column %q", s.meta.Name, name)
	}
	if c.dict == nil {
		return fmt.Errorf("segment %s: column %q has no dictionary", s.meta.Name, name)
	}
	if c.inverted != nil {
		return nil
	}
	c.buildInverted()
	for i := range s.meta.Columns {
		if s.meta.Columns[i].Name == name {
			s.meta.Columns[i].HasInverted = true
		}
	}
	return nil
}

// StarTreeData returns the serialized star-tree index bytes, or nil.
func (s *Segment) StarTreeData() []byte { return s.starTreeData }

// SetStarTreeData attaches serialized star-tree index bytes to the segment.
func (s *Segment) SetStarTreeData(b []byte) { s.starTreeData = b }

// SortedOn reports whether the named column is physically sorted.
func (s *Segment) SortedOn(name string) bool {
	c, ok := s.columns[name]
	return ok && c.IsSorted()
}

// TimeRange returns the [min, max] values of the time column, if any.
func (s *Segment) TimeRange() (min, max int64, ok bool) {
	if s.meta.TimeColumn == "" {
		return 0, 0, false
	}
	return s.meta.MinTime, s.meta.MaxTime, true
}

// ReadRow reconstructs the canonical row at a document position of any
// segment reader, used by minion rewrite tasks.
func ReadRow(r Reader, doc int) Row {
	schema := r.Schema()
	row := make(Row, len(schema.Fields))
	var buf []int
	for i, f := range schema.Fields {
		c := r.Column(f.Name)
		switch {
		case f.Kind == Metric && f.Type.Integral():
			row[i] = c.Long(doc)
		case f.Kind == Metric:
			row[i] = c.Double(doc)
		case f.SingleValue:
			row[i] = c.Value(c.DictID(doc))
		default:
			buf = c.DictIDsMV(doc, buf[:0])
			switch {
			case f.Type.Integral():
				vals := make([]int64, len(buf))
				for j, id := range buf {
					vals[j] = c.Value(id).(int64)
				}
				row[i] = vals
			case f.Type.Numeric():
				vals := make([]float64, len(buf))
				for j, id := range buf {
					vals[j] = c.Value(id).(float64)
				}
				row[i] = vals
			case f.Type == TypeBoolean:
				vals := make([]bool, len(buf))
				for j, id := range buf {
					vals[j] = c.Value(id).(bool)
				}
				row[i] = vals
			default:
				vals := make([]string, len(buf))
				for j, id := range buf {
					vals[j] = c.Value(id).(string)
				}
				row[i] = vals
			}
		}
	}
	return row
}

// defaultColumn surfaces a schema-evolution column on a segment that
// predates it: every document has the field's default value.
type defaultColumn struct {
	spec    FieldSpec
	numDocs int
	value   any
}

// NewDefaultColumn returns a virtual column where every document holds the
// field's default value.
func NewDefaultColumn(spec FieldSpec, numDocs int) ColumnReader {
	v := DefaultValue(spec)
	if !spec.SingleValue {
		switch xs := v.(type) {
		case []int64:
			v = xs[0]
		case []float64:
			v = xs[0]
		case []bool:
			v = xs[0]
		case []string:
			v = xs[0]
		}
	}
	return &defaultColumn{spec: spec, numDocs: numDocs, value: v}
}

func (c *defaultColumn) Spec() FieldSpec     { return c.spec }
func (c *defaultColumn) NumDocs() int        { return c.numDocs }
func (c *defaultColumn) HasDictionary() bool { return c.spec.Kind != Metric }
func (c *defaultColumn) Cardinality() int {
	if c.spec.Kind == Metric {
		return 0
	}
	return 1
}
func (c *defaultColumn) DictSorted() bool { return true }
func (c *defaultColumn) Value(id int) any { return c.value }
func (c *defaultColumn) IndexOf(v any) (int, bool) {
	if v == c.value {
		return 0, true
	}
	return 0, false
}
func (c *defaultColumn) Range(lower, upper any, loIncl, hiIncl bool) (int, int) {
	inLower := lower == nil || CompareValues(c.value, lower) > 0 || (loIncl && CompareValues(c.value, lower) == 0)
	inUpper := upper == nil || CompareValues(c.value, upper) < 0 || (hiIncl && CompareValues(c.value, upper) == 0)
	if inLower && inUpper {
		return 0, 1
	}
	return 0, 0
}
func (c *defaultColumn) DictID(doc int) int                 { return 0 }
func (c *defaultColumn) DictIDsMV(doc int, buf []int) []int { return append(buf, 0) }
func (c *defaultColumn) HasInverted() bool                  { return false }
func (c *defaultColumn) Inverted(id int) *bitmap.Bitmap     { return nil }
func (c *defaultColumn) IsSorted() bool                     { return true }
func (c *defaultColumn) DocIDRange(id int) (int, int)       { return 0, c.numDocs }
func (c *defaultColumn) Long(doc int) int64 {
	if v, ok := c.value.(int64); ok {
		return v
	}
	return int64(c.value.(float64))
}
func (c *defaultColumn) Double(doc int) float64 {
	if v, ok := c.value.(float64); ok {
		return v
	}
	return float64(c.value.(int64))
}
func (c *defaultColumn) DictIDs(docs []int, dst []uint32) {
	for i := range docs {
		dst[i] = 0
	}
}
func (c *defaultColumn) Longs(docs []int, dst []int64) {
	v := c.Long(0)
	for i := range docs {
		dst[i] = v
	}
}
func (c *defaultColumn) Doubles(docs []int, dst []float64) {
	v := c.Double(0)
	for i := range docs {
		dst[i] = v
	}
}
func (c *defaultColumn) MinValue() any { return c.value }
func (c *defaultColumn) MaxValue() any { return c.value }
