package segment

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// packedInts is a fixed-bit-width packed integer array, the storage layout
// for dictionary-id forward indexes. Width is chosen from the column
// cardinality so a column with 1000 distinct values costs 10 bits per row.
type packedInts struct {
	width uint8 // bits per value, 1..32
	n     int
	words []uint64
}

// bitsNeeded returns the number of bits required to represent values in
// [0, maxValue].
func bitsNeeded(maxValue int) uint8 {
	if maxValue <= 0 {
		return 1
	}
	return uint8(bits.Len64(uint64(maxValue)))
}

func newPackedInts(n int, width uint8) *packedInts {
	if width == 0 || width > 32 {
		panic(fmt.Sprintf("segment: invalid packed width %d", width))
	}
	words := make([]uint64, (n*int(width)+63)/64)
	return &packedInts{width: width, n: n, words: words}
}

func (p *packedInts) set(i int, v uint32) {
	bitPos := i * int(p.width)
	w, off := bitPos>>6, uint(bitPos&63)
	p.words[w] |= uint64(v) << off
	if spill := off + uint(p.width); spill > 64 {
		p.words[w+1] |= uint64(v) >> (64 - off)
	}
}

func (p *packedInts) get(i int) uint32 {
	bitPos := i * int(p.width)
	w, off := bitPos>>6, uint(bitPos&63)
	v := p.words[w] >> off
	if spill := off + uint(p.width); spill > 64 {
		v |= p.words[w+1] << (64 - off)
	}
	return uint32(v & (1<<p.width - 1))
}

// getBlock unpacks the len(dst) values starting at position start into dst.
// Unlike per-value get, the cursor walks the word array sequentially, so the
// word index, shift, and spill bookkeeping are amortized across the block.
// Byte-aligned widths take a direct-extraction path; widths that divide 64
// never spill a word boundary and skip the spill checks entirely.
func (p *packedInts) getBlock(start int, dst []uint32) {
	if len(dst) == 0 {
		return
	}
	switch p.width {
	case 8:
		for i := range dst {
			pos := start + i
			dst[i] = uint32(p.words[pos>>3]>>((pos&7)<<3)) & 0xFF
		}
		return
	case 16:
		for i := range dst {
			pos := start + i
			dst[i] = uint32(p.words[pos>>2]>>((pos&3)<<4)) & 0xFFFF
		}
		return
	case 32:
		for i := range dst {
			pos := start + i
			dst[i] = uint32(p.words[pos>>1] >> ((pos & 1) << 5))
		}
		return
	}
	w := uint(p.width)
	mask := uint64(1)<<w - 1
	bitPos := uint64(start) * uint64(w)
	wi := int(bitPos >> 6)
	off := uint(bitPos & 63)
	if 64%w == 0 {
		// Width divides the word size: no value spans a boundary.
		word := p.words[wi] >> off
		rem := (64 - off) / w
		for i := range dst {
			if rem == 0 {
				wi++
				word = p.words[wi]
				rem = 64 / w
			}
			dst[i] = uint32(word & mask)
			word >>= w
			rem--
		}
		return
	}
	word := p.words[wi] >> off
	avail := 64 - off
	for i := range dst {
		if avail >= w {
			dst[i] = uint32(word & mask)
			word >>= w
			avail -= w
			continue
		}
		v := word
		wi++
		next := p.words[wi]
		v |= next << avail
		dst[i] = uint32(v & mask)
		word = next >> (w - avail)
		avail = 64 - (w - avail)
	}
}

func (p *packedInts) writeTo(w io.Writer) error {
	hdr := []any{uint8(p.width), uint64(p.n)}
	for _, h := range hdr {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, p.words)
}

func readPackedInts(r *bytes.Reader) (*packedInts, error) {
	var width uint8
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &width); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if width == 0 || width > 32 {
		return nil, fmt.Errorf("segment: corrupt packed ints width %d", width)
	}
	words := (n*uint64(width) + 63) / 64
	if words*8 > uint64(r.Len()) {
		return nil, fmt.Errorf("segment: corrupt packed ints length %d", n)
	}
	p := newPackedInts(int(n), width)
	if err := binary.Read(r, binary.LittleEndian, p.words); err != nil {
		return nil, err
	}
	return p, nil
}

// SVForwardIndex is a single-value dictionary-id forward index.
type SVForwardIndex struct {
	packed *packedInts
}

// newSVForwardIndex packs the given dict ids with the minimal width for the
// cardinality.
func newSVForwardIndex(ids []int, cardinality int) *SVForwardIndex {
	p := newPackedInts(len(ids), bitsNeeded(cardinality-1))
	for i, id := range ids {
		p.set(i, uint32(id))
	}
	return &SVForwardIndex{packed: p}
}

// Get returns the dict id at a document position.
func (f *SVForwardIndex) Get(doc int) int { return int(f.packed.get(doc)) }

// GetBlock fills dst with the dict ids at positions [start, start+len(dst)),
// amortizing the bit arithmetic of Get across the block.
func (f *SVForwardIndex) GetBlock(start int, dst []uint32) { f.packed.getBlock(start, dst) }

// NumDocs returns the number of documents.
func (f *SVForwardIndex) NumDocs() int { return f.packed.n }

// BitsPerValue returns the packed width, exposed for metadata/stats.
func (f *SVForwardIndex) BitsPerValue() int { return int(f.packed.width) }

func (f *SVForwardIndex) writeTo(w io.Writer) error { return f.packed.writeTo(w) }

func readSVForwardIndex(r *bytes.Reader) (*SVForwardIndex, error) {
	p, err := readPackedInts(r)
	if err != nil {
		return nil, err
	}
	return &SVForwardIndex{packed: p}, nil
}

// MVForwardIndex is a multi-value dictionary-id forward index: an offsets
// array into a packed value stream.
type MVForwardIndex struct {
	offsets []uint32 // len = numDocs+1
	packed  *packedInts
}

func newMVForwardIndex(idLists [][]int, cardinality int) *MVForwardIndex {
	total := 0
	for _, ids := range idLists {
		total += len(ids)
	}
	offsets := make([]uint32, len(idLists)+1)
	p := newPackedInts(total, bitsNeeded(cardinality-1))
	pos := 0
	for i, ids := range idLists {
		offsets[i] = uint32(pos)
		for _, id := range ids {
			p.set(pos, uint32(id))
			pos++
		}
	}
	offsets[len(idLists)] = uint32(pos)
	return &MVForwardIndex{offsets: offsets, packed: p}
}

// Get appends the dict ids of a document to buf and returns it.
func (f *MVForwardIndex) Get(doc int, buf []int) []int {
	start, end := f.offsets[doc], f.offsets[doc+1]
	for i := start; i < end; i++ {
		buf = append(buf, int(f.packed.get(int(i))))
	}
	return buf
}

// NumDocs returns the number of documents.
func (f *MVForwardIndex) NumDocs() int { return len(f.offsets) - 1 }

// validate checks offsets are monotonic, end at the packed stream length,
// and that every packed id is within the dictionary.
func (f *MVForwardIndex) validate(cardinality int) error {
	if len(f.offsets) == 0 {
		return fmt.Errorf("segment: MV index missing offsets")
	}
	for i := 1; i < len(f.offsets); i++ {
		if f.offsets[i] < f.offsets[i-1] {
			return fmt.Errorf("segment: MV offsets not monotonic at %d", i)
		}
	}
	if int(f.offsets[len(f.offsets)-1]) != f.packed.n {
		return fmt.Errorf("segment: MV offsets end at %d, packed stream has %d", f.offsets[len(f.offsets)-1], f.packed.n)
	}
	for i := 0; i < f.packed.n; i++ {
		if int(f.packed.get(i)) >= cardinality {
			return fmt.Errorf("segment: MV entry %d has dict id %d beyond cardinality %d", i, f.packed.get(i), cardinality)
		}
	}
	return nil
}

// MaxEntries returns the largest per-document value count.
func (f *MVForwardIndex) MaxEntries() int {
	max := 0
	for i := 0; i < f.NumDocs(); i++ {
		if n := int(f.offsets[i+1] - f.offsets[i]); n > max {
			max = n
		}
	}
	return max
}

func (f *MVForwardIndex) writeTo(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(f.offsets))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, f.offsets); err != nil {
		return err
	}
	return f.packed.writeTo(w)
}

func readMVForwardIndex(r *bytes.Reader) (*MVForwardIndex, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n*4 > uint64(r.Len()) {
		return nil, fmt.Errorf("segment: corrupt MV offset count %d", n)
	}
	offsets := make([]uint32, n)
	if err := binary.Read(r, binary.LittleEndian, offsets); err != nil {
		return nil, err
	}
	p, err := readPackedInts(r)
	if err != nil {
		return nil, err
	}
	return &MVForwardIndex{offsets: offsets, packed: p}, nil
}

// MetricColumn stores raw (non-dictionary) metric values for fast
// aggregation scans.
type MetricColumn interface {
	Type() DataType
	NumDocs() int
	Long(doc int) int64
	Double(doc int) float64
	// Longs and Doubles fill dst with the values at the given ascending
	// doc positions, the block-at-a-time counterparts of Long and Double.
	Longs(docs []int, dst []int64)
	Doubles(docs []int, dst []float64)
	MinLong() int64
	MaxLong() int64
	MinDouble() float64
	MaxDouble() float64
}

// docsContiguous reports whether an ascending, duplicate-free doc list is a
// gap-free run, enabling sequential block reads.
func docsContiguous(docs []int) bool {
	return len(docs) > 0 && docs[len(docs)-1]-docs[0] == len(docs)-1
}

type longMetricColumn struct {
	values   []int64
	min, max int64
}

func newLongMetricColumn(values []int64) *longMetricColumn {
	c := &longMetricColumn{values: values}
	if len(values) > 0 {
		c.min, c.max = values[0], values[0]
		for _, v := range values[1:] {
			if v < c.min {
				c.min = v
			}
			if v > c.max {
				c.max = v
			}
		}
	}
	return c
}

func (c *longMetricColumn) Type() DataType         { return TypeLong }
func (c *longMetricColumn) NumDocs() int           { return len(c.values) }
func (c *longMetricColumn) Long(doc int) int64     { return c.values[doc] }
func (c *longMetricColumn) Double(doc int) float64 { return float64(c.values[doc]) }
func (c *longMetricColumn) Longs(docs []int, dst []int64) {
	if docsContiguous(docs) {
		copy(dst, c.values[docs[0]:docs[0]+len(docs)])
		return
	}
	for i, d := range docs {
		dst[i] = c.values[d]
	}
}
func (c *longMetricColumn) Doubles(docs []int, dst []float64) {
	for i, d := range docs {
		dst[i] = float64(c.values[d])
	}
}
func (c *longMetricColumn) MinLong() int64     { return c.min }
func (c *longMetricColumn) MaxLong() int64     { return c.max }
func (c *longMetricColumn) MinDouble() float64 { return float64(c.min) }
func (c *longMetricColumn) MaxDouble() float64 { return float64(c.max) }

type doubleMetricColumn struct {
	values   []float64
	min, max float64
}

func newDoubleMetricColumn(values []float64) *doubleMetricColumn {
	c := &doubleMetricColumn{values: values}
	if len(values) > 0 {
		c.min, c.max = values[0], values[0]
		for _, v := range values[1:] {
			if v < c.min {
				c.min = v
			}
			if v > c.max {
				c.max = v
			}
		}
	}
	return c
}

func (c *doubleMetricColumn) Type() DataType         { return TypeDouble }
func (c *doubleMetricColumn) NumDocs() int           { return len(c.values) }
func (c *doubleMetricColumn) Long(doc int) int64     { return int64(c.values[doc]) }
func (c *doubleMetricColumn) Double(doc int) float64 { return c.values[doc] }
func (c *doubleMetricColumn) Longs(docs []int, dst []int64) {
	for i, d := range docs {
		dst[i] = int64(c.values[d])
	}
}
func (c *doubleMetricColumn) Doubles(docs []int, dst []float64) {
	if docsContiguous(docs) {
		copy(dst, c.values[docs[0]:docs[0]+len(docs)])
		return
	}
	for i, d := range docs {
		dst[i] = c.values[d]
	}
}
func (c *doubleMetricColumn) MinLong() int64     { return int64(c.min) }
func (c *doubleMetricColumn) MaxLong() int64     { return int64(c.max) }
func (c *doubleMetricColumn) MinDouble() float64 { return c.min }
func (c *doubleMetricColumn) MaxDouble() float64 { return c.max }

func writeMetricColumn(w io.Writer, m MetricColumn) error {
	if err := binary.Write(w, binary.LittleEndian, uint8(m.Type())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(m.NumDocs())); err != nil {
		return err
	}
	switch c := m.(type) {
	case *longMetricColumn:
		return binary.Write(w, binary.LittleEndian, c.values)
	case *doubleMetricColumn:
		return binary.Write(w, binary.LittleEndian, c.values)
	}
	return fmt.Errorf("segment: unknown metric column type %T", m)
}

func readMetricColumn(r *bytes.Reader) (MetricColumn, error) {
	var t uint8
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &t); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n*8 > uint64(r.Len()) {
		return nil, fmt.Errorf("segment: corrupt metric column length %d", n)
	}
	switch DataType(t) {
	case TypeLong:
		values := make([]int64, n)
		if err := binary.Read(r, binary.LittleEndian, values); err != nil {
			return nil, err
		}
		return newLongMetricColumn(values), nil
	case TypeDouble:
		values := make([]float64, n)
		if err := binary.Read(r, binary.LittleEndian, values); err != nil {
			return nil, err
		}
		return newDoubleMetricColumn(values), nil
	}
	return nil, fmt.Errorf("segment: unknown metric column type byte %d", t)
}
