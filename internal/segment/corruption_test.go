package segment

import (
	"math/rand"
	"testing"
)

// TestUnmarshalNeverPanicsOnCorruptBlobs feeds truncated and bit-flipped
// segment blobs to Unmarshal: every outcome must be a clean error (or, for
// benign flips in value payloads, a loadable segment) — never a panic. The
// controller relies on this to reject bad uploads (paper 3.3.5: "unpacks it
// to ensure its integrity").
func TestUnmarshalNeverPanicsOnCorruptBlobs(t *testing.T) {
	seg := buildTestSegment(t, IndexConfig{SortColumn: "memberId", InvertedColumns: []string{"country"}})
	blob, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	recovered := func(data []byte) (didPanic bool) {
		defer func() {
			if recover() != nil {
				didPanic = true
			}
		}()
		_, _ = Unmarshal(data)
		return false
	}
	// Truncations at every length (sampled for speed on long blobs).
	step := len(blob)/200 + 1
	for n := 0; n < len(blob); n += step {
		if recovered(blob[:n]) {
			t.Fatalf("panic on truncation at %d/%d bytes", n, len(blob))
		}
	}
	// Random single-byte corruptions.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		corrupt := append([]byte(nil), blob...)
		corrupt[r.Intn(len(corrupt))] ^= byte(1 + r.Intn(255))
		if recovered(corrupt) {
			t.Fatalf("panic on corrupted byte (trial %d)", trial)
		}
	}
	// The pristine blob still loads.
	if _, err := Unmarshal(blob); err != nil {
		t.Fatal(err)
	}
}
