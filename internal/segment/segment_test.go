package segment

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("events", []FieldSpec{
		{Name: "country", Type: TypeString, Kind: Dimension, SingleValue: true},
		{Name: "browser", Type: TypeString, Kind: Dimension, SingleValue: true},
		{Name: "memberId", Type: TypeLong, Kind: Dimension, SingleValue: true},
		{Name: "tags", Type: TypeString, Kind: Dimension, SingleValue: false},
		{Name: "clicks", Type: TypeLong, Kind: Metric, SingleValue: true},
		{Name: "revenue", Type: TypeDouble, Kind: Metric, SingleValue: true},
		{Name: "day", Type: TypeLong, Kind: Time, SingleValue: true, TimeUnit: "DAYS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildTestSegment(t *testing.T, cfg IndexConfig) *Segment {
	t.Helper()
	b, err := NewBuilder("events", "events_0", testSchema(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{"us", "chrome", int64(3), []string{"a", "b"}, int64(10), 1.5, int64(100)},
		{"de", "firefox", int64(1), []string{"b"}, int64(20), 2.5, int64(101)},
		{"us", "safari", int64(2), []string{"c"}, int64(30), 3.5, int64(100)},
		{"fr", "chrome", int64(1), []string{"a", "c"}, int64(40), 4.5, int64(102)},
		{"de", "chrome", int64(3), []string{"b", "c"}, int64(50), 5.5, int64(101)},
	}
	for _, r := range rows {
		if err := b.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name   string
		fields []FieldSpec
	}{
		{"empty name", []FieldSpec{{Name: "", Type: TypeLong, Kind: Dimension, SingleValue: true}}},
		{"dup", []FieldSpec{
			{Name: "a", Type: TypeLong, Kind: Dimension, SingleValue: true},
			{Name: "a", Type: TypeLong, Kind: Dimension, SingleValue: true},
		}},
		{"string metric", []FieldSpec{{Name: "m", Type: TypeString, Kind: Metric, SingleValue: true}}},
		{"mv metric", []FieldSpec{{Name: "m", Type: TypeLong, Kind: Metric, SingleValue: false}}},
		{"string time", []FieldSpec{{Name: "t", Type: TypeString, Kind: Time, SingleValue: true}}},
		{"two time cols", []FieldSpec{
			{Name: "t1", Type: TypeLong, Kind: Time, SingleValue: true},
			{Name: "t2", Type: TypeLong, Kind: Time, SingleValue: true},
		}},
	}
	for _, c := range cases {
		if _, err := NewSchema("s", c.fields); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	if _, err := NewSchema("s", nil); err == nil {
		t.Error("no fields: expected error")
	}
}

func TestCanonicalize(t *testing.T) {
	if v, err := Canonicalize(TypeLong, 42); err != nil || v.(int64) != 42 {
		t.Fatalf("int→long: %v %v", v, err)
	}
	if v, err := Canonicalize(TypeLong, float64(7)); err != nil || v.(int64) != 7 {
		t.Fatalf("float64(7)→long: %v %v", v, err)
	}
	if _, err := Canonicalize(TypeLong, 7.5); err == nil {
		t.Fatal("7.5→long should fail")
	}
	if v, err := Canonicalize(TypeDouble, 3); err != nil || v.(float64) != 3 {
		t.Fatalf("int→double: %v %v", v, err)
	}
	if _, err := Canonicalize(TypeString, 3); err == nil {
		t.Fatal("int→string should fail")
	}
	if v, err := CanonicalizeField(FieldSpec{Name: "x", Type: TypeString, SingleValue: false}, "solo"); err != nil || !reflect.DeepEqual(v, []string{"solo"}) {
		t.Fatalf("scalar→mv: %v %v", v, err)
	}
	if v, err := CanonicalizeField(FieldSpec{Name: "x", Type: TypeLong, SingleValue: false}, []any{1, 2}); err != nil || !reflect.DeepEqual(v, []int64{1, 2}) {
		t.Fatalf("[]any→mv: %v %v", v, err)
	}
}

func TestBuilderBasics(t *testing.T) {
	seg := buildTestSegment(t, IndexConfig{})
	if seg.NumDocs() != 5 {
		t.Fatalf("NumDocs = %d", seg.NumDocs())
	}
	c := seg.Column("country")
	if c == nil {
		t.Fatal("country column missing")
	}
	if c.Cardinality() != 3 {
		t.Fatalf("country cardinality = %d", c.Cardinality())
	}
	// Dictionary is value-sorted: de < fr < us.
	if c.Value(0) != "de" || c.Value(1) != "fr" || c.Value(2) != "us" {
		t.Fatalf("dictionary order wrong: %v %v %v", c.Value(0), c.Value(1), c.Value(2))
	}
	// Forward index preserves input order without a sort column.
	wantCountry := []string{"us", "de", "us", "fr", "de"}
	for doc, want := range wantCountry {
		if got := c.Value(c.DictID(doc)); got != want {
			t.Fatalf("doc %d country = %v, want %v", doc, got, want)
		}
	}
	// Metric column raw access.
	m := seg.Column("clicks")
	if m.HasDictionary() {
		t.Fatal("metric should not be dictionary-encoded")
	}
	if m.Long(2) != 30 {
		t.Fatalf("clicks[2] = %d", m.Long(2))
	}
	if m.MinValue().(int64) != 10 || m.MaxValue().(int64) != 50 {
		t.Fatalf("clicks min/max = %v/%v", m.MinValue(), m.MaxValue())
	}
	// Time range in metadata.
	min, max, ok := seg.TimeRange()
	if !ok || min != 100 || max != 102 {
		t.Fatalf("time range = %d..%d ok=%v", min, max, ok)
	}
	if seg.Column("nope") != nil {
		t.Fatal("missing column should be nil")
	}
}

func TestBuilderSortColumn(t *testing.T) {
	seg := buildTestSegment(t, IndexConfig{SortColumn: "memberId"})
	c := seg.Column("memberId")
	if !c.IsSorted() {
		t.Fatal("memberId not detected as sorted")
	}
	prev := int64(-1)
	for doc := 0; doc < seg.NumDocs(); doc++ {
		v := c.Value(c.DictID(doc)).(int64)
		if v < prev {
			t.Fatalf("docs not sorted: doc %d value %d < %d", doc, v, prev)
		}
		prev = v
	}
	// Sorted ranges: memberId=1 occupies docs [0,2), 2 → [2,3), 3 → [3,5).
	id, ok := c.IndexOf(int64(1))
	if !ok {
		t.Fatal("memberId 1 missing from dict")
	}
	if s, e := c.DocIDRange(id); s != 0 || e != 2 {
		t.Fatalf("range for 1 = [%d,%d)", s, e)
	}
	id3, _ := c.IndexOf(int64(3))
	if s, e := c.DocIDRange(id3); s != 3 || e != 5 {
		t.Fatalf("range for 3 = [%d,%d)", s, e)
	}
	// Other columns permuted consistently: doc 0 must be memberId=1 row
	// (de/firefox, clicks=20) — first inserted among memberId=1 rows.
	if got := seg.Column("clicks").Long(0); got != 20 {
		t.Fatalf("clicks[0] after sort = %d", got)
	}
	if got := seg.Column("country").Value(seg.Column("country").DictID(0)); got != "de" {
		t.Fatalf("country[0] after sort = %v", got)
	}
}

func TestBuilderValidation(t *testing.T) {
	sch := testSchema(t)
	if _, err := NewBuilder("t", "s", sch, IndexConfig{SortColumn: "nope"}); err == nil {
		t.Fatal("bad sort column accepted")
	}
	if _, err := NewBuilder("t", "s", sch, IndexConfig{SortColumn: "clicks"}); err == nil {
		t.Fatal("metric sort column accepted")
	}
	if _, err := NewBuilder("t", "s", sch, IndexConfig{SortColumn: "tags"}); err == nil {
		t.Fatal("multi-value sort column accepted")
	}
	if _, err := NewBuilder("t", "s", sch, IndexConfig{InvertedColumns: []string{"clicks"}}); err == nil {
		t.Fatal("metric inverted column accepted")
	}
	b, _ := NewBuilder("t", "s", sch, IndexConfig{})
	if _, err := b.Build(); err == nil {
		t.Fatal("empty build accepted")
	}
	if err := b.Add(Row{"x"}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := b.Add(Row{1, "chrome", int64(1), []string{"a"}, int64(1), 1.0, int64(1)}); err == nil {
		t.Fatal("wrong-typed row accepted")
	}
}

func TestInvertedIndex(t *testing.T) {
	seg := buildTestSegment(t, IndexConfig{InvertedColumns: []string{"country", "tags"}})
	c := seg.Column("country")
	if !c.HasInverted() {
		t.Fatal("country has no inverted index")
	}
	id, _ := c.IndexOf("us")
	got := c.Inverted(id).ToArray()
	if !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Fatalf("postings for us = %v", got)
	}
	// Multi-value inverted: tag "c" appears in docs 2, 3, 4.
	tc := seg.Column("tags")
	idc, _ := tc.IndexOf("c")
	if got := tc.Inverted(idc).ToArray(); !reflect.DeepEqual(got, []uint32{2, 3, 4}) {
		t.Fatalf("postings for tag c = %v", got)
	}
}

func TestAddInvertedIndexOnDemand(t *testing.T) {
	seg := buildTestSegment(t, IndexConfig{})
	if seg.Column("browser").HasInverted() {
		t.Fatal("unexpected inverted index")
	}
	if err := seg.AddInvertedIndex("browser"); err != nil {
		t.Fatal(err)
	}
	if !seg.Column("browser").HasInverted() {
		t.Fatal("inverted index not built")
	}
	// Idempotent.
	if err := seg.AddInvertedIndex("browser"); err != nil {
		t.Fatal(err)
	}
	if err := seg.AddInvertedIndex("nope"); err == nil {
		t.Fatal("AddInvertedIndex on missing column accepted")
	}
	if err := seg.AddInvertedIndex("clicks"); err == nil {
		t.Fatal("AddInvertedIndex on raw metric accepted")
	}
	b := seg.Column("browser")
	id, _ := b.IndexOf("chrome")
	if got := b.Inverted(id).Cardinality(); got != 3 {
		t.Fatalf("chrome postings = %d", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "seg")
	seg := buildTestSegment(t, IndexConfig{SortColumn: "memberId", InvertedColumns: []string{"country"}})
	seg.SetStarTreeData([]byte("fake star tree payload"))
	if err := seg.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSegmentsEqual(t, seg, got)
	if string(got.StarTreeData()) != "fake star tree payload" {
		t.Fatal("star tree data lost")
	}
	if !got.SortedOn("memberId") {
		t.Fatal("sorted ranges not rebuilt on load")
	}
	if !got.Column("country").HasInverted() {
		t.Fatal("inverted index lost")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	seg := buildTestSegment(t, IndexConfig{InvertedColumns: []string{"tags"}})
	blob, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertSegmentsEqual(t, seg, got)
	if _, err := Unmarshal([]byte("garbage data here")); err == nil {
		t.Fatal("garbage blob accepted")
	}
}

func TestAppendInvertedIndex(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "seg")
	seg := buildTestSegment(t, IndexConfig{})
	if err := seg.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := AppendInvertedIndex(dir, seg, "country"); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := got.Column("country")
	if !c.HasInverted() {
		t.Fatal("appended inverted index not loaded")
	}
	id, _ := c.IndexOf("de")
	if got := c.Inverted(id).ToArray(); !reflect.DeepEqual(got, []uint32{1, 4}) {
		t.Fatalf("postings for de = %v", got)
	}
	var hasFlag bool
	for _, cm := range got.Metadata().Columns {
		if cm.Name == "country" && cm.HasInverted {
			hasFlag = true
		}
	}
	if !hasFlag {
		t.Fatal("metadata HasInverted flag not persisted")
	}
}

func assertSegmentsEqual(t *testing.T, want, got *Segment) {
	t.Helper()
	if got.NumDocs() != want.NumDocs() {
		t.Fatalf("NumDocs = %d, want %d", got.NumDocs(), want.NumDocs())
	}
	if got.Name() != want.Name() {
		t.Fatalf("Name = %q, want %q", got.Name(), want.Name())
	}
	for _, f := range want.Schema().Fields {
		wc, gc := want.Column(f.Name), got.Column(f.Name)
		if gc == nil {
			t.Fatalf("column %q missing after round trip", f.Name)
		}
		if gc.Cardinality() != wc.Cardinality() {
			t.Fatalf("column %q cardinality %d, want %d", f.Name, gc.Cardinality(), wc.Cardinality())
		}
		var buf1, buf2 []int
		for doc := 0; doc < want.NumDocs(); doc++ {
			switch {
			case f.Kind == Metric:
				if gc.Double(doc) != wc.Double(doc) {
					t.Fatalf("column %q doc %d metric %v, want %v", f.Name, doc, gc.Double(doc), wc.Double(doc))
				}
			case f.SingleValue:
				if gc.Value(gc.DictID(doc)) != wc.Value(wc.DictID(doc)) {
					t.Fatalf("column %q doc %d value mismatch", f.Name, doc)
				}
			default:
				buf1, buf2 = wc.DictIDsMV(doc, buf1[:0]), gc.DictIDsMV(doc, buf2[:0])
				if len(buf1) != len(buf2) {
					t.Fatalf("column %q doc %d MV count mismatch", f.Name, doc)
				}
				for j := range buf1 {
					if wc.Value(buf1[j]) != gc.Value(buf2[j]) {
						t.Fatalf("column %q doc %d MV value mismatch", f.Name, doc)
					}
				}
			}
		}
	}
}

func TestMutableSegment(t *testing.T) {
	ms, err := NewMutableSegment("events", "events__0__0", testSchema(t), IndexConfig{InvertedColumns: []string{"country"}})
	if err != nil {
		t.Fatal(err)
	}
	rows := []map[string]any{
		{"country": "us", "browser": "chrome", "memberId": 3, "tags": []any{"a"}, "clicks": 10, "revenue": 1.5, "day": 100},
		{"country": "de", "browser": "firefox", "memberId": 1, "tags": []any{"b"}, "clicks": 20, "revenue": 2.5, "day": 101},
		{"country": "us", "browser": "safari", "memberId": 2, "tags": []any{"a", "c"}, "clicks": 30, "revenue": 3.5, "day": 100},
	}
	for _, m := range rows {
		if err := ms.AddMap(m); err != nil {
			t.Fatal(err)
		}
	}
	if ms.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", ms.NumDocs())
	}
	c := ms.Column("country")
	if c.DictSorted() {
		t.Fatal("mutable dict reported sorted")
	}
	// Arrival-order dict ids: us=0, de=1.
	if c.Value(0) != "us" || c.Value(1) != "de" {
		t.Fatalf("arrival order wrong: %v %v", c.Value(0), c.Value(1))
	}
	if !c.HasInverted() {
		t.Fatal("realtime inverted missing")
	}
	id, _ := c.IndexOf("us")
	if got := c.Inverted(id).ToArray(); !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Fatalf("realtime postings = %v", got)
	}
	// Missing id yields an empty bitmap rather than nil.
	if got := c.Inverted(999); got == nil || !got.IsEmpty() {
		t.Fatal("missing posting should be empty bitmap")
	}
	// Metrics.
	if ms.Column("revenue").Double(1) != 2.5 {
		t.Fatal("metric value wrong")
	}
	if ms.Column("clicks").MinValue().(int64) != 10 {
		t.Fatal("metric min wrong")
	}
}

func TestMutableSeal(t *testing.T) {
	ms, err := NewMutableSegment("events", "s1", testSchema(t), IndexConfig{SortColumn: "memberId", InvertedColumns: []string{"country"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		err := ms.AddMap(map[string]any{
			"country": fmt.Sprintf("c%d", i%5), "browser": "chrome",
			"memberId": int64(50 - i), "tags": []any{"t"},
			"clicks": int64(i), "revenue": float64(i), "day": int64(100 + i%3),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	seg, err := ms.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumDocs() != 50 {
		t.Fatalf("sealed NumDocs = %d", seg.NumDocs())
	}
	if !seg.Metadata().Realtime {
		t.Fatal("sealed segment not marked realtime")
	}
	if !seg.SortedOn("memberId") {
		t.Fatal("sealed segment not sorted on memberId")
	}
	if !seg.Column("country").HasInverted() {
		t.Fatal("sealed segment lost inverted config")
	}
	// Sum of clicks must be preserved through the seal.
	var sum int64
	for doc := 0; doc < seg.NumDocs(); doc++ {
		sum += seg.Column("clicks").Long(doc)
	}
	if sum != 49*50/2 {
		t.Fatalf("clicks sum after seal = %d", sum)
	}
}

func TestDefaultColumn(t *testing.T) {
	spec := FieldSpec{Name: "newCol", Type: TypeString, Kind: Dimension, SingleValue: true}
	c := NewDefaultColumn(spec, 10)
	if c.NumDocs() != 10 || c.Cardinality() != 1 {
		t.Fatal("default column shape wrong")
	}
	if c.Value(c.DictID(5)) != "null" {
		t.Fatalf("default value = %v", c.Value(0))
	}
	if _, ok := c.IndexOf("null"); !ok {
		t.Fatal("IndexOf default value failed")
	}
	if _, ok := c.IndexOf("other"); ok {
		t.Fatal("IndexOf other value succeeded")
	}
	if s, e := c.DocIDRange(0); s != 0 || e != 10 {
		t.Fatal("default column range wrong")
	}
	// Numeric default column supports metric access.
	mspec := FieldSpec{Name: "m", Type: TypeLong, Kind: Metric, SingleValue: true}
	mc := NewDefaultColumn(mspec, 4)
	if mc.Long(0) != 0 || mc.Double(1) != 0 {
		t.Fatal("metric default wrong")
	}
	lo, hi := c.Range(nil, nil, true, true)
	if lo != 0 || hi != 1 {
		t.Fatal("unbounded range should include default value")
	}
	lo, hi = c.Range("nz", nil, true, true)
	if lo != hi {
		t.Fatal("range above default should be empty")
	}
}

func TestPackedIntsRoundTrip(t *testing.T) {
	for _, width := range []uint8{1, 3, 7, 8, 13, 17, 31, 32} {
		n := 1000
		p := newPackedInts(n, width)
		maxV := uint32(1)<<width - 1
		for i := 0; i < n; i++ {
			p.set(i, uint32(i*2654435761)&maxV)
		}
		for i := 0; i < n; i++ {
			want := uint32(i*2654435761) & maxV
			if got := p.get(i); got != want {
				t.Fatalf("width %d: get(%d) = %d, want %d", width, i, got, want)
			}
		}
	}
}

// Property: dictionary round trip — for any value set, every value maps to
// an id that maps back, and ids are value-ordered.
func TestQuickDictionaryInvariants(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		anys := make([]any, len(vals))
		for i, v := range vals {
			anys[i] = v
		}
		d, err := newDictionary(TypeLong, anys)
		if err != nil {
			return false
		}
		for _, v := range vals {
			id, ok := d.IndexOf(v)
			if !ok || d.Value(id) != v {
				return false
			}
		}
		for i := 1; i < d.Len(); i++ {
			if CompareValues(d.Value(i-1), d.Value(i)) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: building a segment and reading it back yields the same rows
// (modulo sort permutation when unsorted).
func TestQuickBuildReadBack(t *testing.T) {
	sch, err := NewSchema("q", []FieldSpec{
		{Name: "d", Type: TypeLong, Kind: Dimension, SingleValue: true},
		{Name: "m", Type: TypeLong, Kind: Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(pairs []struct{ D, M int64 }) bool {
		if len(pairs) == 0 {
			return true
		}
		b, err := NewBuilder("q", "q0", sch, IndexConfig{})
		if err != nil {
			return false
		}
		for _, p := range pairs {
			if err := b.Add(Row{p.D, p.M}); err != nil {
				return false
			}
		}
		seg, err := b.Build()
		if err != nil {
			return false
		}
		d, m := seg.Column("d"), seg.Column("m")
		for i, p := range pairs {
			if d.Value(d.DictID(i)) != p.D || m.Long(i) != p.M {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaEvolutionWithColumn(t *testing.T) {
	sch := testSchema(t)
	ns, err := sch.WithColumn(FieldSpec{Name: "region", Type: TypeString, Kind: Dimension, SingleValue: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.Fields) != len(sch.Fields)+1 {
		t.Fatal("column not added")
	}
	if _, ok := ns.Field("region"); !ok {
		t.Fatal("new column not findable")
	}
	if _, err := sch.WithColumn(FieldSpec{Name: "country", Type: TypeString, Kind: Dimension, SingleValue: true}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}
