package segment

import (
	"fmt"
	"sync"

	"pinot/internal/bitmap"
)

// MutableSegment is the realtime consuming segment: rows append as they
// arrive from the stream, dictionaries grow hash-based in arrival order, and
// an optional realtime inverted index is maintained incrementally. Queries
// may run concurrently with appends; a RWMutex guards the growing state and
// readers snapshot the doc count at query start.
type MutableSegment struct {
	mu      sync.RWMutex
	name    string
	table   string
	schema  *Schema
	cfg     IndexConfig
	numDocs int
	columns map[string]*mutableColumn
}

type mutableColumn struct {
	seg      *MutableSegment
	spec     FieldSpec
	dict     *MutableDictionary
	ids      []int32   // single-value dict ids per doc
	mvIDs    [][]int32 // multi-value dict ids per doc
	longs    []int64   // raw metric storage
	doubles  []float64
	inverted map[int]*bitmap.Bitmap // realtime inverted index, may be nil
}

// NewMutableSegment returns an empty consuming segment. Inverted columns
// listed in cfg get realtime inverted indexes; SortColumn only takes effect
// when the segment is sealed.
func NewMutableSegment(table, name string, schema *Schema, cfg IndexConfig) (*MutableSegment, error) {
	ms := &MutableSegment{name: name, table: table, schema: schema, cfg: cfg}
	ms.columns = make(map[string]*mutableColumn, len(schema.Fields))
	inv := make(map[string]bool)
	for _, ic := range cfg.InvertedColumns {
		if _, ok := schema.Field(ic); !ok {
			return nil, fmt.Errorf("segment: inverted column %q not in schema", ic)
		}
		inv[ic] = true
	}
	for _, f := range schema.Fields {
		mc := &mutableColumn{seg: ms, spec: f}
		if f.Kind != Metric {
			mc.dict = NewMutableDictionary(f.Type)
			if inv[f.Name] {
				mc.inverted = make(map[int]*bitmap.Bitmap)
			}
		}
		ms.columns[f.Name] = mc
	}
	return ms, nil
}

// Name returns the segment name.
func (s *MutableSegment) Name() string { return s.name }

// Schema returns the segment schema.
func (s *MutableSegment) Schema() *Schema { return s.schema }

// NumDocs returns the current document count.
func (s *MutableSegment) NumDocs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.numDocs
}

// Column returns the named column, or nil.
func (s *MutableSegment) Column(name string) ColumnReader {
	if c, ok := s.columns[name]; ok {
		return c
	}
	return nil
}

// Add appends one row (canonical values aligned with the schema).
func (s *MutableSegment) Add(row Row) error {
	if len(row) != len(s.schema.Fields) {
		return fmt.Errorf("segment: row has %d values, schema has %d fields", len(row), len(s.schema.Fields))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := s.numDocs
	for i, f := range s.schema.Fields {
		mc := s.columns[f.Name]
		v := row[i]
		if f.Kind == Metric {
			if f.Type.Integral() {
				x, ok := v.(int64)
				if !ok {
					return fmt.Errorf("segment: column %q: want int64, got %T", f.Name, v)
				}
				mc.longs = append(mc.longs, x)
			} else {
				x, ok := v.(float64)
				if !ok {
					return fmt.Errorf("segment: column %q: want float64, got %T", f.Name, v)
				}
				mc.doubles = append(mc.doubles, x)
			}
			continue
		}
		if f.SingleValue {
			id := mc.dict.Index(v)
			mc.ids = append(mc.ids, int32(id))
			if mc.inverted != nil {
				bm := mc.inverted[id]
				if bm == nil {
					bm = bitmap.New()
					mc.inverted[id] = bm
				}
				bm.Add(uint32(doc))
			}
			continue
		}
		var ids []int32
		addOne := func(x any) {
			id := mc.dict.Index(x)
			ids = append(ids, int32(id))
			if mc.inverted != nil {
				bm := mc.inverted[id]
				if bm == nil {
					bm = bitmap.New()
					mc.inverted[id] = bm
				}
				bm.Add(uint32(doc))
			}
		}
		switch xs := v.(type) {
		case []int64:
			for _, x := range xs {
				addOne(x)
			}
		case []float64:
			for _, x := range xs {
				addOne(x)
			}
		case []string:
			for _, x := range xs {
				addOne(x)
			}
		case []bool:
			for _, x := range xs {
				addOne(x)
			}
		default:
			return fmt.Errorf("segment: column %q: want slice, got %T", f.Name, v)
		}
		mc.mvIDs = append(mc.mvIDs, ids)
	}
	s.numDocs++
	return nil
}

// AddMap appends a row given as a column-name→value map.
func (s *MutableSegment) AddMap(m map[string]any) error {
	row, err := s.schema.RowFromMap(m)
	if err != nil {
		return err
	}
	return s.Add(row)
}

// Row reconstructs the canonical row at a document position.
func (s *MutableSegment) Row(doc int) Row {
	row := make(Row, len(s.schema.Fields))
	for i, f := range s.schema.Fields {
		mc := s.columns[f.Name]
		switch {
		case f.Kind == Metric && f.Type.Integral():
			row[i] = mc.longs[doc]
		case f.Kind == Metric:
			row[i] = mc.doubles[doc]
		case f.SingleValue:
			row[i] = mc.dict.Value(int(mc.ids[doc]))
		default:
			ids := mc.mvIDs[doc]
			switch {
			case f.Type.Integral():
				vals := make([]int64, len(ids))
				for j, id := range ids {
					vals[j] = mc.dict.Value(int(id)).(int64)
				}
				row[i] = vals
			case f.Type.Numeric():
				vals := make([]float64, len(ids))
				for j, id := range ids {
					vals[j] = mc.dict.Value(int(id)).(float64)
				}
				row[i] = vals
			case f.Type == TypeBoolean:
				vals := make([]bool, len(ids))
				for j, id := range ids {
					vals[j] = mc.dict.Value(int(id)).(bool)
				}
				row[i] = vals
			default:
				vals := make([]string, len(ids))
				for j, id := range ids {
					vals[j] = mc.dict.Value(int(id)).(string)
				}
				row[i] = vals
			}
		}
	}
	return row
}

// Seal converts the consuming segment into an immutable segment, sorting the
// dictionary, remapping ids, applying the configured sort column and
// building configured inverted indexes.
func (s *MutableSegment) Seal() (*Segment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, err := NewBuilder(s.table, s.name, s.schema, s.cfg)
	if err != nil {
		return nil, err
	}
	for doc := 0; doc < s.numDocs; doc++ {
		if err := b.Add(s.Row(doc)); err != nil {
			return nil, err
		}
	}
	seg, err := b.Build()
	if err != nil {
		return nil, err
	}
	seg.meta.Realtime = true
	return seg, nil
}

func (c *mutableColumn) Spec() FieldSpec     { return c.spec }
func (c *mutableColumn) NumDocs() int        { return c.seg.NumDocs() }
func (c *mutableColumn) HasDictionary() bool { return c.dict != nil }
func (c *mutableColumn) Cardinality() int {
	if c.dict == nil {
		return 0
	}
	c.seg.mu.RLock()
	defer c.seg.mu.RUnlock()
	return c.dict.Len()
}
func (c *mutableColumn) DictSorted() bool { return false }
func (c *mutableColumn) Value(id int) any {
	c.seg.mu.RLock()
	defer c.seg.mu.RUnlock()
	return c.dict.Value(id)
}
func (c *mutableColumn) IndexOf(v any) (int, bool) {
	c.seg.mu.RLock()
	defer c.seg.mu.RUnlock()
	return c.dict.IndexOf(v)
}
func (c *mutableColumn) Range(lower, upper any, loIncl, hiIncl bool) (int, int) {
	panic("segment: Range on unsorted mutable column")
}
func (c *mutableColumn) DictID(doc int) int { return int(c.ids[doc]) }
func (c *mutableColumn) DictIDsMV(doc int, buf []int) []int {
	for _, id := range c.mvIDs[doc] {
		buf = append(buf, int(id))
	}
	return buf
}
func (c *mutableColumn) HasInverted() bool { return c.inverted != nil }
func (c *mutableColumn) Inverted(id int) *bitmap.Bitmap {
	c.seg.mu.RLock()
	defer c.seg.mu.RUnlock()
	if bm := c.inverted[id]; bm != nil {
		return bm
	}
	return bitmap.New()
}
func (c *mutableColumn) IsSorted() bool               { return false }
func (c *mutableColumn) DocIDRange(id int) (int, int) { panic("segment: DocIDRange on mutable column") }
func (c *mutableColumn) Long(doc int) int64 {
	if c.spec.Type.Integral() {
		return c.longs[doc]
	}
	return int64(c.doubles[doc])
}
func (c *mutableColumn) Double(doc int) float64 {
	if c.spec.Type.Integral() {
		return float64(c.longs[doc])
	}
	return c.doubles[doc]
}
func (c *mutableColumn) DictIDs(docs []int, dst []uint32) {
	for i, d := range docs {
		dst[i] = uint32(c.ids[d])
	}
}
func (c *mutableColumn) Longs(docs []int, dst []int64) {
	if c.spec.Type.Integral() {
		for i, d := range docs {
			dst[i] = c.longs[d]
		}
		return
	}
	for i, d := range docs {
		dst[i] = int64(c.doubles[d])
	}
}
func (c *mutableColumn) Doubles(docs []int, dst []float64) {
	if c.spec.Type.Integral() {
		for i, d := range docs {
			dst[i] = float64(c.longs[d])
		}
		return
	}
	for i, d := range docs {
		dst[i] = c.doubles[d]
	}
}
func (c *mutableColumn) MinValue() any {
	c.seg.mu.RLock()
	defer c.seg.mu.RUnlock()
	if c.dict != nil {
		return c.dict.Min()
	}
	return c.rawMin()
}
func (c *mutableColumn) MaxValue() any {
	c.seg.mu.RLock()
	defer c.seg.mu.RUnlock()
	if c.dict != nil {
		return c.dict.Max()
	}
	return c.rawMax()
}

func (c *mutableColumn) rawMin() any {
	if c.spec.Type.Integral() {
		if len(c.longs) == 0 {
			return int64(0)
		}
		min := c.longs[0]
		for _, v := range c.longs[1:] {
			if v < min {
				min = v
			}
		}
		return min
	}
	if len(c.doubles) == 0 {
		return float64(0)
	}
	min := c.doubles[0]
	for _, v := range c.doubles[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

func (c *mutableColumn) rawMax() any {
	if c.spec.Type.Integral() {
		if len(c.longs) == 0 {
			return int64(0)
		}
		max := c.longs[0]
		for _, v := range c.longs[1:] {
			if v > max {
				max = v
			}
		}
		return max
	}
	if len(c.doubles) == 0 {
		return float64(0)
	}
	max := c.doubles[0]
	for _, v := range c.doubles[1:] {
		if v > max {
			max = v
		}
	}
	return max
}
