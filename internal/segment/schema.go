// Package segment implements Pinot's columnar segment format: fixed-schema
// record collections with dictionary encoding, bit-packed forward indexes,
// bitmap inverted indexes, sorted-column run indexes and per-column
// statistics, in both immutable (built/loaded) and mutable (realtime
// consuming) forms.
package segment

import (
	"encoding/json"
	"fmt"
	"sort"
)

// DataType is the declared type of a column. Int/Long canonicalize to int64,
// Float/Double to float64 at runtime; the declared type is preserved in
// metadata for storage-width decisions and schema fidelity.
type DataType uint8

// Supported column data types.
const (
	TypeInt DataType = iota
	TypeLong
	TypeFloat
	TypeDouble
	TypeString
	TypeBoolean
)

var dataTypeNames = [...]string{"INT", "LONG", "FLOAT", "DOUBLE", "STRING", "BOOLEAN"}

func (t DataType) String() string {
	if int(t) < len(dataTypeNames) {
		return dataTypeNames[t]
	}
	return fmt.Sprintf("DataType(%d)", uint8(t))
}

// ParseDataType converts a type name (as stored in metadata JSON) back to a
// DataType.
func ParseDataType(s string) (DataType, error) {
	for i, n := range dataTypeNames {
		if n == s {
			return DataType(i), nil
		}
	}
	return 0, fmt.Errorf("segment: unknown data type %q", s)
}

// Numeric reports whether the type canonicalizes to int64 or float64.
func (t DataType) Numeric() bool {
	switch t {
	case TypeInt, TypeLong, TypeFloat, TypeDouble:
		return true
	}
	return false
}

// Integral reports whether the type canonicalizes to int64.
func (t DataType) Integral() bool { return t == TypeInt || t == TypeLong }

// MarshalJSON implements json.Marshaler.
func (t DataType) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON implements json.Unmarshaler.
func (t *DataType) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseDataType(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// FieldKind distinguishes dimensions, metrics, and the special time column.
type FieldKind uint8

// Column roles within a table.
const (
	Dimension FieldKind = iota
	Metric
	Time
)

var fieldKindNames = [...]string{"DIMENSION", "METRIC", "TIME"}

func (k FieldKind) String() string {
	if int(k) < len(fieldKindNames) {
		return fieldKindNames[k]
	}
	return fmt.Sprintf("FieldKind(%d)", uint8(k))
}

// MarshalJSON implements json.Marshaler.
func (k FieldKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON implements json.Unmarshaler.
func (k *FieldKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range fieldKindNames {
		if n == s {
			*k = FieldKind(i)
			return nil
		}
	}
	return fmt.Errorf("segment: unknown field kind %q", s)
}

// FieldSpec describes one column of a schema.
type FieldSpec struct {
	Name        string    `json:"name"`
	Type        DataType  `json:"type"`
	Kind        FieldKind `json:"kind"`
	SingleValue bool      `json:"singleValue"`
	// TimeUnit is informational granularity for Time columns, e.g.
	// "DAYS" or "MILLISECONDS".
	TimeUnit string `json:"timeUnit,omitempty"`
}

// Schema is the fixed column layout of a table. Rows added to builders must
// align with the schema's field order.
type Schema struct {
	Name   string      `json:"name"`
	Fields []FieldSpec `json:"fields"`

	index map[string]int
}

// NewSchema validates the field list and returns a Schema. It enforces the
// paper's data model: metrics are numeric single-value columns, at most one
// time column exists and it is a single-value integral dimension-like column.
func NewSchema(name string, fields []FieldSpec) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("segment: schema name must not be empty")
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("segment: schema %q has no fields", name)
	}
	s := &Schema{Name: name, Fields: fields}
	if err := s.buildIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Schema) buildIndex() error {
	s.index = make(map[string]int, len(s.Fields))
	timeCols := 0
	for i, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("segment: schema %q: field %d has empty name", s.Name, i)
		}
		if _, dup := s.index[f.Name]; dup {
			return fmt.Errorf("segment: schema %q: duplicate column %q", s.Name, f.Name)
		}
		s.index[f.Name] = i
		switch f.Kind {
		case Metric:
			if !f.Type.Numeric() {
				return fmt.Errorf("segment: schema %q: metric %q must be numeric", s.Name, f.Name)
			}
			if !f.SingleValue {
				return fmt.Errorf("segment: schema %q: metric %q must be single-value", s.Name, f.Name)
			}
		case Time:
			timeCols++
			if !f.Type.Integral() {
				return fmt.Errorf("segment: schema %q: time column %q must be INT or LONG", s.Name, f.Name)
			}
			if !f.SingleValue {
				return fmt.Errorf("segment: schema %q: time column %q must be single-value", s.Name, f.Name)
			}
		}
	}
	if timeCols > 1 {
		return fmt.Errorf("segment: schema %q has %d time columns, at most 1 allowed", s.Name, timeCols)
	}
	return nil
}

// FieldIndex returns the position of the named column, or -1.
func (s *Schema) FieldIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Field returns the spec of the named column.
func (s *Schema) Field(name string) (FieldSpec, bool) {
	if i, ok := s.index[name]; ok {
		return s.Fields[i], true
	}
	return FieldSpec{}, false
}

// TimeColumn returns the name of the time column, or "" if the schema has
// none.
func (s *Schema) TimeColumn() string {
	for _, f := range s.Fields {
		if f.Kind == Time {
			return f.Name
		}
	}
	return ""
}

// DimensionNames returns the dimension (and time) column names in schema
// order.
func (s *Schema) DimensionNames() []string {
	var out []string
	for _, f := range s.Fields {
		if f.Kind != Metric {
			out = append(out, f.Name)
		}
	}
	return out
}

// MetricNames returns the metric column names in schema order.
func (s *Schema) MetricNames() []string {
	var out []string
	for _, f := range s.Fields {
		if f.Kind == Metric {
			out = append(out, f.Name)
		}
	}
	return out
}

// WithColumn returns a copy of the schema with one additional column. It is
// the basis for on-the-fly schema evolution: existing segments surface the
// new column with a default value.
func (s *Schema) WithColumn(f FieldSpec) (*Schema, error) {
	fields := append(append([]FieldSpec(nil), s.Fields...), f)
	return NewSchema(s.Name, fields)
}

// MarshalJSON implements json.Marshaler.
func (s *Schema) MarshalJSON() ([]byte, error) {
	type plain struct {
		Name   string      `json:"name"`
		Fields []FieldSpec `json:"fields"`
	}
	return json.Marshal(plain{s.Name, s.Fields})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Schema) UnmarshalJSON(b []byte) error {
	type plain struct {
		Name   string      `json:"name"`
		Fields []FieldSpec `json:"fields"`
	}
	var p plain
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	s.Name, s.Fields = p.Name, p.Fields
	return s.buildIndex()
}

// Row is a record whose values align positionally with a schema's fields.
// Values must be canonical (int64, float64, string, bool) or convertible via
// Canonicalize; multi-value columns take []int64, []float64, []string or
// []bool.
type Row []any

// RowFromMap builds a Row for the schema from a column-name→value map.
// Missing columns take the type's default value.
func (s *Schema) RowFromMap(m map[string]any) (Row, error) {
	row := make(Row, len(s.Fields))
	for i, f := range s.Fields {
		v, ok := m[f.Name]
		if !ok {
			row[i] = DefaultValue(f)
			continue
		}
		cv, err := CanonicalizeField(f, v)
		if err != nil {
			return nil, err
		}
		row[i] = cv
	}
	return row, nil
}

// DefaultValue returns the null-substitute value for a column, used when a
// segment predates a schema-evolution column addition.
func DefaultValue(f FieldSpec) any {
	var base any
	switch {
	case f.Type.Integral():
		base = int64(0)
	case f.Type.Numeric():
		base = float64(0)
	case f.Type == TypeBoolean:
		base = false
	default:
		base = "null"
	}
	if f.SingleValue {
		return base
	}
	switch v := base.(type) {
	case int64:
		return []int64{v}
	case float64:
		return []float64{v}
	case bool:
		return []bool{v}
	default:
		return []string{base.(string)}
	}
}

// Canonicalize converts a loosely typed scalar to the canonical runtime
// representation for the data type: int64, float64, string or bool.
func Canonicalize(t DataType, v any) (any, error) {
	switch t {
	case TypeInt, TypeLong:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case int16:
			return int64(x), nil
		case uint32:
			return int64(x), nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
		case json.Number:
			if n, err := x.Int64(); err == nil {
				return n, nil
			}
		}
	case TypeFloat, TypeDouble:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		case json.Number:
			if n, err := x.Float64(); err == nil {
				return n, nil
			}
		}
	case TypeString:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case TypeBoolean:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("segment: cannot convert %T(%v) to %s", v, v, t)
}

// CanonicalizeField converts a scalar or slice to the canonical form for a
// field, handling multi-value columns.
func CanonicalizeField(f FieldSpec, v any) (any, error) {
	if f.SingleValue {
		return Canonicalize(f.Type, v)
	}
	switch xs := v.(type) {
	case []int64:
		return xs, nil
	case []float64:
		return xs, nil
	case []string:
		return xs, nil
	case []bool:
		return xs, nil
	case []any:
		switch {
		case f.Type.Integral():
			out := make([]int64, len(xs))
			for i, x := range xs {
				cv, err := Canonicalize(f.Type, x)
				if err != nil {
					return nil, err
				}
				out[i] = cv.(int64)
			}
			return out, nil
		case f.Type.Numeric():
			out := make([]float64, len(xs))
			for i, x := range xs {
				cv, err := Canonicalize(f.Type, x)
				if err != nil {
					return nil, err
				}
				out[i] = cv.(float64)
			}
			return out, nil
		case f.Type == TypeBoolean:
			out := make([]bool, len(xs))
			for i, x := range xs {
				cv, err := Canonicalize(f.Type, x)
				if err != nil {
					return nil, err
				}
				out[i] = cv.(bool)
			}
			return out, nil
		default:
			out := make([]string, len(xs))
			for i, x := range xs {
				cv, err := Canonicalize(f.Type, x)
				if err != nil {
					return nil, err
				}
				out[i] = cv.(string)
			}
			return out, nil
		}
	}
	// A bare scalar for a multi-value column becomes a one-element array.
	cv, err := Canonicalize(f.Type, v)
	if err != nil {
		return nil, err
	}
	switch x := cv.(type) {
	case int64:
		return []int64{x}, nil
	case float64:
		return []float64{x}, nil
	case bool:
		return []bool{x}, nil
	default:
		return []string{cv.(string)}, nil
	}
}

// CompareValues orders two canonical values of the same type. Booleans order
// false < true.
func CompareValues(a, b any) int {
	switch x := a.(type) {
	case int64:
		y := b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y := b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		y := b.(string)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case bool:
		y := b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("segment: CompareValues on unsupported type %T", a))
}

// sortAnySlice sorts a slice of canonical values in place.
func sortAnySlice(vs []any) {
	sort.Slice(vs, func(i, j int) bool { return CompareValues(vs[i], vs[j]) < 0 })
}
