package segment

import (
	"fmt"
	"sort"
)

// IndexConfig selects the physical layout of a built segment.
type IndexConfig struct {
	// SortColumn physically reorders records by this single-value
	// dimension, enabling the contiguous-range execution path of paper
	// section 4.2. Empty means input order is preserved.
	SortColumn string
	// InvertedColumns get bitmap inverted indexes at build time. Indexes
	// can also be added later with Segment.AddInvertedIndex.
	InvertedColumns []string
}

// columnBuffer accumulates the values of one column during a build.
type columnBuffer struct {
	spec    FieldSpec
	longs   []int64
	doubles []float64
	strings []string
	bools   []bool
	mvLongs [][]int64
	mvDbls  [][]float64
	mvStrs  [][]string
	mvBools [][]bool
}

func (b *columnBuffer) add(v any) error {
	f := b.spec
	if f.SingleValue {
		switch {
		case f.Type.Integral():
			x, ok := v.(int64)
			if !ok {
				return fmt.Errorf("segment: column %q: want int64, got %T", f.Name, v)
			}
			b.longs = append(b.longs, x)
		case f.Type.Numeric():
			x, ok := v.(float64)
			if !ok {
				return fmt.Errorf("segment: column %q: want float64, got %T", f.Name, v)
			}
			b.doubles = append(b.doubles, x)
		case f.Type == TypeBoolean:
			x, ok := v.(bool)
			if !ok {
				return fmt.Errorf("segment: column %q: want bool, got %T", f.Name, v)
			}
			b.bools = append(b.bools, x)
		default:
			x, ok := v.(string)
			if !ok {
				return fmt.Errorf("segment: column %q: want string, got %T", f.Name, v)
			}
			b.strings = append(b.strings, x)
		}
		return nil
	}
	switch {
	case f.Type.Integral():
		x, ok := v.([]int64)
		if !ok {
			return fmt.Errorf("segment: column %q: want []int64, got %T", f.Name, v)
		}
		b.mvLongs = append(b.mvLongs, x)
	case f.Type.Numeric():
		x, ok := v.([]float64)
		if !ok {
			return fmt.Errorf("segment: column %q: want []float64, got %T", f.Name, v)
		}
		b.mvDbls = append(b.mvDbls, x)
	case f.Type == TypeBoolean:
		x, ok := v.([]bool)
		if !ok {
			return fmt.Errorf("segment: column %q: want []bool, got %T", f.Name, v)
		}
		b.mvBools = append(b.mvBools, x)
	default:
		x, ok := v.([]string)
		if !ok {
			return fmt.Errorf("segment: column %q: want []string, got %T", f.Name, v)
		}
		b.mvStrs = append(b.mvStrs, x)
	}
	return nil
}

// scalar returns the single value at row i as a canonical any.
func (b *columnBuffer) scalar(i int) any {
	f := b.spec
	switch {
	case f.Type.Integral():
		return b.longs[i]
	case f.Type.Numeric():
		return b.doubles[i]
	case f.Type == TypeBoolean:
		return b.bools[i]
	default:
		return b.strings[i]
	}
}

// multi returns the values at row i of a multi-value column as canonical
// anys.
func (b *columnBuffer) multi(i int) []any {
	f := b.spec
	switch {
	case f.Type.Integral():
		out := make([]any, len(b.mvLongs[i]))
		for j, v := range b.mvLongs[i] {
			out[j] = v
		}
		return out
	case f.Type.Numeric():
		out := make([]any, len(b.mvDbls[i]))
		for j, v := range b.mvDbls[i] {
			out[j] = v
		}
		return out
	case f.Type == TypeBoolean:
		out := make([]any, len(b.mvBools[i]))
		for j, v := range b.mvBools[i] {
			out[j] = v
		}
		return out
	default:
		out := make([]any, len(b.mvStrs[i]))
		for j, v := range b.mvStrs[i] {
			out[j] = v
		}
		return out
	}
}

// Builder accumulates rows and produces an immutable Segment. It is not safe
// for concurrent use.
type Builder struct {
	name    string
	table   string
	schema  *Schema
	cfg     IndexConfig
	buffers []*columnBuffer
	numRows int
}

// NewBuilder returns a Builder for a named segment. The sort column, if set,
// must be a single-value dictionary column of the schema.
func NewBuilder(table, name string, schema *Schema, cfg IndexConfig) (*Builder, error) {
	if cfg.SortColumn != "" {
		f, ok := schema.Field(cfg.SortColumn)
		if !ok {
			return nil, fmt.Errorf("segment: sort column %q not in schema", cfg.SortColumn)
		}
		if !f.SingleValue {
			return nil, fmt.Errorf("segment: sort column %q must be single-value", cfg.SortColumn)
		}
		if f.Kind == Metric {
			return nil, fmt.Errorf("segment: sort column %q must be a dimension", cfg.SortColumn)
		}
	}
	for _, ic := range cfg.InvertedColumns {
		f, ok := schema.Field(ic)
		if !ok {
			return nil, fmt.Errorf("segment: inverted column %q not in schema", ic)
		}
		if f.Kind == Metric {
			return nil, fmt.Errorf("segment: inverted column %q must be a dimension", ic)
		}
	}
	b := &Builder{name: name, table: table, schema: schema, cfg: cfg}
	b.buffers = make([]*columnBuffer, len(schema.Fields))
	for i, f := range schema.Fields {
		b.buffers[i] = &columnBuffer{spec: f}
	}
	return b, nil
}

// Add appends a row. Values must align positionally with the schema fields
// and be canonical (int64/float64/string/bool, or slices for multi-value).
func (b *Builder) Add(row Row) error {
	if len(row) != len(b.schema.Fields) {
		return fmt.Errorf("segment: row has %d values, schema has %d fields", len(row), len(b.schema.Fields))
	}
	for i, v := range row {
		if err := b.buffers[i].add(v); err != nil {
			return err
		}
	}
	b.numRows++
	return nil
}

// AddMap appends a row given as a column-name→value map, canonicalizing
// loosely typed values.
func (b *Builder) AddMap(m map[string]any) error {
	row, err := b.schema.RowFromMap(m)
	if err != nil {
		return err
	}
	return b.Add(row)
}

// NumRows returns the number of rows added so far.
func (b *Builder) NumRows() int { return b.numRows }

// Build produces the immutable segment. The builder must not be reused
// afterwards.
func (b *Builder) Build() (*Segment, error) {
	if b.numRows == 0 {
		return nil, fmt.Errorf("segment: cannot build empty segment %q", b.name)
	}
	n := b.numRows

	// Compute the document permutation for the sort column.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if b.cfg.SortColumn != "" {
		buf := b.buffers[b.schema.FieldIndex(b.cfg.SortColumn)]
		sort.SliceStable(perm, func(i, j int) bool {
			return CompareValues(buf.scalar(perm[i]), buf.scalar(perm[j])) < 0
		})
	}

	inverted := make(map[string]bool, len(b.cfg.InvertedColumns))
	for _, ic := range b.cfg.InvertedColumns {
		inverted[ic] = true
	}

	columns := make(map[string]*Column, len(b.schema.Fields))
	var minTime, maxTime int64
	timeCol := b.schema.TimeColumn()
	for fi, f := range b.schema.Fields {
		buf := b.buffers[fi]
		col := &Column{spec: f, numDocs: n}
		if f.Kind == Metric {
			// Raw metric storage in permuted document order.
			if f.Type.Integral() {
				values := make([]int64, n)
				for doc, src := range perm {
					values[doc] = buf.longs[src]
				}
				col.metric = newLongMetricColumn(values)
			} else {
				values := make([]float64, n)
				for doc, src := range perm {
					values[doc] = buf.doubles[src]
				}
				col.metric = newDoubleMetricColumn(values)
			}
			columns[f.Name] = col
			continue
		}
		// Dictionary-encoded dimension / time column.
		var dict Dictionary
		var err error
		if f.SingleValue {
			values := make([]any, n)
			for i := 0; i < n; i++ {
				values[i] = buf.scalar(i)
			}
			dict, err = newDictionary(f.Type, values)
			if err != nil {
				return nil, err
			}
			ids := make([]int, n)
			for doc, src := range perm {
				id, ok := dict.IndexOf(values[src])
				if !ok {
					return nil, fmt.Errorf("segment: internal: value missing from dictionary for %q", f.Name)
				}
				ids[doc] = id
			}
			col.dict = dict
			col.fwd = newSVForwardIndex(ids, dict.Len())
			col.sortedRanges = col.detectSortedRanges()
		} else {
			var flat []any
			for i := 0; i < n; i++ {
				flat = append(flat, buf.multi(i)...)
			}
			if len(flat) == 0 {
				return nil, fmt.Errorf("segment: multi-value column %q has no values", f.Name)
			}
			dict, err = newDictionary(f.Type, flat)
			if err != nil {
				return nil, err
			}
			idLists := make([][]int, n)
			for doc, src := range perm {
				vals := buf.multi(src)
				ids := make([]int, len(vals))
				for j, v := range vals {
					id, ok := dict.IndexOf(v)
					if !ok {
						return nil, fmt.Errorf("segment: internal: value missing from dictionary for %q", f.Name)
					}
					ids[j] = id
				}
				idLists[doc] = ids
			}
			col.dict = dict
			col.mv = newMVForwardIndex(idLists, dict.Len())
		}
		if inverted[f.Name] {
			col.buildInverted()
		}
		if f.Name == timeCol {
			minTime = dict.Min().(int64)
			maxTime = dict.Max().(int64)
		}
		columns[f.Name] = col
	}

	meta := Metadata{
		Name:       b.name,
		Table:      b.table,
		Schema:     b.schema,
		NumDocs:    n,
		SortColumn: b.cfg.SortColumn,
		TimeColumn: timeCol,
		MinTime:    minTime,
		MaxTime:    maxTime,
	}
	for _, f := range b.schema.Fields {
		c := columns[f.Name]
		meta.Columns = append(meta.Columns, ColumnMetadata{
			Name:          f.Name,
			Type:          f.Type,
			Kind:          f.Kind,
			SingleValue:   f.SingleValue,
			Cardinality:   c.Cardinality(),
			Sorted:        c.IsSorted(),
			HasDictionary: c.HasDictionary(),
			HasInverted:   c.HasInverted(),
			BitsPerValue:  c.BitsPerValue(),
			MinValue:      fmt.Sprint(c.MinValue()),
			MaxValue:      fmt.Sprint(c.MaxValue()),
			Zone:          buildZoneMap(c),
		})
	}
	return &Segment{meta: meta, columns: columns}, nil
}
