package segment

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pinot/internal/bitmap"
)

// Segment on-disk layout: a directory holding metadata.json and columns.psf.
// columns.psf is an append-only block file (paper section 3.2: "This file is
// append-only which allows the server to create inverted indexes on
// demand"): blocks added later for the same column+type override earlier
// ones at load time.
const (
	// MetadataFile is the JSON metadata file name inside a segment dir.
	MetadataFile = "metadata.json"
	// IndexFile is the columnar index block file name inside a segment dir.
	IndexFile = "columns.psf"
)

const psfMagic = uint32(0x50_53_46_31) // "PSF1"

// maxBlockBytes bounds a single index block; corrupted headers fail fast
// instead of over-allocating.
const maxBlockBytes = 1 << 31

// validate sanity-checks deserialized metadata before any index block is
// interpreted against it.
func (m *Metadata) validate() error {
	if m.Schema == nil {
		return errors.New("segment: metadata missing schema")
	}
	if m.Name == "" {
		return errors.New("segment: metadata missing segment name")
	}
	if m.NumDocs <= 0 {
		return fmt.Errorf("segment: metadata has invalid document count %d", m.NumDocs)
	}
	return nil
}

type blockType uint8

const (
	blockDict blockType = iota + 1
	blockSVFwd
	blockMVFwd
	blockMetric
	blockInverted
	blockStarTree
	blockMetadata
)

func writeBlock(w io.Writer, name string, bt blockType, payload []byte) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(name))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(bt)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(payload))); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

type block struct {
	name    string
	typ     blockType
	payload []byte
}

func readBlock(r io.Reader) (*block, error) {
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	var bt uint8
	if err := binary.Read(r, binary.LittleEndian, &bt); err != nil {
		return nil, err
	}
	var plen uint64
	if err := binary.Read(r, binary.LittleEndian, &plen); err != nil {
		return nil, err
	}
	if plen > maxBlockBytes {
		return nil, fmt.Errorf("segment: corrupt block length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return &block{name: string(name), typ: blockType(bt), payload: payload}, nil
}

func (c *Column) invertedPayload() ([]byte, error) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(c.inverted))); err != nil {
		return nil, err
	}
	for _, bm := range c.inverted {
		if _, err := bm.WriteTo(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

func parseInvertedPayload(payload []byte) ([]*bitmap.Bitmap, error) {
	r := bytes.NewReader(payload)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int64(n) > int64(r.Len()) {
		return nil, fmt.Errorf("segment: corrupt inverted index cardinality %d", n)
	}
	out := make([]*bitmap.Bitmap, n)
	for i := range out {
		bm := bitmap.New()
		if _, err := bm.ReadFrom(r); err != nil {
			return nil, err
		}
		out[i] = bm
	}
	return out, nil
}

// writeIndexBlocks writes every column's blocks (and the star-tree, if
// present) to w in the PSF block format, preceded by the magic.
func (s *Segment) writeIndexBlocks(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, psfMagic); err != nil {
		return err
	}
	for _, f := range s.meta.Schema.Fields {
		c := s.columns[f.Name]
		if c.dict != nil {
			var buf bytes.Buffer
			if err := writeDictionary(&buf, c.dict); err != nil {
				return err
			}
			if err := writeBlock(w, f.Name, blockDict, buf.Bytes()); err != nil {
				return err
			}
		}
		switch {
		case c.fwd != nil:
			var buf bytes.Buffer
			if err := c.fwd.writeTo(&buf); err != nil {
				return err
			}
			if err := writeBlock(w, f.Name, blockSVFwd, buf.Bytes()); err != nil {
				return err
			}
		case c.mv != nil:
			var buf bytes.Buffer
			if err := c.mv.writeTo(&buf); err != nil {
				return err
			}
			if err := writeBlock(w, f.Name, blockMVFwd, buf.Bytes()); err != nil {
				return err
			}
		case c.metric != nil:
			var buf bytes.Buffer
			if err := writeMetricColumn(&buf, c.metric); err != nil {
				return err
			}
			if err := writeBlock(w, f.Name, blockMetric, buf.Bytes()); err != nil {
				return err
			}
		}
		if c.inverted != nil {
			payload, err := c.invertedPayload()
			if err != nil {
				return err
			}
			if err := writeBlock(w, f.Name, blockInverted, payload); err != nil {
				return err
			}
		}
	}
	if s.starTreeData != nil {
		if err := writeBlock(w, "", blockStarTree, s.starTreeData); err != nil {
			return err
		}
	}
	return nil
}

// loadIndexBlocks reconstructs columns from a PSF stream, given metadata.
func loadIndexBlocks(r io.Reader, meta *Metadata) (map[string]*Column, []byte, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, nil, err
	}
	if magic != psfMagic {
		return nil, nil, errors.New("segment: bad index file magic")
	}
	columns := make(map[string]*Column)
	var starTree []byte
	colFor := func(name string) (*Column, error) {
		if c, ok := columns[name]; ok {
			return c, nil
		}
		f, ok := meta.Schema.Field(name)
		if !ok {
			return nil, fmt.Errorf("segment: index block for unknown column %q", name)
		}
		c := &Column{spec: f, numDocs: meta.NumDocs}
		columns[name] = c
		return c, nil
	}
	for {
		b, err := readBlock(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if b.typ == blockStarTree {
			starTree = b.payload
			continue
		}
		c, err := colFor(b.name)
		if err != nil {
			return nil, nil, err
		}
		br := bytes.NewReader(b.payload)
		switch b.typ {
		case blockDict:
			d, err := readDictionary(br)
			if err != nil {
				return nil, nil, err
			}
			// Preserve the declared type over the storage type.
			c.dict = d
		case blockSVFwd:
			fwd, err := readSVForwardIndex(br)
			if err != nil {
				return nil, nil, err
			}
			c.fwd = fwd
		case blockMVFwd:
			mv, err := readMVForwardIndex(br)
			if err != nil {
				return nil, nil, err
			}
			c.mv = mv
		case blockMetric:
			m, err := readMetricColumn(br)
			if err != nil {
				return nil, nil, err
			}
			c.metric = m
		case blockInverted:
			inv, err := parseInvertedPayload(b.payload)
			if err != nil {
				return nil, nil, err
			}
			c.inverted = inv
		default:
			return nil, nil, fmt.Errorf("segment: unknown block type %d", b.typ)
		}
	}
	// Structural validation before any derived index is built: corrupted
	// blobs must fail here, never panic later.
	for name, c := range columns {
		if err := c.validate(meta.NumDocs); err != nil {
			return nil, nil, fmt.Errorf("segment: column %q: %w", name, err)
		}
	}
	for _, f := range meta.Schema.Fields {
		if _, ok := columns[f.Name]; !ok {
			return nil, nil, fmt.Errorf("segment: column %q missing from index file", f.Name)
		}
	}
	// Rebuild derived sorted-range indexes.
	for _, c := range columns {
		if c.fwd != nil && c.dict != nil {
			c.sortedRanges = c.detectSortedRanges()
		}
	}
	return columns, starTree, nil
}

// validate cross-checks a loaded column's structures against each other and
// the segment document count.
func (c *Column) validate(numDocs int) error {
	switch {
	case c.metric != nil:
		if c.metric.NumDocs() != numDocs {
			return fmt.Errorf("metric column has %d docs, segment has %d", c.metric.NumDocs(), numDocs)
		}
		if c.dict != nil || c.fwd != nil || c.mv != nil {
			return errors.New("metric column with dictionary blocks")
		}
		return nil
	case c.dict == nil:
		return errors.New("dimension column without dictionary")
	}
	card := c.dict.Len()
	if card == 0 {
		return errors.New("empty dictionary")
	}
	switch {
	case c.fwd != nil:
		if c.fwd.NumDocs() != numDocs {
			return fmt.Errorf("forward index has %d docs, segment has %d", c.fwd.NumDocs(), numDocs)
		}
		for doc := 0; doc < numDocs; doc++ {
			if id := c.fwd.Get(doc); id >= card {
				return fmt.Errorf("doc %d has dict id %d beyond cardinality %d", doc, id, card)
			}
		}
	case c.mv != nil:
		if c.mv.NumDocs() != numDocs {
			return fmt.Errorf("MV forward index has %d docs, segment has %d", c.mv.NumDocs(), numDocs)
		}
		if err := c.mv.validate(card); err != nil {
			return err
		}
	default:
		return errors.New("dimension column without forward index")
	}
	if c.inverted != nil {
		if len(c.inverted) != card {
			return fmt.Errorf("inverted index has %d postings, dictionary has %d", len(c.inverted), card)
		}
		for id, bm := range c.inverted {
			if max, ok := bm.Maximum(); ok && int(max) >= numDocs {
				return fmt.Errorf("posting list %d references doc %d beyond %d", id, max, numDocs)
			}
		}
	}
	return nil
}

// Save writes the segment to a directory (metadata.json + columns.psf).
func (s *Segment) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	metaBytes, err := json.MarshalIndent(s.meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, MetadataFile), metaBytes, 0o644); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, IndexFile))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.writeIndexBlocks(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a segment from a directory written by Save.
func Load(dir string) (*Segment, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, MetadataFile))
	if err != nil {
		return nil, err
	}
	var meta Metadata
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("segment: corrupt metadata: %w", err)
	}
	if err := meta.validate(); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, IndexFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	columns, starTree, err := loadIndexBlocks(f, &meta)
	if err != nil {
		return nil, err
	}
	return &Segment{meta: meta, columns: columns, starTreeData: starTree}, nil
}

// AppendInvertedIndex builds an inverted index for a column and appends it
// to the on-disk index file without rewriting existing blocks, exercising
// the append-only property of the segment format.
func AppendInvertedIndex(dir string, s *Segment, column string) error {
	if err := s.AddInvertedIndex(column); err != nil {
		return err
	}
	c := s.columns[column]
	payload, err := c.invertedPayload()
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, IndexFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := writeBlock(f, column, blockInverted, payload); err != nil {
		return err
	}
	// Metadata gains the index flag too.
	metaBytes, err := json.MarshalIndent(s.meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, MetadataFile), metaBytes, 0o644); err != nil {
		return err
	}
	return f.Close()
}

// Marshal serializes the whole segment (metadata + indexes) into one blob
// suitable for the object store.
func (s *Segment) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	metaBytes, err := json.Marshal(s.meta)
	if err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, psfMagic); err != nil {
		return nil, err
	}
	if err := writeBlock(&buf, "", blockMetadata, metaBytes); err != nil {
		return nil, err
	}
	var idx bytes.Buffer
	if err := s.writeIndexBlocks(&idx); err != nil {
		return nil, err
	}
	if _, err := buf.Write(idx.Bytes()[4:]); err != nil { // skip inner magic
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal reconstructs a segment from a Marshal blob.
func Unmarshal(data []byte) (*Segment, error) {
	r := bytes.NewReader(data)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != psfMagic {
		return nil, errors.New("segment: bad blob magic")
	}
	mb, err := readBlock(r)
	if err != nil {
		return nil, err
	}
	if mb.typ != blockMetadata {
		return nil, errors.New("segment: blob does not start with metadata block")
	}
	var meta Metadata
	if err := json.Unmarshal(mb.payload, &meta); err != nil {
		return nil, err
	}
	if err := meta.validate(); err != nil {
		return nil, err
	}
	// Re-prefix the remaining bytes with the magic so loadIndexBlocks can
	// consume them.
	rest := make([]byte, 4+r.Len())
	binary.LittleEndian.PutUint32(rest, psfMagic)
	if _, err := io.ReadFull(r, rest[4:]); err != nil {
		return nil, err
	}
	columns, starTree, err := loadIndexBlocks(bytes.NewReader(rest), &meta)
	if err != nil {
		return nil, err
	}
	return &Segment{meta: meta, columns: columns, starTreeData: starTree}, nil
}
