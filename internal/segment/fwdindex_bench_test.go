package segment

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestPackedGetBlock cross-checks the width-specialized batch unpack against
// the scalar get() for aligned widths, word-divisor widths and widths whose
// values spill across word boundaries, at every block offset alignment.
func TestPackedGetBlock(t *testing.T) {
	widths := []uint8{1, 2, 4, 7, 8, 13, 16, 20, 24, 32}
	r := rand.New(rand.NewSource(42))
	for _, w := range widths {
		t.Run(fmt.Sprintf("width=%d", w), func(t *testing.T) {
			const n = 3000
			p := newPackedInts(n, w)
			var mask uint32 = 0xFFFFFFFF
			if w < 32 {
				mask = (1 << w) - 1
			}
			want := make([]uint32, n)
			for i := 0; i < n; i++ {
				want[i] = r.Uint32() & mask
				p.set(i, want[i])
			}
			dst := make([]uint32, n)
			for _, span := range []struct{ start, size int }{
				{0, n}, {1, n - 1}, {7, 1024}, {63, 65}, {64, 64},
				{n - 1, 1}, {1531, 999}, {0, 1}, {0, 0},
			} {
				p.getBlock(span.start, dst[:span.size])
				for i := 0; i < span.size; i++ {
					if dst[i] != want[span.start+i] {
						t.Fatalf("getBlock(%d, len %d)[%d] = %d, want %d",
							span.start, span.size, i, dst[i], want[span.start+i])
					}
				}
			}
			// Random spans to hit odd start/length alignments.
			for k := 0; k < 200; k++ {
				start := r.Intn(n)
				size := 1 + r.Intn(n-start)
				p.getBlock(start, dst[:size])
				for i := 0; i < size; i++ {
					if dst[i] != want[start+i] {
						t.Fatalf("getBlock(%d, len %d)[%d] = %d, want %d",
							start, size, i, dst[i], want[start+i])
					}
				}
			}
		})
	}
}

func benchPacked(b *testing.B, w uint8, block bool) {
	const n = 1 << 16
	p := newPackedInts(n, w)
	r := rand.New(rand.NewSource(7))
	var mask uint32 = 0xFFFFFFFF
	if w < 32 {
		mask = (1 << w) - 1
	}
	for i := 0; i < n; i++ {
		p.set(i, r.Uint32()&mask)
	}
	dst := make([]uint32, 1024)
	var sink uint32
	b.SetBytes(n * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if block {
			for start := 0; start < n; start += len(dst) {
				p.getBlock(start, dst)
				sink += dst[0]
			}
		} else {
			for d := 0; d < n; d++ {
				sink += p.get(d)
			}
		}
	}
	_ = sink
}

// BenchmarkPackedGetBlock vs BenchmarkPackedGet measures the batch bit-unpack
// kernels against per-value extraction for each specialization class:
// byte-aligned (8/16/32), word-divisor (4), and spilling (7/13/20).
func BenchmarkPackedGetBlock(b *testing.B) {
	for _, w := range []uint8{4, 7, 8, 13, 16, 20, 32} {
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) { benchPacked(b, w, true) })
	}
}

func BenchmarkPackedGet(b *testing.B) {
	for _, w := range []uint8{4, 7, 8, 13, 16, 20, 32} {
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) { benchPacked(b, w, false) })
	}
}
