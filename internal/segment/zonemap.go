package segment

import (
	"math"
)

// maxBloomCardinality bounds the dictionary size for which a bloom filter is
// built. Above it the filter would cost more metadata than the scans it
// saves; min/max pruning still applies.
const maxBloomCardinality = 1 << 16

// bloomBitsPerKey sizes the filter at build time (~1% false positives with
// the matching hash count below).
const bloomBitsPerKey = 10

// Bloom is a split-block-free, double-hashed bloom filter over the canonical
// values of a dictionary. It travels inside segment metadata (JSON encodes
// Bits as base64), so membership checks never touch column data.
type Bloom struct {
	// K is the number of probes per key.
	K uint32 `json:"k"`
	// M is the number of bits.
	M uint64 `json:"m"`
	// Bits is the backing bitset, little-endian within each byte.
	Bits []byte `json:"bits"`
}

// NewBloom sizes a filter for n keys at bloomBitsPerKey bits each.
func NewBloom(n int) *Bloom {
	if n < 1 {
		n = 1
	}
	m := uint64(n) * bloomBitsPerKey
	if m < 64 {
		m = 64
	}
	return &Bloom{K: 7, M: m, Bits: make([]byte, (m+7)/8)}
}

// Add inserts a canonical value.
func (b *Bloom) Add(v any) {
	h1, h2 := bloomHashes(v)
	for i := uint32(0); i < b.K; i++ {
		bit := (h1 + uint64(i)*h2) % b.M
		b.Bits[bit/8] |= 1 << (bit % 8)
	}
}

// MayContain reports whether a canonical value may be present. False means
// definitely absent; true may be a false positive. A nil or corrupt filter
// answers true, so pruning degrades to min/max only.
func (b *Bloom) MayContain(v any) bool {
	if b == nil || b.M == 0 || uint64(len(b.Bits))*8 < b.M {
		return true
	}
	h1, h2 := bloomHashes(v)
	for i := uint32(0); i < b.K; i++ {
		bit := (h1 + uint64(i)*h2) % b.M
		if b.Bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// bloomHashes derives the two double-hashing bases from a canonical value.
// The value is hashed over a type tag plus its raw bytes (FNV-1a), so int64 3
// and float64 3.0 do not collide by construction.
func bloomHashes(v any) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	step := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	word := func(tag byte, x uint64) {
		step(tag)
		for i := 0; i < 8; i++ {
			step(byte(x >> (8 * i)))
		}
	}
	switch x := v.(type) {
	case int64:
		word('i', uint64(x))
	case float64:
		word('f', math.Float64bits(x))
	case bool:
		step('b')
		if x {
			step(1)
		} else {
			step(0)
		}
	case string:
		step('s')
		for i := 0; i < len(x); i++ {
			step(x[i])
		}
	default:
		step('?')
	}
	// Second base via a finalizing mix; force it odd so the probe sequence
	// cycles through distinct bits.
	h2 := h
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	return h, h2 | 1
}

// ZoneMap is a column's typed min/max (plus optional dictionary bloom
// filter) persisted in segment metadata. It is the unit of segment pruning:
// loadable without touching column data, and typed so the values survive a
// metadata round-trip exactly (the display-oriented MinValue/MaxValue
// strings do not).
type ZoneMap struct {
	Type DataType `json:"type"`

	MinLong   int64   `json:"minLong,omitempty"`
	MaxLong   int64   `json:"maxLong,omitempty"`
	MinDouble float64 `json:"minDouble,omitempty"`
	MaxDouble float64 `json:"maxDouble,omitempty"`
	MinString string  `json:"minString,omitempty"`
	MaxString string  `json:"maxString,omitempty"`
	MinBool   bool    `json:"minBool,omitempty"`
	MaxBool   bool    `json:"maxBool,omitempty"`

	// Bloom, when present, covers every distinct value of the column
	// (multi-value columns included: every element is inserted).
	Bloom *Bloom `json:"bloom,omitempty"`
}

// NewZoneMap builds a zone map from canonical min/max values. It returns nil
// if either value does not match the declared type, so callers never persist
// a zone map that could mis-prune.
func NewZoneMap(t DataType, min, max any) *ZoneMap {
	z := &ZoneMap{Type: t}
	switch {
	case t.Integral():
		lo, okL := min.(int64)
		hi, okH := max.(int64)
		if !okL || !okH {
			return nil
		}
		z.MinLong, z.MaxLong = lo, hi
	case t.Numeric():
		lo, okL := min.(float64)
		hi, okH := max.(float64)
		if !okL || !okH {
			return nil
		}
		z.MinDouble, z.MaxDouble = lo, hi
	case t == TypeBoolean:
		lo, okL := min.(bool)
		hi, okH := max.(bool)
		if !okL || !okH {
			return nil
		}
		z.MinBool, z.MaxBool = lo, hi
	default:
		lo, okL := min.(string)
		hi, okH := max.(string)
		if !okL || !okH {
			return nil
		}
		z.MinString, z.MaxString = lo, hi
	}
	return z
}

// Min returns the canonical minimum value.
func (z *ZoneMap) Min() any {
	switch {
	case z.Type.Integral():
		return z.MinLong
	case z.Type.Numeric():
		return z.MinDouble
	case z.Type == TypeBoolean:
		return z.MinBool
	default:
		return z.MinString
	}
}

// Max returns the canonical maximum value.
func (z *ZoneMap) Max() any {
	switch {
	case z.Type.Integral():
		return z.MaxLong
	case z.Type.Numeric():
		return z.MaxDouble
	case z.Type == TypeBoolean:
		return z.MaxBool
	default:
		return z.MaxString
	}
}

// MayContain reports whether a canonical value may appear in the column:
// inside [min, max] and, when a bloom filter is present, not definitely
// absent from it.
func (z *ZoneMap) MayContain(v any) bool {
	if CompareValues(v, z.Min()) < 0 || CompareValues(v, z.Max()) > 0 {
		return false
	}
	return z.Bloom.MayContain(v)
}

// buildZoneMap derives a column's zone map at build time: typed min/max from
// the column statistics, plus a bloom over the dictionary when the
// cardinality is worth it.
func buildZoneMap(c *Column) *ZoneMap {
	z := NewZoneMap(c.spec.Type, c.MinValue(), c.MaxValue())
	if z == nil {
		return nil
	}
	if c.dict != nil && c.dict.Len() <= maxBloomCardinality {
		b := NewBloom(c.dict.Len())
		for id := 0; id < c.dict.Len(); id++ {
			b.Add(c.dict.Value(id))
		}
		z.Bloom = b
	}
	return z
}
