package segment

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Dictionary maps between dictionary ids and column values. Immutable
// dictionaries are value-sorted, so ascending dict ids correspond to
// ascending values and range predicates reduce to dict-id ranges.
type Dictionary interface {
	Type() DataType
	Len() int
	// Value returns the value for a dict id.
	Value(id int) any
	// IndexOf returns the dict id of a canonical value.
	IndexOf(v any) (int, bool)
	// Sorted reports whether ascending ids correspond to ascending values.
	Sorted() bool
	// Range returns the dict-id half-open interval [lo, hi) of values
	// within the given bounds. nil means unbounded on that side. Only
	// valid for sorted dictionaries.
	Range(lower, upper any, lowerInclusive, upperInclusive bool) (int, int)
	// Min and Max return the smallest and largest values.
	Min() any
	Max() any
}

type int64Dictionary struct{ values []int64 }

func (d *int64Dictionary) Type() DataType { return TypeLong }
func (d *int64Dictionary) Len() int       { return len(d.values) }
func (d *int64Dictionary) Value(id int) any {
	return d.values[id]
}
func (d *int64Dictionary) Sorted() bool { return true }
func (d *int64Dictionary) Min() any     { return d.values[0] }
func (d *int64Dictionary) Max() any     { return d.values[len(d.values)-1] }
func (d *int64Dictionary) IndexOf(v any) (int, bool) {
	x, ok := v.(int64)
	if !ok {
		return 0, false
	}
	i := sort.Search(len(d.values), func(i int) bool { return d.values[i] >= x })
	if i < len(d.values) && d.values[i] == x {
		return i, true
	}
	return 0, false
}
func (d *int64Dictionary) Range(lower, upper any, loIncl, hiIncl bool) (int, int) {
	lo := 0
	if lower != nil {
		x := lower.(int64)
		if loIncl {
			lo = sort.Search(len(d.values), func(i int) bool { return d.values[i] >= x })
		} else {
			lo = sort.Search(len(d.values), func(i int) bool { return d.values[i] > x })
		}
	}
	hi := len(d.values)
	if upper != nil {
		x := upper.(int64)
		if hiIncl {
			hi = sort.Search(len(d.values), func(i int) bool { return d.values[i] > x })
		} else {
			hi = sort.Search(len(d.values), func(i int) bool { return d.values[i] >= x })
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

type float64Dictionary struct{ values []float64 }

func (d *float64Dictionary) Type() DataType { return TypeDouble }
func (d *float64Dictionary) Len() int       { return len(d.values) }
func (d *float64Dictionary) Value(id int) any {
	return d.values[id]
}
func (d *float64Dictionary) Sorted() bool { return true }
func (d *float64Dictionary) Min() any     { return d.values[0] }
func (d *float64Dictionary) Max() any     { return d.values[len(d.values)-1] }
func (d *float64Dictionary) IndexOf(v any) (int, bool) {
	x, ok := v.(float64)
	if !ok {
		return 0, false
	}
	i := sort.Search(len(d.values), func(i int) bool { return d.values[i] >= x })
	if i < len(d.values) && d.values[i] == x {
		return i, true
	}
	return 0, false
}
func (d *float64Dictionary) Range(lower, upper any, loIncl, hiIncl bool) (int, int) {
	lo := 0
	if lower != nil {
		x := lower.(float64)
		if loIncl {
			lo = sort.Search(len(d.values), func(i int) bool { return d.values[i] >= x })
		} else {
			lo = sort.Search(len(d.values), func(i int) bool { return d.values[i] > x })
		}
	}
	hi := len(d.values)
	if upper != nil {
		x := upper.(float64)
		if hiIncl {
			hi = sort.Search(len(d.values), func(i int) bool { return d.values[i] > x })
		} else {
			hi = sort.Search(len(d.values), func(i int) bool { return d.values[i] >= x })
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

type stringDictionary struct{ values []string }

func (d *stringDictionary) Type() DataType { return TypeString }
func (d *stringDictionary) Len() int       { return len(d.values) }
func (d *stringDictionary) Value(id int) any {
	return d.values[id]
}
func (d *stringDictionary) Sorted() bool { return true }
func (d *stringDictionary) Min() any     { return d.values[0] }
func (d *stringDictionary) Max() any     { return d.values[len(d.values)-1] }
func (d *stringDictionary) IndexOf(v any) (int, bool) {
	x, ok := v.(string)
	if !ok {
		return 0, false
	}
	i := sort.Search(len(d.values), func(i int) bool { return d.values[i] >= x })
	if i < len(d.values) && d.values[i] == x {
		return i, true
	}
	return 0, false
}
func (d *stringDictionary) Range(lower, upper any, loIncl, hiIncl bool) (int, int) {
	lo := 0
	if lower != nil {
		x := lower.(string)
		if loIncl {
			lo = sort.Search(len(d.values), func(i int) bool { return d.values[i] >= x })
		} else {
			lo = sort.Search(len(d.values), func(i int) bool { return d.values[i] > x })
		}
	}
	hi := len(d.values)
	if upper != nil {
		x := upper.(string)
		if hiIncl {
			hi = sort.Search(len(d.values), func(i int) bool { return d.values[i] > x })
		} else {
			hi = sort.Search(len(d.values), func(i int) bool { return d.values[i] >= x })
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

type boolDictionary struct{ values []bool } // sorted: false before true

func (d *boolDictionary) Type() DataType { return TypeBoolean }
func (d *boolDictionary) Len() int       { return len(d.values) }
func (d *boolDictionary) Value(id int) any {
	return d.values[id]
}
func (d *boolDictionary) Sorted() bool { return true }
func (d *boolDictionary) Min() any     { return d.values[0] }
func (d *boolDictionary) Max() any     { return d.values[len(d.values)-1] }
func (d *boolDictionary) IndexOf(v any) (int, bool) {
	x, ok := v.(bool)
	if !ok {
		return 0, false
	}
	for i, b := range d.values {
		if b == x {
			return i, true
		}
	}
	return 0, false
}
func (d *boolDictionary) Range(lower, upper any, loIncl, hiIncl bool) (int, int) {
	lo, hi := 0, len(d.values)
	if lower != nil {
		x := lower.(bool)
		for lo < hi {
			v := d.values[lo]
			if CompareValues(v, x) > 0 || (loIncl && v == x) {
				break
			}
			lo++
		}
	}
	if upper != nil {
		x := upper.(bool)
		for hi > lo {
			v := d.values[hi-1]
			if CompareValues(v, x) < 0 || (hiIncl && v == x) {
				break
			}
			hi--
		}
	}
	return lo, hi
}

// newDictionary builds a sorted dictionary from the distinct values of a
// column. The input need not be sorted or deduplicated.
func newDictionary(t DataType, values []any) (Dictionary, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("segment: cannot build dictionary with no values")
	}
	switch {
	case t.Integral():
		seen := make(map[int64]struct{}, len(values))
		for _, v := range values {
			seen[v.(int64)] = struct{}{}
		}
		out := make([]int64, 0, len(seen))
		for v := range seen {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return &int64Dictionary{out}, nil
	case t.Numeric():
		seen := make(map[float64]struct{}, len(values))
		for _, v := range values {
			seen[v.(float64)] = struct{}{}
		}
		out := make([]float64, 0, len(seen))
		for v := range seen {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return &float64Dictionary{out}, nil
	case t == TypeBoolean:
		var hasF, hasT bool
		for _, v := range values {
			if v.(bool) {
				hasT = true
			} else {
				hasF = true
			}
		}
		var out []bool
		if hasF {
			out = append(out, false)
		}
		if hasT {
			out = append(out, true)
		}
		return &boolDictionary{out}, nil
	default:
		seen := make(map[string]struct{}, len(values))
		for _, v := range values {
			seen[v.(string)] = struct{}{}
		}
		out := make([]string, 0, len(seen))
		for v := range seen {
			out = append(out, v)
		}
		sort.Strings(out)
		return &stringDictionary{out}, nil
	}
}

// writeDictionary serializes a dictionary.
func writeDictionary(w io.Writer, d Dictionary) error {
	if err := binary.Write(w, binary.LittleEndian, uint8(d.Type())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(d.Len())); err != nil {
		return err
	}
	switch dd := d.(type) {
	case *int64Dictionary:
		return binary.Write(w, binary.LittleEndian, dd.values)
	case *float64Dictionary:
		return binary.Write(w, binary.LittleEndian, dd.values)
	case *boolDictionary:
		bs := make([]uint8, len(dd.values))
		for i, b := range dd.values {
			if b {
				bs[i] = 1
			}
		}
		return binary.Write(w, binary.LittleEndian, bs)
	case *stringDictionary:
		for _, s := range dd.values {
			if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("segment: unknown dictionary type %T", d)
}

// readDictionary deserializes a dictionary written by writeDictionary.
// Element counts are validated against the remaining payload so corrupted
// blobs fail cleanly instead of over-allocating.
func readDictionary(r *bytes.Reader) (Dictionary, error) {
	var t uint8
	if err := binary.Read(r, binary.LittleEndian, &t); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > math.MaxInt32 || int64(n) > int64(r.Len()) {
		return nil, fmt.Errorf("segment: dictionary too large: %d", n)
	}
	switch DataType(t) {
	case TypeInt, TypeLong:
		if uint64(n)*8 > uint64(r.Len()) {
			return nil, fmt.Errorf("segment: corrupt dictionary length %d", n)
		}
		values := make([]int64, n)
		if err := binary.Read(r, binary.LittleEndian, values); err != nil {
			return nil, err
		}
		return &int64Dictionary{values}, nil
	case TypeFloat, TypeDouble:
		if uint64(n)*8 > uint64(r.Len()) {
			return nil, fmt.Errorf("segment: corrupt dictionary length %d", n)
		}
		values := make([]float64, n)
		if err := binary.Read(r, binary.LittleEndian, values); err != nil {
			return nil, err
		}
		return &float64Dictionary{values}, nil
	case TypeBoolean:
		bs := make([]uint8, n)
		if err := binary.Read(r, binary.LittleEndian, bs); err != nil {
			return nil, err
		}
		values := make([]bool, n)
		for i, b := range bs {
			values[i] = b != 0
		}
		return &boolDictionary{values}, nil
	case TypeString:
		values := make([]string, n)
		for i := range values {
			var l uint32
			if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
				return nil, err
			}
			if int64(l) > int64(r.Len()) {
				return nil, fmt.Errorf("segment: corrupt dictionary string length %d", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			values[i] = string(buf)
		}
		return &stringDictionary{values}, nil
	}
	return nil, fmt.Errorf("segment: unknown dictionary type byte %d", t)
}

// MutableDictionary is the hash-based unsorted dictionary used by realtime
// consuming segments: new values get the next id in arrival order.
type MutableDictionary struct {
	typ    DataType
	ids    map[any]int
	values []any
}

// NewMutableDictionary returns an empty mutable dictionary for a type.
func NewMutableDictionary(t DataType) *MutableDictionary {
	return &MutableDictionary{typ: t, ids: make(map[any]int)}
}

// Index returns the dict id for a canonical value, inserting it if absent.
func (d *MutableDictionary) Index(v any) int {
	if id, ok := d.ids[v]; ok {
		return id
	}
	id := len(d.values)
	d.ids[v] = id
	d.values = append(d.values, v)
	return id
}

// Type returns the dictionary's data type.
func (d *MutableDictionary) Type() DataType { return d.typ }

// Len returns the number of distinct values.
func (d *MutableDictionary) Len() int { return len(d.values) }

// Value returns the value for a dict id.
func (d *MutableDictionary) Value(id int) any { return d.values[id] }

// IndexOf returns the dict id of a value without inserting.
func (d *MutableDictionary) IndexOf(v any) (int, bool) {
	id, ok := d.ids[v]
	return id, ok
}

// Sorted reports false: arrival order is not value order.
func (d *MutableDictionary) Sorted() bool { return false }

// Range is unsupported on unsorted dictionaries; callers must check Sorted
// and fall back to scanning the dictionary.
func (d *MutableDictionary) Range(lower, upper any, loIncl, hiIncl bool) (int, int) {
	panic("segment: Range on unsorted mutable dictionary")
}

// Min returns the smallest value currently in the dictionary.
func (d *MutableDictionary) Min() any {
	min := d.values[0]
	for _, v := range d.values[1:] {
		if CompareValues(v, min) < 0 {
			min = v
		}
	}
	return min
}

// Max returns the largest value currently in the dictionary.
func (d *MutableDictionary) Max() any {
	max := d.values[0]
	for _, v := range d.values[1:] {
		if CompareValues(v, max) > 0 {
			max = v
		}
	}
	return max
}
