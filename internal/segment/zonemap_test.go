package segment

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	values := make([]string, 2000)
	for i := range values {
		values[i] = fmt.Sprintf("value-%d-%d", i, r.Int63())
	}
	b := NewBloom(len(values))
	for _, v := range values {
		b.Add(v)
	}
	for _, v := range values {
		if !b.MayContain(v) {
			t.Fatalf("false negative for %q", v)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(5000)
	for i := 0; i < 5000; i++ {
		b.Add(int64(i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if b.MayContain(int64(1_000_000 + i)) {
			fp++
		}
	}
	// 10 bits/key with 7 hashes targets ~1%; allow generous slack.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestBloomTypeTagsDistinguishValues(t *testing.T) {
	b := NewBloom(4)
	b.Add(int64(3))
	if !b.MayContain(int64(3)) {
		t.Fatal("false negative on int64")
	}
	// float64 3.0 hashes under a different type tag; with only one key in
	// the filter it must not collide with int64 3.
	if b.MayContain(float64(3)) {
		t.Fatal("float64 3.0 collided with int64 3")
	}
}

func TestBloomNilAndCorruptAnswerTrue(t *testing.T) {
	var nilBloom *Bloom
	if !nilBloom.MayContain("x") {
		t.Fatal("nil bloom must answer true")
	}
	corrupt := &Bloom{K: 7, M: 1024, Bits: make([]byte, 4)} // too short for M
	if !corrupt.MayContain("x") {
		t.Fatal("corrupt bloom must answer true")
	}
}

func TestZoneMapMayContain(t *testing.T) {
	z := NewZoneMap(TypeLong, int64(10), int64(20))
	if z == nil {
		t.Fatal("nil zone map")
	}
	if z.MayContain(int64(9)) || z.MayContain(int64(21)) {
		t.Fatal("out-of-range value reported possible")
	}
	if !z.MayContain(int64(10)) || !z.MayContain(int64(20)) || !z.MayContain(int64(15)) {
		t.Fatal("in-range value reported absent")
	}
	if NewZoneMap(TypeLong, "a", "b") != nil {
		t.Fatal("type-mismatched zone map must be nil")
	}
}

func buildZoneSegment(t *testing.T) *Segment {
	t.Helper()
	schema, err := NewSchema("zt", []FieldSpec{
		{Name: "country", Type: TypeString, Kind: Dimension, SingleValue: true},
		{Name: "tags", Type: TypeString, Kind: Dimension, SingleValue: false},
		{Name: "clicks", Type: TypeLong, Kind: Metric, SingleValue: true},
		{Name: "score", Type: TypeDouble, Kind: Metric, SingleValue: true},
		{Name: "day", Type: TypeLong, Kind: Time, SingleValue: true, TimeUnit: "DAYS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder("zt", "zt_0", schema, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row := Row{
			fmt.Sprintf("c%d", i%5),
			[]string{fmt.Sprintf("t%d", i%3), fmt.Sprintf("t%d", i%7)},
			int64(i * 3),
			float64(i) / 2,
			int64(17000 + i%10),
		}
		if err := b.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestBuilderPopulatesZoneMaps(t *testing.T) {
	seg := buildZoneSegment(t)
	checks := []struct {
		col      string
		min, max any
	}{
		{"country", "c0", "c4"},
		{"tags", "t0", "t6"},
		{"clicks", int64(0), int64(297)},
		{"score", float64(0), 49.5},
		{"day", int64(17000), int64(17009)},
	}
	for _, c := range checks {
		cm := seg.ColumnMeta(c.col)
		if cm == nil || cm.Zone == nil {
			t.Fatalf("%s: missing zone map", c.col)
		}
		if CompareValues(cm.Zone.Min(), c.min) != 0 || CompareValues(cm.Zone.Max(), c.max) != 0 {
			t.Fatalf("%s: zone [%v, %v], want [%v, %v]", c.col, cm.Zone.Min(), cm.Zone.Max(), c.min, c.max)
		}
	}
	// Dictionary columns carry blooms covering every distinct value
	// (multi-value included); raw metric columns have no dictionary and
	// therefore no bloom.
	if seg.ColumnMeta("country").Zone.Bloom == nil {
		t.Fatal("country: missing bloom")
	}
	tz := seg.ColumnMeta("tags").Zone
	if tz.Bloom == nil {
		t.Fatal("tags: missing bloom")
	}
	for i := 0; i < 7; i++ {
		if !tz.Bloom.MayContain(fmt.Sprintf("t%d", i)) {
			t.Fatalf("tags: t%d missing from bloom", i)
		}
	}
	if seg.ColumnMeta("clicks").Zone.Bloom != nil {
		t.Fatal("clicks: raw metric must not carry a bloom")
	}
}

// TestZoneMapSurvivesRoundTrip is the regression for metadata-backed answers:
// the typed zone must come back exactly after Marshal→Unmarshal, unlike the
// display-oriented MinValue/MaxValue strings.
func TestZoneMapSurvivesRoundTrip(t *testing.T) {
	seg := buildZoneSegment(t)
	blob, err := seg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"country", "tags", "clicks", "score", "day"} {
		orig, back := seg.ColumnMeta(col).Zone, loaded.ColumnMeta(col).Zone
		if back == nil {
			t.Fatalf("%s: zone lost in round trip", col)
		}
		if orig.Type != back.Type ||
			CompareValues(orig.Min(), back.Min()) != 0 ||
			CompareValues(orig.Max(), back.Max()) != 0 {
			t.Fatalf("%s: zone changed: %+v vs %+v", col, orig, back)
		}
		if (orig.Bloom == nil) != (back.Bloom == nil) {
			t.Fatalf("%s: bloom presence changed", col)
		}
		if orig.Bloom != nil && string(orig.Bloom.Bits) != string(back.Bloom.Bits) {
			t.Fatalf("%s: bloom bits changed", col)
		}
	}
}
