// Package qcache is the multi-tier query cache substrate: a size-aware,
// scope-indexed cache shared by the broker-side query-result tier and the
// server-side partial-aggregate tier. Entries are grouped under a scope (a
// table resource for the result tier, a segment name for the aggregate
// tier) so a segment state change invalidates exactly the affected entries
// — precise invalidation, never time-based staleness. Eviction is bounded
// by bytes under a selectable LRU or LFU policy with a small-result
// admission bias: dashboard-style workloads repeat many small aggregations,
// and one monster selection must not wipe out a thousand useful entries.
package qcache

import (
	"container/list"
	"sync"

	"pinot/internal/metrics"
)

// Policy selects the eviction discipline.
type Policy string

// Eviction policies.
const (
	// PolicyLRU evicts the least-recently-used entry.
	PolicyLRU Policy = "lru"
	// PolicyLFU evicts the least-frequently-used entry among the coldest
	// candidates (frequency first, recency as the tiebreak), so a burst of
	// one-off queries cannot flush the perennially hot dashboard set.
	PolicyLFU Policy = "lfu"
)

// DefaultMaxBytes bounds a cache tier when the config leaves it zero.
const DefaultMaxBytes = 64 << 20

// lfuScan bounds how many cold-end entries an LFU eviction inspects; the
// victim is the least-frequent (then least-recent) of that window, keeping
// eviction O(1)-ish while still strongly preferring low-frequency entries.
const lfuScan = 16

// Config tunes one cache tier.
type Config struct {
	// Tier labels this cache's metrics ("result", "aggregate").
	Tier string
	// MaxBytes bounds the sum of entry sizes (0 = DefaultMaxBytes).
	MaxBytes int64
	// MaxEntryBytes is the admission cap: entries larger than this are
	// rejected outright — the small-result bias. 0 defaults to MaxBytes/8.
	MaxEntryBytes int64
	// Policy selects eviction (default PolicyLRU).
	Policy Policy
	// Metrics receives the tier's instrumentation (nil = metrics.Default()).
	Metrics *metrics.Registry
}

func (c *Config) withDefaults() {
	if c.Tier == "" {
		c.Tier = "cache"
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.MaxEntryBytes <= 0 {
		c.MaxEntryBytes = c.MaxBytes / 8
	}
	if c.Policy == "" {
		c.Policy = PolicyLRU
	}
}

// entry is one cached value. table is carried so per-table metric families
// stay attributable on eviction and invalidation, where only the scope is
// known to the caller.
type entry struct {
	scope string
	key   string
	table string
	val   any
	size  int64
	freq  int64
}

type cacheMetrics struct {
	hits          *metrics.Family // labels: tier, table
	misses        *metrics.Family
	evictions     *metrics.Family
	invalidations *metrics.Family
	bytesSaved    *metrics.Family
	rejected      *metrics.Family
	bytes         *metrics.Instrument // gauge per tier
	entries       *metrics.Instrument // gauge per tier
}

func newCacheMetrics(reg *metrics.Registry, tier string) *cacheMetrics {
	if reg == nil {
		reg = metrics.Default()
	}
	return &cacheMetrics{
		hits: reg.Counter("pinot_cache_hits_total",
			"Cache lookups served from a tier, per table.", "tier", "table"),
		misses: reg.Counter("pinot_cache_misses_total",
			"Cache lookups that found no entry, per table.", "tier", "table"),
		evictions: reg.Counter("pinot_cache_evictions_total",
			"Entries evicted to stay under the byte bound, per table.", "tier", "table"),
		invalidations: reg.Counter("pinot_cache_invalidations_total",
			"Entries dropped by precise invalidation (segment state change), per table.", "tier", "table"),
		bytesSaved: reg.Counter("pinot_cache_bytes_saved_total",
			"Bytes of result recomputation avoided by cache hits, per table.", "tier", "table"),
		rejected: reg.Counter("pinot_cache_admission_rejects_total",
			"Entries refused admission for exceeding the entry-size cap, per table.", "tier", "table"),
		bytes: reg.Gauge("pinot_cache_bytes",
			"Current bytes held by a cache tier.", "tier").With(tier),
		entries: reg.Gauge("pinot_cache_entries",
			"Current entries held by a cache tier.", "tier").With(tier),
	}
}

// Cache is one tier: a bounded-bytes scoped cache. All methods are safe for
// concurrent use.
type Cache struct {
	cfg Config
	met *cacheMetrics

	mu       sync.Mutex
	order    *list.List               // front = most recently used; values are *entry
	byKey    map[string]*list.Element // composite scope+key → element
	byScope  map[string]map[string]*list.Element
	curBytes int64
}

// New builds a cache tier.
func New(cfg Config) *Cache {
	cfg.withDefaults()
	return &Cache{
		cfg:     cfg,
		met:     newCacheMetrics(cfg.Metrics, cfg.Tier),
		order:   list.New(),
		byKey:   map[string]*list.Element{},
		byScope: map[string]map[string]*list.Element{},
	}
}

func composite(scope, key string) string { return scope + "\x00" + key }

// Get returns the value cached under (scope, key), recording a hit or miss
// for the table. On a hit the entry's recency and frequency are refreshed
// and its size is credited to the table's bytes-saved counter.
func (c *Cache) Get(scope, table, key string) (any, bool) {
	ck := composite(scope, key)
	c.mu.Lock()
	el, ok := c.byKey[ck]
	if !ok {
		c.mu.Unlock()
		c.met.misses.With(c.cfg.Tier, table).Inc()
		return nil, false
	}
	e := el.Value.(*entry)
	e.freq++
	c.order.MoveToFront(el)
	val, size := e.val, e.size
	c.mu.Unlock()
	c.met.hits.With(c.cfg.Tier, table).Inc()
	c.met.bytesSaved.With(c.cfg.Tier, table).Add(size)
	return val, true
}

// Put admits a value under (scope, key), evicting cold entries to stay
// under the byte bound. Values above the entry-size cap are rejected (the
// small-result bias); the return reports admission. Re-putting an existing
// key replaces the value in place.
func (c *Cache) Put(scope, table, key string, val any, size int64) bool {
	if size <= 0 {
		size = 1
	}
	if size > c.cfg.MaxEntryBytes {
		c.met.rejected.With(c.cfg.Tier, table).Inc()
		return false
	}
	ck := composite(scope, key)
	type victim struct{ table string }
	var victims []victim
	c.mu.Lock()
	if el, ok := c.byKey[ck]; ok {
		e := el.Value.(*entry)
		c.curBytes += size - e.size
		e.val, e.size, e.table = val, size, table
		c.order.MoveToFront(el)
	} else {
		e := &entry{scope: scope, key: key, table: table, val: val, size: size, freq: 1}
		el := c.order.PushFront(e)
		c.byKey[ck] = el
		if c.byScope[scope] == nil {
			c.byScope[scope] = map[string]*list.Element{}
		}
		c.byScope[scope][key] = el
		c.curBytes += size
	}
	for c.curBytes > c.cfg.MaxBytes && c.order.Len() > 1 {
		el := c.pickVictimLocked()
		if el == nil || el == c.order.Front() && c.order.Len() == 1 {
			break
		}
		e := el.Value.(*entry)
		c.removeLocked(el)
		victims = append(victims, victim{e.table})
	}
	c.updateGaugesLocked()
	c.mu.Unlock()
	for _, v := range victims {
		c.met.evictions.With(c.cfg.Tier, v.table).Inc()
	}
	return true
}

// pickVictimLocked chooses the entry to evict. LRU takes the back of the
// recency list; LFU scans the lfuScan coldest entries and takes the least
// frequent (least recent on ties).
func (c *Cache) pickVictimLocked() *list.Element {
	back := c.order.Back()
	if back == nil || c.cfg.Policy != PolicyLFU {
		return back
	}
	best := back
	bestFreq := back.Value.(*entry).freq
	el := back
	for i := 1; i < lfuScan && el != nil; i++ {
		el = el.Prev()
		if el == nil {
			break
		}
		if f := el.Value.(*entry).freq; f < bestFreq {
			best, bestFreq = el, f
		}
	}
	return best
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.byKey, composite(e.scope, e.key))
	if m := c.byScope[e.scope]; m != nil {
		delete(m, e.key)
		if len(m) == 0 {
			delete(c.byScope, e.scope)
		}
	}
	c.curBytes -= e.size
}

func (c *Cache) updateGaugesLocked() {
	c.met.bytes.Set(c.curBytes)
	c.met.entries.Set(int64(c.order.Len()))
}

// InvalidateScope drops every entry under a scope, incrementing the
// invalidation counter exactly once per dropped entry, and returns the
// number dropped. A scope with no entries is a no-op.
func (c *Cache) InvalidateScope(scope string) int {
	c.mu.Lock()
	m := c.byScope[scope]
	dropped := make([]string, 0, len(m))
	for _, el := range m {
		dropped = append(dropped, el.Value.(*entry).table)
		c.removeLocked(el)
	}
	c.updateGaugesLocked()
	c.mu.Unlock()
	for _, table := range dropped {
		c.met.invalidations.With(c.cfg.Tier, table).Inc()
	}
	return len(dropped)
}

// InvalidateAll drops every entry in the cache (cluster-wide state change),
// counting each as an invalidation, and returns the number dropped.
func (c *Cache) InvalidateAll() int {
	c.mu.Lock()
	var dropped []string
	for el := c.order.Front(); el != nil; el = el.Next() {
		dropped = append(dropped, el.Value.(*entry).table)
	}
	c.order.Init()
	c.byKey = map[string]*list.Element{}
	c.byScope = map[string]map[string]*list.Element{}
	c.curBytes = 0
	c.updateGaugesLocked()
	c.mu.Unlock()
	for _, table := range dropped {
		c.met.invalidations.With(c.cfg.Tier, table).Inc()
	}
	return len(dropped)
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the current byte total.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}
