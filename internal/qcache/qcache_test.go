package qcache

import (
	"fmt"
	"sync"
	"testing"

	"pinot/internal/metrics"
)

func TestGetPutBasics(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Tier: "result", MaxBytes: 1000, MaxEntryBytes: 1000, Metrics: reg})

	if _, ok := c.Get("scope1", "events", "k1"); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Put("scope1", "events", "k1", "v1", 100) {
		t.Fatal("put rejected")
	}
	v, ok := c.Get("scope1", "events", "k1")
	if !ok || v.(string) != "v1" {
		t.Fatalf("get = %v, %v", v, ok)
	}
	if c.Len() != 1 || c.Bytes() != 100 {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}

	// Replacement updates bytes in place.
	c.Put("scope1", "events", "k1", "v2", 250)
	if c.Len() != 1 || c.Bytes() != 250 {
		t.Fatalf("after replace len=%d bytes=%d", c.Len(), c.Bytes())
	}
	v, _ = c.Get("scope1", "events", "k1")
	if v.(string) != "v2" {
		t.Fatalf("replace not visible: %v", v)
	}

	if got := reg.Value("pinot_cache_hits_total", "result", "events"); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	if got := reg.Value("pinot_cache_misses_total", "result", "events"); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if got := reg.Total("pinot_cache_bytes_saved_total"); got != 350 {
		t.Fatalf("bytes saved = %d, want 350", got)
	}
}

func TestAdmissionRejectsOversized(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Tier: "agg", MaxBytes: 800, MaxEntryBytes: 100, Metrics: reg})
	if c.Put("s", "t", "big", "x", 101) {
		t.Fatal("oversized entry admitted")
	}
	if c.Len() != 0 {
		t.Fatal("oversized entry stored")
	}
	if got := reg.Total("pinot_cache_admission_rejects_total"); got != 1 {
		t.Fatalf("rejects = %d", got)
	}
	// Default cap is MaxBytes/8.
	d := New(Config{Tier: "agg2", MaxBytes: 800, Metrics: reg})
	if d.Put("s", "t", "big", "x", 101) {
		t.Fatal("entry above MaxBytes/8 admitted under default cap")
	}
	if !d.Put("s", "t", "ok", "x", 100) {
		t.Fatal("entry at default cap rejected")
	}
}

func TestLRUEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Tier: "result", MaxBytes: 300, MaxEntryBytes: 300, Metrics: reg})
	c.Put("s", "t", "a", 1, 100)
	c.Put("s", "t", "b", 2, 100)
	c.Put("s", "t", "c", 3, 100)
	// Touch "a" so "b" is the LRU victim.
	c.Get("s", "t", "a")
	c.Put("s", "t", "d", 4, 100)
	if _, ok := c.Get("s", "t", "b"); ok {
		t.Fatal("LRU victim b survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get("s", "t", k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if got := reg.Total("pinot_cache_evictions_total"); got != 1 {
		t.Fatalf("evictions = %d", got)
	}
	if c.Bytes() != 300 {
		t.Fatalf("bytes = %d", c.Bytes())
	}
}

func TestLFUEvictionPrefersColdEntry(t *testing.T) {
	c := New(Config{Tier: "result", MaxBytes: 300, MaxEntryBytes: 300, Policy: PolicyLFU})
	c.Put("s", "t", "hot", 1, 100)
	for i := 0; i < 5; i++ {
		c.Get("s", "t", "hot")
	}
	c.Put("s", "t", "warm", 2, 100)
	c.Get("s", "t", "warm")
	c.Put("s", "t", "cold", 3, 100)
	// "hot" is least-recently used but most frequent; LFU must skip it and
	// evict "cold" (frequency 1), where LRU would have taken "hot".
	c.Put("s", "t", "new", 4, 100)
	if _, ok := c.Get("s", "t", "hot"); !ok {
		t.Fatal("LFU evicted the hot entry")
	}
	if _, ok := c.Get("s", "t", "warm"); !ok {
		t.Fatal("LFU evicted warm over cold")
	}
	if _, ok := c.Get("s", "t", "cold"); ok {
		t.Fatal("LFU kept the cold entry")
	}
}

func TestInvalidateScope(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Tier: "result", MaxBytes: 10000, Metrics: reg})
	c.Put("seg1", "events", "k1", 1, 10)
	c.Put("seg1", "events", "k2", 2, 10)
	c.Put("seg2", "events", "k1", 3, 10)
	if n := c.InvalidateScope("seg1"); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if n := c.InvalidateScope("seg1"); n != 0 {
		t.Fatalf("second invalidation dropped %d", n)
	}
	if _, ok := c.Get("seg2", "events", "k1"); !ok {
		t.Fatal("unrelated scope invalidated")
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if got := reg.Total("pinot_cache_invalidations_total"); got != 2 {
		t.Fatalf("invalidations = %d, want exactly 2", got)
	}
}

func TestInvalidateAll(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{Tier: "result", MaxBytes: 10000, Metrics: reg})
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("seg%d", i), "events", "k", i, 10)
	}
	if n := c.InvalidateAll(); n != 5 {
		t.Fatalf("invalidated %d, want 5", n)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("len=%d bytes=%d after InvalidateAll", c.Len(), c.Bytes())
	}
	if got := reg.Total("pinot_cache_invalidations_total"); got != 5 {
		t.Fatalf("invalidations = %d", got)
	}
	c.Put("seg1", "events", "k", 1, 10)
	if _, ok := c.Get("seg1", "events", "k"); !ok {
		t.Fatal("cache unusable after InvalidateAll")
	}
}

func TestEvictionNeverExceedsBound(t *testing.T) {
	c := New(Config{Tier: "result", MaxBytes: 1000, MaxEntryBytes: 400})
	for i := 0; i < 200; i++ {
		c.Put("s", "t", fmt.Sprintf("k%d", i), i, int64(50+i%300))
		if c.Bytes() > 1000 {
			t.Fatalf("bytes %d exceeded bound after put %d", c.Bytes(), i)
		}
	}
	if c.Len() == 0 {
		t.Fatal("cache emptied itself")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Config{Tier: "result", MaxBytes: 5000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%40)
				scope := fmt.Sprintf("s%d", i%4)
				switch i % 5 {
				case 0:
					c.Put(scope, "t", key, i, int64(10+i%90))
				case 4:
					c.InvalidateScope(scope)
				default:
					c.Get(scope, "t", key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > 5000 {
		t.Fatalf("bytes %d exceeded bound", c.Bytes())
	}
}
