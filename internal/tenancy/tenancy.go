// Package tenancy implements Pinot's multitenant resource isolation (paper
// section 4.5): a token bucket per tenant. Each query deducts tokens
// proportional to its execution time; when a tenant's bucket is empty its
// queries queue until the bucket refills, so short spikes are absorbed but a
// misbehaving tenant cannot starve colocated tenants.
package tenancy

import (
	"context"
	"sync"
	"time"

	"pinot/internal/metrics"
)

// Clock abstracts time for tests.
type Clock func() time.Time

// TokenBucket is a refilling budget of execution tokens. One token
// represents one second of query execution time.
type TokenBucket struct {
	mu         sync.Mutex
	capacity   float64
	tokens     float64
	refillRate float64 // tokens per second
	last       time.Time
	clock      Clock
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(capacity, refillPerSecond float64, clock Clock) *TokenBucket {
	if clock == nil {
		clock = time.Now
	}
	return &TokenBucket{
		capacity:   capacity,
		tokens:     capacity,
		refillRate: refillPerSecond,
		last:       clock(),
		clock:      clock,
	}
}

func (b *TokenBucket) refillLocked() {
	now := b.clock()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.refillRate
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = now
	}
}

// Tokens returns the current token balance.
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}

// Charge deducts cost tokens; the balance may go negative, which delays
// future queries (the query already ran — its cost is only known
// afterwards).
func (b *TokenBucket) Charge(cost float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.tokens -= cost
}

// waitDelay returns how long until the balance becomes positive (0 if it
// already is).
func (b *TokenBucket) waitDelay() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens > 0 {
		return 0
	}
	deficit := -b.tokens + 1e-9
	return time.Duration(deficit / b.refillRate * float64(time.Second))
}

// Wait blocks until the bucket has a positive balance or the context ends.
func (b *TokenBucket) Wait(ctx context.Context) error {
	for {
		d := b.waitDelay()
		if d == 0 {
			return nil
		}
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// Scheduler gates query execution per tenant.
type Scheduler struct {
	mu       sync.Mutex
	buckets  map[string]*TokenBucket
	capacity float64
	refill   float64
	clock    Clock

	// Metric families, set via SetMetrics; nil fields mean uninstrumented
	// (the scheduler predates the registry and stays usable without one).
	throttles  *metrics.Family // label: tenant — queries that had to wait
	waitHist   *metrics.Family // label: tenant — queue wait, µs
	queueDepth *metrics.Family // label: tenant — queries currently waiting
}

// SetMetrics registers the scheduler's instruments with a registry. Call
// before serving queries; it is not synchronized against Execute.
func (s *Scheduler) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.Default()
	}
	s.throttles = reg.Counter("pinot_tenancy_throttles_total",
		"Queries delayed by an exhausted token bucket.", "tenant")
	s.waitHist = reg.Histogram("pinot_tenancy_queue_wait_us",
		"Token-bucket queue wait in microseconds.", "tenant")
	s.queueDepth = reg.Gauge("pinot_tenancy_queue_depth",
		"Queries currently waiting on a token bucket.", "tenant")
}

// NewScheduler creates a scheduler giving every tenant a bucket of the given
// capacity (in seconds of execution time) refilling at refillPerSecond.
func NewScheduler(capacity, refillPerSecond float64, clock Clock) *Scheduler {
	if clock == nil {
		clock = time.Now
	}
	return &Scheduler{
		buckets:  map[string]*TokenBucket{},
		capacity: capacity,
		refill:   refillPerSecond,
		clock:    clock,
	}
}

// Bucket returns (creating if needed) a tenant's bucket.
func (s *Scheduler) Bucket(tenant string) *TokenBucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[tenant]
	if !ok {
		b = NewTokenBucket(s.capacity, s.refill, s.clock)
		s.buckets[tenant] = b
	}
	return b
}

// Execute runs fn under the tenant's budget: it waits for a positive
// balance, runs fn, and charges its wall-clock execution time. It returns
// how long the query waited in the scheduler queue before starting, so the
// caller can charge the wait against the query's deadline budget and
// surface it in the trace.
func (s *Scheduler) Execute(ctx context.Context, tenant string, fn func() error) (time.Duration, error) {
	b := s.Bucket(tenant)
	t0 := s.clock()
	throttled := b.waitDelay() > 0
	if throttled && s.throttles != nil {
		s.throttles.With(tenant).Inc()
	}
	if s.queueDepth != nil {
		s.queueDepth.With(tenant).Inc()
	}
	err := b.Wait(ctx)
	if s.queueDepth != nil {
		s.queueDepth.With(tenant).Dec()
	}
	wait := s.clock().Sub(t0)
	if s.waitHist != nil {
		s.waitHist.With(tenant).ObserveDuration(wait)
	}
	if err != nil {
		return wait, err
	}
	start := s.clock()
	err = fn()
	b.Charge(s.clock().Sub(start).Seconds())
	return wait, err
}
