package tenancy

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBucketChargeAndRefill(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	b := NewTokenBucket(10, 2, clock.Now)
	if got := b.Tokens(); got != 10 {
		t.Fatalf("initial tokens = %v", got)
	}
	b.Charge(4)
	if got := b.Tokens(); got != 6 {
		t.Fatalf("after charge = %v", got)
	}
	clock.Advance(1 * time.Second)
	if got := b.Tokens(); got != 8 {
		t.Fatalf("after 1s refill = %v", got)
	}
	// Refill caps at capacity.
	clock.Advance(time.Hour)
	if got := b.Tokens(); got != 10 {
		t.Fatalf("capped tokens = %v", got)
	}
}

func TestBucketGoesNegative(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	b := NewTokenBucket(5, 1, clock.Now)
	b.Charge(8) // overrun: cost known only after execution
	if got := b.Tokens(); got != -3 {
		t.Fatalf("tokens = %v", got)
	}
	if d := b.waitDelay(); d < 2*time.Second || d > 4*time.Second {
		t.Fatalf("waitDelay = %v", d)
	}
	clock.Advance(4 * time.Second)
	if d := b.waitDelay(); d != 0 {
		t.Fatalf("waitDelay after refill = %v", d)
	}
}

func TestWaitContextCancel(t *testing.T) {
	b := NewTokenBucket(1, 0.0001, nil) // glacial refill
	b.Charge(100)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := b.Wait(ctx); err == nil {
		t.Fatal("Wait returned before refill without error")
	}
}

func TestWaitUnblocksAfterRefill(t *testing.T) {
	b := NewTokenBucket(1, 100, nil) // 100 tokens/s: fast refill
	b.Charge(2)                      // ~20ms to positive
	start := time.Now()
	if err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 5*time.Millisecond {
		t.Fatalf("Wait returned too early (%v)", e)
	}
	if b.Tokens() <= 0 {
		t.Fatal("tokens still negative after Wait")
	}
}

func TestSchedulerIsolatesTenants(t *testing.T) {
	s := NewScheduler(1, 50, nil)
	// The misbehaving tenant exhausts its bucket.
	heavy := s.Bucket("heavy")
	heavy.Charge(5)
	// A well-behaved tenant is unaffected.
	done := make(chan error, 1)
	go func() {
		_, err := s.Execute(context.Background(), "light", func() error { return nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("light tenant blocked by heavy tenant")
	}
	// The heavy tenant has to wait.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Execute(ctx, "heavy", func() error { return nil }); err == nil {
		t.Fatal("heavy tenant ran despite empty bucket")
	}
}

func TestSchedulerChargesExecutionTime(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	s := NewScheduler(10, 1, clock.Now)
	wait, err := s.Execute(context.Background(), "t", func() error {
		clock.Advance(3 * time.Second) // query "runs" 3 seconds
		return nil
	})
	if wait != 0 {
		t.Fatalf("full bucket should not queue, waited %v", wait)
	}
	if err != nil {
		t.Fatal(err)
	}
	// 10 - 3 + (3s refill at 1/s happens inside charge) = 10 tokens were
	// refilled during execution too; balance = 10 - 3 + 3 capped at 10?
	// Charge refills first (3 tokens, capped at 10) then deducts 3.
	if got := s.Bucket("t").Tokens(); got != 7 {
		t.Fatalf("tokens after 3s query = %v", got)
	}
}

func TestSchedulerSameBucketReturned(t *testing.T) {
	s := NewScheduler(5, 1, nil)
	if s.Bucket("a") != s.Bucket("a") {
		t.Fatal("bucket not stable per tenant")
	}
	if s.Bucket("a") == s.Bucket("b") {
		t.Fatal("tenants share a bucket")
	}
}
