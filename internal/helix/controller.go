package helix

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"pinot/internal/zkmeta"
)

// Controller is the cluster manager: it watches ideal states, live instances
// and current states, computes the state transitions needed to converge the
// cluster, delivers them as messages, and maintains external views. Several
// controllers may run; a leader election picks one active rebalancer (paper
// 3.2: "we run three controller instances in each datacenter with a single
// master; non-leader controllers are mostly idle").
type Controller struct {
	store    zkmeta.Endpoint
	cluster  string
	instance string

	sessMu sync.Mutex
	sess   zkmeta.Client

	leader   atomic.Bool
	stop     chan struct{}
	done     chan struct{}
	kick     chan struct{}
	expired  chan struct{}
	msgSeq   atomic.Int64
	onLeader func(bool) // optional leadership callback

	mu           sync.Mutex
	stateWatches map[string]func() // per-instance current-state watch cancels
}

// session returns the current metadata session; it may change when an
// expired session is replaced.
func (c *Controller) session() zkmeta.Client {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	return c.sess
}

func (c *Controller) setSession(s zkmeta.Client) {
	c.sessMu.Lock()
	c.sess = s
	c.sessMu.Unlock()
}

// armExpiry makes session expiry step this controller down immediately and
// schedule a reconnect on the control loop.
func (c *Controller) armExpiry(sess zkmeta.Client) {
	sess.OnExpire(func() {
		c.setLeader(false)
		select {
		case c.expired <- struct{}{}:
		default:
		}
	})
}

// reconnect opens a fresh session after expiry and re-contends for
// leadership, mirroring how a real Zookeeper client recovers: the old
// session's ephemerals are gone, so another controller may have won in the
// meantime.
func (c *Controller) reconnect() {
	ns := c.store.NewClient()
	c.setSession(ns)
	c.armExpiry(ns)
	c.tryAcquireLeadership()
}

// ExpireSession expires the controller's current metadata session (chaos
// hook): the leader ephemeral disappears and the controller reconnects and
// re-contends over a fresh session.
func (c *Controller) ExpireSession() { c.session().Expire() }

// NewController creates a controller instance.
func NewController(store zkmeta.Endpoint, cluster, instance string) *Controller {
	return &Controller{store: store, cluster: cluster, instance: instance, stateWatches: map[string]func(){}}
}

// OnLeadershipChange registers a callback fired with true/false as this
// controller gains/loses mastership. Must be called before Start.
func (c *Controller) OnLeadershipChange(fn func(bool)) { c.onLeader = fn }

// IsLeader reports whether this controller currently holds mastership.
func (c *Controller) IsLeader() bool { return c.leader.Load() }

// Start begins contending for leadership and, when leader, rebalancing.
func (c *Controller) Start() error {
	sess := c.store.NewClient()
	c.setSession(sess)
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	c.kick = make(chan struct{}, 1)
	c.expired = make(chan struct{}, 1)
	c.armExpiry(sess)

	// Watches survive session replacement: they are registered against the
	// store, so an expired-then-reconnected controller keeps seeing events.
	leaderEvents, cancelLeader := sess.Watch(controllerPath(c.cluster))
	idealEvents, cancelIdeal := sess.WatchChildren(idealStatesPath(c.cluster))
	liveEvents, cancelLive := sess.WatchChildren(liveInstancesPath(c.cluster))
	csEvents, cancelCS := sess.WatchChildren(currentStatesPath(c.cluster))

	c.tryAcquireLeadership()

	go func() {
		defer close(c.done)
		defer cancelLeader()
		defer cancelIdeal()
		defer cancelLive()
		defer cancelCS()
		defer c.cancelStateWatches()
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case e := <-leaderEvents:
				if e.Type == zkmeta.EventDeleted {
					c.tryAcquireLeadership()
				}
			case <-c.expired:
				c.reconnect()
			case <-idealEvents:
			case <-liveEvents:
			case <-csEvents:
			case <-c.kick:
			case <-ticker.C:
			}
			if c.leader.Load() {
				c.rebalance()
			}
		}
	}()
	return nil
}

// Stop relinquishes leadership (if held) and halts the controller.
func (c *Controller) Stop() {
	if c.stop != nil {
		close(c.stop)
		<-c.done
		c.stop = nil
	}
	if c.session() != nil {
		c.session().Close() // releases the leader ephemeral
	}
	c.setLeader(false)
}

// Kick requests an immediate rebalance pass.
func (c *Controller) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

func (c *Controller) setLeader(v bool) {
	if c.leader.Swap(v) != v && c.onLeader != nil {
		c.onLeader(v)
	}
}

func (c *Controller) tryAcquireLeadership() {
	err := c.session().CreateEphemeral(controllerPath(c.cluster), []byte(c.instance))
	switch {
	case err == nil:
		c.setLeader(true)
	case err == zkmeta.ErrNodeExists:
		c.setLeader(false)
	}
}

// Leader returns the instance name of the current cluster leader, if any.
func Leader(sess zkmeta.Client, cluster string) (string, bool) {
	data, _, err := sess.Get(controllerPath(cluster))
	if err != nil {
		return "", false
	}
	return string(data), true
}

// rebalance runs one convergence pass.
func (c *Controller) rebalance() {
	resources, err := c.session().Children(idealStatesPath(c.cluster))
	if err != nil {
		return
	}
	live, err := c.session().Children(liveInstancesPath(c.cluster))
	if err != nil {
		return
	}
	liveSet := make(map[string]bool, len(live))
	for _, l := range live {
		liveSet[l] = true
	}
	current, err := readCurrentStates(c.session(), c.cluster)
	if err != nil {
		return
	}
	c.ensureStateWatches(current)
	pending := c.pendingMessages()

	admin := NewAdmin(c.session(), c.cluster)
	for _, res := range resources {
		is, err := admin.IdealStateOf(res)
		if err != nil {
			continue
		}
		for partition, replicas := range is.Partitions {
			for instance, desired := range replicas {
				if !liveSet[instance] {
					continue
				}
				cur, ok := current[instance][res][partition]
				if !ok {
					cur = StateOffline
				}
				if desired == StateDropped && !ok {
					continue // already gone
				}
				if cur == desired || cur == StateError {
					continue
				}
				key := instance + "|" + res + "|" + partition
				if pending[key] {
					continue
				}
				next := NextHop(cur, desired)
				if next == "" {
					continue
				}
				c.sendMessage(instance, Message{
					ID:        fmt.Sprintf("msg-%d", c.msgSeq.Add(1)),
					Resource:  res,
					Partition: partition,
					From:      cur,
					To:        next,
				})
			}
		}
		c.updateExternalView(res, is, current, liveSet)
	}
	c.dropOrphanViews(resources)
}

// pendingMessages returns instance|resource|partition keys with an
// undelivered transition message.
func (c *Controller) pendingMessages() map[string]bool {
	out := map[string]bool{}
	instances, err := c.session().Children(messagesPath(c.cluster))
	if err != nil {
		return out
	}
	for _, inst := range instances {
		msgs, err := c.session().Children(instanceMessagesPath(c.cluster, inst))
		if err != nil {
			continue
		}
		for _, m := range msgs {
			data, _, err := c.session().Get(instanceMessagesPath(c.cluster, inst) + "/" + m)
			if err != nil {
				continue
			}
			var msg Message
			if json.Unmarshal(data, &msg) == nil {
				out[inst+"|"+msg.Resource+"|"+msg.Partition] = true
			}
		}
	}
	return out
}

func (c *Controller) sendMessage(instance string, msg Message) {
	data, err := json.Marshal(msg)
	if err != nil {
		return
	}
	_ = c.session().Create(instanceMessagesPath(c.cluster, instance)+"/"+msg.ID, data)
}

func (c *Controller) updateExternalView(res string, is *IdealState, current map[string]map[string]map[string]string, live map[string]bool) {
	ev := &ExternalView{Resource: res, Partitions: map[string]map[string]string{}}
	for instance, byResource := range current {
		if !live[instance] {
			continue
		}
		for partition, state := range byResource[res] {
			if _, inIdeal := is.Partitions[partition]; !inIdeal {
				continue
			}
			if ev.Partitions[partition] == nil {
				ev.Partitions[partition] = map[string]string{}
			}
			ev.Partitions[partition][instance] = state
		}
	}
	prev, err := NewAdmin(c.session(), c.cluster).ExternalViewOf(res)
	if err == nil && reflect.DeepEqual(prev.Partitions, ev.Partitions) {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	p := externalViewPath(c.cluster, res)
	if err := c.session().Create(p, data); err == zkmeta.ErrNodeExists {
		_, _ = c.session().Set(p, data, -1)
	}
}

// dropOrphanViews removes external views whose resource no longer exists.
func (c *Controller) dropOrphanViews(resources []string) {
	have := make(map[string]bool, len(resources))
	for _, r := range resources {
		have[r] = true
	}
	views, err := c.session().Children(externalViewsPath(c.cluster))
	if err != nil {
		return
	}
	for _, v := range views {
		if !have[v] {
			_ = c.session().Delete(externalViewPath(c.cluster, v), -1)
		}
	}
}

// ensureStateWatches registers data watches on each instance's current-state
// node so participant progress triggers rebalances promptly.
func (c *Controller) ensureStateWatches(current map[string]map[string]map[string]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for inst := range current {
		if _, ok := c.stateWatches[inst]; ok {
			continue
		}
		events, cancel := c.session().Watch(currentStatePath(c.cluster, inst))
		c.stateWatches[inst] = cancel
		go func() {
			for range events {
				c.Kick()
			}
		}()
	}
}

func (c *Controller) cancelStateWatches() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cancel := range c.stateWatches {
		cancel()
	}
	c.stateWatches = map[string]func(){}
}
