// Package helix is the cluster-management substrate modelled on Apache
// Helix (paper section 3.2): resources (tables) are divided into partitions
// (segments) whose replicas live on participant instances. The desired
// placement is the *ideal state*; participants execute state transitions
// delivered as messages and report *current states*, which the controller
// aggregates into the *external view* that brokers watch to build routing
// tables. All coordination happens through the zkmeta store.
package helix

import (
	"encoding/json"
	"fmt"
	"path"

	"pinot/internal/zkmeta"
)

// Segment/partition states of the Pinot state model (paper Figure 3).
const (
	StateOffline   = "OFFLINE"
	StateConsuming = "CONSUMING"
	StateOnline    = "ONLINE"
	StateDropped   = "DROPPED"
	StateError     = "ERROR"
)

// validTransitions lists the direct edges of the state machine.
var validTransitions = map[[2]string]bool{
	{StateOffline, StateOnline}:    true,
	{StateOffline, StateConsuming}: true,
	{StateConsuming, StateOnline}:  true,
	{StateConsuming, StateOffline}: true,
	{StateOnline, StateOffline}:    true,
	{StateOffline, StateDropped}:   true,
	{StateError, StateOffline}:     true,
}

// NextHop returns the next transition target on the path from cur to
// desired, or "" if no move is needed or possible.
func NextHop(cur, desired string) string {
	if cur == desired {
		return ""
	}
	if validTransitions[[2]string{cur, desired}] {
		return desired
	}
	// Route through OFFLINE (e.g. ONLINE→DROPPED, CONSUMING→DROPPED,
	// ERROR→ONLINE).
	if cur != StateOffline && validTransitions[[2]string{cur, StateOffline}] {
		return StateOffline
	}
	return ""
}

// IdealState is the desired placement of one resource: partition → instance
// → desired state.
type IdealState struct {
	Resource    string                       `json:"resource"`
	NumReplicas int                          `json:"numReplicas"`
	Partitions  map[string]map[string]string `json:"partitions"`
}

// Clone deep-copies the ideal state.
func (is *IdealState) Clone() *IdealState {
	out := &IdealState{Resource: is.Resource, NumReplicas: is.NumReplicas, Partitions: map[string]map[string]string{}}
	for p, m := range is.Partitions {
		cp := make(map[string]string, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out.Partitions[p] = cp
	}
	return out
}

// ExternalView is the observed placement of one resource: partition →
// instance → current state, restricted to live instances.
type ExternalView struct {
	Resource   string                       `json:"resource"`
	Partitions map[string]map[string]string `json:"partitions"`
}

// InstancesFor returns the live instances serving a partition in the given
// state.
func (ev *ExternalView) InstancesFor(partition, state string) []string {
	var out []string
	for inst, st := range ev.Partitions[partition] {
		if st == state {
			out = append(out, inst)
		}
	}
	return out
}

// Message is a state-transition request delivered to a participant.
type Message struct {
	ID        string `json:"id"`
	Resource  string `json:"resource"`
	Partition string `json:"partition"`
	From      string `json:"from"`
	To        string `json:"to"`
}

// InstanceConfig describes a registered instance and its tenant tags.
type InstanceConfig struct {
	Instance string   `json:"instance"`
	Tags     []string `json:"tags"`
	// Addr is the instance's data-plane TCP address (host:port), set when
	// the instance serves the framed query protocol; empty for in-process
	// clusters. Brokers resolve scatter targets through it.
	Addr string `json:"addr,omitempty"`
}

// HasTag reports whether the instance carries a tag.
func (c InstanceConfig) HasTag(tag string) bool {
	for _, t := range c.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Path helpers: the layout under /<cluster>/.

func clusterPath(cluster string) string            { return "/" + cluster }
func idealStatesPath(cluster string) string        { return clusterPath(cluster) + "/IDEALSTATES" }
func idealStatePath(cluster, res string) string    { return idealStatesPath(cluster) + "/" + res }
func externalViewsPath(cluster string) string      { return clusterPath(cluster) + "/EXTERNALVIEW" }
func externalViewPath(cluster, res string) string  { return externalViewsPath(cluster) + "/" + res }
func liveInstancesPath(cluster string) string      { return clusterPath(cluster) + "/LIVEINSTANCES" }
func liveInstancePath(cluster, inst string) string { return liveInstancesPath(cluster) + "/" + inst }
func configsPath(cluster string) string            { return clusterPath(cluster) + "/CONFIGS" }
func configPath(cluster, inst string) string       { return configsPath(cluster) + "/" + inst }
func currentStatesPath(cluster string) string      { return clusterPath(cluster) + "/CURRENTSTATES" }
func currentStatePath(cluster, inst string) string { return currentStatesPath(cluster) + "/" + inst }
func messagesPath(cluster string) string           { return clusterPath(cluster) + "/MESSAGES" }
func instanceMessagesPath(cluster, inst string) string {
	return messagesPath(cluster) + "/" + inst
}
func controllerPath(cluster string) string { return clusterPath(cluster) + "/CONTROLLER" }
func propertyStorePath(cluster string) string {
	return clusterPath(cluster) + "/PROPERTYSTORE"
}

// Admin performs cluster administration against the store.
type Admin struct {
	sess    zkmeta.Client
	cluster string
}

// NewAdmin returns an Admin for a cluster.
func NewAdmin(sess zkmeta.Client, cluster string) *Admin {
	return &Admin{sess: sess, cluster: cluster}
}

// CreateCluster lays out the cluster directory structure. Idempotent.
func (a *Admin) CreateCluster() error {
	for _, p := range []string{
		clusterPath(a.cluster),
		idealStatesPath(a.cluster),
		externalViewsPath(a.cluster),
		liveInstancesPath(a.cluster),
		configsPath(a.cluster),
		currentStatesPath(a.cluster),
		messagesPath(a.cluster),
		propertyStorePath(a.cluster),
	} {
		if err := a.sess.Create(p, nil); err != nil && err != zkmeta.ErrNodeExists {
			return err
		}
	}
	return nil
}

// RegisterInstance stores an instance config and prepares its message queue.
func (a *Admin) RegisterInstance(cfg InstanceConfig) error {
	data, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	if err := a.sess.Create(configPath(a.cluster, cfg.Instance), data); err != nil {
		if err != zkmeta.ErrNodeExists {
			return err
		}
		if _, err := a.sess.Set(configPath(a.cluster, cfg.Instance), data, -1); err != nil {
			return err
		}
	}
	if err := a.sess.Create(instanceMessagesPath(a.cluster, cfg.Instance), nil); err != nil && err != zkmeta.ErrNodeExists {
		return err
	}
	return nil
}

// Instances returns all registered instance configs.
func (a *Admin) Instances() ([]InstanceConfig, error) {
	names, err := a.sess.Children(configsPath(a.cluster))
	if err != nil {
		return nil, err
	}
	out := make([]InstanceConfig, 0, len(names))
	for _, n := range names {
		data, _, err := a.sess.Get(configPath(a.cluster, n))
		if err != nil {
			continue
		}
		var cfg InstanceConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			return nil, fmt.Errorf("helix: corrupt instance config %s: %w", n, err)
		}
		out = append(out, cfg)
	}
	return out, nil
}

// InstanceConfigOf reads one instance's registered config.
func (a *Admin) InstanceConfigOf(instance string) (InstanceConfig, error) {
	data, _, err := a.sess.Get(configPath(a.cluster, instance))
	if err != nil {
		return InstanceConfig{}, err
	}
	var cfg InstanceConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return InstanceConfig{}, fmt.Errorf("helix: corrupt instance config %s: %w", instance, err)
	}
	return cfg, nil
}

// LiveInstances returns the instances currently holding a live ephemeral.
func (a *Admin) LiveInstances() ([]string, error) {
	return a.sess.Children(liveInstancesPath(a.cluster))
}

// SetIdealState writes the desired placement of a resource.
func (a *Admin) SetIdealState(is *IdealState) error {
	data, err := json.Marshal(is)
	if err != nil {
		return err
	}
	p := idealStatePath(a.cluster, is.Resource)
	if err := a.sess.Create(p, data); err != nil {
		if err != zkmeta.ErrNodeExists {
			return err
		}
		_, err = a.sess.Set(p, data, -1)
		return err
	}
	return nil
}

// UpdateIdealState applies fn to a resource's ideal state under an
// optimistic-concurrency retry loop. fn receives a deep copy; returning
// false aborts without writing.
func (a *Admin) UpdateIdealState(resource string, fn func(is *IdealState) bool) error {
	p := idealStatePath(a.cluster, resource)
	for {
		data, version, err := a.sess.Get(p)
		if err != nil {
			return err
		}
		var is IdealState
		if err := json.Unmarshal(data, &is); err != nil {
			return fmt.Errorf("helix: corrupt ideal state %s: %w", resource, err)
		}
		cp := is.Clone()
		if !fn(cp) {
			return nil
		}
		out, err := json.Marshal(cp)
		if err != nil {
			return err
		}
		if _, err := a.sess.Set(p, out, version); err == nil {
			return nil
		} else if err != zkmeta.ErrBadVersion {
			return err
		}
	}
}

// IdealStateOf reads a resource's ideal state.
func (a *Admin) IdealStateOf(resource string) (*IdealState, error) {
	data, _, err := a.sess.Get(idealStatePath(a.cluster, resource))
	if err != nil {
		return nil, err
	}
	var is IdealState
	if err := json.Unmarshal(data, &is); err != nil {
		return nil, err
	}
	if is.Partitions == nil {
		is.Partitions = map[string]map[string]string{}
	}
	return &is, nil
}

// DropResource removes a resource's ideal state and external view.
func (a *Admin) DropResource(resource string) error {
	if err := a.sess.Delete(idealStatePath(a.cluster, resource), -1); err != nil && err != zkmeta.ErrNoNode {
		return err
	}
	if err := a.sess.Delete(externalViewPath(a.cluster, resource), -1); err != nil && err != zkmeta.ErrNoNode {
		return err
	}
	return nil
}

// Resources lists resources with an ideal state.
func (a *Admin) Resources() ([]string, error) {
	return a.sess.Children(idealStatesPath(a.cluster))
}

// ExternalViewOf reads a resource's external view; a missing view reads as
// empty.
func (a *Admin) ExternalViewOf(resource string) (*ExternalView, error) {
	data, _, err := a.sess.Get(externalViewPath(a.cluster, resource))
	if err == zkmeta.ErrNoNode {
		return &ExternalView{Resource: resource, Partitions: map[string]map[string]string{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var ev ExternalView
	if err := json.Unmarshal(data, &ev); err != nil {
		return nil, err
	}
	if ev.Partitions == nil {
		ev.Partitions = map[string]map[string]string{}
	}
	return &ev, nil
}

// ExternalViewPath returns the store path of a resource's external view,
// for spectators (brokers) registering watches.
func ExternalViewPath(cluster, resource string) string { return externalViewPath(cluster, resource) }

// ExternalViewsPath returns the store path of the external-view directory.
func ExternalViewsPath(cluster string) string { return externalViewsPath(cluster) }

// PropertyStorePath returns the free-form property store root used by Pinot
// for segment metadata.
func PropertyStorePath(cluster string, elems ...string) string {
	return path.Join(append([]string{propertyStorePath(cluster)}, elems...)...)
}
