package helix

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pinot/internal/zkmeta"
)

func newCluster(t *testing.T) (*zkmeta.Store, *Admin) {
	t.Helper()
	store := zkmeta.NewStore()
	admin := NewAdmin(store.NewSession(), "test")
	if err := admin.CreateCluster(); err != nil {
		t.Fatal(err)
	}
	if err := admin.CreateCluster(); err != nil {
		t.Fatal("CreateCluster not idempotent:", err)
	}
	return store, admin
}

// recordingHandler tracks transitions applied to a participant.
type recordingHandler struct {
	mu          sync.Mutex
	transitions []string
	fail        map[string]bool // "partition from->to" to fail
}

func (h *recordingHandler) handle(resource, partition, from, to string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := fmt.Sprintf("%s %s->%s", partition, from, to)
	h.transitions = append(h.transitions, key)
	if h.fail[key] {
		return fmt.Errorf("injected failure for %s", key)
	}
	return nil
}

func (h *recordingHandler) saw(key string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.transitions {
		if t == key {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestNextHop(t *testing.T) {
	cases := []struct{ cur, desired, want string }{
		{StateOffline, StateOnline, StateOnline},
		{StateOffline, StateConsuming, StateConsuming},
		{StateConsuming, StateOnline, StateOnline},
		{StateOnline, StateOffline, StateOffline},
		{StateOnline, StateDropped, StateOffline}, // multi-hop
		{StateConsuming, StateDropped, StateOffline},
		{StateOffline, StateDropped, StateDropped},
		{StateOnline, StateOnline, ""},
		{StateError, StateOnline, StateOffline},
	}
	for _, c := range cases {
		if got := NextHop(c.cur, c.desired); got != c.want {
			t.Errorf("NextHop(%s, %s) = %q, want %q", c.cur, c.desired, got, c.want)
		}
	}
}

func TestSegmentLoadFlow(t *testing.T) {
	store, admin := newCluster(t)
	h := &recordingHandler{}
	p := NewParticipant(store, "test", "server1", h.handle)
	if err := admin.RegisterInstance(InstanceConfig{Instance: "server1", Tags: []string{"server"}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	ctrl := NewController(store, "test", "controller1")
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()
	waitFor(t, "leadership", ctrl.IsLeader)

	// Paper Figure 4: set ideal state ONLINE, server processes
	// OFFLINE->ONLINE, external view converges.
	is := &IdealState{Resource: "events", NumReplicas: 1, Partitions: map[string]map[string]string{
		"seg0": {"server1": StateOnline},
	}}
	if err := admin.SetIdealState(is); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "segment online", func() bool {
		ev, err := admin.ExternalViewOf("events")
		return err == nil && ev.Partitions["seg0"]["server1"] == StateOnline
	})
	if !h.saw("seg0 OFFLINE->ONLINE") {
		t.Fatalf("transitions = %v", h.transitions)
	}
	if p.CurrentState("events", "seg0") != StateOnline {
		t.Fatal("participant state wrong")
	}
}

func TestConsumingFlow(t *testing.T) {
	store, admin := newCluster(t)
	h := &recordingHandler{}
	p := NewParticipant(store, "test", "server1", h.handle)
	_ = admin.RegisterInstance(InstanceConfig{Instance: "server1"})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	ctrl := NewController(store, "test", "c1")
	_ = ctrl.Start()
	defer ctrl.Stop()

	_ = admin.SetIdealState(&IdealState{Resource: "rt", NumReplicas: 1, Partitions: map[string]map[string]string{
		"rt__0__0": {"server1": StateConsuming},
	}})
	waitFor(t, "consuming", func() bool {
		ev, _ := admin.ExternalViewOf("rt")
		return ev.Partitions["rt__0__0"]["server1"] == StateConsuming
	})
	// Completion: desired state moves to ONLINE.
	_ = admin.UpdateIdealState("rt", func(is *IdealState) bool {
		is.Partitions["rt__0__0"]["server1"] = StateOnline
		return true
	})
	waitFor(t, "online after consuming", func() bool {
		ev, _ := admin.ExternalViewOf("rt")
		return ev.Partitions["rt__0__0"]["server1"] == StateOnline
	})
	if !h.saw("rt__0__0 CONSUMING->ONLINE") {
		t.Fatalf("transitions = %v", h.transitions)
	}
}

func TestMultiHopDrop(t *testing.T) {
	store, admin := newCluster(t)
	h := &recordingHandler{}
	p := NewParticipant(store, "test", "server1", h.handle)
	_ = admin.RegisterInstance(InstanceConfig{Instance: "server1"})
	_ = p.Start()
	defer p.Stop()
	ctrl := NewController(store, "test", "c1")
	_ = ctrl.Start()
	defer ctrl.Stop()

	_ = admin.SetIdealState(&IdealState{Resource: "r", Partitions: map[string]map[string]string{
		"s0": {"server1": StateOnline},
	}})
	waitFor(t, "online", func() bool {
		ev, _ := admin.ExternalViewOf("r")
		return ev.Partitions["s0"]["server1"] == StateOnline
	})
	// Retention GC: ONLINE -> DROPPED must route through OFFLINE.
	_ = admin.UpdateIdealState("r", func(is *IdealState) bool {
		is.Partitions["s0"]["server1"] = StateDropped
		return true
	})
	waitFor(t, "dropped", func() bool {
		return p.CurrentState("r", "s0") == ""
	})
	if !h.saw("s0 ONLINE->OFFLINE") || !h.saw("s0 OFFLINE->DROPPED") {
		t.Fatalf("transitions = %v", h.transitions)
	}
	// Dropped partitions leave the external view.
	waitFor(t, "view cleanup", func() bool {
		ev, _ := admin.ExternalViewOf("r")
		return len(ev.Partitions["s0"]) == 0
	})
}

func TestReplicaDistribution(t *testing.T) {
	store, admin := newCluster(t)
	handlers := map[string]*recordingHandler{}
	var parts []*Participant
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("server%d", i)
		h := &recordingHandler{}
		handlers[name] = h
		p := NewParticipant(store, "test", name, h.handle)
		_ = admin.RegisterInstance(InstanceConfig{Instance: name, Tags: []string{"server"}})
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
		defer p.Stop()
		parts = append(parts, p)
	}
	ctrl := NewController(store, "test", "c1")
	_ = ctrl.Start()
	defer ctrl.Stop()

	_ = admin.SetIdealState(&IdealState{Resource: "r", NumReplicas: 2, Partitions: map[string]map[string]string{
		"s0": {"server1": StateOnline, "server2": StateOnline},
		"s1": {"server2": StateOnline, "server3": StateOnline},
	}})
	waitFor(t, "all replicas online", func() bool {
		ev, _ := admin.ExternalViewOf("r")
		return len(ev.InstancesFor("s0", StateOnline)) == 2 && len(ev.InstancesFor("s1", StateOnline)) == 2
	})
	live, err := admin.LiveInstances()
	if err != nil || len(live) != 3 {
		t.Fatalf("live = %v %v", live, err)
	}
}

func TestParticipantCrashRemovesFromView(t *testing.T) {
	store, admin := newCluster(t)
	h1, h2 := &recordingHandler{}, &recordingHandler{}
	p1 := NewParticipant(store, "test", "server1", h1.handle)
	p2 := NewParticipant(store, "test", "server2", h2.handle)
	_ = admin.RegisterInstance(InstanceConfig{Instance: "server1"})
	_ = admin.RegisterInstance(InstanceConfig{Instance: "server2"})
	_ = p1.Start()
	_ = p2.Start()
	defer p2.Stop()
	ctrl := NewController(store, "test", "c1")
	_ = ctrl.Start()
	defer ctrl.Stop()

	_ = admin.SetIdealState(&IdealState{Resource: "r", Partitions: map[string]map[string]string{
		"s0": {"server1": StateOnline, "server2": StateOnline},
	}})
	waitFor(t, "both online", func() bool {
		ev, _ := admin.ExternalViewOf("r")
		return len(ev.InstancesFor("s0", StateOnline)) == 2
	})
	p1.Kill() // crash: session expiry
	waitFor(t, "crashed instance removed from view", func() bool {
		ev, _ := admin.ExternalViewOf("r")
		insts := ev.InstancesFor("s0", StateOnline)
		return len(insts) == 1 && insts[0] == "server2"
	})
}

func TestFailedTransitionBecomesError(t *testing.T) {
	store, admin := newCluster(t)
	h := &recordingHandler{fail: map[string]bool{"s0 OFFLINE->ONLINE": true}}
	p := NewParticipant(store, "test", "server1", h.handle)
	_ = admin.RegisterInstance(InstanceConfig{Instance: "server1"})
	_ = p.Start()
	defer p.Stop()
	ctrl := NewController(store, "test", "c1")
	_ = ctrl.Start()
	defer ctrl.Stop()

	_ = admin.SetIdealState(&IdealState{Resource: "r", Partitions: map[string]map[string]string{
		"s0": {"server1": StateOnline},
	}})
	waitFor(t, "error state", func() bool {
		return p.CurrentState("r", "s0") == StateError
	})
	// The controller must not retry an ERROR replica in a tight loop;
	// give it a few passes and check the handler was invoked once.
	time.Sleep(100 * time.Millisecond)
	h.mu.Lock()
	n := len(h.transitions)
	h.mu.Unlock()
	if n != 1 {
		t.Fatalf("transition attempted %d times, want 1", n)
	}
}

func TestControllerFailover(t *testing.T) {
	store, admin := newCluster(t)
	c1 := NewController(store, "test", "c1")
	c2 := NewController(store, "test", "c2")
	_ = c1.Start()
	waitFor(t, "c1 leader", c1.IsLeader)
	_ = c2.Start()
	if c2.IsLeader() {
		t.Fatal("two leaders")
	}
	sess := store.NewSession()
	if leader, ok := Leader(sess, "test"); !ok || leader != "c1" {
		t.Fatalf("leader = %q %v", leader, ok)
	}
	c1.Stop()
	waitFor(t, "c2 takeover", c2.IsLeader)
	defer c2.Stop()
	if leader, ok := Leader(sess, "test"); !ok || leader != "c2" {
		t.Fatalf("leader after failover = %q %v", leader, ok)
	}
	// The new leader picks up pending work: a participant joining late
	// still converges.
	h := &recordingHandler{}
	p := NewParticipant(store, "test", "server1", h.handle)
	_ = admin.RegisterInstance(InstanceConfig{Instance: "server1"})
	_ = p.Start()
	defer p.Stop()
	_ = admin.SetIdealState(&IdealState{Resource: "r", Partitions: map[string]map[string]string{
		"s0": {"server1": StateOnline},
	}})
	waitFor(t, "converged under new leader", func() bool {
		ev, _ := admin.ExternalViewOf("r")
		return ev.Partitions["s0"]["server1"] == StateOnline
	})
}

func TestDropResourceCleansView(t *testing.T) {
	store, admin := newCluster(t)
	h := &recordingHandler{}
	p := NewParticipant(store, "test", "server1", h.handle)
	_ = admin.RegisterInstance(InstanceConfig{Instance: "server1"})
	_ = p.Start()
	defer p.Stop()
	ctrl := NewController(store, "test", "c1")
	_ = ctrl.Start()
	defer ctrl.Stop()
	_ = admin.SetIdealState(&IdealState{Resource: "gone", Partitions: map[string]map[string]string{
		"s0": {"server1": StateOnline},
	}})
	waitFor(t, "online", func() bool {
		ev, _ := admin.ExternalViewOf("gone")
		return ev.Partitions["s0"]["server1"] == StateOnline
	})
	if err := admin.DropResource("gone"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "view removed", func() bool {
		views, _ := admin.sess.Children("/test/EXTERNALVIEW")
		for _, v := range views {
			if v == "gone" {
				return false
			}
		}
		return true
	})
	resources, _ := admin.Resources()
	if len(resources) != 0 {
		t.Fatalf("resources = %v", resources)
	}
}

func TestUpdateIdealStateCAS(t *testing.T) {
	_, admin := newCluster(t)
	_ = admin.SetIdealState(&IdealState{Resource: "r", Partitions: map[string]map[string]string{}})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := admin.UpdateIdealState("r", func(is *IdealState) bool {
				is.Partitions[fmt.Sprintf("s%d", i)] = map[string]string{"server1": StateOnline}
				return true
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	is, err := admin.IdealStateOf("r")
	if err != nil || len(is.Partitions) != 8 {
		t.Fatalf("partitions = %d, %v", len(is.Partitions), err)
	}
	// Aborting update writes nothing.
	_ = admin.UpdateIdealState("r", func(is *IdealState) bool {
		is.Partitions["never"] = map[string]string{}
		return false
	})
	is, _ = admin.IdealStateOf("r")
	if _, ok := is.Partitions["never"]; ok {
		t.Fatal("aborted update was written")
	}
}

func TestInstanceConfigs(t *testing.T) {
	_, admin := newCluster(t)
	_ = admin.RegisterInstance(InstanceConfig{Instance: "s1", Tags: []string{"serverTenant_OFFLINE"}})
	_ = admin.RegisterInstance(InstanceConfig{Instance: "b1", Tags: []string{"broker"}})
	// Re-register updates tags.
	_ = admin.RegisterInstance(InstanceConfig{Instance: "s1", Tags: []string{"serverTenant_OFFLINE", "serverTenant_REALTIME"}})
	configs, err := admin.Instances()
	if err != nil || len(configs) != 2 {
		t.Fatalf("configs = %v %v", configs, err)
	}
	for _, c := range configs {
		if c.Instance == "s1" {
			if !c.HasTag("serverTenant_REALTIME") || c.HasTag("nope") {
				t.Fatalf("tags = %v", c.Tags)
			}
		}
	}
}
