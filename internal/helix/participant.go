package helix

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"pinot/internal/zkmeta"
)

// TransitionHandler executes one state transition on a participant (e.g.
// load a segment for OFFLINE→ONLINE). Returning an error moves the replica
// to ERROR.
type TransitionHandler func(resource, partition, from, to string) error

// Participant is an instance that executes state transitions: a Pinot
// server. It holds its own store session so its liveness is independent.
type Participant struct {
	store    zkmeta.Endpoint
	sess     zkmeta.Client
	cluster  string
	instance string
	handler  TransitionHandler

	mu      sync.Mutex
	current map[string]map[string]string // resource -> partition -> state
	stop    chan struct{}
	done    chan struct{}
}

// NewParticipant creates a participant for an instance. Start must be called
// to join the cluster.
func NewParticipant(store zkmeta.Endpoint, cluster, instance string, handler TransitionHandler) *Participant {
	return &Participant{
		store:    store,
		cluster:  cluster,
		instance: instance,
		handler:  handler,
		current:  map[string]map[string]string{},
	}
}

// Instance returns the participant's instance name.
func (p *Participant) Instance() string { return p.instance }

// Start joins the cluster: publishes the live-instance ephemeral, an empty
// current-state node, and begins processing transition messages.
func (p *Participant) Start() error {
	p.sess = p.store.NewClient()
	if err := p.sess.CreateEphemeral(liveInstancePath(p.cluster, p.instance), nil); err != nil {
		p.sess.Close()
		return fmt.Errorf("helix: participant %s: %w", p.instance, err)
	}
	if err := p.writeCurrentState(); err != nil {
		p.sess.Close()
		return err
	}
	if err := p.sess.Create(instanceMessagesPath(p.cluster, p.instance), nil); err != nil && err != zkmeta.ErrNodeExists {
		p.sess.Close()
		return err
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	events, cancel := p.sess.WatchChildren(instanceMessagesPath(p.cluster, p.instance))
	go func() {
		defer close(p.done)
		defer cancel()
		p.processMessages()
		for {
			select {
			case <-p.stop:
				return
			case <-events:
				p.processMessages()
			}
		}
	}()
	return nil
}

// Stop leaves the cluster, deleting the live-instance ephemeral.
func (p *Participant) Stop() {
	if p.stop != nil {
		close(p.stop)
		<-p.done
		p.stop = nil
	}
	if p.sess != nil {
		p.sess.Close()
	}
}

// Kill simulates a crash: the session expires without graceful cleanup.
func (p *Participant) Kill() {
	if p.stop != nil {
		close(p.stop)
		<-p.done
		p.stop = nil
	}
	if p.sess != nil {
		p.sess.Expire()
	}
}

// CurrentState returns the participant's state for a partition ("" if
// none).
func (p *Participant) CurrentState(resource, partition string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.current[resource][partition]
}

func (p *Participant) processMessages() {
	base := instanceMessagesPath(p.cluster, p.instance)
	names, err := p.sess.Children(base)
	if err != nil {
		return
	}
	sort.Strings(names)
	for _, name := range names {
		msgPath := base + "/" + name
		data, _, err := p.sess.Get(msgPath)
		if err != nil {
			continue
		}
		var msg Message
		if err := json.Unmarshal(data, &msg); err != nil {
			_ = p.sess.Delete(msgPath, -1)
			continue
		}
		p.execute(msg)
		_ = p.sess.Delete(msgPath, -1)
	}
}

func (p *Participant) execute(msg Message) {
	p.mu.Lock()
	cur, ok := p.current[msg.Resource][msg.Partition]
	if !ok {
		cur = StateOffline
	}
	p.mu.Unlock()
	if cur != msg.From {
		// Stale message (e.g. duplicate delivery): ignore.
		return
	}
	newState := msg.To
	if p.handler != nil {
		if err := p.handler(msg.Resource, msg.Partition, msg.From, msg.To); err != nil {
			newState = StateError
		}
	}
	p.mu.Lock()
	if newState == StateDropped {
		delete(p.current[msg.Resource], msg.Partition)
		if len(p.current[msg.Resource]) == 0 {
			delete(p.current, msg.Resource)
		}
	} else {
		if p.current[msg.Resource] == nil {
			p.current[msg.Resource] = map[string]string{}
		}
		p.current[msg.Resource][msg.Partition] = newState
	}
	p.mu.Unlock()
	_ = p.writeCurrentState()
}

func (p *Participant) writeCurrentState() error {
	p.mu.Lock()
	data, err := json.Marshal(p.current)
	p.mu.Unlock()
	if err != nil {
		return err
	}
	path := currentStatePath(p.cluster, p.instance)
	if err := p.sess.Create(path, data); err != nil {
		if err != zkmeta.ErrNodeExists {
			return err
		}
		_, err = p.sess.Set(path, data, -1)
		return err
	}
	return nil
}

// readCurrentStates loads every instance's current-state map.
func readCurrentStates(sess zkmeta.Client, cluster string) (map[string]map[string]map[string]string, error) {
	out := map[string]map[string]map[string]string{}
	instances, err := sess.Children(currentStatesPath(cluster))
	if err != nil {
		return nil, err
	}
	for _, inst := range instances {
		data, _, err := sess.Get(currentStatePath(cluster, inst))
		if err != nil {
			continue
		}
		var cs map[string]map[string]string
		if err := json.Unmarshal(data, &cs); err != nil {
			continue
		}
		out[inst] = cs
	}
	return out, nil
}
