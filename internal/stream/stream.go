// Package stream is the Kafka substrate: partitioned append-only event logs
// with monotonically increasing offsets, key-hash partitioning compatible
// with the Kafka producer's murmur2 partitioner (paper section 4.4: "Pinot
// includes a partition function that matches the behavior of the Kafka
// partition function"), consumer polling by offset, and count-based
// retention trimming (paper 3.3.6: "Kafka retains data only for a certain
// period of time").
package stream

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by stream operations.
var (
	ErrTopicExists    = errors.New("stream: topic already exists")
	ErrNoTopic        = errors.New("stream: topic does not exist")
	ErrBadPartition   = errors.New("stream: partition out of range")
	ErrOffsetTooEarly = errors.New("stream: offset below retention horizon")
)

// Message is one event in a partition.
type Message struct {
	Offset int64
	Key    []byte
	Value  []byte
}

// Cluster holds topics.
type Cluster struct {
	mu     sync.RWMutex
	topics map[string]*Topic
}

// NewCluster returns an empty stream cluster.
func NewCluster() *Cluster {
	return &Cluster{topics: map[string]*Topic{}}
}

// CreateTopic adds a topic with a fixed partition count.
func (c *Cluster) CreateTopic(name string, partitions int) (*Topic, error) {
	if partitions <= 0 {
		return nil, fmt.Errorf("stream: topic %q needs at least 1 partition", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.topics[name]; ok {
		return nil, ErrTopicExists
	}
	t := &Topic{name: name, partitions: make([]*partition, partitions)}
	for i := range t.partitions {
		t.partitions[i] = &partition{}
	}
	c.topics[name] = t
	return t, nil
}

// Topic returns an existing topic.
func (c *Cluster) Topic(name string) (*Topic, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.topics[name]
	if !ok {
		return nil, ErrNoTopic
	}
	return t, nil
}

// Topic is a named, partitioned log.
type Topic struct {
	name       string
	partitions []*partition
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// NumPartitions returns the fixed partition count.
func (t *Topic) NumPartitions() int { return len(t.partitions) }

// Produce appends a message, picking the partition from the key hash.
func (t *Topic) Produce(key, value []byte) (partitionID int, offset int64) {
	p := PartitionFor(key, len(t.partitions))
	return p, t.partitions[p].append(key, value)
}

// ProduceTo appends a message to an explicit partition.
func (t *Topic) ProduceTo(partitionID int, key, value []byte) (int64, error) {
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	return t.partitions[partitionID].append(key, value), nil
}

// Fetch returns up to max messages from a partition starting at offset.
// Fetching at the log end returns an empty slice; fetching below the
// retention horizon fails.
func (t *Topic) Fetch(partitionID int, offset int64, max int) ([]Message, error) {
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return nil, ErrBadPartition
	}
	return t.partitions[partitionID].fetch(offset, max)
}

// EarliestOffset returns the oldest retained offset of a partition.
func (t *Topic) EarliestOffset(partitionID int) (int64, error) {
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	p := t.partitions[partitionID]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base, nil
}

// LatestOffset returns the next offset to be assigned in a partition.
func (t *Topic) LatestOffset(partitionID int) (int64, error) {
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return 0, ErrBadPartition
	}
	p := t.partitions[partitionID]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base + int64(len(p.log)), nil
}

// TrimBefore discards messages below offset in every partition, modelling
// retention expiry.
func (t *Topic) TrimBefore(offset int64) {
	for _, p := range t.partitions {
		p.trimBefore(offset)
	}
}

// StallPartition marks a partition stalled: fetches return no messages (and
// no error) until ResumePartition, so consumers stop making progress without
// seeing a failure — the chaos hook modelling a stuck upstream partition or
// a broker that retains data but stops serving it.
func (t *Topic) StallPartition(partitionID int) error {
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return ErrBadPartition
	}
	p := t.partitions[partitionID]
	p.mu.Lock()
	p.stalled = true
	p.mu.Unlock()
	return nil
}

// ResumePartition clears a stall; buffered messages become fetchable again.
func (t *Topic) ResumePartition(partitionID int) error {
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return ErrBadPartition
	}
	p := t.partitions[partitionID]
	p.mu.Lock()
	p.stalled = false
	p.mu.Unlock()
	return nil
}

type partition struct {
	mu      sync.Mutex
	base    int64 // offset of log[0]
	log     []Message
	stalled bool
}

func (p *partition) append(key, value []byte) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	off := p.base + int64(len(p.log))
	p.log = append(p.log, Message{
		Offset: off,
		Key:    append([]byte(nil), key...),
		Value:  append([]byte(nil), value...),
	})
	return off
}

func (p *partition) fetch(offset int64, max int) ([]Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stalled {
		return nil, nil
	}
	if offset < p.base {
		return nil, ErrOffsetTooEarly
	}
	start := offset - p.base
	if start >= int64(len(p.log)) {
		return nil, nil
	}
	end := start + int64(max)
	if end > int64(len(p.log)) {
		end = int64(len(p.log))
	}
	out := make([]Message, end-start)
	copy(out, p.log[start:end])
	return out, nil
}

func (p *partition) trimBefore(offset int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if offset <= p.base {
		return
	}
	drop := offset - p.base
	if drop >= int64(len(p.log)) {
		p.base += int64(len(p.log))
		p.log = nil
		return
	}
	p.log = append([]Message(nil), p.log[drop:]...)
	p.base = offset
}

// Consumer tracks a read position in one partition, the replica-side
// consuming abstraction used by realtime segments.
type Consumer struct {
	topic     *Topic
	partition int
	offset    int64
}

// NewConsumer starts a consumer at the given offset of a partition.
func NewConsumer(t *Topic, partitionID int, startOffset int64) (*Consumer, error) {
	if partitionID < 0 || partitionID >= t.NumPartitions() {
		return nil, ErrBadPartition
	}
	return &Consumer{topic: t, partition: partitionID, offset: startOffset}, nil
}

// Offset returns the next offset the consumer will read.
func (c *Consumer) Offset() int64 { return c.offset }

// Partition returns the consumer's partition.
func (c *Consumer) Partition() int { return c.partition }

// Poll reads up to max messages and advances the consumer.
func (c *Consumer) Poll(max int) ([]Message, error) {
	msgs, err := c.topic.Fetch(c.partition, c.offset, max)
	if err != nil {
		return nil, err
	}
	if len(msgs) > 0 {
		c.offset = msgs[len(msgs)-1].Offset + 1
	}
	return msgs, nil
}

// PartitionFor maps a key to a partition using Kafka's murmur2-based
// partitioner, so offline data partitioned with the same function lines up
// with realtime stream partitions.
func PartitionFor(key []byte, numPartitions int) int {
	h := murmur2(key) & 0x7fffffff
	return int(h % uint32(numPartitions))
}

// murmur2 is the 32-bit MurmurHash2 used by the Kafka Java client
// (seed 0x9747b28c).
func murmur2(data []byte) uint32 {
	const (
		seed uint32 = 0x9747b28c
		m    uint32 = 0x5bd1e995
		r           = 24
	)
	length := uint32(len(data))
	h := seed ^ length
	i := 0
	for n := len(data) / 4; n > 0; n-- {
		k := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		k *= m
		k ^= k >> r
		k *= m
		h *= m
		h ^= k
		i += 4
	}
	switch len(data) & 3 {
	case 3:
		h ^= uint32(data[i+2]) << 16
		fallthrough
	case 2:
		h ^= uint32(data[i+1]) << 8
		fallthrough
	case 1:
		h ^= uint32(data[i])
		h *= m
	}
	h ^= h >> 13
	h *= m
	h ^= h >> 15
	return h
}
