package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestTopicLifecycle(t *testing.T) {
	c := NewCluster()
	if _, err := c.CreateTopic("t", 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	topic, err := c.CreateTopic("t", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTopic("t", 4); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("duplicate topic: %v", err)
	}
	if _, err := c.Topic("missing"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("missing topic: %v", err)
	}
	got, err := c.Topic("t")
	if err != nil || got != topic {
		t.Fatal("topic lookup failed")
	}
	if topic.NumPartitions() != 4 || topic.Name() != "t" {
		t.Fatal("topic shape wrong")
	}
}

func TestProduceFetchOffsets(t *testing.T) {
	c := NewCluster()
	topic, _ := c.CreateTopic("t", 1)
	for i := 0; i < 10; i++ {
		off, err := topic.ProduceTo(0, nil, []byte(fmt.Sprintf("m%d", i)))
		if err != nil || off != int64(i) {
			t.Fatalf("produce %d: off=%d err=%v", i, off, err)
		}
	}
	msgs, err := topic.Fetch(0, 3, 4)
	if err != nil || len(msgs) != 4 {
		t.Fatalf("fetch: %d msgs, %v", len(msgs), err)
	}
	if msgs[0].Offset != 3 || string(msgs[0].Value) != "m3" {
		t.Fatalf("msg = %+v", msgs[0])
	}
	// Fetch past the end is empty, not an error.
	msgs, err = topic.Fetch(0, 10, 5)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("end fetch: %d msgs, %v", len(msgs), err)
	}
	if _, err := topic.Fetch(7, 0, 1); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("bad partition fetch: %v", err)
	}
	lo, _ := topic.EarliestOffset(0)
	hi, _ := topic.LatestOffset(0)
	if lo != 0 || hi != 10 {
		t.Fatalf("offsets = %d..%d", lo, hi)
	}
}

func TestKeyPartitioningIsDeterministic(t *testing.T) {
	c := NewCluster()
	topic, _ := c.CreateTopic("t", 8)
	key := []byte("member-42")
	p1, _ := topic.Produce(key, []byte("a"))
	p2, _ := topic.Produce(key, []byte("b"))
	if p1 != p2 {
		t.Fatalf("same key to different partitions: %d vs %d", p1, p2)
	}
	if p1 != PartitionFor(key, 8) {
		t.Fatal("Produce does not match PartitionFor")
	}
}

func TestMurmur2KnownValues(t *testing.T) {
	// Reference values from the Kafka Java client's
	// Utils.murmur2: murmur2("21".getBytes()) = -973932308 and
	// ("abc") = 479470107.
	cases := map[string]int32{
		"21":  -973932308,
		"abc": 479470107,
	}
	for k, want := range cases {
		if got := int32(murmur2([]byte(k))); got != want {
			t.Errorf("murmur2(%q) = %d, want %d", k, got, want)
		}
	}
}

func TestPartitionForDistribution(t *testing.T) {
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		counts[PartitionFor([]byte(fmt.Sprintf("key-%d", i)), 16)]++
	}
	for p, n := range counts {
		if n < 500 || n > 1500 {
			t.Errorf("partition %d has %d keys, badly skewed", p, n)
		}
	}
}

func TestRetentionTrim(t *testing.T) {
	c := NewCluster()
	topic, _ := c.CreateTopic("t", 1)
	for i := 0; i < 100; i++ {
		topic.ProduceTo(0, nil, []byte{byte(i)})
	}
	topic.TrimBefore(40)
	if _, err := topic.Fetch(0, 10, 5); !errors.Is(err, ErrOffsetTooEarly) {
		t.Fatalf("pre-horizon fetch: %v", err)
	}
	msgs, err := topic.Fetch(0, 40, 5)
	if err != nil || msgs[0].Offset != 40 {
		t.Fatalf("horizon fetch: %+v %v", msgs, err)
	}
	lo, _ := topic.EarliestOffset(0)
	if lo != 40 {
		t.Fatalf("earliest = %d", lo)
	}
	// Trimming backwards is a no-op; trimming everything empties the log.
	topic.TrimBefore(10)
	if lo, _ := topic.EarliestOffset(0); lo != 40 {
		t.Fatal("backwards trim moved horizon")
	}
	topic.TrimBefore(1000)
	lo, _ = topic.EarliestOffset(0)
	hi, _ := topic.LatestOffset(0)
	if lo != 100 || hi != 100 {
		t.Fatalf("full trim offsets = %d..%d", lo, hi)
	}
	// New produces continue after the horizon.
	off, _ := topic.ProduceTo(0, nil, []byte("new"))
	if off != 100 {
		t.Fatalf("post-trim offset = %d", off)
	}
}

func TestConsumer(t *testing.T) {
	c := NewCluster()
	topic, _ := c.CreateTopic("t", 2)
	for i := 0; i < 10; i++ {
		topic.ProduceTo(1, nil, []byte{byte(i)})
	}
	if _, err := NewConsumer(topic, 5, 0); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("bad partition consumer: %v", err)
	}
	cons, err := NewConsumer(topic, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	for {
		msgs, err := cons.Poll(3)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			if m.Value[0] != byte(seen) {
				t.Fatalf("out of order: %d vs %d", m.Value[0], seen)
			}
			seen++
		}
	}
	if seen != 10 || cons.Offset() != 10 {
		t.Fatalf("consumed %d, offset %d", seen, cons.Offset())
	}
	if cons.Partition() != 1 {
		t.Fatal("partition accessor wrong")
	}
}

// Property: two independent consumers starting at the same offset see the
// exact same messages — the invariant the segment completion protocol relies
// on (paper 3.3.6).
func TestQuickIdenticalReplicaConsumption(t *testing.T) {
	f := func(values [][]byte, start uint8) bool {
		if len(values) == 0 {
			return true
		}
		c := NewCluster()
		topic, _ := c.CreateTopic("t", 1)
		for _, v := range values {
			topic.ProduceTo(0, nil, v)
		}
		startOff := int64(start) % int64(len(values))
		c1, _ := NewConsumer(topic, 0, startOff)
		c2, _ := NewConsumer(topic, 0, startOff)
		m1, _ := c1.Poll(len(values))
		m2, _ := c2.Poll(len(values))
		if len(m1) != len(m2) {
			return false
		}
		for i := range m1 {
			if m1[i].Offset != m2[i].Offset || string(m1[i].Value) != string(m2[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentProducersMonotonicOffsets(t *testing.T) {
	c := NewCluster()
	topic, _ := c.CreateTopic("t", 1)
	var wg sync.WaitGroup
	offsets := make(chan int64, 8*100)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				off, _ := topic.ProduceTo(0, nil, []byte("x"))
				offsets <- off
			}
		}()
	}
	wg.Wait()
	close(offsets)
	seen := map[int64]bool{}
	for off := range offsets {
		if seen[off] {
			t.Fatalf("duplicate offset %d", off)
		}
		seen[off] = true
	}
	if len(seen) != 800 {
		t.Fatalf("offsets = %d", len(seen))
	}
}

func TestStallPartition(t *testing.T) {
	c := NewCluster()
	topic, err := c.CreateTopic("events", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := topic.ProduceTo(0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := topic.StallPartition(0); err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(topic, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := cons.Poll(10)
	if err != nil {
		t.Fatalf("stalled poll: %v", err)
	}
	if len(msgs) != 0 {
		t.Fatalf("stalled poll returned %d messages", len(msgs))
	}
	// Other partitions are unaffected.
	if _, err := topic.ProduceTo(1, nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	other, _ := NewConsumer(topic, 1, 0)
	if msgs, _ := other.Poll(10); len(msgs) != 1 {
		t.Fatalf("partition 1 poll = %d messages, want 1", len(msgs))
	}
	if err := topic.ResumePartition(0); err != nil {
		t.Fatal(err)
	}
	msgs, err = cons.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 5 {
		t.Fatalf("resumed poll = %d messages, want 5", len(msgs))
	}
	if err := topic.StallPartition(9); err != ErrBadPartition {
		t.Fatalf("StallPartition(9) = %v, want ErrBadPartition", err)
	}
}
