// Package expr evaluates PQL scalar expressions. It has two execution
// shapes: a typed, resource-limited tree interpreter that walks the pql AST
// one row at a time (the sandboxed fallback, also used for ingestion-time
// transforms), and a compiler that lowers numeric expressions over
// long/double inputs into typed block kernels so the vectorized engine
// keeps its batch shape (compile.go). Both shapes share the scalar
// semantics in pql (ArithScalars/CallScalars), which is what makes
// constant folding and the compiled/interpreted differential sound.
package expr

import (
	"errors"
	"fmt"

	"pinot/internal/pql"
	"pinot/internal/segment"
)

// Kind is the static type of an expression.
type Kind uint8

// Expression types.
const (
	Long Kind = iota
	Double
	String
	Bool
)

func (k Kind) String() string {
	switch k {
	case Long:
		return "long"
	case Double:
		return "double"
	case String:
		return "string"
	case Bool:
		return "boolean"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Numeric reports whether the kind participates in arithmetic.
func (k Kind) Numeric() bool { return k == Long || k == Double }

// KindOf maps a column data type to its expression kind.
func KindOf(t segment.DataType) Kind {
	switch t {
	case segment.TypeInt, segment.TypeLong:
		return Long
	case segment.TypeFloat, segment.TypeDouble:
		return Double
	case segment.TypeBoolean:
		return Bool
	default:
		return String
	}
}

// Limits bounds the interpreter's resource use. Every Eval call enforces
// them from zero — the step cap is per evaluation, so one runaway expression
// cannot starve the row after it of budget it never used.
type Limits struct {
	// MaxSteps caps AST nodes visited per evaluation.
	MaxSteps int
	// MaxStringLen caps the byte length of any constructed string
	// (concat/lower/upper results).
	MaxStringLen int
	// MaxListLen caps argument-list lengths.
	MaxListLen int
}

// DefaultLimits are generous for hand-written queries and fatal for
// runaway ones.
func DefaultLimits() Limits {
	return Limits{MaxSteps: 65536, MaxStringLen: 4096, MaxListLen: 256}
}

// ErrLimit marks an evaluation stopped by a resource limit.
var ErrLimit = errors.New("expr: resource limit exceeded")

// checkEvery is the step interval between cancellation polls.
const checkEvery = 64

// Ctx carries limits and cooperative cancellation into evaluation. One Ctx
// serves many Eval calls (one per row); it is not safe for concurrent use.
type Ctx struct {
	Limits Limits
	// Check, when set, is polled every checkEvery steps; a non-nil return
	// aborts the evaluation (qctx deadline, consumer shutdown).
	Check func() error
	steps int
}

// NewCtx returns a Ctx with the given limits; zero-valued limit fields fall
// back to the defaults.
func NewCtx(l Limits) *Ctx {
	d := DefaultLimits()
	if l.MaxSteps <= 0 {
		l.MaxSteps = d.MaxSteps
	}
	if l.MaxStringLen <= 0 {
		l.MaxStringLen = d.MaxStringLen
	}
	if l.MaxListLen <= 0 {
		l.MaxListLen = d.MaxListLen
	}
	return &Ctx{Limits: l}
}

func (c *Ctx) step() error {
	c.steps++
	if c.steps > c.Limits.MaxSteps {
		return fmt.Errorf("%w: more than %d evaluation steps", ErrLimit, c.Limits.MaxSteps)
	}
	if c.Check != nil && c.steps%checkEvery == 0 {
		if err := c.Check(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Ctx) checkString(s string) (string, error) {
	if len(s) > c.Limits.MaxStringLen {
		return "", fmt.Errorf("%w: string of %d bytes exceeds %d", ErrLimit, len(s), c.Limits.MaxStringLen)
	}
	return s, nil
}

// Getter returns the current row's value for a column: int64, float64,
// string or bool.
type Getter func(name string) any

// Eval interprets an expression for one row. The step counter restarts at
// every call; string/list bounds apply to every intermediate value.
func Eval(c *Ctx, e pql.Expr, get Getter) (any, error) {
	c.steps = 0
	return eval(c, e, get)
}

func eval(c *Ctx, e pql.Expr, get Getter) (any, error) {
	if err := c.step(); err != nil {
		return nil, err
	}
	switch n := e.(type) {
	case pql.Literal:
		return n.Value, nil
	case pql.ColumnRef:
		v := get(n.Name)
		if v == nil {
			return nil, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return v, nil
	case pql.Arith:
		l, err := eval(c, n.L, get)
		if err != nil {
			return nil, err
		}
		r, err := eval(c, n.R, get)
		if err != nil {
			return nil, err
		}
		return pql.ArithScalars(n.Op, l, r)
	case pql.Call:
		if len(n.Args) > c.Limits.MaxListLen {
			return nil, fmt.Errorf("%w: %d arguments exceed %d", ErrLimit, len(n.Args), c.Limits.MaxListLen)
		}
		args := make([]any, len(n.Args))
		for i, a := range n.Args {
			v, err := eval(c, a, get)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		v, err := pql.CallScalars(n.Name, args)
		if err != nil {
			return nil, err
		}
		if s, ok := v.(string); ok {
			return c.checkString(s)
		}
		return v, nil
	}
	return nil, fmt.Errorf("expr: unsupported node %T", e)
}

// Infer type-checks an expression against column kinds and returns its
// result kind. kindOf reports the kind of a referenced column, false for
// unknown columns.
func Infer(e pql.Expr, kindOf func(name string) (Kind, bool)) (Kind, error) {
	switch n := e.(type) {
	case pql.Literal:
		switch n.Value.(type) {
		case int64:
			return Long, nil
		case float64:
			return Double, nil
		case string:
			return String, nil
		case bool:
			return Bool, nil
		}
		return 0, fmt.Errorf("expr: unsupported literal type %T", n.Value)
	case pql.ColumnRef:
		k, ok := kindOf(n.Name)
		if !ok {
			return 0, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return k, nil
	case pql.Arith:
		lk, err := Infer(n.L, kindOf)
		if err != nil {
			return 0, err
		}
		rk, err := Infer(n.R, kindOf)
		if err != nil {
			return 0, err
		}
		if !lk.Numeric() || !rk.Numeric() {
			return 0, fmt.Errorf("expr: cannot apply %s to %s and %s", n.Op, lk, rk)
		}
		if n.Op != pql.OpDiv && lk == Long && rk == Long {
			return Long, nil
		}
		return Double, nil
	case pql.Call:
		kinds := make([]Kind, len(n.Args))
		for i, a := range n.Args {
			k, err := Infer(a, kindOf)
			if err != nil {
				return 0, err
			}
			kinds[i] = k
		}
		switch n.Name {
		case "timeBucket":
			if kinds[0] != Long || kinds[1] != Long {
				return 0, fmt.Errorf("expr: timeBucket takes (long, long), got (%s, %s)", kinds[0], kinds[1])
			}
			return Long, nil
		case "abs":
			if !kinds[0].Numeric() {
				return 0, fmt.Errorf("expr: abs takes a numeric argument, got %s", kinds[0])
			}
			return kinds[0], nil
		case "lower", "upper":
			if kinds[0] != String {
				return 0, fmt.Errorf("expr: %s takes a string argument, got %s", n.Name, kinds[0])
			}
			return String, nil
		case "concat":
			for i, k := range kinds {
				if k != String && k != Long {
					return 0, fmt.Errorf("expr: concat argument %d must be string or long, got %s", i+1, k)
				}
			}
			return String, nil
		}
		return 0, fmt.Errorf("expr: unknown function %q", n.Name)
	}
	return 0, fmt.Errorf("expr: unsupported node %T", e)
}

// InferCompare type-checks a comparison between two expressions: numerics
// compare with any operator, strings with any operator (lexicographic),
// booleans with = and <> only.
func InferCompare(op pql.CompareOp, lhs, rhs pql.Expr, kindOf func(name string) (Kind, bool)) error {
	lk, err := Infer(lhs, kindOf)
	if err != nil {
		return err
	}
	rk, err := Infer(rhs, kindOf)
	if err != nil {
		return err
	}
	return CompareKinds(op, lk, rk)
}

// CompareKinds validates a comparison between two already-inferred kinds.
func CompareKinds(op pql.CompareOp, lk, rk Kind) error {
	switch {
	case lk.Numeric() && rk.Numeric():
		return nil
	case lk == String && rk == String:
		return nil
	case lk == Bool && rk == Bool:
		if op != pql.OpEq && op != pql.OpNeq {
			return fmt.Errorf("expr: booleans only compare with = and <>")
		}
		return nil
	}
	return fmt.Errorf("expr: cannot compare %s with %s", lk, rk)
}

// CompareValues applies a comparison to two evaluated scalars. Two longs
// compare in int64 (no precision loss on large counts); mixed numerics
// compare in float64 — the same rule the compiled comparison kernels use,
// so both paths agree bit-for-bit.
func CompareValues(op pql.CompareOp, a, b any) (bool, error) {
	if ai, ok := a.(int64); ok {
		if bi, ok := b.(int64); ok {
			return cmpOrdered(op, ai, bi)
		}
	}
	if as, ok := a.(string); ok {
		if bs, ok := b.(string); ok {
			return cmpOrdered(op, as, bs)
		}
	}
	if ab, ok := a.(bool); ok {
		if bb, ok := b.(bool); ok {
			switch op {
			case pql.OpEq:
				return ab == bb, nil
			case pql.OpNeq:
				return ab != bb, nil
			}
			return false, fmt.Errorf("expr: booleans only compare with = and <>")
		}
	}
	af, aerr := numeric(a)
	bf, berr := numeric(b)
	if aerr != nil || berr != nil {
		return false, fmt.Errorf("expr: cannot compare %T with %T", a, b)
	}
	return cmpOrdered(op, af, bf)
}

func cmpOrdered[T int64 | float64 | string](op pql.CompareOp, a, b T) (bool, error) {
	switch op {
	case pql.OpEq:
		return a == b, nil
	case pql.OpNeq:
		return a != b, nil
	case pql.OpLt:
		return a < b, nil
	case pql.OpLte:
		return a <= b, nil
	case pql.OpGt:
		return a > b, nil
	case pql.OpGte:
		return a >= b, nil
	}
	return false, fmt.Errorf("expr: unknown comparison operator %q", op)
}

func numeric(v any) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	}
	return 0, fmt.Errorf("not numeric")
}
