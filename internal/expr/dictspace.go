package expr

import (
	"fmt"

	"pinot/internal/pql"
)

// Dictionary-space evaluation: for a deterministic expression over a single
// dict-encoded column, the expression takes at most Cardinality distinct
// input values, so evaluating it once per dictionary entry yields a memo
// that answers every row by dictID lookup. The memo stores results in a
// typed slice matching the expression's inferred kind, so consumers (the
// predicate compiler, groupers, aggregation kernels) read it without
// per-row boxing.

// DictMemo holds one expression's value per dictionary id of one segment
// column. Exactly one of the typed slices is populated, per Kind. A memo is
// immutable after construction and safe for concurrent readers.
type DictMemo struct {
	Kind    Kind
	Longs   []int64
	Doubles []float64
	Strings []string
	Bools   []bool
}

// Len returns the dictionary cardinality the memo covers.
func (m *DictMemo) Len() int {
	switch m.Kind {
	case Long:
		return len(m.Longs)
	case Double:
		return len(m.Doubles)
	case Bool:
		return len(m.Bools)
	default:
		return len(m.Strings)
	}
}

// Value boxes the memoized result for one dictionary id.
func (m *DictMemo) Value(id int) any {
	switch m.Kind {
	case Long:
		return m.Longs[id]
	case Double:
		return m.Doubles[id]
	case Bool:
		return m.Bools[id]
	default:
		return m.Strings[id]
	}
}

// SizeBytes estimates the memo's memory footprint for cache accounting.
func (m *DictMemo) SizeBytes() int64 {
	var n int64 = 64 // struct + slice headers
	n += int64(len(m.Longs)) * 8
	n += int64(len(m.Doubles)) * 8
	n += int64(len(m.Bools))
	for _, s := range m.Strings {
		n += int64(len(s)) + 16
	}
	return n
}

// EvalOverDict interprets e once per dictionary entry of a single column.
// value(id) supplies the dictionary entry for id in [0, card); kind is the
// expression's already-inferred result kind. Each entry gets a fresh step
// budget (Eval resets the counter), so the memo enforces the same per-row
// limits the interpreter would. Any per-entry error — division by zero on
// some entry, a string limit — aborts the memo and the caller falls back
// to the row path, which decides per live row whether that error actually
// surfaces. A memo must never change which queries error, so it only
// exists when every entry evaluates cleanly.
func EvalOverDict(c *Ctx, e pql.Expr, colName string, value func(id int) any, card int, kind Kind) (*DictMemo, error) {
	m := &DictMemo{Kind: kind}
	switch kind {
	case Long:
		m.Longs = make([]int64, card)
	case Double:
		m.Doubles = make([]float64, card)
	case Bool:
		m.Bools = make([]bool, card)
	default:
		m.Strings = make([]string, card)
	}
	var cur any
	get := func(name string) any {
		if name != colName {
			return nil
		}
		return cur
	}
	for id := 0; id < card; id++ {
		cur = value(id)
		v, err := Eval(c, e, get)
		if err != nil {
			return nil, fmt.Errorf("dict entry %d: %w", id, err)
		}
		switch kind {
		case Long:
			lv, ok := v.(int64)
			if !ok {
				return nil, fmt.Errorf("dict entry %d: got %T, want int64", id, v)
			}
			m.Longs[id] = lv
		case Double:
			// Strict: a memo must box exactly what the interpreter boxes,
			// or group/distinct keys rendered from it could diverge.
			dv, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("dict entry %d: got %T, want float64", id, v)
			}
			m.Doubles[id] = dv
		case Bool:
			bv, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("dict entry %d: got %T, want bool", id, v)
			}
			m.Bools[id] = bv
		default:
			sv, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("dict entry %d: got %T, want string", id, v)
			}
			m.Strings[id] = sv
		}
	}
	return m, nil
}
