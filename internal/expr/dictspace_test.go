package expr

import (
	"strings"
	"testing"

	"pinot/internal/pql"
)

func TestEvalOverDictMatchesInterpreter(t *testing.T) {
	dict := []string{"Alpha", "BETA", "gamma", "Δelta", ""}
	value := func(id int) any { return dict[id] }
	e := pql.Call{Name: "lower", Args: []pql.Expr{pql.ColumnRef{Name: "s"}}}

	m, err := EvalOverDict(NewCtx(Limits{}), e, "s", value, len(dict), String)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != len(dict) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(dict))
	}
	for id := range dict {
		// The reference: the row interpreter fed the same value.
		want, err := Eval(NewCtx(Limits{}), e, func(string) any { return dict[id] })
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Value(id); got != want {
			t.Errorf("id %d: memo %v, interpreter %v", id, got, want)
		}
	}
}

func TestEvalOverDictLongArith(t *testing.T) {
	value := func(id int) any { return int64(id * 10) }
	e := pql.Arith{Op: pql.OpMul, L: pql.ColumnRef{Name: "n"}, R: pql.Literal{Value: int64(3)}}
	m, err := EvalOverDict(NewCtx(Limits{}), e, "n", value, 8, Long)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 8; id++ {
		if got := m.Longs[id]; got != int64(id*30) {
			t.Errorf("id %d: got %d, want %d", id, got, id*30)
		}
	}
	// Boxing stays int64 — a float64 here would render different group keys
	// than the interpreter.
	if _, ok := m.Value(3).(int64); !ok {
		t.Fatalf("Value boxed %T, want int64", m.Value(3))
	}
}

// TestEvalOverDictKindMismatch: an integer-kinded memo handed a float result
// must refuse rather than coerce.
func TestEvalOverDictKindMismatch(t *testing.T) {
	value := func(id int) any { return int64(id) }
	// n / 2 divides as float64 regardless of operand types.
	e := pql.Arith{Op: pql.OpDiv, L: pql.ColumnRef{Name: "n"}, R: pql.Literal{Value: int64(2)}}
	if _, err := EvalOverDict(NewCtx(Limits{}), e, "n", value, 4, Long); err == nil {
		t.Fatal("Long-kinded memo accepted a float64 result")
	}
	if _, err := EvalOverDict(NewCtx(Limits{}), e, "n", value, 4, Double); err != nil {
		t.Fatalf("Double-kinded memo rejected division: %v", err)
	}
}

// TestEvalOverDictEntryErrorAborts: one poisoned dictionary entry kills the
// whole memo — the row path decides whether the error actually surfaces.
func TestEvalOverDictEntryErrorAborts(t *testing.T) {
	long := strings.Repeat("x", DefaultLimits().MaxStringLen)
	dict := []string{"ok", long} // concat(long, long) blows the string limit
	e := pql.Call{Name: "concat", Args: []pql.Expr{pql.ColumnRef{Name: "s"}, pql.ColumnRef{Name: "s"}}}
	if _, err := EvalOverDict(NewCtx(Limits{}), e, "s", func(id int) any { return dict[id] }, len(dict), String); err == nil {
		t.Fatal("memo built over an entry that exceeds the interpreter's string limit")
	}
}

// TestEvalOverDictFreshStepBudget: the per-row step limit applies per entry,
// not cumulatively — a memo over many entries must not exhaust a budget a
// single row would never see.
func TestEvalOverDictFreshStepBudget(t *testing.T) {
	// Deep enough that a shared budget across 10k entries would blow up.
	var e pql.Expr = pql.ColumnRef{Name: "n"}
	for i := 0; i < 20; i++ {
		e = pql.Arith{Op: pql.OpAdd, L: e, R: pql.Literal{Value: int64(1)}}
	}
	m, err := EvalOverDict(NewCtx(Limits{}), e, "n", func(id int) any { return int64(id) }, 10000, Long)
	if err != nil {
		t.Fatal(err)
	}
	if m.Longs[9999] != 9999+20 {
		t.Fatalf("got %d", m.Longs[9999])
	}
}

func TestDictMemoSizeBytes(t *testing.T) {
	m := &DictMemo{Kind: String, Strings: []string{"ab", "cdef"}}
	if got := m.SizeBytes(); got != 64+2+16+4+16 {
		t.Fatalf("SizeBytes = %d", got)
	}
	m2 := &DictMemo{Kind: Long, Longs: make([]int64, 10)}
	if got := m2.SizeBytes(); got != 64+80 {
		t.Fatalf("SizeBytes = %d", got)
	}
}
