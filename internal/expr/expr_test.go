package expr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"pinot/internal/pql"
)

// --- Interpreter-vs-naive-oracle tests, one per builtin. Each oracle is an
// independent Go implementation (different formula or stdlib call), so a bug
// shared by interpreter and kernels cannot hide behind itself.

func evalOne(t *testing.T, e pql.Expr, get Getter) any {
	t.Helper()
	v, err := Eval(NewCtx(Limits{}), e, get)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestOracleTimeBucket(t *testing.T) {
	// Oracle: floor via the always-positive remainder, a different formula
	// from FloorBucket's quotient correction.
	oracle := func(ts, w int64) int64 {
		r := ts % w
		if r < 0 {
			r += w
		}
		return ts - r
	}
	r := rand.New(rand.NewSource(31))
	cases := []int64{0, 1, -1, 59, -59, 86399, -86400, math.MaxInt64, math.MinInt64 + 1}
	for i := 0; i < 2000; i++ {
		cases = append(cases, r.Int63n(1<<40)-(1<<39))
	}
	widths := []int64{1, 2, 7, 60, 86400, 1 << 31}
	for _, ts := range cases {
		for _, w := range widths {
			e := pql.Call{Name: "timeBucket", Args: []pql.Expr{pql.Literal{Value: ts}, pql.Literal{Value: w}}}
			got := evalOne(t, e, nil).(int64)
			if want := oracle(ts, w); got != want {
				t.Fatalf("timeBucket(%d, %d) = %d, oracle says %d", ts, w, got, want)
			}
		}
	}
}

func TestOracleAbs(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 2000; i++ {
		l := r.Int63() - (1 << 62)
		got := evalOne(t, pql.Call{Name: "abs", Args: []pql.Expr{pql.Literal{Value: l}}}, nil).(int64)
		want := l
		if want < 0 {
			want = -want
		}
		if got != want {
			t.Fatalf("abs(%d) = %d, want %d", l, got, want)
		}
		d := (r.Float64() - 0.5) * 1e9
		gotD := evalOne(t, pql.Call{Name: "abs", Args: []pql.Expr{pql.Literal{Value: d}}}, nil).(float64)
		if wantD := math.Abs(d); gotD != wantD {
			t.Fatalf("abs(%g) = %g, want %g", d, gotD, wantD)
		}
	}
	// MinInt64 has no positive counterpart: the documented behavior is the
	// int64 wrap, same as Go negation.
	if got := evalOne(t, pql.Call{Name: "abs", Args: []pql.Expr{pql.Literal{Value: int64(math.MinInt64)}}}, nil).(int64); got != math.MinInt64 {
		t.Fatalf("abs(MinInt64) = %d, want MinInt64 wrap", got)
	}
}

func TestOracleLowerUpper(t *testing.T) {
	inputs := []string{"", "a", "ABC", "MiXeD", "already lower", "ÜBER-straße", "日本語", "x'y''z"}
	for _, s := range inputs {
		lo := evalOne(t, pql.Call{Name: "lower", Args: []pql.Expr{pql.Literal{Value: s}}}, nil).(string)
		if want := strings.ToLower(s); lo != want {
			t.Fatalf("lower(%q) = %q, want %q", s, lo, want)
		}
		up := evalOne(t, pql.Call{Name: "upper", Args: []pql.Expr{pql.Literal{Value: s}}}, nil).(string)
		if want := strings.ToUpper(s); up != want {
			t.Fatalf("upper(%q) = %q, want %q", s, up, want)
		}
	}
}

func TestOracleConcat(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	pool := []any{"a", "", "xy", int64(0), int64(-42), int64(123456789), "it's"}
	for i := 0; i < 1000; i++ {
		n := 2 + r.Intn(5)
		args := make([]pql.Expr, n)
		var want strings.Builder
		for j := range args {
			v := pool[r.Intn(len(pool))]
			args[j] = pql.Literal{Value: v}
			switch x := v.(type) {
			case string:
				want.WriteString(x)
			case int64:
				want.WriteString(strconv.FormatInt(x, 10))
			}
		}
		got := evalOne(t, pql.Call{Name: "concat", Args: args}, nil).(string)
		if got != want.String() {
			t.Fatalf("concat mismatch: got %q want %q", got, want.String())
		}
	}
}

func TestOracleArith(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for i := 0; i < 2000; i++ {
		a, b := r.Int63()-(1<<62), r.Int63()-(1<<62)
		mk := func(op pql.ArithOp) any {
			return evalOne(t, pql.Arith{Op: op, L: pql.Literal{Value: a}, R: pql.Literal{Value: b}}, nil)
		}
		if got := mk(pql.OpAdd).(int64); got != a+b {
			t.Fatalf("%d + %d = %d", a, b, got)
		}
		if got := mk(pql.OpSub).(int64); got != a-b {
			t.Fatalf("%d - %d = %d", a, b, got)
		}
		if got := mk(pql.OpMul).(int64); got != a*b {
			t.Fatalf("%d * %d = %d", a, b, got)
		}
		// Division always runs in float64, even long/long.
		if got := mk(pql.OpDiv).(float64); got != float64(a)/float64(b) {
			t.Fatalf("%d / %d = %g", a, b, got)
		}
	}
}

// --- Resource limits and cancellation.

// chainExpr builds clicks + 1 + 1 + ... with n additions (n+1 leaf nodes,
// 2n+1 AST nodes).
func chainExpr(n int) pql.Expr {
	var e pql.Expr = pql.ColumnRef{Name: "clicks"}
	for i := 0; i < n; i++ {
		e = pql.Arith{Op: pql.OpAdd, L: e, R: pql.Literal{Value: int64(1)}}
	}
	return e
}

func clicksGetter(name string) any {
	if name == "clicks" {
		return int64(5)
	}
	return nil
}

func TestLimitMaxSteps(t *testing.T) {
	c := NewCtx(Limits{MaxSteps: 100})
	if _, err := Eval(c, chainExpr(40), clicksGetter); err != nil {
		t.Fatalf("81-node expression under a 100-step cap should pass: %v", err)
	}
	_, err := Eval(c, chainExpr(60), clicksGetter)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("121-node expression over a 100-step cap: got %v, want ErrLimit", err)
	}
	// The counter restarts per evaluation: a small expression after the
	// failure must still have its full budget.
	if _, err := Eval(c, chainExpr(40), clicksGetter); err != nil {
		t.Fatalf("step budget not reset between evaluations: %v", err)
	}
}

func TestLimitMaxStringLen(t *testing.T) {
	c := NewCtx(Limits{MaxStringLen: 16})
	ok := pql.Call{Name: "concat", Args: []pql.Expr{
		pql.Literal{Value: "0123456789"}, pql.Literal{Value: "abcdef"},
	}}
	if v, err := Eval(c, ok, nil); err != nil || v.(string) != "0123456789abcdef" {
		t.Fatalf("16-byte concat under a 16-byte cap: %v, %v", v, err)
	}
	over := pql.Call{Name: "concat", Args: []pql.Expr{
		pql.Literal{Value: "0123456789"}, pql.Literal{Value: "abcdefg"},
	}}
	if _, err := Eval(c, over, nil); !errors.Is(err, ErrLimit) {
		t.Fatalf("17-byte concat over a 16-byte cap: got %v, want ErrLimit", err)
	}
	// upper() of an oversized input is also a constructed string.
	long := strings.Repeat("x", 17)
	if _, err := Eval(c, pql.Call{Name: "upper", Args: []pql.Expr{pql.Literal{Value: long}}}, nil); !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized upper(): want ErrLimit")
	}
}

func TestLimitMaxListLen(t *testing.T) {
	c := NewCtx(Limits{MaxListLen: 4, MaxStringLen: 1 << 20})
	args := make([]pql.Expr, 5)
	for i := range args {
		args[i] = pql.Literal{Value: "a"}
	}
	if _, err := Eval(c, pql.Call{Name: "concat", Args: args}, nil); !errors.Is(err, ErrLimit) {
		t.Fatalf("5-arg call over a 4-arg cap: want ErrLimit")
	}
	if v, err := Eval(c, pql.Call{Name: "concat", Args: args[:4]}, nil); err != nil || v.(string) != "aaaa" {
		t.Fatalf("4-arg call under cap: %v, %v", v, err)
	}
}

func TestCancellationCheck(t *testing.T) {
	calls := 0
	cancelAfter := 2
	c := NewCtx(Limits{})
	c.Check = func() error {
		calls++
		if calls > cancelAfter {
			return fmt.Errorf("deadline exceeded")
		}
		return nil
	}
	// A 401-node expression polls Check ~6 times at the 64-step interval, so
	// the third poll aborts mid-walk.
	_, err := Eval(c, chainExpr(200), clicksGetter)
	if err == nil || !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("runaway evaluation not cancelled: %v", err)
	}
	if calls != cancelAfter+1 {
		t.Fatalf("Check called %d times, want exactly %d (abort on first failure)", calls, cancelAfter+1)
	}
}

func TestDefaultLimitsApplied(t *testing.T) {
	c := NewCtx(Limits{})
	d := DefaultLimits()
	if c.Limits != d {
		t.Fatalf("zero limits should fall back to defaults: %+v vs %+v", c.Limits, d)
	}
	// A chain beyond the default step cap still aborts.
	if _, err := Eval(c, chainExpr(d.MaxSteps), clicksGetter); !errors.Is(err, ErrLimit) {
		t.Fatalf("default step cap not enforced: %v", err)
	}
}

// --- Compile/Eval equivalence: every expression the compiler accepts must
// produce bit-identical values to the interpreter, block against row.

// memSource serves kernel slots from in-memory columns.
type memSource struct {
	cols    []string
	longs   map[string][]int64
	doubles map[string][]float64
}

func (m *memSource) LongCol(slot int, docs []int, dst []int64) {
	col := m.longs[m.cols[slot]]
	for i, d := range docs {
		dst[i] = col[d]
	}
}

func (m *memSource) DoubleCol(slot int, docs []int, dst []float64) {
	col := m.doubles[m.cols[slot]]
	for i, d := range docs {
		dst[i] = col[d]
	}
}

// randNumericExpr generates only shapes the compiler accepts: arithmetic,
// abs, and timeBucket with a constant positive width, over long and double
// columns.
func randNumericExpr(r *rand.Rand, depth int) pql.Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return pql.ColumnRef{Name: "l1"}
		case 1:
			return pql.ColumnRef{Name: "l2"}
		case 2:
			return pql.ColumnRef{Name: "d1"}
		default:
			if r.Intn(2) == 0 {
				return pql.Literal{Value: int64(r.Intn(100) - 50)}
			}
			return pql.Literal{Value: (r.Float64() - 0.5) * 20}
		}
	}
	switch r.Intn(4) {
	case 0, 1:
		ops := []pql.ArithOp{pql.OpAdd, pql.OpSub, pql.OpMul, pql.OpDiv}
		return pql.Arith{Op: ops[r.Intn(len(ops))], L: randNumericExpr(r, depth-1), R: randNumericExpr(r, depth-1)}
	case 2:
		return pql.Call{Name: "abs", Args: []pql.Expr{randNumericExpr(r, depth-1)}}
	default:
		// timeBucket needs a Long child; anchor on a long column.
		inner := pql.Arith{Op: pql.OpAdd, L: pql.ColumnRef{Name: "l1"}, R: pql.Literal{Value: int64(r.Intn(1000))}}
		return pql.Call{Name: "timeBucket", Args: []pql.Expr{inner, pql.Literal{Value: int64(1 + r.Intn(100))}}}
	}
}

func TestCompileEvalEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	const rows = 257 // odd size: not a multiple of any block width
	src := &memSource{
		longs:   map[string][]int64{"l1": make([]int64, rows), "l2": make([]int64, rows)},
		doubles: map[string][]float64{"d1": make([]float64, rows)},
	}
	for i := 0; i < rows; i++ {
		src.longs["l1"][i] = r.Int63n(1<<33) - (1 << 32)
		src.longs["l2"][i] = int64(r.Intn(2000) - 1000)
		src.doubles["d1"][i] = (r.Float64() - 0.5) * 1e6
	}
	src.doubles["d1"][7] = 0 // make division by a column value hit /0
	src.longs["l2"][11] = 0
	kindOf := func(name string) (Kind, bool) {
		switch name {
		case "l1", "l2":
			return Long, true
		case "d1":
			return Double, true
		}
		return 0, false
	}
	get := func(row int) Getter {
		return func(name string) any {
			switch name {
			case "l1", "l2":
				return src.longs[name][row]
			case "d1":
				return src.doubles[name][row]
			}
			return nil
		}
	}
	docs := make([]int, rows)
	for i := range docs {
		docs[i] = i
	}
	ctx := NewCtx(Limits{})

	compiled := 0
	for iter := 0; iter < 400; iter++ {
		e := randNumericExpr(r, 1+r.Intn(3))
		k, ok := Compile(e, kindOf)
		if !ok {
			t.Fatalf("iter %d: compiler declined a numeric expression: %s", iter, e)
		}
		compiled++
		src.cols = k.Cols
		if wantKind, err := Infer(e, kindOf); err != nil || wantKind != k.Kind {
			t.Fatalf("iter %d: kernel kind %s, Infer says %s (%v) for %s", iter, k.Kind, wantKind, err, e)
		}
		// Doubles path (also exercises the long→double promotion).
		dd := make([]float64, rows)
		k.EvalDoubles(src, docs, dd)
		var ll []int64
		if k.Kind == Long {
			ll = make([]int64, rows)
			k.EvalLongs(src, docs, ll)
		}
		for row := 0; row < rows; row++ {
			iv, err := Eval(ctx, e, get(row))
			if err != nil {
				t.Fatalf("iter %d row %d: interpreter failed on compiled expression %s: %v", iter, row, e, err)
			}
			switch k.Kind {
			case Long:
				want := iv.(int64)
				if ll[row] != want {
					t.Fatalf("iter %d row %d: %s: kernel long %d, interpreter %d", iter, row, e, ll[row], want)
				}
				if dd[row] != float64(want) {
					t.Fatalf("iter %d row %d: %s: kernel double-promotion %g, want %g", iter, row, e, dd[row], float64(want))
				}
			case Double:
				var want float64
				switch x := iv.(type) {
				case float64:
					want = x
				case int64:
					want = float64(x)
				}
				if math.Float64bits(dd[row]) != math.Float64bits(want) {
					t.Fatalf("iter %d row %d: %s: kernel %v (bits %x), interpreter %v (bits %x)",
						iter, row, e, dd[row], math.Float64bits(dd[row]), want, math.Float64bits(want))
				}
			}
		}
	}
	if compiled == 0 {
		t.Fatal("no expression compiled")
	}
}

func TestCompileDeclines(t *testing.T) {
	kindOf := func(name string) (Kind, bool) {
		switch name {
		case "clicks":
			return Long, true
		case "country":
			return String, true
		}
		return 0, false
	}
	decline := []pql.Expr{
		pql.ColumnRef{Name: "country"},                                                                               // non-numeric column
		pql.Call{Name: "upper", Args: []pql.Expr{pql.ColumnRef{Name: "country"}}},                                    // string builtin
		pql.Call{Name: "timeBucket", Args: []pql.Expr{pql.ColumnRef{Name: "clicks"}, pql.ColumnRef{Name: "clicks"}}}, // non-constant width
		pql.Call{Name: "timeBucket", Args: []pql.Expr{pql.ColumnRef{Name: "clicks"}, pql.Literal{Value: int64(0)}}},  // zero width must error per row
		pql.ColumnRef{Name: "nosuch"},                                                                                // unknown column
	}
	for _, e := range decline {
		if _, ok := Compile(e, kindOf); ok {
			t.Fatalf("compiler accepted %s; the interpreter owns this shape", e)
		}
	}
	if k, ok := Compile(pql.Arith{Op: pql.OpAdd, L: pql.ColumnRef{Name: "clicks"}, R: pql.Literal{Value: int64(1)}}, kindOf); !ok || k.Kind != Long {
		t.Fatal("compiler declined clicks + 1")
	}
}
