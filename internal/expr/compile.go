package expr

import (
	"math"

	"pinot/internal/pql"
)

// The compiler lowers numeric expressions — arithmetic, abs, and timeBucket
// with a constant width over long/double columns — into typed block kernels.
// A kernel evaluates a whole docID block at once against typed column blocks
// the caller supplies, which is what lets the vectorized engine keep its
// batch shape for derived inputs. Anything the compiler declines (strings,
// non-constant bucket widths, unknown shapes) runs on the interpreter
// instead; both produce bit-identical values because long arithmetic wraps
// and promotion to float64 happens at exactly the nodes ArithScalars
// promotes.

// BlockSource supplies typed blocks of column values by compile-time slot.
// LongCol is only called for slots whose column kind is Long, DoubleCol only
// for Double slots; dst is sized to len(docs).
type BlockSource interface {
	LongCol(slot int, docs []int, dst []int64)
	DoubleCol(slot int, docs []int, dst []float64)
}

// Kernel is a compiled expression. It is single-goroutine: scratch buffers
// live in the nodes and are reused across blocks.
type Kernel struct {
	// Kind is Long or Double — the expression's result kind.
	Kind Kind
	// Cols lists referenced columns in slot order; the BlockSource passed to
	// Eval* must resolve slot i to Cols[i].
	Cols     []string
	root     knode
	dscratch kscratch
}

// Compile lowers an expression to a kernel, reporting false when the
// expression needs the interpreter (non-numeric types, builtins without a
// kernel form, non-constant timeBucket width).
func Compile(e pql.Expr, kindOf func(name string) (Kind, bool)) (*Kernel, bool) {
	k := &Kernel{}
	slots := map[string]int{}
	root, ok := k.lower(e, kindOf, slots)
	if !ok {
		return nil, false
	}
	k.root = root
	k.Kind = root.kind()
	return k, true
}

// EvalLongs evaluates a Long-kinded kernel for a block of docs.
func (k *Kernel) EvalLongs(src BlockSource, docs []int, dst []int64) {
	k.root.evalL(src, docs, dst)
}

// EvalDoubles evaluates the kernel for a block of docs, promoting a long
// result per element — the same promotion the scalar path applies when an
// aggregator consumes an integral expression.
func (k *Kernel) EvalDoubles(src BlockSource, docs []int, dst []float64) {
	if k.Kind == Long {
		ls := scratchL(&k.dscratch, len(docs))
		k.root.evalL(src, docs, ls)
		for i, v := range ls {
			dst[i] = float64(v)
		}
		return
	}
	k.root.evalD(src, docs, dst)
}

// dscratch backs EvalDoubles' long→double conversion.
type kscratch struct{ ls []int64 }

func scratchL(s *kscratch, n int) []int64 {
	if cap(s.ls) < n {
		s.ls = make([]int64, n)
	}
	return s.ls[:n]
}

type knode interface {
	kind() Kind
	// evalL is only called on Long-kinded nodes, evalD on any numeric node
	// (Long children promote per element).
	evalL(src BlockSource, docs []int, dst []int64)
	evalD(src BlockSource, docs []int, dst []float64)
}

func (k *Kernel) lower(e pql.Expr, kindOf func(string) (Kind, bool), slots map[string]int) (knode, bool) {
	switch n := e.(type) {
	case pql.Literal:
		switch v := n.Value.(type) {
		case int64:
			return &kconst{k: Long, l: v, d: float64(v)}, true
		case float64:
			return &kconst{k: Double, d: v}, true
		}
		return nil, false
	case pql.ColumnRef:
		ck, ok := kindOf(n.Name)
		if !ok || !ck.Numeric() {
			return nil, false
		}
		slot, ok := slots[n.Name]
		if !ok {
			slot = len(k.Cols)
			slots[n.Name] = slot
			k.Cols = append(k.Cols, n.Name)
		}
		return &kcol{k: ck, slot: slot}, true
	case pql.Arith:
		l, ok := k.lower(n.L, kindOf, slots)
		if !ok {
			return nil, false
		}
		r, ok := k.lower(n.R, kindOf, slots)
		if !ok {
			return nil, false
		}
		kind := Double
		if n.Op != pql.OpDiv && l.kind() == Long && r.kind() == Long {
			kind = Long
		}
		return &karith{k: kind, op: n.Op, l: l, r: r}, true
	case pql.Call:
		switch n.Name {
		case "abs":
			c, ok := k.lower(n.Args[0], kindOf, slots)
			if !ok {
				return nil, false
			}
			return &kabs{k: c.kind(), child: c}, true
		case "timeBucket":
			c, ok := k.lower(n.Args[0], kindOf, slots)
			if !ok || c.kind() != Long {
				return nil, false
			}
			// Only a constant positive width compiles; anything else (a
			// column-valued width, a zero that must error per row) is the
			// interpreter's job.
			lit, ok := n.Args[1].(pql.Literal)
			if !ok {
				return nil, false
			}
			w, ok := lit.Value.(int64)
			if !ok || w <= 0 {
				return nil, false
			}
			return &ktimebucket{child: c, width: w}, true
		}
		return nil, false
	}
	return nil, false
}

type kconst struct {
	k Kind
	l int64
	d float64
}

func (n *kconst) kind() Kind { return n.k }

func (n *kconst) evalL(_ BlockSource, docs []int, dst []int64) {
	for i := range docs {
		dst[i] = n.l
	}
}

func (n *kconst) evalD(_ BlockSource, docs []int, dst []float64) {
	for i := range docs {
		dst[i] = n.d
	}
}

type kcol struct {
	k    Kind
	slot int
	ls   []int64
}

func (n *kcol) kind() Kind { return n.k }

func (n *kcol) evalL(src BlockSource, docs []int, dst []int64) {
	src.LongCol(n.slot, docs, dst)
}

func (n *kcol) evalD(src BlockSource, docs []int, dst []float64) {
	if n.k == Long {
		ls := growL(&n.ls, len(docs))
		src.LongCol(n.slot, docs, ls)
		for i, v := range ls {
			dst[i] = float64(v)
		}
		return
	}
	src.DoubleCol(n.slot, docs, dst)
}

type karith struct {
	k      Kind
	op     pql.ArithOp
	l, r   knode
	ls, rs []int64
	ld, rd []float64
}

func (n *karith) kind() Kind { return n.k }

func (n *karith) evalL(src BlockSource, docs []int, dst []int64) {
	ls := growL(&n.ls, len(docs))
	rs := growL(&n.rs, len(docs))
	n.l.evalL(src, docs, ls)
	n.r.evalL(src, docs, rs)
	switch n.op {
	case pql.OpAdd:
		for i := range ls {
			dst[i] = ls[i] + rs[i]
		}
	case pql.OpSub:
		for i := range ls {
			dst[i] = ls[i] - rs[i]
		}
	case pql.OpMul:
		for i := range ls {
			dst[i] = ls[i] * rs[i]
		}
	}
}

func (n *karith) evalD(src BlockSource, docs []int, dst []float64) {
	if n.k == Long {
		// A long-kinded node computes in int64 and promotes its result —
		// ArithScalars' order. Promoting the operands instead would lose
		// exactness past 2^53 and skip the wrap.
		ls := growL(&n.ls, len(docs))
		n.evalL(src, docs, ls)
		for i, v := range ls {
			dst[i] = float64(v)
		}
		return
	}
	ld := growD(&n.ld, len(docs))
	rd := growD(&n.rd, len(docs))
	n.l.evalD(src, docs, ld)
	n.r.evalD(src, docs, rd)
	switch n.op {
	case pql.OpAdd:
		for i := range ld {
			dst[i] = ld[i] + rd[i]
		}
	case pql.OpSub:
		for i := range ld {
			dst[i] = ld[i] - rd[i]
		}
	case pql.OpMul:
		for i := range ld {
			dst[i] = ld[i] * rd[i]
		}
	case pql.OpDiv:
		for i := range ld {
			dst[i] = ld[i] / rd[i]
		}
	}
}

type kabs struct {
	k        Kind
	child    knode
	lscratch []int64
}

func (n *kabs) kind() Kind { return n.k }

func (n *kabs) evalL(src BlockSource, docs []int, dst []int64) {
	n.child.evalL(src, docs, dst)
	for i, v := range dst {
		if v < 0 {
			dst[i] = -v // MinInt64 wraps, matching CallScalars
		}
	}
}

func (n *kabs) evalD(src BlockSource, docs []int, dst []float64) {
	if n.k == Long {
		// Promote after the integral abs so -2^63..-2^53 agree with the
		// interpreter's int64 wrap-then-promote order.
		ls := growL(&n.lscratch, len(docs))
		n.evalL(src, docs, ls)
		for i, v := range ls {
			dst[i] = float64(v)
		}
		return
	}
	n.child.evalD(src, docs, dst)
	for i, v := range dst {
		// math.Abs is a sign-bit clear: it also maps -0.0 → +0.0 and
		// -NaN → +NaN, which the interpreter's math.Abs does too — anything
		// branchy here would leave a stray NaN sign bit to diverge on.
		dst[i] = math.Abs(v)
	}
}

type ktimebucket struct {
	child    knode
	width    int64
	lscratch []int64
}

func (n *ktimebucket) kind() Kind { return Long }

func (n *ktimebucket) evalL(src BlockSource, docs []int, dst []int64) {
	n.child.evalL(src, docs, dst)
	for i, v := range dst {
		dst[i] = pql.FloorBucket(v, n.width)
	}
}

func (n *ktimebucket) evalD(src BlockSource, docs []int, dst []float64) {
	ls := growL(&n.lscratch, len(docs))
	n.evalL(src, docs, ls)
	for i, v := range ls {
		dst[i] = float64(v)
	}
}

func growL(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
	}
	return (*buf)[:n]
}

func growD(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}
