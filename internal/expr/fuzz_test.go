package expr

import (
	"math"
	"testing"

	"pinot/internal/pql"
)

// FuzzExprEval holds the sandbox and equivalence properties over arbitrary
// expression text: parsing plus interpreting never panics (limits turn
// runaway input into errors), and any expression the compiler also accepts
// produces the same value from the kernel as from the interpreter.
func FuzzExprEval(f *testing.F) {
	seeds := []string{
		"clicks + 1",
		"timeBucket(day, 7)",
		"abs(score - 500)",
		"concat(country, '-', clicks)",
		"upper(country)",
		"(clicks * clicks) / (score + 0.5)",
		"lower(concat(country, country, country))",
		"abs(clicks) * -1 + timeBucket(day + 3, 60)",
		"clicks / 0",
		"timeBucket(day, 0)",
		"'a' = 'b'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	kindOf := func(name string) (Kind, bool) {
		switch name {
		case "clicks", "day":
			return Long, true
		case "score":
			return Double, true
		case "country":
			return String, true
		}
		return 0, false
	}
	get := func(name string) any {
		switch name {
		case "clicks":
			return int64(7)
		case "day":
			return int64(16025)
		case "score":
			return 2.5
		case "country":
			return "us"
		}
		return nil
	}
	f.Fuzz(func(t *testing.T, in string) {
		e, err := pql.ParseExpr(in)
		if err != nil {
			return
		}
		c := NewCtx(Limits{MaxSteps: 4096, MaxStringLen: 1024, MaxListLen: 64})
		v, err := Eval(c, e, get)
		if err != nil {
			return
		}
		k, ok := Compile(e, kindOf)
		if !ok {
			return
		}
		src := &memSource{
			cols:    k.Cols,
			longs:   map[string][]int64{"clicks": {7}, "day": {16025}},
			doubles: map[string][]float64{"score": {2.5}},
		}
		docs := []int{0}
		switch k.Kind {
		case Long:
			want, isLong := v.(int64)
			if !isLong {
				t.Fatalf("%s: kernel kind long, interpreter returned %T", in, v)
			}
			dst := make([]int64, 1)
			k.EvalLongs(src, docs, dst)
			if dst[0] != want {
				t.Fatalf("%s: kernel long %d, interpreter %d", in, dst[0], want)
			}
		case Double:
			var want float64
			switch x := v.(type) {
			case float64:
				want = x
			case int64:
				want = float64(x)
			default:
				t.Fatalf("%s: kernel kind double, interpreter returned %T", in, v)
			}
			dst := make([]float64, 1)
			k.EvalDoubles(src, docs, dst)
			if math.Float64bits(dst[0]) != math.Float64bits(want) {
				t.Fatalf("%s: kernel %v, interpreter %v", in, dst[0], want)
			}
		}
	})
}
