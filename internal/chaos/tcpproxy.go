package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyFault describes socket-level mischief a Proxy injects into the
// response direction (server→client) of each proxied connection. The zero
// value is a transparent proxy.
type ProxyFault struct {
	// RejectConnections closes every new client connection immediately,
	// modelling a dead or refusing endpoint behind a live address.
	RejectConnections bool
	// ResetAfterResponseBytes, when > 0, forcefully resets (RST) the client
	// connection once that many response bytes have been forwarded. Pointing
	// it inside a frame models a server killed mid-frame.
	ResetAfterResponseBytes int
	// HangAfterResponseBytes, when > 0, stops forwarding after that many
	// response bytes without closing anything: a half-open connection that
	// only a client deadline can escape.
	HangAfterResponseBytes int
	// DripDelay, when > 0, forwards response bytes in DripChunk-sized
	// pieces with this delay between them — a pathologically slow peer.
	DripDelay time.Duration
	// DripChunk sizes drip pieces (default 1 byte).
	DripChunk int
	// CorruptResponseByte, when > 0, flips one bit in the Nth (1-based)
	// response byte, corrupting the stream without breaking the connection.
	CorruptResponseByte int
}

// Proxy is a TCP fault-injection proxy in front of one target address.
// Faults apply per connection from the moment SetFault is called; existing
// connections pick up threshold faults at their current byte offsets.
type Proxy struct {
	target string
	lis    net.Listener

	mu     sync.Mutex
	fault  ProxyFault
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	connections atomic.Int64
	faulted     atomic.Int64
}

// NewProxy listens on a loopback port and forwards to target.
func NewProxy(target string) (*Proxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, lis: lis, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; dial this instead of the target.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// SetFault installs a fault policy.
func (p *Proxy) SetFault(f ProxyFault) {
	p.mu.Lock()
	p.fault = f
	p.mu.Unlock()
}

// Clear removes the fault policy (transparent proxying).
func (p *Proxy) Clear() { p.SetFault(ProxyFault{}) }

// Connections reports accepted client connections.
func (p *Proxy) Connections() int64 { return p.connections.Load() }

// Faulted reports connections on which a fault fired.
func (p *Proxy) Faulted() int64 { return p.faulted.Load() }

// SeverAll hard-closes every currently proxied connection (RST where the
// stack allows it) while leaving the listener up: the replica-death model
// for clients holding pooled connections. Combine with RejectConnections to
// keep the instance dead to redials.
func (p *Proxy) SeverAll() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Close()
		p.faulted.Add(1)
	}
}

// Close stops the listener and severs every proxied connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.lis.Close()
	p.wg.Wait()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) currentFault() ProxyFault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fault
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.connections.Add(1)
		if p.currentFault().RejectConnections {
			p.faulted.Add(1)
			client.Close()
			continue
		}
		server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client) || !p.track(server) {
			client.Close()
			server.Close()
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.pipe(client, server)
			p.untrack(client)
			p.untrack(server)
		}()
	}
}

// pipe runs the two copy directions until both end. The request direction is
// transparent; the response direction goes through the fault filter.
func (p *Proxy) pipe(client, server net.Conn) {
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		p.forwardResponses(client, server)
		done <- struct{}{}
	}()
	<-done
	<-done
	client.Close()
	server.Close()
}

// forwardResponses copies server→client applying the fault policy.
func (p *Proxy) forwardResponses(client, server net.Conn) {
	buf := make([]byte, 32<<10)
	sent := 0 // response bytes forwarded so far on this connection
	for {
		n, err := server.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			f := p.currentFault()
			// Corrupt one byte if its absolute offset lands in this chunk.
			if off := f.CorruptResponseByte; off > 0 && off > sent && off <= sent+len(chunk) {
				chunk[off-sent-1] ^= 0x40
				p.faulted.Add(1)
			}
			// Truncate at a reset/hang threshold inside this chunk. A
			// connection already past the threshold (fault installed on a
			// pooled, previously used conn) forwards nothing more.
			action := 0 // 1 = reset, 2 = hang
			if f.ResetAfterResponseBytes > 0 && sent+len(chunk) >= f.ResetAfterResponseBytes {
				chunk = chunk[:clampCut(f.ResetAfterResponseBytes-sent, len(chunk))]
				action = 1
			} else if f.HangAfterResponseBytes > 0 && sent+len(chunk) >= f.HangAfterResponseBytes {
				chunk = chunk[:clampCut(f.HangAfterResponseBytes-sent, len(chunk))]
				action = 2
			}
			if werr := p.writeChunk(client, chunk, f); werr != nil {
				return
			}
			sent += len(chunk)
			switch action {
			case 1:
				// SO_LINGER 0 makes the close send an RST instead of a FIN:
				// the client sees a hard connection reset mid-stream.
				p.faulted.Add(1)
				if tc, ok := client.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
				client.Close()
				return
			case 2:
				// Half-open: forward nothing more, close nothing. The
				// connection stays up until the client's deadline fires or
				// the proxy shuts down.
				p.faulted.Add(1)
				p.parkUntilClosed(client)
				return
			}
		}
		if err != nil {
			if tc, ok := client.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

// clampCut bounds a threshold cut to [0, n].
func clampCut(cut, n int) int {
	if cut < 0 {
		return 0
	}
	if cut > n {
		return n
	}
	return cut
}

// writeChunk writes response bytes, dripping them slowly when configured.
func (p *Proxy) writeChunk(client net.Conn, chunk []byte, f ProxyFault) error {
	if f.DripDelay <= 0 {
		_, err := client.Write(chunk)
		return err
	}
	p.faulted.Add(1)
	size := f.DripChunk
	if size <= 0 {
		size = 1
	}
	for len(chunk) > 0 {
		n := size
		if n > len(chunk) {
			n = len(chunk)
		}
		if _, err := client.Write(chunk[:n]); err != nil {
			return err
		}
		chunk = chunk[n:]
		if len(chunk) > 0 {
			time.Sleep(f.DripDelay)
		}
	}
	return nil
}

// parkUntilClosed blocks until the client connection dies (peer close or
// proxy Close), keeping the half-open illusion alive without burning CPU.
func (p *Proxy) parkUntilClosed(client net.Conn) {
	one := make([]byte, 1)
	for {
		// The client never sends more on a half-open response, so this read
		// only returns on close/reset/proxy shutdown.
		if _, err := client.Read(one); err != nil {
			return
		}
	}
}
