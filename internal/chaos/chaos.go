// Package chaos is a deterministic fault-injection layer for the query data
// plane. It wraps a transport.Registry so that every broker→server call can
// be delayed, failed, hung until context cancellation, or corrupted
// according to a per-instance Fault policy. All randomness comes from a
// seeded generator and all fault schedules are count-based (the Nth call
// fails, not the call at time T), so cluster-level scenarios are exactly
// reproducible under a fixed seed.
//
// Session expiry (zkmeta) and partition stalls (stream) have their own hooks
// in those packages — Controller.ExpireSession and Topic.StallPartition —
// so composed scenarios like "replica dies mid-scatter while the lead
// controller loses its ZK session" are driven from one test body.
package chaos

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"pinot/internal/query"
	"pinot/internal/transport"
)

// ErrInjected is the default error returned by injected failures.
var ErrInjected = errors.New("chaos: injected fault")

// Fault is the policy applied to one server instance. The zero value is a
// passthrough. Latency/Jitter compose with the failure modes: a call is
// delayed first, then failed/hung/corrupted.
type Fault struct {
	// Latency delays every call by this fixed amount.
	Latency time.Duration
	// Jitter adds a seeded-random delay in [0, Jitter).
	Jitter time.Duration
	// FailFirst fails the first N calls, then recovers (the
	// N-failures-then-recover policy). Ignored when FailAll is set.
	FailFirst int
	// FailAll fails every call.
	FailAll bool
	// FailEvery fails every Kth call (1-indexed: calls K, 2K, ...).
	FailEvery int
	// Hang blocks calls until their context is cancelled, then returns the
	// context error — the "server stops answering mid-query" mode.
	Hang bool
	// StallFor blocks calls for the full duration, IGNORING context
	// cancellation, then fails — the "straggler that never learned to
	// cooperate" mode. Unlike Hang, the goroutine stays occupied past the
	// query deadline, which is exactly what a broker must tolerate without
	// leaking its own gather goroutines.
	StallFor time.Duration
	// Corrupt lets the call through but mangles the response payload so
	// it no longer matches the query shape, modelling wire corruption.
	Corrupt bool
	// Err overrides ErrInjected as the injected error.
	Err error
}

func (f Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

type instanceState struct {
	fault    Fault
	calls    int // total calls observed
	injected int // calls that had a fault injected
}

// Registry wraps an inner transport.Registry with fault injection. Instances
// without a policy pass through untouched.
type Registry struct {
	inner transport.Registry

	mu     sync.Mutex
	rnd    *rand.Rand
	states map[string]*instanceState
}

// NewRegistry wraps inner. The seed drives jitter; fixed seed + fixed call
// order = identical schedule.
func NewRegistry(inner transport.Registry, seed int64) *Registry {
	if seed == 0 {
		seed = 1
	}
	return &Registry{
		inner:  inner,
		rnd:    rand.New(rand.NewSource(seed)),
		states: map[string]*instanceState{},
	}
}

// SetFault installs (or replaces) the policy for an instance and resets its
// counters.
func (r *Registry) SetFault(instance string, f Fault) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.states[instance] = &instanceState{fault: f}
}

// Clear removes the policy for an instance (counters included).
func (r *Registry) Clear(instance string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.states, instance)
}

// Calls returns how many calls the instance has received since its policy
// was installed.
func (r *Registry) Calls(instance string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.states[instance]; ok {
		return st.calls
	}
	return 0
}

// Injected returns how many calls had a fault injected.
func (r *Registry) Injected(instance string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.states[instance]; ok {
		return st.injected
	}
	return 0
}

// ServerClient implements transport.Registry.
func (r *Registry) ServerClient(instance string) (transport.ServerClient, bool) {
	inner, ok := r.inner.ServerClient(instance)
	if !ok {
		return nil, false
	}
	return &client{reg: r, instance: instance, inner: inner}, true
}

// action is the decision for one call, taken under the registry lock so the
// schedule is a pure function of call order.
type action struct {
	delay   time.Duration
	fail    bool
	hang    bool
	stall   time.Duration
	corrupt bool
	err     error
}

func (r *Registry) decide(instance string) action {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.states[instance]
	if !ok {
		return action{}
	}
	st.calls++
	f := st.fault
	a := action{delay: f.Latency}
	if f.Jitter > 0 {
		a.delay += time.Duration(r.rnd.Int63n(int64(f.Jitter)))
	}
	switch {
	case f.Hang:
		a.hang = true
	case f.StallFor > 0:
		a.stall, a.err = f.StallFor, f.err()
	case f.FailAll:
		a.fail, a.err = true, f.err()
	case f.FailFirst > 0 && st.calls <= f.FailFirst:
		a.fail, a.err = true, f.err()
	case f.FailEvery > 0 && st.calls%f.FailEvery == 0:
		a.fail, a.err = true, f.err()
	case f.Corrupt:
		a.corrupt = true
	}
	if a.fail || a.hang || a.stall > 0 || a.corrupt {
		st.injected++
	}
	return a
}

// client wraps one server's query client with the registry's policy.
type client struct {
	reg      *Registry
	instance string
	inner    transport.ServerClient
}

// Execute applies the instance's fault policy around the inner call.
func (c *client) Execute(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error) {
	a := c.reg.decide(c.instance)
	if a.delay > 0 {
		t := time.NewTimer(a.delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	switch {
	case a.hang:
		<-ctx.Done()
		return nil, ctx.Err()
	case a.stall > 0:
		// Deliberately NOT selecting on ctx.Done(): the point is to model a
		// server that keeps grinding past cancellation.
		time.Sleep(a.stall)
		return nil, a.err
	case a.fail:
		return nil, a.err
	}
	resp, err := c.inner.Execute(ctx, req)
	if err != nil {
		return nil, err
	}
	if a.corrupt {
		return corruptResponse(resp), nil
	}
	return resp, nil
}

// corruptResponse returns a response whose payload no longer matches any
// query shape, leaving the original untouched (servers share response
// memory over the in-process transport).
func corruptResponse(resp *transport.QueryResponse) *transport.QueryResponse {
	out := &transport.QueryResponse{Exceptions: resp.Exceptions}
	if resp.Result != nil {
		mangled := *resp.Result
		// An impossible result shape: no decoder or planner produces
		// kind 255, so shape validation rejects it downstream.
		mangled.Kind = query.ResultKind(255)
		mangled.Aggs = nil
		mangled.Groups = nil
		mangled.Rows = nil
		out.Result = &mangled
	}
	return out
}
