package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"pinot/internal/pql"
	"pinot/internal/query"
	"pinot/internal/transport"
)

type fakeServer struct {
	calls int
}

func (f *fakeServer) Execute(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error) {
	f.calls++
	inter := query.NewAggIntermediate([]pql.Expression{{IsAgg: true, Func: pql.Count, Column: "*"}})
	return &transport.QueryResponse{Result: inter}, nil
}

func registryWith(f *fakeServer) *Registry {
	inner := transport.RegistryFunc(func(instance string) (transport.ServerClient, bool) {
		if instance == "server1" {
			return f, true
		}
		return nil, false
	})
	return NewRegistry(inner, 42)
}

func exec(t *testing.T, r *Registry, ctx context.Context) (*transport.QueryResponse, error) {
	t.Helper()
	c, ok := r.ServerClient("server1")
	if !ok {
		t.Fatal("no client")
	}
	return c.Execute(ctx, &transport.QueryRequest{PQL: "SELECT count(*) FROM t"})
}

func TestPassthroughWithoutPolicy(t *testing.T) {
	f := &fakeServer{}
	r := registryWith(f)
	resp, err := exec(t, r, context.Background())
	if err != nil || resp.Result == nil {
		t.Fatalf("passthrough: %v %v", resp, err)
	}
	if _, ok := r.ServerClient("nosuch"); ok {
		t.Fatal("unknown instance resolved")
	}
}

func TestFailFirstThenRecover(t *testing.T) {
	f := &fakeServer{}
	r := registryWith(f)
	r.SetFault("server1", Fault{FailFirst: 2})
	for i := 0; i < 2; i++ {
		if _, err := exec(t, r, context.Background()); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want injected", i, err)
		}
	}
	if _, err := exec(t, r, context.Background()); err != nil {
		t.Fatalf("recovered call failed: %v", err)
	}
	if f.calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (failed calls never reach the server)", f.calls)
	}
	if got := r.Calls("server1"); got != 3 {
		t.Fatalf("calls = %d", got)
	}
	if got := r.Injected("server1"); got != 2 {
		t.Fatalf("injected = %d", got)
	}
}

func TestFailEvery(t *testing.T) {
	f := &fakeServer{}
	r := registryWith(f)
	r.SetFault("server1", Fault{FailEvery: 3})
	var failures []int
	for i := 1; i <= 9; i++ {
		if _, err := exec(t, r, context.Background()); err != nil {
			failures = append(failures, i)
		}
	}
	if len(failures) != 3 || failures[0] != 3 || failures[1] != 6 || failures[2] != 9 {
		t.Fatalf("failures at %v, want [3 6 9]", failures)
	}
}

func TestHangUntilCancel(t *testing.T) {
	f := &fakeServer{}
	r := registryWith(f)
	r.SetFault("server1", Fault{Hang: true})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := exec(t, r, ctx)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("hang returned %v", err)
	}
	if f.calls != 0 {
		t.Fatal("hung call reached the server")
	}
}

func TestStallForIgnoresCancellation(t *testing.T) {
	f := &fakeServer{}
	r := registryWith(f)
	r.SetFault("server1", Fault{StallFor: 60 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: a cooperative fault would return instantly
	start := time.Now()
	_, err := exec(t, r, ctx)
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("stall returned after %v, want >= 60ms despite cancelled ctx", elapsed)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if f.calls != 0 {
		t.Fatal("stalled call reached the server")
	}
	if got := r.Injected("server1"); got != 1 {
		t.Fatalf("injected = %d", got)
	}
}

func TestCorruptRejectedByValidation(t *testing.T) {
	f := &fakeServer{}
	r := registryWith(f)
	r.SetFault("server1", Fault{Corrupt: true})
	resp, err := exec(t, r, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q, err := pql.Parse("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Result.Conforms(q); err == nil {
		t.Fatal("corrupted response passed shape validation")
	}
	// The server's own response object is untouched.
	clean, err := f.Execute(context.Background(), nil)
	if err != nil || clean.Result.Conforms(q) != nil {
		t.Fatal("corruption leaked into server-side response")
	}
}

func TestCustomError(t *testing.T) {
	f := &fakeServer{}
	r := registryWith(f)
	sentinel := errors.New("boom")
	r.SetFault("server1", Fault{FailAll: true, Err: sentinel})
	if _, err := exec(t, r, context.Background()); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	r.Clear("server1")
	if _, err := exec(t, r, context.Background()); err != nil {
		t.Fatalf("cleared policy still failing: %v", err)
	}
}

func TestLatencyIsCancellable(t *testing.T) {
	f := &fakeServer{}
	r := registryWith(f)
	r.SetFault("server1", Fault{Latency: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := exec(t, r, ctx)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("delayed call returned %v", err)
	}
}

func TestDeterministicJitterSchedule(t *testing.T) {
	schedule := func() []time.Duration {
		r := NewRegistry(transport.RegistryFunc(func(string) (transport.ServerClient, bool) { return nil, false }), 7)
		r.SetFault("server1", Fault{Jitter: 50 * time.Millisecond})
		var out []time.Duration
		for i := 0; i < 16; i++ {
			out = append(out, r.decide("server1").delay)
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter schedule diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
