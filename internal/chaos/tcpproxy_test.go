package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// startEcho serves connections that echo every byte back.
func startEcho(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(conn, conn)
				conn.Close()
			}()
		}
	}()
	return lis.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestProxyTransparent(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	conn := dialProxy(t, p)
	msg := []byte("hello through the proxy")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	if p.Faulted() != 0 {
		t.Fatalf("transparent proxy counted %d faults", p.Faulted())
	}
}

func TestProxyRejectConnections(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.SetFault(ProxyFault{RejectConnections: true})
	conn := dialProxy(t, p)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded through rejecting proxy")
	}
	if p.Faulted() == 0 {
		t.Fatal("no fault counted")
	}
}

func TestProxyResetMidStream(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.SetFault(ProxyFault{ResetAfterResponseBytes: 5})
	conn := dialProxy(t, p)
	if _, err := conn.Write(bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := io.ReadFull(conn, make([]byte, 100))
	if err == nil {
		t.Fatal("read all 100 bytes through a reset")
	}
	if n > 5 {
		t.Fatalf("got %d bytes, reset was at 5", n)
	}
	if p.Faulted() == 0 {
		t.Fatal("no fault counted")
	}
}

func TestProxyHalfOpenHang(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.SetFault(ProxyFault{HangAfterResponseBytes: 3})
	conn := dialProxy(t, p)
	if _, err := conn.Write([]byte("0123456789")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, 3)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read prefix: %v", err)
	}
	// The rest never arrives and the connection never closes: only the
	// deadline gets us out.
	conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read got data past the hang point")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want timeout (half-open), got %v", err)
	}
}

func TestProxySlowDrip(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.SetFault(ProxyFault{DripDelay: 10 * time.Millisecond, DripChunk: 2})
	conn := dialProxy(t, p)
	msg := []byte("0123456789")
	start := time.Now()
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("drip corrupted data: %q", got)
	}
	// 10 bytes in 2-byte chunks = 4 inter-chunk delays minimum.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("drip too fast: %v", elapsed)
	}
}

func TestProxyCorruptByte(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.SetFault(ProxyFault{CorruptResponseByte: 4})
	conn := dialProxy(t, p)
	msg := []byte("abcdefgh")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	want := append([]byte(nil), msg...)
	want[3] ^= 0x40
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q (bit flipped at byte 4)", got, want)
	}
}
