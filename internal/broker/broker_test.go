package broker

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pinot/internal/helix"
	"pinot/internal/pql"
	"pinot/internal/query"
	"pinot/internal/segment"
	"pinot/internal/table"
	"pinot/internal/transport"
	"pinot/internal/zkmeta"
)

// fakeServer is a scriptable transport.ServerClient.
type fakeServer struct {
	mu       sync.Mutex
	calls    []*transport.QueryRequest
	fail     bool
	respond  func(req *transport.QueryRequest) *query.Intermediate
	latency  time.Duration
	instance string
	// intercept, when set and returning handled=true, replaces the normal
	// scripted behavior for that call.
	intercept func(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error, bool)
}

func (f *fakeServer) Execute(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error) {
	f.mu.Lock()
	f.calls = append(f.calls, req)
	ic := f.intercept
	f.mu.Unlock()
	if ic != nil {
		if resp, err, handled := ic(ctx, req); handled {
			return resp, err
		}
	}
	if f.latency > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(f.latency):
		}
	}
	if f.fail {
		return nil, errors.New("injected server failure")
	}
	return &transport.QueryResponse{Result: f.respond(req)}, nil
}

func (f *fakeServer) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// testEnv assembles a broker over a hand-built metadata store.
type testEnv struct {
	store   *zkmeta.Store
	sess    *zkmeta.Session
	admin   *helix.Admin
	servers map[string]*fakeServer
	broker  *Broker
}

func newTestEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	env := &testEnv{
		store:   zkmeta.NewStore(),
		servers: map[string]*fakeServer{},
	}
	env.sess = env.store.NewSession()
	env.admin = helix.NewAdmin(env.sess, "test")
	if err := env.admin.CreateCluster(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		helix.PropertyStorePath("test", "CONFIGS"),
		helix.PropertyStorePath("test", "CONFIGS", "TABLE"),
		helix.PropertyStorePath("test", "SEGMENTS"),
	} {
		if err := env.sess.Create(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Cluster = "test"
	cfg.Instance = "broker1"
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	registry := transport.RegistryFunc(func(instance string) (transport.ServerClient, bool) {
		s, ok := env.servers[instance]
		return s, ok
	})
	env.broker = New(cfg, env.store, registry)
	if err := env.broker.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.broker.Stop)
	return env
}

func (env *testEnv) schema(t *testing.T) *segment.Schema {
	t.Helper()
	s, err := segment.NewSchema("ev", []segment.FieldSpec{
		{Name: "d", Type: segment.TypeString, Kind: segment.Dimension, SingleValue: true},
		{Name: "m", Type: segment.TypeLong, Kind: segment.Metric, SingleValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// addTable registers a table config, external view and fake servers. Each
// server answers COUNT-style queries with `docsPerSegment` per routed
// segment.
func (env *testEnv) addTable(t *testing.T, resource string, segsPerServer map[string][]string, docsPerSegment int64) {
	t.Helper()
	name, typ, err := table.ParseResource(resource)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &table.Config{Name: name, Type: typ, Schema: env.schema(t), Replicas: 1}
	if typ == table.Realtime {
		cfg.StreamTopic = "s"
		cfg.FlushThresholdRows = 1
	}
	data, _ := json.Marshal(cfg)
	p := helix.PropertyStorePath("test", "CONFIGS", "TABLE", resource)
	if err := env.sess.Create(p, data); err != nil && err != zkmeta.ErrNodeExists {
		t.Fatal(err)
	}
	ev := &helix.ExternalView{Resource: resource, Partitions: map[string]map[string]string{}}
	for inst, segs := range segsPerServer {
		if _, ok := env.servers[inst]; !ok {
			env.servers[inst] = &fakeServer{
				instance: inst,
				respond: func(req *transport.QueryRequest) *query.Intermediate {
					out := query.NewAggIntermediate([]pql.Expression{{IsAgg: true, Func: pql.Count, Column: "*"}})
					out.Aggs[0].AddCount(docsPerSegment * int64(len(req.Segments)))
					return out
				},
			}
		}
		for _, seg := range segs {
			if ev.Partitions[seg] == nil {
				ev.Partitions[seg] = map[string]string{}
			}
			ev.Partitions[seg][inst] = helix.StateOnline
		}
	}
	evData, _ := json.Marshal(ev)
	evPath := helix.ExternalViewPath("test", resource)
	if err := env.sess.Create(evPath, evData); err == zkmeta.ErrNodeExists {
		_, _ = env.sess.Set(evPath, evData, -1)
	} else if err != nil {
		t.Fatal(err)
	}
}

func TestBrokerScatterGatherMergesCounts(t *testing.T) {
	env := newTestEnv(t, Config{})
	env.addTable(t, "ev_OFFLINE", map[string][]string{
		"s1": {"seg0", "seg1"},
		"s2": {"seg2"},
	}, 10)
	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial: %v", res.Exceptions)
	}
	if got := res.Rows[0][0].(int64); got != 30 {
		t.Fatalf("count = %d, want 30", got)
	}
	if res.ServersQueried != 2 {
		t.Fatalf("servers = %d", res.ServersQueried)
	}
}

func TestBrokerUnknownTable(t *testing.T) {
	env := newTestEnv(t, Config{})
	if _, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM nosuch", ""); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := env.broker.Execute(context.Background(), "NOT PQL AT ALL", ""); err == nil {
		t.Fatal("garbage PQL accepted")
	}
}

func TestBrokerServerFailureYieldsPartial(t *testing.T) {
	env := newTestEnv(t, Config{})
	env.addTable(t, "ev_OFFLINE", map[string][]string{
		"s1": {"seg0"},
		"s2": {"seg1"},
	}, 10)
	env.servers["s2"].fail = true
	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.Exceptions) == 0 {
		t.Fatalf("expected partial result, got %+v", res)
	}
	if got := res.Rows[0][0].(int64); got != 10 {
		t.Fatalf("partial count = %d, want 10", got)
	}
}

func TestBrokerAllServersFailingStillPartial(t *testing.T) {
	env := newTestEnv(t, Config{})
	env.addTable(t, "ev_OFFLINE", map[string][]string{"s1": {"seg0"}}, 10)
	env.servers["s1"].fail = true
	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expected partial result")
	}
	if got := res.Rows[0][0].(int64); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}

func TestBrokerMissingClientIsException(t *testing.T) {
	env := newTestEnv(t, Config{})
	env.addTable(t, "ev_OFFLINE", map[string][]string{"s1": {"seg0"}, "ghost": {"seg1"}}, 10)
	delete(env.servers, "ghost") // registered in the view but unreachable
	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expected partial result")
	}
}

func TestBrokerTimeoutProducesPartial(t *testing.T) {
	env := newTestEnv(t, Config{QueryTimeout: 50 * time.Millisecond})
	env.addTable(t, "ev_OFFLINE", map[string][]string{"s1": {"seg0"}, "s2": {"seg1"}}, 10)
	env.servers["s2"].latency = time.Second
	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expected partial result after timeout")
	}
	if got := res.Rows[0][0].(int64); got != 10 {
		t.Fatalf("count = %d, want 10 (fast server only)", got)
	}
}

func TestBrokerHybridDispatchesBothResources(t *testing.T) {
	env := newTestEnv(t, Config{})
	env.addTable(t, "ev_OFFLINE", map[string][]string{"s1": {"off0"}}, 10)
	env.addTable(t, "ev_REALTIME", map[string][]string{"s2": {"ev__0__0"}}, 7)
	// Offline segment metadata provides the time boundary.
	segBase := helix.PropertyStorePath("test", "SEGMENTS", "ev_OFFLINE")
	if err := env.sess.Create(segBase, nil); err != nil && err != zkmeta.ErrNodeExists {
		t.Fatal(err)
	}
	meta := &table.SegmentMeta{Name: "off0", Resource: "ev_OFFLINE", Status: table.StatusDone, MaxTime: 100, Partition: -1}
	if err := env.sess.Create(segBase+"/off0", meta.Marshal()); err != nil {
		t.Fatal(err)
	}
	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 17 {
		t.Fatalf("hybrid count = %d, want 17", got)
	}
	// Each side saw the boundary-rewritten query (the schema has no time
	// column in this fixture, so the broker skips the rewrite — verify
	// both resources were still contacted).
	if env.servers["s1"].callCount() != 1 || env.servers["s2"].callCount() != 1 {
		t.Fatalf("calls = %d/%d", env.servers["s1"].callCount(), env.servers["s2"].callCount())
	}
}

func TestBrokerRoutingRefreshOnViewChange(t *testing.T) {
	env := newTestEnv(t, Config{})
	env.addTable(t, "ev_OFFLINE", map[string][]string{"s1": {"seg0"}}, 10)
	if res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", ""); err != nil || res.Rows[0][0].(int64) != 10 {
		t.Fatalf("first query: %v %v", res, err)
	}
	// The view changes: segment moves to s2.
	env.addTable(t, "ev_OFFLINE", map[string][]string{"s2": {"seg0", "seg1"}}, 10)
	ev := &helix.ExternalView{Resource: "ev_OFFLINE", Partitions: map[string]map[string]string{
		"seg0": {"s2": helix.StateOnline},
		"seg1": {"s2": helix.StateOnline},
	}}
	data, _ := json.Marshal(ev)
	if _, err := env.sess.Set(helix.ExternalViewPath("test", "ev_OFFLINE"), data, -1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
		if err == nil && !res.Partial && res.Rows[0][0].(int64) == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("routing never refreshed: %v %v", res, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPartitionFilterValue(t *testing.T) {
	q, _ := pql.Parse("SELECT count(*) FROM t WHERE a = 1 AND memberId = 42 AND b = 2")
	if v, ok := partitionFilterValue(q.Filter, "memberId"); !ok || v.(int64) != 42 {
		t.Fatalf("value = %v ok=%v", v, ok)
	}
	q2, _ := pql.Parse("SELECT count(*) FROM t WHERE memberId > 42")
	if _, ok := partitionFilterValue(q2.Filter, "memberId"); ok {
		t.Fatal("range predicate treated as partition filter")
	}
	q3, _ := pql.Parse("SELECT count(*) FROM t WHERE memberId = 1 OR memberId = 2")
	if _, ok := partitionFilterValue(q3.Filter, "memberId"); ok {
		t.Fatal("OR predicate treated as partition filter")
	}
	if _, ok := partitionFilterValue(nil, "memberId"); ok {
		t.Fatal("nil filter matched")
	}
}

func TestBrokerEmptyResourceNoSegments(t *testing.T) {
	env := newTestEnv(t, Config{})
	// Table exists but has no queryable segments yet.
	cfg := &table.Config{Name: "ev", Type: table.Offline, Schema: env.schema(t), Replicas: 1}
	data, _ := json.Marshal(cfg)
	if err := env.sess.Create(helix.PropertyStorePath("test", "CONFIGS", "TABLE", "ev_OFFLINE"), data); err != nil {
		t.Fatal(err)
	}
	_, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err == nil {
		t.Skip("empty table produced a zero result, also acceptable")
	}
	if !strings.Contains(err.Error(), "no servers") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// armFirstCall installs fn as a shared one-shot intercept on the given
// replicas: exactly the first broker→server call overall is handled by fn —
// whichever replica the routing table happened to pick as primary — and
// every later call behaves normally. This keeps the tests independent of
// the (randomized, watch-refreshed) routing table's replica choice.
func armFirstCall(env *testEnv, fn func(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error), servers ...string) {
	var used atomic.Bool
	ic := func(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error, bool) {
		if used.CompareAndSwap(false, true) {
			resp, err := fn(ctx, req)
			return resp, err, true
		}
		return nil, nil, false
	}
	for _, s := range servers {
		env.servers[s].intercept = ic
	}
}

// other returns the replica that is not `primary` among s1/s2.
func other(primary string) string {
	if primary == "s1" {
		return "s2"
	}
	return "s1"
}

func TestBrokerRetryRecoversOnAlternateReplica(t *testing.T) {
	env := newTestEnv(t, Config{RetryBackoff: time.Millisecond})
	env.addTable(t, "ev_OFFLINE", map[string][]string{
		"s1": {"seg0"},
		"s2": {"seg0"}, // second replica of the same segment
	}, 10)
	// The primary — whichever replica is routed to first — fails once.
	armFirstCall(env, func(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error) {
		return nil, errors.New("injected server failure")
	}, "s1", "s2")

	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("retry should mask the failure: %+v", res.Result)
	}
	if got := res.Rows[0][0].(int64); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	if res.ServersQueried != 1 || res.ServersResponded != 1 {
		t.Fatalf("queried/responded = %d/%d, want 1/1", res.ServersQueried, res.ServersResponded)
	}
	if len(res.ServerExceptions) != 1 || !res.ServerExceptions[0].Recovered {
		t.Fatalf("server exceptions = %+v", res.ServerExceptions)
	}
	primary := res.ServerExceptions[0].Server
	if env.servers[primary].callCount() != 1 || env.servers[other(primary)].callCount() != 1 {
		t.Fatalf("calls = %d/%d, want one failed primary call and one retry",
			env.servers[primary].callCount(), env.servers[other(primary)].callCount())
	}
}

func TestBrokerBothReplicasFailingIsExplicitlyPartial(t *testing.T) {
	env := newTestEnv(t, Config{RetryBackoff: time.Millisecond})
	env.addTable(t, "ev_OFFLINE", map[string][]string{
		"s1": {"seg0"},
		"s2": {"seg0"},
	}, 10)
	env.servers["s1"].fail = true
	env.servers["s2"].fail = true

	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expected explicitly partial result")
	}
	if res.ServersResponded >= res.ServersQueried {
		t.Fatalf("queried/responded = %d/%d, want responded < queried", res.ServersQueried, res.ServersResponded)
	}
	if len(res.Exceptions) == 0 {
		t.Fatal("expected client-visible exceptions")
	}
	for _, e := range res.ServerExceptions {
		if e.Recovered {
			t.Fatalf("no failure was recovered: %+v", e)
		}
	}
	// Both replicas were actually attempted.
	if env.servers["s1"].callCount() != 1 || env.servers["s2"].callCount() != 1 {
		t.Fatalf("calls = %d/%d", env.servers["s1"].callCount(), env.servers["s2"].callCount())
	}
}

func TestBrokerRetryDisabled(t *testing.T) {
	env := newTestEnv(t, Config{MaxRetries: -1})
	env.addTable(t, "ev_OFFLINE", map[string][]string{
		"s1": {"seg0"},
		"s2": {"seg0"},
	}, 10)
	armFirstCall(env, func(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error) {
		return nil, errors.New("injected server failure")
	}, "s1", "s2")
	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expected partial result with retries disabled")
	}
	if len(res.ServerExceptions) != 1 || res.ServerExceptions[0].Recovered {
		t.Fatalf("server exceptions = %+v", res.ServerExceptions)
	}
	alternate := other(res.ServerExceptions[0].Server)
	if env.servers[alternate].callCount() != 0 {
		t.Fatalf("alternate was contacted %d times with retries disabled", env.servers[alternate].callCount())
	}
}

func TestBrokerPerServerDeadlineLeavesRetryBudget(t *testing.T) {
	env := newTestEnv(t, Config{
		QueryTimeout:     5 * time.Second,
		PerServerTimeout: 20 * time.Millisecond,
		RetryBackoff:     time.Millisecond,
	})
	env.addTable(t, "ev_OFFLINE", map[string][]string{
		"s1": {"seg0"},
		"s2": {"seg0"},
	}, 10)
	// The primary hangs far beyond its per-server deadline; the carved
	// budget must leave room to retry the other replica.
	armFirstCall(env, func(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Minute):
			return nil, errors.New("latency fault outlived the test")
		}
	}, "s1", "s2")

	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("hung primary should be recovered by retry: %+v", res.Result)
	}
	if got := res.Rows[0][0].(int64); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	if len(res.ServerExceptions) != 1 || !res.ServerExceptions[0].Recovered {
		t.Fatalf("server exceptions = %+v", res.ServerExceptions)
	}
}

func TestBrokerHedgedRequestBeatsStraggler(t *testing.T) {
	// Retries are disabled and the query budget is generous, so only a
	// hedged request can explain a prompt full result.
	env := newTestEnv(t, Config{
		MaxRetries:   -1,
		QueryTimeout: 5 * time.Second,
		HedgeDelay:   5 * time.Millisecond,
		RetryBackoff: time.Millisecond,
	})
	env.addTable(t, "ev_OFFLINE", map[string][]string{
		"s1": {"seg0"},
		"s2": {"seg0"},
	}, 10)
	armFirstCall(env, func(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return nil, errors.New("straggler outlived the test")
		}
	}, "s1", "s2")

	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("hedge should mask the straggler: %+v", res.Result)
	}
	if got := res.Rows[0][0].(int64); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	if got := env.servers["s1"].callCount() + env.servers["s2"].callCount(); got != 2 {
		t.Fatalf("total calls = %d, want 2 (straggler + hedge)", got)
	}
	if res.ServersQueried != 1 || res.ServersResponded != 1 {
		t.Fatalf("queried/responded = %d/%d", res.ServersQueried, res.ServersResponded)
	}
}

func TestBrokerMalformedResponseDegradesToRetry(t *testing.T) {
	env := newTestEnv(t, Config{RetryBackoff: time.Millisecond})
	env.addTable(t, "ev_OFFLINE", map[string][]string{
		"s1": {"seg0"},
		"s2": {"seg0"},
	}, 10)
	// The primary answers with a result of the wrong shape (a selection
	// for an aggregation query) — a corrupted payload must be treated as
	// a server failure, not merged.
	armFirstCall(env, func(ctx context.Context, req *transport.QueryRequest) (*transport.QueryResponse, error) {
		return &transport.QueryResponse{
			Result: &query.Intermediate{Kind: query.KindSelection, SelectCols: []string{"garbage"}},
		}, nil
	}, "s1", "s2")

	res, err := env.broker.Execute(context.Background(), "SELECT count(*) FROM ev", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("corrupt response should be recovered via retry: %+v", res.Result)
	}
	if got := res.Rows[0][0].(int64); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	if len(res.ServerExceptions) != 1 || !res.ServerExceptions[0].Recovered {
		t.Fatalf("server exceptions = %+v", res.ServerExceptions)
	}
}
