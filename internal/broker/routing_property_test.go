// Property tests for routing-table generation: whatever the cluster shape,
// replica placement or replica loss, a generated routing table must cover
// every segment exactly once and only ever assign a segment to an instance
// actually serving it; the balanced strategy must additionally keep
// per-server load within one segment under full replication.
package broker

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomSI builds a random segment→instances map: nSegs segments spread over
// nInst servers with 1..maxReplicas replicas each.
func randomSI(rnd *rand.Rand, nSegs, nInst, maxReplicas int) segmentInstances {
	insts := make([]string, nInst)
	for i := range insts {
		insts[i] = fmt.Sprintf("server%d", i+1)
	}
	si := segmentInstances{}
	for s := 0; s < nSegs; s++ {
		seg := fmt.Sprintf("seg%03d", s)
		replicas := 1 + rnd.Intn(maxReplicas)
		if replicas > nInst {
			replicas = nInst
		}
		perm := rnd.Perm(nInst)
		for _, p := range perm[:replicas] {
			si[seg] = append(si[seg], insts[p])
		}
	}
	return si
}

// assertCoverage checks the two safety properties of any routing table: every
// segment of si appears exactly once, and only on an instance replicating it.
func assertCoverage(t *testing.T, label string, si segmentInstances, rt RoutingTable) {
	t.Helper()
	seen := map[string]string{}
	for inst, segs := range rt {
		for _, seg := range segs {
			if prev, dup := seen[seg]; dup {
				t.Fatalf("%s: segment %s assigned to both %s and %s", label, seg, prev, inst)
			}
			seen[seg] = inst
			legal := false
			for _, r := range si[seg] {
				if r == inst {
					legal = true
					break
				}
			}
			if !legal {
				t.Fatalf("%s: segment %s assigned to %s, which does not host it (replicas %v)", label, seg, inst, si[seg])
			}
		}
	}
	for seg := range si {
		if _, ok := seen[seg]; !ok {
			t.Fatalf("%s: segment %s not covered", label, seg)
		}
	}
	if len(seen) != len(si) {
		t.Fatalf("%s: covered %d segments, want %d", label, len(seen), len(si))
	}
}

func TestRoutingTablePropertiesRandomClusters(t *testing.T) {
	rnd := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 200; trial++ {
		nSegs := 1 + rnd.Intn(40)
		nInst := 1 + rnd.Intn(12)
		si := randomSI(rnd, nSegs, nInst, 3)
		label := fmt.Sprintf("trial %d (%d segs, %d servers)", trial, nSegs, nInst)

		rt, err := generateBalanced(si, rnd)
		if err != nil {
			t.Fatalf("%s: balanced: %v", label, err)
		}
		assertCoverage(t, label+"/balanced", si, rt)

		target := 1 + rnd.Intn(nInst)
		tables, err := filterRoutingTables(si, target, 3, 12, rnd)
		if err != nil {
			t.Fatalf("%s: largeCluster: %v", label, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: largeCluster produced no tables", label)
		}
		for i, lrt := range tables {
			assertCoverage(t, fmt.Sprintf("%s/largeCluster[%d]", label, i), si, lrt)
		}
	}
}

// TestRoutingSurvivesReplicaLoss strips replicas down to one survivor per
// segment (simulating dead servers) and requires exactly-once coverage to
// hold on the remaining replicas — and a hard error, never silent data loss,
// when a segment has no replica left.
func TestRoutingSurvivesReplicaLoss(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		si := randomSI(rnd, 1+rnd.Intn(30), 2+rnd.Intn(8), 3)
		label := fmt.Sprintf("trial %d", trial)

		// Kill replicas at random, always sparing one per segment.
		lossy := segmentInstances{}
		for seg, insts := range si {
			survivors := append([]string(nil), insts...)
			rnd.Shuffle(len(survivors), func(i, j int) { survivors[i], survivors[j] = survivors[j], survivors[i] })
			keep := 1 + rnd.Intn(len(survivors))
			lossy[seg] = survivors[:keep]
		}

		rt, err := generateBalanced(lossy, rnd)
		if err != nil {
			t.Fatalf("%s: balanced under loss: %v", label, err)
		}
		assertCoverage(t, label+"/balanced-loss", lossy, rt)

		tables, err := filterRoutingTables(lossy, 1+rnd.Intn(4), 2, 8, rnd)
		if err != nil {
			t.Fatalf("%s: largeCluster under loss: %v", label, err)
		}
		for i, lrt := range tables {
			assertCoverage(t, fmt.Sprintf("%s/largeCluster-loss[%d]", label, i), lossy, lrt)
		}

		// Total loss of one segment's replicas must fail loudly.
		dead := segmentInstances{}
		for seg, insts := range lossy {
			dead[seg] = insts
		}
		dead["seg000"] = nil
		if _, err := generateBalanced(dead, rnd); err == nil {
			t.Fatalf("%s: balanced accepted a segment with zero replicas", label)
		}
		if _, err := filterRoutingTables(dead, 2, 2, 4, rnd); err == nil {
			t.Fatalf("%s: largeCluster accepted a segment with zero replicas", label)
		}
	}
}

// TestBalancedStrategyLoadSpread: under full replication (every server hosts
// every segment) the balanced strategy must spread load within one segment
// between the most- and least-loaded servers.
func TestBalancedStrategyLoadSpread(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		nInst := 2 + rnd.Intn(10)
		nSegs := nInst + rnd.Intn(50)
		insts := make([]string, nInst)
		for i := range insts {
			insts[i] = fmt.Sprintf("server%d", i+1)
		}
		si := segmentInstances{}
		for s := 0; s < nSegs; s++ {
			si[fmt.Sprintf("seg%03d", s)] = insts
		}
		rt, err := generateBalanced(si, rnd)
		if err != nil {
			t.Fatal(err)
		}
		assertCoverage(t, fmt.Sprintf("trial %d", trial), si, rt)
		min, max := nSegs, 0
		for _, inst := range insts {
			n := len(rt[inst])
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("trial %d: load spread %d..%d over %d servers / %d segments", trial, min, max, nInst, nSegs)
		}
	}
}
