package broker

import (
	"fmt"
	"math/rand"
	"testing"
)

// makeSI builds a segment→instances map: numSegments segments spread over
// numInstances servers with `replicas` copies each, round-robin.
func makeSI(numSegments, numInstances, replicas int) segmentInstances {
	si := segmentInstances{}
	for s := 0; s < numSegments; s++ {
		var insts []string
		for r := 0; r < replicas; r++ {
			insts = append(insts, fmt.Sprintf("server%d", (s+r)%numInstances))
		}
		si[fmt.Sprintf("seg%d", s)] = insts
	}
	return si
}

// coverage verifies a routing table covers exactly the segment universe with
// valid placements.
func assertCovers(t *testing.T, rt RoutingTable, si segmentInstances) {
	t.Helper()
	seen := map[string]int{}
	for inst, segs := range rt {
		for _, seg := range segs {
			seen[seg]++
			ok := false
			for _, replica := range si[seg] {
				if replica == inst {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("segment %s routed to non-replica %s", seg, inst)
			}
		}
	}
	if len(seen) != len(si) {
		t.Fatalf("covered %d segments, want %d", len(seen), len(si))
	}
	for seg, n := range seen {
		if n != 1 {
			t.Fatalf("segment %s routed %d times", seg, n)
		}
	}
}

func TestGenerateBalancedCoversAndBalances(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	si := makeSI(60, 6, 3)
	rt, err := generateBalanced(si, rnd)
	if err != nil {
		t.Fatal(err)
	}
	assertCovers(t, rt, si)
	// Balanced: all 6 servers used, each ~10 segments.
	if rt.ServerCount() != 6 {
		t.Fatalf("servers = %d", rt.ServerCount())
	}
	for inst, segs := range rt {
		if len(segs) < 7 || len(segs) > 13 {
			t.Fatalf("server %s has %d segments, badly balanced", inst, len(segs))
		}
	}
}

func TestGenerateBalancedNoReplica(t *testing.T) {
	si := segmentInstances{"lonely": nil}
	if _, err := generateBalanced(si, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("uncoverable universe accepted")
	}
}

func TestAlgorithm1SmallClusterUsesAll(t *testing.T) {
	// With fewer instances than T, all instances are used (first branch
	// of Algorithm 1).
	rnd := rand.New(rand.NewSource(2))
	si := makeSI(20, 3, 2)
	rt, err := generateRoutingTable(si, 8, rnd)
	if err != nil {
		t.Fatal(err)
	}
	assertCovers(t, rt, si)
}

func TestAlgorithm1LimitsServerCount(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	si := makeSI(200, 20, 3)
	for trial := 0; trial < 20; trial++ {
		rt, err := generateRoutingTable(si, 5, rnd)
		if err != nil {
			t.Fatal(err)
		}
		assertCovers(t, rt, si)
		// T random + possibly a few extras for orphan coverage; must be
		// far below the 20-server fleet.
		if rt.ServerCount() > 12 {
			t.Fatalf("trial %d: %d servers used, want ≪ 20", trial, rt.ServerCount())
		}
	}
}

func TestAlgorithm1CoversOrphans(t *testing.T) {
	// One segment lives only on a single instance: it must always be
	// covered even if that instance is not among the T random picks.
	rnd := rand.New(rand.NewSource(4))
	si := makeSI(50, 10, 2)
	si["special"] = []string{"server9"}
	for trial := 0; trial < 30; trial++ {
		rt, err := generateRoutingTable(si, 2, rnd)
		if err != nil {
			t.Fatal(err)
		}
		assertCovers(t, rt, si)
	}
}

func TestAlgorithm2KeepsLowVarianceTables(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	si := makeSI(120, 12, 3)
	kept, err := filterRoutingTables(si, 4, 5, 60, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 5 {
		t.Fatalf("kept %d tables", len(kept))
	}
	var keptMax float64
	for _, rt := range kept {
		assertCovers(t, rt, si)
		if v := rt.variance(); v > keptMax {
			keptMax = v
		}
	}
	// The kept maximum variance must not exceed the typical variance of
	// unfiltered tables: sample fresh ones and compare against their
	// mean.
	var sum float64
	const samples = 40
	for i := 0; i < samples; i++ {
		rt, err := generateRoutingTable(si, 4, rnd)
		if err != nil {
			t.Fatal(err)
		}
		sum += rt.variance()
	}
	mean := sum / samples
	if keptMax > mean*1.5+1 {
		t.Fatalf("kept max variance %.2f vs unfiltered mean %.2f — filtering ineffective", keptMax, mean)
	}
}

func TestFilterRoutingTablesDefaults(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	si := makeSI(10, 4, 2)
	kept, err := filterRoutingTables(si, 2, 0, 0, rnd)
	if err != nil || len(kept) != 1 {
		t.Fatalf("kept=%d err=%v", len(kept), err)
	}
}

func TestVariance(t *testing.T) {
	rt := RoutingTable{"a": {"s1", "s2"}, "b": {"s3", "s4"}}
	if v := rt.variance(); v != 0 {
		t.Fatalf("uniform variance = %v", v)
	}
	rt2 := RoutingTable{"a": {"s1", "s2", "s3", "s4"}, "b": nil}
	if v := rt2.variance(); v != 4 {
		t.Fatalf("variance = %v, want 4", v)
	}
	if (RoutingTable{}).variance() != 0 {
		t.Fatal("empty variance")
	}
	if rt.SegmentCount() != 4 {
		t.Fatal("segment count")
	}
}

func TestRestrict(t *testing.T) {
	rt := RoutingTable{"a": {"s1", "s2"}, "b": {"s3"}}
	out := restrict(rt, func(seg string) bool { return seg == "s2" })
	if len(out) != 1 || len(out["a"]) != 1 || out["a"][0] != "s2" {
		t.Fatalf("restricted = %v", out)
	}
}

func TestRoutingStatePick(t *testing.T) {
	rs := &routingState{}
	if rs.pick(rand.New(rand.NewSource(1))) != nil {
		t.Fatal("empty state returned a table")
	}
	rs.tables = []RoutingTable{{"a": {"s1"}}, {"b": {"s1"}}}
	seen := map[int]bool{}
	rnd := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		rt := rs.pick(rnd)
		if _, ok := rt["a"]; ok {
			seen[0] = true
		} else {
			seen[1] = true
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatal("pick never rotated tables")
	}
}
