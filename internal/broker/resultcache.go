package broker

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"pinot/internal/helix"
	"pinot/internal/pql"
	"pinot/internal/query"
	"pinot/internal/table"
)

// Broker-side result cache: merged immutable-portion results keyed on
// (canonical PQL, tenant, routing version vector), scoped per resource.
// Invalidation is precise, never time-based — the version vector changes
// whenever the external view or segment metadata does, and external-view
// watches additionally drop a resource's entries eagerly. Consuming
// segments are excluded from cacheable coverage (splitConsuming), so a hit
// merges the cached offline/immutable portion with a live scatter over the
// still-moving remainder.

// cachedGather is one stored result-cache entry: the merged intermediate of
// a subquery's immutable portion plus the scatter counts that produced it.
// Only complete outcomes are stored (see gatherResult.complete), so a
// replay is indistinguishable from re-contacting the same servers — stats
// included — except for the Stats.ResultCacheHit marker.
type cachedGather struct {
	result    *query.Intermediate
	queried   int
	responded int
}

// replay materializes the entry as a fresh gather outcome. The result is
// cloned (merges downstream mutate their receiver) and flagged as a cache
// hit — the single permitted divergence from a cold response.
func (e *cachedGather) replay() gatherResult {
	res := e.result.Clone()
	res.Stats.ResultCacheHit = true
	return gatherResult{result: res, queried: e.queried, responded: e.responded}
}

// complete reports whether a portion's outcome may be cached: every group
// answered, no response carried an exception, and any server-level failure
// was masked by a retry or hedge.
func (p gatherResult) complete() bool {
	if p.responded != p.queried || len(p.respExcs) > 0 {
		return false
	}
	for _, e := range p.srvExcs {
		if !e.Recovered {
			return false
		}
	}
	return true
}

// resultCacheKey renders the cache key for one rewritten subquery. The
// routing version pins the exact data the answer derives from, the tenant
// isolates tenants from each other's entries, and the canonical PQL makes
// commuted-but-equivalent filters collide on one entry.
func resultCacheKey(rs *routingState, tenant string, q *pql.Query) string {
	return rs.version + "\x00" + tenant + "\x00" + q.CanonicalString()
}

// splitConsuming partitions a routing table into the immutable portion
// (eligible for the result cache) and the consuming portion (always
// scattered live). Groups whose server holds both kinds are split in two.
func splitConsuming(rt RoutingTable, consuming map[string]bool) (imm, cons RoutingTable) {
	imm, cons = RoutingTable{}, RoutingTable{}
	for inst, segs := range rt {
		for _, s := range segs {
			if consuming[s] {
				cons[inst] = append(cons[inst], s)
			} else {
				imm[inst] = append(imm[inst], s)
			}
		}
	}
	return imm, cons
}

// routingVersion digests a routing snapshot into the version-vector half
// of every result-cache key: the external view's store version (bumped by
// the metadata store on every write) plus an FNV-1a hash over the sorted
// segment set, each replica's state, and the metadata fields that change
// when a segment's content does (CRC for refresh/replace, status and end
// offset for realtime completion). Segment metadata can move without an
// external-view write — the hash catches what the store version alone
// would miss.
func routingVersion(storeVersion int, ev *helix.ExternalView, metas map[string]*table.SegmentMeta) string {
	segs := make([]string, 0, len(ev.Partitions))
	for seg := range ev.Partitions {
		segs = append(segs, seg)
	}
	sort.Strings(segs)
	h := fnv.New64a()
	for _, seg := range segs {
		io.WriteString(h, seg)
		replicas := ev.Partitions[seg]
		insts := make([]string, 0, len(replicas))
		for inst := range replicas {
			insts = append(insts, inst)
		}
		sort.Strings(insts)
		for _, inst := range insts {
			fmt.Fprintf(h, "|%s=%s", inst, replicas[inst])
		}
		if m := metas[seg]; m != nil {
			fmt.Fprintf(h, "|%d|%s|%d", m.CRC, m.Status, m.EndOffset)
		}
		io.WriteString(h, "\n")
	}
	return fmt.Sprintf("%d:%016x", storeVersion, h.Sum64())
}
