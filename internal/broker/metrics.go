package broker

import "pinot/internal/metrics"

// brokerMetrics caches instrument handles for the broker's hot paths. All
// names follow the catalog in DESIGN.md §Observability. Unlabeled handles
// are resolved once at construction so the per-query cost is atomic adds;
// per-table families go through Family.With (an RLock map hit) because table
// sets are dynamic.
type brokerMetrics struct {
	reg *metrics.Registry

	// requests counts queries that resolved to a known table — the broker
	// total the per-table counters must sum to (a scrape-test invariant).
	requests    *metrics.Instrument
	badRequests *metrics.Instrument

	queries  *metrics.Family // label: table
	failures *metrics.Family // label: table
	partials *metrics.Family // label: table
	latency  *metrics.Family // label: table (histogram, µs)

	fanout *metrics.Instrument // histogram: scatter groups per query
	pruned *metrics.Family     // label: table

	retries    *metrics.Instrument
	hedges     *metrics.Instrument
	exceptions *metrics.Family // label: recovered ("true"/"false")
}

func newBrokerMetrics(reg *metrics.Registry) *brokerMetrics {
	if reg == nil {
		reg = metrics.Default()
	}
	m := &brokerMetrics{reg: reg}
	m.requests = reg.Counter("pinot_broker_requests_total",
		"Queries accepted for a known table.").With()
	m.badRequests = reg.Counter("pinot_broker_bad_requests_total",
		"Queries rejected before routing (parse error or unknown table).").With()
	m.queries = reg.Counter("pinot_broker_queries_total",
		"Queries accepted, per table.", "table")
	m.failures = reg.Counter("pinot_broker_query_failures_total",
		"Queries that returned an error, per table.", "table")
	m.partials = reg.Counter("pinot_broker_partial_results_total",
		"Queries answered with a partial result, per table.", "table")
	m.latency = reg.Histogram("pinot_broker_query_latency_us",
		"End-to-end query latency in microseconds, per table.", "table")
	m.fanout = reg.Histogram("pinot_broker_scatter_fanout",
		"Scatter groups fanned out per query.").With()
	m.pruned = reg.Counter("pinot_broker_segments_pruned_total",
		"Segments dropped by broker-side pruning, per table.", "table")
	m.retries = reg.Counter("pinot_broker_retries_total",
		"Scatter-group retry attempts against alternate replicas.").With()
	m.hedges = reg.Counter("pinot_broker_hedges_total",
		"Hedged duplicate requests launched against stragglers.").With()
	m.exceptions = reg.Counter("pinot_broker_server_exceptions_total",
		"Per-server failures observed during scatter/gather.", "recovered")
	return m
}
